package sim

import (
	"testing"

	"sim/internal/university"
	"sim/internal/value"
)

// universityDB builds a fresh in-memory UNIVERSITY database (Figure 2)
// with a small faculty/student population used across the integration
// tests. Course credits are chosen so every enrolled student satisfies
// verify v1 (sum of credits >= 12).
func universityDB(t testing.TB, cfg Config) *Database {
	t.Helper()
	db, err := Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.DefineSchema(university.DDL); err != nil {
		t.Fatalf("define schema: %v", err)
	}
	for _, stmt := range fixtureDML {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("fixture %q: %v", stmt, err)
		}
	}
	return db
}

var fixtureDML = []string{
	`Insert department (dept-nbr := 100, name := "Physics").`,
	`Insert department (dept-nbr := 200, name := "Math").`,
	`Insert department (dept-nbr := 300, name := "CS").`,

	`Insert course (course-no := 101, title := "Algebra I", credits := 12).`,
	`Insert course (course-no := 102, title := "Calculus I", credits := 5,
	   prerequisites := course with (title = "Algebra I")).`,
	`Insert course (course-no := 201, title := "Mechanics", credits := 5,
	   prerequisites := course with (title = "Calculus I")).`,
	`Insert course (course-no := 999, title := "Quantum Chromodynamics", credits := 5,
	   prerequisites := course with (title = "Mechanics"),
	   prerequisites := include course with (title = "Calculus I")).`,
	`Insert course (course-no := 301, title := "Databases", credits := 5).`,

	`Insert instructor (name := "Joe Bloke", soc-sec-no := 100000001,
	   birthdate := "1950-01-01", employee-nbr := 1729, salary := 50000, bonus := 1000,
	   assigned-department := department with (name = "Physics"),
	   courses-taught := course with (title = "Mechanics"),
	   courses-taught := include course with (title = "Quantum Chromodynamics")).`,
	`Insert instructor (name := "Ann Smith", soc-sec-no := 100000002,
	   birthdate := "1945-05-05", employee-nbr := 1730, salary := 60000,
	   assigned-department := department with (name = "Math"),
	   courses-taught := course with (title = "Algebra I"),
	   courses-taught := include course with (title = "Calculus I")).`,
	`Insert instructor (name := "Bob Stone", soc-sec-no := 100000003,
	   birthdate := "1980-01-01", employee-nbr := 1731, salary := 45000,
	   assigned-department := department with (name = "CS"),
	   courses-taught := course with (title = "Databases")).`,

	`Insert teaching-assistant (name := "Tina Aide", soc-sec-no := 100000004,
	   birthdate := "1965-06-06", student-nbr := 1600, employee-nbr := 1750,
	   salary := 20000, teaching-load := 5,
	   advisor := instructor with (name = "Ann Smith"),
	   major-department := department with (name = "CS"),
	   courses-enrolled := course with (title = "Algebra I"),
	   courses-taught := course with (title = "Databases")).`,

	`Insert student (name := "John Doe", soc-sec-no := 456887766,
	   birthdate := "1960-02-02", student-nbr := 1500,
	   advisor := instructor with (name = "Joe Bloke"),
	   major-department := department with (name = "CS"),
	   courses-enrolled := course with (title = "Algebra I")).`,
	`Insert student (name := "Mary Major", soc-sec-no := 456887767,
	   birthdate := "1970-03-03", student-nbr := 1501,
	   advisor := instructor with (name = "Joe Bloke"),
	   major-department := department with (name = "Physics"),
	   courses-enrolled := course with (title = "Algebra I"),
	   courses-enrolled := include course with (title = "Calculus I"),
	   courses-enrolled := include course with (title = "Mechanics")).`,
	`Insert student (name := "Tom Thumb", soc-sec-no := 456887768,
	   birthdate := "1990-04-04", student-nbr := 1502,
	   advisor := instructor with (name = "Ann Smith"),
	   major-department := department with (name = "Math"),
	   courses-enrolled := course with (title = "Algebra I"),
	   courses-enrolled := include course with (title = "Calculus I")).`,
	`Insert student (name := "NoAdv Kid", soc-sec-no := 456887769,
	   birthdate := "2000-12-12", student-nbr := 1503,
	   major-department := department with (name = "Math")).`,
}

// rowStrings renders a result's rows for compact comparison.
func rowStrings(r *Result) [][]string {
	out := make([][]string, 0, r.NumRows())
	for _, row := range r.Rows() {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out = append(out, cells)
	}
	return out
}

func expectRows(t *testing.T, r *Result, want [][]string) {
	t.Helper()
	got := rowStrings(r)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: got %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("row %d col %d: got %q, want %q (full row %v)", i, j, got[i][j], want[i][j], got[i])
			}
		}
	}
}

func mustQuery(t *testing.T, db *Database, dml string) *Result {
	t.Helper()
	r, err := db.Query(dml)
	if err != nil {
		t.Fatalf("Query(%q): %v", dml, err)
	}
	return r
}

func mustExec(t *testing.T, db *Database, dml string) int {
	t.Helper()
	n, err := db.Exec(dml)
	if err != nil {
		t.Fatalf("Exec(%q): %v", dml, err)
	}
	return n
}

func singleValue(t *testing.T, db *Database, dml string) value.Value {
	t.Helper()
	r := mustQuery(t, db, dml)
	if r.NumRows() != 1 || len(r.Rows()[0]) != 1 {
		t.Fatalf("Query(%q) returned %v, want a single value", dml, rowStrings(r))
	}
	return r.Rows()[0][0]
}
