package sim_test

import (
	"fmt"
	"log"

	"sim"
)

// Open an in-memory database, define a schema, load entities and query
// them through the DML.
func Example() {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.DefineSchema(`
Class Author (
  name: string[30] required;
  books: book inverse is written-by mv );

Class Book (
  title: string[40] required;
  year: integer (1400..2100) );`); err != nil {
		log.Fatal(err)
	}

	if _, err := db.Run(`
Insert book (title := "The Mythical Man-Month", year := 1975).
Insert author (name := "Brooks", books := book with (year = 1975)).`); err != nil {
		log.Fatal(err)
	}

	r, err := db.Query(`From Author Retrieve Name, Title of Books, Year of Books.`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range r.Rows() {
		fmt.Println(row[0], "|", row[1], "|", row[2])
	}
	// Output:
	// Brooks | The Mythical Man-Month | 1975
}

// Updates are statements too; failed statements roll back atomically.
func ExampleDatabase_Exec() {
	db, _ := sim.Open("", sim.Config{})
	defer db.Close()
	db.DefineSchema(`Class Account ( acct-no: integer unique required; balance: number[12,2] );`)

	n, _ := db.Exec(`Insert account (acct-no := 1, balance := 100).`)
	fmt.Println("inserted:", n)

	n, _ = db.Exec(`Modify account (balance := balance * 1.05) Where acct-no = 1.`)
	fmt.Println("modified:", n)

	// A duplicate account number violates UNIQUE and changes nothing.
	if _, err := db.Exec(`Insert account (acct-no := 1, balance := 0).`); err != nil {
		fmt.Println("rejected duplicate")
	}
	r, _ := db.Query(`From account Retrieve balance.`)
	fmt.Println("balance:", r.Rows()[0][0])
	// Output:
	// inserted: 1
	// modified: 1
	// rejected duplicate
	// balance: 105
}

// Explain shows the optimizer's chosen access strategy.
func ExampleDatabase_Explain() {
	db, _ := sim.Open("", sim.Config{})
	defer db.Close()
	db.DefineSchema(`Class Part ( part-no: integer unique required; pname: string[20] );`)
	db.Exec(`Insert part (part-no := 1, pname := "bolt").`)
	db.Exec(`Insert part (part-no := 2, pname := "nut").`)
	db.Exec(`Insert part (part-no := 3, pname := "washer").`)

	ex, _ := db.Explain(`From part Retrieve pname Where part-no = 2.`)
	fmt.Println(ex)
	// Output:
	// part: unique lookup part-no = 2 (est cost 2.0)
}
