package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// txDB builds an in-memory database with a tiny account class and one
// seeded row (id 1), for the explicit-transaction tests.
func txDB(t *testing.T) *Database {
	t.Helper()
	db, err := Open("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.DefineSchema(`Class Acct ( id: integer unique required; bal: integer );`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert acct (id := 1, bal := 100).`)
	return db
}

// acctIDs reads the set of acct ids through query, which is either a
// Database.QueryCtx or a Tx.Query method value.
func acctIDs(t *testing.T, query func(ctx context.Context, dml string) (*Result, error)) map[string]bool {
	t.Helper()
	r, err := query(context.Background(), `From acct Retrieve id.`)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, row := range r.Rows() {
		ids[row[0].String()] = true
	}
	return ids
}

func TestTxCommitReadYourWrites(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := tx.Exec(ctx, `Insert acct (id := 2, bal := 50).`); n != 1 || err != nil {
		t.Fatalf("insert in tx: n=%d err=%v", n, err)
	}
	// The transaction sees its own uncommitted write.
	if ids := acctIDs(t, tx.Query); !ids["2"] {
		t.Fatalf("tx does not see its own insert: %v", ids)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if ids := acctIDs(t, db.QueryCtx); !ids["1"] || !ids["2"] {
		t.Fatalf("committed rows missing: %v", ids)
	}

	// The Tx is dead after Commit: every method reports ErrTxDone, except
	// Rollback, which is a safe no-op (for the defer idiom).
	if _, err := tx.Exec(ctx, `Insert acct (id := 3, bal := 0).`); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Exec after commit: %v, want ErrTxDone", err)
	}
	if _, err := tx.Query(ctx, `From acct Retrieve id.`); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Query after commit: %v, want ErrTxDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("second Commit: %v, want ErrTxDone", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("Rollback after commit should be a no-op: %v", err)
	}
}

func TestTxRollbackDiscards(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Insert acct (id := 2, bal := 50).`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Modify acct (bal := 0) Where id = 1.`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if ids := acctIDs(t, db.QueryCtx); ids["2"] {
		t.Fatalf("rolled-back insert persisted: %v", ids)
	}
	r := mustQuery(t, db, `From acct Retrieve bal Where id = 1.`)
	if got := r.Rows()[0][0].String(); got != "100" {
		t.Fatalf("rolled-back Modify persisted: bal = %s, want 100", got)
	}
}

func TestTxAbortIsSticky(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Insert acct (id := 2, bal := 50).`); err != nil {
		t.Fatal(err)
	}
	// Duplicate id violates the unique constraint: the statement fails and
	// the whole transaction aborts — including the earlier, valid insert.
	if _, err := tx.Exec(ctx, `Insert acct (id := 1, bal := 0).`); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	for name, got := range map[string]error{
		"Exec":   func() error { _, err := tx.Exec(ctx, `Insert acct (id := 3, bal := 0).`); return err }(),
		"Query":  func() error { _, err := tx.Query(ctx, `From acct Retrieve id.`); return err }(),
		"Commit": tx.Commit(),
	} {
		if !errors.Is(got, ErrTxAborted) {
			t.Fatalf("%s after abort: %v, want ErrTxAborted", name, got)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("Rollback after abort should be a no-op: %v", err)
	}
	if ids := acctIDs(t, db.QueryCtx); ids["2"] {
		t.Fatalf("aborted transaction's earlier insert persisted: %v", ids)
	}
}

func TestTxConflictFirstWriterWins(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()
	tx1, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx1.Rollback()
	tx2, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Rollback()

	if _, err := tx1.Exec(ctx, `Modify acct (bal := 50) Where id = 1.`); err != nil {
		t.Fatal(err)
	}
	// tx1 write-latched the id-1 entity: tx2, targeting the same entity,
	// fails fast with ErrConflict instead of waiting — before it ever
	// blocks on the store write latch — and the conflict does not abort
	// tx2.
	if _, err := tx2.Exec(ctx, `Modify acct (bal := 60) Where id = 1.`); !errors.Is(err, ErrConflict) {
		t.Fatalf("second writer: %v, want ErrConflict", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// The latch died with tx1; tx2 is still usable and can now write, and
	// its statement sees the committed state (no lost update).
	if _, err := tx2.Exec(ctx, `Modify acct (bal := bal + 10) Where id = 1.`); err != nil {
		t.Fatalf("retry after winner committed: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, db, `From acct Retrieve bal Where id = 1.`)
	if got := r.Rows()[0][0].String(); got != "60" {
		t.Fatalf("bal after both commits = %s, want 60 (tx1's 50 + tx2's 10)", got)
	}
}

// An autocommit statement never raises ErrConflict against an open
// transaction: it queues on the store's write latch, bounded by its
// context.
func TestAutocommitQueuesBehindOpenTx(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Insert acct (id := 30, bal := 1).`); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	_, err = db.ExecCtx(short, `Insert acct (id := 31, bal := 1).`)
	if errors.Is(err, ErrConflict) {
		t.Fatalf("autocommit vs open tx raised a conflict: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("autocommit vs open tx: %v, want context.DeadlineExceeded", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`Insert acct (id := 31, bal := 1).`); err != nil {
		t.Fatalf("autocommit after the transaction finished: %v", err)
	}
}

// Statement-kind errors (Retrieve via Exec, nested transaction control)
// are rejected without aborting the transaction.
func TestTxExecRejectsNonUpdates(t *testing.T) {
	db := txDB(t)
	ctx := context.Background()
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Exec(ctx, `From acct Retrieve id.`); err == nil || !strings.Contains(err.Error(), "Query") {
		t.Fatalf("Exec(Retrieve): %v, want hint to use Query", err)
	}
	if _, err := tx.Exec(ctx, `Begin Transaction.`); err == nil || !strings.Contains(err.Error(), "Begin/Commit/Rollback") {
		t.Fatalf("Exec(Begin): %v, want transaction-control rejection", err)
	}
	// Neither rejection aborted the transaction.
	if _, err := tx.Exec(ctx, `Insert acct (id := 40, bal := 1).`); err != nil {
		t.Fatalf("insert after rejected statements: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg   Config
		field string
	}{
		{Config{PoolPages: -1}, "PoolPages"},
		{Config{Workers: -3}, "Workers"},
		{Config{PlanCacheSize: -2}, "PlanCacheSize"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != c.field {
			t.Fatalf("Validate(%+v) = %v, want *ConfigError for %s", c.cfg, err, c.field)
		}
		// Open performs the same validation before touching storage.
		if _, err := Open("", c.cfg); !errors.As(err, &ce) || ce.Field != c.field {
			t.Fatalf("Open with bad %s: %v, want *ConfigError", c.field, err)
		}
	}
	// Sentinels are valid: zero values and PlanCacheSize -1.
	if err := (Config{PlanCacheSize: -1}).Validate(); err != nil {
		t.Fatalf("PlanCacheSize -1 should be valid: %v", err)
	}
}

func TestRunTransactionBlocks(t *testing.T) {
	db := txDB(t)

	// A committed block persists as a unit.
	if _, err := db.Run(`
		Begin Transaction.
		Insert acct (id := 50, bal := 1).
		Insert acct (id := 51, bal := 2).
		Commit.`); err != nil {
		t.Fatalf("committed block: %v", err)
	}
	// An explicit rollback discards the block.
	if _, err := db.Run(`
		Begin Transaction.
		Insert acct (id := 60, bal := 1).
		Rollback.`); err != nil {
		t.Fatalf("rollback block: %v", err)
	}
	// A transaction still open at script end is rolled back.
	if _, err := db.Run(`
		Begin Transaction.
		Insert acct (id := 61, bal := 1).`); err != nil {
		t.Fatalf("open-at-end block: %v", err)
	}
	ids := acctIDs(t, db.QueryCtx)
	for id, want := range map[string]bool{"50": true, "51": true, "60": false, "61": false} {
		if ids[id] != want {
			t.Fatalf("after scripts, id %s present=%v want %v (ids %v)", id, ids[id], want, ids)
		}
	}

	// A failing statement inside a block rolls the whole block back, and
	// the error carries the statement's 1-based index.
	_, err := db.Run(`
		Begin Transaction.
		Insert acct (id := 70, bal := 1).
		Insert acct (id := 1, bal := 0).
		Commit.`)
	if err == nil || !strings.Contains(err.Error(), "statement 3") {
		t.Fatalf("failing block: %v, want error at statement 3", err)
	}
	if acctIDs(t, db.QueryCtx)["70"] {
		t.Fatal("failed block's earlier insert persisted")
	}

	// Structural errors name their statement too.
	if _, err := db.Run(`Commit.`); err == nil || !strings.Contains(err.Error(), "statement 1") {
		t.Fatalf("bare COMMIT: %v, want error at statement 1", err)
	}
	if _, err := db.Run(`Begin Transaction. Begin Transaction.`); err == nil || !strings.Contains(err.Error(), "statement 2") {
		t.Fatalf("nested BEGIN: %v, want error at statement 2", err)
	}
}
