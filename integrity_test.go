package sim

import (
	"path/filepath"
	"strings"
	"testing"
)

// Verify v2: salary + bonus < 100000.
func TestVerifyDirectViolation(t *testing.T) {
	db := universityDB(t, Config{})
	_, err := db.Exec(`Modify instructor (salary := 99000, bonus := 5000) Where name = "Bob Stone".`)
	if err == nil || !strings.Contains(err.Error(), "too much money") {
		t.Fatalf("v2 violation not reported: %v", err)
	}
	// Statement rolled back atomically: salary unchanged.
	r := mustQuery(t, db, `From instructor Retrieve salary, bonus Where name = "Bob Stone".`)
	expectRows(t, r, [][]string{{"45000", "?"}})
	// A compliant raise passes.
	mustExec(t, db, `Modify instructor (salary := 80000, bonus := 10000) Where name = "Bob Stone".`)
}

// Verify v1: sum(credits of courses-enrolled) >= 12. A NULL sum (no
// enrollments) passes — only definite falsity violates.
func TestVerifyAggregateOverEVA(t *testing.T) {
	db := universityDB(t, Config{})
	// Dropping Algebra I (12 credits) from Tom leaves Calculus I (5): the
	// sum 5 < 12 violates v1.
	_, err := db.Exec(`Modify student (courses-enrolled := exclude courses-enrolled with (title = "Algebra I")) Where name = "Tom Thumb".`)
	if err == nil || !strings.Contains(err.Error(), "too few credits") {
		t.Fatalf("v1 violation not reported: %v", err)
	}
	// Rolled back: Tom still enrolled in both.
	if v := singleValue(t, db, `From student Retrieve count(courses-enrolled) Where name = "Tom Thumb".`); v.String() != "2" {
		t.Errorf("enrollment after rollback = %s", v)
	}
	// Dropping everything leaves a NULL sum → passes.
	mustExec(t, db, `Modify student (courses-enrolled := null) Where name = "Tom Thumb".`)
}

// Trigger detection across a relationship: lowering a course's credits
// must re-check the enrolled students, not just the course.
func TestVerifyTriggeredThroughInverse(t *testing.T) {
	db := universityDB(t, Config{})
	// John's only course is Algebra I at 12 credits; reducing it to 10
	// breaks v1 for John even though the statement modifies a course.
	_, err := db.Exec(`Modify course (credits := 10) Where title = "Algebra I".`)
	if err == nil || !strings.Contains(err.Error(), "too few credits") {
		t.Fatalf("cross-entity trigger missed: %v", err)
	}
	// Rolled back.
	if v := singleValue(t, db, `From course Retrieve credits Where title = "Algebra I".`); v.String() != "12" {
		t.Errorf("credits after rollback = %s", v)
	}
	// Raising credits is fine.
	mustExec(t, db, `Modify course (credits := 15) Where title = "Algebra I".`)
}

// Inserting an entity of the verify class triggers an immediate check.
func TestVerifyOnInsert(t *testing.T) {
	db := universityDB(t, Config{})
	_, err := db.Exec(`Insert student (name := "Under Achiever", soc-sec-no := 900000001,
	  courses-enrolled := course with (title = "Calculus I")).`)
	if err == nil || !strings.Contains(err.Error(), "too few credits") {
		t.Fatalf("v1 not checked on insert: %v", err)
	}
	// Rolled back entirely: the person does not exist.
	r := mustQuery(t, db, `From person Retrieve name Where name = "Under Achiever".`)
	if r.NumRows() != 0 {
		t.Error("violating insert left a partial entity")
	}
	// With no enrollments the sum is NULL → allowed.
	mustExec(t, db, `Insert student (name := "Under Achiever", soc-sec-no := 900000001).`)
}

func TestCheckIntegrityScansEverything(t *testing.T) {
	db := universityDB(t, Config{})
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("clean database reported violation: %v", err)
	}
}

func TestUniqueViolationRollsBack(t *testing.T) {
	db := universityDB(t, Config{})
	_, err := db.Exec(`Insert person (name := "Imposter", soc-sec-no := 456887766).`)
	if err == nil || !strings.Contains(err.Error(), "unique") {
		t.Fatalf("duplicate ssn accepted: %v", err)
	}
	r := mustQuery(t, db, `From person Retrieve name Where name = "Imposter".`)
	if r.NumRows() != 0 {
		t.Error("failed insert left a partial entity")
	}
}

func TestRequiredEnforcedOnInsert(t *testing.T) {
	db := universityDB(t, Config{})
	_, err := db.Exec(`Insert course (title := "No Number", credits := 5).`)
	if err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("missing required course-no accepted: %v", err)
	}
	_, err = db.Exec(`Insert instructor (name := "No Emp", soc-sec-no := 900000100).`)
	if err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("missing required employee-nbr accepted: %v", err)
	}
	_, err = db.Exec(`Modify course (course-no := null) Where title = "Databases".`)
	if err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("nulling a required attribute accepted: %v", err)
	}
}

func TestTypeRangeEnforced(t *testing.T) {
	db := universityDB(t, Config{})
	// credits: integer (1..15).
	if _, err := db.Exec(`Modify course (credits := 20) Where title = "Databases".`); err == nil {
		t.Error("credits=20 accepted outside 1..15")
	}
	// id-number ranges for employee-nbr.
	if _, err := db.Exec(`Modify instructor (employee-nbr := 40000) Where name = "Bob Stone".`); err == nil {
		t.Error("employee-nbr=40000 accepted outside id-number ranges")
	}
	// string[30] length.
	if _, err := db.Exec(`Modify course (title := "This title is far too long to fit in thirty characters") Where course-no = 301.`); err == nil {
		t.Error("over-long title accepted")
	}
}

func TestEVACardinalityMaxEnforced(t *testing.T) {
	db := universityDB(t, Config{})
	// courses-taught has MAX 3; Joe teaches 2.
	mustExec(t, db, `Modify instructor (courses-taught := include course with (title = "Databases")) Where name = "Joe Bloke".`)
	_, err := db.Exec(`Modify instructor (courses-taught := include course with (title = "Algebra I")) Where name = "Joe Bloke".`)
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("4th course accepted beyond MAX 3: %v", err)
	}
	if v := singleValue(t, db, `From instructor Retrieve count(courses-taught) Where name = "Joe Bloke".`); v.String() != "3" {
		t.Errorf("courses-taught after failed include = %s", v)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "univ.sim")
	db, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineSchema(universityDDLForReopen); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`Insert item (label := "persists", qty := 7).`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// The schema was loaded from the file.
	if db2.Catalog().Class("item") == nil {
		t.Fatal("schema not persisted")
	}
	r := mustQuery(t, db2, `From item Retrieve label, qty.`)
	expectRows(t, r, [][]string{{"persists", "7"}})
	// And it remains writable.
	mustExec(t, db2, `Insert item (label := "second", qty := 9).`)
}

const universityDDLForReopen = `
Class Item (
  label: string[20] required;
  qty: integer );`

func TestSchemaExtensionAcrossBatches(t *testing.T) {
	db := universityDB(t, Config{})
	err := db.DefineSchema(`
Class Building ( bname: string[20] required unique;
  home-of: department inverse is housed-in mv );`)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert building (bname := "Old Hall", home-of := department with (name = "Math")).`)
	r := mustQuery(t, db, `From department Retrieve bname of housed-in Where name = "Math".`)
	expectRows(t, r, [][]string{{"Old Hall"}})
	// A bad batch is rejected wholesale without corrupting the catalog.
	if err := db.DefineSchema(`Class Broken ( x: missing-type );`); err == nil {
		t.Fatal("bad schema batch accepted")
	}
	if db.Catalog().Class("building") == nil || db.Catalog().Class("broken") != nil {
		t.Error("catalog corrupted by failed batch")
	}
	mustExec(t, db, `Insert building (bname := "New Hall").`)
}

func TestSchemaSummary(t *testing.T) {
	db := universityDB(t, Config{})
	s := db.SchemaSummary()
	for _, want := range []string{"base classes: 3", "subclasses: 3", "EVA-inverse pairs: 8", "max generalization depth: 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestRunScript(t *testing.T) {
	db := universityDB(t, Config{})
	results, err := db.Run(`
Insert department (dept-nbr := 400, name := "History").
From department Retrieve name Where dept-nbr = 400.
Delete department Where dept-nbr = 400.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[0] != nil || results[2] != nil {
		t.Fatalf("results = %v", results)
	}
	expectRows(t, results[1], [][]string{{"History"}})
}
