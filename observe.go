package sim

import (
	"context"
	"time"

	"sim/internal/obs"
)

// Metrics returns the database's metric registry. Every engine component
// (buffer pool, WAL, LUC caches, plan cache, executor, query latency)
// registers here; servers expose it over /metrics and expvar.
func (db *Database) Metrics() *obs.Registry { return db.reg }

// SlowQueries returns the retained slow-query log, oldest first. Empty
// unless Config.SlowQuery is set.
func (db *Database) SlowQueries() []obs.SlowEntry { return db.slow.Entries() }

// FlightRecorder returns the database's always-on flight recorder: ring
// buffers of recent structured events (transaction begins/commits/
// conflicts, group-commit flushes, checkpoints, replication applies,
// incidents) that every component records into. Dump it on an incident.
func (db *Database) FlightRecorder() *obs.Flight { return db.reg.Flight() }

// HotReport renders the latch contention profile (\hot): acquisition and
// contention counts plus wait times for the store write latch, the
// buffer-pool shard locks and the WAL group-commit leader hand-off.
func (db *Database) HotReport() string { return obs.RenderHot(db.reg.Snapshot()) }

// QueryTrace executes one Retrieve statement like Query while collecting
// the full span breakdown: parse/plan/execute phases, per-query-tree-node
// rows and walls, per-worker spans on the parallel path, and the
// pager/LUC-cache deltas across the execution.
func (db *Database) QueryTrace(dml string) (*Result, *obs.QueryTrace, error) {
	return db.QueryTraceCtx(context.Background(), dml)
}

// QueryTraceCtx is QueryTrace under a context. Tracing costs one
// time.Now pair per node visit; concurrent untraced queries are
// unaffected. The cache deltas are process-wide counters sampled before
// and after, so under concurrent load they include neighbors' traffic.
func (db *Database) QueryTraceCtx(ctx context.Context, dml string) (*Result, *obs.QueryTrace, error) {
	tr := &obs.QueryTrace{Statement: dml, ID: obs.RequestID(ctx)}
	start := time.Now()
	res, err := db.queryTraceCtx(ctx, dml, tr)
	tr.Total = time.Since(start)
	db.queryHist.Observe(tr.Total)
	if err != nil {
		db.queryErrs.Inc()
		return nil, nil, err
	}
	if db.slow.Observe(dml, tr.Total, res.Stats.Rows, tr.ID) {
		db.slowCount.Inc()
	}
	return res, tr, nil
}

func (db *Database) queryTraceCtx(ctx context.Context, dml string, tr *obs.QueryTrace) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	poolBefore := db.store.Stats()
	cacheBefore := db.mapper.CacheStats()
	// Traced queries read the same pinned-snapshot path as Query.
	snap := db.store.PinSnapshot()
	defer snap.Release()
	res, err := db.queryOn(ctx, dml, db.exe.View(db.mapper.View(snap)), tr)
	if err != nil {
		return nil, err
	}
	poolAfter := db.store.Stats()
	cacheAfter := db.mapper.CacheStats()
	tr.PagerHits = poolAfter.Hits - poolBefore.Hits
	tr.PagerMisses = poolAfter.Misses - poolBefore.Misses
	tr.CacheHits = cacheAfter.Hits - cacheBefore.Hits
	tr.CacheMisses = cacheAfter.Misses - cacheBefore.Misses
	return res, nil
}

// ExplainAnalyze executes the statement and renders the optimizer's
// strategy annotated with measured row counts and per-node timings — the
// query tree of §4.5 with its actual cost.
func (db *Database) ExplainAnalyze(dml string) (string, error) {
	return db.ExplainAnalyzeCtx(context.Background(), dml)
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context.
func (db *Database) ExplainAnalyzeCtx(ctx context.Context, dml string) (string, error) {
	_, tr, err := db.QueryTraceCtx(ctx, dml)
	if err != nil {
		return "", err
	}
	return tr.Render(), nil
}
