// ADDS: the paper's own proof point (§6) — "The stand-alone data
// dictionary ADDS is itself a SIM database. It consists of 13 base
// classes, 209 subclasses, 39 EVA-inverse pairs, 530 DVAs and at its
// deepest, one hierarchy represents 5 levels of generalization."
//
// The real ADDS schema is proprietary; internal/adds generates a synthetic
// dictionary schema with exactly the published shape. This example defines
// it, verifies the statistics, loads dictionary entries and runs
// dictionary-style queries against the 5-level hierarchy.
package main

import (
	"fmt"
	"log"

	"sim"
	"sim/internal/adds"
)

func main() {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.DefineSchema(adds.DDL()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ADDS-scale dictionary schema defined. Paper-reported statistics (§6):")
	fmt.Printf("  paper: base classes %d, subclasses %d, EVA pairs %d, DVAs %d, depth %d\n",
		adds.BaseClasses, adds.Subclasses, adds.EVAPairs, adds.DVAs, adds.MaxDepth)
	fmt.Println("  measured from the catalog:")
	fmt.Println(indent(db.SchemaSummary()))

	// Populate the deep hierarchy with dictionary objects.
	for i := 0; i < 20; i++ {
		depth := 1 + i%5
		cls := fmt.Sprintf("dd-ent00-lvl%d", depth)
		stmt := fmt.Sprintf(`Insert %s (dd-ent00-attr00 := "entry-%02d", dd-ent00-attr01 := %d).`, cls, i, depth)
		if _, err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	// Relate dictionary entries across base classes.
	if _, err := db.Exec(`Insert dd-ent01 (dd-ent01-attr00 := "shared-domain").`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`Modify dd-ent00 (rel00-a := include dd-ent01 with (dd-ent01-attr00 = "shared-domain")) Where dd-ent00-attr01 > 3.`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("entries by generalization level (an entity at level k holds every shallower role):")
	for d := 1; d <= 5; d++ {
		q := fmt.Sprintf(`From dd-ent00-lvl%d Retrieve count(dd-ent00-attr00 of dd-ent00-lvl%d) Table Distinct.`, d, d)
		_ = q
		r, err := db.Query(fmt.Sprintf(`From dd-ent00 Retrieve Table Distinct count(dd-ent00-attr00 of dd-ent00-lvl%d).`, d))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  level %d: %s entries\n", d, r.Rows()[0][0])
	}

	fmt.Println("\nentries related to the shared domain object, via the named inverse:")
	r, err := db.Query(`From dd-ent01 Retrieve dd-ent00-attr00 of rel00-a-back Where dd-ent01-attr00 = "shared-domain" Order By dd-ent00-attr00 of rel00-a-back.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Format())
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
