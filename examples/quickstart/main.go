// Quickstart: define a small semantic schema, load a few entities and run
// DML queries through the public API.
package main

import (
	"fmt"
	"log"

	"sim"
)

const schema = `
Type priority = symbolic (LOW, MEDIUM, HIGH);

Class Project (
  code: integer (1..9999) unique required;
  title: string[40] required;
  urgency: priority;
  members: person inverse is works-on mv );

Class Person (
  name: string[30] required;
  email: string[40] unique );
`

func main() {
	// An empty path opens a transient in-memory database; pass a file path
	// for a durable one.
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.DefineSchema(schema); err != nil {
		log.Fatal(err)
	}

	script := `
Insert person (name := "Ada", email := "ada@example.com").
Insert person (name := "Grace", email := "grace@example.com").
Insert project (code := 1, title := "Compiler", urgency := "HIGH",
  members := person with (name = "Ada")).
Insert project (code := 2, title := "Simulator", urgency := "LOW",
  members := person with (name = "Grace"),
  members := include person with (name = "Ada")).
`
	if _, err := db.Run(script); err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// Perspective + qualification: attributes reached through EVAs.
		`From Project Retrieve Title, Urgency, Name of Members Order By Title.`,
		// The system-maintained inverse, traversed from the other side.
		`From Person Retrieve Name, Title of Works-On Where Name = "Ada".`,
		// Aggregates with delimited scope.
		`From Project Retrieve Title, count(members) Order By Title.`,
		// Symbolic values order by declaration (LOW < MEDIUM < HIGH).
		`From Project Retrieve Title Where Urgency > "LOW".`,
	}
	for _, q := range queries {
		fmt.Println("—", q)
		r, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Format())
	}

	// Updates are transactional; a failed statement leaves no trace.
	if _, err := db.Exec(`Insert person (name := "Imposter", email := "ada@example.com").`); err != nil {
		fmt.Println("as expected, duplicate email rejected:", err)
	}
}
