// University: the paper's Figure 2 / Section 7 example schema, populated
// and driven through every worked DML example of Section 4.9.
package main

import (
	"fmt"
	"log"

	"sim"
	"sim/internal/university"
)

var load = []string{
	`Insert department (dept-nbr := 100, name := "Physics").`,
	`Insert department (dept-nbr := 200, name := "Math").`,
	`Insert course (course-no := 101, title := "Algebra I", credits := 12).`,
	`Insert course (course-no := 102, title := "Calculus I", credits := 5,
	   prerequisites := course with (title = "Algebra I")).`,
	`Insert course (course-no := 999, title := "Quantum Chromodynamics", credits := 5,
	   prerequisites := course with (title = "Calculus I")).`,
	`Insert instructor (name := "Joe Bloke", soc-sec-no := 100000001,
	   birthdate := "1950-01-01", employee-nbr := 1729, salary := 50000,
	   assigned-department := department with (name = "Physics"),
	   courses-taught := course with (title = "Quantum Chromodynamics")).`,
	`Insert instructor (name := "Ann Smith", soc-sec-no := 100000002,
	   birthdate := "1945-05-05", employee-nbr := 1730, salary := 60000,
	   assigned-department := department with (name = "Math"),
	   courses-taught := course with (title = "Algebra I"),
	   courses-taught := include course with (title = "Calculus I")).`,
	`Insert student (name := "Mary Major", soc-sec-no := 456887767,
	   birthdate := "1970-03-03", student-nbr := 1501,
	   advisor := instructor with (name = "Joe Bloke"),
	   major-department := department with (name = "Physics"),
	   courses-enrolled := course with (title = "Algebra I")).`,
}

// The §4.9 examples (example 4's course threshold is lowered to fit the
// schema's MAX 3 on courses-taught).
var examples = []struct {
	title, dml string
	isQuery    bool
}{
	{"Example 1: insert John Doe and enroll him in Algebra I", `
Insert student(name := "John Doe",
  soc-sec-no := 456887766,
  courses-enrolled := course with (title = "Algebra I")).`, false},

	{"Example 2: make John Doe an instructor too", `
Insert instructor
From person Where name = "John Doe"
(employee-nbr := 1801).`, false},

	{"Example 3: John Doe drops Algebra I; Joe Bloke becomes his advisor", `
Modify student (
  courses-enrolled := exclude courses-enrolled with (title = "Algebra I"),
  advisor := instructor with (name = "Joe Bloke"))
Where name of student = "John Doe".`, false},

	{"Example 4: a 10% raise for busy instructors advising across departments", `
Modify instructor( salary := 1.1 * salary)
Where count(courses-taught) of instructor > 1 and
  assigned-department neq some(major-department of advisees).`, false},

	{"Example 5: minimum courses before Quantum Chromodynamics", `
From course
Retrieve count distinct (transitive(prerequisites))
Where title = "Quantum Chromodynamics".`, true},

	{"Example 6: instructors advising Physics majors, with their courses", `
Retrieve name of instructor, title of courses-taught
Where name of major-department of advisees = "Physics".`, true},

	{"Example 7: student/instructor pairs (older student, non-TA, not advisor)", `
From student, instructor
Retrieve name of student, name of Instructor
Where birthdate of student < birthdate of instructor and
  advisor of student NEQ instructor and
  not instructor isa teaching-assistant.`, true},
}

func main() {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(university.DDL); err != nil {
		log.Fatal(err)
	}
	fmt.Println("UNIVERSITY schema (Figure 2) loaded:")
	fmt.Println(db.SchemaSummary())
	for _, stmt := range load {
		if _, err := db.Exec(stmt); err != nil {
			log.Fatalf("load: %v\n%s", err, stmt)
		}
	}

	for _, ex := range examples {
		fmt.Println("──", ex.title)
		fmt.Println(ex.dml)
		if ex.isQuery {
			r, err := db.Query(ex.dml)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(r.Format())
			continue
		}
		n, err := db.Exec(ex.dml)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("→ %d entity(ies) affected\n\n", n)
	}

	// The outer-join flavor of §4.1 and a structured retrieval.
	fmt.Println("── Students and their advisors (outer join: NULL when none)")
	r, err := db.Query(`From Student Retrieve Name, Name of Advisor.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Format())

	fmt.Println("── Fully structured output (§4.5)")
	r, err = db.Query(`From Instructor Retrieve Structure Name, Title of Courses-Taught.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.FormatStructured())

	if err := db.CheckIntegrity(); err != nil {
		log.Fatal("integrity: ", err)
	}
	fmt.Println("all VERIFY assertions hold.")
}
