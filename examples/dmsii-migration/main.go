// DMSII migration: §5 of the paper describes a utility through which "any
// existing DMSII database [can] be viewed as a SIM database", with
// semantics not apparent in the record-oriented description supplied by
// the user — e.g. "a foreign-key based relationship between DMSII
// structures can be defined as a SIM EVA".
//
// This example simulates that path: a flat, record-oriented legacy schema
// (employees and departments joined by a dept-no foreign key field) is
// first loaded verbatim; the schema is then enriched with a declared EVA,
// and the foreign-key values are replayed into real, system-maintained
// relationship instances, after which the legacy join column is redundant.
package main

import (
	"fmt"
	"log"

	"sim"
)

// The legacy record layouts, transcribed field-for-field.
const legacySchema = `
Class Emp-Rec (
  emp-no: integer unique required;
  emp-name: string[30];
  dept-no: integer );

Class Dept-Rec (
  dept-no: integer unique required;
  dept-name: string[30] );
`

// The semantic enrichment: the foreign key becomes an EVA with a
// system-maintained inverse.
const enrichment = `
Subclass Employee of Emp-Rec (
  department: dept-rec inverse is staff );
`

var legacyData = []string{
	`Insert dept-rec (dept-no := 10, dept-name := "Accounting").`,
	`Insert dept-rec (dept-no := 20, dept-name := "Research").`,
	`Insert emp-rec (emp-no := 1, emp-name := "King", dept-no := 10).`,
	`Insert emp-rec (emp-no := 2, emp-name := "Scott", dept-no := 20).`,
	`Insert emp-rec (emp-no := 3, emp-name := "Adams", dept-no := 20).`,
	`Insert emp-rec (emp-no := 4, emp-name := "Drifter").`, // no department
}

func main() {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Phase 1: the DMSII view — flat records, value-based joins only.
	if err := db.DefineSchema(legacySchema); err != nil {
		log.Fatal(err)
	}
	for _, stmt := range legacyData {
		if _, err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("── legacy view: value-based join (multi-perspective query)")
	r, err := db.Query(`
From emp-rec e, dept-rec d
Retrieve emp-name of e, dept-name of d
Where dept-no of e = dept-no of d
Order By emp-name of e.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Format())

	// Phase 2: enrichment. Emp-Rec gains an Employee role carrying a real
	// EVA (the paper's utility let users declare exactly this over
	// existing DMSII structures).
	if err := db.DefineSchema(enrichment); err != nil {
		log.Fatal(err)
	}
	// Replay the foreign keys into EVA instances: every emp-rec with a
	// matching dept-no becomes an Employee related to its department.
	for _, dept := range []int{10, 20} {
		stmt := fmt.Sprintf(`Insert employee From emp-rec Where dept-no = %d
  (department := dept-rec with (dept-no = %d)).`, dept, dept)
		if _, err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("── semantic view: schema-defined EVA with maintained inverse")
	r, err = db.Query(`From Employee Retrieve emp-name, dept-name of department Order By emp-name.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Format())

	fmt.Println("── and the inverse comes for free")
	r, err = db.Query(`From dept-rec Retrieve dept-name, count(staff) Order By dept-name.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Format())

	// Referential integrity is now the system's job: deleting a
	// department's record cleans up the relationship instances.
	if _, err := db.Exec(`Delete dept-rec Where dept-no = 20.`); err != nil {
		log.Fatal(err)
	}
	r, err = db.Query(`From Employee Retrieve emp-name, dept-name of department Order By emp-name.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("── after deleting Research: no dangling references")
	fmt.Println(r.Format())
}
