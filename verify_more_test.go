package sim

import (
	"strings"
	"testing"
)

// Existentially-quantified assertions exercise assertionHolds' quantified
// branch: the condition passes when SOME binding satisfies it.
func TestVerifyExistentialAssertion(t *testing.T) {
	db, err := Open("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(`
Class Team (
  tname: string[20] unique required;
  members: player inverse is team-of mv );

Class Player (
  pname: string[20] required;
  captain: boolean );

Verify has-captain on Team
  assert captain of members = true
  else "team has no captain";`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert player (pname := "Alice", captain := true).`)
	mustExec(t, db, `Insert player (pname := "Bob", captain := false).`)
	mustExec(t, db, `Insert player (pname := "Carol", captain := false).`)
	// A team whose only member is a captain: fine.
	mustExec(t, db, `Insert team (tname := "Reds", members := player with (pname = "Alice")).`)
	// Adding non-captains keeps the existential true.
	mustExec(t, db, `Modify team (members := include player with (pname = "Bob")) Where tname = "Reds".`)
	// A captain-less team violates.
	_, err = db.Exec(`Insert team (tname := "Blues", members := player with (pname = "Carol")).`)
	if err == nil || !strings.Contains(err.Error(), "captain") {
		t.Fatalf("captain-less team accepted: %v", err)
	}
	// Removing the captain from Reds violates too (trigger through the
	// EVA event).
	_, err = db.Exec(`Modify team (members := exclude members with (pname = "Alice")) Where tname = "Reds".`)
	if err == nil || !strings.Contains(err.Error(), "captain") {
		t.Fatalf("removing the captain accepted: %v", err)
	}
	// A team with NO members: no binding at all → vacuously passes (the
	// dependent clause cannot be evaluated).
	mustExec(t, db, `Insert team (tname := "Empty").`)
}

// REQUIRED on EVAs and MV DVAs (checkRequired's non-scalar branches).
func TestRequiredEVAandMV(t *testing.T) {
	db, err := Open("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(`
Class Owner ( oname: string[20] required );

Class Pet (
  pname: string[20] required;
  nicknames: string[20] mv (max 3) required;
  owner: owner inverse is pets required );`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert owner (oname := "Ann").`)
	// Missing required EVA.
	if _, err := db.Exec(`Insert pet (pname := "Rex", nicknames := "R").`); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("pet without owner accepted: %v", err)
	}
	// Missing required MV DVA.
	if _, err := db.Exec(`Insert pet (pname := "Rex", owner := owner with (oname = "Ann")).`); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("pet without nicknames accepted: %v", err)
	}
	// Both present: fine.
	mustExec(t, db, `Insert pet (pname := "Rex", nicknames := "R", owner := owner with (oname = "Ann")).`)
}

// A verify on one class triggered by an event on a DIFFERENT hierarchy
// through two relationship hops.
func TestVerifyTwoHopTrigger(t *testing.T) {
	db := universityDB(t, Config{})
	if err := db.DefineSchema(`
Verify light-teachers on Student
  assert count(courses-taught of teachers of courses-enrolled) < 100
  else "a teacher is overloaded";`); err != nil {
		t.Fatal(err)
	}
	// Modifying courses-taught of an instructor triggers re-checks of the
	// students enrolled in that instructor's courses (two inverse hops).
	// The assertion itself always holds (count < 100) — this exercises the
	// trigger path without failing.
	mustExec(t, db, `Modify instructor (courses-taught := include course with (title = "Databases")) Where name = "Joe Bloke".`)
}

// Rollback after a verify violation leaves no trace even when several
// entities were already modified.
func TestVerifyRollbackMidStatement(t *testing.T) {
	db := universityDB(t, Config{})
	// Only Joe has a bonus (NULL bonus makes v2 Unknown → pass), so the
	// factor must bust Joe: 50000*2.2 + 1000 = 111000 >= 100000.
	_, err := db.Exec(`Modify instructor (salary := 2.2 * salary).`)
	if err == nil || !strings.Contains(err.Error(), "too much") {
		t.Fatalf("mass raise should violate v2 for Joe: %v", err)
	}
	// Everyone unchanged — including instructors processed before Ann.
	r := mustQuery(t, db, `From instructor Retrieve name, salary Order By name.`)
	expectRows(t, r, [][]string{
		{"Ann Smith", "60000"},
		{"Bob Stone", "45000"},
		{"Joe Bloke", "50000"},
		{"Tina Aide", "20000"},
	})
}

// Boolean attributes end to end (TBool coverage).
func TestBooleanAttributes(t *testing.T) {
	db, err := Open("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(`Class Flag ( fname: string[10]; active: boolean );`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert flag (fname := "on", active := true).`)
	mustExec(t, db, `Insert flag (fname := "off", active := false).`)
	mustExec(t, db, `Insert flag (fname := "unset").`)
	r := mustQuery(t, db, `From flag Retrieve fname Where active = true.`)
	expectRows(t, r, [][]string{{"on"}})
	r = mustQuery(t, db, `From flag Retrieve fname Where not (active = true) Order By fname.`)
	// NOT unknown is unknown: the unset flag stays excluded.
	expectRows(t, r, [][]string{{"off"}})
}

// Unary minus and mixed arithmetic.
func TestUnaryMinusAndMixedArith(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From instructor Retrieve -salary, 2 * salary - 1000 Where name = "Joe Bloke".`)
	expectRows(t, r, [][]string{{"-50000", "99000"}})
	r = mustQuery(t, db, `From instructor Retrieve name Where -salary < -55000.`)
	expectRows(t, r, [][]string{{"Ann Smith"}})
}

// String ordering in comparisons and ORDER BY stability.
func TestStringComparisons(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From course Retrieve title Where title >= "M" and title < "R" Order By title.`)
	expectRows(t, r, [][]string{{"Mechanics"}, {"Quantum Chromodynamics"}})
}
