package sim

import (
	"strings"
	"testing"
)

func TestSimpleRetrieve(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From Department Retrieve Name Order By Name.`)
	expectRows(t, r, [][]string{{"CS"}, {"Math"}, {"Physics"}})
}

// §4.1: "print the name of each student and the name of his advisor, if
// any" — the directed outer join: students without advisors still appear.
func TestOuterJoinAdvisor(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From Student Retrieve Name, Name of Advisor.`)
	expectRows(t, r, [][]string{
		{"Tina Aide", "Ann Smith"},
		{"John Doe", "Joe Bloke"},
		{"Mary Major", "Joe Bloke"},
		{"Tom Thumb", "Ann Smith"},
		{"NoAdv Kid", "?"},
	})
}

// §4.2: qualification cut short — "Name of Advisor, Salary" completes
// Salary through the advisor.
func TestShortcutCompletion(t *testing.T) {
	db := universityDB(t, Config{})
	full := mustQuery(t, db, `From Student Retrieve Name of Advisor of Student, Salary of Advisor of Student Where Name of Student = "John Doe".`)
	short := mustQuery(t, db, `From Student Retrieve Name of Advisor, Salary Where Name of Student = "John Doe".`)
	expectRows(t, full, [][]string{{"Joe Bloke", "50000"}})
	expectRows(t, short, rowsAsWant(full))
}

func rowsAsWant(r *Result) [][]string { return rowStrings(r) }

// §4.4's binding example: all occurrences of courses-enrolled bind to one
// range variable, so title/credits/teacher line up per course.
func TestBindingExample(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `
Retrieve Name of Student,
  Title of Courses-Enrolled of Student,
  Credits of Courses-Enrolled of Student,
  Name of Teachers of Courses-Enrolled of Student
Where Soc-Sec-No of Student = 456887767.`)
	expectRows(t, r, [][]string{
		{"Mary Major", "Algebra I", "12", "Ann Smith"},
		{"Mary Major", "Calculus I", "5", "Ann Smith"},
		{"Mary Major", "Mechanics", "5", "Joe Bloke"},
	})
}

// §4.9 example 1: insert with enrollment.
func TestExample1Insert(t *testing.T) {
	db := universityDB(t, Config{})
	mustExec(t, db, `
Insert student(name := "Jane Roe",
  soc-sec-no := 456880000,
  courses-enrolled := course with (title = "Algebra I")).`)
	r := mustQuery(t, db, `From Student Retrieve Title of Courses-Enrolled Where Name = "Jane Roe".`)
	expectRows(t, r, [][]string{{"Algebra I"}})
}

// §4.9 example 2: make an existing person an instructor too; the
// profession subrole then reports both roles.
func TestExample2RoleExtension(t *testing.T) {
	db := universityDB(t, Config{})
	n := mustExec(t, db, `
Insert instructor
From person Where name = "John Doe"
(employee-nbr := 1801).`)
	if n != 1 {
		t.Fatalf("affected %d, want 1", n)
	}
	r := mustQuery(t, db, `From Person Retrieve Profession Where Name = "John Doe".`)
	expectRows(t, r, [][]string{{"Student"}, {"Instructor"}})
	// The student data survives.
	r = mustQuery(t, db, `From Student Retrieve Student-Nbr Where Name = "John Doe".`)
	expectRows(t, r, [][]string{{"1500"}})
}

// §4.9 example 3: drop a course, change advisor.
func TestExample3ModifyEVAs(t *testing.T) {
	db := universityDB(t, Config{})
	mustExec(t, db, `
Modify student (
  courses-enrolled := exclude courses-enrolled with (title = "Algebra I"),
  advisor := instructor with (name = "Ann Smith"))
Where name of student = "John Doe".`)
	r := mustQuery(t, db, `From Student Retrieve Name of Advisor, count(courses-enrolled) Where Name = "John Doe".`)
	expectRows(t, r, [][]string{{"Ann Smith", "0"}})
	// Inverse synchronized: Joe no longer advises John.
	r = mustQuery(t, db, `From Instructor Retrieve Name of Advisees Where Name = "Joe Bloke".`)
	expectRows(t, r, [][]string{{"Mary Major"}})
}

// §4.9 example 4 (bounded variant): raise for instructors teaching more
// than one course who advise students from other departments.
func TestExample4ConditionalRaise(t *testing.T) {
	db := universityDB(t, Config{})
	n := mustExec(t, db, `
Modify instructor( salary := 1.1 * salary)
Where count(courses-taught) of instructor > 1 and
  assigned-department neq some(major-department of advisees).`)
	// Joe: 2 courses, advisees majors CS+Physics vs Physics → raised.
	// Ann: 2 courses, advisees majors Math+CS vs Math → raised.
	// Bob, Tina: 1 course each → unchanged.
	if n != 2 {
		t.Fatalf("raised %d instructors, want 2", n)
	}
	r := mustQuery(t, db, `From Instructor Retrieve Name, Salary Order By Name.`)
	expectRows(t, r, [][]string{
		{"Ann Smith", "66000"},
		{"Bob Stone", "45000"},
		{"Joe Bloke", "55000.00000000001"},
		{"Tina Aide", "20000"},
	})
}

// §4.9 example 5: minimum courses before Quantum Chromodynamics.
func TestExample5TransitiveCount(t *testing.T) {
	db := universityDB(t, Config{})
	v := singleValue(t, db, `
From course
Retrieve count distinct (transitive(prerequisites))
Where title = "Quantum Chromodynamics".`)
	if v.String() != "3" {
		t.Errorf("prerequisite closure = %s, want 3 (Mechanics, Calculus I, Algebra I)", v)
	}
}

// §4.7: transitive closure in a target path.
func TestTransitiveClosureTargets(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `
Retrieve Title of Transitive(prerequisites) of Course
Where Title of Course = "Calculus I".`)
	expectRows(t, r, [][]string{{"Algebra I"}})

	r = mustQuery(t, db, `
Retrieve Title of Transitive(prerequisites) of Course
Where Title of Course = "Quantum Chromodynamics".`)
	if r.NumRows() != 3 {
		t.Fatalf("closure rows = %v", rowStrings(r))
	}
}

// §4.9 example 6: instructors advising Physics majors, with their courses.
func TestExample6(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `
Retrieve name of instructor, title of courses-taught
Where name of major-department of advisees = "Physics".`)
	expectRows(t, r, [][]string{
		{"Joe Bloke", "Mechanics"},
		{"Joe Bloke", "Quantum Chromodynamics"},
	})
}

// §4.9 example 7: multi-perspective query with ISA and NOT.
func TestExample7MultiPerspective(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `
From student, instructor
Retrieve name of student, name of Instructor
Where birthdate of student < birthdate of instructor and
  advisor of student NEQ instructor and
  not instructor isa teaching-assistant.`)
	expectRows(t, r, [][]string{
		{"Tina Aide", "Bob Stone"},
		{"John Doe", "Bob Stone"},
		{"Mary Major", "Bob Stone"},
	})
}

func TestAggregates(t *testing.T) {
	db := universityDB(t, Config{})
	if v := singleValue(t, db, `From department Retrieve avg(salary of instructor) Where dept-nbr = 100.`); v.String() != "43750" {
		t.Errorf("avg salary = %s, want 43750", v)
	}
	// Dynamically derived attribute of department (§4.6).
	r := mustQuery(t, db, `From Department Retrieve Name, AVG(Salary of Instructors-employed) Order By Name.`)
	expectRows(t, r, [][]string{
		{"CS", "45000"},
		{"Math", "60000"},
		{"Physics", "50000"},
	})
	// COUNT of teachers across enrolled courses per student (§4.6).
	r = mustQuery(t, db, `From Student Retrieve Name, COUNT(Teachers of Courses-Enrolled) Order By Name.`)
	expectRows(t, r, [][]string{
		{"John Doe", "1"},
		{"Mary Major", "3"},
		{"NoAdv Kid", "0"},
		{"Tina Aide", "1"},
		{"Tom Thumb", "2"},
	})
	// No department offers courses in the fixture: sum over empty is NULL.
	if v := singleValue(t, db, `From department Retrieve sum(credits of courses-offered) Where dept-nbr = 100.`); !v.IsNull() {
		t.Errorf("sum over empty = %s, want NULL", v)
	}
	// A whole-class aggregate repeats per perspective instance (§4.5's
	// loop semantics); TABLE DISTINCT collapses it.
	if v := singleValue(t, db, `From course Retrieve Table Distinct min(credits of course).`); v.String() != "5" {
		t.Errorf("min credits = %s", v)
	}
	if v := singleValue(t, db, `From course Retrieve Table Distinct max(credits of course).`); v.String() != "12" {
		t.Errorf("max credits = %s", v)
	}
}

func TestQuantifiers(t *testing.T) {
	db := universityDB(t, Config{})
	// all(): every course Tom takes is taught by Ann.
	r := mustQuery(t, db, `From student Retrieve name Where "Ann Smith" = all(name of teachers of courses-enrolled) Order By name.`)
	// John, Tina: Algebra I (Ann) → true. Tom: Algebra+Calculus (Ann, Ann)
	// → true. Mary: includes Joe → false. NoAdv: vacuously true.
	expectRows(t, r, [][]string{{"John Doe"}, {"NoAdv Kid"}, {"Tina Aide"}, {"Tom Thumb"}})

	// no(): students taking no course taught by Joe.
	r = mustQuery(t, db, `From student Retrieve name Where "Joe Bloke" = no(name of teachers of courses-enrolled) Order By name.`)
	expectRows(t, r, [][]string{{"John Doe"}, {"NoAdv Kid"}, {"Tina Aide"}, {"Tom Thumb"}})
}

func TestLikePatternMatching(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From course Retrieve title Where title like "Quantum*".`)
	expectRows(t, r, [][]string{{"Quantum Chromodynamics"}})
	r = mustQuery(t, db, `From course Retrieve title Where title like "?????????" Order By title.`)
	expectRows(t, r, [][]string{{"Algebra I"}, {"Databases"}, {"Mechanics"}})
}

func TestTableDistinct(t *testing.T) {
	db := universityDB(t, Config{})
	plain := mustQuery(t, db, `From Student Retrieve Name of Advisor Where Advisor NEQ null.`)
	_ = plain
	dup := mustQuery(t, db, `From Student Retrieve Table Name of Advisor.`)
	dist := mustQuery(t, db, `From Student Retrieve Table Distinct Name of Advisor.`)
	if dup.NumRows() != 5 {
		t.Errorf("TABLE rows = %d, want 5 (one per student)", dup.NumRows())
	}
	if dist.NumRows() != 3 {
		t.Errorf("TABLE DISTINCT rows = %d, want 3 (Ann, Joe, NULL)", dist.NumRows())
	}
}

func TestStructuredOutput(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From Student Retrieve Structure Name, Title of Courses-Enrolled Where Student-Nbr = 1501.`)
	if r.Structured == nil {
		t.Fatal("no structured result")
	}
	// One student group with three course children.
	if len(r.Structured.Children) != 1 {
		t.Fatalf("top-level groups = %d", len(r.Structured.Children))
	}
	s := r.Structured.Children[0]
	if len(s.Values) != 1 || s.Values[0].String() != "Mary Major" {
		t.Errorf("student group values = %v", s.Values)
	}
	if len(s.Children) != 3 {
		t.Errorf("course groups = %d, want 3", len(s.Children))
	}
	out := r.FormatStructured()
	if !strings.Contains(out, "Mary Major") || !strings.Contains(out, "Mechanics") {
		t.Errorf("structured rendering:\n%s", out)
	}
}

func TestSubroleInTargets(t *testing.T) {
	db := universityDB(t, Config{})
	// Tina is student+instructor: the MV profession subrole yields a row
	// per role (§3.2: "retrieve symbolically all the roles an entity
	// participates in").
	r := mustQuery(t, db, `From Person Retrieve Profession Where Name = "Tina Aide".`)
	expectRows(t, r, [][]string{{"Student"}, {"Instructor"}})
	// Single-valued subrole.
	r = mustQuery(t, db, `From Student Retrieve Instructor-Status Where Name = "Tina Aide".`)
	expectRows(t, r, [][]string{{"Teaching-assistant"}})
	r = mustQuery(t, db, `From Student Retrieve Instructor-Status Where Name = "John Doe".`)
	expectRows(t, r, [][]string{{"?"}})
}

func TestRoleConversionAS(t *testing.T) {
	db := universityDB(t, Config{})
	// Teaching-load is a TA attribute; for plain students it is NULL.
	r := mustQuery(t, db, `From Student Retrieve Name, Teaching-Load of Student as Teaching-Assistant Order By Name.`)
	expectRows(t, r, [][]string{
		{"John Doe", "?"},
		{"Mary Major", "?"},
		{"NoAdv Kid", "?"},
		{"Tina Aide", "5"},
		{"Tom Thumb", "?"},
	})
}

func TestIsa(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From Instructor Retrieve Name Where Instructor isa Teaching-Assistant.`)
	expectRows(t, r, [][]string{{"Tina Aide"}})
}

func TestInverseReference(t *testing.T) {
	db := universityDB(t, Config{})
	// INVERSE(ADVISOR) names advisees (§3.2).
	a := mustQuery(t, db, `From Instructor Retrieve Name of Advisees Where Name = "Ann Smith".`)
	b := mustQuery(t, db, `From Instructor Retrieve Name of INVERSE(ADVISOR) Where Name = "Ann Smith".`)
	expectRows(t, b, rowStrings(a))
	if a.NumRows() != 2 {
		t.Fatalf("Ann advises %d", a.NumRows())
	}
	// Implicit inverse of courses-offered is reachable only via INVERSE.
	r := mustQuery(t, db, `From Course Retrieve Name of INVERSE(courses-offered) Where Title = "Algebra I".`)
	expectRows(t, r, [][]string{{"?"}}) // no department offers it yet
	mustExec(t, db, `Modify department (courses-offered := include course with (title = "Algebra I")) Where name = "Math".`)
	r = mustQuery(t, db, `From Course Retrieve Name of INVERSE(courses-offered) Where Title = "Algebra I".`)
	expectRows(t, r, [][]string{{"Math"}})
}

func TestSelfInverseSpouse(t *testing.T) {
	db := universityDB(t, Config{})
	mustExec(t, db, `Modify person (spouse := person with (name = "Mary Major")) Where name = "John Doe".`)
	r := mustQuery(t, db, `From Person Retrieve Name of Spouse Where Name = "Mary Major".`)
	expectRows(t, r, [][]string{{"John Doe"}})
	// Spouse as Student role conversion (§4.2's example).
	r = mustQuery(t, db, `From Student Retrieve Student-Nbr of Spouse as Student of Student Where Name = "John Doe".`)
	expectRows(t, r, [][]string{{"1501"}})
}

func TestDeleteSemantics(t *testing.T) {
	db := universityDB(t, Config{})
	// Deleting the student role keeps the person (§4.8).
	mustExec(t, db, `Delete student Where name = "Tom Thumb".`)
	r := mustQuery(t, db, `From Person Retrieve Name Where Name = "Tom Thumb".`)
	if r.NumRows() != 1 {
		t.Fatal("person vanished with student role")
	}
	r = mustQuery(t, db, `From Student Retrieve Name Where Name = "Tom Thumb".`)
	if r.NumRows() != 0 {
		t.Fatal("student role survived delete")
	}
	// Deleting the person removes every role (Tina is student+instructor+TA).
	mustExec(t, db, `Delete person Where name = "Tina Aide".`)
	for _, cls := range []string{"person", "student", "instructor", "teaching-assistant"} {
		r := mustQuery(t, db, `From `+cls+` Retrieve Name Where Name = "Tina Aide".`)
		if r.NumRows() != 0 {
			t.Errorf("%s role survived person delete", cls)
		}
	}
	// Referential integrity: Databases lost Tina, keeping only Bob.
	r = mustQuery(t, db, `From Course Retrieve count(teachers) Where Title = "Databases".`)
	expectRows(t, r, [][]string{{"1"}})
	r = mustQuery(t, db, `From Course Retrieve Name of Teachers Where Title = "Databases".`)
	expectRows(t, r, [][]string{{"Bob Stone"}})
}

func TestMultiPerspectiveSelfJoin(t *testing.T) {
	db := universityDB(t, Config{})
	// Pairs of distinct students sharing an advisor.
	r := mustQuery(t, db, `
From student s1, student s2
Retrieve name of s1, name of s2
Where advisor of s1 = advisor of s2 and soc-sec-no of s1 < soc-sec-no of s2.`)
	expectRows(t, r, [][]string{
		{"Tina Aide", "Tom Thumb"},
		{"John Doe", "Mary Major"},
	})
}

func TestPerspectiveInference(t *testing.T) {
	db := universityDB(t, Config{})
	// No FROM clause: the perspective comes from the qualification tails.
	r := mustQuery(t, db, `Retrieve Name of Department Order By Name of Department.`)
	expectRows(t, r, [][]string{{"CS"}, {"Math"}, {"Physics"}})
}

func TestOrderByDescendingData(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From Instructor Retrieve Salary, Name Order By Salary, Name.`)
	expectRows(t, r, [][]string{
		{"20000", "Tina Aide"},
		{"45000", "Bob Stone"},
		{"50000", "Joe Bloke"},
		{"60000", "Ann Smith"},
	})
}

func TestFactoredTargets(t *testing.T) {
	db := universityDB(t, Config{})
	a := mustQuery(t, db, `From Student Retrieve (Title, Credits) of Courses-Enrolled Where Name = "Tom Thumb".`)
	b := mustQuery(t, db, `From Student Retrieve Title of Courses-Enrolled, Credits of Courses-Enrolled Where Name = "Tom Thumb".`)
	expectRows(t, a, rowStrings(b))
}
