package sim

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"sim/internal/obs"
)

// TestQueryTraceMatchesQuery runs the same statement through Query and
// QueryTrace and checks that the traced path returns identical rows and
// that the per-node profile agrees with the actual result.
func TestQueryTraceMatchesQuery(t *testing.T) {
	db := universityDB(t, Config{})

	const q = `From student Retrieve name, name of advisor.`
	plain := mustQuery(t, db, q)
	traced, tr, err := db.QueryTrace(q)
	if err != nil {
		t.Fatalf("QueryTrace: %v", err)
	}
	expectRows(t, traced, rowStrings(plain))

	if tr.Rows != traced.NumRows() {
		t.Errorf("trace Rows = %d, result has %d", tr.Rows, traced.NumRows())
	}
	if len(tr.Nodes) == 0 {
		t.Fatal("trace has no query-tree nodes")
	}
	// The outermost node enumerates the student extent: 4 students plus
	// the teaching assistant (a Student subrole).
	ext := mustQuery(t, db, `From student Retrieve name.`)
	if got, want := tr.Nodes[0].Instances, int64(ext.NumRows()); got != want {
		t.Errorf("root node instances = %d, student extent has %d", got, want)
	}
	if tr.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", tr.Workers)
	}
	if tr.Statement != q {
		t.Errorf("Statement = %q", tr.Statement)
	}
}

// TestQueryTraceNestedCounts checks the profile of a two-level query:
// the inner node's instance count is the total number of enrollments
// enumerated across all outer instances.
func TestQueryTraceNestedCounts(t *testing.T) {
	db := universityDB(t, Config{})

	res, tr, err := db.QueryTrace(`From student Retrieve name, title of courses-enrolled.`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows != res.NumRows() {
		t.Errorf("trace Rows = %d, result has %d", tr.Rows, res.NumRows())
	}
	if len(tr.Nodes) < 1 {
		t.Fatalf("nodes = %+v", tr.Nodes)
	}
	if tr.Instances < tr.Nodes[0].Instances {
		t.Errorf("total instances %d < root instances %d", tr.Instances, tr.Nodes[0].Instances)
	}
}

// TestQueryTraceTimings checks the span accounting invariants: phases
// nest inside the total, and the root node's inclusive wall is bounded
// by the execute phase.
func TestQueryTraceTimings(t *testing.T) {
	db := universityDB(t, Config{})

	_, tr, err := db.QueryTrace(`From student Retrieve name, name of advisor.`)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 5 * time.Millisecond
	if sum := tr.Parse + tr.Plan + tr.Exec; sum > tr.Total+tol {
		t.Errorf("parse %v + plan %v + exec %v > total %v", tr.Parse, tr.Plan, tr.Exec, tr.Total)
	}
	if tr.Exec <= 0 {
		t.Errorf("exec span = %v, want > 0", tr.Exec)
	}
	if len(tr.Nodes) > 0 && tr.Nodes[0].Wall > tr.Exec+tol {
		t.Errorf("root node wall %v exceeds exec span %v", tr.Nodes[0].Wall, tr.Exec)
	}
}

// TestQueryTracePlanCache checks that a repeated statement is marked as
// plan-cached with no parse/plan spans.
func TestQueryTracePlanCache(t *testing.T) {
	db := universityDB(t, Config{})

	const q = `From department Retrieve name.`
	_, first, err := db.QueryTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanCached {
		t.Error("first execution reported a cached plan")
	}
	if first.Parse <= 0 || first.Plan <= 0 {
		t.Errorf("first execution spans: parse %v plan %v, want > 0", first.Parse, first.Plan)
	}
	_, second, err := db.QueryTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.PlanCached {
		t.Error("second execution did not hit the plan cache")
	}
	if second.Parse != 0 || second.Plan != 0 {
		t.Errorf("cached execution spans: parse %v plan %v, want 0", second.Parse, second.Plan)
	}
}

// TestExplainAnalyzeOutput checks the rendered tree: per-node rows,
// span summary, cache deltas, and the statement itself.
func TestExplainAnalyzeOutput(t *testing.T) {
	db := universityDB(t, Config{})

	out, err := db.ExplainAnalyze(`From student Retrieve name, name of advisor.`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rows=", "wall=", "parse ", "exec ", "total ", "pager hits=", "luc-cache hits="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
}

// TestQueryTraceRejectsUpdates checks that the trace path only accepts
// Retrieve statements and counts errors like the plain query path.
func TestQueryTraceRejectsUpdates(t *testing.T) {
	db := universityDB(t, Config{})

	if _, _, err := db.QueryTrace(`Insert department (dept-nbr := 900, name := "X").`); err == nil {
		t.Error("QueryTrace accepted an update statement")
	}
	if _, err := db.ExplainAnalyze(`From nowhere Retrieve x.`); err == nil {
		t.Error("ExplainAnalyze accepted a bad statement")
	}
	if got := db.Metrics().Get("sim_query_errors_total"); got < 2 {
		t.Errorf("sim_query_errors_total = %v, want >= 2", got)
	}
}

// TestStatsAndResetScope checks the rebuilt Stats surface and the
// documented ResetStats scope: pool, plan-cache, LUC-cache and executor
// counters reset; WAL totals survive.
func TestStatsAndResetScope(t *testing.T) {
	db := universityDB(t, Config{})

	const q = `From student Retrieve name.`
	mustQuery(t, db, q)
	mustQuery(t, db, q)

	st := db.Stats()
	if st.Exec.Queries == 0 {
		t.Error("Exec.Queries = 0 after queries")
	}
	if st.Exec.Rows == 0 || st.Exec.Instances == 0 {
		t.Errorf("Exec rows/instances = %d/%d, want > 0", st.Exec.Rows, st.Exec.Instances)
	}
	if st.Exec.Updates == 0 || st.Exec.Entities == 0 {
		t.Errorf("Exec updates/entities = %d/%d after fixture inserts, want > 0",
			st.Exec.Updates, st.Exec.Entities)
	}
	if st.Plans.Hits == 0 {
		t.Error("plan cache hits = 0 after a repeated statement")
	}

	db.ResetStats()
	st = db.Stats()
	if st.Exec.Queries != 0 || st.Exec.Rows != 0 || st.Exec.Updates != 0 {
		t.Errorf("exec counters after ResetStats: %+v", st.Exec)
	}
	if st.Plans.Hits != 0 || st.Plans.Misses != 0 {
		t.Errorf("plan cache counters after ResetStats: %+v", st.Plans)
	}
	if st.Pool.Hits != 0 || st.Pool.Misses != 0 {
		t.Errorf("pool counters after ResetStats: %+v", st.Pool)
	}
	if st.Cache.Hits != 0 || st.Cache.Misses != 0 {
		t.Errorf("LUC cache counters after ResetStats: %+v", st.Cache)
	}

	// Counters resume from zero.
	mustQuery(t, db, q)
	if st := db.Stats(); st.Exec.Queries != 1 {
		t.Errorf("Exec.Queries after reset + one query = %d, want 1", st.Exec.Queries)
	}
}

// TestWALStatsSurvivesReset checks the durability counters on a
// file-backed database: they are lifetime facts, so ResetStats leaves
// them alone.
func TestWALStatsSurvivesReset(t *testing.T) {
	db, err := Open(t.TempDir()+"/u.db", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(`Class Widget ( wname: string[10] required );`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`Insert widget (wname := "gear").`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.WAL.Commits == 0 {
		t.Fatal("WAL commits = 0 after an insert on a file-backed store")
	}
	db.ResetStats()
	if got := db.Stats().WAL.Commits; got != st.WAL.Commits {
		t.Errorf("WAL commits after ResetStats = %d, want %d (lifetime total)", got, st.WAL.Commits)
	}
	var b strings.Builder
	db.Metrics().WritePrometheus(&b)
	if !strings.Contains(b.String(), "sim_wal_commits_total") {
		t.Error("/metrics output missing sim_wal_commits_total on a file-backed store")
	}
}

// TestSlowQueryLog checks that Config.SlowQuery retains slow statements
// and bumps the counter, and that the log is off by default.
func TestSlowQueryLog(t *testing.T) {
	db := universityDB(t, Config{SlowQuery: time.Nanosecond})

	const q = `From student Retrieve name, name of advisor.`
	mustQuery(t, db, q)
	entries := db.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow-query entries with a 1ns threshold")
	}
	last := entries[len(entries)-1]
	if last.Statement != q {
		t.Errorf("slow entry statement = %q", last.Statement)
	}
	if last.Duration <= 0 || last.When.IsZero() {
		t.Errorf("slow entry not filled in: %+v", last)
	}
	if got := db.Metrics().Get("sim_slow_queries_total"); got < 1 {
		t.Errorf("sim_slow_queries_total = %v, want >= 1", got)
	}

	off := universityDB(t, Config{})
	mustQuery(t, off, q)
	if n := len(off.SlowQueries()); n != 0 {
		t.Errorf("slow log has %d entries with no threshold configured", n)
	}
}

// TestSlowQueryRequestID checks that a request ID carried by the query's
// context is retained in the slow-query ring, so a slow statement can be
// correlated with its wire request and flight-recorder events.
func TestSlowQueryRequestID(t *testing.T) {
	db := universityDB(t, Config{SlowQuery: time.Nanosecond})
	const q = `From student Retrieve name.`
	ctx := obs.WithRequestID(context.Background(), 0xfeed)
	if _, err := db.QueryCtx(ctx, q); err != nil {
		t.Fatal(err)
	}
	entries := db.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow-query entries with a 1ns threshold")
	}
	if got := entries[len(entries)-1].ID; got != 0xfeed {
		t.Errorf("slow entry ID = %x, want feed", got)
	}
}

// TestMetricsPrometheus scrapes the registry and checks the exposition
// format and the presence of every engine metric family.
func TestMetricsPrometheus(t *testing.T) {
	db := universityDB(t, Config{})
	mustQuery(t, db, `From student Retrieve name.`)

	var b strings.Builder
	db.Metrics().WritePrometheus(&b)
	out := b.String()
	for _, family := range []string{
		"sim_pager_hits_total",
		"sim_pager_pages",
		"sim_luc_cache_hits_total",
		"sim_plan_cache_misses_total",
		"sim_exec_queries_total",
		"sim_exec_rows_total",
		"sim_query_seconds_bucket",
		"sim_query_seconds_count",
		"sim_slow_queries_total",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("/metrics output missing %s", family)
		}
	}
	if !strings.Contains(out, "# TYPE sim_exec_queries_total counter") {
		t.Error("missing # TYPE line for sim_exec_queries_total")
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Error("histogram has no +Inf bucket")
	}
}

// TestTraceConcurrent races traced and untraced queries (plus the
// Prometheus scraper) over one database; run under -race this checks the
// tracing path adds no shared mutable state to plain queries.
func TestTraceConcurrent(t *testing.T) {
	db := universityDB(t, Config{})

	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := db.Query(`From student Retrieve name.`); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, _, err := db.QueryTrace(`From student Retrieve name, name of advisor.`); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			var b strings.Builder
			db.Metrics().WritePrometheus(&b)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
