package sim

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sim/internal/exec"
	"sim/internal/obs"
	"sim/internal/plan"
)

// PlanCacheStats reports session plan-cache activity.
type PlanCacheStats struct {
	Hits    uint64 // queries served from a cached plan
	Misses  uint64 // queries that paid parse+bind+optimize
	Entries int    // plans currently cached
}

// defaultPlanCacheSize is the plan-cache capacity when Config.PlanCacheSize
// is zero.
const defaultPlanCacheSize = 256

// planCache is an LRU of optimized query plans keyed by DML text. Hot
// repeated Retrieve statements skip parse/bind/optimize entirely; the
// database layer clears the cache whenever the schema (and with it the
// catalog every cached plan points into) is rebuilt. A nil *planCache is a
// valid always-miss cache (Config.PlanCacheSize < 0).
type planCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // most recently used at front

	hits   atomic.Uint64
	misses atomic.Uint64
}

type planEntry struct {
	key  string
	p    *plan.Plan
	prog *exec.Program // compiled form; nil when the plan fell back to the tree walker
}

func newPlanCache(capacity int) *planCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = defaultPlanCacheSize
	}
	return &planCache{
		cap: capacity,
		m:   make(map[string]*list.Element, capacity),
		lru: list.New(),
	}
}

func (c *planCache) get(key string) (*plan.Plan, *exec.Program, bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	en := el.Value.(*planEntry)
	return en.p, en.prog, true
}

func (c *planCache) put(key string, p *plan.Plan, prog *exec.Program) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		en := el.Value.(*planEntry)
		en.p, en.prog = p, prog
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*planEntry).key)
	}
	c.m[key] = c.lru.PushFront(&planEntry{key: key, p: p, prog: prog})
}

// clear drops every cached plan (schema change invalidation).
func (c *planCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]*list.Element, c.cap)
	c.lru.Init()
}

// resetStats zeroes the hit/miss counters without touching cached plans.
func (c *planCache) resetStats() {
	if c == nil {
		return
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

// registerMetrics publishes the cache counters; safe on a nil (disabled)
// cache, where the readers report zero.
func (c *planCache) registerMetrics(r *obs.Registry) {
	r.CounterFunc("sim_plan_cache_hits_total", "Queries served from a cached plan.",
		func() float64 {
			if c == nil {
				return 0
			}
			return float64(c.hits.Load())
		})
	r.CounterFunc("sim_plan_cache_misses_total", "Queries that paid parse+bind+optimize.",
		func() float64 {
			if c == nil {
				return 0
			}
			return float64(c.misses.Load())
		})
	r.GaugeFunc("sim_plan_cache_entries", "Plans currently cached.",
		func() float64 {
			if c == nil {
				return 0
			}
			c.mu.Lock()
			n := c.lru.Len()
			c.mu.Unlock()
			return float64(n)
		})
}

func (c *planCache) stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}
