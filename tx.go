package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/dmsii"
	"sim/internal/exec"
	"sim/internal/luc"
	"sim/internal/obs"
	"sim/internal/parser"
	"sim/internal/value"
)

// Transaction errors.
var (
	// ErrTxDone is returned by operations on a transaction that has
	// already been committed or rolled back.
	ErrTxDone = errors.New("sim: transaction already finished")

	// ErrTxAborted wraps the statement error that aborted a transaction.
	// After a statement inside a Tx fails, the transaction's effects are
	// already rolled back and every later operation fails with this error;
	// the caller should Rollback (a no-op) and retry the whole transaction.
	ErrTxAborted = errors.New("sim: transaction aborted")

	// ErrConflict is wrapped by Tx.Exec when an entity the statement
	// targets is write-latched by another open transaction: first writer
	// wins, the loser fails fast instead of waiting. A conflict does not
	// abort the transaction — the caller may commit what it has, retry the
	// statement later, or roll back. Two transactions writing distinct
	// entities never conflict, even within one class.
	ErrConflict = dmsii.ErrConflict

	// ErrReadOnlyTx is returned by Exec on a transaction opened with the
	// ReadOnly option.
	ErrReadOnlyTx = errors.New("sim: read-only transaction")
)

// TxOption configures a transaction at Begin time.
type TxOption func(*txOptions)

type txOptions struct {
	readOnly bool
}

// ReadOnly opens the transaction as a pure snapshot reader: it pins the
// latest committed version stamp at Begin and every Query sees exactly
// that state — repeatable reads with no locks, no latches, and no
// possibility of ErrConflict. Exec fails with ErrReadOnlyTx. Read-only
// transactions never block writers and writers never block them.
func ReadOnly() TxOption {
	return func(o *txOptions) { o.readOnly = true }
}

// Tx is an explicit transaction: a sequence of statements that commits or
// rolls back as a unit. Obtain one from Database.Begin, and always finish
// it with Commit or Rollback.
//
// Reads are snapshot-anchored: until its first update statement the
// transaction sees exactly the committed state pinned at Begin
// (repeatable reads), without taking any store-wide lock. After the
// first write, reads switch to the live pages — stable under the store's
// write latch — so statements see the transaction's own uncommitted
// writes.
//
// Write isolation is first-writer-wins at entity granularity: each
// update statement write-latches the entities it targets for the life of
// the transaction, and a second transaction writing any of the same
// entities fails with ErrConflict. Transactions writing distinct
// entities — even of the same class — do not conflict. A failed
// statement (constraint violation, type error, cancellation mid-update)
// aborts the whole transaction — there are no savepoints — after which
// every method reports ErrTxAborted wrapping the cause. Conflicts and
// parse errors do not abort.
//
// A Tx is not safe for concurrent use by multiple goroutines.
type Tx struct {
	db     *Database
	txn    *dmsii.Txn     // nil for read-only transactions
	snap   *dmsii.Snap    // pinned read snapshot; nil once the tx has written
	view   *exec.Executor // cached snapshot-view executor for snap
	viewOf *luc.Mapper    // mapper the view was built over (schema-change invalidation)
	ro     bool
	done   bool
	auto   bool  // one-statement autocommit: skip snapshot + entity latches (see execStmt)
	wrote  bool  // the substrate write latch has been acquired
	err    error // sticky abort cause; effects already rolled back
}

// Begin starts an explicit transaction. Reads are pinned to the
// committed state as of Begin (see Tx); the transaction takes no locks
// until its first update statement, so an idle or read-only Tx never
// blocks other writers. Options: ReadOnly yields a pure snapshot reader.
// The context covers Begin itself only; pass a context to each statement
// and use Commit/Rollback to finish.
func (db *Database) Begin(ctx context.Context, opts ...TxOption) (*Tx, error) {
	return db.begin(ctx, false, opts...)
}

// begin is Begin plus the internal autocommit flag. Autocommit
// transactions execute one statement entirely under the store's write
// latch and commit immediately, so they skip the snapshot pin (they never
// read before writing) and the entity latches (they cannot interleave
// with anyone; against an open transaction they queue on the write latch
// instead of conflicting).
func (db *Database) begin(ctx context.Context, auto bool, opts ...TxOption) (*Tx, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var o txOptions
	for _, fn := range opts {
		fn(&o)
	}
	if o.readOnly {
		return &Tx{db: db, ro: true, snap: db.store.PinSnapshot()}, nil
	}
	txn, err := db.store.BeginSession()
	if err != nil {
		return nil, err
	}
	// The request ID carried by ctx (the client's TBegin frame) names the
	// transaction in the flight recorder and the replication stream even
	// when the commit is not explicitly traced.
	txn.SetTrace(obs.RequestID(ctx), nil)
	tx := &Tx{db: db, txn: txn, auto: auto}
	if !auto {
		tx.snap = db.store.PinSnapshot()
	}
	return tx, nil
}

// Query executes one Retrieve statement inside the transaction. Before
// the transaction's first write it sees the snapshot pinned at Begin;
// after the first write it sees the transaction's own uncommitted writes.
func (tx *Tx) Query(ctx context.Context, dml string) (*Result, error) {
	if err := tx.usable(); err != nil {
		return nil, err
	}
	db := tx.db
	start := time.Now()
	res, err := tx.query(ctx, dml)
	d := time.Since(start)
	db.queryHist.Observe(d)
	if err != nil {
		db.queryErrs.Inc()
		return nil, err
	}
	if db.slow.Observe(dml, d, res.Stats.Rows, obs.RequestID(ctx)) {
		db.slowCount.Inc()
	}
	return res, nil
}

func (tx *Tx) query(ctx context.Context, dml string) (*Result, error) {
	db := tx.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.queryOn(ctx, dml, tx.readViewLocked(), nil)
}

// readViewLocked returns the executor this transaction's reads run on.
// A transaction that has written holds the store write latch until it
// finishes, so reading the live pages is stable and sees its own writes;
// before the first write (and for read-only transactions) reads go
// through the snapshot pinned at Begin, via a cached view executor.
// The caller holds db.mu (read suffices).
func (tx *Tx) readViewLocked() *exec.Executor {
	db := tx.db
	if tx.snap == nil {
		return db.exe
	}
	if tx.view == nil || tx.viewOf != db.mapper {
		tx.view = db.exe.View(db.mapper.View(tx.snap))
		tx.viewOf = db.mapper
	}
	return tx.view
}

// Exec executes one update statement (Insert, Modify or Delete) inside
// the transaction and returns the number of affected entities. Exec
// first claims per-entity write latches for the statement's targets —
// failing fast with ErrConflict if another open transaction holds any of
// them — then acquires the store's write latch (blocking, under ctx,
// while another transaction is in its write phase). On a statement error
// the transaction aborts: its earlier effects are rolled back and the Tx
// is dead (ErrTxAborted). Parse errors and conflicts do not abort.
func (tx *Tx) Exec(ctx context.Context, dml string) (int, error) {
	if err := tx.usable(); err != nil {
		return 0, err
	}
	if tx.ro {
		return 0, ErrReadOnlyTx
	}
	start := time.Now()
	stmt, err := parser.ParseStmt(dml)
	if err != nil {
		return 0, err
	}
	n, err := tx.execStmt(ctx, stmt)
	tx.db.execHist.Observe(time.Since(start))
	return n, err
}

// Commit durably applies the transaction. For a transaction that wrote,
// Commit enqueues the changes on the WAL, waits for the fsync of its
// commit group — concurrent committers share one fsync (group commit) —
// and publishes a new visible version stamp that later snapshots read.
// After an abort, Commit returns the sticky ErrTxAborted cause.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.releaseSnap()
	if tx.err != nil {
		return tx.err // effects already rolled back at abort time
	}
	if tx.txn == nil {
		return nil // read-only: nothing to apply
	}
	if err := tx.txn.Commit(); err != nil {
		// The commit group never became durable (e.g. a poisoned WAL) and
		// the substrate discarded — or will discard — the uncommitted
		// pages. The record caches may still hold this transaction's
		// entities; drop them — under db.mu, excluding concurrent
		// executors — so reads go back to the durable pages.
		tx.db.mu.Lock()
		tx.db.mapper.ResetCaches()
		tx.db.mu.Unlock()
		return err
	}
	return nil
}

// CommitTraced is Commit with a span breakdown: it returns where the
// commit spent its time — entity-latch and write-latch waits, the wait
// for the group-commit leader to pick the batch up, the shared fsync, and
// the replication position the commit group published at. The trace ID is
// taken from ctx (see obs.WithRequestID); the same ID is then findable in
// the flight recorder on the primary and on every follower that applied
// the group. The trace is valid even when the commit fails (spans up to
// the failure are filled).
func (tx *Tx) CommitTraced(ctx context.Context) (*obs.CommitTrace, error) {
	ct := &obs.CommitTrace{}
	if !tx.done && tx.err == nil && tx.txn != nil {
		tx.txn.SetTrace(obs.RequestID(ctx), ct)
	}
	start := time.Now()
	err := tx.Commit()
	ct.Total = time.Since(start)
	return ct, err
}

// Rollback discards the transaction's effects. Rolling back a finished
// transaction is a no-op, so `defer tx.Rollback()` is always safe.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	tx.releaseSnap()
	if tx.txn == nil {
		return nil
	}
	if !tx.wrote {
		return tx.txn.Rollback()
	}
	return tx.discard()
}

// ReadOnly reports whether the transaction was opened with the ReadOnly
// option.
func (tx *Tx) ReadOnly() bool { return tx.ro }

// releaseSnap unpins the transaction's read snapshot so checkpoint-time
// version GC can reclaim the page versions it held visible. Idempotent.
func (tx *Tx) releaseSnap() {
	if tx.snap != nil {
		tx.snap.Release()
		tx.snap = nil
		tx.view, tx.viewOf = nil, nil
	}
}

// usable reports why the transaction cannot accept another statement.
func (tx *Tx) usable() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.err != nil {
		return tx.err
	}
	return nil
}

// latchBase is the entity-latch namespace for a class: the hierarchy's
// base class, lower-cased. Surrogates identify entities within it, so
// statements targeting the same entity through different subclasses
// contend on the same latch.
func latchBase(cl *catalog.Class) string {
	return strings.ToLower(cl.Base.Name)
}

// prelatch resolves the statement's target entities on the transaction's
// read view and claims their write latches before blocking on the store
// write latch. This keeps first-writer-wins fail-fast: a conflicting
// statement returns ErrConflict immediately — before acquiring or waiting
// on any store-wide lock, and before mutating anything — so it does not
// abort the transaction and cannot deadlock against the latch holder.
// The resolution is advisory (the statement re-selects its targets when
// it executes; the claim and write hooks below latch whatever it then
// touches), so resolution errors are ignored here and surface from the
// real execution.
func (tx *Tx) prelatch(ctx context.Context, stmt ast.Stmt) error {
	db := tx.db
	db.mu.RLock()
	exe := tx.readViewLocked()
	cl, surrs, err := exe.UpdateTargets(ctx, stmt)
	db.mu.RUnlock()
	if err != nil || cl == nil || len(surrs) == 0 {
		return nil
	}
	base := latchBase(cl)
	for _, s := range surrs {
		if err := tx.txn.LatchEntity(base, uint64(s)); err != nil {
			return err
		}
	}
	return nil
}

// execStmt runs one parsed update statement inside the transaction. The
// caller has checked usable() and ro.
func (tx *Tx) execStmt(ctx context.Context, stmt ast.Stmt) (int, error) {
	switch stmt.(type) {
	case *ast.InsertStmt, *ast.ModifyStmt, *ast.DeleteStmt:
	case *ast.RetrieveStmt:
		return 0, fmt.Errorf("sim: Exec wants an update statement; use Query for Retrieve")
	case *ast.BeginStmt, *ast.CommitStmt, *ast.RollbackStmt:
		return 0, fmt.Errorf("sim: use Begin/Commit/Rollback methods (or Run) for transaction control")
	default:
		return 0, fmt.Errorf("sim: unsupported statement %T", stmt)
	}
	// First writer wins, per entity: resolve the statement's targets on
	// the transaction's read view and latch them, failing fast while the
	// conflict is still side-effect-free. Autocommit transactions skip
	// entity latches entirely: they execute and commit under the store's
	// write latch, so they cannot interleave with anyone; against an open
	// transaction they queue on the write latch (bounded by ctx) instead
	// of conflicting.
	if !tx.auto {
		if err := tx.prelatch(ctx, stmt); err != nil {
			return 0, err
		}
	}
	if err := tx.txn.AcquireWrite(ctx); err != nil {
		return 0, err
	}
	if !tx.wrote {
		tx.wrote = true
		// Reads switch from the Begin-time snapshot to the live pages:
		// stable under the write latch just acquired, and the only view
		// that includes this transaction's own writes.
		tx.releaseSnap()
	}
	db := tx.db
	db.mu.RLock()
	exe := db.exe
	// written flips once the statement mutates anything; an entity
	// conflict raised before that (the claim hook, or the write hook on
	// the statement's first touch) is side-effect-free and must not abort.
	written := false
	if !tx.auto {
		claim := func(cl *catalog.Class, surrs []value.Surrogate) error {
			base := latchBase(cl)
			for _, s := range surrs {
				if err := tx.txn.LatchEntity(base, uint64(s)); err != nil {
					return err
				}
			}
			return nil
		}
		// The write hook is the backstop for entities the target
		// resolution cannot see — EVA partners, entities displaced by a
		// UNIQUE reassignment, freshly created entities. Latching is
		// reentrant, so re-touching a claimed entity is free.
		hook := func(base *catalog.Class, s value.Surrogate) error {
			if err := tx.txn.LatchEntity(latchBase(base), uint64(s)); err != nil {
				return err
			}
			written = true
			return nil
		}
		exe = db.exe.View(db.mapper.WithOnWrite(hook)).WithClaim(claim)
	}
	var n int
	var err error
	switch s := stmt.(type) {
	case *ast.InsertStmt:
		n, err = exe.Insert(ctx, s)
	case *ast.ModifyStmt:
		n, err = exe.Modify(ctx, s)
	case *ast.DeleteStmt:
		n, err = exe.Delete(ctx, s)
	}
	db.mu.RUnlock()
	if err != nil {
		if errors.Is(err, ErrConflict) && !written {
			// Nothing was mutated: the transaction keeps its earlier
			// effects and latches, and the caller may commit or retry.
			return 0, err
		}
		return 0, tx.abort(err)
	}
	return n, nil
}

// abort rolls back the whole transaction after a failed statement and
// makes the Tx sticky-fail with the cause.
func (tx *Tx) abort(cause error) error {
	tx.err = fmt.Errorf("%w: %w", ErrTxAborted, cause)
	tx.releaseSnap()
	if derr := tx.discard(); derr != nil {
		return fmt.Errorf("%w (rollback also failed: %v)", cause, derr)
	}
	return cause
}

// discard rolls back the substrate transaction and resets the record
// caches, excluding readers (db.mu) so no page is pinned mid-discard.
// The caller holds the write latch (tx.wrote), which orders before db.mu.
func (tx *Tx) discard() error {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	err := tx.txn.Rollback()
	tx.db.mapper.ResetCaches()
	return err
}
