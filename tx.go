package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"sim/internal/ast"
	"sim/internal/dmsii"
	"sim/internal/obs"
	"sim/internal/parser"
)

// Transaction errors.
var (
	// ErrTxDone is returned by operations on a transaction that has
	// already been committed or rolled back.
	ErrTxDone = errors.New("sim: transaction already finished")

	// ErrTxAborted wraps the statement error that aborted a transaction.
	// After a statement inside a Tx fails, the transaction's effects are
	// already rolled back and every later operation fails with this error;
	// the caller should Rollback (a no-op) and retry the whole transaction.
	ErrTxAborted = errors.New("sim: transaction aborted")

	// ErrConflict is wrapped by Tx.Exec when the statement's target class
	// is write-latched by another open transaction: first writer wins, the
	// loser fails fast instead of waiting. A conflict does not abort the
	// transaction — the caller may commit what it has, retry the statement
	// later, or roll back.
	ErrConflict = dmsii.ErrConflict
)

// Tx is an explicit transaction: a sequence of statements that commits or
// rolls back as a unit. Obtain one from Database.Begin, and always finish
// it with Commit or Rollback.
//
// Statements inside a transaction see its own uncommitted writes.
// Isolation is first-writer-wins: Exec write-latches the statement's
// target class for the life of the transaction, and a second transaction
// writing the same class fails with ErrConflict. A failed statement
// (constraint violation, type error, cancellation mid-update) aborts the
// whole transaction — there are no savepoints — after which every method
// reports ErrTxAborted wrapping the cause.
//
// A Tx is not safe for concurrent use by multiple goroutines.
type Tx struct {
	db    *Database
	txn   *dmsii.Txn
	done  bool
	auto  bool  // one-statement autocommit: skip the class latch (see execStmt)
	wrote bool  // the substrate write latch has been acquired
	err   error // sticky abort cause; effects already rolled back
}

// Begin starts an explicit transaction. The transaction holds no locks
// until its first update statement, so an idle or read-only Tx never
// blocks other writers. The context covers Begin itself only; pass a
// context to each statement and use Commit/Rollback to finish.
func (db *Database) Begin(ctx context.Context) (*Tx, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	txn, err := db.store.BeginSession()
	if err != nil {
		return nil, err
	}
	// The request ID carried by ctx (the client's TBegin frame) names the
	// transaction in the flight recorder and the replication stream even
	// when the commit is not explicitly traced.
	txn.SetTrace(obs.RequestID(ctx), nil)
	return &Tx{db: db, txn: txn}, nil
}

// Query executes one Retrieve statement inside the transaction. It sees
// the transaction's own uncommitted writes.
func (tx *Tx) Query(ctx context.Context, dml string) (*Result, error) {
	if err := tx.usable(); err != nil {
		return nil, err
	}
	return tx.db.QueryCtx(ctx, dml)
}

// Exec executes one update statement (Insert, Modify or Delete) inside
// the transaction and returns the number of affected entities. The first
// Exec acquires the store's write latch (blocking, under ctx, while
// another transaction is in its write phase) and each statement
// write-latches its target class; see ErrConflict. On a statement error
// the transaction aborts: its earlier effects are rolled back and the Tx
// is dead (ErrTxAborted). Parse errors and conflicts do not abort.
func (tx *Tx) Exec(ctx context.Context, dml string) (int, error) {
	if err := tx.usable(); err != nil {
		return 0, err
	}
	start := time.Now()
	stmt, err := parser.ParseStmt(dml)
	if err != nil {
		return 0, err
	}
	n, err := tx.execStmt(ctx, stmt)
	tx.db.execHist.Observe(time.Since(start))
	return n, err
}

// Commit durably applies the transaction. For a transaction that wrote,
// Commit enqueues the changes on the WAL and waits for the fsync of its
// commit group — concurrent committers share one fsync (group commit).
// After an abort, Commit returns the sticky ErrTxAborted cause.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	if tx.err != nil {
		return tx.err // effects already rolled back at abort time
	}
	if err := tx.txn.Commit(); err != nil {
		// The commit group never became durable (e.g. a poisoned WAL) and
		// the substrate discarded — or will discard — the uncommitted
		// pages. The record caches may still hold this transaction's
		// entities; drop them — under db.mu, excluding concurrent
		// executors — so reads go back to the durable pages.
		tx.db.mu.Lock()
		tx.db.mapper.ResetCaches()
		tx.db.mu.Unlock()
		return err
	}
	return nil
}

// CommitTraced is Commit with a span breakdown: it returns where the
// commit spent its time — class-latch and write-latch waits, the wait for
// the group-commit leader to pick the batch up, the shared fsync, and the
// replication position the commit group published at. The trace ID is
// taken from ctx (see obs.WithRequestID); the same ID is then findable in
// the flight recorder on the primary and on every follower that applied
// the group. The trace is valid even when the commit fails (spans up to
// the failure are filled).
func (tx *Tx) CommitTraced(ctx context.Context) (*obs.CommitTrace, error) {
	ct := &obs.CommitTrace{}
	if !tx.done && tx.err == nil {
		tx.txn.SetTrace(obs.RequestID(ctx), ct)
	}
	start := time.Now()
	err := tx.Commit()
	ct.Total = time.Since(start)
	return ct, err
}

// Rollback discards the transaction's effects. Rolling back a finished
// transaction is a no-op, so `defer tx.Rollback()` is always safe.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	if !tx.wrote {
		return tx.txn.Rollback()
	}
	return tx.discard()
}

// usable reports why the transaction cannot accept another statement.
func (tx *Tx) usable() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.err != nil {
		return tx.err
	}
	return nil
}

// execStmt runs one parsed update statement inside the transaction. The
// caller has checked usable().
func (tx *Tx) execStmt(ctx context.Context, stmt ast.Stmt) (int, error) {
	var class string
	switch s := stmt.(type) {
	case *ast.InsertStmt:
		class = s.Class
	case *ast.ModifyStmt:
		class = s.Class
	case *ast.DeleteStmt:
		class = s.Class
	case *ast.RetrieveStmt:
		return 0, fmt.Errorf("sim: Exec wants an update statement; use Query for Retrieve")
	case *ast.BeginStmt, *ast.CommitStmt, *ast.RollbackStmt:
		return 0, fmt.Errorf("sim: use Begin/Commit/Rollback methods (or Run) for transaction control")
	default:
		return 0, fmt.Errorf("sim: unsupported statement %T", stmt)
	}
	// First writer wins: fail fast before blocking on the write latch when
	// an open transaction already claimed the class. A conflict does not
	// abort this transaction — nothing has been written yet. Autocommit
	// transactions skip the class latch: they execute and commit entirely
	// under the store's write latch, so they cannot interleave with anyone;
	// against an open transaction they queue on the write latch (bounded by
	// ctx) instead of conflicting.
	if !tx.auto {
		if err := tx.txn.Latch(strings.ToLower(class)); err != nil {
			return 0, fmt.Errorf("sim: %s: %w", class, err)
		}
	}
	if err := tx.txn.AcquireWrite(ctx); err != nil {
		return 0, err
	}
	tx.wrote = true
	db := tx.db
	db.mu.Lock()
	var n int
	var err error
	switch s := stmt.(type) {
	case *ast.InsertStmt:
		n, err = db.exe.Insert(ctx, s)
	case *ast.ModifyStmt:
		n, err = db.exe.Modify(ctx, s)
	case *ast.DeleteStmt:
		n, err = db.exe.Delete(ctx, s)
	}
	db.mu.Unlock()
	if err != nil {
		return 0, tx.abort(err)
	}
	return n, nil
}

// abort rolls back the whole transaction after a failed statement and
// makes the Tx sticky-fail with the cause.
func (tx *Tx) abort(cause error) error {
	tx.err = fmt.Errorf("%w: %w", ErrTxAborted, cause)
	if derr := tx.discard(); derr != nil {
		return fmt.Errorf("%w (rollback also failed: %v)", cause, derr)
	}
	return cause
}

// discard rolls back the substrate transaction and resets the record
// caches, excluding readers (db.mu) so no page is pinned mid-discard.
// The caller holds the write latch (tx.wrote), which orders before db.mu.
func (tx *Tx) discard() error {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	err := tx.txn.Rollback()
	tx.db.mapper.ResetCaches()
	return err
}
