package client_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sim/client"
	"sim/internal/server"
	"sim/internal/wire"
)

// TestTraceCommitOverWire commits through the TTraceCommit frame and
// checks the span breakdown the server ships back.
func TestTraceCommitOverWire(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `Insert student (name := "Traced, One", soc-sec-no := 100000777).`); err != nil {
		t.Fatal(err)
	}
	ci, err := tx.TraceCommit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ci.ID == 0 {
		t.Fatal("TraceCommit returned a zero request ID")
	}
	if ci.Pages == 0 || ci.TotalNS == 0 {
		t.Fatalf("commit spans not filled: %+v", ci)
	}
	if !strings.Contains(ci.Rendered, fmt.Sprintf("%016x", ci.ID)) {
		t.Fatalf("rendered commit trace does not name the request:\n%s", ci.Rendered)
	}
	// The transaction is finished: reuse fails fast client-side.
	if _, err := tx.TraceCommit(ctx); err != client.ErrTxFinished {
		t.Fatalf("second TraceCommit: %v, want ErrTxFinished", err)
	}
	// And the insert is visible.
	r, err := c.Query(`From student Retrieve name Where soc-sec-no = 100000777.`)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 1 {
		t.Fatalf("traced commit not visible: %d rows", r.NumRows())
	}
}

// TestIntrospectOverWire pulls the flight-recorder dump and the latch
// contention profile through the TIntrospect frame.
func TestIntrospectOverWire(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Exec(`Insert student (name := "Flight, One", soc-sec-no := 100000778).`); err != nil {
		t.Fatal(err)
	}
	dump, err := c.Introspect(ctx, wire.IntrospectFlight)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "flight recorder") || !strings.Contains(dump, "commit") {
		t.Fatalf("flight dump missing commit events:\n%s", dump)
	}
	hot, err := c.Introspect(ctx, wire.IntrospectHot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hot, "latch") || !strings.Contains(hot, "pool_shard") {
		t.Fatalf("hot view missing latch profiles:\n%s", hot)
	}
	// Unknown kinds are protocol errors, not hangs.
	if _, err := c.Introspect(ctx, 99); err == nil {
		t.Fatal("unknown introspection kind succeeded")
	}
}
