package client_test

import (
	"strings"
	"testing"

	"sim/client"
	"sim/internal/server"
)

// TestQueryTraceOverWire checks that a traced query round-trips the
// result rows and the server-measured spans through the TQueryTrace /
// TResultTrace frames.
func TestQueryTraceOverWire(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r, ti, err := c.QueryTrace(`From student Retrieve name.`)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 1 || !strings.Contains(r.Format(), "Only, One") {
		t.Fatalf("traced result:\n%s", r.Format())
	}
	if ti.Rows != 1 {
		t.Errorf("trace rows = %d, want 1", ti.Rows)
	}
	if ti.TotalNS == 0 || ti.ExecNS == 0 {
		t.Errorf("server spans not measured: %+v", ti)
	}
	if ti.ParseNS+ti.PlanNS+ti.ExecNS > ti.TotalNS {
		t.Errorf("spans exceed total: %+v", ti)
	}
	for _, want := range []string{"rows=", "parse ", "total "} {
		if !strings.Contains(ti.Rendered, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, ti.Rendered)
		}
	}

	// A repeat hits the server's plan cache.
	_, ti, err = c.QueryTrace(`From student Retrieve name.`)
	if err != nil {
		t.Fatal(err)
	}
	if !ti.PlanCached {
		t.Error("second traced execution did not report a cached plan")
	}

	// ExplainAnalyze is the same frame, surfacing only the rendering.
	out, err := c.ExplainAnalyze(`From student Retrieve name.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows=1") {
		t.Errorf("ExplainAnalyze output:\n%s", out)
	}
}

// TestQueryTraceOverWireErrors checks that trace requests surface server
// errors like plain queries do.
func TestQueryTraceOverWireErrors(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.QueryTrace(`From nowhere Retrieve x.`); err == nil {
		t.Error("bad traced query did not error")
	}
	if _, _, err := c.QueryTrace(`Insert student (name := "No", soc-sec-no := 2).`); err == nil {
		t.Error("traced update did not error")
	}
	// The connection survives for the next request.
	if _, err := c.Query(`From student Retrieve name.`); err != nil {
		t.Errorf("query after trace errors: %v", err)
	}
}
