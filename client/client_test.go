package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"sim"
	"sim/client"
	"sim/internal/server"
	"sim/internal/university"
)

// startServer serves an in-memory university database with one student
// and returns the server plus its loopback address.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.DefineSchema(university.DDL); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`Insert student (name := "Only, One", soc-sec-no := 100000001).`); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, cfg)
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, lis.Addr().String()
}

// TestReconnectAfterIdleClose exercises the transparent re-dial: the
// server reaps the idle connection, and the next request must succeed on
// a fresh one without surfacing an error.
func TestReconnectAfterIdleClose(t *testing.T) {
	srv, addr := startServer(t, server.Config{ReadTimeout: 30 * time.Millisecond})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(`From student Retrieve name.`); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let the server reap the idle session
	r, err := c.Query(`From student Retrieve name.`)
	if err != nil {
		t.Fatalf("query after idle close: %v", err)
	}
	if r.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", r.NumRows())
	}
	if st := srv.Stats(); st.Connections < 2 {
		t.Fatalf("expected a reconnect, stats = %+v", st)
	}
}

// TestNoReconnect verifies the opt-out: with NoReconnect the idle close
// surfaces as an error instead of a silent re-dial.
func TestNoReconnect(t *testing.T) {
	_, addr := startServer(t, server.Config{ReadTimeout: 30 * time.Millisecond})
	c, err := client.DialConfig(addr, client.Config{NoReconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(`From student Retrieve name.`); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if _, err := c.Query(`From student Retrieve name.`); err == nil {
		t.Fatal("query after idle close succeeded despite NoReconnect")
	}
}

// TestFreshConnNotRetried: a failure on a connection that has never
// completed a request is not retried (it would loop on a broken server).
func TestFreshConnNotRetried(t *testing.T) {
	// A listener that accepts, completes no handshake, and closes.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	if _, err := client.Dial(lis.Addr().String()); err == nil {
		t.Fatal("dial against a slamming listener succeeded")
	}
}

func TestContextCancellation(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Already-cancelled context: fails fast, before any I/O.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.QueryCtx(ctx, `From student Retrieve name.`); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err %v, want context.Canceled", err)
	}
	// The Conn recovers: the next request reconnects if needed and works.
	if _, err := c.Query(`From student Retrieve name.`); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}

	// Cancellation racing a request unblocks the round trip promptly.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel2() }()
	start := time.Now()
	for time.Since(start) < 200*time.Millisecond {
		if _, err := c.QueryCtx(ctx2, `From student Retrieve name.`); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("racing cancel: err %v", err)
			}
			break
		}
	}
	if _, err := c.Query(`From student Retrieve name.`); err != nil {
		t.Fatalf("query after racing cancel: %v", err)
	}
}

func TestUseAfterClose(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Query(`From student Retrieve name.`); err == nil {
		t.Fatal("query on a closed Conn succeeded")
	}
}

// TestConcurrentUse hammers one Conn from many goroutines; the internal
// request serialization must keep every response matched to its request.
func TestConcurrentUse(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 25; i++ {
				r, err := c.Query(`From student Retrieve name.`)
				if err == nil && r.NumRows() != 1 {
					err = errors.New("wrong row count")
				}
				if err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
