// Package client is the Go client for a SIM server (cmd/simserve): the
// programmatic face of the paper's Figure 1 interface-product boundary.
// It speaks the internal/wire protocol over TCP and returns the same
// *sim.Result values the in-process API produces, so code written against
// *sim.Database ports to the network with a type swap.
//
//	c, err := client.Dial("localhost:1988")
//	r, err := c.Query(`From student Retrieve name Where student-nbr = 1729.`)
//	n, err := c.Exec(`Insert student (name := "John Doe", soc-sec-no := 456887766).`)
//
// A Conn serializes its requests; use one Conn per concurrent worker for
// parallel load. Connections closed by an idle server are re-dialed
// transparently on the next request.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"sim"
	"sim/internal/obs"
	"sim/internal/wire"
)

// Config tunes a connection.
type Config struct {
	// DialTimeout bounds connection establishment (default 10s). A
	// context passed to DialCtx/DialConfigCtx can end it sooner.
	DialTimeout time.Duration
	// MaxFrame bounds accepted response frames (default wire.DefaultMaxFrame).
	MaxFrame int
	// NoReconnect disables the transparent re-dial after the server
	// closes an idle connection, and with it all request retries.
	NoReconnect bool
	// MaxRetries bounds the transparent retries of one request after a
	// retryable failure — a broken connection, a dial timeout, or a
	// CodeOverloaded/CodeBusy fast-fail (idempotent requests only).
	// Default 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the base delay between retries; each retry doubles
	// it and adds jitter. Default 20ms.
	RetryBackoff time.Duration
	// Sleep, when set, replaces the real backoff sleep — tests and
	// benchmarks inject it for deterministic, clock-free retry runs. It
	// must return ctx.Err() if the context ends first.
	Sleep func(ctx context.Context, d time.Duration) error
	// Registry, when set, receives the connection's robustness counters:
	// sim_client_retries_total and sim_client_redials_total.
	Registry *obs.Registry
}

// NetError is a transport-layer client failure: dialing, handshaking,
// or a broken connection mid-request. Retryable distinguishes failures
// worth another attempt (connection refused, timeouts, a server that
// vanished mid-frame) from fatal ones (protocol mismatch: the peer is
// not a compatible SIM server). Server-side statement errors are NOT
// NetErrors; they arrive as *wire.Error.
type NetError struct {
	Op        string // "dial", "handshake", "send", "receive"
	Addr      string
	Retryable bool
	Err       error
}

func (e *NetError) Error() string {
	kind := "fatal"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("client: %s %s (%s): %v", e.Op, e.Addr, kind, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *NetError) Unwrap() error { return e.Err }

// Conn is a client session with a SIM server. Methods are safe for
// concurrent use but execute one request at a time.
type Conn struct {
	addr string
	cfg  Config

	reqMu  chan struct{} // capacity-1 semaphore serializing requests
	nc     net.Conn
	reused bool   // current nc has completed at least one request
	gen    uint64 // bumped when nc is replaced; transactions pin to it

	retries *obs.Counter // nil without a registry
	redials *obs.Counter
}

// Dial connects to a SIM server at addr ("host:port") and performs the
// protocol handshake.
func Dial(addr string) (*Conn, error) { return DialConfig(addr, Config{}) }

// DialCtx is Dial honoring a context: cancellation or deadline expiry
// aborts both the TCP dial and the handshake.
func DialCtx(ctx context.Context, addr string) (*Conn, error) {
	return DialConfigCtx(ctx, addr, Config{})
}

// DialConfig is Dial with explicit configuration.
func DialConfig(addr string, cfg Config) (*Conn, error) {
	return DialConfigCtx(context.Background(), addr, cfg)
}

// DialConfigCtx is DialCtx with explicit configuration.
func DialConfigCtx(ctx context.Context, addr string, cfg Config) (*Conn, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 20 * time.Millisecond
	}
	c := &Conn{addr: addr, cfg: cfg, reqMu: make(chan struct{}, 1)}
	if r := cfg.Registry; r != nil {
		c.retries = r.Counter("sim_client_retries_total", "Requests transparently retried after a retryable failure.")
		c.redials = r.Counter("sim_client_redials_total", "Connections re-established after a broken or refused one.")
	}
	nc, err := c.connect(ctx)
	if err != nil {
		return nil, err
	}
	c.nc = nc
	c.gen = 1
	return c, nil
}

// connect dials and completes the Hello exchange under ctx.
func (c *Conn) connect(ctx context.Context) (net.Conn, error) {
	dialErr := func(op string, retryable bool, err error) error {
		return &NetError{Op: op, Addr: c.addr, Retryable: retryable, Err: err}
	}
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	var d net.Dialer
	nc, err := d.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		// Refused, unreachable, timed out: all worth another attempt —
		// unless the caller's context ended, which is final for them.
		return nil, dialErr("dial", ctx.Err() == nil, err)
	}
	deadline := time.Now().Add(c.cfg.DialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	nc.SetDeadline(deadline)
	if err := wire.WriteFrame(nc, wire.THello, wire.EncodeHello()); err != nil {
		nc.Close()
		return nil, dialErr("handshake", true, err)
	}
	t, payload, err := wire.ReadFrame(nc, c.cfg.MaxFrame)
	if err != nil {
		nc.Close()
		// A frame-level violation means the peer speaks some other
		// protocol — fatal. I/O failures (timeouts, resets) may pass.
		protocolGarbage := errors.Is(err, wire.ErrFrameTooLarge) || strings.HasPrefix(err.Error(), "wire:")
		return nil, dialErr("handshake", !protocolGarbage, err)
	}
	switch t {
	case wire.THello:
		if _, err := wire.DecodeHello(payload); err != nil {
			nc.Close()
			// The peer is not a SIM server: retrying cannot help.
			return nil, dialErr("handshake", false, err)
		}
	case wire.TError:
		nc.Close()
		if e, derr := wire.DecodeError(payload); derr == nil {
			// Protocol/version refusals are fatal; a server at its
			// connection limit is worth retrying.
			return nil, dialErr("handshake", e.Code == wire.CodeBusy || e.Code == wire.CodeShutdown, e)
		}
		return nil, dialErr("handshake", false, errors.New("handshake refused"))
	default:
		nc.Close()
		return nil, dialErr("handshake", false, fmt.Errorf("unexpected %v frame", t))
	}
	nc.SetDeadline(time.Time{})
	return nc, nil
}

// backoff sleeps before retry attempt (0-based), with exponential
// growth and jitter, honoring ctx.
func (c *Conn) backoff(ctx context.Context, attempt int) error {
	d := c.cfg.RetryBackoff << attempt
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1)) // jitter in [d/2, d]
	if c.cfg.Sleep != nil {
		return c.cfg.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close closes the connection. The Conn is unusable afterwards.
func (c *Conn) Close() error {
	c.reqMu <- struct{}{}
	defer func() { <-c.reqMu }()
	if c.nc == nil {
		return nil
	}
	err := c.nc.Close()
	c.nc = nil
	c.addr = "" // poison: do not reconnect after an explicit Close
	return err
}

// errClosed reports use of an explicitly closed Conn.
var errClosed = errors.New("client: connection closed")

// roundTrip sends one request and reads its one response, transparently
// retrying retryable failures with exponential backoff: broken or
// refused connections, and CodeOverloaded/CodeBusy fast-fails from the
// server. Exec requests are retried only when the request never left
// this process (the send itself failed) — a broken connection after a
// successful send means the update may have applied, and retrying would
// double-apply it. Idempotent requests retry in every retryable case.
func (c *Conn) roundTrip(ctx context.Context, t wire.Type, payload []byte, idempotent bool) (wire.Type, []byte, error) {
	select {
	case c.reqMu <- struct{}{}:
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
	defer func() { <-c.reqMu }()
	if c.nc == nil && c.addr == "" {
		return 0, nil, errClosed
	}
	budget := c.cfg.MaxRetries
	if budget < 0 || c.cfg.NoReconnect {
		budget = 0
	}
	used := 0
	// retry spends one retry from the budget, backing off first.
	retry := func() bool {
		if used >= budget || ctx.Err() != nil {
			return false
		}
		if err := c.backoff(ctx, used); err != nil {
			return false
		}
		used++
		if c.retries != nil {
			c.retries.Inc()
		}
		return true
	}
	for {
		if c.nc == nil {
			nc, err := c.connect(ctx)
			if err != nil {
				var ne *NetError
				if errors.As(err, &ne) && ne.Retryable && retry() {
					continue
				}
				return 0, nil, err
			}
			c.nc, c.reused = nc, false
			c.gen++
			if c.redials != nil {
				c.redials.Inc()
			}
		}
		rt, resp, sendFailed, err := c.attempt(ctx, t, payload)
		if err == nil {
			c.reused = true
			// A fast-fail from a saturated server: the connection is
			// healthy, the request was simply refused. Back off and
			// retry idempotent requests.
			if rt == wire.TError && idempotent {
				if e, derr := wire.DecodeError(resp); derr == nil &&
					(e.Code == wire.CodeOverloaded || e.Code == wire.CodeBusy) && retry() {
					continue
				}
			}
			return rt, resp, nil
		}
		// The connection is in an unknown state mid-frame: drop it.
		c.nc.Close()
		c.nc, c.reused = nil, false
		if ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		if (sendFailed || idempotent) && retry() {
			continue
		}
		return 0, nil, err
	}
}

// attempt performs one send/receive on the current connection. sendFailed
// distinguishes "the request never made it out" from a response failure.
func (c *Conn) attempt(ctx context.Context, t wire.Type, payload []byte) (rt wire.Type, resp []byte, sendFailed bool, err error) {
	nc := c.nc
	if d, ok := ctx.Deadline(); ok {
		nc.SetDeadline(d)
	} else {
		nc.SetDeadline(time.Time{})
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				nc.SetDeadline(time.Now())
			case <-stop:
			}
		}()
	}
	if err := wire.WriteFrame(nc, t, payload); err != nil {
		return 0, nil, true, &NetError{Op: "send", Addr: c.addr, Retryable: true, Err: err}
	}
	rt, resp, err = wire.ReadFrame(nc, c.cfg.MaxFrame)
	if err != nil {
		return 0, nil, false, &NetError{Op: "receive", Addr: c.addr, Retryable: true, Err: err}
	}
	return rt, resp, false, nil
}

// req wraps a statement body with a freshly minted request ID — the
// trace ID that names this request in the server's slow-query ring, the
// flight recorder (primary and followers) and EXPLAIN ANALYZE output.
// Transparent retries reuse the payload, so a retried request keeps the
// ID of the logical request it re-sends.
func req(body []byte) []byte {
	return wire.EncodeRequest(obs.NewRequestID(), body)
}

// call runs a request expecting response type want; a TError response
// decodes into *wire.Error.
func (c *Conn) call(ctx context.Context, t wire.Type, payload []byte, want wire.Type, idempotent bool) ([]byte, error) {
	rt, resp, err := c.roundTrip(ctx, t, payload, idempotent)
	if err != nil {
		return nil, err
	}
	switch rt {
	case want:
		return resp, nil
	case wire.TError:
		e, derr := wire.DecodeError(resp)
		if derr != nil {
			return nil, derr
		}
		return nil, e
	default:
		return nil, fmt.Errorf("client: unexpected %v response to %v", rt, t)
	}
}

// Query executes one Retrieve statement on the server.
func (c *Conn) Query(dml string) (*sim.Result, error) {
	return c.QueryCtx(context.Background(), dml)
}

// QueryCtx is Query under a context; the deadline also bounds server-side
// execution when the server is configured with request timeouts.
func (c *Conn) QueryCtx(ctx context.Context, dml string) (*sim.Result, error) {
	resp, err := c.call(ctx, wire.TQuery, req([]byte(dml)), wire.TResult, true)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(resp)
}

// QueryTrace executes one Retrieve statement on the server and returns
// the result together with the server-side span breakdown (parse, plan,
// execute, cache deltas, and the rendered EXPLAIN ANALYZE text).
func (c *Conn) QueryTrace(dml string) (*sim.Result, wire.TraceInfo, error) {
	return c.QueryTraceCtx(context.Background(), dml)
}

// QueryTraceCtx is QueryTrace under a context.
func (c *Conn) QueryTraceCtx(ctx context.Context, dml string) (*sim.Result, wire.TraceInfo, error) {
	resp, err := c.call(ctx, wire.TQueryTrace, req([]byte(dml)), wire.TResultTrace, true)
	if err != nil {
		return nil, wire.TraceInfo{}, err
	}
	return wire.DecodeResultTrace(resp)
}

// ExplainAnalyze executes the statement on the server and returns the
// annotated query tree with measured rows and timings.
func (c *Conn) ExplainAnalyze(dml string) (string, error) {
	return c.ExplainAnalyzeCtx(context.Background(), dml)
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context.
func (c *Conn) ExplainAnalyzeCtx(ctx context.Context, dml string) (string, error) {
	_, ti, err := c.QueryTraceCtx(ctx, dml)
	if err != nil {
		return "", err
	}
	return ti.Rendered, nil
}

// Exec executes one update statement on the server and returns the
// affected-entity count.
func (c *Conn) Exec(dml string) (int, error) {
	return c.ExecCtx(context.Background(), dml)
}

// ExecCtx is Exec under a context. A broken connection mid-response is
// NOT retried (the update may have applied); only requests that never
// left this process are.
func (c *Conn) ExecCtx(ctx context.Context, dml string) (int, error) {
	resp, err := c.call(ctx, wire.TExec, req([]byte(dml)), wire.TExecOK, false)
	if err != nil {
		return 0, err
	}
	return wire.DecodeCount(resp)
}

// Explain returns the server optimizer's strategy for a Retrieve.
func (c *Conn) Explain(dml string) (string, error) {
	return c.ExplainCtx(context.Background(), dml)
}

// ExplainCtx is Explain under a context.
func (c *Conn) ExplainCtx(ctx context.Context, dml string) (string, error) {
	resp, err := c.call(ctx, wire.TExplain, []byte(dml), wire.TExplainOK, true)
	return string(resp), err
}

// Ping checks liveness end to end.
func (c *Conn) Ping(ctx context.Context) error {
	_, err := c.call(ctx, wire.TPing, nil, wire.TPong, true)
	return err
}

// Checkpoint asks the server to checkpoint the database.
func (c *Conn) Checkpoint(ctx context.Context) error {
	_, err := c.call(ctx, wire.TCheckpoint, nil, wire.TOK, true)
	return err
}

// ReplStatus returns the server's replication role and progress: the
// publisher's epoch, newest position, and per-follower lag on a primary;
// the follower's own applied position on a replica; role "none" on a
// server without replication.
func (c *Conn) ReplStatus(ctx context.Context) (wire.ReplStatus, error) {
	resp, err := c.call(ctx, wire.TReplStatus, nil, wire.TReplStatusOK, true)
	if err != nil {
		return wire.ReplStatus{}, err
	}
	return wire.DecodeReplStatus(resp)
}

// Addr returns the address this connection dials.
func (c *Conn) Addr() string { return c.addr }

// Promote asks a replica server to promote itself to primary: drain and
// seal its replication stream, persist a strictly higher epoch, and start
// accepting writes. It returns the epoch the new primary owns. Promoting
// a server that is already primary returns its current epoch (the request
// is idempotent); a server with no replication role refuses.
//
// Not retried: a promotion that half-happened should be observed, not
// transparently repeated.
func (c *Conn) Promote(ctx context.Context) (uint64, error) {
	resp, err := c.call(ctx, wire.TPromote, nil, wire.TPromoteOK, false)
	if err != nil {
		return 0, err
	}
	return wire.DecodePromoteOK(resp)
}

// Retarget delivers a fencing/re-point notice: "epoch exists; its primary
// serves at addr". A primary holding a lower epoch demotes itself to
// read-only (further writes answer CodeFenced); a replica re-points its
// replication stream at addr. Operators normally don't call this — the
// promoted primary's fencer does — but it is the manual override when
// automation is down.
func (c *Conn) Retarget(ctx context.Context, epoch uint64, addr string) error {
	payload := wire.EncodeRetarget(wire.Retarget{Epoch: epoch, Addr: addr})
	_, err := c.call(ctx, wire.TRetarget, payload, wire.TOK, false)
	return err
}

// ServerStats returns the server's lifetime counters.
func (c *Conn) ServerStats(ctx context.Context) (wire.ServerStats, error) {
	resp, err := c.call(ctx, wire.TStats, nil, wire.TStatsOK, true)
	if err != nil {
		return wire.ServerStats{}, err
	}
	return wire.DecodeServerStats(resp)
}

// Introspect returns a rendered server-side introspection report:
// wire.IntrospectFlight dumps the flight recorder (the ring of recent
// structured events — commits, flushes, conflicts, replication traffic),
// wire.IntrospectHot the latch contention profile.
func (c *Conn) Introspect(ctx context.Context, kind byte) (string, error) {
	resp, err := c.call(ctx, wire.TIntrospect, []byte{kind}, wire.TIntrospectOK, true)
	if err != nil {
		return "", err
	}
	return string(resp), nil
}
