// Package client is the Go client for a SIM server (cmd/simserve): the
// programmatic face of the paper's Figure 1 interface-product boundary.
// It speaks the internal/wire protocol over TCP and returns the same
// *sim.Result values the in-process API produces, so code written against
// *sim.Database ports to the network with a type swap.
//
//	c, err := client.Dial("localhost:1988")
//	r, err := c.Query(`From student Retrieve name Where student-nbr = 1729.`)
//	n, err := c.Exec(`Insert student (name := "John Doe", soc-sec-no := 456887766).`)
//
// A Conn serializes its requests; use one Conn per concurrent worker for
// parallel load. Connections closed by an idle server are re-dialed
// transparently on the next request.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"sim"
	"sim/internal/wire"
)

// Config tunes a connection.
type Config struct {
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// MaxFrame bounds accepted response frames (default wire.DefaultMaxFrame).
	MaxFrame int
	// NoReconnect disables the transparent re-dial after the server
	// closes an idle connection.
	NoReconnect bool
}

// Conn is a client session with a SIM server. Methods are safe for
// concurrent use but execute one request at a time.
type Conn struct {
	addr string
	cfg  Config

	reqMu  chan struct{} // capacity-1 semaphore serializing requests
	nc     net.Conn
	reused bool // current nc has completed at least one request
}

// Dial connects to a SIM server at addr ("host:port") and performs the
// protocol handshake.
func Dial(addr string) (*Conn, error) { return DialConfig(addr, Config{}) }

// DialConfig is Dial with explicit configuration.
func DialConfig(addr string, cfg Config) (*Conn, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	c := &Conn{addr: addr, cfg: cfg, reqMu: make(chan struct{}, 1)}
	nc, err := c.connect()
	if err != nil {
		return nil, err
	}
	c.nc = nc
	return c, nil
}

// connect dials and completes the Hello exchange.
func (c *Conn) connect() (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if err := wire.WriteFrame(nc, wire.THello, wire.EncodeHello()); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	t, payload, err := wire.ReadFrame(nc, c.cfg.MaxFrame)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch t {
	case wire.THello:
		if _, err := wire.DecodeHello(payload); err != nil {
			nc.Close()
			return nil, fmt.Errorf("client: handshake: %w", err)
		}
	case wire.TError:
		nc.Close()
		if e, derr := wire.DecodeError(payload); derr == nil {
			return nil, e
		}
		return nil, fmt.Errorf("client: handshake refused")
	default:
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected %v frame", t)
	}
	nc.SetDeadline(time.Time{})
	return nc, nil
}

// Close closes the connection. The Conn is unusable afterwards.
func (c *Conn) Close() error {
	c.reqMu <- struct{}{}
	defer func() { <-c.reqMu }()
	if c.nc == nil {
		return nil
	}
	err := c.nc.Close()
	c.nc = nil
	c.addr = "" // poison: do not reconnect after an explicit Close
	return err
}

// errClosed reports use of an explicitly closed Conn.
var errClosed = errors.New("client: connection closed")

// roundTrip sends one request and reads its one response, reconnecting
// once if a previously used connection turns out to have been closed
// underneath us. Exec requests are retried only when the request never
// left this process (the send itself failed); idempotent requests are
// also retried when the connection broke before a response arrived.
func (c *Conn) roundTrip(ctx context.Context, t wire.Type, payload []byte, idempotent bool) (wire.Type, []byte, error) {
	select {
	case c.reqMu <- struct{}{}:
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
	defer func() { <-c.reqMu }()
	if c.nc == nil && c.addr == "" {
		return 0, nil, errClosed
	}
	for attempt := 0; ; attempt++ {
		if c.nc == nil {
			nc, err := c.connect()
			if err != nil {
				return 0, nil, err
			}
			c.nc, c.reused = nc, false
		}
		rt, resp, sendFailed, err := c.attempt(ctx, t, payload)
		if err == nil {
			c.reused = true
			return rt, resp, nil
		}
		// The connection is in an unknown state mid-frame: drop it.
		wasReused := c.reused
		c.nc.Close()
		c.nc, c.reused = nil, false
		if ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		retriable := wasReused && attempt == 0 && (sendFailed || idempotent)
		if c.cfg.NoReconnect || !retriable {
			return 0, nil, err
		}
	}
}

// attempt performs one send/receive on the current connection. sendFailed
// distinguishes "the request never made it out" from a response failure.
func (c *Conn) attempt(ctx context.Context, t wire.Type, payload []byte) (rt wire.Type, resp []byte, sendFailed bool, err error) {
	nc := c.nc
	if d, ok := ctx.Deadline(); ok {
		nc.SetDeadline(d)
	} else {
		nc.SetDeadline(time.Time{})
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				nc.SetDeadline(time.Now())
			case <-stop:
			}
		}()
	}
	if err := wire.WriteFrame(nc, t, payload); err != nil {
		return 0, nil, true, fmt.Errorf("client: send: %w", err)
	}
	rt, resp, err = wire.ReadFrame(nc, c.cfg.MaxFrame)
	if err != nil {
		return 0, nil, false, fmt.Errorf("client: receive: %w", err)
	}
	return rt, resp, false, nil
}

// call runs a request expecting response type want; a TError response
// decodes into *wire.Error.
func (c *Conn) call(ctx context.Context, t wire.Type, payload []byte, want wire.Type, idempotent bool) ([]byte, error) {
	rt, resp, err := c.roundTrip(ctx, t, payload, idempotent)
	if err != nil {
		return nil, err
	}
	switch rt {
	case want:
		return resp, nil
	case wire.TError:
		e, derr := wire.DecodeError(resp)
		if derr != nil {
			return nil, derr
		}
		return nil, e
	default:
		return nil, fmt.Errorf("client: unexpected %v response to %v", rt, t)
	}
}

// Query executes one Retrieve statement on the server.
func (c *Conn) Query(dml string) (*sim.Result, error) {
	return c.QueryCtx(context.Background(), dml)
}

// QueryCtx is Query under a context; the deadline also bounds server-side
// execution when the server is configured with request timeouts.
func (c *Conn) QueryCtx(ctx context.Context, dml string) (*sim.Result, error) {
	resp, err := c.call(ctx, wire.TQuery, []byte(dml), wire.TResult, true)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(resp)
}

// QueryTrace executes one Retrieve statement on the server and returns
// the result together with the server-side span breakdown (parse, plan,
// execute, cache deltas, and the rendered EXPLAIN ANALYZE text).
func (c *Conn) QueryTrace(dml string) (*sim.Result, wire.TraceInfo, error) {
	return c.QueryTraceCtx(context.Background(), dml)
}

// QueryTraceCtx is QueryTrace under a context.
func (c *Conn) QueryTraceCtx(ctx context.Context, dml string) (*sim.Result, wire.TraceInfo, error) {
	resp, err := c.call(ctx, wire.TQueryTrace, []byte(dml), wire.TResultTrace, true)
	if err != nil {
		return nil, wire.TraceInfo{}, err
	}
	return wire.DecodeResultTrace(resp)
}

// ExplainAnalyze executes the statement on the server and returns the
// annotated query tree with measured rows and timings.
func (c *Conn) ExplainAnalyze(dml string) (string, error) {
	return c.ExplainAnalyzeCtx(context.Background(), dml)
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context.
func (c *Conn) ExplainAnalyzeCtx(ctx context.Context, dml string) (string, error) {
	_, ti, err := c.QueryTraceCtx(ctx, dml)
	if err != nil {
		return "", err
	}
	return ti.Rendered, nil
}

// Exec executes one update statement on the server and returns the
// affected-entity count.
func (c *Conn) Exec(dml string) (int, error) {
	return c.ExecCtx(context.Background(), dml)
}

// ExecCtx is Exec under a context. A broken connection mid-response is
// NOT retried (the update may have applied); only requests that never
// left this process are.
func (c *Conn) ExecCtx(ctx context.Context, dml string) (int, error) {
	resp, err := c.call(ctx, wire.TExec, []byte(dml), wire.TExecOK, false)
	if err != nil {
		return 0, err
	}
	return wire.DecodeCount(resp)
}

// Explain returns the server optimizer's strategy for a Retrieve.
func (c *Conn) Explain(dml string) (string, error) {
	return c.ExplainCtx(context.Background(), dml)
}

// ExplainCtx is Explain under a context.
func (c *Conn) ExplainCtx(ctx context.Context, dml string) (string, error) {
	resp, err := c.call(ctx, wire.TExplain, []byte(dml), wire.TExplainOK, true)
	return string(resp), err
}

// Ping checks liveness end to end.
func (c *Conn) Ping(ctx context.Context) error {
	_, err := c.call(ctx, wire.TPing, nil, wire.TPong, true)
	return err
}

// Checkpoint asks the server to checkpoint the database.
func (c *Conn) Checkpoint(ctx context.Context) error {
	_, err := c.call(ctx, wire.TCheckpoint, nil, wire.TOK, true)
	return err
}

// ServerStats returns the server's lifetime counters.
func (c *Conn) ServerStats(ctx context.Context) (wire.ServerStats, error) {
	resp, err := c.call(ctx, wire.TStats, nil, wire.TStatsOK, true)
	if err != nil {
		return wire.ServerStats{}, err
	}
	return wire.DecodeServerStats(resp)
}
