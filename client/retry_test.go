package client_test

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sim/client"
	"sim/internal/obs"
	"sim/internal/wire"
)

// fakeServer accepts wire connections, completes the handshake, and
// answers each request via script, which may also close the connection
// by returning ok=false.
type fakeServer struct {
	lis      net.Listener
	requests atomic.Uint64
	script   func(n uint64, t wire.Type) (wire.Type, []byte, bool)
}

func newFakeServer(t *testing.T, script func(n uint64, t wire.Type) (wire.Type, []byte, bool)) *fakeServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{lis: lis, script: script}
	go fs.serve()
	t.Cleanup(func() { lis.Close() })
	return fs
}

func (fs *fakeServer) addr() string { return fs.lis.Addr().String() }

func (fs *fakeServer) serve() {
	for {
		nc, err := fs.lis.Accept()
		if err != nil {
			return
		}
		go func() {
			defer nc.Close()
			t, payload, err := wire.ReadFrame(nc, 0)
			if err != nil || t != wire.THello {
				return
			}
			if _, err := wire.DecodeHello(payload); err != nil {
				return
			}
			if err := wire.WriteFrame(nc, wire.THello, wire.EncodeHello()); err != nil {
				return
			}
			for {
				t, _, err := wire.ReadFrame(nc, 0)
				if err != nil {
					return
				}
				n := fs.requests.Add(1)
				rt, resp, ok := fs.script(n, t)
				if !ok {
					return
				}
				if err := wire.WriteFrame(nc, rt, resp); err != nil {
					return
				}
			}
		}()
	}
}

// noSleep is an injected backoff that only counts.
func noSleep(calls *atomic.Uint64) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		calls.Add(1)
		return ctx.Err()
	}
}

func TestDialRefusedIsRetryableNetError(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // nothing listens here now

	_, err = client.DialConfig(addr, client.Config{DialTimeout: 2 * time.Second})
	var ne *client.NetError
	if !errors.As(err, &ne) {
		t.Fatalf("dial to dead port = %v, want *NetError", err)
	}
	if ne.Op != "dial" || !ne.Retryable {
		t.Errorf("NetError = %+v, want retryable dial", ne)
	}
}

func TestDialCtxHonorsDeadlineDuringHandshake(t *testing.T) {
	// A listener that accepts but never answers the handshake.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			defer nc.Close()
			_ = nc // read nothing, answer nothing
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.DialCtx(ctx, lis.Addr().String()) // default DialTimeout is 10s
	if err == nil {
		t.Fatal("handshake against a mute server succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("DialCtx ignored the context deadline (took %v)", d)
	}
	var ne *client.NetError
	if !errors.As(err, &ne) || ne.Op != "handshake" {
		t.Errorf("err = %v, want handshake NetError", err)
	}
}

func TestProtocolMismatchIsFatal(t *testing.T) {
	// A listener speaking something else entirely.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				buf := make([]byte, 64)
				nc.Read(buf)
				nc.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
			}()
		}
	}()

	_, err = client.DialConfig(lis.Addr().String(), client.Config{DialTimeout: 2 * time.Second})
	var ne *client.NetError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want *NetError", err)
	}
	if ne.Retryable {
		t.Errorf("protocol mismatch marked retryable: %+v", ne)
	}
}

// An overloaded fast-fail on an idempotent request is retried with
// backoff and succeeds; the retry is counted.
func TestOverloadedFastFailRetried(t *testing.T) {
	fs := newFakeServer(t, func(n uint64, _ wire.Type) (wire.Type, []byte, bool) {
		if n == 1 {
			return wire.TError, wire.EncodeError(wire.CodeOverloaded, "full"), true
		}
		return wire.TPong, nil, true
	})
	var sleeps atomic.Uint64
	reg := obs.NewRegistry()
	c, err := client.DialConfig(fs.addr(), client.Config{
		MaxRetries: 3, Sleep: noSleep(&sleeps), Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping through one overload = %v", err)
	}
	if sleeps.Load() != 1 {
		t.Errorf("backoff slept %d times, want 1", sleeps.Load())
	}
	if got := reg.Get("sim_client_retries_total"); got != 1 {
		t.Errorf("sim_client_retries_total = %v, want 1", got)
	}
}

// A persistently overloaded server exhausts the retry budget and the
// client surfaces the overload error.
func TestOverloadRetryBudgetExhausted(t *testing.T) {
	fs := newFakeServer(t, func(n uint64, _ wire.Type) (wire.Type, []byte, bool) {
		return wire.TError, wire.EncodeError(wire.CodeOverloaded, "full"), true
	})
	var sleeps atomic.Uint64
	c, err := client.DialConfig(fs.addr(), client.Config{MaxRetries: 2, Sleep: noSleep(&sleeps)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping(context.Background())
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeOverloaded {
		t.Fatalf("ping = %v, want CodeOverloaded after budget", err)
	}
	if sleeps.Load() != 2 {
		t.Errorf("backoff slept %d times, want 2", sleeps.Load())
	}
}

// A broken connection after a successful send must NOT retry a
// non-idempotent Exec (the update may have applied server-side).
func TestExecNotRetriedAfterBrokenResponse(t *testing.T) {
	fs := newFakeServer(t, func(n uint64, _ wire.Type) (wire.Type, []byte, bool) {
		return 0, nil, false // drop the connection instead of answering
	})
	var sleeps atomic.Uint64
	c, err := client.DialConfig(fs.addr(), client.Config{MaxRetries: 3, Sleep: noSleep(&sleeps)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec(`Insert item (num := 1).`)
	var ne *client.NetError
	if !errors.As(err, &ne) || ne.Op != "receive" {
		t.Fatalf("exec over dying server = %v, want receive NetError", err)
	}
	if got := fs.requests.Load(); got != 1 {
		t.Errorf("server saw %d exec requests, want exactly 1 (no blind retry)", got)
	}
	if sleeps.Load() != 0 {
		t.Errorf("non-idempotent request backed off %d times", sleeps.Load())
	}
}

// The same broken connection IS retried for idempotent requests, via a
// redial that is counted.
func TestIdempotentRetriedAcrossRedial(t *testing.T) {
	fs := newFakeServer(t, func(n uint64, _ wire.Type) (wire.Type, []byte, bool) {
		if n == 1 {
			return 0, nil, false // kill the first connection mid-request
		}
		return wire.TPong, nil, true
	})
	var sleeps atomic.Uint64
	reg := obs.NewRegistry()
	c, err := client.DialConfig(fs.addr(), client.Config{
		MaxRetries: 3, Sleep: noSleep(&sleeps), Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping across redial = %v", err)
	}
	if got := reg.Get("sim_client_redials_total"); got != 1 {
		t.Errorf("sim_client_redials_total = %v, want 1", got)
	}
	if got := fs.requests.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}
