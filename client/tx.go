package client

import (
	"context"
	"errors"
	"fmt"

	"sim"
	"sim/internal/obs"
	"sim/internal/wire"
)

// Transaction errors.
var (
	// ErrTxLost reports that the connection carrying an open transaction
	// broke. Server-side transaction state is per-connection, so the
	// transaction is gone — the server rolled it back when the connection
	// died — and no operation on it is retried: transparently redialing
	// and re-sending could double-apply a commit. Begin a new transaction
	// and re-run it.
	ErrTxLost = errors.New("client: connection lost mid-transaction")

	// ErrTxFinished reports use of a transaction after Commit or Rollback.
	ErrTxFinished = errors.New("client: transaction already finished")
)

// Tx is an explicit transaction on a server connection (wire frames
// TBegin/TCommit/TRollback). It is pinned to the TCP connection it was
// begun on: the transparent redial-and-retry machinery is disabled for
// transaction operations, and if the connection breaks every later
// operation fails fatally with ErrTxLost (see above). While a Tx is open,
// other requests on the same Conn join the transaction server-side — use
// a dedicated Conn per transaction under concurrency.
//
// A Tx is not safe for concurrent use by multiple goroutines.
type Tx struct {
	c    *Conn
	gen  uint64 // connection generation the transaction is pinned to
	ro   bool
	done bool
}

// TxOption configures a transaction opened with Begin.
type TxOption func(*txOptions)

type txOptions struct{ readOnly bool }

// ReadOnly marks the transaction read-only: the server pins a snapshot
// at Begin and every Query sees that frozen state; Exec is refused with
// wire.CodeReadOnly. Read-only transactions never conflict and never
// block writers, and — unlike read-write transactions — a replica or a
// fenced primary can serve them (see Multi.Begin).
func ReadOnly() TxOption {
	return func(o *txOptions) { o.readOnly = true }
}

// Begin opens a transaction on this connection. The request itself may
// transparently redial (no transaction exists yet, so the retry is
// idempotent); once Begin returns, the transaction is pinned to the
// connection that carried it.
func (c *Conn) Begin(ctx context.Context, opts ...TxOption) (*Tx, error) {
	var o txOptions
	for _, opt := range opts {
		opt(&o)
	}
	payload := req(nil)
	if o.readOnly {
		payload = wire.EncodeBegin(obs.NewRequestID(), wire.BeginReadOnly)
	}
	if _, err := c.call(ctx, wire.TBegin, payload, wire.TOK, true); err != nil {
		return nil, err
	}
	return &Tx{c: c, gen: c.currentGen(), ro: o.readOnly}, nil
}

// ReadOnly reports whether the transaction was opened with the ReadOnly
// option.
func (tx *Tx) ReadOnly() bool { return tx.ro }

// Query executes one Retrieve statement inside the transaction.
func (tx *Tx) Query(ctx context.Context, dml string) (*sim.Result, error) {
	resp, err := tx.op(ctx, wire.TQuery, req([]byte(dml)), wire.TResult)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(resp)
}

// Exec executes one update statement inside the transaction and returns
// the affected-entity count. A server-side statement failure aborts the
// transaction (see sim.Tx); a conflict (wire.CodeConflict) does not.
func (tx *Tx) Exec(ctx context.Context, dml string) (int, error) {
	resp, err := tx.op(ctx, wire.TExec, req([]byte(dml)), wire.TExecOK)
	if err != nil {
		return 0, err
	}
	return wire.DecodeCount(resp)
}

// Commit durably applies the transaction. It is never retried: a
// connection failure after the commit frame leaves this process means
// the server may or may not have committed, and the fatal ErrTxLost
// reports exactly that uncertainty.
func (tx *Tx) Commit(ctx context.Context) error {
	if tx.done {
		return ErrTxFinished
	}
	tx.done = true
	_, err := tx.c.txCall(ctx, tx.gen, wire.TCommit, req(nil), wire.TOK)
	return err
}

// TraceCommit is Commit with a server-side span breakdown: it returns
// where the commit spent its time (latch waits, the wait for the
// group-commit leader, the shared fsync) plus the commit group's size and
// replication position. The request ID in the returned CommitInfo names
// this commit in the flight recorder of the primary and of every follower
// that applied the group.
func (tx *Tx) TraceCommit(ctx context.Context) (wire.CommitInfo, error) {
	if tx.done {
		return wire.CommitInfo{}, ErrTxFinished
	}
	tx.done = true
	resp, err := tx.c.txCall(ctx, tx.gen, wire.TTraceCommit, req(nil), wire.TCommitTraced)
	if err != nil {
		return wire.CommitInfo{}, err
	}
	return wire.DecodeCommitInfo(resp)
}

// Rollback discards the transaction. A lost connection still reports
// ErrTxLost, but nothing is left open: the server rolls back a
// transaction whose connection died.
func (tx *Tx) Rollback(ctx context.Context) error {
	if tx.done {
		return nil
	}
	tx.done = true
	_, err := tx.c.txCall(ctx, tx.gen, wire.TRollback, req(nil), wire.TOK)
	return err
}

// op runs one in-transaction statement request.
func (tx *Tx) op(ctx context.Context, t wire.Type, payload []byte, want wire.Type) ([]byte, error) {
	if tx.done {
		return nil, ErrTxFinished
	}
	return tx.c.txCall(ctx, tx.gen, t, payload, want)
}

// currentGen reads the connection generation under the request lock.
func (c *Conn) currentGen() uint64 {
	c.reqMu <- struct{}{}
	defer func() { <-c.reqMu }()
	return c.gen
}

// txCall performs one request pinned to connection generation gen: no
// redial, no retry. Any transport failure — or a generation mismatch,
// meaning some other request already redialed — closes the transaction's
// window and surfaces fatal ErrTxLost.
func (c *Conn) txCall(ctx context.Context, gen uint64, t wire.Type, payload []byte, want wire.Type) ([]byte, error) {
	select {
	case c.reqMu <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.reqMu }()
	if c.nc == nil && c.addr == "" {
		return nil, errClosed
	}
	lost := func(cause error) error {
		err := ErrTxLost
		if cause != nil {
			err = fmt.Errorf("%w: %v", ErrTxLost, cause)
		}
		return &NetError{Op: "transaction", Addr: c.addr, Retryable: false, Err: err}
	}
	if c.nc == nil || c.gen != gen {
		return nil, lost(nil)
	}
	rt, resp, _, err := c.attempt(ctx, t, payload)
	if err != nil {
		c.nc.Close()
		c.nc, c.reused = nil, false
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, lost(err)
	}
	switch rt {
	case want:
		return resp, nil
	case wire.TError:
		e, derr := wire.DecodeError(resp)
		if derr != nil {
			return nil, derr
		}
		return nil, e
	default:
		return nil, fmt.Errorf("client: unexpected %v response to %v", rt, t)
	}
}
