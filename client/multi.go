package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sim"
	"sim/internal/wire"
)

// ejectAfter is how many consecutive failover-class failures eject a
// node from the read rotation. One flake keeps serving; a dead server is
// out after a burst, and a background probe re-admits it when it answers
// Ping again.
const ejectAfter = 3

// Multi is a topology-aware client over one primary and any number of
// read replicas. Reads (Query, QueryTrace, Explain, and Begin with the
// ReadOnly option) are sprayed round-robin across the healthy replicas
// and fail over to the next replica — and finally the primary — on
// retryable errors; everything with side effects or read-write
// transactional state (Exec, Begin, Checkpoint)
// goes to the current primary. Replicas serve a bounded-stale view: a
// read immediately after a write may not observe it; read-your-writes
// callers should use Primary() directly.
//
// The primary is runtime state, not configuration. When a write fails in
// a way that proves it never executed — the connection could not be
// dialed, the send itself failed, or the server answered CodeFenced,
// CodeReadOnly, or CodeShutdown — Multi probes every node's ReplStatus,
// adopts the node reporting role "primary" with the highest epoch, and
// retries the write there once. After a failover-with-promotion the same
// Multi keeps writing without reconfiguration. An open Tx never moves:
// it is pinned to the connection it began on and fails with ErrTxLost
// when that server dies (begin a new transaction on the new primary).
//
// A node ejected from the read rotation is probed in the background and
// re-admitted when it answers again.
type Multi struct {
	cfg  Config
	next atomic.Uint64
	quit chan struct{}

	mu      sync.Mutex
	nodes   []*mnode
	primary *mnode
	closed  bool
}

// mnode is one server in the topology. Health fields are guarded by
// Multi.mu; the Conn itself is safe for concurrent use.
type mnode struct {
	addr    string
	conn    *Conn
	fails   int  // consecutive failover-class failures
	down    bool // ejected from the read rotation
	probing bool // a background re-probe goroutine is running
}

// DialMulti connects to addrs[0] as the primary and the rest as read
// replicas. At least one address is required.
func DialMulti(addrs []string) (*Multi, error) {
	return DialMultiConfig(addrs, Config{})
}

// DialMultiConfig is DialMulti with explicit per-connection configuration.
func DialMultiConfig(addrs []string, cfg Config) (*Multi, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: DialMulti needs at least a primary address")
	}
	m := &Multi{cfg: cfg, quit: make(chan struct{})}
	for _, addr := range addrs {
		c, err := DialConfig(addr, cfg)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.nodes = append(m.nodes, &mnode{addr: addr, conn: c})
	}
	m.primary = m.nodes[0]
	return m, nil
}

// Primary returns the current primary connection, for callers that need
// read-your-writes or transactional reads. After a write failover this
// is the promoted node, not necessarily addrs[0].
func (m *Multi) Primary() *Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primary.conn
}

// Replicas returns the connections currently playing replica (every node
// except the current primary), in dial order.
func (m *Multi) Replicas() []*Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Conn
	for _, n := range m.nodes {
		if n != m.primary {
			out = append(out, n.conn)
		}
	}
	return out
}

// Close closes every connection, returning the first error.
func (m *Multi) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	nodes := m.nodes
	m.mu.Unlock()
	close(m.quit)
	var err error
	for _, n := range nodes {
		if cerr := n.conn.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// failover reports whether a read that failed on one server is worth
// sending to another: transport failures the connection's own retries
// could not fix, fencing/read-only refusals, and load-shedding or
// draining responses. Statement errors (parse, semantic, exec) would
// fail identically everywhere.
func failover(err error) bool {
	var ne *NetError
	if errors.As(err, &ne) {
		return ne.Retryable
	}
	var we *wire.Error
	if errors.As(err, &we) {
		switch we.Code {
		case wire.CodeOverloaded, wire.CodeBusy, wire.CodeShutdown, wire.CodeFenced:
			return true
		}
	}
	return false
}

// writeFailover reports whether a failed write is safe to redirect to a
// different primary: only errors that prove the statement never
// executed. A dial, handshake, or send failure means the request never
// reached dispatch; CodeFenced, CodeReadOnly, and CodeShutdown are
// refusals issued before execution. A receive failure proves nothing —
// the server may have applied the write and died answering — so it is
// surfaced, never redirected (redirecting could double-apply).
func writeFailover(err error) bool {
	var ne *NetError
	if errors.As(err, &ne) {
		return ne.Op != "receive" && ne.Op != "transaction"
	}
	var we *wire.Error
	if errors.As(err, &we) {
		switch we.Code {
		case wire.CodeFenced, wire.CodeReadOnly, wire.CodeShutdown:
			return true
		}
	}
	return false
}

// recordFailure counts one failover-class failure against a node,
// ejecting it from the read rotation — and starting its background
// re-probe — once ejectAfter consecutive failures accumulate.
func (m *Multi) recordFailure(n *mnode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n.fails++; n.fails < ejectAfter || n.down || m.closed {
		return
	}
	n.down = true
	if !n.probing {
		n.probing = true
		go m.probe(n)
	}
}

// recordSuccess resets a node's failure streak.
func (m *Multi) recordSuccess(n *mnode) {
	m.mu.Lock()
	n.fails = 0
	m.mu.Unlock()
}

// probe pings an ejected node with jittered backoff until it answers,
// then re-admits it to the read rotation.
func (m *Multi) probe(n *mnode) {
	backoff := 250 * time.Millisecond
	for {
		select {
		case <-m.quit:
			return
		case <-time.After(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := n.conn.Ping(ctx)
		cancel()
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		if err == nil {
			n.down, n.fails, n.probing = false, 0, false
			m.mu.Unlock()
			return
		}
		m.mu.Unlock()
	}
}

// readPlan snapshots the healthy replicas (rotated by the round-robin
// cursor) and the primary to end at.
func (m *Multi) readPlan() (replicas []*mnode, primary *mnode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.nodes {
		if n != m.primary && !n.down {
			replicas = append(replicas, n)
		}
	}
	if len(replicas) > 1 {
		start := int(m.next.Add(1)-1) % len(replicas)
		replicas = append(replicas[start:], replicas[:start]...)
	}
	return replicas, m.primary
}

// read runs fn against healthy replicas round-robin with failover,
// ending at the primary. With no (healthy) replicas it goes straight to
// the primary.
func (m *Multi) read(ctx context.Context, fn func(*Conn) error) error {
	replicas, primary := m.readPlan()
	for _, n := range replicas {
		err := fn(n.conn)
		if err == nil || ctx.Err() != nil {
			m.recordSuccess(n)
			return err
		}
		if !failover(err) {
			return err
		}
		m.recordFailure(n)
	}
	return fn(primary.conn)
}

// write runs fn against the current primary. If it fails in a way that
// proves the statement never executed, the topology is re-probed for the
// server actually holding the primary role (highest epoch wins) and the
// write is retried there once.
func (m *Multi) write(ctx context.Context, fn func(*Conn) error) error {
	m.mu.Lock()
	p := m.primary
	m.mu.Unlock()
	err := fn(p.conn)
	if err == nil || !writeFailover(err) || ctx.Err() != nil {
		return err
	}
	np := m.findPrimary(ctx)
	if np == nil || np == p {
		return err
	}
	return fn(np.conn)
}

// findPrimary asks every node for its ReplStatus and adopts the one
// reporting role "primary" with the highest epoch — after a failover
// that is the promoted follower; the fenced old primary reports
// "fenced" and a lower epoch, so it can never win. Returns nil when no
// node claims the role.
func (m *Multi) findPrimary(ctx context.Context) *mnode {
	m.mu.Lock()
	nodes := make([]*mnode, len(m.nodes))
	copy(nodes, m.nodes)
	m.mu.Unlock()

	type claim struct {
		n     *mnode
		epoch uint64
	}
	results := make(chan claim, len(nodes))
	for _, n := range nodes {
		go func(n *mnode) {
			pctx, cancel := context.WithTimeout(ctx, 3*time.Second)
			defer cancel()
			st, err := n.conn.ReplStatus(pctx)
			if err != nil || st.Role != "primary" {
				results <- claim{}
				return
			}
			results <- claim{n: n, epoch: st.Epoch}
		}(n)
	}
	var best claim
	for range nodes {
		if c := <-results; c.n != nil && (best.n == nil || c.epoch > best.epoch) {
			best = c
		}
	}
	if best.n == nil {
		return nil
	}
	m.mu.Lock()
	m.primary = best.n
	best.n.down, best.n.fails = false, 0
	m.mu.Unlock()
	return best.n
}

// Query executes one Retrieve on a replica (or the primary as a last
// resort).
func (m *Multi) Query(dml string) (*sim.Result, error) {
	return m.QueryCtx(context.Background(), dml)
}

// QueryCtx is Query under a context.
func (m *Multi) QueryCtx(ctx context.Context, dml string) (*sim.Result, error) {
	var r *sim.Result
	err := m.read(ctx, func(c *Conn) error {
		var e error
		r, e = c.QueryCtx(ctx, dml)
		return e
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// QueryTrace executes one Retrieve with a server-side span breakdown on
// a replica (or the primary as a last resort).
func (m *Multi) QueryTrace(dml string) (*sim.Result, wire.TraceInfo, error) {
	return m.QueryTraceCtx(context.Background(), dml)
}

// QueryTraceCtx is QueryTrace under a context.
func (m *Multi) QueryTraceCtx(ctx context.Context, dml string) (*sim.Result, wire.TraceInfo, error) {
	var r *sim.Result
	var ti wire.TraceInfo
	err := m.read(ctx, func(c *Conn) error {
		var e error
		r, ti, e = c.QueryTraceCtx(ctx, dml)
		return e
	})
	if err != nil {
		return nil, wire.TraceInfo{}, err
	}
	return r, ti, nil
}

// ExplainAnalyze executes the statement on a replica (or the primary as
// a last resort) and returns the annotated query tree with measured rows
// and timings.
func (m *Multi) ExplainAnalyze(dml string) (string, error) {
	return m.ExplainAnalyzeCtx(context.Background(), dml)
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context.
func (m *Multi) ExplainAnalyzeCtx(ctx context.Context, dml string) (string, error) {
	_, ti, err := m.QueryTraceCtx(ctx, dml)
	if err != nil {
		return "", err
	}
	return ti.Rendered, nil
}

// Explain returns a replica optimizer's strategy for a Retrieve.
func (m *Multi) Explain(dml string) (string, error) {
	return m.ExplainCtx(context.Background(), dml)
}

// ExplainCtx returns a replica optimizer's strategy for a Retrieve.
func (m *Multi) ExplainCtx(ctx context.Context, dml string) (string, error) {
	var text string
	err := m.read(ctx, func(c *Conn) error {
		var e error
		text, e = c.ExplainCtx(ctx, dml)
		return e
	})
	return text, err
}

// Exec executes one update statement on the current primary, following
// a promotion if the old primary is gone or fenced.
func (m *Multi) Exec(dml string) (int, error) {
	return m.ExecCtx(context.Background(), dml)
}

// ExecCtx is Exec under a context.
func (m *Multi) ExecCtx(ctx context.Context, dml string) (int, error) {
	var n int
	err := m.write(ctx, func(c *Conn) error {
		var e error
		n, e = c.ExecCtx(ctx, dml)
		return e
	})
	return n, err
}

// Begin opens a transaction. A read-write transaction goes to the
// current primary, following a promotion if the old primary is gone or
// fenced; a ReadOnly transaction is routed to a healthy replica (the
// primary only as a last resort), since replicas can pin and serve
// snapshots. Either way the transaction is pinned to that server: if it
// dies mid-transaction the Tx fails with ErrTxLost, and the caller
// begins a fresh transaction (which follows the promotion).
func (m *Multi) Begin(ctx context.Context, opts ...TxOption) (*Tx, error) {
	var o txOptions
	for _, opt := range opts {
		opt(&o)
	}
	route := m.write
	if o.readOnly {
		route = m.read
	}
	var tx *Tx
	err := route(ctx, func(c *Conn) error {
		var e error
		tx, e = c.Begin(ctx, opts...)
		return e
	})
	if err != nil {
		return nil, err
	}
	return tx, nil
}

// Checkpoint checkpoints the current primary.
func (m *Multi) Checkpoint(ctx context.Context) error {
	return m.write(ctx, func(c *Conn) error { return c.Checkpoint(ctx) })
}

// Ping checks the current primary end to end.
func (m *Multi) Ping(ctx context.Context) error {
	return m.Primary().Ping(ctx)
}

// ReplStatus returns the current primary's replication status (its view
// of every follower's acked position and lag).
func (m *Multi) ReplStatus(ctx context.Context) (wire.ReplStatus, error) {
	return m.Primary().ReplStatus(ctx)
}
