package client

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"sim"
	"sim/internal/wire"
)

// Multi is a topology-aware client over one primary and any number of
// read replicas. Reads (Query, QueryTrace, Explain) are sprayed
// round-robin across the replicas and fail over to the next replica —
// and finally the primary — on retryable errors; everything with side
// effects or transactional state (Exec, Begin, Checkpoint) is pinned to
// the primary. Replicas serve a bounded-stale view: a read immediately
// after a write may not observe it; read-your-writes callers should use
// Primary() directly.
type Multi struct {
	primary  *Conn
	replicas []*Conn
	next     atomic.Uint64
}

// DialMulti connects to addrs[0] as the primary and the rest as read
// replicas. At least one address is required.
func DialMulti(addrs []string) (*Multi, error) {
	return DialMultiConfig(addrs, Config{})
}

// DialMultiConfig is DialMulti with explicit per-connection configuration.
func DialMultiConfig(addrs []string, cfg Config) (*Multi, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: DialMulti needs at least a primary address")
	}
	primary, err := DialConfig(addrs[0], cfg)
	if err != nil {
		return nil, err
	}
	m := &Multi{primary: primary}
	for _, addr := range addrs[1:] {
		rc, err := DialConfig(addr, cfg)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.replicas = append(m.replicas, rc)
	}
	return m, nil
}

// Primary returns the primary connection, for callers that need
// read-your-writes or transactional reads.
func (m *Multi) Primary() *Conn { return m.primary }

// Replicas returns the replica connections in dial order.
func (m *Multi) Replicas() []*Conn { return m.replicas }

// Close closes every connection, returning the first error.
func (m *Multi) Close() error {
	err := m.primary.Close()
	for _, rc := range m.replicas {
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// failover reports whether a read that failed on one server is worth
// sending to another: transport failures the connection's own retries
// could not fix, and load-shedding or draining responses. Statement
// errors (parse, semantic, exec) would fail identically everywhere.
func failover(err error) bool {
	var ne *NetError
	if errors.As(err, &ne) {
		return ne.Retryable
	}
	var we *wire.Error
	if errors.As(err, &we) {
		switch we.Code {
		case wire.CodeOverloaded, wire.CodeBusy, wire.CodeShutdown:
			return true
		}
	}
	return false
}

// read runs fn against replicas round-robin with failover, ending at the
// primary. With no replicas it goes straight to the primary.
func (m *Multi) read(ctx context.Context, fn func(*Conn) error) error {
	if len(m.replicas) > 0 {
		start := int(m.next.Add(1) - 1)
		for i := range m.replicas {
			rc := m.replicas[(start+i)%len(m.replicas)]
			err := fn(rc)
			if err == nil || !failover(err) || ctx.Err() != nil {
				return err
			}
		}
	}
	return fn(m.primary)
}

// Query executes one Retrieve on a replica (or the primary as a last
// resort).
func (m *Multi) Query(dml string) (*sim.Result, error) {
	return m.QueryCtx(context.Background(), dml)
}

// QueryCtx is Query under a context.
func (m *Multi) QueryCtx(ctx context.Context, dml string) (*sim.Result, error) {
	var r *sim.Result
	err := m.read(ctx, func(c *Conn) error {
		var e error
		r, e = c.QueryCtx(ctx, dml)
		return e
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// QueryTrace executes one Retrieve with a server-side span breakdown on
// a replica (or the primary as a last resort).
func (m *Multi) QueryTrace(dml string) (*sim.Result, wire.TraceInfo, error) {
	return m.QueryTraceCtx(context.Background(), dml)
}

// QueryTraceCtx is QueryTrace under a context.
func (m *Multi) QueryTraceCtx(ctx context.Context, dml string) (*sim.Result, wire.TraceInfo, error) {
	var r *sim.Result
	var ti wire.TraceInfo
	err := m.read(ctx, func(c *Conn) error {
		var e error
		r, ti, e = c.QueryTraceCtx(ctx, dml)
		return e
	})
	if err != nil {
		return nil, wire.TraceInfo{}, err
	}
	return r, ti, nil
}

// ExplainAnalyze executes the statement on a replica (or the primary as
// a last resort) and returns the annotated query tree with measured rows
// and timings.
func (m *Multi) ExplainAnalyze(dml string) (string, error) {
	return m.ExplainAnalyzeCtx(context.Background(), dml)
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context.
func (m *Multi) ExplainAnalyzeCtx(ctx context.Context, dml string) (string, error) {
	_, ti, err := m.QueryTraceCtx(ctx, dml)
	if err != nil {
		return "", err
	}
	return ti.Rendered, nil
}

// Explain returns a replica optimizer's strategy for a Retrieve.
func (m *Multi) Explain(dml string) (string, error) {
	return m.ExplainCtx(context.Background(), dml)
}

// ExplainCtx returns a replica optimizer's strategy for a Retrieve.
func (m *Multi) ExplainCtx(ctx context.Context, dml string) (string, error) {
	var text string
	err := m.read(ctx, func(c *Conn) error {
		var e error
		text, e = c.ExplainCtx(ctx, dml)
		return e
	})
	return text, err
}

// Exec executes one update statement on the primary.
func (m *Multi) Exec(dml string) (int, error) {
	return m.ExecCtx(context.Background(), dml)
}

// ExecCtx is Exec under a context; always the primary.
func (m *Multi) ExecCtx(ctx context.Context, dml string) (int, error) {
	return m.primary.ExecCtx(ctx, dml)
}

// Begin opens a transaction on the primary; transactions never move.
func (m *Multi) Begin(ctx context.Context) (*Tx, error) {
	return m.primary.Begin(ctx)
}

// Checkpoint checkpoints the primary.
func (m *Multi) Checkpoint(ctx context.Context) error {
	return m.primary.Checkpoint(ctx)
}

// Ping checks the primary end to end.
func (m *Multi) Ping(ctx context.Context) error {
	return m.primary.Ping(ctx)
}

// ReplStatus returns the primary's replication status (its view of every
// follower's acked position and lag).
func (m *Multi) ReplStatus(ctx context.Context) (wire.ReplStatus, error) {
	return m.primary.ReplStatus(ctx)
}
