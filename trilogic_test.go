package sim

import (
	"testing"
)

// triLogicQueries are the three-valued-logic edge cases pinned against
// both evaluators: NULL flowing through comparisons, connectives and
// quantifiers, aggregates over empty and all-NULL multisets, and the
// short-circuit behavior of and/or under Kleene logic (§4.3: "a
// three-valued logic (True, False, Unknown) is used"). The compiled
// closure programs and the reference tree walker must agree exactly —
// on rows, on row order, and on errors.
var triLogicQueries = []string{
	// NULL in arithmetic and comparisons: bonus is NULL for Ann Smith
	// and Bob Stone, so salary + bonus is NULL and every comparison
	// against it is Unknown (row filtered out, not an error).
	`From instructor Retrieve name, salary + bonus Order By name.`,
	`From instructor Retrieve name Where salary + bonus > 0 Order By name.`,
	`From instructor Retrieve name Where bonus = 1000 Order By name.`,
	`From instructor Retrieve name Where bonus <> 1000 Order By name.`,

	// Kleene connectives: Unknown or True = True, Unknown and False =
	// False, not Unknown = Unknown. Rows qualify only on True.
	`From instructor Retrieve name Where bonus > 500 or salary > 55000 Order By name.`,
	`From instructor Retrieve name Where bonus > 500 and salary > 40000 Order By name.`,
	`From instructor Retrieve name Where not (bonus > 500) Order By name.`,
	`From instructor Retrieve name Where not (bonus > 500) or salary < 50000 Order By name.`,

	// Short-circuiting must not change results: the right operand's
	// truth value is irrelevant once the left decides.
	`From instructor Retrieve name Where salary > 0 or bonus > 999999 Order By name.`,
	`From instructor Retrieve name Where salary < 0 and bonus > 0 Order By name.`,

	// NULL through quantifiers: NoAdv Kid has no advisor (EVA NULL), and
	// quantified comparisons against empty/NULL target sets.
	`From student Retrieve name Where name of advisor = "Joe Bloke" Order By name.`,
	`From instructor Retrieve name Where some(advisees) Order By name.`,
	`From instructor Retrieve name Where no(advisees) Order By name.`,
	`From student Retrieve name Where major-department = some(assigned-department of advisor) Order By name.`,
	`From student Retrieve name Where major-department = all(assigned-department of advisor) Order By name.`,
	`From student Retrieve name Where major-department = no(assigned-department of advisor) Order By name.`,

	// Aggregates over empty multisets (count = 0, avg/sum/min/max NULL)
	// and all-NULL multisets (NULLs are not aggregated; Math's only
	// instructor has a NULL bonus).
	`From student Retrieve name, count(courses-enrolled) Order By name.`,
	`From department Retrieve name, avg(bonus of instructor) Order By name.`,
	`From department Retrieve name, sum(bonus of instructor) Order By name.`,
	`From department Retrieve name, max(bonus of instructor) Order By name.`,
	`From instructor Retrieve name, count(advisees) Order By name.`,
	`From student Retrieve name, sum(bonus of advisor) Order By name.`,
	`From department Retrieve avg(salary of instructor) Where dept-nbr = 100.`,

	// DISTINCT and structured output ride the same row pipeline.
	`From course Retrieve Table Distinct credits.`,
	`Retrieve Structure Name, Title of Courses-Enrolled of Student Where Student-Nbr = 1501.`,

	// Errors must agree too (ORDER BY inside structured output).
	`From instructor Retrieve name, salary * "x".`,
}

// TestCompiledTreeWalkerEquality runs every tri-logic query through the
// compiled evaluator and the reference tree walker, serial and parallel,
// and requires byte-identical formatted results (or identical errors).
func TestCompiledTreeWalkerEquality(t *testing.T) {
	type mode struct {
		name string
		cfg  Config
	}
	modes := []mode{
		{"compiled", Config{Workers: 1}},
		{"compiled-parallel", Config{}},
		{"tree-walker", Config{Workers: 1, TreeWalkEval: true}},
		{"tree-walker-parallel", Config{TreeWalkEval: true}},
	}
	dbs := make([]*Database, len(modes))
	for i, m := range modes {
		dbs[i] = universityDB(t, m.cfg)
	}
	for _, q := range triLogicQueries {
		ref, refErr := dbs[0].Query(q)
		for i, m := range modes[1:] {
			got, err := dbs[i+1].Query(q)
			if (err == nil) != (refErr == nil) {
				t.Errorf("%s: error mismatch for %q: compiled err=%v, %s err=%v", m.name, q, refErr, m.name, err)
				continue
			}
			if refErr != nil {
				if err.Error() != refErr.Error() {
					t.Errorf("%s: %q: error text %q, want %q", m.name, q, err, refErr)
				}
				continue
			}
			if got.Format() != ref.Format() {
				t.Errorf("%s: %q:\ngot:\n%s\nwant:\n%s", m.name, q, got.Format(), ref.Format())
			}
			if got.FormatStructured() != ref.FormatStructured() {
				t.Errorf("%s: %q: structured output diverges", m.name, q)
			}
		}
	}
}

// TestTriLogicPinned pins absolute answers for the trickiest cases so a
// bug shared by both evaluators cannot hide behind the equality oracle.
func TestTriLogicPinned(t *testing.T) {
	db := universityDB(t, Config{})
	// Unknown or True = True: all three instructors have salary > 40000,
	// so the NULL bonuses cannot exclude anyone.
	r := mustQuery(t, db, `From instructor Retrieve name Where bonus > 500 or salary > 44000 Order By name.`)
	expectRows(t, r, [][]string{{"Ann Smith"}, {"Bob Stone"}, {"Joe Bloke"}})
	// Unknown and True = Unknown: only Joe Bloke's bonus is non-NULL.
	r = mustQuery(t, db, `From instructor Retrieve name Where bonus > 500 and salary > 44000 Order By name.`)
	expectRows(t, r, [][]string{{"Joe Bloke"}})
	// not Unknown = Unknown: negation cannot resurrect a NULL row.
	r = mustQuery(t, db, `From instructor Retrieve name Where not (bonus > 500) Order By name.`)
	expectRows(t, r, [][]string{})
	// Aggregates skip NULLs: Tom's advisor (Ann) has a NULL bonus so his
	// multiset is all-NULL, and NoAdv Kid's advisor set is empty — both
	// sum to NULL (rendered ?) rather than zero. Tina Aide is a student
	// by subtyping; her advisor Ann also has a NULL bonus.
	r = mustQuery(t, db, `From student Retrieve name, sum(bonus of advisor) Order By name.`)
	expectRows(t, r, [][]string{
		{"John Doe", "1000"}, {"Mary Major", "1000"}, {"NoAdv Kid", "?"},
		{"Tina Aide", "?"}, {"Tom Thumb", "?"},
	})
}
