package sim_test

// One testing.B benchmark per experiment of EXPERIMENTS.md (the paper has
// no performance tables; these regenerate the §5 claim measurements — run
// `go run ./cmd/simbench` for the full labelled tables).

import (
	"fmt"
	"testing"

	"sim"
	"sim/internal/bench"
	"sim/internal/luc"
)

var benchWorkload = bench.Workload{
	Departments: 4,
	Instructors: 20,
	Students:    200,
	Courses:     40,
	EnrollPer:   3,
	AdvisePer:   8,
}

func buildBench(b *testing.B, cfg sim.Config) *sim.Database {
	b.Helper()
	db, err := bench.BuildUniversity(cfg, benchWorkload)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func benchQuery(b *testing.B, db *sim.Database, q string) {
	b.Helper()
	if _, err := db.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// T1 — EVA mapping ablation (§5.2).
func BenchmarkEVAMappingCESForward(b *testing.B) {
	db := buildBench(b, sim.Config{Mapping: luc.Config{EVA: map[string]luc.EVAStrategy{"student.advisor": luc.EVACommon}}})
	benchQuery(b, db, `From student Retrieve name of advisor.`)
}

func BenchmarkEVAMappingFKForward(b *testing.B) {
	db := buildBench(b, sim.Config{Mapping: luc.Config{EVA: map[string]luc.EVAStrategy{"student.advisor": luc.EVAForeignKey}}})
	benchQuery(b, db, `From student Retrieve name of advisor.`)
}

func BenchmarkEVAMappingCESInverse(b *testing.B) {
	db := buildBench(b, sim.Config{Mapping: luc.Config{EVA: map[string]luc.EVAStrategy{"student.advisor": luc.EVACommon}}})
	benchQuery(b, db, `From instructor Retrieve count(advisees).`)
}

func BenchmarkEVAMappingFKInverse(b *testing.B) {
	db := buildBench(b, sim.Config{Mapping: luc.Config{EVA: map[string]luc.EVAStrategy{"student.advisor": luc.EVAForeignKey}}})
	benchQuery(b, db, `From instructor Retrieve count(advisees).`)
}

// T2 — hierarchy mapping ablation (§5.2).
func BenchmarkHierarchyMappingSingleInherited(b *testing.B) {
	db := buildBench(b, sim.Config{})
	benchQuery(b, db, `From student Retrieve name, birthdate, student-nbr.`)
}

func BenchmarkHierarchyMappingSplitInherited(b *testing.B) {
	db := buildBench(b, sim.Config{Mapping: luc.Config{Hierarchy: map[string]luc.HierarchyStrategy{"person": luc.HierarchySplit}}})
	benchQuery(b, db, `From student Retrieve name, birthdate, student-nbr.`)
}

func BenchmarkHierarchyMappingSingleSubclassScan(b *testing.B) {
	db := buildBench(b, sim.Config{})
	benchQuery(b, db, `From instructor Retrieve employee-nbr.`)
}

func BenchmarkHierarchyMappingSplitSubclassScan(b *testing.B) {
	db := buildBench(b, sim.Config{Mapping: luc.Config{Hierarchy: map[string]luc.HierarchyStrategy{"person": luc.HierarchySplit}}})
	benchQuery(b, db, `From instructor Retrieve employee-nbr.`)
}

// T3 — MV DVA mapping ablation (§5.2).
func benchNotes(b *testing.B, strat luc.MVDVAStrategy, q string) {
	b.Helper()
	db, err := bench.BuildNotes(sim.Config{Mapping: luc.Config{MVDVA: map[string]luc.MVDVAStrategy{"note.tags": strat}}}, 100, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	benchQuery(b, db, q)
}

func BenchmarkMVDVAEmbeddedRead(b *testing.B) {
	benchNotes(b, luc.MVEmbedded, `From note Retrieve note-no, tags.`)
}

func BenchmarkMVDVASeparateRead(b *testing.B) {
	benchNotes(b, luc.MVSeparate, `From note Retrieve note-no, tags.`)
}

func BenchmarkMVDVAEmbeddedOwnerScan(b *testing.B) {
	benchNotes(b, luc.MVEmbedded, `From note Retrieve body.`)
}

func BenchmarkMVDVASeparateOwnerScan(b *testing.B) {
	benchNotes(b, luc.MVSeparate, `From note Retrieve body.`)
}

// T4/T5 — optimizer strategies (§5.1).
func BenchmarkOptimizerPivot(b *testing.B) {
	db := buildBench(b, sim.Config{Mapping: luc.Config{Indexes: []string{"person.name", "course.title"}}})
	benchQuery(b, db, `From student Retrieve soc-sec-no Where name of advisor = "Instructor 0003".`)
}

func BenchmarkOptimizerForcedScan(b *testing.B) {
	db := buildBench(b, sim.Config{})
	benchQuery(b, db, `From student Retrieve soc-sec-no Where name of advisor = "Instructor 0003".`)
}

func BenchmarkOptimizerUniqueLookup(b *testing.B) {
	db := buildBench(b, sim.Config{})
	benchQuery(b, db, `From person Retrieve name Where soc-sec-no = 200000007.`)
}

func BenchmarkOrderingPivotWithSort(b *testing.B) {
	db := buildBench(b, sim.Config{Mapping: luc.Config{Indexes: []string{"course.title"}}})
	benchQuery(b, db, `From student Retrieve soc-sec-no Where title of courses-enrolled = "Course 0011".`)
}

// T6 — TYPE 2 early exit (§4.5).
func BenchmarkType2Existential(b *testing.B) {
	db := buildBench(b, sim.Config{})
	benchQuery(b, db, `From course Retrieve title Where soc-sec-no of students-enrolled >= 200000000.`)
}

func BenchmarkType2FullEnumeration(b *testing.B) {
	db := buildBench(b, sim.Config{})
	benchQuery(b, db, `From course Retrieve title Where min(soc-sec-no of students-enrolled) >= 200000000.`)
}

// T7 — transitive closure (§4.7).
func BenchmarkTransitiveClosure(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			db, err := bench.BuildPrereqChain(sim.Config{}, n)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			benchQuery(b, db, fmt.Sprintf(
				`From course Retrieve count distinct (transitive(prerequisites)) Where course-no = %d.`, n))
		})
	}
}

// T8 — VERIFY enforcement overhead (§3.3).
func BenchmarkVerifyEnforcedModify(b *testing.B) {
	db := buildBench(b, sim.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`Modify instructor (salary := salary + 1) Where employee-nbr = 1005.`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyCrossEntityTrigger(b *testing.B) {
	db := buildBench(b, sim.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`Modify course (credits := 14) Where course-no = 3.`); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end statement throughput.
func BenchmarkInsertStudent(b *testing.B) {
	db := buildBench(b, sim.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmt := fmt.Sprintf(`Insert student (name := "Bench %09d", soc-sec-no := %d).`, i, 300000000+i)
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseRetrieve(b *testing.B) {
	db := buildBench(b, sim.Config{})
	_ = db
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(`From student Retrieve name, title of courses-enrolled Where soc-sec-no = 200000001.`); err != nil {
			b.Fatal(err)
		}
	}
}
