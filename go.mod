module sim

go 1.22
