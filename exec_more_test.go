package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sim/internal/exec"
)

// Transitive closure through a DAG with sharing and a cycle: levels and
// cycle-safety.
func TestTransitiveClosureDAGAndCycle(t *testing.T) {
	db := universityDB(t, Config{})
	// Create a diamond: D requires B and C; both require A. Then close a
	// cycle A -> D.
	script := []string{
		`Insert course (course-no := 900, title := "A0", credits := 15).`,
		`Insert course (course-no := 901, title := "B0", credits := 15,
		   prerequisites := course with (title = "A0")).`,
		`Insert course (course-no := 902, title := "C0", credits := 15,
		   prerequisites := course with (title = "A0")).`,
		`Insert course (course-no := 903, title := "D0", credits := 15,
		   prerequisites := course with (title = "B0"),
		   prerequisites := include course with (title = "C0")).`,
	}
	for _, s := range script {
		mustExec(t, db, s)
	}
	// Diamond closure from D: {B, C, A} — A once despite two paths.
	if v := singleValue(t, db, `From course Retrieve count(transitive(prerequisites)) Where title = "D0".`); v.String() != "3" {
		t.Errorf("diamond closure = %s, want 3", v)
	}
	// Close the cycle: A requires D.
	mustExec(t, db, `Modify course (prerequisites := include course with (title = "D0")) Where title = "A0".`)
	// Closure from D now reaches everything else exactly once; D itself is
	// excluded as the start.
	if v := singleValue(t, db, `From course Retrieve count(transitive(prerequisites)) Where title = "D0".`); v.String() != "3" {
		t.Errorf("cyclic closure = %s, want 3 (B, C, A; D excluded as start)", v)
	}
}

func TestStructuredTransitiveLevels(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `Retrieve Structure Title of Transitive(prerequisites) of Course Where Title of Course = "Quantum Chromodynamics".`)
	out := r.FormatStructured()
	if !strings.Contains(out, "[level 1]") || !strings.Contains(out, "[level 2]") {
		t.Errorf("levels missing from structured output:\n%s", out)
	}
}

// Printing an entity prints its surrogate.
func TestEntityAsTarget(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From Student Retrieve Advisor Where Name = "John Doe".`)
	if r.NumRows() != 1 || !strings.HasPrefix(r.Rows()[0][0].String(), "#") {
		t.Errorf("entity target = %v", rowStrings(r))
	}
}

// Bare quantifier as boolean: existence.
func TestBareQuantifierExistence(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From instructor Retrieve name Where some(advisees) Order By name.`)
	expectRows(t, r, [][]string{{"Ann Smith"}, {"Joe Bloke"}})
	r = mustQuery(t, db, `From instructor Retrieve name Where no(advisees) Order By name.`)
	expectRows(t, r, [][]string{{"Bob Stone"}, {"Tina Aide"}})
}

// INSERT ... FROM applying to several entities at once. (Instructor
// cannot be used here: its REQUIRED UNIQUE employee-nbr cannot take one
// value across entities — so extend into a new subclass.)
func TestInsertFromMultipleMatches(t *testing.T) {
	db := universityDB(t, Config{})
	if err := db.DefineSchema(`Subclass Graduate of Student ( thesis: string[30] );`); err != nil {
		t.Fatal(err)
	}
	n := mustExec(t, db, `Insert graduate From student Where birthdate >= "1970-01-01" (thesis := "TBD").`)
	if n != 3 { // Mary (1970), Tom (1990), NoAdv (2000)
		t.Fatalf("extended %d, want 3", n)
	}
	r := mustQuery(t, db, `From graduate Retrieve name, thesis Order By name.`)
	expectRows(t, r, [][]string{
		{"Mary Major", "TBD"},
		{"NoAdv Kid", "TBD"},
		{"Tom Thumb", "TBD"},
	})
}

// The previous test must actually fail: employee-nbr is REQUIRED.
func TestInsertFromRequiresRequiredAttrs(t *testing.T) {
	db := universityDB(t, Config{})
	_, err := db.Exec(`Insert instructor From person Where name = "Tom Thumb".`)
	if err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("role extension without employee-nbr: %v", err)
	}
	// Nothing happened.
	r := mustQuery(t, db, `From instructor Retrieve name Where name = "Tom Thumb".`)
	if r.NumRows() != 0 {
		t.Error("failed role extension left the role behind")
	}
}

func TestModifyWithoutWhereHitsAll(t *testing.T) {
	db := universityDB(t, Config{})
	n := mustExec(t, db, `Modify course (credits := 15).`)
	if n != 5 {
		t.Fatalf("modified %d courses, want 5", n)
	}
	r := mustQuery(t, db, `From course Retrieve Table Distinct credits.`)
	expectRows(t, r, [][]string{{"15"}})
}

func TestDeleteWholeClass(t *testing.T) {
	db := universityDB(t, Config{})
	mustExec(t, db, `Delete teaching-assistant.`)
	r := mustQuery(t, db, `From teaching-assistant Retrieve name.`)
	if r.NumRows() != 0 {
		t.Error("TA survived class delete")
	}
	// Tina keeps her student and instructor roles.
	r = mustQuery(t, db, `From Person Retrieve Profession Where Name = "Tina Aide".`)
	expectRows(t, r, [][]string{{"Student"}, {"Instructor"}})
}

func TestQueryExecKindMismatch(t *testing.T) {
	db := universityDB(t, Config{})
	if _, err := db.Query(`Insert department (dept-nbr := 999, name := "X").`); err == nil {
		t.Error("Query accepted an update")
	}
	if _, err := db.Exec(`From department Retrieve name.`); err == nil {
		t.Error("Exec accepted a query")
	}
}

func TestArithmeticInTargets(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From instructor Retrieve name, salary / 1000, salary + bonus Where name = "Joe Bloke".`)
	expectRows(t, r, [][]string{{"Joe Bloke", "50", "51000"}})
	// NULL bonus propagates through +.
	r = mustQuery(t, db, `From instructor Retrieve salary + bonus Where name = "Ann Smith".`)
	expectRows(t, r, [][]string{{"?"}})
}

func TestDateComparisonsAndArithmetic(t *testing.T) {
	db := universityDB(t, Config{})
	r := mustQuery(t, db, `From person Retrieve name Where birthdate < "1950-06-01" Order By name.`)
	expectRows(t, r, [][]string{{"Ann Smith"}, {"Joe Bloke"}})
	// Date ± integer arithmetic.
	r = mustQuery(t, db, `From person Retrieve birthdate + 31 Where name = "Joe Bloke".`)
	expectRows(t, r, [][]string{{"1950-02-01"}})
}

func TestConcurrentQueries(t *testing.T) {
	db := universityDB(t, Config{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := db.Query(`From Student Retrieve Name, Name of Advisor.`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// One writer interleaved.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 10; j++ {
			stmt := fmt.Sprintf(`Insert department (dept-nbr := %d, name := "D%d").`, 500+j, j)
			if _, err := db.Exec(stmt); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCurrentDateInDML(t *testing.T) {
	db := universityDB(t, Config{})
	// Everyone in the fixture was born before today.
	r := mustQuery(t, db, `From person Retrieve count(soc-sec-no of person) Where birthdate < current date.`)
	if r.NumRows() == 0 {
		t.Fatal("no rows")
	}
}

func TestMVDVAScalarOperationsEndToEnd(t *testing.T) {
	db, err := Open("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(`
Class Note (
  note-no: integer unique required;
  tags: string[20] mv (max 4, distinct) );`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `Insert note (note-no := 1, tags := "alpha").`)
	mustExec(t, db, `Modify note (tags := include "beta") Where note-no = 1.`)
	mustExec(t, db, `Modify note (tags := include "beta") Where note-no = 1.`) // distinct: no-op
	r := mustQuery(t, db, `From note Retrieve tags Order By tags.`)
	expectRows(t, r, [][]string{{"alpha"}, {"beta"}})
	mustExec(t, db, `Modify note (tags := exclude "alpha") Where note-no = 1.`)
	r = mustQuery(t, db, `From note Retrieve tags.`)
	expectRows(t, r, [][]string{{"beta"}})
	// MAX 4 enforced through the DML ({beta} + c, d, e fills it; f spills).
	for _, tag := range []string{"c", "d", "e", "f"} {
		_, err := db.Exec(fmt.Sprintf(`Modify note (tags := include %q) Where note-no = 1.`, tag))
		if tag == "f" && err == nil {
			t.Error("5th tag accepted past MAX 4")
		} else if tag != "f" && err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpouseSymmetryAfterRemarriage(t *testing.T) {
	db := universityDB(t, Config{})
	mustExec(t, db, `Modify person (spouse := person with (name = "Mary Major")) Where name = "John Doe".`)
	mustExec(t, db, `Modify person (spouse := person with (name = "Tom Thumb")) Where name = "Mary Major".`)
	// John is single again; Mary and Tom are symmetric.
	r := mustQuery(t, db, `From person Retrieve name of spouse Where name = "John Doe".`)
	expectRows(t, r, [][]string{{"?"}})
	r = mustQuery(t, db, `From person Retrieve name of spouse Where name = "Tom Thumb".`)
	expectRows(t, r, [][]string{{"Mary Major"}})
}

func TestClearEVAWithNull(t *testing.T) {
	db := universityDB(t, Config{})
	mustExec(t, db, `Modify student (advisor := null) Where name = "John Doe".`)
	r := mustQuery(t, db, `From student Retrieve name of advisor Where name = "John Doe".`)
	expectRows(t, r, [][]string{{"?"}})
	mustExec(t, db, `Modify student (courses-enrolled := null) Where name = "Mary Major".`)
	if v := singleValue(t, db, `From student Retrieve count(courses-enrolled) Where name = "Mary Major".`); v.String() != "0" {
		t.Errorf("courses after null-assign = %s", v)
	}
}

func TestStructuredMultipleFormats(t *testing.T) {
	db := universityDB(t, Config{})
	// Three output formats: student, courses-enrolled, teachers.
	r := mustQuery(t, db, `From Student Retrieve Structure Name, Title of Courses-Enrolled, Name of Teachers of Courses-Enrolled Where Student-Nbr = 1501.`)
	var depth func(g *exec.Group) int
	depth = func(g *exec.Group) int {
		best := 0
		for _, c := range g.Children {
			if d := depth(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	if got := depth(r.Structured); got != 3 {
		t.Errorf("structured depth = %d, want 3\n%s", got, r.FormatStructured())
	}
}
