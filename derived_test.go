package sim

import (
	"strings"
	"testing"
)

// Derived attributes: the paper lists them under §6 "work under progress";
// implemented as bind-time qualified macro expansion.
func derivedDB(t *testing.T) *Database {
	t.Helper()
	db := universityDB(t, Config{})
	if err := db.DefineSchema(`
Subclass Paid-Instructor of Instructor (
  total-comp: derived salary + bonus;
  teaching-count: derived count(courses-taught);
  advisee-majors: derived count distinct (name of major-department of advisees) );`); err != nil {
		t.Fatal(err)
	}
	// Give every instructor the new role.
	if _, err := db.Exec(`Insert paid-instructor From instructor Where employee-nbr >= 1001.`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDerivedScalar(t *testing.T) {
	db := derivedDB(t)
	// Only Joe has a bonus in the fixture; NULL propagates for the rest.
	r := mustQuery(t, db, `From paid-instructor Retrieve name, total-comp Order By name.`)
	expectRows(t, r, [][]string{
		{"Ann Smith", "?"},
		{"Bob Stone", "?"},
		{"Joe Bloke", "51000"},
		{"Tina Aide", "?"},
	})
}

func TestDerivedAggregate(t *testing.T) {
	db := derivedDB(t)
	r := mustQuery(t, db, `From paid-instructor Retrieve name, teaching-count Order By name.`)
	expectRows(t, r, [][]string{
		{"Ann Smith", "2"},
		{"Bob Stone", "1"},
		{"Joe Bloke", "2"},
		{"Tina Aide", "1"},
	})
}

func TestDerivedThroughQualification(t *testing.T) {
	db := derivedDB(t)
	// Access the derived attribute through an EVA path: the expansion is
	// re-qualified to the access point.
	r := mustQuery(t, db, `From student Retrieve name, teaching-count of advisor as paid-instructor Where name = "John Doe".`)
	expectRows(t, r, [][]string{{"John Doe", "2"}})
}

func TestDerivedInSelection(t *testing.T) {
	db := derivedDB(t)
	r := mustQuery(t, db, `From paid-instructor Retrieve name Where teaching-count > 1 Order By name.`)
	expectRows(t, r, [][]string{{"Ann Smith"}, {"Joe Bloke"}})
}

func TestDerivedNotAssignable(t *testing.T) {
	db := derivedDB(t)
	_, err := db.Exec(`Modify paid-instructor (total-comp := 1) Where name = "Joe Bloke".`)
	if err == nil || !strings.Contains(err.Error(), "derived") {
		t.Fatalf("assignment to derived attribute: %v", err)
	}
}

func TestDerivedBadDefinitionRejected(t *testing.T) {
	db := universityDB(t, Config{})
	err := db.DefineSchema(`
Subclass Broken of Instructor ( nope: derived missing-attr + 1 );`)
	if err == nil {
		t.Fatal("broken derived definition accepted")
	}
}

func TestDerivedRecursionRejected(t *testing.T) {
	db := universityDB(t, Config{})
	err := db.DefineSchema(`
Subclass Loopy of Instructor ( self-ref: derived self-ref + 1 );`)
	if err == nil || !strings.Contains(err.Error(), "deep") {
		t.Fatalf("recursive derived definition: %v", err)
	}
}
