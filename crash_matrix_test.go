package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"sim/internal/dmsii"
	"sim/internal/fault"
	"sim/internal/pager"
	"sim/internal/wal"
)

// openFaultDB assembles a full Database over fault-wrapped in-memory
// storage: ChecksumFile(fault(dbImg)) for pages, WAL over fault(walImg).
// The images outlive the wrappers, so a crashed database can be
// "rebooted" by calling openFaultDB again with a fresh injector.
func openFaultDB(inj *fault.Injector, dbImg, walImg *pager.MemByteFile) (*Database, error) {
	file := pager.NewChecksumFile(fault.Wrap("db", dbImg, inj))
	log, err := wal.OpenBacking(fault.Wrap("wal", walImg, inj))
	if err != nil {
		return nil, err
	}
	store, err := dmsii.OpenFiles(file, log, dmsii.Options{})
	if err != nil {
		return nil, err
	}
	return openStore(store, Config{})
}

// dumpFlightOnFailure logs the recovered database's flight recorder when
// the test has failed and, if SIM_FLIGHT_DUMP names a file, appends the
// dump there so CI can upload it as an artifact. Call via defer with a
// pointer to the variable holding the most recently rebooted database.
func dumpFlightOnFailure(t *testing.T, dbp **Database) {
	if !t.Failed() || dbp == nil || *dbp == nil {
		return
	}
	dump := (*dbp).FlightRecorder().Dump()
	t.Logf("flight recorder at failure:\n%s", dump)
	path := os.Getenv("SIM_FLIGHT_DUMP")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("SIM_FLIGHT_DUMP: %v", err)
		return
	}
	fmt.Fprintf(f, "=== %s ===\n%s\n", t.Name(), dump)
	f.Close()
}

const crashMatrixSchema = `Class Item ( num: integer unique required; tag: string[16] );`

// crashStep is one transaction of the crash-matrix workload plus a model
// of its effect on a num->tag map, so any committed prefix's expected
// state can be computed without the database.
type crashStep struct {
	dml   string
	apply func(m map[string]string)
}

func crashMatrixSteps() []crashStep {
	set := func(m map[string]string, num int, tag string) { m[fmt.Sprint(num)] = tag }
	retagBelow := func(m map[string]string, n int, tag string) {
		for k := range m {
			var num int
			fmt.Sscan(k, &num)
			if num < n {
				m[k] = tag
			}
		}
	}
	return []crashStep{
		{`Insert item (num := 1, tag := "t1").`, func(m map[string]string) { set(m, 1, "t1") }},
		{`Insert item (num := 2, tag := "t2").`, func(m map[string]string) { set(m, 2, "t2") }},
		{`Modify item (tag := "m4") Where num < 3.`, func(m map[string]string) { retagBelow(m, 3, "m4") }},
		{`Insert item (num := 5, tag := "t5").`, func(m map[string]string) { set(m, 5, "t5") }},
		{`Modify item (tag := "m6") Where num < 6.`, func(m map[string]string) { retagBelow(m, 6, "m6") }},
		{`Insert item (num := 7, tag := "t7").`, func(m map[string]string) { set(m, 7, "t7") }},
	}
}

// prefixState returns the expected num->tag map after the first k steps
// of the workload, where step 1 is DefineSchema and steps 2..n+1 are the
// transactions.
func prefixState(k int, steps []crashStep) map[string]string {
	m := make(map[string]string)
	for i := 0; i < k-1 && i < len(steps); i++ {
		steps[i].apply(m)
	}
	return m
}

// runCrashWorkload runs the workload until the first failure, returning
// the number of steps (schema batch = step 1) that reported success.
func runCrashWorkload(inj *fault.Injector, dbImg, walImg *pager.MemByteFile) int {
	db, err := openFaultDB(inj, dbImg, walImg)
	if err != nil {
		return 0
	}
	if err := db.DefineSchema(crashMatrixSchema); err != nil {
		return 0
	}
	done := 1
	for _, st := range crashMatrixSteps() {
		if _, err := db.Exec(st.dml); err != nil {
			break
		}
		done++
	}
	return done
}

// readItems returns the database's num->tag map, or nil if the schema
// never committed.
func readItems(t *testing.T, db *Database) map[string]string {
	t.Helper()
	if db.Catalog().Class("item") == nil {
		return nil
	}
	r, err := db.Query(`From item Retrieve num, tag.`)
	if err != nil {
		t.Fatalf("reading items: %v", err)
	}
	m := make(map[string]string)
	for _, row := range r.Rows() {
		m[row[0].String()] = row[1].String()
	}
	return m
}

func equalState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestCrashMatrix crashes the full stack at EVERY mutating-operation
// boundary of a multi-transaction workload — including torn-write
// variants that persist only a prefix of the crashing write — reopens
// the frozen image, and asserts the recovered database equals a
// consistent prefix of the committed transactions: exactly the steps
// that reported success, plus at most the one in flight (which is
// allowed to have become durable if the crash landed after its WAL
// sync). Scrub and CheckIntegrity must pass on every recovered image.
//
// By default the matrix samples every third boundary; SIM_CRASH_MATRIX=full
// (the CI crash-matrix job) covers every boundary.
func TestCrashMatrix(t *testing.T) {
	steps := crashMatrixSteps()

	// Count run: no faults, record the total mutating operations and
	// validate the workload model against the real engine.
	countInj := fault.NewInjector()
	dbImg, walImg := pager.NewMemByteFile(), pager.NewMemByteFile()
	if got := runCrashWorkload(countInj, dbImg, walImg); got != len(steps)+1 {
		t.Fatalf("fault-free workload completed %d/%d steps", got, len(steps)+1)
	}
	totalOps := countInj.Ops()
	if totalOps < 20 {
		t.Fatalf("workload issued only %d mutating ops; matrix would be trivial", totalOps)
	}
	check, err := openFaultDB(fault.NewInjector(), dbImg, walImg)
	if err != nil {
		t.Fatal(err)
	}
	if got := readItems(t, check); !equalState(got, prefixState(len(steps)+1, steps)) {
		t.Fatalf("workload model mismatch: engine %v, model %v", got, prefixState(len(steps)+1, steps))
	}

	stride := uint64(3)
	if os.Getenv("SIM_CRASH_MATRIX") == "full" {
		stride = 1
	}
	// Torn sizes: 0 = clean cut at the op boundary, 13 = inside a WAL
	// record header, PageSize+1 = inside a page slot's data.
	tornSizes := []int{0, 13, pager.PageSize + 1}

	var cur *Database // most recently rebooted database, for the failure dump
	defer dumpFlightOnFailure(t, &cur)
	runs := 0
	for c := uint64(1); c <= totalOps; c += stride {
		for _, torn := range tornSizes {
			runs++
			name := fmt.Sprintf("crash at op %d torn %d", c, torn)
			inj := fault.NewInjector()
			if torn == 0 {
				inj.CrashAt(c)
			} else {
				inj.CrashAtTorn(c, torn)
			}
			img, wimg := pager.NewMemByteFile(), pager.NewMemByteFile()
			succeeded := runCrashWorkload(inj, img, wimg)
			if !inj.Crashed() {
				t.Fatalf("%s: crash never fired (%d ops this run)", name, inj.Ops())
			}

			// Reboot from the frozen image and identify the recovered state.
			db2, err := openFaultDB(fault.NewInjector(), img, wimg)
			if err != nil {
				t.Fatalf("%s: reopen after crash: %v", name, err)
			}
			cur = db2
			got := readItems(t, db2)
			matched := -1
			for _, k := range []int{succeeded, succeeded + 1} {
				want := prefixState(k, steps)
				if got == nil && k == 0 {
					matched = k
					break
				}
				if got != nil && k >= 1 && equalState(got, want) {
					matched = k
					break
				}
			}
			if matched < 0 {
				t.Fatalf("%s: recovered state %v is not a consistent prefix (%d steps succeeded)",
					name, got, succeeded)
			}
			if got != nil {
				if err := db2.CheckIntegrity(); err != nil {
					t.Fatalf("%s: integrity after recovery: %v", name, err)
				}
			}
			rep, err := db2.Scrub()
			if err != nil {
				t.Fatalf("%s: scrub: %v", name, err)
			}
			if !rep.OK() {
				t.Fatalf("%s: scrub after recovery: %s", name, rep)
			}
			if err := db2.Close(); err != nil {
				t.Fatalf("%s: close after recovery: %v", name, err)
			}
		}
	}
	t.Logf("crash matrix: %d boundaries, %d runs (stride %d)", totalOps, runs, stride)
}

// TestCrashMatrixConcurrent is the concurrent-writer crash schedule:
// several autocommit writers and one explicit-transaction writer commit
// into the same class while the matrix freezes the image at sampled
// operation boundaries. Group commit makes the op schedule
// nondeterministic — committers share a leader's fsync, so which
// operation a given counter value lands on varies run to run — so the
// invariant is acknowledgment-based rather than step-based:
//
//   - every insert whose Exec (or Commit) returned success before the
//     crash must be present after recovery,
//   - every recovered row must be one the workload actually issued, and
//   - each explicit transaction's two rows recover both-or-neither.
//
// CheckIntegrity and Scrub must pass on every recovered image.
func TestCrashMatrixConcurrent(t *testing.T) {
	const (
		autoWriters = 3
		perWriter   = 8
		pairs       = 4
		fillerBase  = 900
	)
	autoNum := func(g, i int) int { return 100 + g*perWriter + i }
	pairNums := func(p int) (int, int) { return 500 + 2*p, 500 + 2*p + 1 }

	// attempted is every row the workload could ever insert, with its tag:
	// anything recovered outside this set is corruption, not a lost ack.
	// Filler rows are added once their range is known (after the count run).
	attempted := make(map[string]string)
	for g := 0; g < autoWriters; g++ {
		for i := 0; i < perWriter; i++ {
			attempted[fmt.Sprint(autoNum(g, i))] = fmt.Sprintf("w%d-%d", g, i)
		}
	}
	for p := 0; p < pairs; p++ {
		a, b := pairNums(p)
		attempted[fmt.Sprint(a)] = fmt.Sprintf("p%d-a", p)
		attempted[fmt.Sprint(b)] = fmt.Sprintf("p%d-b", p)
	}

	// run drives the concurrent workload until it finishes or the crash
	// fires, returning the num->tag map of acknowledged-durable inserts.
	// Because group scheduling shifts where operations land, a crash point
	// past this run's natural op count might never fire; up to fillerMax
	// serial filler inserts push the counter until it does.
	run := func(inj *fault.Injector, dbImg, walImg *pager.MemByteFile, fillerMax int) map[string]string {
		acked := make(map[string]string)
		db, err := openFaultDB(inj, dbImg, walImg)
		if err != nil {
			return acked
		}
		if err := db.DefineSchema(crashMatrixSchema); err != nil {
			return acked
		}
		var mu sync.Mutex
		ack := func(num int, tag string) {
			mu.Lock()
			acked[fmt.Sprint(num)] = tag
			mu.Unlock()
		}
		insert := func(num int, tag string) error {
			_, err := db.Exec(fmt.Sprintf(`Insert item (num := %d, tag := %q).`, num, tag))
			return err
		}
		var wg sync.WaitGroup
		for g := 0; g < autoWriters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					num, tag := autoNum(g, i), fmt.Sprintf("w%d-%d", g, i)
					if insert(num, tag) != nil {
						return
					}
					ack(num, tag)
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for p := 0; p < pairs; p++ {
				a, b := pairNums(p)
				atag, btag := fmt.Sprintf("p%d-a", p), fmt.Sprintf("p%d-b", p)
				tx, err := db.Begin(ctx)
				if err != nil {
					return
				}
				if _, err := tx.Exec(ctx, fmt.Sprintf(`Insert item (num := %d, tag := %q).`, a, atag)); err != nil {
					tx.Rollback()
					return
				}
				if _, err := tx.Exec(ctx, fmt.Sprintf(`Insert item (num := %d, tag := %q).`, b, btag)); err != nil {
					tx.Rollback()
					return
				}
				if tx.Commit() != nil {
					return
				}
				ack(a, atag)
				ack(b, btag)
			}
		}()
		wg.Wait()
		for num := fillerBase; !inj.Crashed() && num < fillerBase+fillerMax; num++ {
			tag := fmt.Sprintf("f%d", num)
			if insert(num, tag) == nil {
				ack(num, tag)
			}
		}
		return acked
	}

	// Count run: no faults. Validates the workload (everything acks, the
	// recovered image matches exactly) and sizes the crash-point range.
	countInj := fault.NewInjector()
	dbImg, walImg := pager.NewMemByteFile(), pager.NewMemByteFile()
	if acked := run(countInj, dbImg, walImg, 0); len(acked) != len(attempted) {
		t.Fatalf("fault-free run acked %d/%d inserts", len(acked), len(attempted))
	}
	totalOps := countInj.Ops()
	if totalOps < 20 {
		t.Fatalf("workload issued only %d mutating ops; matrix would be trivial", totalOps)
	}
	check, err := openFaultDB(fault.NewInjector(), dbImg, walImg)
	if err != nil {
		t.Fatal(err)
	}
	if got := readItems(t, check); !equalState(got, attempted) {
		t.Fatalf("fault-free recovered state %v != attempted %v", got, attempted)
	}
	if err := check.Close(); err != nil {
		t.Fatal(err)
	}
	fillerMax := int(totalOps)
	for num := fillerBase; num < fillerBase+fillerMax; num++ {
		attempted[fmt.Sprint(num)] = fmt.Sprintf("f%d", num)
	}

	stride := uint64(5)
	if os.Getenv("SIM_CRASH_MATRIX") == "full" {
		stride = 1
	}
	var cur *Database
	defer dumpFlightOnFailure(t, &cur)
	runs := 0
	for c := uint64(2); c <= totalOps; c += stride {
		for _, torn := range []int{0, 13} {
			runs++
			name := fmt.Sprintf("crash at op %d torn %d", c, torn)
			inj := fault.NewInjector()
			if torn == 0 {
				inj.CrashAt(c)
			} else {
				inj.CrashAtTorn(c, torn)
			}
			img, wimg := pager.NewMemByteFile(), pager.NewMemByteFile()
			acked := run(inj, img, wimg, fillerMax)
			if !inj.Crashed() {
				t.Fatalf("%s: crash never fired (%d ops this run)", name, inj.Ops())
			}

			db2, err := openFaultDB(fault.NewInjector(), img, wimg)
			if err != nil {
				t.Fatalf("%s: reopen after crash: %v", name, err)
			}
			cur = db2
			got := readItems(t, db2)
			if got == nil {
				if len(acked) != 0 {
					t.Fatalf("%s: schema lost in recovery but %d inserts had been acknowledged", name, len(acked))
				}
			} else {
				for num, tag := range acked {
					if got[num] != tag {
						t.Fatalf("%s: acknowledged insert num=%s tag=%q lost in recovery (found %q)", name, num, tag, got[num])
					}
				}
				for num, tag := range got {
					if attempted[num] != tag {
						t.Fatalf("%s: recovered row num=%s tag=%q was never written", name, num, tag)
					}
				}
				for p := 0; p < pairs; p++ {
					a, b := pairNums(p)
					_, hasA := got[fmt.Sprint(a)]
					_, hasB := got[fmt.Sprint(b)]
					if hasA != hasB {
						t.Fatalf("%s: explicit transaction %d recovered torn: first=%v second=%v", name, p, hasA, hasB)
					}
				}
				if err := db2.CheckIntegrity(); err != nil {
					t.Fatalf("%s: integrity after recovery: %v", name, err)
				}
			}
			rep, err := db2.Scrub()
			if err != nil {
				t.Fatalf("%s: scrub: %v", name, err)
			}
			if !rep.OK() {
				t.Fatalf("%s: scrub after recovery: %s", name, rep)
			}
			if err := db2.Close(); err != nil {
				t.Fatalf("%s: close after recovery: %v", name, err)
			}
		}
	}
	t.Logf("concurrent crash matrix: %d boundaries, %d runs (stride %d)", totalOps, runs, stride)
}

// A bit flipped at rest in the database file must never be silently
// served: reads fail with ErrCorruptPage and Scrub names the page.
func TestCorruptPageDetectedNotServed(t *testing.T) {
	dbImg, walImg := pager.NewMemByteFile(), pager.NewMemByteFile()
	db, err := openFaultDB(fault.NewInjector(), dbImg, walImg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineSchema(crashMatrixSchema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		mustExec(t, db, fmt.Sprintf(`Insert item (num := %d, tag := "tag%04d").`, i+10, i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in a page the record scan actually reads. Which page
	// holds item records depends on the physical mapping, so probe from
	// the tail: damage a page, reopen, and keep the damage once the full
	// scan trips over it (restoring pages that turn out to be index or
	// directory pages the scan does not touch, or pages needed at open).
	const slot = int64(pager.PageSize) + 4
	size, _ := dbImg.Size()
	hit := int64(-1)
	for p := size/slot - 1; p >= 1 && hit < 0; p-- {
		off := p*slot + 2048
		var orig [1]byte
		dbImg.ReadAt(orig[:], off)
		dbImg.WriteAt([]byte{orig[0] ^ 0x40}, off)
		db2, err := openFaultDB(fault.NewInjector(), dbImg, walImg)
		if err == nil {
			if _, qerr := db2.Query(`From item Retrieve num, tag.`); qerr != nil {
				if !errors.Is(qerr, pager.ErrCorruptPage) {
					t.Fatalf("scan over damaged page %d = %v, want ErrCorruptPage in the chain", p, qerr)
				}
				hit = p
				break
			}
		} else if !errors.Is(err, pager.ErrCorruptPage) {
			t.Fatalf("reopen with damaged page %d = %v", p, err)
		}
		dbImg.WriteAt(orig[:], off) // page not on the scan path; restore
	}
	if hit < 0 {
		t.Fatal("no page damage ever surfaced in the record scan")
	}

	// Scrub over the damaged image names the page.
	db3, err := openFaultDB(fault.NewInjector(), dbImg, walImg)
	if err != nil {
		t.Fatal(err)
	}
	defer dumpFlightOnFailure(t, &db3)
	rep, err := db3.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("scrub missed the flipped bit")
	}
	found := false
	for _, id := range rep.Corrupt {
		if int64(id) == hit {
			found = true
		}
	}
	if !found {
		t.Errorf("scrub reported pages %v, want %d", rep.Corrupt, hit)
	}
}
