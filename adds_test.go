package sim

import (
	"fmt"
	"strings"
	"testing"

	"sim/internal/adds"
)

// The ADDS statistics of §6: 13 base classes, 209 subclasses, 39
// EVA-inverse pairs, 530 DVAs, one hierarchy 5 levels deep.
func TestADDSScaleSchema(t *testing.T) {
	db, err := Open("", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineSchema(adds.DDL()); err != nil {
		t.Fatalf("ADDS-scale schema rejected: %v", err)
	}
	s := db.SchemaSummary()
	for _, want := range []string{
		fmt.Sprintf("base classes: %d", adds.BaseClasses),
		fmt.Sprintf("subclasses: %d", adds.Subclasses),
		fmt.Sprintf("EVA-inverse pairs: %d", adds.EVAPairs),
		fmt.Sprintf("DVAs: %d", adds.DVAs),
		fmt.Sprintf("max generalization depth: %d", adds.MaxDepth),
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}

	// The dictionary is usable: entities inserted at the deepest level are
	// visible at every generalization level, carrying the base class's
	// attributes.
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf(
			`Insert dd-ent00-lvl5 (dd-ent00-attr00 := "object-%d", dd-ent00-attr01 := %d).`, i, i))
	}
	for _, cls := range []string{"dd-ent00", "dd-ent00-lvl1", "dd-ent00-lvl3", "dd-ent00-lvl5"} {
		r := mustQuery(t, db, fmt.Sprintf(`From %s Retrieve dd-ent00-attr00 Order By dd-ent00-attr00.`, cls))
		if r.NumRows() != 5 {
			t.Errorf("%s has %d entities, want 5", cls, r.NumRows())
		}
	}
	// Relationships across base classes, traversed through the named
	// inverse.
	mustExec(t, db, `Insert dd-ent01 (dd-ent01-attr00 := "target").`)
	mustExec(t, db, `Modify dd-ent00 (rel00-a := include dd-ent01 with (dd-ent01-attr00 = "target")) Where dd-ent00-attr00 = "object-0".`)
	r := mustQuery(t, db, `From dd-ent01 Retrieve dd-ent00-attr00 of rel00-a-back Where dd-ent01-attr00 = "target".`)
	expectRows(t, r, [][]string{{"object-0"}})
}
