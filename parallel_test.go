package sim

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
)

// bulkStudents inserts n extra students so the Student root domain is large
// enough to cross the executor's parallel threshold.
func bulkStudents(t *testing.T, db *Database, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustExec(t, db, fmt.Sprintf(
			`Insert student (name := "Bulk %03d", soc-sec-no := %d,
			   birthdate := "1990-01-01", student-nbr := %d,
			   major-department := department with (name = "CS")).`,
			i, 500000000+i, 2000+i))
	}
}

// TestQueryConcurrent hammers Query from 8 goroutines. On the seed this
// races on the buffer pool and the mapper caches (caught by -race); with
// the sharded pool and locked caches every goroutine must see the same
// answer the serial path gives.
func TestQueryConcurrent(t *testing.T) {
	db := universityDB(t, Config{})
	bulkStudents(t, db, 64)
	queries := []string{
		`From Student Retrieve Name Order By Name.`,
		`From Student Retrieve Name, Name of Major-Department Order By Name.`,
		`From Instructor Retrieve Name Where salary > 40000 Order By Name.`,
		`From Course Retrieve Title, Credits Order By Title.`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = mustQuery(t, db, q).Format()
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				r, err := db.Query(queries[qi])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				if got := r.Format(); got != want[qi] {
					errs <- fmt.Errorf("goroutine %d query %d: result diverged from serial answer", g, qi)
					return
				}
				// Stats must be safe to read while queries run.
				_ = db.Stats()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelMatchesSerial checks the tentpole invariant: a database
// configured with many workers produces byte-identical output to one
// forced serial, across output modes the parallel path must handle
// (plain TABLE, TABLE DISTINCT, ORDER BY, aggregates, STRUCTURE).
func TestParallelMatchesSerial(t *testing.T) {
	serial := universityDB(t, Config{Workers: 1})
	parallel := universityDB(t, Config{Workers: 8})
	bulkStudents(t, serial, 64)
	bulkStudents(t, parallel, 64)

	queries := []string{
		`From Student Retrieve Name, Student-Nbr.`,
		`From Student Retrieve Name, Student-Nbr Order By Student-Nbr.`,
		`From Student Retrieve Table Distinct Name of Major-Department.`,
		`From Student Retrieve Name, Name of Advisor Order By Name.`,
		`From Instructor Retrieve Name, count(Advisees) Order By Name.`,
		`From Student Retrieve Structure Name, Title of Courses-Enrolled.`,
	}
	for _, q := range queries {
		rs := mustQuery(t, serial, q)
		rp := mustQuery(t, parallel, q)
		if rs.Format() != rp.Format() {
			t.Errorf("query %q: parallel result differs from serial\nserial:\n%s\nparallel:\n%s",
				q, rs.Format(), rp.Format())
		}
		if rs.FormatStructured() != rp.FormatStructured() {
			t.Errorf("query %q: parallel structured result differs from serial", q)
		}
	}
}

// TestConcurrentSoak mixes Query, Exec and Checkpoint from concurrent
// goroutines and verifies the database still satisfies every VERIFY
// assertion afterwards. With SIM_SOAK_TRACE set the readers run through
// QueryTrace instead, soaking the span-collection path (CI runs both).
func TestConcurrentSoak(t *testing.T) {
	db := universityDB(t, Config{})
	bulkStudents(t, db, 40)

	traced := os.Getenv("SIM_SOAK_TRACE") != ""
	query := func(q string) error {
		if traced {
			_, _, err := db.QueryTrace(q)
			return err
		}
		_, err := db.Query(q)
		return err
	}

	const readers = 4
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, readers+2)

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := query(`From Student Retrieve Name, Name of Major-Department.`); err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			nbr := 3000 + i
			ins := fmt.Sprintf(
				`Insert student (name := "Soak %d", soc-sec-no := %d,
				   birthdate := "1991-01-01", student-nbr := %d,
				   major-department := department with (name = "Math")).`,
				i, 600000000+i, nbr)
			if _, err := db.Exec(ins); err != nil {
				errs <- fmt.Errorf("writer insert %d: %w", i, err)
				return
			}
			if i%2 == 0 {
				del := fmt.Sprintf(`Delete student Where student-nbr = %d.`, nbr)
				if _, err := db.Exec(del); err != nil {
					errs <- fmt.Errorf("writer delete %d: %w", i, err)
					return
				}
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			if err := db.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity after soak: %v", err)
	}
}

// TestPlanCache covers hit accounting, visibility of data changes through
// a cached plan, and invalidation on schema change.
func TestPlanCache(t *testing.T) {
	db := universityDB(t, Config{})
	q := `From Student Retrieve Name Order By Name.`

	base := db.Stats().Plans
	mustQuery(t, db, q)
	after1 := db.Stats().Plans
	if after1.Misses != base.Misses+1 {
		t.Fatalf("first query: misses = %d, want %d", after1.Misses, base.Misses+1)
	}
	mustQuery(t, db, q)
	after2 := db.Stats().Plans
	if after2.Hits != after1.Hits+1 {
		t.Fatalf("second query: hits = %d, want %d", after2.Hits, after1.Hits+1)
	}

	// A cached plan must see data changes made after it was cached.
	before := mustQuery(t, db, q).NumRows()
	mustExec(t, db, `Insert student (name := "Cache Probe", soc-sec-no := 700000001,
	   birthdate := "1992-01-01", student-nbr := 3999,
	   major-department := department with (name = "CS")).`)
	if got := mustQuery(t, db, q).NumRows(); got != before+1 {
		t.Fatalf("cached plan after insert: %d rows, want %d", got, before+1)
	}

	// Schema changes invalidate every cached plan.
	if err := db.DefineSchema(`Class Building ( bldg-nbr: integer (1..999) unique required; name: string[30] );`); err != nil {
		t.Fatalf("DefineSchema: %v", err)
	}
	if got := db.Stats().Plans.Entries; got != 0 {
		t.Fatalf("plan cache entries after DefineSchema = %d, want 0", got)
	}
	mustQuery(t, db, q) // replans against the new catalog
	mustExec(t, db, `Insert building (bldg-nbr := 1, name := "Main Hall").`)
	r := mustQuery(t, db, `From Building Retrieve Name.`)
	expectRows(t, r, [][]string{{"Main Hall"}})

	// PlanCacheSize < 0 disables caching entirely.
	nocache := universityDB(t, Config{PlanCacheSize: -1})
	mustQuery(t, nocache, q)
	mustQuery(t, nocache, q)
	if s := nocache.Stats().Plans; s.Hits != 0 || s.Entries != 0 {
		t.Fatalf("disabled cache recorded hits=%d entries=%d", s.Hits, s.Entries)
	}
}

// TestWorkersConfig sanity-checks Config.Workers resolution.
func TestWorkersConfig(t *testing.T) {
	if got := (Config{}).normalize().queryWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Config{Workers: 3}).normalize().queryWorkers(); got != 3 {
		t.Errorf("Workers:3 resolved to %d", got)
	}
	// Negative worker counts are rejected at Open, not silently clamped.
	if err := (Config{Workers: -1}).Validate(); err == nil {
		t.Error("Validate accepted Workers:-1")
	}
}
