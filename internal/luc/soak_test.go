package luc

import (
	"math/rand"
	"testing"

	"sim/internal/catalog"
	"sim/internal/value"
)

// TestMapperInvariantSoak drives a random operation mix against the
// university schema and then checks the Mapper's global invariants:
// inverse symmetry of every EVA instance, single-valued and MAX
// cardinalities, statistics consistency, and uniqueness.
func TestMapperInvariantSoak(t *testing.T) {
	configs := map[string]Config{
		"default":    {},
		"split":      {Hierarchy: map[string]HierarchyStrategy{"person": HierarchySplit}},
		"fk-advisor": {EVA: map[string]EVAStrategy{"student.advisor": EVAForeignKey}},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			soak(t, cfg, 2000)
		})
	}
}

func soak(t *testing.T, cfg Config, ops int) {
	e := newEnv(t, cfg)
	r := rand.New(rand.NewSource(1234))

	classes := []string{"person", "student", "instructor", "teaching-assistant", "course", "department"}
	var people, courses, departments []value.Surrogate
	pool := func(class string) *[]value.Surrogate {
		switch class {
		case "course":
			return &courses
		case "department":
			return &departments
		}
		return &people
	}
	pick := func(s []value.Surrogate) (value.Surrogate, bool) {
		if len(s) == 0 {
			return 0, false
		}
		return s[r.Intn(len(s))], true
	}

	advisor := e.attr("student", "advisor")
	enrolled := e.attr("student", "courses-enrolled")
	spouse := e.attr("person", "spouse")
	prereq := e.attr("course", "prerequisites")
	ssn := e.attr("person", "soc-sec-no")
	nextSSN := int64(500000000)

	for op := 0; op < ops; op++ {
		switch r.Intn(10) {
		case 0, 1: // create
			class := classes[r.Intn(len(classes))]
			s, err := e.m.NewEntity(e.class(class))
			if err != nil {
				t.Fatalf("op %d: new %s: %v", op, class, err)
			}
			p := pool(class)
			*p = append(*p, s)
		case 2: // set unique DVA
			if s, ok := pick(people); ok {
				nextSSN++
				if err := e.m.SetSingle(s, ssn, value.NewInt(nextSSN)); err != nil {
					if _, dup := err.(*UniqueError); !dup {
						t.Fatalf("op %d: ssn: %v", op, err)
					}
				}
			}
		case 3: // advisor include (roles may be missing: tolerated errors)
			s, ok1 := pick(people)
			i, ok2 := pick(people)
			if ok1 && ok2 {
				err := e.m.IncludeEVA(s, advisor, i)
				if err != nil && !tolerable(err) {
					t.Fatalf("op %d: advisor: %v", op, err)
				}
			}
		case 4: // enrollment include
			s, ok1 := pick(people)
			c, ok2 := pick(courses)
			if ok1 && ok2 {
				if err := e.m.IncludeEVA(s, enrolled, c); err != nil && !tolerable(err) {
					t.Fatalf("op %d: enroll: %v", op, err)
				}
			}
		case 5: // enrollment exclude
			s, ok1 := pick(people)
			c, ok2 := pick(courses)
			if ok1 && ok2 {
				if err := e.m.ExcludeEVA(s, enrolled, c); err != nil && !tolerable(err) {
					t.Fatalf("op %d: unenroll: %v", op, err)
				}
			}
		case 6: // spouse
			a, ok1 := pick(people)
			b, ok2 := pick(people)
			if ok1 && ok2 && a != b {
				if err := e.m.IncludeEVA(a, spouse, b); err != nil && !tolerable(err) {
					t.Fatalf("op %d: spouse: %v", op, err)
				}
			}
		case 7: // prerequisites (reflexive pair)
			a, ok1 := pick(courses)
			b, ok2 := pick(courses)
			if ok1 && ok2 && a != b {
				if err := e.m.IncludeEVA(a, prereq, b); err != nil && !tolerable(err) {
					t.Fatalf("op %d: prereq: %v", op, err)
				}
			}
		case 8: // role extension
			if s, ok := pick(people); ok {
				cl := e.class([]string{"student", "instructor", "teaching-assistant"}[r.Intn(3)])
				if _, err := e.m.ExtendRole(s, cl); err != nil && err != ErrNotFound {
					t.Fatalf("op %d: extend: %v", op, err)
				}
			}
		case 9: // role deletion (sometimes full delete)
			if len(people) > 0 && r.Intn(3) == 0 {
				idx := r.Intn(len(people))
				s := people[idx]
				cl := e.class([]string{"person", "student", "instructor"}[r.Intn(3)])
				ok, err := e.m.HasRole(s, cl)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				if err := e.m.DeleteRoles(s, cl); err != nil {
					t.Fatalf("op %d: delete roles: %v", op, err)
				}
				if cl.IsBase() {
					people = append(people[:idx], people[idx+1:]...)
				}
			}
		}
	}
	checkInvariants(t, e)
}

// tolerable filters expected integrity rejections the soak provokes.
func tolerable(err error) bool {
	if err == ErrNotFound {
		return true
	}
	if _, ok := err.(*CardinalityError); ok {
		return true
	}
	msg := err.Error()
	return contains(msg, "has no") // role integrity rejections
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// checkInvariants validates global consistency after the soak.
func checkInvariants(t *testing.T, e *env) {
	t.Helper()
	// 1. Statistics match reality for every class.
	for _, cl := range e.cat.Classes() {
		actual, err := e.m.Surrogates(cl)
		if err != nil {
			t.Fatal(err)
		}
		n, err := e.m.Count(cl)
		if err != nil {
			t.Fatal(err)
		}
		if int(n) != len(actual) {
			t.Errorf("Count(%s) = %d, scan found %d", cl.Name, n, len(actual))
		}
	}
	// 2. EVA symmetry + cardinality for every declared EVA and entity.
	for _, cl := range e.cat.Classes() {
		entities, _ := e.m.Surrogates(cl)
		for _, a := range cl.Attrs {
			if a.Kind != catalog.EVA {
				continue
			}
			instances := 0
			for _, s := range entities {
				targets, err := e.m.GetEVA(s, a)
				if err != nil {
					t.Fatalf("GetEVA(%d, %s): %v", s, a, err)
				}
				instances += len(targets)
				if !a.Options.MV && len(targets) > 1 {
					t.Errorf("single-valued %s has %d targets on #%d", a, len(targets), s)
				}
				if a.Options.Max > 0 && len(targets) > a.Options.Max {
					t.Errorf("%s exceeds MAX %d on #%d", a, a.Options.Max, s)
				}
				for _, target := range targets {
					// Inverse symmetry.
					back, err := e.m.GetEVA(target, a.Inverse)
					if err != nil {
						t.Fatal(err)
					}
					found := false
					for _, b := range back {
						if b == s {
							found = true
						}
					}
					if !found {
						t.Errorf("asymmetric instance: #%d -%s→ #%d but not back via %s", s, a.Name, target, a.Inverse.Name)
					}
					// Referential + role integrity: the target holds the
					// range role.
					ok, err := e.m.HasRole(target, a.Range)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Errorf("dangling reference: #%d -%s→ #%d lacks %s role", s, a.Name, target, a.Range.Name)
					}
				}
			}
			_ = instances
		}
	}
	// 3. Uniqueness: no two persons share a soc-sec-no.
	ssn := e.attr("person", "soc-sec-no")
	seen := map[string]value.Surrogate{}
	persons, _ := e.m.Surrogates(e.class("person"))
	for _, s := range persons {
		v, err := e.m.GetSingle(s, ssn)
		if err != nil {
			t.Fatal(err)
		}
		if v.IsNull() {
			continue
		}
		if other, dup := seen[v.Key()]; dup {
			t.Errorf("duplicate ssn %s on #%d and #%d", v, s, other)
		}
		seen[v.Key()] = s
	}
	// 4. Relationship statistics: RelCount matches a full recount.
	counted := map[*catalog.Attribute]int{}
	for _, cl := range e.cat.Classes() {
		entities, _ := e.m.Surrogates(cl)
		for _, a := range cl.Attrs {
			if a.Kind != catalog.EVA {
				continue
			}
			can := canonical(a)
			if can != a {
				continue // count once per pair, from the canonical side
			}
			for _, s := range entities {
				targets, _ := e.m.GetEVA(s, a)
				if a == a.Inverse {
					// Self-inverse: each instance visible from both ends.
					counted[can] += len(targets)
				} else {
					counted[can] += len(targets)
				}
			}
		}
	}
	for can, actual := range counted {
		if can == can.Inverse {
			// Self-inverse instances were double counted (once per end),
			// except self-loops... the mapper counts one per instance.
			continue // checked separately below if needed
		}
		n, err := e.m.RelCount(can)
		if err != nil {
			t.Fatal(err)
		}
		if int(n) != actual {
			t.Errorf("RelCount(%s) = %d, recount = %d", can, n, actual)
		}
	}
}
