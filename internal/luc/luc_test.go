package luc

import (
	"errors"
	"fmt"
	"testing"

	"sim/internal/catalog"
	"sim/internal/dmsii"
	"sim/internal/parser"
	"sim/internal/university"
	"sim/internal/value"
)

// env bundles a mapper over an in-memory store with an open transaction.
type env struct {
	t   *testing.T
	s   *dmsii.Store
	cat *catalog.Catalog
	m   *Mapper
	tx  *dmsii.Txn
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	sch, err := parser.ParseSchema(university.DDL)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Build(sch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dmsii.OpenMemory(dmsii.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	m, err := New(s, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return &env{t: t, s: s, cat: cat, m: m, tx: tx}
}

func (e *env) class(name string) *catalog.Class {
	e.t.Helper()
	cl := e.cat.Class(name)
	if cl == nil {
		e.t.Fatalf("class %s missing", name)
	}
	return cl
}

func (e *env) attr(class, name string) *catalog.Attribute {
	e.t.Helper()
	a := catalog.ResolveAttr(e.class(class), name)
	if a == nil {
		e.t.Fatalf("attribute %s.%s missing", class, name)
	}
	return a
}

func (e *env) newEntity(class string) value.Surrogate {
	e.t.Helper()
	s, err := e.m.NewEntity(e.class(class))
	if err != nil {
		e.t.Fatalf("NewEntity(%s): %v", class, err)
	}
	return s
}

func (e *env) set(s value.Surrogate, class, attr string, v value.Value) {
	e.t.Helper()
	if err := e.m.SetSingle(s, e.attr(class, attr), v); err != nil {
		e.t.Fatalf("SetSingle(%s.%s): %v", class, attr, err)
	}
}

func (e *env) get(s value.Surrogate, class, attr string) value.Value {
	e.t.Helper()
	v, err := e.m.GetSingle(s, e.attr(class, attr))
	if err != nil {
		e.t.Fatalf("GetSingle(%s.%s): %v", class, attr, err)
	}
	return v
}

// configs to exercise the paper's §5.2 mapping alternatives with identical
// behavioral expectations.
var mappingConfigs = map[string]Config{
	"default": {},
	"split-hierarchy": {
		Hierarchy: map[string]HierarchyStrategy{"person": HierarchySplit, "course": HierarchySplit, "department": HierarchySplit},
	},
	"fk-advisor": {
		EVA: map[string]EVAStrategy{"student.advisor": EVAForeignKey},
	},
	"common-spouse": {
		EVA: map[string]EVAStrategy{"person.spouse": EVACommon},
	},
	"separate-mv": {
		MVDVA: map[string]MVDVAStrategy{},
	},
}

func forAllConfigs(t *testing.T, f func(t *testing.T, e *env)) {
	for name, cfg := range mappingConfigs {
		t.Run(name, func(t *testing.T) {
			f(t, newEnv(t, cfg))
		})
	}
}

func TestEntityLifecycle(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		s := e.newEntity("student")
		// Roles: student + person.
		for _, c := range []string{"student", "person"} {
			ok, err := e.m.HasRole(s, e.class(c))
			if err != nil || !ok {
				t.Errorf("HasRole(%s) = %v, %v", c, ok, err)
			}
		}
		for _, c := range []string{"instructor", "teaching-assistant"} {
			ok, _ := e.m.HasRole(s, e.class(c))
			if ok {
				t.Errorf("unexpected role %s", c)
			}
		}
		// Counts.
		if n, _ := e.m.Count(e.class("person")); n != 1 {
			t.Errorf("Count(person) = %d", n)
		}
		if n, _ := e.m.Count(e.class("instructor")); n != 0 {
			t.Errorf("Count(instructor) = %d", n)
		}
	})
}

func TestSurrogatesUniqueAndStable(t *testing.T) {
	e := newEnv(t, Config{})
	seen := map[value.Surrogate]bool{}
	for i := 0; i < 100; i++ {
		s := e.newEntity("person")
		if seen[s] {
			t.Fatalf("surrogate %d reused", s)
		}
		seen[s] = true
	}
	// Distinct hierarchies may reuse numbers; entities of one hierarchy may
	// not.
	c := e.newEntity("course")
	_ = c
}

func TestDVASetGet(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		s := e.newEntity("student")
		e.set(s, "student", "name", value.NewString("John Doe"))
		e.set(s, "student", "student-nbr", value.NewInt(1729))
		if got := e.get(s, "student", "name"); got.Str() != "John Doe" {
			t.Errorf("name = %v", got)
		}
		// Inherited attribute stored in the person section.
		if got := e.get(s, "person", "name"); got.Str() != "John Doe" {
			t.Errorf("name via person = %v", got)
		}
		if got := e.get(s, "student", "student-nbr"); got.Int() != 1729 {
			t.Errorf("student-nbr = %v", got)
		}
		// Unset attr is NULL.
		if got := e.get(s, "student", "birthdate"); !got.IsNull() {
			t.Errorf("birthdate = %v", got)
		}
		// Overwrite with NULL.
		e.set(s, "student", "name", value.Null)
		if got := e.get(s, "student", "name"); !got.IsNull() {
			t.Errorf("name after null = %v", got)
		}
	})
}

func TestDVAOnMissingRoleFails(t *testing.T) {
	e := newEnv(t, Config{})
	s := e.newEntity("student")
	err := e.m.SetSingle(s, e.attr("instructor", "salary"), value.NewNumber(100))
	if err == nil {
		t.Error("set salary on non-instructor succeeded")
	}
}

func TestUniqueEnforcement(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		a := e.newEntity("person")
		b := e.newEntity("person")
		e.set(a, "person", "soc-sec-no", value.NewInt(111223333))
		err := e.m.SetSingle(b, e.attr("person", "soc-sec-no"), value.NewInt(111223333))
		var ue *UniqueError
		if !errors.As(err, &ue) {
			t.Fatalf("duplicate ssn error = %v", err)
		}
		// Same value on the same entity is fine (idempotent).
		e.set(a, "person", "soc-sec-no", value.NewInt(111223333))
		// Changing frees the old value.
		e.set(a, "person", "soc-sec-no", value.NewInt(999887777))
		e.set(b, "person", "soc-sec-no", value.NewInt(111223333))
		// Lookup finds by value.
		got, found, err := e.m.LookupUnique(e.attr("person", "soc-sec-no"), value.NewInt(999887777))
		if err != nil || !found || got != a {
			t.Errorf("LookupUnique = %v %v %v", got, found, err)
		}
	})
}

func TestRoleExtension(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		p := e.newEntity("person")
		e.set(p, "person", "name", value.NewString("John Doe"))
		added, err := e.m.ExtendRole(p, e.class("instructor"))
		if err != nil || len(added) != 1 {
			t.Fatalf("ExtendRole = %v, %v", added, err)
		}
		e.set(p, "instructor", "employee-nbr", value.NewInt(1729))
		// The person data is still there.
		if got := e.get(p, "person", "name"); got.Str() != "John Doe" {
			t.Errorf("name after extension = %v", got)
		}
		// Extending to TA adds student too.
		added, err = e.m.ExtendRole(p, e.class("teaching-assistant"))
		if err != nil || len(added) != 2 {
			t.Fatalf("ExtendRole(TA) = %v, %v", added, err)
		}
		ok, _ := e.m.HasRole(p, e.class("student"))
		if !ok {
			t.Error("TA extension did not add student role")
		}
		if n, _ := e.m.Count(e.class("teaching-assistant")); n != 1 {
			t.Errorf("Count(TA) = %d", n)
		}
	})
}

func TestSubroleValues(t *testing.T) {
	e := newEnv(t, Config{})
	p := e.newEntity("student")
	e.m.ExtendRole(p, e.class("instructor"))
	prof, err := e.m.Subrole(p, e.attr("person", "profession"))
	if err != nil || len(prof) != 2 {
		t.Fatalf("profession = %v, %v", prof, err)
	}
	if prof[0].Str() != "Student" || prof[1].Str() != "Instructor" {
		t.Errorf("profession labels = %v", prof)
	}
	status, err := e.m.Subrole(p, e.attr("student", "instructor-status"))
	if err != nil || len(status) != 0 {
		t.Errorf("instructor-status = %v, %v (not a TA)", status, err)
	}
}

func TestEVAOneToOneSpouse(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		spouse := e.attr("person", "spouse")
		a := e.newEntity("person")
		b := e.newEntity("person")
		c := e.newEntity("person")
		if err := e.m.IncludeEVA(a, spouse, b); err != nil {
			t.Fatal(err)
		}
		// Symmetric.
		got, _ := e.m.GetEVA(b, spouse)
		if len(got) != 1 || got[0] != a {
			t.Fatalf("spouse of b = %v", got)
		}
		// Remarrying displaces both old partners.
		if err := e.m.IncludeEVA(a, spouse, c); err != nil {
			t.Fatal(err)
		}
		if got, _ := e.m.GetEVA(b, spouse); len(got) != 0 {
			t.Errorf("b still married: %v", got)
		}
		if got, _ := e.m.GetEVA(c, spouse); len(got) != 1 || got[0] != a {
			t.Errorf("spouse of c = %v", got)
		}
		if n, _ := e.m.RelCount(spouse); n != 1 {
			t.Errorf("RelCount(spouse) = %d", n)
		}
	})
}

func TestEVAManyToOneAdvisor(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		advisor := e.attr("student", "advisor")
		advisees := e.attr("instructor", "advisees")
		s1 := e.newEntity("student")
		s2 := e.newEntity("student")
		i1 := e.newEntity("instructor")
		i2 := e.newEntity("instructor")
		if err := e.m.IncludeEVA(s1, advisor, i1); err != nil {
			t.Fatal(err)
		}
		if err := e.m.IncludeEVA(s2, advisor, i1); err != nil {
			t.Fatal(err)
		}
		got, _ := e.m.GetEVA(i1, advisees)
		if len(got) != 2 {
			t.Fatalf("advisees = %v", got)
		}
		// Reassigning s1 removes it from i1's advisees (single-valued side
		// replaced; inverse synchronized).
		if err := e.m.IncludeEVA(s1, advisor, i2); err != nil {
			t.Fatal(err)
		}
		got, _ = e.m.GetEVA(i1, advisees)
		if len(got) != 1 || got[0] != s2 {
			t.Errorf("advisees of i1 after reassign = %v", got)
		}
		got, _ = e.m.GetEVA(s1, advisor)
		if len(got) != 1 || got[0] != i2 {
			t.Errorf("advisor of s1 = %v", got)
		}
		if n, _ := e.m.RelCount(advisor); n != 2 {
			t.Errorf("RelCount = %d", n)
		}
	})
}

func TestEVAMaxCardinality(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		advisor := e.attr("student", "advisor")
		i := e.newEntity("instructor")
		// advisees has MAX 10.
		for k := 0; k < 10; k++ {
			s := e.newEntity("student")
			if err := e.m.IncludeEVA(s, advisor, i); err != nil {
				t.Fatalf("advisee %d: %v", k, err)
			}
		}
		s := e.newEntity("student")
		err := e.m.IncludeEVA(s, advisor, i)
		var ce *CardinalityError
		if !errors.As(err, &ce) {
			t.Fatalf("11th advisee error = %v", err)
		}
	})
}

func TestEVAManyToManyEnrollment(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		enrolled := e.attr("student", "courses-enrolled")
		students := e.attr("course", "students-enrolled")
		s1 := e.newEntity("student")
		s2 := e.newEntity("student")
		c1 := e.newEntity("course")
		c2 := e.newEntity("course")
		for _, pair := range [][2]value.Surrogate{{s1, c1}, {s1, c2}, {s2, c1}} {
			if err := e.m.IncludeEVA(pair[0], enrolled, pair[1]); err != nil {
				t.Fatal(err)
			}
		}
		// Distinct: duplicate include is a no-op.
		if err := e.m.IncludeEVA(s1, enrolled, c1); err != nil {
			t.Fatal(err)
		}
		if got, _ := e.m.GetEVA(s1, enrolled); len(got) != 2 {
			t.Errorf("courses of s1 = %v", got)
		}
		if got, _ := e.m.GetEVA(c1, students); len(got) != 2 {
			t.Errorf("students of c1 = %v", got)
		}
		if n, _ := e.m.RelCount(enrolled); n != 3 {
			t.Errorf("RelCount = %d", n)
		}
		// Exclude one side; both views update.
		if err := e.m.ExcludeEVA(c1, students, s1); err != nil {
			t.Fatal(err)
		}
		if got, _ := e.m.GetEVA(s1, enrolled); len(got) != 1 || got[0] != c2 {
			t.Errorf("courses of s1 after exclude = %v", got)
		}
	})
}

func TestEVARoleIntegrity(t *testing.T) {
	e := newEnv(t, Config{})
	advisor := e.attr("student", "advisor")
	p := e.newEntity("person") // not a student
	i := e.newEntity("instructor")
	if err := e.m.IncludeEVA(p, advisor, i); err == nil {
		t.Error("advisor on a non-student succeeded")
	}
	s := e.newEntity("student")
	p2 := e.newEntity("person") // not an instructor
	if err := e.m.IncludeEVA(s, advisor, p2); err == nil {
		t.Error("advisor pointing at a non-instructor succeeded")
	}
}

func TestReflexiveEVAPrerequisites(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		prereq := e.attr("course", "prerequisites")
		prereqOf := e.attr("course", "prerequisite-of")
		algebra := e.newEntity("course")
		calc := e.newEntity("course")
		quantum := e.newEntity("course")
		e.m.IncludeEVA(calc, prereq, algebra)
		e.m.IncludeEVA(quantum, prereq, calc)
		got, _ := e.m.GetEVA(algebra, prereqOf)
		if len(got) != 1 || got[0] != calc {
			t.Errorf("prerequisite-of algebra = %v", got)
		}
		got, _ = e.m.GetEVA(quantum, prereq)
		if len(got) != 1 || got[0] != calc {
			t.Errorf("prerequisites of quantum = %v", got)
		}
	})
}

func TestMVDVAEmbeddedAndSeparate(t *testing.T) {
	// teaching-load is single-valued; build a dedicated schema with both
	// kinds of MV DVA.
	ddl := `
Class Box (
  tags: string[10] mv;
  slots: integer mv (max 4, distinct) );`
	sch, err := parser.ParseSchema(ddl)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Build(sch)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := dmsii.OpenMemory(dmsii.Options{})
	defer store.Close()
	m, err := New(store, cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := store.Begin()
	defer tx.Commit()

	box := cat.Class("box")
	tags := catalog.ResolveAttr(box, "tags")   // unbounded → separate
	slots := catalog.ResolveAttr(box, "slots") // bounded → embedded
	if !m.MVSeparate(tags) || m.MVSeparate(slots) {
		t.Fatalf("default MV mapping wrong: tags separate=%v slots separate=%v", m.MVSeparate(tags), m.MVSeparate(slots))
	}

	b, _ := m.NewEntity(box)
	// Multiset semantics for tags: duplicates kept.
	for _, s := range []string{"red", "blue", "red"} {
		if err := m.IncludeMV(b, tags, value.NewString(s)); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := m.GetMV(b, tags)
	if len(got) != 3 {
		t.Errorf("tags = %v", got)
	}
	// Exclude removes one occurrence.
	m.ExcludeMV(b, tags, value.NewString("red"))
	got, _ = m.GetMV(b, tags)
	if len(got) != 2 {
		t.Errorf("tags after exclude = %v", got)
	}

	// Distinct set semantics for slots; max 4.
	for _, n := range []int64{1, 2, 2, 3} {
		if err := m.IncludeMV(b, slots, value.NewInt(n)); err != nil {
			t.Fatal(err)
		}
	}
	got, _ = m.GetMV(b, slots)
	if len(got) != 3 {
		t.Errorf("slots = %v", got)
	}
	m.IncludeMV(b, slots, value.NewInt(4))
	err = m.IncludeMV(b, slots, value.NewInt(5))
	var ce *CardinalityError
	if !errors.As(err, &ce) {
		t.Errorf("5th slot error = %v", err)
	}
	// SetMV validates too.
	if err := m.SetMV(b, slots, []value.Value{value.NewInt(1), value.NewInt(1)}); err == nil {
		t.Error("duplicate SetMV on distinct attr succeeded")
	}
}

func TestDeleteSubclassRoleKeepsSuperclass(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		s := e.newEntity("student")
		e.set(s, "person", "name", value.NewString("Jane"))
		e.set(s, "student", "student-nbr", value.NewInt(1500))
		advisor := e.attr("student", "advisor")
		i := e.newEntity("instructor")
		e.m.IncludeEVA(s, advisor, i)

		if err := e.m.DeleteRoles(s, e.class("student")); err != nil {
			t.Fatal(err)
		}
		// §4.8: continues to exist as a person.
		ok, _ := e.m.HasRole(s, e.class("person"))
		if !ok {
			t.Fatal("person role lost")
		}
		ok, _ = e.m.HasRole(s, e.class("student"))
		if ok {
			t.Fatal("student role survives")
		}
		if got := e.get(s, "person", "name"); got.Str() != "Jane" {
			t.Errorf("name after role delete = %v", got)
		}
		// The advisor EVA instance is gone and the inverse synchronized.
		if got, _ := e.m.GetEVA(i, e.attr("instructor", "advisees")); len(got) != 0 {
			t.Errorf("advisees after role delete = %v", got)
		}
		if n, _ := e.m.Count(e.class("student")); n != 0 {
			t.Errorf("Count(student) = %d", n)
		}
		if n, _ := e.m.Count(e.class("person")); n != 2 {
			t.Errorf("Count(person) = %d", n)
		}
	})
}

func TestDeletePersonCascadesToAllRoles(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		ta := e.newEntity("teaching-assistant")
		e.set(ta, "person", "soc-sec-no", value.NewInt(123456789))
		spouse := e.attr("person", "spouse")
		partner := e.newEntity("person")
		e.m.IncludeEVA(ta, spouse, partner)

		if err := e.m.DeleteRoles(ta, e.class("person")); err != nil {
			t.Fatal(err)
		}
		for _, c := range []string{"person", "student", "instructor", "teaching-assistant"} {
			if ok, _ := e.m.HasRole(ta, e.class(c)); ok {
				t.Errorf("role %s survives full delete", c)
			}
			if n, _ := e.m.Count(e.class(c)); n != 1 && c == "person" || n != 0 && c != "person" {
				t.Errorf("Count(%s) = %d", c, n)
			}
		}
		// Partner is single again; referential integrity kept.
		if got, _ := e.m.GetEVA(partner, spouse); len(got) != 0 {
			t.Errorf("dangling spouse: %v", got)
		}
		// The unique index entry is gone: the value is reusable.
		p := e.newEntity("person")
		if err := e.m.SetSingle(p, e.attr("person", "soc-sec-no"), value.NewInt(123456789)); err != nil {
			t.Errorf("ssn not released: %v", err)
		}
	})
}

func TestScans(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, e *env) {
		for i := 0; i < 5; i++ {
			e.newEntity("person")
		}
		for i := 0; i < 3; i++ {
			e.newEntity("student")
		}
		for i := 0; i < 2; i++ {
			e.newEntity("teaching-assistant")
		}
		counts := map[string]int{"person": 10, "student": 5, "instructor": 2, "teaching-assistant": 2}
		for class, want := range counts {
			ss, err := e.m.Surrogates(e.class(class))
			if err != nil {
				t.Fatal(err)
			}
			if len(ss) != want {
				t.Errorf("Scan(%s) found %d, want %d", class, len(ss), want)
			}
			// Ascending surrogate order.
			for i := 1; i < len(ss); i++ {
				if ss[i-1] >= ss[i] {
					t.Errorf("Scan(%s) out of order", class)
				}
			}
			if n, _ := e.m.Count(e.class(class)); int(n) != want {
				t.Errorf("Count(%s) = %d, want %d", class, n, want)
			}
		}
	})
}

func TestIndexScanRange(t *testing.T) {
	e := newEnv(t, Config{Indexes: []string{"course.credits"}})
	credits := e.attr("course", "credits")
	if !e.m.HasIndex(credits) {
		t.Fatal("credits index not registered")
	}
	var byCredits []value.Surrogate
	for i := 1; i <= 9; i++ {
		c := e.newEntity("course")
		e.set(c, "course", "credits", value.NewInt(int64(i)))
		byCredits = append(byCredits, c)
	}
	got, err := e.m.IndexScan(credits,
		Bound{Value: value.NewInt(3), Inclusive: true, Set: true},
		Bound{Value: value.NewInt(6), Inclusive: false, Set: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("IndexScan [3,6) = %v", got)
	}
	for i, s := range got {
		if s != byCredits[2+i] {
			t.Errorf("IndexScan order wrong: %v", got)
		}
	}
	// Unbounded scan returns all in value order.
	got, _ = e.m.IndexScan(credits, Bound{}, Bound{})
	if len(got) != 9 {
		t.Errorf("unbounded IndexScan = %d entries", len(got))
	}
}

func TestPersistenceOfEntities(t *testing.T) {
	// Entities written through the mapper survive a store reopen.
	sch, _ := parser.ParseSchema(university.DDL)
	cat, _ := catalog.Build(sch)
	dir := t.TempDir()
	store, err := dmsii.OpenFile(dir+"/u.sim", dmsii.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(store, cat, Config{})
	tx, _ := store.Begin()
	s, _ := m.NewEntity(cat.Class("student"))
	name := catalog.ResolveAttr(cat.Class("student"), "name")
	if err := m.SetSingle(s, name, value.NewString("persists")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	store.Close()

	store2, err := dmsii.OpenFile(dir+"/u.sim", dmsii.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	m2, _ := New(store2, cat, Config{})
	v, err := m2.GetSingle(s, name)
	if err != nil || v.Str() != "persists" {
		t.Fatalf("after reopen: %v, %v", v, err)
	}
	// Surrogate allocation continues, not restarts.
	tx2, _ := store2.Begin()
	defer tx2.Commit()
	s2, _ := m2.NewEntity(cat.Class("student"))
	if s2 <= s {
		t.Errorf("surrogate restarted: %d after %d", s2, s)
	}
}

func TestRollbackResetsCaches(t *testing.T) {
	e := newEnv(t, Config{})
	e.newEntity("person")
	e.tx.Commit()

	tx, _ := e.s.Begin()
	e.newEntity("person")
	if n, _ := e.m.Count(e.class("person")); n != 2 {
		t.Fatalf("Count before rollback = %d", n)
	}
	tx.Rollback()
	e.m.ResetCaches()
	if n, _ := e.m.Count(e.class("person")); n != 1 {
		t.Errorf("Count after rollback = %d, want 1", n)
	}
	// New transaction allocates without clashing.
	tx2, _ := e.s.Begin()
	defer tx2.Commit()
	s := e.newEntity("person")
	e.set(s, "person", "name", value.NewString("ok"))
}

func TestManyEntitiesStress(t *testing.T) {
	e := newEnv(t, Config{})
	enrolled := e.attr("student", "courses-enrolled")
	var students, courses []value.Surrogate
	for i := 0; i < 200; i++ {
		s := e.newEntity("student")
		e.set(s, "person", "soc-sec-no", value.NewInt(int64(100000000+i)))
		students = append(students, s)
	}
	for i := 0; i < 50; i++ {
		c := e.newEntity("course")
		e.set(c, "course", "course-no", value.NewInt(int64(i+1)))
		courses = append(courses, c)
	}
	for i, s := range students {
		for j := 0; j < 4; j++ {
			if err := e.m.IncludeEVA(s, enrolled, courses[(i+j*7)%len(courses)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n, _ := e.m.RelCount(enrolled); n != 800 {
		t.Errorf("RelCount = %d, want 800", n)
	}
	total := 0
	for _, c := range courses {
		got, err := e.m.GetEVA(c, e.attr("course", "students-enrolled"))
		if err != nil {
			t.Fatal(err)
		}
		total += len(got)
	}
	if total != 800 {
		t.Errorf("sum of course rosters = %d, want 800", total)
	}
	// Deleting every student clears all instances.
	for _, s := range students {
		if err := e.m.DeleteRoles(s, e.class("person")); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := e.m.RelCount(enrolled); n != 0 {
		t.Errorf("RelCount after deletes = %d", n)
	}
}

func TestFKStrategyIndexMaintained(t *testing.T) {
	// advisor forced to FK: the student record holds the FK; traversal from
	// the instructor side uses the fki index.
	e := newEnv(t, Config{EVA: map[string]EVAStrategy{"student.advisor": EVAForeignKey}})
	advisor := e.attr("student", "advisor")
	advisees := e.attr("instructor", "advisees")
	i := e.newEntity("instructor")
	var ss []value.Surrogate
	for k := 0; k < 5; k++ {
		s := e.newEntity("student")
		if err := e.m.IncludeEVA(s, advisor, i); err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	got, err := e.m.GetEVA(i, advisees)
	if err != nil || len(got) != 5 {
		t.Fatalf("advisees via fki = %v, %v", got, err)
	}
	// Excluding from the MV side updates the FK holder.
	if err := e.m.ExcludeEVA(i, advisees, ss[0]); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.m.GetEVA(ss[0], advisor); len(got) != 0 {
		t.Errorf("fk not cleared: %v", got)
	}
	if got, _ := e.m.GetEVA(i, advisees); len(got) != 4 {
		t.Errorf("advisees after exclude = %v", got)
	}
}

func TestEVAManyToManyFKRejected(t *testing.T) {
	sch, _ := parser.ParseSchema(university.DDL)
	cat, _ := catalog.Build(sch)
	store, _ := dmsii.OpenMemory(dmsii.Options{})
	defer store.Close()
	_, err := New(store, cat, Config{EVA: map[string]EVAStrategy{"student.courses-enrolled": EVAForeignKey}})
	if err == nil {
		t.Error("FK mapping of a many:many EVA accepted")
	}
}

func TestStatsAcrossManyClasses(t *testing.T) {
	e := newEnv(t, Config{})
	for i := 0; i < 7; i++ {
		e.newEntity("department")
	}
	if n, _ := e.m.Count(e.class("department")); n != 7 {
		t.Errorf("Count(department) = %d", n)
	}
}

func BenchmarkIncludeEVACES(b *testing.B) {
	benchIncludeEVA(b, Config{})
}

func BenchmarkIncludeEVAFK(b *testing.B) {
	benchIncludeEVA(b, Config{EVA: map[string]EVAStrategy{"student.advisor": EVAForeignKey}})
}

func benchIncludeEVA(b *testing.B, cfg Config) {
	sch, _ := parser.ParseSchema(university.DDL)
	cat, _ := catalog.Build(sch)
	store, _ := dmsii.OpenMemory(dmsii.Options{})
	defer store.Close()
	m, _ := New(store, cat, cfg)
	tx, _ := store.Begin()
	defer tx.Commit()
	advisor := catalog.ResolveAttr(cat.Class("student"), "advisor")
	var instructors []value.Surrogate
	for i := 0; i < 100; i++ {
		in, _ := m.NewEntity(cat.Class("instructor"))
		instructors = append(instructors, in)
	}
	students := make([]value.Surrogate, b.N)
	for i := range students {
		students[i], _ = m.NewEntity(cat.Class("student"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.IncludeEVA(students[i], advisor, instructors[i%100]); err != nil {
			if _, ok := err.(*CardinalityError); ok {
				continue
			}
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint()
}
