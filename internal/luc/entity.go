package luc

import (
	"fmt"

	"sim/internal/catalog"
	"sim/internal/value"
)

// ErrNotFound reports an operation on a surrogate with no record.
var ErrNotFound = fmt.Errorf("luc: entity not found")

// UniqueError reports a UNIQUE option violation.
type UniqueError struct {
	Attr *catalog.Attribute
	Val  value.Value
}

func (e *UniqueError) Error() string {
	return fmt.Sprintf("unique attribute %s already has an entity with value %s", e.Attr, e.Val)
}

// CardinalityError reports a MAX option violation.
type CardinalityError struct {
	Attr *catalog.Attribute
	Max  int
}

func (e *CardinalityError) Error() string {
	return fmt.Sprintf("attribute %s cannot exceed %d values", e.Attr, e.Max)
}

// NewEntity creates an entity with roles cl plus all its ancestors and
// returns its fresh surrogate (§3.1: surrogates are system-maintained,
// unique, non-null and immutable).
func (m *Mapper) NewEntity(cl *catalog.Class) (value.Surrogate, error) {
	s, err := m.nextSurrogate(cl.Base)
	if err != nil {
		return 0, err
	}
	if err := m.touch(cl.Base, s); err != nil {
		return 0, err
	}
	r := newRecord()
	r.addRole(cl.ID)
	for _, anc := range catalog.Ancestors(cl) {
		r.addRole(anc.ID)
	}
	if err := m.storeRecord(cl.Base, s, r, nil); err != nil {
		return 0, err
	}
	for _, id := range r.roles {
		if err := m.statAdd(fmt.Sprintf("c%d", id), 1); err != nil {
			return 0, err
		}
	}
	return s, nil
}

// ExtendRole adds role cl (and any missing ancestor roles) to an existing
// entity — the INSERT ... FROM operation of §4.8. It returns the set of
// classes actually added.
func (m *Mapper) ExtendRole(s value.Surrogate, cl *catalog.Class) ([]*catalog.Class, error) {
	if err := m.touch(cl.Base, s); err != nil {
		return nil, err
	}
	r, err := m.loadRecord(cl.Base, s)
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, ErrNotFound
	}
	prev := append([]int(nil), r.roles...)
	var added []*catalog.Class
	add := func(c *catalog.Class) {
		if !r.hasRole(c.ID) {
			r.addRole(c.ID)
			added = append(added, c)
		}
	}
	add(cl)
	for _, anc := range catalog.Ancestors(cl) {
		add(anc)
	}
	if len(added) == 0 {
		return nil, nil
	}
	if err := m.storeRecord(cl.Base, s, r, prev); err != nil {
		return nil, err
	}
	for _, c := range added {
		if err := m.statAdd(fmt.Sprintf("c%d", c.ID), 1); err != nil {
			return nil, err
		}
	}
	return added, nil
}

// HasRole reports whether the entity currently holds a role in cl.
func (m *Mapper) HasRole(s value.Surrogate, cl *catalog.Class) (bool, error) {
	_, found, err := m.readSection(cl, s)
	return found, err
}

// Roles returns the classes the entity participates in, ascending id.
func (m *Mapper) Roles(base *catalog.Class, s value.Surrogate) ([]*catalog.Class, error) {
	r, err := m.readRecord(base.Base, s)
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, ErrNotFound
	}
	out := make([]*catalog.Class, 0, len(r.roles))
	for _, id := range r.roles {
		out = append(out, m.classByID(id))
	}
	return out, nil
}

// DeleteRoles removes the entity's role in cl and every descendant role,
// per §4.8: "When an entity is deleted, all its subclass roles will be
// deleted, while its superclass roles will remain unaffected." Deleting a
// base-class role removes the entity entirely. All EVA instances, index
// entries and dependent MV values of removed roles are cleaned up — the
// Mapper's structural-integrity duty (§5.1).
func (m *Mapper) DeleteRoles(s value.Surrogate, cl *catalog.Class) error {
	base := cl.Base
	if err := m.touch(base, s); err != nil {
		return err
	}
	r, err := m.loadRecord(base, s)
	if err != nil {
		return err
	}
	if r == nil {
		return ErrNotFound
	}
	if !r.hasRole(cl.ID) {
		return fmt.Errorf("luc: entity #%d has no %s role", s, cl.Name)
	}
	doomed := []*catalog.Class{cl}
	for _, d := range catalog.Descendants(cl) {
		if r.hasRole(d.ID) {
			doomed = append(doomed, d)
		}
	}
	// Clean up relationship instances and index entries first; these
	// operations rewrite partner records (possibly this entity's own, for
	// reflexive EVAs), so the record is reloaded afterwards.
	for _, d := range doomed {
		if err := m.cleanupRole(s, d); err != nil {
			return err
		}
	}
	r, err = m.loadRecord(base, s)
	if err != nil {
		return err
	}
	if r == nil {
		return fmt.Errorf("luc: entity #%d vanished during role cleanup", s)
	}
	prev := append([]int(nil), r.roles...)
	for _, d := range doomed {
		r.removeRole(d.ID)
		for _, sl := range m.slots[d] {
			delete(r.single, sl.attr.ID)
			delete(r.multi, sl.attr.ID)
		}
		if err := m.statAdd(fmt.Sprintf("c%d", d.ID), -1); err != nil {
			return err
		}
	}
	return m.storeRecord(base, s, r, prev)
}

// cleanupRole removes every stored artifact of one role: EVA instances
// (synchronizing partners), unique/secondary index entries, and separate
// MV DVA rows.
func (m *Mapper) cleanupRole(s value.Surrogate, cl *catalog.Class) error {
	for _, a := range cl.Attrs {
		switch a.Kind {
		case catalog.EVA:
			targets, err := m.GetEVA(s, a)
			if err != nil {
				return err
			}
			for _, t := range targets {
				if err := m.removeEVAInstance(a, s, t); err != nil {
					return err
				}
			}
		case catalog.DVA:
			if a.Options.MV {
				if m.mvSep[a] {
					if err := m.clearSeparateMV(s, a); err != nil {
						return err
					}
				}
				continue
			}
			if m.idx[a] {
				old, err := m.GetSingle(s, a)
				if err != nil {
					return err
				}
				if !old.IsNull() {
					if err := m.indexRemove(a, old, s); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Single-valued DVAs
// ---------------------------------------------------------------------------

// GetSingle reads a single-valued DVA. It returns NULL when the value is
// unset, when the entity lacks the owning role, and when no such entity
// exists — the uniform null treatment the DML's role conversion relies on.
func (m *Mapper) GetSingle(s value.Surrogate, a *catalog.Attribute) (value.Value, error) {
	r, found, err := m.readSection(a.Owner, s)
	if err != nil || !found {
		return value.Null, err
	}
	return r.single[a.ID], nil
}

// SetSingle writes a single-valued DVA, maintaining any index and
// enforcing UNIQUE (§3.2.1; nulls are exempt from uniqueness).
func (m *Mapper) SetSingle(s value.Surrogate, a *catalog.Attribute, v value.Value) error {
	if a.Kind != catalog.DVA || a.Options.MV {
		return fmt.Errorf("luc: SetSingle on %s (%v, mv=%v)", a, a.Kind, a.Options.MV)
	}
	base := a.Owner.Base
	if err := m.touch(base, s); err != nil {
		return err
	}
	r, err := m.loadRecord(base, s)
	if err != nil {
		return err
	}
	if r == nil {
		return ErrNotFound
	}
	if !r.hasRole(a.Owner.ID) {
		return fmt.Errorf("luc: entity #%d has no %s role for attribute %s", s, a.Owner.Name, a.Name)
	}
	old := r.single[a.ID]
	if old.Equal(v) {
		return nil
	}
	if m.idx[a] {
		if a.Options.Unique && !v.IsNull() {
			other, found, err := m.LookupUnique(a, v)
			if err != nil {
				return err
			}
			if found && other != s {
				return &UniqueError{Attr: a, Val: v}
			}
		}
		if !old.IsNull() {
			if err := m.indexRemove(a, old, s); err != nil {
				return err
			}
		}
		if !v.IsNull() {
			if err := m.indexInsert(a, v, s); err != nil {
				return err
			}
		}
	}
	if v.IsNull() {
		delete(r.single, a.ID)
	} else {
		r.single[a.ID] = v
	}
	return m.storeRecord(base, s, r, r.roles)
}

// ---------------------------------------------------------------------------
// Multi-valued DVAs
// ---------------------------------------------------------------------------

// GetMV reads the multiset of values of an MV DVA (empty for entities
// without the owning role).
func (m *Mapper) GetMV(s value.Surrogate, a *catalog.Attribute) ([]value.Value, error) {
	if m.mvSep[a] {
		return m.readSeparateMV(s, a)
	}
	r, found, err := m.readSection(a.Owner, s)
	if err != nil || !found {
		return nil, err
	}
	return append([]value.Value(nil), r.multi[a.ID]...), nil
}

// SetMV replaces the whole multiset.
func (m *Mapper) SetMV(s value.Surrogate, a *catalog.Attribute, vals []value.Value) error {
	if err := m.checkMVConstraints(a, vals); err != nil {
		return err
	}
	if err := m.touch(a.Owner.Base, s); err != nil {
		return err
	}
	if m.mvSep[a] {
		if err := m.clearSeparateMV(s, a); err != nil {
			return err
		}
		for _, v := range vals {
			if err := m.appendSeparateMV(s, a, v); err != nil {
				return err
			}
		}
		return nil
	}
	base := a.Owner.Base
	r, err := m.loadRecord(base, s)
	if err != nil {
		return err
	}
	if r == nil {
		return ErrNotFound
	}
	if len(vals) == 0 {
		delete(r.multi, a.ID)
	} else {
		r.multi[a.ID] = append([]value.Value(nil), vals...)
	}
	return m.storeRecord(base, s, r, r.roles)
}

// IncludeMV adds one value to an MV DVA, enforcing DISTINCT and MAX.
func (m *Mapper) IncludeMV(s value.Surrogate, a *catalog.Attribute, v value.Value) error {
	if err := m.touch(a.Owner.Base, s); err != nil {
		return err
	}
	cur, err := m.GetMV(s, a)
	if err != nil {
		return err
	}
	if a.Options.Distinct {
		for _, x := range cur {
			if x.Equal(v) {
				return nil // set semantics: silently idempotent
			}
		}
	}
	if a.Options.Max > 0 && len(cur) >= a.Options.Max {
		return &CardinalityError{Attr: a, Max: a.Options.Max}
	}
	if m.mvSep[a] {
		return m.appendSeparateMV(s, a, v)
	}
	return m.SetMV(s, a, append(cur, v))
}

// ExcludeMV removes one occurrence of v (all occurrences when the
// attribute is DISTINCT, where at most one exists).
func (m *Mapper) ExcludeMV(s value.Surrogate, a *catalog.Attribute, v value.Value) error {
	cur, err := m.GetMV(s, a)
	if err != nil {
		return err
	}
	out := cur[:0]
	removed := false
	for _, x := range cur {
		if !removed && x.Equal(v) {
			removed = true
			continue
		}
		out = append(out, x)
	}
	if !removed {
		return nil
	}
	return m.SetMV(s, a, out)
}

func (m *Mapper) checkMVConstraints(a *catalog.Attribute, vals []value.Value) error {
	if a.Options.Max > 0 && len(vals) > a.Options.Max {
		return &CardinalityError{Attr: a, Max: a.Options.Max}
	}
	if a.Options.Distinct {
		for i := range vals {
			for j := i + 1; j < len(vals); j++ {
				if vals[i].Equal(vals[j]) {
					return fmt.Errorf("distinct attribute %s given duplicate value %s", a, vals[i])
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Subroles
// ---------------------------------------------------------------------------

// Subrole reads a system-maintained subrole attribute (§3.2): the symbolic
// names of the enumerated subclasses the entity currently participates in.
func (m *Mapper) Subrole(s value.Surrogate, a *catalog.Attribute) ([]value.Value, error) {
	if a.Kind != catalog.Subrole {
		return nil, fmt.Errorf("luc: %s is not a subrole attribute", a)
	}
	var out []value.Value
	if m.hier[a.Owner.Base] == HierarchySingleRecord {
		r, err := m.readRecord(a.Owner.Base, s)
		if err != nil {
			return nil, err
		}
		if r == nil {
			return nil, ErrNotFound
		}
		for ord, sub := range a.SubroleOf {
			if r.hasRole(sub.ID) {
				out = append(out, value.NewSymbolic(sub.Name, ord))
			}
		}
		return out, nil
	}
	for ord, sub := range a.SubroleOf {
		ok, err := m.HasRole(s, sub)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, value.NewSymbolic(sub.Name, ord))
		}
	}
	return out, nil
}
