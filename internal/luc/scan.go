package luc

import (
	"encoding/binary"
	"fmt"

	"sim/internal/btree"
	"sim/internal/catalog"
	"sim/internal/value"
)

// EntityCursor iterates the surrogates of every entity holding a role in
// one class, in ascending surrogate order — the LUC cursor of §5.1
// ("a cursor can be opened on a LUC … it delivers one record of the LUC at
// a time").
type EntityCursor struct {
	c      *btree.Cursor
	m      *Mapper
	filter int // class id to require in the role list; -1 = none
	err    error
}

// Scan opens a cursor over the entities of cl.
func (m *Mapper) Scan(cl *catalog.Class) (*EntityCursor, error) {
	if m.hier[cl.Base] == HierarchySplit {
		st, err := m.classStructure(cl)
		if err != nil {
			return nil, err
		}
		c, err := st.First()
		if err != nil {
			return nil, err
		}
		return &EntityCursor{c: c, m: m, filter: -1}, nil
	}
	st, err := m.hierStructure(cl.Base)
	if err != nil {
		return nil, err
	}
	c, err := st.First()
	if err != nil {
		return nil, err
	}
	ec := &EntityCursor{c: c, m: m, filter: cl.ID}
	if cl.IsBase() {
		ec.filter = -1 // every record in the hierarchy has the base role
	}
	ec.skipNonMembers()
	return ec, nil
}

// Valid reports whether the cursor is on an entity.
func (e *EntityCursor) Valid() bool { return e.err == nil && e.c.Valid() }

// Err returns the first iteration error.
func (e *EntityCursor) Err() error {
	if e.err != nil {
		return e.err
	}
	return e.c.Err()
}

// Surrogate returns the current entity.
func (e *EntityCursor) Surrogate() value.Surrogate {
	return value.SurrogateFromKey(e.c.Key())
}

// Next advances to the next entity of the scanned class.
func (e *EntityCursor) Next() {
	e.c.Next()
	e.skipNonMembers()
}

func (e *EntityCursor) skipNonMembers() {
	if e.filter < 0 {
		return
	}
	for e.c.Valid() {
		roles, err := decodeRoles(e.c.Value())
		if err != nil {
			e.err = err
			return
		}
		for _, id := range roles {
			if id == e.filter {
				return
			}
		}
		e.c.Next()
	}
}

// decodeRoles reads just the role list from an encoded hierarchy record.
func decodeRoles(b []byte) ([]int, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, fmt.Errorf("luc: corrupt record header")
	}
	b = b[used:]
	roles := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		id, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, fmt.Errorf("luc: corrupt role list")
		}
		b = b[used:]
		roles = append(roles, int(id))
	}
	return roles, nil
}

// Surrogates collects every entity of cl (a convenience for small scans).
func (m *Mapper) Surrogates(cl *catalog.Class) ([]value.Surrogate, error) {
	c, err := m.Scan(cl)
	if err != nil {
		return nil, err
	}
	var out []value.Surrogate
	for ; c.Valid(); c.Next() {
		out = append(out, c.Surrogate())
	}
	return out, c.Err()
}
