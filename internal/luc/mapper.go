// Package luc implements SIM's LUC Mapper (§5.1): the module that maps the
// high-level objects of the semantic model — classes, generalization
// hierarchies, multi-valued DVAs and EVAs — onto record-based storage
// units, and that owns structural integrity ("the Mapper assures the
// structural integrity of data reflected in LUC interconnections").
//
// The default physical mapping follows §5.2:
//
//   - a generalization hierarchy maps to one storage unit with
//     variable-format records keyed by surrogate (the record's format
//     varies with the entity's role set);
//   - 1:1 EVAs map to foreign keys held in both partner records;
//   - 1:many EVAs and many:many EVAs without DISTINCT map into the shared
//     Common EVA Structure of <surrogate1, relationship-id, surrogate2>
//     rows; many:many DISTINCT EVAs get a private structure of the same
//     shape;
//   - multi-valued DVAs with MAX embed as arrays in the owner record;
//     unbounded ones map to a separate dependent storage unit.
//
// Every default can be overridden per attribute or per hierarchy through
// Config, which the benchmark harness uses for the paper's §5.2 mapping
// ablations.
package luc

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"sim/internal/btree"
	"sim/internal/catalog"
	"sim/internal/dmsii"
	"sim/internal/obs"
	"sim/internal/value"
)

// HierarchyStrategy selects how a generalization hierarchy maps to storage.
type HierarchyStrategy int

// Hierarchy strategies.
const (
	// HierarchySingleRecord stores one variable-format record per entity
	// holding the sections of every role (§5.2's default for trees).
	HierarchySingleRecord HierarchyStrategy = iota
	// HierarchySplit stores one storage unit per class with records joined
	// by 1:1 subclass links (same surrogate key), §5.2's mapping for
	// multi-inheritance subclasses, applied to the whole hierarchy.
	HierarchySplit
)

// EVAStrategy selects how an EVA pair maps to storage.
type EVAStrategy int

// EVA strategies.
const (
	// EVADefault applies §5.2's rules: 1:1 → foreign keys; many:many with
	// DISTINCT → private structure; everything else → the Common EVA
	// Structure.
	EVADefault EVAStrategy = iota
	// EVACommon forces the Common EVA Structure.
	EVACommon
	// EVAForeignKey stores the relationship as a foreign key in the
	// single-valued side's record plus the "additional index structure"
	// §5.2 notes a foreign-key mapping of a 1:many EVA needs.
	EVAForeignKey
	// EVAPrivate forces a private <surr1, surr2> structure.
	EVAPrivate
)

// MVDVAStrategy selects how a multi-valued DVA maps to storage.
type MVDVAStrategy int

// Multi-valued DVA strategies.
const (
	// MVDefault embeds values with a MAX bound in the owner record and
	// maps unbounded ones to a separate storage unit (§5.2).
	MVDefault MVDVAStrategy = iota
	// MVEmbedded forces in-record arrays.
	MVEmbedded
	// MVSeparate forces a separate dependent storage unit.
	MVSeparate
)

// Config overrides default physical mappings. Keys are lower-case: base
// class names for Hierarchy, "class.attr" for the attribute maps.
type Config struct {
	Hierarchy map[string]HierarchyStrategy
	EVA       map[string]EVAStrategy
	MVDVA     map[string]MVDVAStrategy
	// Indexes lists "class.attr" DVAs to maintain secondary indexes on
	// (UNIQUE attributes always have one).
	Indexes []string
}

func attrKey(a *catalog.Attribute) string {
	return strings.ToLower(a.Owner.Name + "." + a.Name)
}

// resolved physical mapping for one EVA pair.
type evaMapping int

const (
	evaFK evaMapping = iota
	evaCES
	evaOwn
)

// Mapper is the LUC Mapper instance for one store + catalog. A Mapper is
// either the live instance created by New — reading the store's current
// state — or a view derived from it by View/WithOnWrite: a shallow clone
// sharing the mapping decisions (schema-stable) and the record cache, but
// pinned to one commit-stamp snapshot (View) or carrying a write hook
// (WithOnWrite). Views are how concurrent queries each read a consistent
// state while writers commit.
type Mapper struct {
	store *dmsii.Store
	cat   *catalog.Catalog

	// snap, when non-nil, pins every read this mapper performs to one
	// commit stamp: structure access resolves through the snapshot's
	// version chains and the record cache matches on the snapshot stamp.
	snap *dmsii.Snap

	// onWrite, when non-nil, runs before any mutation touching an entity
	// (base class + surrogate), once per mutator entry — the database
	// layer's per-entity conflict-latch backstop.
	onWrite func(base *catalog.Class, s value.Surrogate) error

	hier  map[*catalog.Class]HierarchyStrategy // by base class
	evas  map[*catalog.Attribute]evaMapping    // by canonical attribute
	mvSep map[*catalog.Attribute]bool          // separate-unit MV DVAs
	idx   map[*catalog.Attribute]bool          // secondary-indexed DVAs

	// slots caches, per class, the immediate attributes stored in that
	// class's record section, in declaration order.
	slots map[*catalog.Class][]slot

	// surrNext is touched only on the write path (the database layer holds
	// an exclusive lock there), so it needs no internal locking. Shared by
	// reference across views.
	surrNext map[int]value.Surrogate // per base class id

	// stat caches entity/instance counts. The live mapper and its write
	// views share one cache (kept current by statAdd); snapshot views get
	// a private cache so their counts stay snapshot-consistent and never
	// leak uncommitted or future values into the live cache.
	stat *statCache

	// rc is the decoded-record read cache, shared across all views and
	// stamped: an entry is valid only for readers at exactly its stamp.
	// Cached *records are immutable once published: readers never mutate
	// them and mutators work on fresh loadRecord copies.
	rc *recCache

	// probes recycles seek cursors (and their key scratch) for the hot
	// read probes — EVA partner lookups in particular fire once per
	// binding, so a fresh cursor per call would dominate allocations.
	// Behind a pointer so views share one pool.
	probes *sync.Pool // *probe
}

// statCache holds lazily populated entity/instance counts. statMu guards
// the map: the optimizer populates it on the read path, so concurrent
// queries contend here.
type statCache struct {
	mu sync.RWMutex
	m  map[string]int64
}

// recCache is the decoded-record cache plus its traffic counters,
// sharded by surrogate so concurrent readers rarely contend on one lock.
type recCache struct {
	shards [rcShards]rcShard

	// hits/misses count record-cache traffic for CacheStats and the obs
	// registry; atomics so stats never take the shard locks.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// probe is one recyclable point-lookup kit: a cursor whose leaf-snapshot
// buffers survive across seeks, plus a key-building scratch buffer.
type probe struct {
	cur btree.Cursor
	key []byte
}

func (m *Mapper) getProbe() *probe {
	if p, ok := m.probes.Get().(*probe); ok {
		return p
	}
	return new(probe)
}

func (m *Mapper) putProbe(p *probe) { m.probes.Put(p) }

// View returns a mapper whose reads are pinned to snap: structures
// resolve through the snapshot's version chains, the shared record cache
// matches on the snapshot's stamp, and statistics are privately cached so
// snapshot-consistent counts never leak into the live mapper. A nil snap
// returns a clone reading the live state. Mutations through a snapshot
// view fail in the store layer.
func (m *Mapper) View(snap *dmsii.Snap) *Mapper {
	v := *m
	v.snap = snap
	v.onWrite = nil
	if snap != nil {
		v.stat = &statCache{m: make(map[string]int64)}
	}
	return &v
}

// WithOnWrite returns a live clone whose mutators call fn with the target
// entity (base class, surrogate) before touching it — the database
// layer's per-entity write-latch backstop. The clone shares every cache
// with m.
func (m *Mapper) WithOnWrite(fn func(base *catalog.Class, s value.Surrogate) error) *Mapper {
	v := *m
	v.snap = nil
	v.onWrite = fn
	return &v
}

// Snap returns the snapshot this mapper reads through, nil for the live
// mapper.
func (m *Mapper) Snap() *dmsii.Snap { return m.snap }

// structure resolves a named structure: through the pinned snapshot for
// views, else live.
func (m *Mapper) structure(name string) (*dmsii.Structure, error) {
	if m.snap != nil {
		return m.snap.Structure(name)
	}
	return m.store.Structure(name)
}

// readStamp is the commit stamp this mapper's reads observe — the pinned
// snapshot's stamp for views, the newest published stamp for the live
// mapper. Record-cache entries are valid only at exactly their stamp.
func (m *Mapper) readStamp() uint64 {
	if m.snap != nil {
		return m.snap.Stamp()
	}
	return m.store.Published()
}

// touch runs the onWrite hook for one entity about to be mutated.
func (m *Mapper) touch(base *catalog.Class, s value.Surrogate) error {
	if m.onWrite == nil {
		return nil
	}
	return m.onWrite(base, s)
}

// touchEVA runs the onWrite hook for both partners of an EVA instance.
func (m *Mapper) touchEVA(a *catalog.Attribute, s, t value.Surrogate) error {
	if m.onWrite == nil {
		return nil
	}
	if err := m.onWrite(a.Owner.Base, s); err != nil {
		return err
	}
	return m.onWrite(a.Range.Base, t)
}

// CacheStats reports the decoded-record read cache's traffic.
type CacheStats struct {
	Hits   uint64 // records served from the cache
	Misses uint64 // records decoded from storage
}

// rcKey identifies a cached record by hierarchy and surrogate.
type rcKey struct {
	base int
	s    value.Surrogate
}

// rcShards is the number of record-cache shards.
const rcShards = 8

// rcEntry is one cached decode: the record (nil caches a miss) plus the
// commit stamp whose state it decodes. An entry serves only readers at
// exactly that stamp — commits advance the published stamp, implicitly
// invalidating the whole cache without touching it.
type rcEntry struct {
	rec   *record
	stamp uint64
}

// rcShard is one independently locked slice of the record cache.
type rcShard struct {
	mu sync.RWMutex
	m  map[rcKey]rcEntry
}

// rcacheCap bounds the read cache across all shards; a full shard is
// cleared wholesale, as the unsharded cache was.
const rcacheCap = 1024

func (rc *recCache) shardOf(s value.Surrogate) *rcShard {
	return &rc.shards[uint64(s)%rcShards]
}

type slotKind int

const (
	slotSingle slotKind = iota // single-valued DVA
	slotMulti                  // embedded multi-valued DVA
	slotFK                     // EVA foreign key (surrogate or NULL)
)

type slot struct {
	attr *catalog.Attribute
	kind slotKind
}

// New builds the mapper, resolving every physical mapping decision.
func New(store *dmsii.Store, cat *catalog.Catalog, cfg Config) (*Mapper, error) {
	m := &Mapper{
		store:    store,
		cat:      cat,
		hier:     make(map[*catalog.Class]HierarchyStrategy),
		evas:     make(map[*catalog.Attribute]evaMapping),
		mvSep:    make(map[*catalog.Attribute]bool),
		idx:      make(map[*catalog.Attribute]bool),
		slots:    make(map[*catalog.Class][]slot),
		surrNext: make(map[int]value.Surrogate),
		stat:     &statCache{m: make(map[string]int64)},
		rc:       &recCache{},
		probes:   new(sync.Pool),
	}
	for i := range m.rc.shards {
		m.rc.shards[i].m = make(map[rcKey]rcEntry)
	}
	if err := m.Reconfigure(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reconfigure recomputes mapping decisions; used when the schema is
// extended. Changing the strategy of a populated structure is not
// supported.
func (m *Mapper) Reconfigure(cfg Config) error {
	for _, cl := range m.cat.Classes() {
		if cl.IsBase() {
			strat := HierarchySingleRecord
			if cfg.Hierarchy != nil {
				if s, ok := cfg.Hierarchy[strings.ToLower(cl.Name)]; ok {
					strat = s
				}
			}
			m.hier[cl] = strat
		}
	}
	for _, cl := range m.cat.Classes() {
		for _, a := range cl.Attrs {
			switch a.Kind {
			case catalog.EVA:
				can := canonical(a)
				if _, done := m.evas[can]; done {
					continue
				}
				strat := EVADefault
				if cfg.EVA != nil {
					if s, ok := cfg.EVA[attrKey(a)]; ok {
						strat = s
					} else if s, ok := cfg.EVA[attrKey(a.Inverse)]; ok {
						strat = s
					}
				}
				mapping, err := resolveEVA(can, strat)
				if err != nil {
					return err
				}
				m.evas[can] = mapping
			case catalog.DVA:
				if a.Options.MV {
					strat := MVDefault
					if cfg.MVDVA != nil {
						if s, ok := cfg.MVDVA[attrKey(a)]; ok {
							strat = s
						}
					}
					switch strat {
					case MVEmbedded:
						m.mvSep[a] = false
					case MVSeparate:
						m.mvSep[a] = true
					default:
						m.mvSep[a] = a.Options.Max == 0
					}
				}
				if a.Options.Unique {
					m.idx[a] = true
				}
			}
		}
	}
	for _, name := range cfg.Indexes {
		parts := strings.SplitN(strings.ToLower(name), ".", 2)
		if len(parts) != 2 {
			return fmt.Errorf("luc: index spec %q is not class.attr", name)
		}
		cl := m.cat.Class(parts[0])
		if cl == nil {
			continue // class not defined yet; applied when the schema grows
		}
		a := catalog.ResolveAttr(cl, parts[1])
		if a == nil || a.Kind != catalog.DVA || a.Options.MV {
			return fmt.Errorf("luc: index spec %q: not a single-valued DVA", name)
		}
		m.idx[a] = true
	}
	// Slot tables.
	for _, cl := range m.cat.Classes() {
		m.slots[cl] = m.computeSlots(cl)
	}
	return nil
}

// canonical picks the representative attribute of an EVA pair (the lower
// attribute id); the relationship id of §5.2's Common EVA Structure rows.
func canonical(a *catalog.Attribute) *catalog.Attribute {
	if a.Inverse != nil && a.Inverse.ID < a.ID {
		return a.Inverse
	}
	return a
}

func resolveEVA(can *catalog.Attribute, strat EVAStrategy) (evaMapping, error) {
	inv := can.Inverse
	oneOne := !can.Options.MV && !inv.Options.MV
	manyMany := can.Options.MV && inv.Options.MV
	switch strat {
	case EVADefault:
		switch {
		case oneOne:
			return evaFK, nil
		case manyMany && (can.Options.Distinct || inv.Options.Distinct):
			return evaOwn, nil
		default:
			return evaCES, nil
		}
	case EVACommon:
		return evaCES, nil
	case EVAPrivate:
		return evaOwn, nil
	case EVAForeignKey:
		if manyMany {
			return 0, fmt.Errorf("luc: EVA %s is many:many; a foreign-key mapping requires a single-valued side", can)
		}
		return evaFK, nil
	}
	return 0, fmt.Errorf("luc: unknown EVA strategy %d", strat)
}

// fkHolders returns the attributes whose owner's record embeds the foreign
// key for an FK-mapped pair: both sides when 1:1, else the single-valued
// side.
func fkHolders(can *catalog.Attribute) []*catalog.Attribute {
	inv := can.Inverse
	if can == inv { // self-inverse (spouse)
		return []*catalog.Attribute{can}
	}
	if !can.Options.MV && !inv.Options.MV {
		return []*catalog.Attribute{can, inv}
	}
	if !can.Options.MV {
		return []*catalog.Attribute{can}
	}
	return []*catalog.Attribute{inv}
}

// isFKHolder reports whether a's value is stored in its owner's record.
func (m *Mapper) isFKHolder(a *catalog.Attribute) bool {
	if m.evas[canonical(a)] != evaFK {
		return false
	}
	for _, h := range fkHolders(canonical(a)) {
		if h == a {
			return true
		}
	}
	return false
}

// computeSlots lists the immediate attributes of cl stored in its record
// section: single-valued DVAs, embedded MV DVAs and FK-held EVAs. Subrole
// attributes are derived from the role set and never stored.
func (m *Mapper) computeSlots(cl *catalog.Class) []slot {
	var out []slot
	for _, a := range cl.Attrs {
		switch a.Kind {
		case catalog.DVA:
			if a.Options.MV {
				if !m.mvSep[a] {
					out = append(out, slot{a, slotMulti})
				}
			} else {
				out = append(out, slot{a, slotSingle})
			}
		case catalog.EVA:
			if m.isFKHolder(a) {
				out = append(out, slot{a, slotFK})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Structure naming
// ---------------------------------------------------------------------------

func (m *Mapper) hierStructure(base *catalog.Class) (*dmsii.Structure, error) {
	return m.structure(fmt.Sprintf("h:%d", base.ID))
}

func (m *Mapper) classStructure(cl *catalog.Class) (*dmsii.Structure, error) {
	return m.structure(fmt.Sprintf("c:%d", cl.ID))
}

func (m *Mapper) cesStructure() (*dmsii.Structure, error) {
	return m.structure("ces")
}

func (m *Mapper) ownEVAStructure(can *catalog.Attribute) (*dmsii.Structure, error) {
	return m.structure(fmt.Sprintf("eva:%d", can.ID))
}

func (m *Mapper) fkIndexStructure(can *catalog.Attribute) (*dmsii.Structure, error) {
	return m.structure(fmt.Sprintf("fki:%d", can.ID))
}

func (m *Mapper) mvStructure(a *catalog.Attribute) (*dmsii.Structure, error) {
	return m.structure(fmt.Sprintf("mv:%d", a.ID))
}

func (m *Mapper) indexStructure(a *catalog.Attribute) (*dmsii.Structure, error) {
	return m.structure(fmt.Sprintf("ix:%d", a.ID))
}

// ---------------------------------------------------------------------------
// Surrogates and statistics
// ---------------------------------------------------------------------------

// ResetCaches drops in-memory surrogate and statistics caches; the database
// layer calls this after a rollback.
func (m *Mapper) ResetCaches() {
	m.surrNext = make(map[int]value.Surrogate)
	m.stat.mu.Lock()
	m.stat.m = make(map[string]int64)
	m.stat.mu.Unlock()
	for i := range m.rc.shards {
		sh := &m.rc.shards[i]
		sh.mu.Lock()
		sh.m = make(map[rcKey]rcEntry)
		sh.mu.Unlock()
	}
}

// nextSurrogate allocates the next surrogate for a hierarchy.
func (m *Mapper) nextSurrogate(base *catalog.Class) (value.Surrogate, error) {
	st, err := m.structure("~surr")
	if err != nil {
		return 0, err
	}
	key := []byte(fmt.Sprintf("%d", base.ID))
	next, ok := m.surrNext[base.ID]
	if !ok {
		raw, found, err := st.Get(key)
		if err != nil {
			return 0, err
		}
		if found {
			next = value.Surrogate(binary.BigEndian.Uint64(raw))
		} else {
			next = 1
		}
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(next)+1)
	if err := st.Put(key, buf[:]); err != nil {
		return 0, err
	}
	m.surrNext[base.ID] = next + 1
	return next, nil
}

func (m *Mapper) statGet(key string) (int64, error) {
	m.stat.mu.RLock()
	v, ok := m.stat.m[key]
	m.stat.mu.RUnlock()
	if ok {
		return v, nil
	}
	st, err := m.structure("~stats")
	if err != nil {
		return 0, err
	}
	raw, found, err := st.Get([]byte(key))
	if err != nil {
		return 0, err
	}
	if found {
		v = int64(binary.BigEndian.Uint64(raw))
	}
	// Two readers may race to fill the same key; both store the same
	// durable value (the cache is per-view for snapshot readers), so
	// last-write-wins is harmless.
	m.stat.mu.Lock()
	m.stat.m[key] = v
	m.stat.mu.Unlock()
	return v, nil
}

func (m *Mapper) statAdd(key string, delta int64) error {
	cur, err := m.statGet(key)
	if err != nil {
		return err
	}
	cur += delta
	st, err := m.structure("~stats")
	if err != nil {
		return err
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(cur))
	if err := st.Put([]byte(key), buf[:]); err != nil {
		return err
	}
	m.stat.mu.Lock()
	m.stat.m[key] = cur
	m.stat.mu.Unlock()
	return nil
}

// CacheStats returns record-cache counters; safe while queries run.
func (m *Mapper) CacheStats() CacheStats {
	return CacheStats{Hits: m.rc.hits.Load(), Misses: m.rc.misses.Load()}
}

// ResetCacheStats zeroes the record-cache counters (benchmark phases).
func (m *Mapper) ResetCacheStats() {
	m.rc.hits.Store(0)
	m.rc.misses.Store(0)
}

// RegisterMetrics publishes the mapper's cache counters on an obs
// registry.
func (m *Mapper) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sim_luc_cache_hits_total", "LUC decoded-record cache hits.",
		func() float64 { return float64(m.rc.hits.Load()) })
	r.CounterFunc("sim_luc_cache_misses_total", "LUC decoded-record cache misses.",
		func() float64 { return float64(m.rc.misses.Load()) })
}

// Count returns the number of entities holding a role in cl.
func (m *Mapper) Count(cl *catalog.Class) (int64, error) {
	return m.statGet(fmt.Sprintf("c%d", cl.ID))
}

// RelCount returns the number of instances of the EVA pair containing a.
func (m *Mapper) RelCount(a *catalog.Attribute) (int64, error) {
	return m.statGet(fmt.Sprintf("r%d", canonical(a).ID))
}

// HasIndex reports whether DVA a has a secondary index (UNIQUE attributes
// always do).
func (m *Mapper) HasIndex(a *catalog.Attribute) bool { return m.idx[a] }

// Catalog returns the catalog this mapper serves.
func (m *Mapper) Catalog() *catalog.Catalog { return m.cat }

// MVSeparate reports whether MV DVA a maps to a separate storage unit.
func (m *Mapper) MVSeparate(a *catalog.Attribute) bool { return m.mvSep[a] }

// TraversalCost returns the optimizer's estimate of the I/O cost of
// accessing the first and each subsequent instance of EVA a from its owner
// side (§5.1: 0 for the first instance when the relationship is clustered
// with the owner record, one block access when reached through a separate
// structure).
func (m *Mapper) TraversalCost(a *catalog.Attribute) (first, next float64) {
	if m.evas[canonical(a)] == evaFK && m.isFKHolder(a) {
		return 0, 0 // foreign key clustered in the owner's record
	}
	return 1, 0.2 // CES / private structure / fk index probe
}
