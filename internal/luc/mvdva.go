package luc

import (
	"encoding/binary"

	"sim/internal/catalog"
	"sim/internal/value"
)

// Separate-unit multi-valued DVAs (§5.2: "LUCs of multi-valued DVAs
// without the MAX option are mapped into a separate storage unit") are
// dependent LUCs keyed <owner-surrogate, value-key, occurrence>, the
// occurrence counter giving multiset semantics. The row's value holds the
// decodable encoding of the DVA value (the key encoding is
// order-preserving but not invertible).

func mvKey(s value.Surrogate, v value.Value, seq uint32) []byte {
	key := value.AppendSurrogateKey(nil, s)
	key = value.AppendKey(key, v)
	return binary.BigEndian.AppendUint32(key, seq)
}

func (m *Mapper) readSeparateMV(s value.Surrogate, a *catalog.Attribute) ([]value.Value, error) {
	st, err := m.mvStructure(a)
	if err != nil {
		return nil, err
	}
	c, err := st.SeekPrefix(value.AppendSurrogateKey(nil, s))
	if err != nil {
		return nil, err
	}
	var out []value.Value
	for ; c.Valid(); c.Next() {
		v, _, err := value.Decode(c.Value())
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, c.Err()
}

func (m *Mapper) appendSeparateMV(s value.Surrogate, a *catalog.Attribute, v value.Value) error {
	st, err := m.mvStructure(a)
	if err != nil {
		return err
	}
	// Find the next free occurrence number for this (owner, value).
	prefix := value.AppendSurrogateKey(nil, s)
	prefix = value.AppendKey(prefix, v)
	c, err := st.SeekPrefix(prefix)
	if err != nil {
		return err
	}
	seq := uint32(0)
	for ; c.Valid(); c.Next() {
		key := c.Key()
		seq = binary.BigEndian.Uint32(key[len(key)-4:]) + 1
	}
	if err := c.Err(); err != nil {
		return err
	}
	return st.Put(mvKey(s, v, seq), value.Append(nil, v))
}

func (m *Mapper) clearSeparateMV(s value.Surrogate, a *catalog.Attribute) error {
	st, err := m.mvStructure(a)
	if err != nil {
		return err
	}
	c, err := st.SeekPrefix(value.AppendSurrogateKey(nil, s))
	if err != nil {
		return err
	}
	var keys [][]byte
	for ; c.Valid(); c.Next() {
		keys = append(keys, append([]byte(nil), c.Key()...))
	}
	if err := c.Err(); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := st.Delete(k); err != nil {
			return err
		}
	}
	return nil
}
