package luc

import (
	"encoding/binary"
	"fmt"

	"sim/internal/catalog"
	"sim/internal/dmsii"
	"sim/internal/value"
)

// EVA instances. SIM "automatically maintains the inverse of every declared
// EVA and guarantees that an EVA and its inverse will stay synchronized at
// all times" (§3.2); that guarantee lives here. Depending on the resolved
// mapping, an instance (s, t) of the pair containing attribute a is stored
// as:
//
//   - foreign keys in the partner records (1:1, or the single-valued side
//     of a pair forced to EVAForeignKey, plus a target→holder index for
//     traversal from the multi-valued side), or
//   - two rows in the Common EVA Structure keyed
//     <rel-id, direction, from-surrogate, to-surrogate>, or
//   - two rows of the same shape in the pair's private structure.

// dirOf is 0 when traversing from the canonical side, 1 from the inverse.
func dirOf(a *catalog.Attribute) byte {
	if canonical(a) == a {
		return 0
	}
	return 1
}

// cesKey builds the row key for a traversal row of pair can.
func cesKey(shared bool, can *catalog.Attribute, dir byte, from, to value.Surrogate) []byte {
	var key []byte
	if shared {
		key = binary.BigEndian.AppendUint32(nil, uint32(can.ID))
	}
	key = append(key, dir)
	key = value.AppendSurrogateKey(key, from)
	key = value.AppendSurrogateKey(key, to)
	return key
}

// cesPrefix builds the scan prefix for all partners of from in direction dir.
func cesPrefix(shared bool, can *catalog.Attribute, dir byte, from value.Surrogate) []byte {
	return appendCESPrefix(nil, shared, can, dir, from)
}

// appendCESPrefix is cesPrefix appending into dst.
func appendCESPrefix(dst []byte, shared bool, can *catalog.Attribute, dir byte, from value.Surrogate) []byte {
	if shared {
		dst = binary.BigEndian.AppendUint32(dst, uint32(can.ID))
	}
	dst = append(dst, dir)
	return value.AppendSurrogateKey(dst, from)
}

func (m *Mapper) evaRows(a *catalog.Attribute) (*dmsii.Structure, bool, error) {
	can := canonical(a)
	switch m.evas[can] {
	case evaCES:
		st, err := m.cesStructure()
		return st, true, err
	case evaOwn:
		st, err := m.ownEVAStructure(can)
		return st, false, err
	}
	return nil, false, fmt.Errorf("luc: %s is foreign-key mapped, not row mapped", a)
}

// GetEVA returns the surrogates related to s through attribute a, in
// ascending surrogate order (the DML's implicit perspective ordering).
func (m *Mapper) GetEVA(s value.Surrogate, a *catalog.Attribute) ([]value.Surrogate, error) {
	return m.GetEVAInto(nil, s, a)
}

// GetEVAInto is GetEVA appending into dst, so hot query loops can reuse
// one partner buffer across bindings instead of allocating per call.
func (m *Mapper) GetEVAInto(dst []value.Surrogate, s value.Surrogate, a *catalog.Attribute) ([]value.Surrogate, error) {
	can := canonical(a)
	switch m.evas[can] {
	case evaFK:
		if m.isFKHolder(a) {
			v, err := m.getFKSlot(s, a)
			if err != nil {
				return dst, err
			}
			if v.IsNull() {
				return dst, nil
			}
			return append(dst, v.Surrogate()), nil
		}
		// Multi-valued side of an FK-mapped pair: use the target→holder
		// index (§5.2's "additional index structure").
		st, err := m.fkIndexStructure(can)
		if err != nil {
			return dst, err
		}
		p := m.getProbe()
		defer m.putProbe(p)
		p.key = value.AppendSurrogateKey(p.key[:0], s)
		if err := st.SeekPrefixInto(&p.cur, p.key); err != nil {
			return dst, err
		}
		for c := &p.cur; c.Valid(); c.Next() {
			dst = append(dst, value.SurrogateFromKey(c.Key()[8:]))
		}
		return dst, p.cur.Err()
	default:
		st, shared, err := m.evaRows(a)
		if err != nil {
			return dst, err
		}
		p := m.getProbe()
		defer m.putProbe(p)
		p.key = appendCESPrefix(p.key[:0], shared, can, dirOf(a), s)
		if err := st.SeekPrefixInto(&p.cur, p.key); err != nil {
			return dst, err
		}
		for c := &p.cur; c.Valid(); c.Next() {
			key := c.Key()
			dst = append(dst, value.SurrogateFromKey(key[len(key)-8:]))
		}
		return dst, p.cur.Err()
	}
}

// FKHolder reports whether a reads as a foreign-key slot in s's own record
// (the single-valued side of an FK-mapped pair), letting the executor
// resolve the partner from an already-decoded record with no extra probe.
func (m *Mapper) FKHolder(a *catalog.Attribute) bool {
	return m.evas[canonical(a)] == evaFK && m.isFKHolder(a)
}

// HasEVAInstance reports whether the instance (s, t) of a's pair exists.
func (m *Mapper) HasEVAInstance(a *catalog.Attribute, s, t value.Surrogate) (bool, error) {
	can := canonical(a)
	switch m.evas[can] {
	case evaFK:
		if m.isFKHolder(a) {
			v, err := m.getFKSlot(s, a)
			if err != nil {
				return false, err
			}
			return !v.IsNull() && v.Surrogate() == t, nil
		}
		v, err := m.getFKSlot(t, a.Inverse)
		if err != nil {
			return false, err
		}
		return !v.IsNull() && v.Surrogate() == s, nil
	default:
		st, shared, err := m.evaRows(a)
		if err != nil {
			return false, err
		}
		_, found, err := st.Get(cesKey(shared, can, dirOf(a), s, t))
		return found, err
	}
}

func (m *Mapper) getFKSlot(s value.Surrogate, a *catalog.Attribute) (value.Value, error) {
	r, found, err := m.readSection(a.Owner, s)
	if err != nil || !found {
		return value.Null, err
	}
	return r.single[a.ID], nil
}

func (m *Mapper) setFKSlot(s value.Surrogate, a *catalog.Attribute, v value.Value) error {
	base := a.Owner.Base
	r, err := m.loadRecord(base, s)
	if err != nil {
		return err
	}
	if r == nil {
		return ErrNotFound
	}
	if v.IsNull() {
		delete(r.single, a.ID)
	} else {
		r.single[a.ID] = v
	}
	return m.storeRecord(base, s, r, r.roles)
}

// IncludeEVA establishes the instance (s, t) of attribute a, enforcing the
// structural properties of §3.2.1: a single-valued side is replaced, a
// single-valued inverse steals t from its previous partner, and MAX
// cardinalities are enforced on both sides.
func (m *Mapper) IncludeEVA(s value.Surrogate, a *catalog.Attribute, t value.Surrogate) error {
	inv := a.Inverse
	// Role integrity: both partners must hold the required roles.
	if ok, err := m.HasRole(s, a.Owner); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("entity #%d has no %s role for attribute %s", s, a.Owner.Name, a.Name)
	}
	if ok, err := m.HasRole(t, a.Range); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("entity #%d has no %s role (range of %s)", t, a.Range.Name, a.Name)
	}
	if exists, err := m.HasEVAInstance(a, s, t); err != nil {
		return err
	} else if exists {
		return nil // EVAs are distinct: the instance already holds
	}
	// Single-valued sides displace existing partners.
	if !a.Options.MV {
		cur, err := m.GetEVA(s, a)
		if err != nil {
			return err
		}
		for _, old := range cur {
			if err := m.removeEVAInstance(a, s, old); err != nil {
				return err
			}
		}
	}
	if !inv.Options.MV && !(inv == a && !a.Options.MV) {
		cur, err := m.GetEVA(t, inv)
		if err != nil {
			return err
		}
		for _, old := range cur {
			if err := m.removeEVAInstance(inv, t, old); err != nil {
				return err
			}
		}
	}
	// Self-inverse single-valued (spouse): t's side also displaces.
	if inv == a && !a.Options.MV && s != t {
		cur, err := m.GetEVA(t, a)
		if err != nil {
			return err
		}
		for _, old := range cur {
			if err := m.removeEVAInstance(a, t, old); err != nil {
				return err
			}
		}
	}
	// MAX cardinality on both sides (after displacement).
	if a.Options.Max > 0 {
		cur, err := m.GetEVA(s, a)
		if err != nil {
			return err
		}
		if len(cur) >= a.Options.Max {
			return &CardinalityError{Attr: a, Max: a.Options.Max}
		}
	}
	if inv.Options.Max > 0 && inv != a {
		cur, err := m.GetEVA(t, inv)
		if err != nil {
			return err
		}
		if len(cur) >= inv.Options.Max {
			return &CardinalityError{Attr: inv, Max: inv.Options.Max}
		}
	}
	return m.addEVAInstance(a, s, t)
}

// ExcludeEVA removes the instance (s, t) if present.
func (m *Mapper) ExcludeEVA(s value.Surrogate, a *catalog.Attribute, t value.Surrogate) error {
	exists, err := m.HasEVAInstance(a, s, t)
	if err != nil {
		return err
	}
	if !exists {
		return nil
	}
	return m.removeEVAInstance(a, s, t)
}

// SetEVA assigns a single-valued EVA: replace the current partner with t,
// or clear it when t is nil.
func (m *Mapper) SetEVA(s value.Surrogate, a *catalog.Attribute, t *value.Surrogate) error {
	if a.Options.MV {
		return fmt.Errorf("luc: SetEVA on multi-valued %s; use Include/Exclude", a)
	}
	if t == nil {
		cur, err := m.GetEVA(s, a)
		if err != nil {
			return err
		}
		for _, old := range cur {
			if err := m.removeEVAInstance(a, s, old); err != nil {
				return err
			}
		}
		return nil
	}
	return m.IncludeEVA(s, a, *t)
}

// addEVAInstance stores (s, t) for attribute a without integrity checks.
func (m *Mapper) addEVAInstance(a *catalog.Attribute, s, t value.Surrogate) error {
	if err := m.touchEVA(a, s, t); err != nil {
		return err
	}
	can := canonical(a)
	inv := a.Inverse
	switch m.evas[can] {
	case evaFK:
		if inv == a { // self-inverse: both records point at each other
			if err := m.setFKSlot(s, a, value.NewSurrogate(t)); err != nil {
				return err
			}
			if s != t {
				if err := m.setFKSlot(t, a, value.NewSurrogate(s)); err != nil {
					return err
				}
			}
		} else {
			for _, h := range fkHolders(can) {
				holder, target := s, t
				if h != a {
					holder, target = t, s
				}
				if err := m.setFKSlot(holder, h, value.NewSurrogate(target)); err != nil {
					return err
				}
			}
			// Multi-valued side traversal index, when one side is MV.
			if can.Options.MV != can.Inverse.Options.MV {
				st, err := m.fkIndexStructure(can)
				if err != nil {
					return err
				}
				holderAttr := fkHolders(can)[0]
				holder, target := s, t
				if holderAttr != a {
					holder, target = t, s
				}
				key := value.AppendSurrogateKey(nil, target)
				key = value.AppendSurrogateKey(key, holder)
				if err := st.Put(key, nil); err != nil {
					return err
				}
			}
		}
	default:
		st, shared, err := m.evaRows(a)
		if err != nil {
			return err
		}
		if err := st.Put(cesKey(shared, can, dirOf(a), s, t), nil); err != nil {
			return err
		}
		if !(inv == a && s == t) {
			if err := st.Put(cesKey(shared, can, dirOf(inv), t, s), nil); err != nil {
				return err
			}
		}
	}
	return m.statAdd(fmt.Sprintf("r%d", can.ID), 1)
}

// removeEVAInstance deletes the stored instance (s, t) of attribute a.
func (m *Mapper) removeEVAInstance(a *catalog.Attribute, s, t value.Surrogate) error {
	if err := m.touchEVA(a, s, t); err != nil {
		return err
	}
	can := canonical(a)
	inv := a.Inverse
	switch m.evas[can] {
	case evaFK:
		if inv == a {
			if err := m.setFKSlot(s, a, value.Null); err != nil {
				return err
			}
			if s != t {
				if err := m.setFKSlot(t, a, value.Null); err != nil {
					return err
				}
			}
		} else {
			for _, h := range fkHolders(can) {
				holder := s
				if h != a {
					holder = t
				}
				if err := m.setFKSlot(holder, h, value.Null); err != nil {
					return err
				}
			}
			if can.Options.MV != can.Inverse.Options.MV {
				st, err := m.fkIndexStructure(can)
				if err != nil {
					return err
				}
				holderAttr := fkHolders(can)[0]
				holder, target := s, t
				if holderAttr != a {
					holder, target = t, s
				}
				key := value.AppendSurrogateKey(nil, target)
				key = value.AppendSurrogateKey(key, holder)
				if _, err := st.Delete(key); err != nil {
					return err
				}
			}
		}
	default:
		st, shared, err := m.evaRows(a)
		if err != nil {
			return err
		}
		if _, err := st.Delete(cesKey(shared, can, dirOf(a), s, t)); err != nil {
			return err
		}
		if !(inv == a && s == t) {
			if _, err := st.Delete(cesKey(shared, can, dirOf(inv), t, s)); err != nil {
				return err
			}
		}
	}
	return m.statAdd(fmt.Sprintf("r%d", can.ID), -1)
}
