package luc

import (
	"bytes"

	"sim/internal/catalog"
	"sim/internal/value"
)

// Secondary indexes map <value-key, owner-surrogate> rows; UNIQUE
// attributes always have one (it enforces the option and serves point
// lookups), and Config.Indexes adds optimizer-selectable indexes on other
// single-valued DVAs ("indexes … are some of the optimization parameters
// used", §5.1).

func (m *Mapper) indexInsert(a *catalog.Attribute, v value.Value, s value.Surrogate) error {
	st, err := m.indexStructure(a)
	if err != nil {
		return err
	}
	key := value.AppendKey(nil, v)
	key = value.AppendSurrogateKey(key, s)
	return st.Put(key, nil)
}

func (m *Mapper) indexRemove(a *catalog.Attribute, v value.Value, s value.Surrogate) error {
	st, err := m.indexStructure(a)
	if err != nil {
		return err
	}
	key := value.AppendKey(nil, v)
	key = value.AppendSurrogateKey(key, s)
	_, err = st.Delete(key)
	return err
}

// LookupUnique finds the entity holding value v in unique attribute a.
func (m *Mapper) LookupUnique(a *catalog.Attribute, v value.Value) (value.Surrogate, bool, error) {
	st, err := m.indexStructure(a)
	if err != nil {
		return 0, false, err
	}
	p := m.getProbe()
	defer m.putProbe(p)
	p.key = value.AppendKey(p.key[:0], v)
	if err := st.SeekPrefixInto(&p.cur, p.key); err != nil {
		return 0, false, err
	}
	if !p.cur.Valid() {
		return 0, false, p.cur.Err()
	}
	key := p.cur.Key()
	return value.SurrogateFromKey(key[len(key)-8:]), true, nil
}

// Bound describes one end of an index range; nil Value means unbounded.
type Bound struct {
	Value     value.Value
	Inclusive bool
	Set       bool
}

// IndexCountApprox counts the index entries of a within [lo, hi],
// stopping at limit: the optimizer's bounded selectivity probe (the paper
// notes "statistical optimization is not fully implemented yet"; probing
// the index bounds the estimation cost while being exact for selective
// predicates).
func (m *Mapper) IndexCountApprox(a *catalog.Attribute, lo, hi Bound, limit int) (n int, capped bool, err error) {
	st, err := m.indexStructure(a)
	if err != nil {
		return 0, false, err
	}
	var start []byte
	if lo.Set {
		start = value.AppendKey(nil, lo.Value)
	}
	var hiKey []byte
	if hi.Set {
		hiKey = value.AppendKey(nil, hi.Value)
	}
	c, err := st.Seek(start)
	if err != nil {
		return 0, false, err
	}
	for ; c.Valid(); c.Next() {
		key := c.Key()
		part := key[:len(key)-8]
		if lo.Set && !lo.Inclusive && bytes.Equal(part, start) {
			continue
		}
		if hi.Set {
			cmp := bytes.Compare(part, hiKey)
			if cmp > 0 || (cmp == 0 && !hi.Inclusive) {
				break
			}
		}
		n++
		if n >= limit {
			return n, true, nil
		}
	}
	return n, false, c.Err()
}

// IndexScan returns the surrogates whose indexed value of a lies within
// [lo, hi], in value order.
func (m *Mapper) IndexScan(a *catalog.Attribute, lo, hi Bound) ([]value.Surrogate, error) {
	st, err := m.indexStructure(a)
	if err != nil {
		return nil, err
	}
	var start []byte
	if lo.Set {
		start = value.AppendKey(nil, lo.Value)
	}
	var hiKey []byte
	if hi.Set {
		hiKey = value.AppendKey(nil, hi.Value)
	}
	c, err := st.Seek(start)
	if err != nil {
		return nil, err
	}
	var out []value.Surrogate
	for ; c.Valid(); c.Next() {
		key := c.Key()
		part := key[:len(key)-8]
		if lo.Set && !lo.Inclusive && bytes.Equal(part, start) {
			continue
		}
		if hi.Set {
			cmp := bytes.Compare(part, hiKey)
			if cmp > 0 || (cmp == 0 && !hi.Inclusive) {
				break
			}
		}
		// Keys below the lower bound cannot appear (Seek started there),
		// but NULL entries are never indexed, so no filtering is needed.
		out = append(out, value.SurrogateFromKey(key[len(key)-8:]))
	}
	return out, c.Err()
}
