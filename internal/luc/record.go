package luc

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sim/internal/catalog"
	"sim/internal/value"
)

// record is the in-memory form of one entity's stored state within a
// hierarchy: the set of role class ids plus the slot values of each role's
// section. It is the Mapper's "variable-format record" (§5.2): the format
// of the encoded record varies with the role set.
type record struct {
	roles  []int                 // sorted class ids
	single map[int]value.Value   // attr id → value (single DVAs and FK EVAs)
	multi  map[int][]value.Value // attr id → values (embedded MV DVAs)
}

func newRecord() *record {
	return &record{
		single: make(map[int]value.Value),
		multi:  make(map[int][]value.Value),
	}
}

func (r *record) hasRole(id int) bool {
	for _, rid := range r.roles {
		if rid == id {
			return true
		}
	}
	return false
}

func (r *record) addRole(id int) {
	if r.hasRole(id) {
		return
	}
	r.roles = append(r.roles, id)
	sort.Ints(r.roles)
}

func (r *record) removeRole(id int) {
	for i, rid := range r.roles {
		if rid == id {
			r.roles = append(r.roles[:i], r.roles[i+1:]...)
			return
		}
	}
}

// encodeSection appends the slot values of one class section.
func (m *Mapper) encodeSection(dst []byte, cl *catalog.Class, r *record) []byte {
	for _, s := range m.slots[cl] {
		switch s.kind {
		case slotSingle, slotFK:
			dst = value.Append(dst, r.single[s.attr.ID])
		case slotMulti:
			vals := r.multi[s.attr.ID]
			dst = binary.AppendUvarint(dst, uint64(len(vals)))
			for _, v := range vals {
				dst = value.Append(dst, v)
			}
		}
	}
	return dst
}

func (m *Mapper) decodeSection(b []byte, cl *catalog.Class, r *record) ([]byte, error) {
	var err error
	for _, s := range m.slots[cl] {
		switch s.kind {
		case slotSingle, slotFK:
			var v value.Value
			v, b, err = value.Decode(b)
			if err != nil {
				return nil, fmt.Errorf("luc: record of %s, attr %s: %w", cl.Name, s.attr.Name, err)
			}
			if !v.IsNull() {
				r.single[s.attr.ID] = v
			}
		case slotMulti:
			n, used := binary.Uvarint(b)
			if used <= 0 {
				return nil, fmt.Errorf("luc: record of %s, attr %s: bad count", cl.Name, s.attr.Name)
			}
			b = b[used:]
			vals := make([]value.Value, 0, n)
			for i := uint64(0); i < n; i++ {
				var v value.Value
				v, b, err = value.Decode(b)
				if err != nil {
					return nil, fmt.Errorf("luc: record of %s, attr %s[%d]: %w", cl.Name, s.attr.Name, i, err)
				}
				vals = append(vals, v)
			}
			if len(vals) > 0 {
				r.multi[s.attr.ID] = vals
			}
		}
	}
	return b, nil
}

// encodeRecord serializes a full single-record-strategy record:
// role count, role ids, then each role's section in ascending class id.
func (m *Mapper) encodeRecord(base *catalog.Class, r *record) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(r.roles)))
	for _, id := range r.roles {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	for _, id := range r.roles {
		dst = m.encodeSection(dst, m.classByID(id), r)
	}
	return dst
}

func (m *Mapper) decodeRecord(base *catalog.Class, b []byte) (*record, error) {
	r := newRecord()
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, fmt.Errorf("luc: corrupt record header in hierarchy %s", base.Name)
	}
	b = b[used:]
	for i := uint64(0); i < n; i++ {
		id, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, fmt.Errorf("luc: corrupt role list in hierarchy %s", base.Name)
		}
		b = b[used:]
		r.roles = append(r.roles, int(id))
	}
	var err error
	for _, id := range r.roles {
		cl := m.classByID(id)
		if cl == nil {
			return nil, fmt.Errorf("luc: record names unknown class id %d", id)
		}
		b, err = m.decodeSection(b, cl, r)
		if err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (m *Mapper) classByID(id int) *catalog.Class {
	classes := m.cat.Classes()
	if id < 0 || id >= len(classes) {
		return nil
	}
	return classes[id]
}

// readRecord is the read-path variant of loadRecord with a small sharded
// cache; mutators use loadRecord directly since they modify the returned
// record in place before storeRecord (which invalidates the cache entry).
// Cached records are shared across concurrent queries and must never be
// mutated by readers.
//
// The cache is stamp-exact: an entry serves only readers observing the
// same commit stamp it was decoded at, so every commit implicitly
// invalidates it. Only snapshot views fill the cache — the live mapper
// runs inside write transactions, where a fill could capture uncommitted
// state under a published stamp.
func (m *Mapper) readRecord(base *catalog.Class, s value.Surrogate) (*record, error) {
	key := rcKey{base.ID, s}
	stamp := m.readStamp()
	sh := m.rc.shardOf(s)
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok && e.stamp == stamp {
		m.rc.hits.Add(1)
		return e.rec, nil
	}
	m.rc.misses.Add(1)
	r, err := m.loadRecord(base, s)
	if err != nil {
		return nil, err
	}
	if m.snap == nil {
		return r, nil
	}
	// Concurrent readers may race to fill the same key with equal decoded
	// contents; last write wins.
	sh.mu.Lock()
	if len(sh.m) >= rcacheCap/rcShards {
		sh.m = make(map[rcKey]rcEntry, rcacheCap/rcShards)
	}
	sh.m[key] = rcEntry{rec: r, stamp: stamp}
	sh.mu.Unlock()
	return r, nil
}

// readSection reads just one class's section of an entity (plus the
// surrounding record under the single-record strategy, where sections are
// not separable). found reports whether the entity holds the class's role.
func (m *Mapper) readSection(cl *catalog.Class, s value.Surrogate) (*record, bool, error) {
	if m.hier[cl.Base] == HierarchySingleRecord {
		r, err := m.readRecord(cl.Base, s)
		if err != nil || r == nil {
			return nil, false, err
		}
		return r, r.hasRole(cl.ID), nil
	}
	st, err := m.classStructure(cl)
	if err != nil {
		return nil, false, err
	}
	raw, found, err := st.Get(value.AppendSurrogateKey(nil, s))
	if err != nil || !found {
		return nil, false, err
	}
	r := newRecord()
	r.roles = []int{cl.ID}
	if _, err := m.decodeSection(raw, cl, r); err != nil {
		return nil, false, err
	}
	return r, true, nil
}

// loadRecord reads an entity's record. For the split strategy it assembles
// the record from the per-class structures (each holding one section).
func (m *Mapper) loadRecord(base *catalog.Class, s value.Surrogate) (*record, error) {
	key := value.AppendSurrogateKey(nil, s)
	if m.hier[base] == HierarchySingleRecord {
		st, err := m.hierStructure(base)
		if err != nil {
			return nil, err
		}
		raw, found, err := st.Get(key)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, nil
		}
		return m.decodeRecord(base, raw)
	}
	// Split strategy: probe each class structure of the hierarchy.
	r := newRecord()
	for _, cl := range catalog.HierarchyClasses(base) {
		st, err := m.classStructure(cl)
		if err != nil {
			return nil, err
		}
		raw, found, err := st.Get(key)
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		r.roles = append(r.roles, cl.ID)
		if _, err := m.decodeSection(raw, cl, r); err != nil {
			return nil, err
		}
	}
	if len(r.roles) == 0 {
		return nil, nil
	}
	sort.Ints(r.roles)
	return r, nil
}

// storeRecord writes an entity's record. prevRoles lists the roles present
// before the update so the split strategy can delete abandoned sections.
func (m *Mapper) storeRecord(base *catalog.Class, s value.Surrogate, r *record, prevRoles []int) error {
	sh := m.rc.shardOf(s)
	sh.mu.Lock()
	delete(sh.m, rcKey{base.ID, s})
	sh.mu.Unlock()
	key := value.AppendSurrogateKey(nil, s)
	if m.hier[base] == HierarchySingleRecord {
		st, err := m.hierStructure(base)
		if err != nil {
			return err
		}
		if len(r.roles) == 0 {
			_, err := st.Delete(key)
			return err
		}
		return st.Put(key, m.encodeRecord(base, r))
	}
	for _, cl := range catalog.HierarchyClasses(base) {
		st, err := m.classStructure(cl)
		if err != nil {
			return err
		}
		if r.hasRole(cl.ID) {
			if err := st.Put(key, m.encodeSection(nil, cl, r)); err != nil {
				return err
			}
		} else {
			had := false
			for _, id := range prevRoles {
				if id == cl.ID {
					had = true
					break
				}
			}
			if had {
				if _, err := st.Delete(key); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
