package luc

import (
	"sim/internal/catalog"
	"sim/internal/value"
)

// Rec is a read-only handle on one entity's decoded record, handed to the
// executor so a binding's attribute references resolve against one cached
// decode instead of paying a cache probe (and its shard lock) per
// reference. The underlying record is shared with the Mapper's read cache
// and with concurrent queries; it is immutable once published, and holders
// must never mutate what the accessors return.
//
// The zero Rec is invalid and reports no roles and only NULL values;
// callers fall back to the Mapper's per-entity read path when Valid is
// false (split-strategy hierarchies, vanished entities).
type Rec struct {
	r *record
}

// Valid reports whether the handle carries a decoded record.
func (rec Rec) Valid() bool { return rec.r != nil }

// HasRole reports whether the entity holds the role with the given class
// id. Meaningful only for classes of the hierarchy the record came from:
// surrogates (and so records) are per-hierarchy.
func (rec Rec) HasRole(id int) bool { return rec.r != nil && rec.r.hasRole(id) }

// Single reads a single-valued DVA (or FK EVA slot) with GetSingle's
// uniform null treatment: NULL when unset, when the entity lacks the
// owning role, and on an invalid handle.
func (rec Rec) Single(a *catalog.Attribute) value.Value {
	if rec.r == nil || !rec.r.hasRole(a.Owner.ID) {
		return value.Null
	}
	return rec.r.single[a.ID]
}

// FirstSubrole returns the first subrole name (in SubroleOf declaration
// order) the entity currently holds, or NULL — the value an attribute
// reference to a subrole attribute reads.
func (rec Rec) FirstSubrole(a *catalog.Attribute) value.Value {
	if rec.r == nil {
		return value.Null
	}
	for ord, sub := range a.SubroleOf {
		if rec.r.hasRole(sub.ID) {
			return value.NewSymbolic(sub.Name, ord)
		}
	}
	return value.Null
}

// AppendSubroles appends every subrole name the entity holds, in
// declaration order — Subrole without the per-call allocation.
func (rec Rec) AppendSubroles(dst []value.Value, a *catalog.Attribute) []value.Value {
	if rec.r == nil {
		return dst
	}
	for ord, sub := range a.SubroleOf {
		if rec.r.hasRole(sub.ID) {
			dst = append(dst, value.NewSymbolic(sub.Name, ord))
		}
	}
	return dst
}

// MultiRaw returns the embedded multiset of an MV DVA without copying.
// The slice aliases the shared record: READ ONLY. Only meaningful for
// embedded (non-separate) MV DVAs; separate-unit attributes live outside
// the record and read through Mapper.GetMV.
func (rec Rec) MultiRaw(a *catalog.Attribute) []value.Value {
	if rec.r == nil || !rec.r.hasRole(a.Owner.ID) {
		return nil
	}
	return rec.r.multi[a.ID]
}

// Batchable reports whether cl's hierarchy supports batched record reads:
// the single-record strategy, where one decode covers every role section.
func (m *Mapper) Batchable(cl *catalog.Class) bool {
	return m.hier[cl.Base] == HierarchySingleRecord
}

// recBatch is the fixed batch size executors use when prefetching records
// for a domain; exported so the bench harness can size workloads around it.
const recBatch = 256

// RecBatch is the batch size ReadBatch callers should chunk domains by.
func RecBatch() int { return recBatch }

// ReadBatch fills recs[i] with the decoded record of surrs[i], touching
// each cache shard once per batch instead of once per surrogate. Cache
// misses are loaded from storage and published for later readers. Entities
// with no record leave the zero (invalid) Rec in place. The hierarchy must
// be Batchable; recs must be at least as long as surrs.
func (m *Mapper) ReadBatch(cl *catalog.Class, surrs []value.Surrogate, recs []Rec) error {
	base := cl.Base
	stamp := m.readStamp()
	var hits, misses uint64
	// Pass 1: one read-locked sweep per shard resolves every cached entry
	// decoded at this reader's stamp.
	for shard := uint64(0); shard < rcShards; shard++ {
		sh := &m.rc.shards[shard]
		locked := false
		for i, s := range surrs {
			if uint64(s)%rcShards != shard {
				continue
			}
			if !locked {
				sh.mu.RLock()
				locked = true
			}
			if e, ok := sh.m[rcKey{base.ID, s}]; ok && e.stamp == stamp && e.rec != nil {
				recs[i] = Rec{e.rec}
				hits++
			}
		}
		if locked {
			sh.mu.RUnlock()
		}
	}
	// Pass 2: load the misses (these pay storage reads regardless) and —
	// for snapshot views only — publish them for the next batch.
	for i, s := range surrs {
		if recs[i].r != nil {
			continue
		}
		r, err := m.loadRecord(base, s)
		if err != nil {
			return err
		}
		misses++
		if r == nil {
			continue
		}
		recs[i] = Rec{r}
		if m.snap == nil {
			continue
		}
		sh := m.rc.shardOf(s)
		sh.mu.Lock()
		if len(sh.m) >= rcacheCap/rcShards {
			sh.m = make(map[rcKey]rcEntry, rcacheCap/rcShards)
		}
		sh.m[rcKey{base.ID, s}] = rcEntry{rec: r, stamp: stamp}
		sh.mu.Unlock()
	}
	m.rc.hits.Add(hits)
	m.rc.misses.Add(misses)
	return nil
}
