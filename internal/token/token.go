// Package token defines the lexical tokens of the SIM data definition and
// data manipulation languages as described in Jagannathan et al., SIGMOD 1988.
package token

import "strings"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds follow the literal kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // student, Name, courses-enrolled
	INT    // 1729
	NUMBER // 3.14
	STRING // "Algebra I"

	// Operators and delimiters.
	ASSIGN    // :=
	EQ        // =
	NEQ       // neq is a keyword; <> also accepted
	LT        // <
	LE        // <=
	GT        // >
	GE        // >=
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	LPAREN    // (
	RPAREN    // )
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	PERIOD    // .
	DOTDOT    // ..

	keywordBeg
	// Keywords (case-insensitive in source).
	AND
	ALL
	AS
	ASSERT
	AVG
	BY
	CLASS
	COUNT
	CURRENT
	DATE
	DELETE
	DERIVED
	DISTINCT
	ELSE
	EXCLUDE
	FALSE
	FROM
	INCLUDE
	INSERT
	INTEGER
	INVERSE
	IS
	ISA
	LIKE
	MAX
	MAXIMUM
	MIN
	MINIMUM
	MODIFY
	MV
	NEQKW // the word "neq"
	NO
	NOT
	NULL
	NUMBERKW // the word "number"
	OF
	ON
	OR
	ORDER
	REAL
	REQUIRED
	RETRIEVE
	SOME
	STRINGKW // the word "string"
	STRUCTURE
	SUBCLASS
	SUBROLE
	SUM
	SYMBOLIC
	TABLE
	TRANSITIVE
	TRUE
	TYPE
	UNIQUE
	VERIFY
	WHERE
	WITH
	BOOLEAN
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "IDENT",
	INT:       "INT",
	NUMBER:    "NUMBER",
	STRING:    "STRING",
	ASSIGN:    ":=",
	EQ:        "=",
	NEQ:       "NEQ",
	LT:        "<",
	LE:        "<=",
	GT:        ">",
	GE:        ">=",
	PLUS:      "+",
	MINUS:     "-",
	STAR:      "*",
	SLASH:     "/",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACKET:  "[",
	RBRACKET:  "]",
	COMMA:     ",",
	SEMICOLON: ";",
	COLON:     ":",
	PERIOD:    ".",
	DOTDOT:    "..",

	AND:        "AND",
	ALL:        "ALL",
	AS:         "AS",
	ASSERT:     "ASSERT",
	AVG:        "AVG",
	BY:         "BY",
	CLASS:      "CLASS",
	COUNT:      "COUNT",
	CURRENT:    "CURRENT",
	DATE:       "DATE",
	DELETE:     "DELETE",
	DERIVED:    "DERIVED",
	DISTINCT:   "DISTINCT",
	ELSE:       "ELSE",
	EXCLUDE:    "EXCLUDE",
	FALSE:      "FALSE",
	FROM:       "FROM",
	INCLUDE:    "INCLUDE",
	INSERT:     "INSERT",
	INTEGER:    "INTEGER",
	INVERSE:    "INVERSE",
	IS:         "IS",
	ISA:        "ISA",
	LIKE:       "LIKE",
	MAX:        "MAX",
	MAXIMUM:    "MAXIMUM",
	MIN:        "MIN",
	MINIMUM:    "MINIMUM",
	MODIFY:     "MODIFY",
	MV:         "MV",
	NEQKW:      "NEQ",
	NO:         "NO",
	NOT:        "NOT",
	NULL:       "NULL",
	NUMBERKW:   "NUMBER",
	OF:         "OF",
	ON:         "ON",
	OR:         "OR",
	ORDER:      "ORDER",
	REAL:       "REAL",
	REQUIRED:   "REQUIRED",
	RETRIEVE:   "RETRIEVE",
	SOME:       "SOME",
	STRINGKW:   "STRING",
	STRUCTURE:  "STRUCTURE",
	SUBCLASS:   "SUBCLASS",
	SUBROLE:    "SUBROLE",
	SUM:        "SUM",
	SYMBOLIC:   "SYMBOLIC",
	TABLE:      "TABLE",
	TRANSITIVE: "TRANSITIVE",
	TRUE:       "TRUE",
	TYPE:       "TYPE",
	UNIQUE:     "UNIQUE",
	VERIFY:     "VERIFY",
	WHERE:      "WHERE",
	WITH:       "WITH",
	BOOLEAN:    "BOOLEAN",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Kind(?)"
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[strings.ToLower(kindNames[k])] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT when the
// word is not reserved. SIM keywords are case-insensitive.
func Lookup(ident string) Kind {
	if k, ok := keywords[strings.ToLower(ident)]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line, Col int
}

// Token is a lexical unit with its source text and position.
type Token struct {
	Kind Kind
	Text string // original spelling; for STRING, the unquoted value
	Pos  Pos
}
