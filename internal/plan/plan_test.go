package plan

import (
	"fmt"
	"strings"
	"testing"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/dmsii"
	"sim/internal/luc"
	"sim/internal/parser"
	"sim/internal/query"
	"sim/internal/university"
	"sim/internal/value"
)

// testEnv builds a populated mapper for optimizer tests.
func testEnv(t *testing.T, cfg luc.Config, students int) (*catalog.Catalog, *luc.Mapper) {
	t.Helper()
	sch, err := parser.ParseSchema(university.DDL)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Build(sch)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dmsii.OpenMemory(dmsii.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if cfg.Indexes == nil {
		cfg.Indexes = []string{"person.name"}
	}
	m, err := luc.New(store, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := store.Begin()
	if err != nil {
		t.Fatal(err)
	}
	student := cat.Class("student")
	instructor := cat.Class("instructor")
	name := catalog.ResolveAttr(student, "name")
	advisor := catalog.ResolveAttr(student, "advisor")
	var instructors []value.Surrogate
	for i := 0; i < 10; i++ {
		in, err := m.NewEntity(instructor)
		if err != nil {
			t.Fatal(err)
		}
		instructors = append(instructors, in)
	}
	for i := 0; i < students; i++ {
		s, err := m.NewEntity(student)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetSingle(s, name, value.NewString(fmt.Sprintf("S%05d", i))); err != nil {
			t.Fatal(err)
		}
		if i%20 == 0 {
			if err := m.IncludeEVA(s, advisor, instructors[(i/20)%10]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return cat, m
}

func optimize(t *testing.T, cat *catalog.Catalog, m *luc.Mapper, dml string) *Plan {
	t.Helper()
	s, err := parser.ParseStmt(dml)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := query.Bind(cat, s.(*ast.RetrieveStmt))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(tree, m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScanWhenNoPredicate(t *testing.T) {
	cat, m := testEnv(t, luc.Config{}, 100)
	p := optimize(t, cat, m, `From student Retrieve name.`)
	if _, ok := p.Access[0].(*ScanAccess); !ok {
		t.Errorf("access = %T, want scan", p.Access[0])
	}
}

func TestUniqueBeatsEverything(t *testing.T) {
	cat, m := testEnv(t, luc.Config{}, 100)
	p := optimize(t, cat, m, `From person Retrieve name Where soc-sec-no = 5.`)
	u, ok := p.Access[0].(*UniqueAccess)
	if !ok {
		t.Fatalf("access = %T, want unique", p.Access[0])
	}
	if u.Key.Int() != 5 {
		t.Errorf("key = %v", u.Key)
	}
}

func TestIndexRangeChosenForSelectiveRange(t *testing.T) {
	cat, m := testEnv(t, luc.Config{}, 500)
	p := optimize(t, cat, m, `From person Retrieve soc-sec-no Where name >= "S00490" and name <= "S00495".`)
	if _, ok := p.Access[0].(*RangeAccess); !ok {
		t.Errorf("access = %s, want index range", p.Access[0].Describe())
	}
}

func TestScanChosenForWideRange(t *testing.T) {
	cat, m := testEnv(t, luc.Config{}, 500)
	p := optimize(t, cat, m, `From person Retrieve soc-sec-no Where name >= "A".`)
	if _, ok := p.Access[0].(*ScanAccess); !ok {
		t.Errorf("access = %s, want scan for an unselective range", p.Access[0].Describe())
	}
}

func TestPivotChosenForRelatedPredicate(t *testing.T) {
	cat, m := testEnv(t, luc.Config{}, 500)
	p := optimize(t, cat, m, `From student Retrieve soc-sec-no Where name of advisor = "X".`)
	pv, ok := p.Access[0].(*PivotAccess)
	if !ok {
		t.Fatalf("access = %s, want pivot", p.Access[0].Describe())
	}
	if len(pv.Up) != 1 || !strings.EqualFold(pv.Up[0].Name, "advisor") {
		t.Errorf("pivot path = %v", pv.Up)
	}
}

func TestNoPivotThroughTransitive(t *testing.T) {
	cat, m := testEnv(t, luc.Config{Indexes: []string{"person.name", "course.title"}}, 100)
	p := optimize(t, cat, m, `From course Retrieve course-no Where title of transitive(prerequisites) = "X".`)
	if _, ok := p.Access[0].(*PivotAccess); ok {
		t.Error("pivot chosen through a transitive edge")
	}
}

func TestSargExtraction(t *testing.T) {
	cat, m := testEnv(t, luc.Config{}, 50)
	// OR blocks sargs; only top-level conjuncts count.
	p := optimize(t, cat, m, `From person Retrieve name Where soc-sec-no = 5 or name = "x".`)
	if _, ok := p.Access[0].(*ScanAccess); !ok {
		t.Errorf("OR predicate used an index: %s", p.Access[0].Describe())
	}
	// Reversed literal side still sargs.
	p = optimize(t, cat, m, `From person Retrieve name Where 5 = soc-sec-no.`)
	if _, ok := p.Access[0].(*UniqueAccess); !ok {
		t.Errorf("reversed comparison not sargable: %s", p.Access[0].Describe())
	}
}

func TestExplainMentionsEveryRoot(t *testing.T) {
	cat, m := testEnv(t, luc.Config{}, 50)
	p := optimize(t, cat, m, `From student s1, student s2 Retrieve name of s1 Where soc-sec-no of s1 = soc-sec-no of s2.`)
	ex := p.Explain()
	if !strings.Contains(ex, "s1") || !strings.Contains(ex, "s2") {
		t.Errorf("explain = %q", ex)
	}
	if len(p.Access) != 2 {
		t.Errorf("access paths = %d", len(p.Access))
	}
}

func TestCostMonotoneInCardinality(t *testing.T) {
	catSmall, mSmall := testEnv(t, luc.Config{}, 50)
	catBig, mBig := testEnv(t, luc.Config{}, 1000)
	q := `From student Retrieve name.`
	ps := optimize(t, catSmall, mSmall, q)
	pb := optimize(t, catBig, mBig, q)
	if ps.Est >= pb.Est {
		t.Errorf("estimated cost not monotone: %f vs %f", ps.Est, pb.Est)
	}
}
