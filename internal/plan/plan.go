// Package plan implements SIM's query optimizer (§5.1): it builds a query
// graph over the LUC objects of a bound query tree, enumerates access
// strategies, estimates each strategy's cost from catalog statistics
// (cardinalities, index availability, and the first/next-instance costs of
// each relationship's physical mapping), and picks the cheapest. A
// strategy that enumerates the perspective through an inverted
// relationship path ("pivot") breaks the DML's implicit perspective
// ordering; restoring it costs a sort, which the model charges — the
// paper's semantics-preservation test.
package plan

import (
	"fmt"
	"strings"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/luc"
	"sim/internal/query"
	"sim/internal/value"
)

// Bound is an optionally-set range bound with a literal value.
type Bound struct {
	Set       bool
	Inclusive bool
	Val       value.Value
}

// RootAccess is the chosen access path for one perspective root.
type RootAccess interface {
	Describe() string
	Cost() float64
}

// ScanAccess enumerates the whole class LUC.
type ScanAccess struct {
	Class *catalog.Class
	cost  float64
}

// Describe implements RootAccess.
func (a *ScanAccess) Describe() string { return "scan " + strings.ToLower(a.Class.Name) }

// Cost implements RootAccess.
func (a *ScanAccess) Cost() float64 { return a.cost }

// UniqueAccess resolves the root by a unique-index point lookup.
type UniqueAccess struct {
	Attr *catalog.Attribute
	Key  value.Value
	cost float64
}

// Describe implements RootAccess.
func (a *UniqueAccess) Describe() string {
	return fmt.Sprintf("unique lookup %s = %s", strings.ToLower(a.Attr.Name), a.Key)
}

// Cost implements RootAccess.
func (a *UniqueAccess) Cost() float64 { return a.cost }

// RangeAccess resolves the root by a secondary-index range scan.
type RangeAccess struct {
	Attr   *catalog.Attribute
	Lo, Hi Bound
	cost   float64
}

// Describe implements RootAccess.
func (a *RangeAccess) Describe() string {
	return fmt.Sprintf("index range on %s", strings.ToLower(a.Attr.Name))
}

// Cost implements RootAccess.
func (a *RangeAccess) Cost() float64 { return a.cost }

// PivotAccess enumerates the root by evaluating a selective predicate on a
// descendant node's index and walking the inverse EVA chain back to the
// perspective, then sorting the surrogate set to restore perspective order.
type PivotAccess struct {
	Start  *query.Node
	Attr   *catalog.Attribute
	Lo, Hi Bound
	// Up lists the EVA edges from Start back to the root: Up[0] is
	// Start.Edge, Up[len-1] the edge below the root. Traversal uses each
	// edge's inverse.
	Up   []*catalog.Attribute
	cost float64
}

// Describe implements RootAccess.
func (a *PivotAccess) Describe() string {
	return fmt.Sprintf("pivot from %s via index on %s (+sort)", a.Start.Label(), strings.ToLower(a.Attr.Name))
}

// Cost implements RootAccess.
func (a *PivotAccess) Cost() float64 { return a.cost }

// Plan is an executable strategy for a bound query tree.
type Plan struct {
	Tree   *query.Tree
	Access []RootAccess // parallel to Tree.Roots
	Est    float64      // total estimated cost
}

// Explain renders the chosen strategy.
func (p *Plan) Explain() string {
	var b strings.Builder
	for i, r := range p.Tree.Roots {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %s", r.Label(), p.Access[i].Describe())
	}
	fmt.Fprintf(&b, " (est cost %.1f)", p.Est)
	return b.String()
}

// sarg is a sargable conjunct: attr(node) op lit.
type sarg struct {
	node *query.Node
	attr *catalog.Attribute
	op   ast.BinaryOp
	val  value.Value
}

// Optimize picks the cheapest access strategy for each perspective root.
func Optimize(t *query.Tree, m *luc.Mapper) (*Plan, error) {
	sargs := extractSargs(t.Where)
	p := &Plan{Tree: t}
	for _, root := range t.Roots {
		best, err := bestAccess(t, m, root, sargs)
		if err != nil {
			return nil, err
		}
		p.Access = append(p.Access, best)
		p.Est += best.Cost()
	}
	// Downstream traversal cost: every main/exist node contributes its
	// expected visits weighted by its relationship's first-instance cost.
	p.Est += traversalCost(t, m)
	return p, nil
}

// extractSargs splits the WHERE into top-level conjuncts and keeps the
// index-usable comparisons of the form <attr> op <literal>.
func extractSargs(e query.Expr) []sarg {
	var out []sarg
	var conj func(e query.Expr)
	conj = func(e query.Expr) {
		b, ok := e.(*query.Binary)
		if !ok {
			return
		}
		if b.Op == ast.OpAnd {
			conj(b.L)
			conj(b.R)
			return
		}
		attr, lit, op, ok := sargParts(b)
		if !ok {
			return
		}
		out = append(out, sarg{node: attr.Node, attr: attr.Attr, op: op, val: lit.Val})
	}
	conj(e)
	return out
}

// sargParts normalizes a comparison to attr-op-lit form, flipping the
// operator when the literal is on the left.
func sargParts(b *query.Binary) (*query.AttrRef, *query.Lit, ast.BinaryOp, bool) {
	switch b.Op {
	case ast.OpEQ, ast.OpLT, ast.OpLE, ast.OpGT, ast.OpGE:
	default:
		return nil, nil, 0, false
	}
	if a, ok := b.L.(*query.AttrRef); ok {
		if l, ok := b.R.(*query.Lit); ok && a.Attr.Kind == catalog.DVA && !a.Attr.Options.MV {
			return a, l, b.Op, true
		}
	}
	if a, ok := b.R.(*query.AttrRef); ok {
		if l, ok := b.L.(*query.Lit); ok && a.Attr.Kind == catalog.DVA && !a.Attr.Options.MV {
			return a, l, flip(b.Op), true
		}
	}
	return nil, nil, 0, false
}

func flip(op ast.BinaryOp) ast.BinaryOp {
	switch op {
	case ast.OpLT:
		return ast.OpGT
	case ast.OpLE:
		return ast.OpGE
	case ast.OpGT:
		return ast.OpLT
	case ast.OpGE:
		return ast.OpLE
	}
	return op
}

func bounds(op ast.BinaryOp, v value.Value) (lo, hi Bound) {
	switch op {
	case ast.OpEQ:
		lo = Bound{Set: true, Inclusive: true, Val: v}
		hi = lo
	case ast.OpLT:
		hi = Bound{Set: true, Inclusive: false, Val: v}
	case ast.OpLE:
		hi = Bound{Set: true, Inclusive: true, Val: v}
	case ast.OpGT:
		lo = Bound{Set: true, Inclusive: false, Val: v}
	case ast.OpGE:
		lo = Bound{Set: true, Inclusive: true, Val: v}
	}
	return lo, hi
}

// probeLimit bounds the optimizer's index-probing selectivity estimate.
const probeLimit = 128

// estMatches estimates how many index entries satisfy a sarg, probing the
// index up to probeLimit entries and falling back to fixed heuristics for
// wider predicates.
func estMatches(m *luc.Mapper, s sarg, classCard int64) (float64, error) {
	if classCard < 1 {
		classCard = 1
	}
	if s.op == ast.OpEQ && s.attr.Options.Unique {
		return 1, nil
	}
	lo, hi := bounds(s.op, s.val)
	n, capped, err := m.IndexCountApprox(s.attr, lucIdxBound(lo), lucIdxBound(hi), probeLimit)
	if err != nil {
		return 0, err
	}
	if !capped {
		return float64(n), nil
	}
	// Beyond the probe horizon: the classic System-R style heuristics —
	// equality 1/10, one-sided inequality 1/2.
	est := float64(classCard) / 2
	if s.op == ast.OpEQ {
		est = float64(classCard) / 10
	}
	if est < float64(n) {
		est = float64(n)
	}
	return est, nil
}

func lucIdxBound(b Bound) luc.Bound {
	return luc.Bound{Set: b.Set, Inclusive: b.Inclusive, Value: b.Val}
}

// sortCostPerEntry weights the in-memory surrogate sort restoring
// perspective order, relative to one block access.
const sortCostPerEntry = 0.05

func bestAccess(t *query.Tree, m *luc.Mapper, root *query.Node, sargs []sarg) (RootAccess, error) {
	n, err := m.Count(root.Class)
	if err != nil {
		return nil, err
	}
	card := float64(n)
	if card < 1 {
		card = 1
	}
	var best RootAccess = &ScanAccess{Class: root.Class, cost: card}

	consider := func(a RootAccess) {
		if a.Cost() < best.Cost() {
			best = a
		}
	}

	for _, s := range sargs {
		if !m.HasIndex(s.attr) {
			continue
		}
		if s.node == root {
			if s.op == ast.OpEQ && s.attr.Options.Unique {
				consider(&UniqueAccess{Attr: s.attr, Key: s.val, cost: 2})
				continue
			}
			lo, hi := bounds(s.op, s.val)
			k, err := estMatches(m, s, n)
			if err != nil {
				return nil, err
			}
			// Index entries plus the random record fetch per match.
			consider(&RangeAccess{Attr: s.attr, Lo: lo, Hi: hi, cost: 1 + k*2.2})
			continue
		}
		// Pivot: the predicate sits on a descendant reachable through an
		// invertible EVA chain from this root.
		up, ok := invertiblePath(s.node, root)
		if !ok {
			continue
		}
		startCard, err := m.Count(s.node.Class)
		if err != nil {
			return nil, err
		}
		k, err := estMatches(m, s, startCard)
		if err != nil {
			return nil, err
		}
		cost := 1 + k*1.2 // index scan on the start class
		// Walk the inverse chain: each level multiplies by the inverse
		// fanout and pays per-instance traversal cost.
		set := k
		for _, edge := range up {
			first, next := m.TraversalCost(edge.Inverse)
			fan, err := inverseFanout(m, edge)
			if err != nil {
				return nil, err
			}
			cost += set * (first + next*fan)
			set *= fan
		}
		// Restoring perspective order: sort the surrogate set (§5.1's
		// reordering cost for a non-semantics-preserving transformation).
		cost += set * log2(set+2) * sortCostPerEntry
		lo, hi := bounds(s.op, s.val)
		consider(&PivotAccess{Start: s.node, Attr: s.attr, Lo: lo, Hi: hi, Up: up, cost: cost})
	}
	return best, nil
}

// invertiblePath returns the EVA edges from node up to root (node-first),
// when every step is a non-transitive EVA.
func invertiblePath(n *query.Node, root *query.Node) ([]*catalog.Attribute, bool) {
	var up []*catalog.Attribute
	for cur := n; cur != root; cur = cur.Parent {
		if cur.Parent == nil || cur.Edge == nil || cur.Edge.Kind != catalog.EVA || cur.Transitive || cur.Sub {
			return nil, false
		}
		up = append(up, cur.Edge)
	}
	return up, true
}

// inverseFanout estimates partners per entity when traversing edge's
// inverse.
func inverseFanout(m *luc.Mapper, edge *catalog.Attribute) (float64, error) {
	inst, err := m.RelCount(edge)
	if err != nil {
		return 0, err
	}
	targets, err := m.Count(edge.Range)
	if err != nil {
		return 0, err
	}
	if targets < 1 {
		return 1, nil
	}
	f := float64(inst) / float64(targets)
	if f < 0.1 {
		f = 0.1
	}
	return f, nil
}

// fanout estimates partners per entity when traversing edge forward.
func fanout(m *luc.Mapper, edge *catalog.Attribute) (float64, error) {
	if edge.Kind != catalog.EVA {
		return 3, nil // MV DVA heuristic
	}
	inst, err := m.RelCount(edge)
	if err != nil {
		return 0, err
	}
	owners, err := m.Count(edge.Owner)
	if err != nil {
		return 0, err
	}
	if owners < 1 {
		return 1, nil
	}
	f := float64(inst) / float64(owners)
	if f < 0.1 {
		f = 0.1
	}
	return f, nil
}

// traversalCost sums expected relationship-instance accesses over the
// tree's non-root nodes, each weighted by the mapping-dependent first/next
// costs of §5.1 ("the I/O cost of accessing the first instance of a
// relationship will be 0 if the relationship is implemented by clustering
// and 1 block access if it is implemented by absolute addresses").
func traversalCost(t *query.Tree, m *luc.Mapper) float64 {
	visits := make(map[*query.Node]float64)
	total := 0.0
	var rec func(n *query.Node, parentVisits float64) float64
	rec = func(n *query.Node, parentVisits float64) float64 {
		cost := 0.0
		for _, c := range n.Children {
			if c.Sub {
				continue
			}
			var fan float64
			if c.Edge != nil {
				fan, _ = fanout(m, c.Edge)
			} else {
				fan = 1
			}
			first, next := 1.0, 0.2
			if c.Edge != nil && c.Edge.Kind == catalog.EVA {
				first, next = m.TraversalCost(c.Edge)
			}
			cost += parentVisits * (first + next*fan)
			visits[c] = parentVisits * fan
			cost += rec(c, visits[c])
		}
		return cost
	}
	for _, r := range t.Roots {
		rootCard, _ := m.Count(r.Class)
		if rootCard < 1 {
			rootCard = 1
		}
		total += rec(r, float64(rootCard))
	}
	return total
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
