package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sim/internal/exec"
	"sim/internal/value"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, TQuery, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		typ, got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != TQuery || !bytes.Equal(got, p) && len(p) > 0 {
			t.Fatalf("frame round trip: got %v %q, want %q", typ, got, p)
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TQuery, bytes.Repeat([]byte("a"), 100)); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadFrame(&buf, 50)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame error = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsZeroLength(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0, 0}), 0)
	if err == nil || !strings.Contains(err.Error(), "zero-length") {
		t.Fatalf("zero-length frame error = %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	v, err := DecodeHello(EncodeHello())
	if err != nil || v != Version {
		t.Fatalf("hello round trip: v=%d err=%v", v, err)
	}
	if _, err := DecodeHello([]byte("HTTP/1.1 400")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeHello([]byte("SIM")); err == nil {
		t.Fatal("short hello accepted")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e, err := DecodeError(EncodeError(CodeParse, "at 1:1: boom"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeParse || e.Msg != "at 1:1: boom" {
		t.Fatalf("error round trip: %+v", e)
	}
	if !strings.Contains(e.Error(), "parse") {
		t.Fatalf("Error() = %q", e.Error())
	}
	if _, err := DecodeError(nil); err == nil {
		t.Fatal("empty error frame accepted")
	}
}

func TestCountRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 1729, 1 << 30} {
		got, err := DecodeCount(EncodeCount(n))
		if err != nil || got != n {
			t.Fatalf("count %d: got %d err %v", n, got, err)
		}
	}
	if _, err := DecodeCount(append(EncodeCount(3), 'x')); err == nil {
		t.Fatal("trailing bytes accepted in count frame")
	}
}

func TestServerStatsRoundTrip(t *testing.T) {
	in := ServerStats{Connections: 12, Active: 3, Requests: 9001, BytesIn: 1 << 40, BytesOut: 7, Errors: 2}
	out, err := DecodeServerStats(EncodeServerStats(in))
	if err != nil || out != in {
		t.Fatalf("stats round trip: %+v err %v", out, err)
	}
	if _, err := DecodeServerStats([]byte{1, 2}); err == nil {
		t.Fatal("truncated stats accepted")
	}
}

// sampleResult builds a result exercising every value kind plus the
// structured group tree.
func sampleResult(t *testing.T) *exec.Result {
	t.Helper()
	date, err := value.ParseDate("1988-06-01")
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]value.Value{
		{value.NewInt(-42), value.NewString("Doe, John"), value.Null},
		{value.NewNumber(3.25), value.NewBool(true), date},
		{value.NewSymbolic("PHD", 3), value.NewSurrogate(1729), value.NewString("")},
	}
	g := &exec.Group{Label: "result", Children: []*exec.Group{
		{Label: "student", Level: 0, Values: []value.Value{value.NewString("a")}, Indexes: []int{0},
			Children: []*exec.Group{{Label: "course", Level: 2, Values: []value.Value{value.NewInt(7)}, Indexes: []int{1}}}},
	}}
	return exec.RemoteResult([]string{"a", "b", "c"}, rows, g, exec.Stats{Instances: 99, Rows: 3})
}

func TestResultRoundTrip(t *testing.T) {
	in := sampleResult(t)
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Format() != in.Format() {
		t.Fatalf("tabular format diverged:\n%s\nvs\n%s", out.Format(), in.Format())
	}
	if out.FormatStructured() != in.FormatStructured() {
		t.Fatalf("structured format diverged:\n%s\nvs\n%s", out.FormatStructured(), in.FormatStructured())
	}
	if out.Stats != in.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", out.Stats, in.Stats)
	}
	if out.NumRows() != 3 {
		t.Fatalf("NumRows = %d", out.NumRows())
	}
}

func TestResultNoStructure(t *testing.T) {
	in := exec.RemoteResult([]string{"n"}, nil, nil, exec.Stats{})
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Structured != nil || out.NumRows() != 0 {
		t.Fatalf("empty result decoded to %+v", out)
	}
}

// TestDecodeResultRejectsCorruption truncates and flips bytes of a valid
// encoding at every offset; the decoder must fail or succeed cleanly but
// never panic (the fuzz harness explores far beyond this).
func TestDecodeResultRejectsCorruption(t *testing.T) {
	b := EncodeResult(sampleResult(t))
	for i := 0; i < len(b); i++ {
		DecodeResult(b[:i])
		mut := bytes.Clone(b)
		mut[i] ^= 0xFF
		DecodeResult(mut)
	}
}

func TestDecodeResultHostileLengths(t *testing.T) {
	// A column count of 2^40 with no column bytes must not allocate.
	var b []byte
	b = append(b, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // huge uvarint
	if _, err := DecodeResult(b); err == nil {
		t.Fatal("hostile column count accepted")
	}
}
