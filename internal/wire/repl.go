package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Replication frames. A follower opens a normal Hello session, then sends
// one ReplHello carrying the primary epoch and publisher run it last
// followed and the last position it durably applied. The server answers
// with a stream: either ReplFrames continuing from that position, or —
// when the epoch/run is stale or the position has been evicted from the
// primary's in-memory tail — a base snapshot (ReplSnapshot chunks)
// followed by ReplFrames from the snapshot position. The follower sends
// ReplAck frames back on the same connection as it applies; the primary
// uses them only for staleness reporting, never for commit acknowledgment
// (replication is async).
//
// Epoch is the persisted fencing term: it advances only on promotion, and
// a primary that learns of a higher epoch (via ReplHello or Retarget)
// fences itself. Run is a random nonce drawn each time a publisher opens;
// positions are only comparable within one (epoch, run) pair, so a
// follower may resume a stream only when both match — anything else
// forces a re-snapshot.
//
// Positions are assigned by the publisher, monotonically per run,
// starting at 1; position 0 in a ReplFrames frame marks a heartbeat
// (no pages, just the primary's latest position for lag estimation).

// ReplHello is the follower's subscribe request.
type ReplHello struct {
	Epoch uint64 // primary epoch last followed; 0 = none
	Run   uint64 // publisher run the position belongs to; 0 = none
	Pos   uint64 // last position durably applied; 0 = none
}

// EncodeReplHello builds a ReplHello payload.
func EncodeReplHello(h ReplHello) []byte {
	b := binary.AppendUvarint(nil, h.Epoch)
	b = binary.AppendUvarint(b, h.Run)
	return binary.AppendUvarint(b, h.Pos)
}

// DecodeReplHello decodes a ReplHello payload.
func DecodeReplHello(b []byte) (ReplHello, error) {
	var h ReplHello
	for _, f := range []*uint64{&h.Epoch, &h.Run, &h.Pos} {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return ReplHello{}, fmt.Errorf("wire: bad repl hello frame")
		}
		*f = v
		b = b[n:]
	}
	if len(b) != 0 {
		return ReplHello{}, fmt.Errorf("wire: trailing bytes in repl hello frame")
	}
	return h, nil
}

// EncodeReplAck builds a ReplAck payload: the follower's applied position.
func EncodeReplAck(pos uint64) []byte {
	return binary.AppendUvarint(nil, pos)
}

// DecodeReplAck decodes a ReplAck payload.
func DecodeReplAck(b []byte) (uint64, error) {
	pos, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return 0, fmt.Errorf("wire: bad repl ack frame")
	}
	return pos, nil
}

// ReplSnapshot is one chunk of a base database image. Total is the image
// length in bytes and Offset the chunk's position in it; the follower
// buffers chunks until Offset+len(Chunk) == Total, then installs the
// image atomically. Pos is the publisher position the image is current
// as of; Gen is the primary's schema generation at that point.
type ReplSnapshot struct {
	Epoch  uint64
	Run    uint64
	Pos    uint64
	Gen    uint64
	Total  uint64
	Offset uint64
	Chunk  []byte
}

// EncodeReplSnapshot builds a ReplSnapshot payload.
func EncodeReplSnapshot(s ReplSnapshot) []byte {
	b := binary.AppendUvarint(nil, s.Epoch)
	b = binary.AppendUvarint(b, s.Run)
	b = binary.AppendUvarint(b, s.Pos)
	b = binary.AppendUvarint(b, s.Gen)
	b = binary.AppendUvarint(b, s.Total)
	b = binary.AppendUvarint(b, s.Offset)
	return append(b, s.Chunk...)
}

// DecodeReplSnapshot decodes a ReplSnapshot payload. The Chunk slice
// aliases b; callers that retain it past the frame buffer's reuse must
// copy.
func DecodeReplSnapshot(b []byte) (ReplSnapshot, error) {
	var s ReplSnapshot
	for _, f := range []*uint64{&s.Epoch, &s.Run, &s.Pos, &s.Gen, &s.Total, &s.Offset} {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return ReplSnapshot{}, fmt.Errorf("wire: bad repl snapshot frame")
		}
		*f = v
		b = b[n:]
	}
	if s.Offset > s.Total || uint64(len(b)) > s.Total-s.Offset {
		return ReplSnapshot{}, fmt.Errorf("wire: repl snapshot chunk overruns total")
	}
	s.Chunk = b
	return s, nil
}

// ReplFrames is one committed page group: the publisher position it
// advances the follower to, the primary's latest position (for lag
// estimation), the schema generation the group was committed under, the
// request IDs of the commits merged into the group (trace-context
// propagation: the follower records them on apply), the primary's
// wall-clock at publish (unix nanoseconds, for staleness estimation; 0 =
// unknown), and the page images. Pos == 0 marks a heartbeat: no pages,
// Latest still current.
type ReplFrames struct {
	Epoch  uint64
	Run    uint64
	Pos    uint64
	Latest uint64
	Gen    uint64
	TS     uint64
	IDs    []uint64
	Pages  []ReplPage
}

// maxReplFrameIDs bounds the decoded request-ID list against hostile
// lengths (a flush group merges at most a few hundred commits).
const maxReplFrameIDs = 1 << 16

// ReplPage is one page image inside a ReplFrames frame.
type ReplPage struct {
	ID   uint32
	Data []byte
}

// EncodeReplFrames builds a ReplFrames payload.
func EncodeReplFrames(f ReplFrames) []byte {
	b := binary.AppendUvarint(nil, f.Epoch)
	b = binary.AppendUvarint(b, f.Run)
	b = binary.AppendUvarint(b, f.Pos)
	b = binary.AppendUvarint(b, f.Latest)
	b = binary.AppendUvarint(b, f.Gen)
	b = binary.AppendUvarint(b, f.TS)
	b = binary.AppendUvarint(b, uint64(len(f.IDs)))
	for _, id := range f.IDs {
		b = binary.AppendUvarint(b, id)
	}
	b = binary.AppendUvarint(b, uint64(len(f.Pages)))
	for _, p := range f.Pages {
		b = binary.AppendUvarint(b, uint64(p.ID))
		b = binary.AppendUvarint(b, uint64(len(p.Data)))
		b = append(b, p.Data...)
	}
	return b
}

// DecodeReplFrames decodes a ReplFrames payload. Page Data slices alias
// b; callers that retain them past the frame buffer's reuse must copy.
func DecodeReplFrames(b []byte) (ReplFrames, error) {
	var f ReplFrames
	var nids uint64
	for _, dst := range []*uint64{&f.Epoch, &f.Run, &f.Pos, &f.Latest, &f.Gen, &f.TS, &nids} {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return ReplFrames{}, fmt.Errorf("wire: bad repl frames frame")
		}
		*dst = v
		b = b[n:]
	}
	if nids > maxReplFrameIDs || nids > uint64(len(b)) { // every ID needs ≥1 byte
		return ReplFrames{}, fmt.Errorf("wire: repl frames ID count overruns frame")
	}
	if nids > 0 {
		f.IDs = make([]uint64, 0, nids)
	}
	for i := uint64(0); i < nids; i++ {
		id, n := binary.Uvarint(b)
		if n <= 0 {
			return ReplFrames{}, fmt.Errorf("wire: bad repl frames request ID")
		}
		b = b[n:]
		f.IDs = append(f.IDs, id)
	}
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return ReplFrames{}, fmt.Errorf("wire: bad repl frames frame")
	}
	b = b[n:]
	if count > uint64(len(b)) { // every page needs ≥1 byte of encoding
		return ReplFrames{}, fmt.Errorf("wire: repl frames page count overruns frame")
	}
	if count > 0 {
		f.Pages = make([]ReplPage, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(b)
		if n <= 0 || id > math.MaxUint32 {
			return ReplFrames{}, fmt.Errorf("wire: bad repl frames page id")
		}
		b = b[n:]
		size, n := binary.Uvarint(b)
		if n <= 0 || size > uint64(len(b)-n) {
			return ReplFrames{}, fmt.Errorf("wire: repl frames page overruns frame")
		}
		b = b[n:]
		f.Pages = append(f.Pages, ReplPage{ID: uint32(id), Data: b[:size]})
		b = b[size:]
	}
	if len(b) != 0 {
		return ReplFrames{}, fmt.Errorf("wire: trailing bytes in repl frames frame")
	}
	return f, nil
}

// ReplStatus is the replication status a node reports in a ReplStatusOK
// frame. On a primary, Replicas describes each connected follower; on a
// follower, exactly one entry describes its own apply progress against
// its primary.
type ReplStatus struct {
	Role     string // "primary", "replica", or "none"
	Epoch    uint64
	Latest   uint64 // primary: newest published position; follower: primary's latest seen
	Replicas []ReplicaInfo
}

// ReplicaInfo is one follower's progress as seen by the reporting node.
type ReplicaInfo struct {
	Addr   string
	State  string // "snapshot", "streaming", "connected", "connecting", ...
	Pos    uint64 // last position the follower acked (or applied, on a follower)
	Latest uint64 // primary's position when Pos was recorded
	AgeMs  uint64 // milliseconds since the last ack/apply
}

// Lag returns the follower's position lag in commit groups.
func (r ReplicaInfo) Lag() uint64 {
	if r.Latest < r.Pos {
		return 0
	}
	return r.Latest - r.Pos
}

func (s ReplStatus) String() string {
	out := fmt.Sprintf("role=%s epoch=%d latest=%d replicas=%d", s.Role, s.Epoch, s.Latest, len(s.Replicas))
	for _, r := range s.Replicas {
		out += fmt.Sprintf("\n  %s state=%s pos=%d lag=%d age=%dms", r.Addr, r.State, r.Pos, r.Lag(), r.AgeMs)
	}
	return out
}

// maxReplStatus bounds the decoded shape of a ReplStatus frame against
// hostile lengths.
const (
	maxReplStatusStr      = 256
	maxReplStatusReplicas = 1 << 12
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	size, n := binary.Uvarint(b)
	if n <= 0 || size > maxReplStatusStr || size > uint64(len(b)-n) {
		return "", nil, fmt.Errorf("wire: bad string in repl status frame")
	}
	return string(b[n : n+int(size)]), b[n+int(size):], nil
}

// EncodeReplStatus builds a ReplStatusOK payload.
func EncodeReplStatus(s ReplStatus) []byte {
	b := appendString(nil, s.Role)
	b = binary.AppendUvarint(b, s.Epoch)
	b = binary.AppendUvarint(b, s.Latest)
	b = binary.AppendUvarint(b, uint64(len(s.Replicas)))
	for _, r := range s.Replicas {
		b = appendString(b, r.Addr)
		b = appendString(b, r.State)
		b = binary.AppendUvarint(b, r.Pos)
		b = binary.AppendUvarint(b, r.Latest)
		b = binary.AppendUvarint(b, r.AgeMs)
	}
	return b
}

// EncodePromoteOK builds a PromoteOK payload: the epoch the promoted node
// now publishes under.
func EncodePromoteOK(epoch uint64) []byte {
	return binary.AppendUvarint(nil, epoch)
}

// DecodePromoteOK decodes a PromoteOK payload.
func DecodePromoteOK(b []byte) (uint64, error) {
	epoch, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return 0, fmt.Errorf("wire: bad promote ok frame")
	}
	return epoch, nil
}

// Retarget is the failover admin frame. Sent to a replica it re-points
// the follower at Addr (Epoch is advisory). Sent to a primary it is the
// active fencing vector: a node that receives a Retarget carrying an
// epoch higher than its own demotes to read-only and, when Addr is
// non-empty, rejoins the cluster as a follower of Addr.
type Retarget struct {
	Epoch uint64 // the sender's epoch; 0 = no fencing claim
	Addr  string // address of the (new) primary; "" = fence only
}

// EncodeRetarget builds a Retarget payload.
func EncodeRetarget(r Retarget) []byte {
	b := binary.AppendUvarint(nil, r.Epoch)
	return append(b, r.Addr...)
}

// DecodeRetarget decodes a Retarget payload.
func DecodeRetarget(b []byte) (Retarget, error) {
	epoch, n := binary.Uvarint(b)
	if n <= 0 || len(b)-n > maxReplStatusStr {
		return Retarget{}, fmt.Errorf("wire: bad retarget frame")
	}
	return Retarget{Epoch: epoch, Addr: string(b[n:])}, nil
}

// DecodeReplStatus decodes a ReplStatusOK payload.
func DecodeReplStatus(b []byte) (ReplStatus, error) {
	var s ReplStatus
	var err error
	if s.Role, b, err = readString(b); err != nil {
		return ReplStatus{}, err
	}
	var count uint64
	for _, dst := range []*uint64{&s.Epoch, &s.Latest, &count} {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return ReplStatus{}, fmt.Errorf("wire: bad repl status frame")
		}
		*dst = v
		b = b[n:]
	}
	if count > maxReplStatusReplicas || count > uint64(len(b)) {
		return ReplStatus{}, fmt.Errorf("wire: repl status replica count overruns frame")
	}
	if count > 0 {
		s.Replicas = make([]ReplicaInfo, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		var r ReplicaInfo
		if r.Addr, b, err = readString(b); err != nil {
			return ReplStatus{}, err
		}
		if r.State, b, err = readString(b); err != nil {
			return ReplStatus{}, err
		}
		for _, dst := range []*uint64{&r.Pos, &r.Latest, &r.AgeMs} {
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return ReplStatus{}, fmt.Errorf("wire: bad repl status frame")
			}
			*dst = v
			b = b[n:]
		}
		s.Replicas = append(s.Replicas, r)
	}
	if len(b) != 0 {
		return ReplStatus{}, fmt.Errorf("wire: trailing bytes in repl status frame")
	}
	return s, nil
}
