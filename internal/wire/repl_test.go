package wire

import (
	"bytes"
	"testing"
)

func TestReplHelloRoundTrip(t *testing.T) {
	for _, h := range []ReplHello{{}, {Epoch: 1, Pos: 0}, {Epoch: 1<<63 | 5, Run: 1 << 62, Pos: 1 << 40}} {
		got, err := DecodeReplHello(EncodeReplHello(h))
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
	if _, err := DecodeReplHello(nil); err == nil {
		t.Fatal("empty hello decoded")
	}
	if _, err := DecodeReplHello(append(EncodeReplHello(ReplHello{Epoch: 1}), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	for _, pos := range []uint64{0, 1, 1 << 50} {
		got, err := DecodeReplAck(EncodeReplAck(pos))
		if err != nil || got != pos {
			t.Fatalf("round trip %d -> %d, %v", pos, got, err)
		}
	}
	if _, err := DecodeReplAck(nil); err == nil {
		t.Fatal("empty ack decoded")
	}
	if _, err := DecodeReplAck([]byte{0x80}); err == nil {
		t.Fatal("truncated uvarint accepted")
	}
}

func TestReplSnapshotRoundTrip(t *testing.T) {
	s := ReplSnapshot{Epoch: 7, Run: 99, Pos: 42, Gen: 3, Total: 10, Offset: 4, Chunk: []byte("abcdef")}
	got, err := DecodeReplSnapshot(EncodeReplSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != s.Epoch || got.Run != s.Run || got.Pos != s.Pos || got.Gen != s.Gen ||
		got.Total != s.Total || got.Offset != s.Offset || !bytes.Equal(got.Chunk, s.Chunk) {
		t.Fatalf("round trip %+v -> %+v", s, got)
	}
	// A chunk that overruns its declared total must be rejected.
	bad := EncodeReplSnapshot(ReplSnapshot{Total: 2, Offset: 0, Chunk: []byte("abc")})
	if _, err := DecodeReplSnapshot(bad); err == nil {
		t.Fatal("overrunning chunk accepted")
	}
	bad = EncodeReplSnapshot(ReplSnapshot{Total: 2, Offset: 3})
	if _, err := DecodeReplSnapshot(bad); err == nil {
		t.Fatal("offset past total accepted")
	}
}

func TestReplFramesRoundTrip(t *testing.T) {
	f := ReplFrames{
		Epoch:  9,
		Run:    77,
		Pos:    100,
		Latest: 104,
		Gen:    2,
		Pages: []ReplPage{
			{ID: 0, Data: []byte("meta")},
			{ID: 7, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		},
	}
	got, err := DecodeReplFrames(EncodeReplFrames(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != f.Epoch || got.Run != f.Run || got.Pos != f.Pos || got.Latest != f.Latest || got.Gen != f.Gen {
		t.Fatalf("header round trip %+v -> %+v", f, got)
	}
	if len(got.Pages) != len(f.Pages) {
		t.Fatalf("pages: got %d, want %d", len(got.Pages), len(f.Pages))
	}
	for i := range f.Pages {
		if got.Pages[i].ID != f.Pages[i].ID || !bytes.Equal(got.Pages[i].Data, f.Pages[i].Data) {
			t.Fatalf("page %d mismatch", i)
		}
	}

	// Heartbeat: empty page list survives the trip.
	hb := ReplFrames{Epoch: 9, Latest: 104}
	got, err = DecodeReplFrames(EncodeReplFrames(hb))
	if err != nil || got.Pos != 0 || len(got.Pages) != 0 || got.Latest != 104 {
		t.Fatalf("heartbeat round trip: %+v, %v", got, err)
	}

	// Truncated page payloads must be rejected, not sliced past the end.
	enc := EncodeReplFrames(f)
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeReplFrames(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestPromoteOKRoundTrip(t *testing.T) {
	for _, epoch := range []uint64{0, 1, 1 << 60} {
		got, err := DecodePromoteOK(EncodePromoteOK(epoch))
		if err != nil || got != epoch {
			t.Fatalf("round trip %d -> %d, %v", epoch, got, err)
		}
	}
	if _, err := DecodePromoteOK(nil); err == nil {
		t.Fatal("empty promote ok decoded")
	}
	if _, err := DecodePromoteOK(append(EncodePromoteOK(3), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestRetargetRoundTrip(t *testing.T) {
	for _, r := range []Retarget{{}, {Epoch: 7}, {Epoch: 1 << 50, Addr: "10.0.0.3:1988"}} {
		got, err := DecodeRetarget(EncodeRetarget(r))
		if err != nil || got != r {
			t.Fatalf("round trip %+v -> %+v, %v", r, got, err)
		}
	}
	if _, err := DecodeRetarget(nil); err == nil {
		t.Fatal("empty retarget decoded")
	}
	longAddr := make([]byte, maxReplStatusStr+1)
	if _, err := DecodeRetarget(append(EncodeRetarget(Retarget{Epoch: 1}), longAddr...)); err == nil {
		t.Fatal("oversized address accepted")
	}
}

func TestReplStatusRoundTrip(t *testing.T) {
	s := ReplStatus{
		Role:   "primary",
		Epoch:  11,
		Latest: 500,
		Replicas: []ReplicaInfo{
			{Addr: "10.0.0.2:1988", State: "streaming", Pos: 498, Latest: 500, AgeMs: 12},
			{Addr: "10.0.0.3:1988", State: "snapshot", Pos: 0, Latest: 500, AgeMs: 7},
		},
	}
	got, err := DecodeReplStatus(EncodeReplStatus(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Role != s.Role || got.Epoch != s.Epoch || got.Latest != s.Latest || len(got.Replicas) != 2 {
		t.Fatalf("round trip %+v -> %+v", s, got)
	}
	for i := range s.Replicas {
		if got.Replicas[i] != s.Replicas[i] {
			t.Fatalf("replica %d: %+v != %+v", i, got.Replicas[i], s.Replicas[i])
		}
	}
	if lag := s.Replicas[0].Lag(); lag != 2 {
		t.Fatalf("lag = %d, want 2", lag)
	}
	enc := EncodeReplStatus(s)
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeReplStatus(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
