package wire

import (
	"bytes"
	"testing"

	"sim/internal/exec"
	"sim/internal/value"
)

// FuzzDecodeFrame feeds arbitrary bytes through the full inbound path a
// peer exposes to the network: frame framing, then the payload decoder
// for the frame's type. Nothing here may panic or allocate
// unboundedly — a malformed or truncated frame must come back as an
// error. Run continuously with:
//
//	go test ./internal/wire -run='^$' -fuzz FuzzDecodeFrame
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: one well-formed frame of every payload-carrying type,
	// plus classic corruption shapes. testdata/fuzz holds more.
	f.Add(frame(THello, EncodeHello()))
	f.Add(frame(TQuery, EncodeRequest(0xBEEF, []byte(`From student Retrieve name.`))))
	f.Add(frame(TCommitTraced, EncodeCommitInfo(CommitInfo{ID: 0xBEEF, Pages: 2, GroupN: 1,
		Pos: 4, FsyncNS: 1e6, TotalNS: 2e6, Rendered: "commit\n"})))
	f.Add(frame(TError, EncodeError(CodeExec, "integrity violation v2")))
	f.Add(frame(TExecOK, EncodeCount(1729)))
	f.Add(frame(TStatsOK, EncodeServerStats(ServerStats{Connections: 3, Requests: 99})))
	res := exec.RemoteResult(
		[]string{"name", "advisor"},
		[][]value.Value{{value.NewString("x"), value.Null}, {value.NewInt(7), value.NewNumber(2.5)}},
		&exec.Group{Label: "result", Children: []*exec.Group{{Label: "s", Values: []value.Value{value.NewString("x")}, Indexes: []int{0}}}},
		exec.Stats{Instances: 4, Rows: 2})
	f.Add(frame(TResult, EncodeResult(res)))
	f.Add(frame(TReplHello, EncodeReplHello(ReplHello{Epoch: 7, Run: 0xC0FFEE, Pos: 42})))
	f.Add(frame(TReplAck, EncodeReplAck(42)))
	f.Add(frame(TReplSnapshot, EncodeReplSnapshot(ReplSnapshot{Epoch: 7, Run: 0xC0FFEE, Pos: 3, Gen: 1, Total: 12, Offset: 4, Chunk: []byte("chunkdata")})))
	f.Add(frame(TReplFrames, EncodeReplFrames(ReplFrames{Epoch: 7, Run: 0xC0FFEE, Pos: 9, Latest: 11, Gen: 1,
		Pages: []ReplPage{{ID: 3, Data: []byte("page image bytes")}}})))
	f.Add(frame(TPromoteOK, EncodePromoteOK(8)))
	f.Add(frame(TRetarget, EncodeRetarget(Retarget{Epoch: 8, Addr: "10.0.0.3:1988"})))
	f.Add(frame(TReplStatusOK, EncodeReplStatus(ReplStatus{Role: "primary", Epoch: 7, Latest: 11,
		Replicas: []ReplicaInfo{{Addr: "10.0.0.2:1988", State: "streaming", Pos: 9, Latest: 11, AgeMs: 40}}})))
	// Hostile repl shapes: truncated payloads and absurd declared lengths.
	f.Add(frame(TReplFrames, EncodeReplFrames(ReplFrames{Epoch: 7, Pos: 9, Pages: []ReplPage{{ID: 1, Data: []byte("abc")}}})[:9]))
	f.Add(frame(TReplSnapshot, []byte{0x07, 0x03, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x00, 0x03, 'a', 'b'}))
	f.Add(frame(TReplStatusOK, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x20}))
	f.Add([]byte{})                             // nothing
	f.Add([]byte{0, 0, 0, 0, 0})                // zero-length frame
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x20}) // absurd length
	f.Add(frame(TResult, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x20}))
	f.Add(frame(Type(0xEE), []byte("unknown type")))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		// Cap far below DefaultMaxFrame so hostile length prefixes cannot
		// make the harness itself allocate gigabytes.
		typ, payload, err := ReadFrame(r, 1<<20)
		if err != nil {
			return
		}
		switch typ {
		case THello:
			DecodeHello(payload)
		case TQuery, TExec, TQueryTrace, TBegin, TCommit, TRollback, TTraceCommit:
			DecodeRequest(payload)
		case TCommitTraced:
			if ci, err := DecodeCommitInfo(payload); err == nil {
				if _, err := DecodeCommitInfo(EncodeCommitInfo(ci)); err != nil {
					t.Fatalf("re-encode of decoded commit info failed: %v", err)
				}
			}
		case TResultTrace:
			if res, ti, err := DecodeResultTrace(payload); err == nil {
				if _, _, err := DecodeResultTrace(EncodeResultTrace(res, ti)); err != nil {
					t.Fatalf("re-encode of decoded result trace failed: %v", err)
				}
			}
		case TResult:
			if res, err := DecodeResult(payload); err == nil {
				// A decoded result must survive re-encoding: the frames a
				// server emits from it must round-trip.
				if _, err := DecodeResult(EncodeResult(res)); err != nil {
					t.Fatalf("re-encode of decoded result failed: %v", err)
				}
			}
		case TError:
			if e, err := DecodeError(payload); err == nil {
				_ = e.Error()
			}
		case TExecOK:
			DecodeCount(payload)
		case TStatsOK:
			DecodeServerStats(payload)
		case TReplHello:
			DecodeReplHello(payload)
		case TReplAck:
			DecodeReplAck(payload)
		case TPromoteOK:
			DecodePromoteOK(payload)
		case TRetarget:
			if rt, err := DecodeRetarget(payload); err == nil {
				if _, err := DecodeRetarget(EncodeRetarget(rt)); err != nil {
					t.Fatalf("re-encode of decoded retarget failed: %v", err)
				}
			}
		case TReplSnapshot:
			if s, err := DecodeReplSnapshot(payload); err == nil {
				if _, err := DecodeReplSnapshot(EncodeReplSnapshot(s)); err != nil {
					t.Fatalf("re-encode of decoded snapshot failed: %v", err)
				}
			}
		case TReplFrames:
			if fr, err := DecodeReplFrames(payload); err == nil {
				if _, err := DecodeReplFrames(EncodeReplFrames(fr)); err != nil {
					t.Fatalf("re-encode of decoded frames failed: %v", err)
				}
			}
		case TReplStatusOK:
			if st, err := DecodeReplStatus(payload); err == nil {
				_ = st.String()
				if _, err := DecodeReplStatus(EncodeReplStatus(st)); err != nil {
					t.Fatalf("re-encode of decoded status failed: %v", err)
				}
			}
		}
	})
}

// frame wraps a payload in the length/type header, as WriteFrame would.
func frame(t Type, payload []byte) []byte {
	var buf bytes.Buffer
	WriteFrame(&buf, t, payload)
	return buf.Bytes()
}
