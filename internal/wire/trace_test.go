package wire

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sim/internal/obs"
)

func sampleTraceInfo() TraceInfo {
	return TraceInfo{
		ParseNS:     120_000,
		PlanNS:      48_000,
		ExecNS:      2_400_000,
		TotalNS:     2_600_000,
		Rows:        3,
		Instances:   99,
		Workers:     4,
		PagerHits:   17,
		PagerMisses: 2,
		CacheHits:   40,
		CacheMisses: 1,
		PlanCached:  true,
		Rendered:    "student (TYPE 1) via scan student  rows=3 wall=2.4ms\n",
	}
}

func TestResultTraceRoundTrip(t *testing.T) {
	in := sampleResult(t)
	ti := sampleTraceInfo()
	out, got, err := DecodeResultTrace(EncodeResultTrace(in, ti))
	if err != nil {
		t.Fatal(err)
	}
	if got != ti {
		t.Fatalf("trace diverged:\n%+v\nvs\n%+v", got, ti)
	}
	if out.Format() != in.Format() {
		t.Fatalf("result diverged:\n%s\nvs\n%s", out.Format(), in.Format())
	}
	if got.Total() != 2600*time.Microsecond {
		t.Errorf("Total() = %v", got.Total())
	}
	for _, want := range []string{"parse 120µs", "plan 48µs (cached)", "rows=3"} {
		if !strings.Contains(got.String(), want) {
			t.Errorf("String() = %q missing %q", got.String(), want)
		}
	}
}

func TestResultTraceEmptyRendered(t *testing.T) {
	ti := TraceInfo{Rows: 1}
	_, got, err := DecodeResultTrace(EncodeResultTrace(sampleResult(t), ti))
	if err != nil {
		t.Fatal(err)
	}
	if got != ti {
		t.Fatalf("trace diverged: %+v vs %+v", got, ti)
	}
}

// TestFromQueryTrace checks the flattening of an executed trace,
// including that the rendered tree rides along.
func TestFromQueryTrace(t *testing.T) {
	qt := &obs.QueryTrace{
		Statement: "From student Retrieve name.",
		Parse:     time.Millisecond,
		Plan:      2 * time.Millisecond,
		Exec:      3 * time.Millisecond,
		Total:     7 * time.Millisecond,
		Rows:      5,
		Instances: 9,
		Workers:   1,
		PagerHits: 11,
		Nodes: []obs.NodeTrace{
			{Label: "student", Type: "TYPE 1", Access: "scan student", Instances: 9, Entities: 9, Wall: 3 * time.Millisecond},
		},
	}
	ti := FromQueryTrace(qt)
	if ti.ParseNS != uint64(time.Millisecond) || ti.Rows != 5 || ti.Instances != 9 || ti.PagerHits != 11 {
		t.Errorf("flattened trace = %+v", ti)
	}
	for _, want := range []string{"From student Retrieve name.", "student (TYPE 1) via scan student", "rows=9"} {
		if !strings.Contains(ti.Rendered, want) {
			t.Errorf("Rendered missing %q:\n%s", want, ti.Rendered)
		}
	}
}

// TestDecodeResultTraceRejectsCorruption truncates a valid encoding at
// every offset; the decoder must error or succeed but never panic.
func TestDecodeResultTraceRejectsCorruption(t *testing.T) {
	b := EncodeResultTrace(sampleResult(t), sampleTraceInfo())
	for i := 0; i < len(b); i++ {
		DecodeResultTrace(b[:i])
		mut := bytes.Clone(b)
		mut[i] ^= 0x80
		DecodeResultTrace(mut)
	}
}
