package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"sim/internal/exec"
	"sim/internal/obs"
)

// TraceInfo is the server-side span breakdown a QueryTrace request
// returns alongside its result set: phase durations, work counts, cache
// deltas and the server-rendered EXPLAIN ANALYZE text (the per-node tree
// is shipped pre-rendered rather than re-encoded structurally — clients
// display it, they don't compute on it).
type TraceInfo struct {
	ID          uint64 // request ID the query ran under (0 = untraced)
	ParseNS     uint64
	PlanNS      uint64
	ExecNS      uint64
	TotalNS     uint64
	Rows        uint64
	Instances   uint64
	Workers     uint64
	PagerHits   uint64
	PagerMisses uint64
	CacheHits   uint64
	CacheMisses uint64
	PlanCached  bool
	Rendered    string
}

// FromQueryTrace flattens an executed trace for the wire.
func FromQueryTrace(t *obs.QueryTrace) TraceInfo {
	return TraceInfo{
		ID:          t.ID,
		ParseNS:     uint64(t.Parse.Nanoseconds()),
		PlanNS:      uint64(t.Plan.Nanoseconds()),
		ExecNS:      uint64(t.Exec.Nanoseconds()),
		TotalNS:     uint64(t.Total.Nanoseconds()),
		Rows:        uint64(t.Rows),
		Instances:   uint64(t.Instances),
		Workers:     uint64(t.Workers),
		PagerHits:   t.PagerHits,
		PagerMisses: t.PagerMisses,
		CacheHits:   t.CacheHits,
		CacheMisses: t.CacheMisses,
		PlanCached:  t.PlanCached,
		Rendered:    t.Render(),
	}
}

// FromCommitTrace flattens a commit-span breakdown for the wire.
func FromCommitTrace(ct *obs.CommitTrace) CommitInfo {
	return CommitInfo{
		ID:            ct.ID,
		Pages:         uint64(ct.Pages),
		GroupN:        uint64(ct.GroupN),
		Pos:           ct.Pos,
		LatchWaitNS:   uint64(ct.LatchWait.Nanoseconds()),
		EnqueueWaitNS: uint64(ct.EnqueueWait.Nanoseconds()),
		FsyncNS:       uint64(ct.Fsync.Nanoseconds()),
		TotalNS:       uint64(ct.Total.Nanoseconds()),
		Rendered:      ct.Render(),
	}
}

// Total returns the end-to-end server-side duration.
func (t TraceInfo) Total() time.Duration { return time.Duration(t.TotalNS) }

func (t TraceInfo) String() string {
	cached := ""
	if t.PlanCached {
		cached = " (cached)"
	}
	return fmt.Sprintf("parse %v  plan %v%s  exec %v  total %v  rows=%d",
		time.Duration(t.ParseNS), time.Duration(t.PlanNS), cached,
		time.Duration(t.ExecNS), time.Duration(t.TotalNS), t.Rows)
}

// EncodeResultTrace builds a ResultTrace payload: the length-prefixed
// result set followed by the trace fields and the rendered text.
func EncodeResultTrace(r *exec.Result, ti TraceInfo) []byte {
	res := EncodeResult(r)
	b := binary.AppendUvarint(nil, uint64(len(res)))
	b = append(b, res...)
	for _, v := range []uint64{
		ti.ID, ti.ParseNS, ti.PlanNS, ti.ExecNS, ti.TotalNS,
		ti.Rows, ti.Instances, ti.Workers,
		ti.PagerHits, ti.PagerMisses, ti.CacheHits, ti.CacheMisses,
	} {
		b = binary.AppendUvarint(b, v)
	}
	if ti.PlanCached {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return append(b, ti.Rendered...)
}

// DecodeResultTrace decodes a ResultTrace payload.
func DecodeResultTrace(b []byte) (*exec.Result, TraceInfo, error) {
	var ti TraceInfo
	rlen, n := binary.Uvarint(b)
	if n <= 0 || rlen > uint64(len(b)-n) {
		return nil, ti, fmt.Errorf("wire: bad result-trace frame")
	}
	b = b[n:]
	res, err := DecodeResult(b[:rlen])
	if err != nil {
		return nil, ti, err
	}
	b = b[rlen:]
	for _, f := range []*uint64{
		&ti.ID, &ti.ParseNS, &ti.PlanNS, &ti.ExecNS, &ti.TotalNS,
		&ti.Rows, &ti.Instances, &ti.Workers,
		&ti.PagerHits, &ti.PagerMisses, &ti.CacheHits, &ti.CacheMisses,
	} {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, ti, fmt.Errorf("wire: truncated result-trace frame")
		}
		*f = v
		b = b[n:]
	}
	if len(b) == 0 {
		return nil, ti, fmt.Errorf("wire: truncated result-trace frame")
	}
	ti.PlanCached = b[0] == 1
	ti.Rendered = string(b[1:])
	return res, ti, nil
}
