// Package wire defines the binary client/server protocol spoken between
// the SIM server (internal/server) and its clients (package client). The
// paper's Figure 1 places SIM behind a set of interface products — IQF,
// ADDS, workstation front ends — that reach the kernel as a shared
// service; this protocol is the reproduction's version of that boundary.
//
// Every message is one frame:
//
//	uint32 big-endian length | one type byte | payload (length-1 bytes)
//
// The length covers the type byte and payload. A session opens with a
// Hello exchange (magic "SIMW" + one version byte in each direction);
// after that the client sends request frames and reads exactly one
// response frame per request. Result sets reuse the storage substrate's
// self-delimiting value encoding (internal/value), so a remote result
// decodes into the same exec.Result the in-process API returns.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Magic opens every Hello payload.
const Magic = "SIMW"

// Version is the protocol version this build speaks. A server accepts any
// Hello from MinVersion through Version and echoes the client's own
// version back, so an older client's strict equality check still passes;
// anything outside that window is refused with CodeProtocol.
//
// Version 2 added trace-context propagation: request payloads that name a
// statement or transaction-control action (Query, Exec, QueryTrace,
// Begin, Commit, TraceCommit, Rollback) open with a uvarint request ID
// (0 = untraced; see EncodeRequest), and ReplFrames carry the IDs of the
// commits merged into each group plus the publish wall-clock.
//
// Version 3 added failover: the replication frames (ReplHello,
// ReplSnapshot, ReplFrames) carry a per-publisher-lifetime Run nonce next
// to the persisted Epoch, and the Promote/Retarget admin frames plus
// CodeFenced implement follower promotion with epoch fencing.
//
// Version 4 added transaction options: a Begin payload may carry one flag
// byte after its request ID (see EncodeBegin), bit 0 marking the
// transaction read-only — a snapshot-pinned reader that never conflicts
// and that a replica can serve. A flagless Begin (every version-3 client)
// still decodes as an ordinary read-write transaction.
const Version = 4

// MinVersion is the oldest client protocol version a server still
// accepts. Version 4 only *added* an optional Begin flag byte, so a
// version-3 session — which never sends one — runs unchanged.
const MinVersion = 3

// DefaultMaxFrame bounds the frames a peer will accept (length field
// inclusive of the type byte). Large result sets stream inside a single
// frame, so the default is generous.
const DefaultMaxFrame = 64 << 20

// Type tags a frame. Requests are 0x1x, responses 0x2x.
type Type byte

// Frame types.
const (
	THello        Type = 0x01 // both directions: magic + version
	TRetarget     Type = 0x02 // admin: epoch + address — re-point a follower, or fence a primary
	TQuery        Type = 0x10 // payload: uvarint request ID + DML text of one Retrieve
	TExec         Type = 0x11 // payload: uvarint request ID + DML text of one update statement
	TExplain      Type = 0x12 // payload: DML text of one Retrieve
	TCheckpoint   Type = 0x13 // no payload
	TStats        Type = 0x14 // no payload
	TPing         Type = 0x15 // no payload
	TQueryTrace   Type = 0x16 // payload: uvarint request ID + DML text; answered with TResultTrace
	TBegin        Type = 0x17 // payload: uvarint request ID: open this connection's transaction
	TCommit       Type = 0x18 // payload: uvarint request ID: commit this connection's transaction
	TRollback     Type = 0x19 // payload: uvarint request ID: roll back this connection's transaction
	TReplHello    Type = 0x1A // follower → primary: subscribe (epoch + applied position)
	TReplStatus   Type = 0x1B // no payload: replication status request
	TReplAck      Type = 0x1C // follower → primary: applied position
	TIntrospect   Type = 0x1D // payload: one kind byte (see Introspect*); answered with TIntrospectOK
	TTraceCommit  Type = 0x1E // payload: uvarint request ID: commit + return the span breakdown
	TPromote      Type = 0x1F // admin: promote this replica to primary; answered with TPromoteOK
	TResult       Type = 0x20 // payload: result set (EncodeResult)
	TExecOK       Type = 0x21 // payload: uvarint affected-entity count
	TExplainOK    Type = 0x22 // payload: strategy text
	TOK           Type = 0x23 // no payload (Checkpoint ack)
	TStatsOK      Type = 0x24 // payload: ServerStats
	TPong         Type = 0x25 // no payload
	TResultTrace  Type = 0x26 // payload: result set + TraceInfo
	TReplSnapshot Type = 0x27 // primary → follower: one chunk of a base image
	TReplFrames   Type = 0x28 // primary → follower: one committed page group (or heartbeat)
	TReplStatusOK Type = 0x29 // payload: ReplStatus
	TIntrospectOK Type = 0x2A // payload: rendered introspection text
	TCommitTraced Type = 0x2B // payload: CommitInfo (TraceCommit ack)
	TPromoteOK    Type = 0x2C // payload: uvarint epoch the node now publishes under
	TError        Type = 0x2F // payload: uvarint code + message text
)

// Introspection kinds (the one-byte TIntrospect payload).
const (
	IntrospectFlight byte = 0 // flight-recorder dump
	IntrospectHot    byte = 1 // latch contention profile
)

var typeNames = map[Type]string{
	THello: "Hello", TQuery: "Query", TExec: "Exec", TExplain: "Explain",
	TCheckpoint: "Checkpoint", TStats: "Stats", TPing: "Ping",
	TQueryTrace: "QueryTrace",
	TBegin:      "Begin", TCommit: "Commit", TRollback: "Rollback",
	TReplHello: "ReplHello", TReplStatus: "ReplStatus", TReplAck: "ReplAck",
	TIntrospect: "Introspect", TTraceCommit: "TraceCommit",
	TPromote: "Promote", TPromoteOK: "PromoteOK", TRetarget: "Retarget",
	TResult: "Result", TExecOK: "ExecOK", TExplainOK: "ExplainOK",
	TOK: "OK", TStatsOK: "StatsOK", TPong: "Pong",
	TResultTrace: "ResultTrace", TReplSnapshot: "ReplSnapshot",
	TReplFrames: "ReplFrames", TReplStatusOK: "ReplStatusOK",
	TIntrospectOK: "IntrospectOK", TCommitTraced: "CommitTraced", TError: "Error",
}

func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Type(0x%02x)", byte(t))
}

// Code classifies an Error frame.
type Code uint32

// Error codes.
const (
	CodeUnknown    Code = iota
	CodeParse           // the statement text failed to parse
	CodeSemantic        // bind/plan error (unknown class, attribute, type mix)
	CodeExec            // runtime failure (integrity violation, I/O, ...)
	CodeProtocol        // malformed frame, bad handshake, unknown type
	CodeTimeout         // the per-request deadline expired
	CodeBusy            // connection limit reached
	CodeShutdown        // server is draining
	CodeInternal        // server-side panic or invariant failure
	CodeOverloaded      // request queue full: fast-fail instead of queueing
	CodeConflict        // write-write conflict with another open transaction
	CodeTxState         // transaction-control request in the wrong state
	CodeReadOnly        // write sent to a read-only replica
	CodeFenced          // write or subscribe sent to a primary fenced by a higher epoch
)

var codeNames = [...]string{"unknown", "parse", "semantic", "exec", "protocol", "timeout", "busy", "shutdown", "internal", "overloaded", "conflict", "txstate", "readonly", "fenced"}

func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return fmt.Sprintf("code(%d)", uint32(c))
}

// Error is a structured protocol error: the remote failure a client
// observes, carrying the server's classification.
type Error struct {
	Code Code
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("sim: remote %s error: %s", e.Code, e.Msg) }

// writeBufs recycles the header+payload staging buffers WriteFrame uses
// so steady-state framing stops allocating per message. Buffers that grew
// past writeBufMax are dropped instead of pooled, keeping one huge result
// frame from pinning its buffer for the life of the process.
var writeBufs = sync.Pool{New: func() any { return new(frameBuf) }}

type frameBuf struct{ b []byte }

const writeBufMax = 1 << 20

// WriteFrame writes one frame. Payload may be nil. The frame is staged in
// a pooled buffer and handed to w in a single Write call, so the payload
// is not retained past the call.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	fb := writeBufs.Get().(*frameBuf)
	need := 5 + len(payload)
	if cap(fb.b) < need {
		fb.b = make([]byte, need)
	}
	buf := fb.b[:need]
	binary.BigEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[4] = byte(t)
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	if cap(fb.b) <= writeBufMax {
		writeBufs.Put(fb)
	}
	return err
}

// ErrFrameTooLarge reports a frame whose declared length exceeds the
// reader's limit; the connection is poisoned past it.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ReadFrame reads one frame, rejecting declared lengths of zero or beyond
// max (0 means DefaultMaxFrame). The payload is freshly allocated and
// owned by the caller.
func ReadFrame(r io.Reader, max int) (Type, []byte, error) {
	return ReadFrameBuf(r, max, nil)
}

// ReadFrameBuf is ReadFrame with a caller-recycled payload buffer: the
// returned payload slice reuses buf's capacity when it fits, growing it
// otherwise. Pass the returned payload back (resliced to capacity) on the
// next call to amortize the allocation to zero. The payload is only valid
// until buf's next use; callers that retain payload bytes must copy them
// (decoding to strings, as every payload decoder here does, copies).
func ReadFrameBuf(r io.Reader, max int, buf []byte) (Type, []byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: zero-length frame")
	}
	if n > uint32(max) {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	var payload []byte
	if int(n-1) <= cap(buf) {
		payload = buf[:n-1]
	} else {
		payload = make([]byte, n-1)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return Type(hdr[4]), payload, nil
}

// EncodeHello builds a Hello payload.
func EncodeHello() []byte {
	return append([]byte(Magic), Version)
}

// DecodeHello validates a Hello payload and returns the peer's version.
func DecodeHello(b []byte) (byte, error) {
	if len(b) != len(Magic)+1 || string(b[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("wire: bad hello (not a SIM peer)")
	}
	return b[len(Magic)], nil
}

// EncodeRequest builds a traced request payload: the uvarint request ID
// followed by the statement text (empty for the transaction-control
// frames). ID 0 marks an untraced request.
func EncodeRequest(id uint64, body []byte) []byte {
	b := binary.AppendUvarint(make([]byte, 0, binary.MaxVarintLen64+len(body)), id)
	return append(b, body...)
}

// DecodeRequest splits a traced request payload into its request ID and
// body. An empty payload decodes as an untraced empty request, so the
// transaction-control frames may omit the payload entirely. The body
// aliases b.
func DecodeRequest(b []byte) (uint64, []byte, error) {
	if len(b) == 0 {
		return 0, nil, nil
	}
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: bad request ID prefix")
	}
	return id, b[n:], nil
}

// Begin flag bits (the optional byte after a Begin request ID).
const (
	// BeginReadOnly marks the transaction a pure snapshot reader: it pins
	// the latest committed version stamp at Begin, never takes latches,
	// never conflicts, and rejects Exec. Replicas may serve it.
	BeginReadOnly byte = 1 << 0
)

// EncodeBegin builds a Begin payload: the uvarint request ID followed —
// only when some flag is set — by one flag byte. Flagless payloads keep
// version-3 servers working unchanged.
func EncodeBegin(id uint64, flags byte) []byte {
	b := binary.AppendUvarint(make([]byte, 0, binary.MaxVarintLen64+1), id)
	if flags != 0 {
		b = append(b, flags)
	}
	return b
}

// DecodeBegin splits a Begin payload into its request ID and flag byte.
// The flag byte is optional (version-3 clients never send one) and
// defaults to zero; unknown flag bits are rejected so a future client
// cannot silently get weaker semantics than it asked for.
func DecodeBegin(b []byte) (uint64, byte, error) {
	id, rest, err := DecodeRequest(b)
	if err != nil {
		return 0, 0, err
	}
	switch {
	case len(rest) == 0:
		return id, 0, nil
	case len(rest) > 1:
		return 0, 0, fmt.Errorf("wire: trailing bytes in begin frame")
	case rest[0]&^BeginReadOnly != 0:
		return 0, 0, fmt.Errorf("wire: unknown begin flags 0x%02x", rest[0])
	}
	return id, rest[0], nil
}

// CommitInfo is the span breakdown of one remote commit, the TraceCommit
// ack: where the write spent its time from latch acquisition through the
// group-commit flush, and the replication position it published at.
type CommitInfo struct {
	ID            uint64 // request ID the commit ran under
	Pages         uint64 // dirty pages the transaction contributed
	GroupN        uint64 // commits merged into the same flush group
	Pos           uint64 // replication position (0 = unreplicated)
	LatchWaitNS   uint64
	EnqueueWaitNS uint64
	FsyncNS       uint64
	TotalNS       uint64
	Rendered      string // server-rendered CommitTrace
}

// EncodeCommitInfo builds a CommitTraced payload.
func EncodeCommitInfo(ci CommitInfo) []byte {
	b := binary.AppendUvarint(nil, ci.ID)
	b = binary.AppendUvarint(b, ci.Pages)
	b = binary.AppendUvarint(b, ci.GroupN)
	b = binary.AppendUvarint(b, ci.Pos)
	b = binary.AppendUvarint(b, ci.LatchWaitNS)
	b = binary.AppendUvarint(b, ci.EnqueueWaitNS)
	b = binary.AppendUvarint(b, ci.FsyncNS)
	b = binary.AppendUvarint(b, ci.TotalNS)
	return append(b, ci.Rendered...)
}

// DecodeCommitInfo decodes a CommitTraced payload.
func DecodeCommitInfo(b []byte) (CommitInfo, error) {
	var ci CommitInfo
	for _, f := range []*uint64{&ci.ID, &ci.Pages, &ci.GroupN, &ci.Pos,
		&ci.LatchWaitNS, &ci.EnqueueWaitNS, &ci.FsyncNS, &ci.TotalNS} {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return CommitInfo{}, fmt.Errorf("wire: bad commit trace frame")
		}
		*f = v
		b = b[n:]
	}
	ci.Rendered = string(b)
	return ci, nil
}

// EncodeError builds an Error payload.
func EncodeError(code Code, msg string) []byte {
	b := binary.AppendUvarint(nil, uint64(code))
	return append(b, msg...)
}

// DecodeError decodes an Error payload.
func DecodeError(b []byte) (*Error, error) {
	code, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("wire: bad error frame")
	}
	return &Error{Code: Code(code), Msg: string(b[n:])}, nil
}

// EncodeCount builds an ExecOK payload.
func EncodeCount(n int) []byte {
	return binary.AppendUvarint(nil, uint64(n))
}

// DecodeCount decodes an ExecOK payload.
func DecodeCount(b []byte) (int, error) {
	n, ln := binary.Uvarint(b)
	if ln <= 0 || ln != len(b) {
		return 0, fmt.Errorf("wire: bad count frame")
	}
	return int(n), nil
}

// ServerStats is the atomic counter set a server reports in a StatsOK
// frame: lifetime totals since the server started.
type ServerStats struct {
	Connections uint64 // connections accepted
	Active      uint64 // connections currently open
	Requests    uint64 // request frames served
	BytesIn     uint64 // frame bytes read
	BytesOut    uint64 // frame bytes written
	Errors      uint64 // error frames sent + aborted connections
}

func (s ServerStats) String() string {
	return fmt.Sprintf("conns=%d active=%d requests=%d bytes-in=%d bytes-out=%d errors=%d",
		s.Connections, s.Active, s.Requests, s.BytesIn, s.BytesOut, s.Errors)
}

// EncodeServerStats builds a StatsOK payload.
func EncodeServerStats(s ServerStats) []byte {
	b := binary.AppendUvarint(nil, s.Connections)
	b = binary.AppendUvarint(b, s.Active)
	b = binary.AppendUvarint(b, s.Requests)
	b = binary.AppendUvarint(b, s.BytesIn)
	b = binary.AppendUvarint(b, s.BytesOut)
	return binary.AppendUvarint(b, s.Errors)
}

// DecodeServerStats decodes a StatsOK payload.
func DecodeServerStats(b []byte) (ServerStats, error) {
	var s ServerStats
	for _, f := range []*uint64{&s.Connections, &s.Active, &s.Requests, &s.BytesIn, &s.BytesOut, &s.Errors} {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return ServerStats{}, fmt.Errorf("wire: bad stats frame")
		}
		*f = v
		b = b[n:]
	}
	if len(b) != 0 {
		return ServerStats{}, fmt.Errorf("wire: trailing bytes in stats frame")
	}
	return s, nil
}
