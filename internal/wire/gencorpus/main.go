// Command gencorpus regenerates the committed fuzz seed corpus under
// internal/wire/testdata/fuzz/FuzzDecodeFrame: one well-formed frame per
// payload-carrying type plus truncation/corruption shapes, in the Go
// fuzz corpus file format.
//
//	go run ./internal/wire/gencorpus internal/wire/testdata/fuzz/FuzzDecodeFrame
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"sim/internal/exec"
	"sim/internal/value"
	"sim/internal/wire"
)

func frame(t wire.Type, payload []byte) []byte {
	var buf bytes.Buffer
	wire.WriteFrame(&buf, t, payload)
	return buf.Bytes()
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: gencorpus <corpus-dir>")
		os.Exit(2)
	}
	dir := os.Args[1]
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	res := exec.RemoteResult(
		[]string{"name", "degree", "when"},
		[][]value.Value{
			{value.NewString("Doe, John"), value.NewSymbolic("PHD", 3), value.NewDate(6725)},
			{value.NewString(""), value.Null, value.NewNumber(-0.5)},
		},
		&exec.Group{Label: "result", Children: []*exec.Group{
			{Label: "student", Values: []value.Value{value.NewString("Doe, John")}, Indexes: []int{0},
				Children: []*exec.Group{{Label: "course", Level: 1, Values: []value.Value{value.NewInt(42)}, Indexes: []int{1}}}},
		}},
		exec.Stats{Instances: 12, Rows: 2})
	seeds := map[string][]byte{
		"hello": frame(wire.THello, wire.EncodeHello()),
		"query": frame(wire.TQuery, wire.EncodeRequest(0xDEADBEEF, []byte(`From student Retrieve name, name of advisor Where student-nbr = 1729.`))),
		"commit-traced": frame(wire.TCommitTraced, wire.EncodeCommitInfo(wire.CommitInfo{
			ID: 0xDEADBEEF, Pages: 3, GroupN: 2, Pos: 17, LatchWaitNS: 1200, EnqueueWaitNS: 88000,
			FsyncNS: 640000, TotalNS: 910000, Rendered: "commit request 00000000deadbeef\n"})),
		"introspect":     frame(wire.TIntrospect, []byte{wire.IntrospectFlight}),
		"result":         frame(wire.TResult, wire.EncodeResult(res)),
		"error":          frame(wire.TError, wire.EncodeError(wire.CodeTimeout, "request deadline exceeded")),
		"count":          frame(wire.TExecOK, wire.EncodeCount(38000)),
		"stats":          frame(wire.TStatsOK, wire.EncodeServerStats(wire.ServerStats{Connections: 8, Active: 2, Requests: 640, BytesIn: 1 << 20, BytesOut: 9, Errors: 1})),
		"truncated":      frame(wire.TResult, wire.EncodeResult(res))[:20],
		"hostile-length": {0xFF, 0xFF, 0xFF, 0xFE, byte(wire.TResult), 1, 2, 3},
		"repl-hello":     frame(wire.TReplHello, wire.EncodeReplHello(wire.ReplHello{Epoch: 1<<63 | 9, Run: 1 << 62, Pos: 1 << 33})),
		"repl-ack":       frame(wire.TReplAck, wire.EncodeReplAck(1<<40)),
		"repl-snapshot": frame(wire.TReplSnapshot, wire.EncodeReplSnapshot(wire.ReplSnapshot{
			Epoch: 9, Run: 0xF00D, Pos: 17, Gen: 2, Total: 1 << 16, Offset: 4096, Chunk: bytes.Repeat([]byte{0xA5}, 512)})),
		"repl-frames": frame(wire.TReplFrames, wire.EncodeReplFrames(wire.ReplFrames{
			Epoch: 9, Run: 0xF00D, Pos: 18, Latest: 20, Gen: 2, TS: 1 << 60, IDs: []uint64{0xDEADBEEF, 7},
			Pages: []wire.ReplPage{{ID: 0, Data: bytes.Repeat([]byte{0x5A}, 128)}, {ID: 31, Data: []byte("tail page")}}})),
		"repl-heartbeat": frame(wire.TReplFrames, wire.EncodeReplFrames(wire.ReplFrames{Epoch: 9, Run: 0xF00D, Latest: 20})),
		"promote-ok":     frame(wire.TPromoteOK, wire.EncodePromoteOK(10)),
		"retarget":       frame(wire.TRetarget, wire.EncodeRetarget(wire.Retarget{Epoch: 10, Addr: "198.51.100.7:1988"})),
		"repl-status": frame(wire.TReplStatusOK, wire.EncodeReplStatus(wire.ReplStatus{
			Role: "primary", Epoch: 9, Latest: 20,
			Replicas: []wire.ReplicaInfo{{Addr: "198.51.100.7:1988", State: "snapshot", Pos: 0, Latest: 20, AgeMs: 3}}})),
		// Hostile variants: a frames payload cut mid-page, and a snapshot
		// whose declared total dwarfs the bytes actually present.
		"repl-frames-truncated": frame(wire.TReplFrames, wire.EncodeReplFrames(wire.ReplFrames{
			Epoch: 9, Pos: 19, Pages: []wire.ReplPage{{ID: 1, Data: bytes.Repeat([]byte{0xEE}, 64)}}})[:12]),
		"repl-snapshot-hostile-total": frame(wire.TReplSnapshot, []byte{
			0x09, 0x11, 0x02, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x03, 0x00, 0x04, 'd', 'a', 't', 'a'}),
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
	}
}
