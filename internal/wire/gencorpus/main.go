// Command gencorpus regenerates the committed fuzz seed corpus under
// internal/wire/testdata/fuzz/FuzzDecodeFrame: one well-formed frame per
// payload-carrying type plus truncation/corruption shapes, in the Go
// fuzz corpus file format.
//
//	go run ./internal/wire/gencorpus internal/wire/testdata/fuzz/FuzzDecodeFrame
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"sim/internal/exec"
	"sim/internal/value"
	"sim/internal/wire"
)

func frame(t wire.Type, payload []byte) []byte {
	var buf bytes.Buffer
	wire.WriteFrame(&buf, t, payload)
	return buf.Bytes()
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: gencorpus <corpus-dir>")
		os.Exit(2)
	}
	dir := os.Args[1]
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	res := exec.RemoteResult(
		[]string{"name", "degree", "when"},
		[][]value.Value{
			{value.NewString("Doe, John"), value.NewSymbolic("PHD", 3), value.NewDate(6725)},
			{value.NewString(""), value.Null, value.NewNumber(-0.5)},
		},
		&exec.Group{Label: "result", Children: []*exec.Group{
			{Label: "student", Values: []value.Value{value.NewString("Doe, John")}, Indexes: []int{0},
				Children: []*exec.Group{{Label: "course", Level: 1, Values: []value.Value{value.NewInt(42)}, Indexes: []int{1}}}},
		}},
		exec.Stats{Instances: 12, Rows: 2})
	seeds := map[string][]byte{
		"hello":          frame(wire.THello, wire.EncodeHello()),
		"query":          frame(wire.TQuery, []byte(`From student Retrieve name, name of advisor Where student-nbr = 1729.`)),
		"result":         frame(wire.TResult, wire.EncodeResult(res)),
		"error":          frame(wire.TError, wire.EncodeError(wire.CodeTimeout, "request deadline exceeded")),
		"count":          frame(wire.TExecOK, wire.EncodeCount(38000)),
		"stats":          frame(wire.TStatsOK, wire.EncodeServerStats(wire.ServerStats{Connections: 8, Active: 2, Requests: 640, BytesIn: 1 << 20, BytesOut: 9, Errors: 1})),
		"truncated":      frame(wire.TResult, wire.EncodeResult(res))[:20],
		"hostile-length": {0xFF, 0xFF, 0xFF, 0xFE, byte(wire.TResult), 1, 2, 3},
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
	}
}
