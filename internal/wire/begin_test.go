package wire

import "testing"

func TestBeginRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		id    uint64
		flags byte
	}{
		{0, 0},
		{42, 0},
		{42, BeginReadOnly},
		{1<<63 + 7, BeginReadOnly},
	} {
		b := EncodeBegin(tc.id, tc.flags)
		id, flags, err := DecodeBegin(b)
		if err != nil {
			t.Fatalf("DecodeBegin(%v/%v): %v", tc.id, tc.flags, err)
		}
		if id != tc.id || flags != tc.flags {
			t.Fatalf("round trip (%d, %d) → (%d, %d)", tc.id, tc.flags, id, flags)
		}
	}
}

// TestBeginFlaglessCompat: a version-3 Begin payload (bare request ID,
// no flag byte) decodes as a read-write transaction.
func TestBeginFlaglessCompat(t *testing.T) {
	id, flags, err := DecodeBegin(EncodeRequest(99, nil))
	if err != nil {
		t.Fatal(err)
	}
	if id != 99 || flags != 0 {
		t.Fatalf("flagless begin → (%d, %d), want (99, 0)", id, flags)
	}
}

func TestBeginRejectsGarbage(t *testing.T) {
	// Unknown flag bits must be refused, not silently ignored: a future
	// client asking for semantics this server lacks must hear "no".
	if _, _, err := DecodeBegin(append(EncodeRequest(1, nil), 0x80)); err == nil {
		t.Fatal("unknown flag bit accepted")
	}
	// Trailing bytes after the flag byte are a framing error.
	if _, _, err := DecodeBegin(append(EncodeRequest(1, nil), BeginReadOnly, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
