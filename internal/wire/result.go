package wire

import (
	"encoding/binary"
	"fmt"

	"sim/internal/exec"
	"sim/internal/value"
)

// Result-set payload layout (all integers varint/uvarint, values in the
// self-delimiting encoding of internal/value):
//
//	uvarint ncols, ncols × (uvarint len + name bytes)
//	uvarint nrows, nrows × value row (value.AppendRow)
//	varint instances, varint rows        (exec.Stats)
//	byte hasStructured; when 1, one group tree (encodeGroup)
//
// A group is label, level, its attached values with their target indexes,
// and its children, recursively. The decoder caps nesting at
// maxGroupDepth so hostile input cannot overflow the stack.

// maxGroupDepth bounds structured-output nesting when decoding. Real
// trees are as deep as the query's main-variable list (single digits).
const maxGroupDepth = 512

// EncodeResult builds a TResult payload from an executed query result.
func EncodeResult(r *exec.Result) []byte {
	b := binary.AppendUvarint(nil, uint64(len(r.Names)))
	for _, n := range r.Names {
		b = binary.AppendUvarint(b, uint64(len(n)))
		b = append(b, n...)
	}
	rows := r.Rows()
	b = binary.AppendUvarint(b, uint64(len(rows)))
	for _, row := range rows {
		b = value.AppendRow(b, row)
	}
	b = binary.AppendVarint(b, int64(r.Stats.Instances))
	b = binary.AppendVarint(b, int64(r.Stats.Rows))
	if r.Structured == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return encodeGroup(b, r.Structured)
}

func encodeGroup(b []byte, g *exec.Group) []byte {
	b = binary.AppendUvarint(b, uint64(len(g.Label)))
	b = append(b, g.Label...)
	b = binary.AppendVarint(b, int64(g.Level))
	b = binary.AppendUvarint(b, uint64(len(g.Values)))
	for i, v := range g.Values {
		b = value.Append(b, v)
		b = binary.AppendUvarint(b, uint64(g.Indexes[i]))
	}
	b = binary.AppendUvarint(b, uint64(len(g.Children)))
	for _, c := range g.Children {
		b = encodeGroup(b, c)
	}
	return b
}

// DecodeResult reconstructs a query result from a TResult payload. The
// returned Result behaves exactly like an in-process one: Rows, Format,
// FormatStructured and Stats all match the server-side original.
func DecodeResult(b []byte) (*exec.Result, error) {
	ncols, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("wire: result: bad column count")
	}
	b = b[n:]
	names := make([]string, 0, capHint(ncols, b))
	for i := uint64(0); i < ncols; i++ {
		ln, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < ln {
			return nil, fmt.Errorf("wire: result: bad column name")
		}
		names = append(names, string(b[n:n+int(ln)]))
		b = b[n+int(ln):]
	}
	nrows, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("wire: result: bad row count")
	}
	b = b[n:]
	rows := make([][]value.Value, 0, capHint(nrows, b))
	for i := uint64(0); i < nrows; i++ {
		var row []value.Value
		var err error
		row, b, err = value.DecodeRow(b)
		if err != nil {
			return nil, fmt.Errorf("wire: result row %d: %w", i, err)
		}
		rows = append(rows, row)
	}
	var stats exec.Stats
	inst, n := binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("wire: result: bad stats")
	}
	b = b[n:]
	srows, n := binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("wire: result: bad stats")
	}
	b = b[n:]
	stats.Instances, stats.Rows = int(inst), int(srows)
	if len(b) == 0 {
		return nil, fmt.Errorf("wire: result: missing structure flag")
	}
	flag := b[0]
	b = b[1:]
	var structured *exec.Group
	switch flag {
	case 0:
	case 1:
		var err error
		structured, b, err = decodeGroup(b, 0)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wire: result: bad structure flag %d", flag)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: result: %d trailing bytes", len(b))
	}
	return exec.RemoteResult(names, rows, structured, stats), nil
}

func decodeGroup(b []byte, depth int) (*exec.Group, []byte, error) {
	if depth > maxGroupDepth {
		return nil, nil, fmt.Errorf("wire: result: structure nested deeper than %d", maxGroupDepth)
	}
	ln, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < ln {
		return nil, nil, fmt.Errorf("wire: result: bad group label")
	}
	g := &exec.Group{Label: string(b[n : n+int(ln)])}
	b = b[n+int(ln):]
	level, n := binary.Varint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wire: result: bad group level")
	}
	g.Level = int(level)
	b = b[n:]
	nvals, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wire: result: bad group value count")
	}
	b = b[n:]
	g.Values = make([]value.Value, 0, capHint(nvals, b))
	g.Indexes = make([]int, 0, capHint(nvals, b))
	for i := uint64(0); i < nvals; i++ {
		v, rest, err := value.Decode(b)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: result group value: %w", err)
		}
		b = rest
		idx, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("wire: result: bad group value index")
		}
		b = b[n:]
		g.Values = append(g.Values, v)
		g.Indexes = append(g.Indexes, int(idx))
	}
	nkids, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wire: result: bad group child count")
	}
	b = b[n:]
	g.Children = make([]*exec.Group, 0, capHint(nkids, b))
	for i := uint64(0); i < nkids; i++ {
		c, rest, err := decodeGroup(b, depth+1)
		if err != nil {
			return nil, nil, err
		}
		g.Children = append(g.Children, c)
		b = rest
	}
	return g, b, nil
}

// capHint bounds a preallocation by the bytes actually remaining, so a
// hostile length prefix cannot force a huge allocation: every decoded
// element consumes at least one byte.
func capHint(n uint64, b []byte) int {
	if n > uint64(len(b)) {
		return len(b)
	}
	return int(n)
}
