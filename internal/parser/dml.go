package parser

import (
	"strconv"
	"strings"
	"time"

	"sim/internal/ast"
	"sim/internal/token"
	"sim/internal/value"
)

// timeNow is swappable for tests of CURRENT DATE.
var timeNow = time.Now

// ParseStmt parses a single DML statement. The terminating '.' or ';' is
// optional.
func ParseStmt(src string) (ast.Stmt, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind != token.EOF {
		return nil, p.errf(t.Pos, "unexpected %q after statement", t.Text)
	}
	return s, nil
}

// ParseStmts parses a sequence of DML statements separated by '.' or ';'.
func ParseStmts(src string) ([]ast.Stmt, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	var out []ast.Stmt
	for p.cur().Kind != token.EOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// SplitStmts splits a DML script into the source text of each statement,
// validating that the whole script parses. Boundaries come from the
// parser itself, so '.' inside strings or numbers never splits. Remote
// front ends use this to ship a script one statement at a time.
func SplitStmts(src string) ([]string, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	var starts []token.Pos
	for p.cur().Kind != token.EOF {
		starts = append(starts, p.cur().Pos)
		if _, err := p.parseStmt(); err != nil {
			return nil, err
		}
	}
	offs := posOffsets(src, starts)
	out := make([]string, len(starts))
	for i := range starts {
		end := len(src)
		if i+1 < len(starts) {
			end = offs[i+1]
		}
		out[i] = strings.TrimSpace(src[offs[i]:end])
	}
	return out, nil
}

// posOffsets converts ascending token positions to byte offsets by
// replaying the lexer's line/column accounting over src.
func posOffsets(src string, ps []token.Pos) []int {
	out := make([]int, len(ps))
	line, col, j := 1, 1, 0
	for i := 0; i < len(src) && j < len(ps); i++ {
		for j < len(ps) && ps[j].Line == line && ps[j].Col == col {
			out[j] = i
			j++
		}
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	for ; j < len(ps); j++ {
		out[j] = len(src)
	}
	return out
}

func (p *Parser) parseStmt() (ast.Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case token.FROM, token.RETRIEVE:
		return p.parseRetrieve()
	case token.INSERT:
		return p.parseInsert()
	case token.MODIFY:
		return p.parseModify()
	case token.DELETE:
		return p.parseDelete()
	case token.IDENT:
		// Transaction control words are contextual keywords, not reserved
		// tokens, so BEGIN/COMMIT/ROLLBACK stay legal as attribute names.
		switch strings.ToLower(t.Text) {
		case "begin":
			return p.parseTxnStmt(&ast.BeginStmt{P: t.Pos})
		case "commit":
			return p.parseTxnStmt(&ast.CommitStmt{P: t.Pos})
		case "rollback":
			return p.parseTxnStmt(&ast.RollbackStmt{P: t.Pos})
		}
	}
	return nil, p.errf(t.Pos, "expected FROM, RETRIEVE, INSERT, MODIFY, DELETE, BEGIN, COMMIT or ROLLBACK, found %q", t.Text)
}

// parseTxnStmt finishes BEGIN/COMMIT/ROLLBACK [TRANSACTION] [.|;].
func (p *Parser) parseTxnStmt(s ast.Stmt) (ast.Stmt, error) {
	p.next() // the control word itself
	if t := p.cur(); t.Kind == token.IDENT && strings.EqualFold(t.Text, "transaction") {
		p.next()
	}
	p.endStmt()
	return s, nil
}

// endStmt consumes an optional statement terminator ('.' or ';').
func (p *Parser) endStmt() {
	if !p.accept(token.PERIOD) {
		p.accept(token.SEMICOLON)
	}
}

// parseRetrieve parses:
//
//	[FROM <perspective list>] RETRIEVE [TABLE [DISTINCT] | STRUCTURE]
//	  <target list> [ORDER BY <order list>] [WHERE <expr>] [.|;]
func (p *Parser) parseRetrieve() (ast.Stmt, error) {
	stmt := &ast.RetrieveStmt{P: p.cur().Pos}
	if p.accept(token.FROM) {
		for {
			cls, pos, err := p.name("perspective list")
			if err != nil {
				return nil, err
			}
			ref := ast.PerspectiveRef{P: pos, Class: cls}
			// Optional reference variable: "From student s1, student s2".
			if t := p.cur(); t.Kind == token.IDENT {
				ref.Var = t.Text
				p.next()
			}
			stmt.Perspectives = append(stmt.Perspectives, ref)
			if p.accept(token.COMMA) {
				continue
			}
			break
		}
	}
	if _, err := p.expect(token.RETRIEVE, "retrieve statement"); err != nil {
		return nil, err
	}
	switch {
	case p.accept(token.TABLE):
		stmt.Mode = ast.OutputTable
		if p.accept(token.DISTINCT) {
			stmt.Mode = ast.OutputTableDistinct
		}
	case p.accept(token.STRUCTURE):
		stmt.Mode = ast.OutputStructure
	}
	targets, err := p.parseTargetList()
	if err != nil {
		return nil, err
	}
	stmt.Targets = targets
	// The paper's grammar places ORDER BY before WHERE; both orders are
	// accepted here.
	for {
		switch {
		case p.cur().Kind == token.ORDER && stmt.OrderBy == nil:
			p.next()
			if _, err := p.expect(token.BY, "order by clause"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				stmt.OrderBy = append(stmt.OrderBy, e)
				if p.accept(token.COMMA) {
					continue
				}
				break
			}
			continue
		case p.cur().Kind == token.WHERE && stmt.Where == nil:
			p.next()
			w, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Where = w
			continue
		}
		break
	}
	p.endStmt()
	return stmt, nil
}

// parseTargetList parses the comma-separated target expressions, supporting
// parenthetic factoring of qualifications: "(Title, Credits) of
// Courses-Enrolled" expands to two paths sharing the trailing steps.
func (p *Parser) parseTargetList() ([]ast.Expr, error) {
	var out []ast.Expr
	for {
		if p.cur().Kind == token.LPAREN && p.factoredGroupAhead() {
			exprs, err := p.parseFactoredGroup()
			if err != nil {
				return nil, err
			}
			out = append(out, exprs...)
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
		if p.accept(token.COMMA) {
			continue
		}
		return out, nil
	}
}

// factoredGroupAhead reports whether the LPAREN at the cursor opens a
// parenthesized comma group directly followed by OF — the paper's
// "parenthetically factored" qualification shorthand.
func (p *Parser) factoredGroupAhead() bool {
	depth := 0
	sawComma := false
	for n := 0; ; n++ {
		t := p.at(n)
		switch t.Kind {
		case token.LPAREN:
			depth++
		case token.RPAREN:
			depth--
			if depth == 0 {
				return sawComma && p.at(n+1).Kind == token.OF
			}
		case token.COMMA:
			if depth == 1 {
				sawComma = true
			}
		case token.EOF:
			return false
		}
	}
}

func (p *Parser) parseFactoredGroup() ([]ast.Expr, error) {
	if _, err := p.expect(token.LPAREN, "factored qualification"); err != nil {
		return nil, err
	}
	var exprs []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if p.accept(token.COMMA) {
			continue
		}
		break
	}
	if _, err := p.expect(token.RPAREN, "factored qualification"); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.OF, "factored qualification"); err != nil {
		return nil, err
	}
	steps, err := p.parsePathSteps()
	if err != nil {
		return nil, err
	}
	for i, e := range exprs {
		switch x := e.(type) {
		case *ast.Path:
			x.Steps = append(x.Steps, steps...)
		case *ast.Agg:
			x.Outer = append(x.Outer, steps...)
		default:
			return nil, p.errf(e.Pos(), "factored item %d is not a qualification", i+1)
		}
	}
	return exprs, nil
}

// parseInsert parses:
//
//	INSERT <class1> [FROM <class2> WHERE <expr>] [ ( <assignment list> ) ]
func (p *Parser) parseInsert() (ast.Stmt, error) {
	pos := p.next().Pos // INSERT
	cls, _, err := p.name("insert statement")
	if err != nil {
		return nil, err
	}
	stmt := &ast.InsertStmt{P: pos, Class: cls}
	if p.accept(token.FROM) {
		from, _, err := p.name("insert from clause")
		if err != nil {
			return nil, err
		}
		stmt.FromClass = from
		if _, err := p.expect(token.WHERE, "insert from clause"); err != nil {
			return nil, err
		}
		stmt.FromWhere, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(token.LPAREN) {
		stmt.Assigns, err = p.parseAssignList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN, "assignment list"); err != nil {
			return nil, err
		}
	}
	p.endStmt()
	return stmt, nil
}

// parseModify parses: MODIFY <class> ( <assignment list> ) [WHERE <expr>].
func (p *Parser) parseModify() (ast.Stmt, error) {
	pos := p.next().Pos // MODIFY
	cls, _, err := p.name("modify statement")
	if err != nil {
		return nil, err
	}
	stmt := &ast.ModifyStmt{P: pos, Class: cls}
	if _, err := p.expect(token.LPAREN, "modify statement"); err != nil {
		return nil, err
	}
	stmt.Assigns, err = p.parseAssignList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN, "assignment list"); err != nil {
		return nil, err
	}
	if p.accept(token.WHERE) {
		stmt.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	p.endStmt()
	return stmt, nil
}

// parseDelete parses: DELETE <class> [WHERE <expr>].
func (p *Parser) parseDelete() (ast.Stmt, error) {
	pos := p.next().Pos // DELETE
	cls, _, err := p.name("delete statement")
	if err != nil {
		return nil, err
	}
	stmt := &ast.DeleteStmt{P: pos, Class: cls}
	if p.accept(token.WHERE) {
		var err error
		stmt.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	p.endStmt()
	return stmt, nil
}

func (p *Parser) parseAssignList() ([]ast.Assign, error) {
	var out []ast.Assign
	for {
		a, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		if p.accept(token.COMMA) {
			continue
		}
		return out, nil
	}
}

// parseAssign parses one assignment:
//
//	soc-sec-no := 456887766
//	advisor := instructor with (name = "Joe Bloke")
//	courses-enrolled := exclude courses-enrolled with (title = "Algebra I")
//	salary := 1.1 * salary
func (p *Parser) parseAssign() (ast.Assign, error) {
	name, pos, err := p.name("assignment")
	if err != nil {
		return ast.Assign{}, err
	}
	a := ast.Assign{P: pos, Attr: name}
	if _, err := p.expect(token.ASSIGN, "assignment"); err != nil {
		return a, err
	}
	switch {
	case p.accept(token.INCLUDE):
		a.Mode = ast.AssignInclude
	case p.accept(token.EXCLUDE):
		a.Mode = ast.AssignExclude
	}
	// Entity selection: <name> WITH ( expr ). Distinguish from a scalar
	// expression by the WITH keyword following a bare name.
	t := p.cur()
	if (t.Kind == token.IDENT || isNameKeyword(t.Kind)) && p.peek().Kind == token.WITH {
		selName, selPos, _ := p.name("entity selection")
		p.next() // WITH
		if _, err := p.expect(token.LPAREN, "entity selection"); err != nil {
			return a, err
		}
		sel := &ast.EntitySel{P: selPos, Name: selName}
		if p.cur().Kind != token.RPAREN {
			sel.Where, err = p.parseExpr()
			if err != nil {
				return a, err
			}
		}
		if _, err := p.expect(token.RPAREN, "entity selection"); err != nil {
			return a, err
		}
		a.Entity = sel
		return a, nil
	}
	// Scalar right-hand side; with INCLUDE/EXCLUDE this operates on a
	// multi-valued DVA (§4.8 applies the keywords to all MV attributes).
	a.Value, err = p.parseExpr()
	return a, err
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// parseExpr parses a full boolean/value expression.
func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == token.OR {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{P: pos, Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == token.AND {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{P: pos, Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.cur().Kind == token.NOT {
		pos := p.next().Pos
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{P: pos, Op: ast.OpNot, X: x}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[token.Kind]ast.BinaryOp{
	token.EQ:    ast.OpEQ,
	token.NEQ:   ast.OpNEQ,
	token.NEQKW: ast.OpNEQ,
	token.LT:    ast.OpLT,
	token.LE:    ast.OpLE,
	token.GT:    ast.OpGT,
	token.GE:    ast.OpGE,
	token.LIKE:  ast.OpLike,
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == token.ISA {
		pos := p.next().Pos
		cls, _, err := p.name("isa expression")
		if err != nil {
			return nil, err
		}
		path, ok := l.(*ast.Path)
		if !ok {
			return nil, p.errf(pos, "left operand of ISA must be an entity qualification")
		}
		return &ast.Isa{P: pos, Entity: path, Class: cls}, nil
	}
	op, ok := cmpOps[t.Kind]
	if !ok {
		return l, nil
	}
	pos := p.next().Pos
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &ast.Binary{P: pos, Op: op, L: l, R: r}, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch p.cur().Kind {
		case token.PLUS:
			op = ast.OpAdd
		case token.MINUS:
			op = ast.OpSub
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{P: pos, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch p.cur().Kind {
		case token.STAR:
			op = ast.OpMul
		case token.SLASH:
			op = ast.OpDiv
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{P: pos, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.cur().Kind == token.MINUS {
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{P: pos, Op: ast.OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[token.Kind]ast.AggFunc{
	token.COUNT: ast.AggCount,
	token.SUM:   ast.AggSum,
	token.AVG:   ast.AggAvg,
	token.MIN:   ast.AggMin,
	token.MAX:   ast.AggMax,
	// MINIMUM/MAXIMUM spellings are also accepted.
	token.MINIMUM: ast.AggMin,
	token.MAXIMUM: ast.AggMax,
}

var quantKinds = map[token.Kind]ast.Quant{
	token.SOME: ast.QSome,
	token.ALL:  ast.QAll,
	token.NO:   ast.QNo,
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf(t.Pos, "integer %q out of range", t.Text)
		}
		return &ast.Lit{P: t.Pos, Val: value.NewInt(v)}, nil
	case token.NUMBER:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf(t.Pos, "number %q out of range", t.Text)
		}
		return &ast.Lit{P: t.Pos, Val: value.NewNumber(f)}, nil
	case token.STRING:
		p.next()
		return &ast.Lit{P: t.Pos, Val: value.NewString(t.Text)}, nil
	case token.TRUE:
		p.next()
		return &ast.Lit{P: t.Pos, Val: value.NewBool(true)}, nil
	case token.FALSE:
		p.next()
		return &ast.Lit{P: t.Pos, Val: value.NewBool(false)}, nil
	case token.NULL:
		p.next()
		return &ast.Lit{P: t.Pos, Val: value.Null}, nil
	case token.CURRENT:
		// CURRENT DATE: today's date as a literal (§4.9's "array of
		// operators and primitive functions").
		if p.peek().Kind == token.DATE {
			p.next()
			p.next()
			return &ast.Lit{P: t.Pos, Val: value.DateFromTime(timeNow())}, nil
		}
	case token.LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN, "parenthesized expression"); err != nil {
			return nil, err
		}
		return e, nil
	}

	// Aggregate: COUNT [DISTINCT] ( path ) [OF steps]. The aggregate
	// keywords double as plain names when not followed by '(' or DISTINCT.
	if f, ok := aggFuncs[t.Kind]; ok {
		if p.peek().Kind == token.LPAREN || (p.peek().Kind == token.DISTINCT && p.at(2).Kind == token.LPAREN) {
			p.next()
			agg := &ast.Agg{P: t.Pos, Func: f}
			if p.accept(token.DISTINCT) {
				agg.Distinct = true
			}
			if _, err := p.expect(token.LPAREN, "aggregate"); err != nil {
				return nil, err
			}
			inner, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			agg.Inner = inner
			if _, err := p.expect(token.RPAREN, "aggregate"); err != nil {
				return nil, err
			}
			if p.accept(token.OF) {
				agg.Outer, err = p.parsePathSteps()
				if err != nil {
					return nil, err
				}
			}
			return agg, nil
		}
	}

	// Quantifier: SOME ( path ) [OF steps].
	if q, ok := quantKinds[t.Kind]; ok && p.peek().Kind == token.LPAREN {
		p.next()
		p.next() // (
		inner, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		qn := &ast.Quantified{P: t.Pos, Quant: q, Inner: inner}
		if _, err := p.expect(token.RPAREN, "quantifier"); err != nil {
			return nil, err
		}
		if p.accept(token.OF) {
			qn.Outer, err = p.parsePathSteps()
			if err != nil {
				return nil, err
			}
		}
		return qn, nil
	}

	if t.Kind == token.IDENT || t.Kind == token.TRANSITIVE || t.Kind == token.INVERSE || isNameKeyword(t.Kind) {
		return p.parsePath()
	}
	return nil, p.errf(t.Pos, "unexpected %q in expression", t.Text)
}

// parsePath parses a qualification chain: step { OF step }.
func (p *Parser) parsePath() (*ast.Path, error) {
	pos := p.cur().Pos
	steps, err := p.parsePathSteps()
	if err != nil {
		return nil, err
	}
	return &ast.Path{P: pos, Steps: steps}, nil
}

func (p *Parser) parsePathSteps() ([]ast.PathStep, error) {
	var steps []ast.PathStep
	for {
		s, err := p.parsePathStep()
		if err != nil {
			return nil, err
		}
		steps = append(steps, s)
		if p.accept(token.OF) {
			continue
		}
		return steps, nil
	}
}

// parsePathStep parses one step: [TRANSITIVE(] name | INVERSE(name) [)]
// [AS class].
func (p *Parser) parsePathStep() (ast.PathStep, error) {
	var s ast.PathStep
	if p.cur().Kind == token.TRANSITIVE && p.peek().Kind == token.LPAREN {
		p.next()
		p.next()
		s.Transitive = true
		if p.cur().Kind == token.INVERSE && p.peek().Kind == token.LPAREN {
			if err := p.parseInverseName(&s); err != nil {
				return s, err
			}
		} else {
			n, _, err := p.name("transitive closure")
			if err != nil {
				return s, err
			}
			s.Name = n
		}
		if _, err := p.expect(token.RPAREN, "transitive closure"); err != nil {
			return s, err
		}
	} else if p.cur().Kind == token.INVERSE && p.peek().Kind == token.LPAREN {
		if err := p.parseInverseName(&s); err != nil {
			return s, err
		}
	} else {
		n, _, err := p.name("qualification")
		if err != nil {
			return s, err
		}
		s.Name = n
	}
	if p.accept(token.AS) {
		cls, _, err := p.name("role conversion")
		if err != nil {
			return s, err
		}
		s.As = cls
	}
	return s, nil
}

func (p *Parser) parseInverseName(s *ast.PathStep) error {
	p.next() // INVERSE
	p.next() // (
	n, _, err := p.name("inverse reference")
	if err != nil {
		return err
	}
	s.Name = n
	s.Inverse = true
	_, err = p.expect(token.RPAREN, "inverse reference")
	return err
}
