package parser

import (
	"strings"
	"testing"
	"time"

	"sim/internal/ast"
	"sim/internal/university"
)

func parseSchemaOK(t *testing.T, src string) *ast.Schema {
	t.Helper()
	sch, err := ParseSchema(src)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	return sch
}

func TestParseUniversitySchema(t *testing.T) {
	sch := parseSchemaOK(t, university.DDL)
	var types, classes, verifies int
	for _, d := range sch.Decls {
		switch d.(type) {
		case *ast.TypeDecl:
			types++
		case *ast.ClassDecl:
			classes++
		case *ast.VerifyDecl:
			verifies++
		}
	}
	if types != 2 || classes != 6 || verifies != 2 {
		t.Errorf("got %d types, %d classes, %d verifies; want 2, 6, 2", types, classes, verifies)
	}
}

func TestParseClassDetail(t *testing.T) {
	sch := parseSchemaOK(t, university.DDL)
	var instructor *ast.ClassDecl
	for _, d := range sch.Decls {
		if c, ok := d.(*ast.ClassDecl); ok && strings.EqualFold(c.Name, "instructor") {
			instructor = c
		}
	}
	if instructor == nil {
		t.Fatal("instructor not parsed")
	}
	if len(instructor.Supers) != 1 || !strings.EqualFold(instructor.Supers[0], "person") {
		t.Errorf("instructor supers = %v", instructor.Supers)
	}
	byName := map[string]ast.AttrDecl{}
	for _, a := range instructor.Attrs {
		byName[strings.ToLower(a.Name)] = a
	}
	ct := byName["courses-taught"]
	if ct.Inverse != "teachers" {
		t.Errorf("courses-taught inverse = %q", ct.Inverse)
	}
	if !ct.Options.MV || ct.Options.Max != 3 || !ct.Options.Distinct {
		t.Errorf("courses-taught options = %+v", ct.Options)
	}
	sal := byName["salary"]
	nt, ok := sal.Type.(*ast.NumberType)
	if !ok || nt.Precision != 9 || nt.Scale != 2 {
		t.Errorf("salary type = %#v", sal.Type)
	}
}

func TestParseMultipleInheritance(t *testing.T) {
	sch := parseSchemaOK(t, `Subclass TA of Student and Instructor ( x: integer );`)
	c := sch.Decls[0].(*ast.ClassDecl)
	if len(c.Supers) != 2 {
		t.Fatalf("supers = %v", c.Supers)
	}
}

func TestParseVerify(t *testing.T) {
	sch := parseSchemaOK(t, `Verify v1 on Student assert sum(credits of courses-enrolled) >= 12 else "too few";`)
	v := sch.Decls[0].(*ast.VerifyDecl)
	if v.Name != "v1" || v.Class != "Student" || v.ElseMsg != "too few" {
		t.Errorf("verify = %+v", v)
	}
	cmp, ok := v.Assert.(*ast.Binary)
	if !ok || cmp.Op != ast.OpGE {
		t.Fatalf("assert = %#v", v.Assert)
	}
	agg, ok := cmp.L.(*ast.Agg)
	if !ok || agg.Func != ast.AggSum {
		t.Fatalf("assert lhs = %#v", cmp.L)
	}
	if len(agg.Inner.Steps) != 2 {
		t.Errorf("sum inner path = %v", agg.Inner)
	}
}

// stmt parses one DML statement or fails the test.
func stmt(t *testing.T, src string) ast.Stmt {
	t.Helper()
	s, err := ParseStmt(src)
	if err != nil {
		t.Fatalf("ParseStmt(%q): %v", src, err)
	}
	return s
}

func TestParseSimpleRetrieve(t *testing.T) {
	s := stmt(t, `From Student Retrieve Name, Name of Advisor.`).(*ast.RetrieveStmt)
	if len(s.Perspectives) != 1 || !strings.EqualFold(s.Perspectives[0].Class, "Student") {
		t.Errorf("perspectives = %v", s.Perspectives)
	}
	if len(s.Targets) != 2 {
		t.Fatalf("targets = %v", s.Targets)
	}
	p2 := s.Targets[1].(*ast.Path)
	if len(p2.Steps) != 2 || p2.Steps[0].Name != "Name" || p2.Steps[1].Name != "Advisor" {
		t.Errorf("second target path = %v", p2)
	}
}

// The paper's §4.4 binding example.
func TestParseBindingExample(t *testing.T) {
	s := stmt(t, `
Retrieve Name of Student,
  Title of Courses-Enrolled of Student,
  Credits of Courses-Enrolled of Student,
  Name of Teachers of Courses-Enrolled of Student
Where Soc-Sec-No of Student = 456887766.`).(*ast.RetrieveStmt)
	if len(s.Targets) != 4 {
		t.Fatalf("targets = %d", len(s.Targets))
	}
	last := s.Targets[3].(*ast.Path)
	if len(last.Steps) != 4 {
		t.Errorf("deep path steps = %v", last.Steps)
	}
	if s.Where == nil {
		t.Error("where missing")
	}
}

// §4.9 example 1: insert with EVA entity selection.
func TestParseInsertExample1(t *testing.T) {
	s := stmt(t, `
Insert student(name := "John Doe",
  soc-sec-no := 456887766,
  courses-enrolled := course with (title = "Algebra I")).`).(*ast.InsertStmt)
	if !strings.EqualFold(s.Class, "student") || s.FromClass != "" {
		t.Errorf("insert head = %+v", s)
	}
	if len(s.Assigns) != 3 {
		t.Fatalf("assigns = %d", len(s.Assigns))
	}
	ce := s.Assigns[2]
	if ce.Entity == nil || !strings.EqualFold(ce.Entity.Name, "course") {
		t.Fatalf("courses-enrolled assign = %+v", ce)
	}
	if ce.Entity.Where == nil {
		t.Error("entity selection where missing")
	}
}

// §4.9 example 2: role-extending insert.
func TestParseInsertExample2(t *testing.T) {
	s := stmt(t, `
Insert instructor
From person Where name = "John Doe"
(employee-nbr := 1729).`).(*ast.InsertStmt)
	if !strings.EqualFold(s.FromClass, "person") || s.FromWhere == nil {
		t.Errorf("from clause = %+v", s)
	}
	if len(s.Assigns) != 1 || !strings.EqualFold(s.Assigns[0].Attr, "employee-nbr") {
		t.Errorf("assigns = %+v", s.Assigns)
	}
}

// §4.9 example 3: modify with exclude and EVA assignment.
func TestParseModifyExample3(t *testing.T) {
	s := stmt(t, `
Modify student (
  courses-enrolled := exclude courses-enrolled with (title = "Algebra I"),
  advisor := instructor with (name = "Joe Bloke"))
Where name of student = "John Doe"`).(*ast.ModifyStmt)
	if len(s.Assigns) != 2 {
		t.Fatalf("assigns = %d", len(s.Assigns))
	}
	if s.Assigns[0].Mode != ast.AssignExclude {
		t.Errorf("first assign mode = %v", s.Assigns[0].Mode)
	}
	if !strings.EqualFold(s.Assigns[0].Entity.Name, "courses-enrolled") {
		t.Errorf("exclude target = %v", s.Assigns[0].Entity.Name)
	}
	if s.Assigns[1].Mode != ast.AssignSet || s.Assigns[1].Entity == nil {
		t.Errorf("second assign = %+v", s.Assigns[1])
	}
	if s.Where == nil {
		t.Error("where missing")
	}
}

// §4.9 example 4: arithmetic update with aggregate + quantifier predicate.
func TestParseModifyExample4(t *testing.T) {
	s := stmt(t, `
Modify instructor( salary := 1.1 * salary)
Where count(courses-taught) of instructor > 3 and
  assigned-department neq some(major-department of advisees).`).(*ast.ModifyStmt)
	mul, ok := s.Assigns[0].Value.(*ast.Binary)
	if !ok || mul.Op != ast.OpMul {
		t.Fatalf("salary rhs = %#v", s.Assigns[0].Value)
	}
	and := s.Where.(*ast.Binary)
	if and.Op != ast.OpAnd {
		t.Fatalf("where = %#v", s.Where)
	}
	left := and.L.(*ast.Binary)
	agg, ok := left.L.(*ast.Agg)
	if !ok || agg.Func != ast.AggCount || len(agg.Outer) != 1 {
		t.Fatalf("count(...) of instructor = %#v", left.L)
	}
	right := and.R.(*ast.Binary)
	if right.Op != ast.OpNEQ {
		t.Fatalf("neq = %#v", right)
	}
	q, ok := right.R.(*ast.Quantified)
	if !ok || q.Quant != ast.QSome {
		t.Fatalf("some(...) = %#v", right.R)
	}
}

// §4.9 example 5: count distinct of a transitive closure.
func TestParseTransitiveExample5(t *testing.T) {
	s := stmt(t, `
From course
Retrieve count distinct (transitive(prerequisite-of))
Where title = "Quantum Chromodynamics".`).(*ast.RetrieveStmt)
	agg := s.Targets[0].(*ast.Agg)
	if !agg.Distinct || agg.Func != ast.AggCount {
		t.Errorf("agg = %+v", agg)
	}
	if !agg.Inner.Steps[0].Transitive {
		t.Error("inner step not transitive")
	}
}

// §4.7 transitive closure in a target path.
func TestParseTransitivePath(t *testing.T) {
	s := stmt(t, `
Retrieve Title of Transitive(prerequisites) of Course
Where Title of Course = "Calculus I".`).(*ast.RetrieveStmt)
	p := s.Targets[0].(*ast.Path)
	if len(p.Steps) != 3 || !p.Steps[1].Transitive {
		t.Errorf("path = %v", p)
	}
}

// §4.9 example 7: multi-perspective query with ISA and NOT.
func TestParseMultiPerspectiveExample7(t *testing.T) {
	s := stmt(t, `
From student, instructor
Retrieve name of student, name of Instructor
Where birthdate of student < birthdate of instructor and
  advisor of student NEQ instructor and
  not instructor isa teaching-assistant.`).(*ast.RetrieveStmt)
	if len(s.Perspectives) != 2 {
		t.Fatalf("perspectives = %v", s.Perspectives)
	}
	// The where is (a and b) and (not isa).
	and := s.Where.(*ast.Binary)
	not, ok := and.R.(*ast.Unary)
	if !ok || not.Op != ast.OpNot {
		t.Fatalf("not-isa = %#v", and.R)
	}
	isa, ok := not.X.(*ast.Isa)
	if !ok || !strings.EqualFold(isa.Class, "teaching-assistant") {
		t.Fatalf("isa = %#v", not.X)
	}
}

func TestParseReferenceVariables(t *testing.T) {
	s := stmt(t, `From student s1, student s2 Retrieve name of s1, name of s2 Where advisor of s1 = advisor of s2.`).(*ast.RetrieveStmt)
	if s.Perspectives[0].Var != "s1" || s.Perspectives[1].Var != "s2" {
		t.Errorf("vars = %+v", s.Perspectives)
	}
}

func TestParseRoleConversionAS(t *testing.T) {
	s := stmt(t, `From Student Retrieve Teaching-Load of Student as Teaching-Assistant.`).(*ast.RetrieveStmt)
	p := s.Targets[0].(*ast.Path)
	if !strings.EqualFold(p.Steps[1].As, "teaching-assistant") {
		t.Errorf("as = %v", p.Steps)
	}
	s = stmt(t, `From Student Retrieve Student-No of Spouse as Student of Student.`).(*ast.RetrieveStmt)
	p = s.Targets[0].(*ast.Path)
	if len(p.Steps) != 3 || !strings.EqualFold(p.Steps[1].As, "student") {
		t.Errorf("spouse as student = %v", p.Steps)
	}
}

func TestParseInverseReference(t *testing.T) {
	s := stmt(t, `From Instructor Retrieve name of INVERSE(ADVISOR).`).(*ast.RetrieveStmt)
	p := s.Targets[0].(*ast.Path)
	if !p.Steps[1].Inverse || !strings.EqualFold(p.Steps[1].Name, "advisor") {
		t.Errorf("inverse step = %+v", p.Steps[1])
	}
}

func TestParseOutputModes(t *testing.T) {
	if s := stmt(t, `From c Retrieve x.`).(*ast.RetrieveStmt); s.Mode != ast.OutputTable {
		t.Errorf("default mode = %v", s.Mode)
	}
	if s := stmt(t, `From c Retrieve table distinct x.`).(*ast.RetrieveStmt); s.Mode != ast.OutputTableDistinct {
		t.Errorf("mode = %v", s.Mode)
	}
	if s := stmt(t, `From c Retrieve structure x, y of z.`).(*ast.RetrieveStmt); s.Mode != ast.OutputStructure {
		t.Errorf("mode = %v", s.Mode)
	}
}

func TestParseOrderBy(t *testing.T) {
	s := stmt(t, `From student Retrieve name Order By name, student-nbr Where name neq null.`).(*ast.RetrieveStmt)
	if len(s.OrderBy) != 2 {
		t.Errorf("order by = %v", s.OrderBy)
	}
}

func TestParseFactoredQualification(t *testing.T) {
	s := stmt(t, `From Student Retrieve (Title, Credits) of Courses-Enrolled.`).(*ast.RetrieveStmt)
	if len(s.Targets) != 2 {
		t.Fatalf("targets = %d", len(s.Targets))
	}
	for i, tgt := range s.Targets {
		p := tgt.(*ast.Path)
		if len(p.Steps) != 2 || !strings.EqualFold(p.Steps[1].Name, "courses-enrolled") {
			t.Errorf("target %d = %v", i, p)
		}
	}
}

func TestParseDelete(t *testing.T) {
	s := stmt(t, `Delete student Where name = "John Doe".`).(*ast.DeleteStmt)
	if !strings.EqualFold(s.Class, "student") || s.Where == nil {
		t.Errorf("delete = %+v", s)
	}
	s = stmt(t, `Delete student.`).(*ast.DeleteStmt)
	if s.Where != nil {
		t.Error("bare delete should have nil where")
	}
}

func TestParseNullAssignment(t *testing.T) {
	s := stmt(t, `Modify student (advisor := null) Where name = "X".`).(*ast.ModifyStmt)
	lit, ok := s.Assigns[0].Value.(*ast.Lit)
	if !ok || !lit.Val.IsNull() {
		t.Errorf("null assign = %#v", s.Assigns[0].Value)
	}
}

func TestParseIncludeEVA(t *testing.T) {
	s := stmt(t, `Modify student (courses-enrolled := include course with (title = "Algebra I")) Where name = "X".`).(*ast.ModifyStmt)
	if s.Assigns[0].Mode != ast.AssignInclude || s.Assigns[0].Entity == nil {
		t.Errorf("include = %+v", s.Assigns[0])
	}
}

func TestParseLike(t *testing.T) {
	s := stmt(t, `From course Retrieve title Where title like "Quantum*".`).(*ast.RetrieveStmt)
	b := s.Where.(*ast.Binary)
	if b.Op != ast.OpLike {
		t.Errorf("op = %v", b.Op)
	}
}

func TestParseStmts(t *testing.T) {
	ss, err := ParseStmts(`
Insert course (course-no := 1, title := "A", credits := 3).
Insert course (course-no := 2, title := "B", credits := 3).
From course Retrieve title.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 3 {
		t.Fatalf("got %d statements", len(ss))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`Retrieve`,                      // empty target list
		`From Retrieve x`,               // missing class
		`Modify student set x = 1`,      // wrong syntax
		`Insert student (x := include)`, // include with nothing
		`From c Retrieve x Where`,       // dangling where
		`From c Retrieve count(x`,       // unclosed paren
		`Class A ( x integer );`,        // missing colon (DDL via ParseStmt)
		`From c Retrieve x Order name`,  // missing BY
		`Verify v on c assert x`,        // verify is DDL, not DML
	}
	for _, src := range bad {
		if _, err := ParseStmt(src); err == nil {
			t.Errorf("ParseStmt(%q) succeeded, want error", src)
		}
	}
	badDDL := []string{
		`Class A ( x: integer ; )`,       // missing terminating ;
		`Type t = symbolic ();`,          // empty symbolic
		`Class A ( x: integer (9..1) );`, // empty range
		`Class A ( x: string[0] );`,      // zero length
		`Class A ( m: integer mv (max 0) );`,
	}
	for _, src := range badDDL {
		if _, err := ParseSchema(src); err == nil {
			t.Errorf("ParseSchema(%q) succeeded, want error", src)
		}
	}
}

func TestAggregateKeywordAsName(t *testing.T) {
	// MAX used as an attribute name, not an aggregate.
	s := stmt(t, `From c Retrieve max Where max > 3.`).(*ast.RetrieveStmt)
	if _, ok := s.Targets[0].(*ast.Path); !ok {
		t.Errorf("max as name parsed as %#v", s.Targets[0])
	}
}

func TestParseCurrentDate(t *testing.T) {
	old := timeNow
	timeNow = func() time.Time { return time.Date(1988, 6, 1, 12, 0, 0, 0, time.UTC) }
	defer func() { timeNow = old }()
	s := stmt(t, `From person Retrieve name Where birthdate < current date.`).(*ast.RetrieveStmt)
	cmp := s.Where.(*ast.Binary)
	lit, ok := cmp.R.(*ast.Lit)
	if !ok || lit.Val.String() != "1988-06-01" {
		t.Errorf("current date = %#v", cmp.R)
	}
}

func TestPathString(t *testing.T) {
	s := stmt(t, `From Student Retrieve Name of Advisor as Teaching-Assistant.`).(*ast.RetrieveStmt)
	p := s.Targets[0].(*ast.Path)
	got := p.String()
	if !strings.Contains(got, "of Advisor as Teaching-Assistant") {
		t.Errorf("String() = %q", got)
	}
}
