// Package parser implements a recursive-descent parser for SIM's schema
// definition language (§3, §7) and DML (§4).
package parser

import (
	"fmt"
	"strconv"

	"sim/internal/ast"
	"sim/internal/lexer"
	"sim/internal/token"
)

// Error is a parse error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// Parser holds the token stream and position for one parse.
type Parser struct {
	toks []token.Token
	i    int
}

// New tokenizes src and returns a parser over it.
func New(src string) (*Parser, error) {
	toks, err := lexer.All(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

func (p *Parser) cur() token.Token  { return p.toks[p.i] }
func (p *Parser) peek() token.Token { return p.at(1) }

func (p *Parser) at(n int) token.Token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.i+n]
}

func (p *Parser) next() token.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.i++
	}
	return t
}

func (p *Parser) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of kind k or fails.
func (p *Parser) expect(k token.Kind, what string) (token.Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errf(t.Pos, "expected %s in %s, found %q", k, what, t.Text)
	}
	return p.next(), nil
}

// accept consumes the next token when it is of kind k.
func (p *Parser) accept(k token.Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

// name consumes an identifier-like token (identifiers and non-structural
// keywords may both name schema objects; SIM's hyphenated names make many
// words identifiers anyway).
func (p *Parser) name(what string) (string, token.Pos, error) {
	t := p.cur()
	if t.Kind == token.IDENT || isNameKeyword(t.Kind) {
		p.next()
		return t.Text, t.Pos, nil
	}
	return "", t.Pos, p.errf(t.Pos, "expected a name in %s, found %q", what, t.Text)
}

// isNameKeyword lists keywords permitted as schema identifiers when they
// appear where a name is required (e.g. an attribute called "date" would be
// unusual, but MAX/MIN/COUNT-like words are never needed structurally in
// name position).
func isNameKeyword(k token.Kind) bool {
	switch k {
	case token.DATE, token.MAX, token.MIN, token.COUNT, token.SUM, token.AVG,
		token.TABLE, token.STRUCTURE, token.ORDER, token.TYPE, token.ALL,
		token.NO, token.SOME, token.CURRENT:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// ParseSchema parses a full DDL text: a sequence of Type, Class, Subclass
// and Verify declarations, each terminated by ';'.
func ParseSchema(src string) (*ast.Schema, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	sch := &ast.Schema{}
	for p.cur().Kind != token.EOF {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		sch.Decls = append(sch.Decls, d)
	}
	return sch, nil
}

func (p *Parser) parseDecl() (ast.Decl, error) {
	t := p.cur()
	switch {
	case t.Kind == token.TYPE:
		return p.parseTypeDecl()
	case t.Kind == token.CLASS:
		return p.parseClassDecl(false)
	case t.Kind == token.SUBCLASS:
		return p.parseClassDecl(true)
	case t.Kind == token.VERIFY:
		return p.parseVerifyDecl()
	}
	return nil, p.errf(t.Pos, "expected Type, Class, Subclass or Verify, found %q", t.Text)
}

// parseTypeDecl parses: Type degree = symbolic (BS, MBA, MS, PHD);
func (p *Parser) parseTypeDecl() (ast.Decl, error) {
	pos := p.next().Pos // TYPE
	name, _, err := p.name("type declaration")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.EQ, "type declaration"); err != nil {
		return nil, err
	}
	def, err := p.parseTypeExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON, "type declaration"); err != nil {
		return nil, err
	}
	return &ast.TypeDecl{P: pos, Name: name, Def: def}, nil
}

// parseClassDecl parses Class or Subclass declarations:
//
//	Class Person ( ... );
//	Subclass Teaching-assistant of Student and Instructor ( ... );
func (p *Parser) parseClassDecl(sub bool) (ast.Decl, error) {
	pos := p.next().Pos // CLASS or SUBCLASS
	name, _, err := p.name("class declaration")
	if err != nil {
		return nil, err
	}
	decl := &ast.ClassDecl{P: pos, Name: name}
	if sub {
		if _, err := p.expect(token.OF, "subclass declaration"); err != nil {
			return nil, err
		}
		for {
			super, _, err := p.name("superclass list")
			if err != nil {
				return nil, err
			}
			decl.Supers = append(decl.Supers, super)
			if p.accept(token.AND) || p.accept(token.COMMA) {
				continue
			}
			break
		}
	}
	if _, err := p.expect(token.LPAREN, "class body"); err != nil {
		return nil, err
	}
	for p.cur().Kind != token.RPAREN {
		attr, err := p.parseAttrDecl()
		if err != nil {
			return nil, err
		}
		decl.Attrs = append(decl.Attrs, attr)
		if p.accept(token.SEMICOLON) {
			continue
		}
		break
	}
	if _, err := p.expect(token.RPAREN, "class body"); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON, "class declaration"); err != nil {
		return nil, err
	}
	return decl, nil
}

// parseAttrDecl parses one attribute:
//
//	soc-sec-no: integer, unique, required
//	advisees: student inverse is advisor mv (max 10)
//	courses-taught: course inverse is courses-taught mv (max 3, distinct)
//	dept-nbr: integer(100..999) required unique
func (p *Parser) parseAttrDecl() (ast.AttrDecl, error) {
	name, pos, err := p.name("attribute declaration")
	if err != nil {
		return ast.AttrDecl{}, err
	}
	a := ast.AttrDecl{P: pos, Name: name}
	if _, err := p.expect(token.COLON, "attribute declaration"); err != nil {
		return a, err
	}
	// Derived attribute: <name>: derived <expr>.
	if p.accept(token.DERIVED) {
		a.Derived, err = p.parseExpr()
		return a, err
	}
	a.Type, err = p.parseTypeExpr()
	if err != nil {
		return a, err
	}
	// inverse is <name>
	if p.cur().Kind == token.INVERSE {
		p.next()
		if _, err := p.expect(token.IS, "inverse clause"); err != nil {
			return a, err
		}
		inv, _, err := p.name("inverse clause")
		if err != nil {
			return a, err
		}
		a.Inverse = inv
	}
	// Options, optionally comma-separated.
	for {
		switch {
		case p.accept(token.COMMA):
			continue
		case p.cur().Kind == token.UNIQUE:
			p.next()
			a.Options.Unique = true
		case p.cur().Kind == token.REQUIRED:
			p.next()
			a.Options.Required = true
		case p.cur().Kind == token.MV:
			p.next()
			a.Options.MV = true
			if p.accept(token.LPAREN) {
				if err := p.parseMVOptions(&a.Options); err != nil {
					return a, err
				}
			}
		case p.cur().Kind == token.DISTINCT:
			p.next()
			a.Options.Distinct = true
		default:
			return a, nil
		}
	}
}

// parseMVOptions parses the parenthesized multi-value options after MV:
// (max 10), (distinct), (max 3, distinct).
func (p *Parser) parseMVOptions(opts *ast.AttrOptions) error {
	for {
		t := p.cur()
		switch t.Kind {
		case token.MAX, token.MAXIMUM:
			p.next()
			n, err := p.expect(token.INT, "max option")
			if err != nil {
				return err
			}
			v, err := strconv.Atoi(n.Text)
			if err != nil || v <= 0 {
				return p.errf(n.Pos, "invalid max cardinality %q", n.Text)
			}
			opts.Max = v
		case token.DISTINCT:
			p.next()
			opts.Distinct = true
		default:
			return p.errf(t.Pos, "expected MAX or DISTINCT in multi-value options, found %q", t.Text)
		}
		if p.accept(token.COMMA) {
			continue
		}
		_, err := p.expect(token.RPAREN, "multi-value options")
		return err
	}
}

// parseTypeExpr parses a declared type.
func (p *Parser) parseTypeExpr() (ast.TypeExpr, error) {
	t := p.cur()
	switch t.Kind {
	case token.STRINGKW:
		p.next()
		st := &ast.StringType{P: t.Pos}
		if p.accept(token.LBRACKET) {
			n, err := p.expect(token.INT, "string length")
			if err != nil {
				return nil, err
			}
			st.Len, _ = strconv.Atoi(n.Text)
			if st.Len <= 0 {
				return nil, p.errf(n.Pos, "string length must be positive")
			}
			if _, err := p.expect(token.RBRACKET, "string length"); err != nil {
				return nil, err
			}
		}
		return st, nil
	case token.INTEGER:
		p.next()
		it := &ast.IntType{P: t.Pos}
		if p.accept(token.LPAREN) {
			for {
				lo, err := p.parseSignedInt("integer range")
				if err != nil {
					return nil, err
				}
				hi := lo
				if p.accept(token.DOTDOT) {
					hi, err = p.parseSignedInt("integer range")
					if err != nil {
						return nil, err
					}
				}
				if hi < lo {
					return nil, p.errf(t.Pos, "integer range %d..%d is empty", lo, hi)
				}
				it.Ranges = append(it.Ranges, [2]int64{lo, hi})
				if p.accept(token.COMMA) {
					continue
				}
				if _, err := p.expect(token.RPAREN, "integer ranges"); err != nil {
					return nil, err
				}
				break
			}
		}
		return it, nil
	case token.NUMBERKW:
		p.next()
		nt := &ast.NumberType{P: t.Pos}
		if p.accept(token.LBRACKET) {
			prec, err := p.expect(token.INT, "number precision")
			if err != nil {
				return nil, err
			}
			nt.Precision, _ = strconv.Atoi(prec.Text)
			if p.accept(token.COMMA) {
				sc, err := p.expect(token.INT, "number scale")
				if err != nil {
					return nil, err
				}
				nt.Scale, _ = strconv.Atoi(sc.Text)
			}
			if nt.Precision <= 0 || nt.Scale < 0 || nt.Scale > nt.Precision {
				return nil, p.errf(t.Pos, "invalid number[%d,%d]", nt.Precision, nt.Scale)
			}
			if _, err := p.expect(token.RBRACKET, "number type"); err != nil {
				return nil, err
			}
		}
		return nt, nil
	case token.REAL:
		p.next()
		return &ast.RealType{P: t.Pos}, nil
	case token.DATE:
		p.next()
		return &ast.DateType{P: t.Pos}, nil
	case token.BOOLEAN:
		p.next()
		return &ast.BoolType{P: t.Pos}, nil
	case token.SYMBOLIC:
		p.next()
		if _, err := p.expect(token.LPAREN, "symbolic type"); err != nil {
			return nil, err
		}
		st := &ast.SymbolicType{P: t.Pos}
		for {
			lbl, _, err := p.name("symbolic label")
			if err != nil {
				return nil, err
			}
			st.Labels = append(st.Labels, lbl)
			if p.accept(token.COMMA) {
				continue
			}
			if _, err := p.expect(token.RPAREN, "symbolic type"); err != nil {
				return nil, err
			}
			return st, nil
		}
	case token.SUBROLE:
		p.next()
		if _, err := p.expect(token.LPAREN, "subrole type"); err != nil {
			return nil, err
		}
		st := &ast.SubroleType{P: t.Pos}
		for {
			cls, _, err := p.name("subrole class")
			if err != nil {
				return nil, err
			}
			st.Classes = append(st.Classes, cls)
			if p.accept(token.COMMA) {
				continue
			}
			if _, err := p.expect(token.RPAREN, "subrole type"); err != nil {
				return nil, err
			}
			return st, nil
		}
	case token.IDENT:
		p.next()
		return &ast.NamedType{P: t.Pos, Name: t.Text}, nil
	}
	return nil, p.errf(t.Pos, "expected a type, found %q", t.Text)
}

func (p *Parser) parseSignedInt(what string) (int64, error) {
	neg := p.accept(token.MINUS)
	n, err := p.expect(token.INT, what)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(n.Text, 10, 64)
	if err != nil {
		return 0, p.errf(n.Pos, "integer %q out of range", n.Text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseVerifyDecl parses:
// Verify v1 on Student assert <expr> else "message";
func (p *Parser) parseVerifyDecl() (ast.Decl, error) {
	pos := p.next().Pos // VERIFY
	name, _, err := p.name("verify declaration")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.ON, "verify declaration"); err != nil {
		return nil, err
	}
	class, _, err := p.name("verify declaration")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.ASSERT, "verify declaration"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	d := &ast.VerifyDecl{P: pos, Name: name, Class: class, Assert: cond}
	if p.accept(token.ELSE) {
		msg, err := p.expect(token.STRING, "verify else message")
		if err != nil {
			return nil, err
		}
		d.ElseMsg = msg.Text
	}
	if _, err := p.expect(token.SEMICOLON, "verify declaration"); err != nil {
		return nil, err
	}
	return d, nil
}
