// Package fault provides deterministic fault injection for the storage
// stack. It wraps pager.ByteFile — the byte-level abstraction both the
// pager and the WAL sit on — so a single wrapper layer can script
// failures against the database file and the commit journal alike:
//
//   - fail the Nth write or sync with a chosen error (fsyncgate drills),
//   - tear a write, persisting only a prefix of its bytes,
//   - flip bits in the stored image (byzantine disk damage),
//   - crash: freeze the file image at an arbitrary operation boundary,
//     after which every subsequent operation fails until "reboot"
//     (fresh wrappers over the same backing image).
//
// All injection decisions key off a monotonically increasing operation
// counter shared by every file attached to one Injector, which makes
// crash points reproducible across runs and safe under -race: the
// counter orders mutations exactly as the storage layer issued them.
package fault

import (
	"errors"
	"fmt"
	"sync"

	"sim/internal/pager"
)

// ErrCrashed is returned by every operation on a crashed file. The
// backing image is frozen as of the crash point; reopening it with
// fresh wrappers models the post-reboot recovery path.
var ErrCrashed = errors.New("fault: simulated crash")

// ErrInjected is the default error for scripted write/sync failures.
var ErrInjected = errors.New("fault: injected I/O error")

// Injector scripts faults across one or more wrapped files. The
// zero-configured Injector injects nothing and only counts operations.
type Injector struct {
	mu  sync.Mutex
	ops uint64 // mutating operations observed (writes, syncs, truncates)

	crashAt   uint64 // crash when ops reaches this count (0 = never)
	tornBytes int    // if crashing on a write, persist only this prefix
	crashed   bool

	failWrites map[uint64]error // op index -> error for writes
	failSyncs  map[uint64]error // op index -> error for syncs

	// Step, if set, is invoked (outside the lock) with each operation
	// index and a short description, e.g. "db:write[8192:12292]". Tests
	// use it to trace schedules; it must be race-free.
	Step func(op uint64, what string)
}

// NewInjector returns an Injector that initially injects nothing.
func NewInjector() *Injector { return &Injector{} }

// CrashAt schedules a crash at the opth mutating operation (1-based):
// that operation and all later ones fail with ErrCrashed, and no bytes
// of it are persisted. Use CrashAtTorn for partial persistence.
func (in *Injector) CrashAt(op uint64) {
	in.mu.Lock()
	in.crashAt = op
	in.tornBytes = 0
	in.mu.Unlock()
}

// CrashAtTorn schedules a crash at the opth mutating operation; if that
// operation is a write, the first n bytes of it are persisted before
// the crash — a torn write straddling the failure.
func (in *Injector) CrashAtTorn(op uint64, n int) {
	in.mu.Lock()
	in.crashAt = op
	in.tornBytes = n
	in.mu.Unlock()
}

// FailWrite schedules the write at operation index op (1-based) to fail
// with err (ErrInjected if nil) without persisting anything. Counting
// is shared across all files attached to this Injector.
func (in *Injector) FailWrite(op uint64, err error) {
	if err == nil {
		err = ErrInjected
	}
	in.mu.Lock()
	if in.failWrites == nil {
		in.failWrites = make(map[uint64]error)
	}
	in.failWrites[op] = err
	in.mu.Unlock()
}

// FailSync schedules the sync at operation index op (1-based) to fail
// with err (ErrInjected if nil). The bytes previously written remain in
// the image — their durability is exactly what's in question.
func (in *Injector) FailSync(op uint64, err error) {
	if err == nil {
		err = ErrInjected
	}
	in.mu.Lock()
	if in.failSyncs == nil {
		in.failSyncs = make(map[uint64]error)
	}
	in.failSyncs[op] = err
	in.mu.Unlock()
}

// Ops returns the number of mutating operations observed so far.
func (in *Injector) Ops() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Crashed reports whether the simulated crash has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// decision is what the injector rules for one mutating operation.
type decision struct {
	op    uint64
	fail  error // non-nil: fail the operation with this error
	crash bool  // operation crashes the image
	dead  bool  // file already crashed earlier; don't count or trace
	torn  int   // bytes to persist before a crashing write tears
}

// next advances the operation counter and rules on faults. kind is
// "write", "sync", or "truncate".
func (in *Injector) next(kind string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return decision{fail: ErrCrashed, dead: true}
	}
	in.ops++
	d := decision{op: in.ops}
	if in.crashAt != 0 && in.ops >= in.crashAt {
		in.crashed = true
		d.crash = true
		d.torn = in.tornBytes
		d.fail = ErrCrashed
		return d
	}
	switch kind {
	case "write":
		if err, ok := in.failWrites[in.ops]; ok {
			d.fail = err
		}
	case "sync":
		if err, ok := in.failSyncs[in.ops]; ok {
			d.fail = err
		}
	}
	return d
}

// File wraps a pager.ByteFile with the injector's script. Reads are
// never injected (the fault model is about durability, not read I/O);
// corruption of reads is modelled by damaging the image with FlipBit.
type File struct {
	name  string
	inner pager.ByteFile
	inj   *Injector
}

// Wrap returns a fault-injected view of inner. name tags the file in
// Step traces ("db", "wal", ...).
func Wrap(name string, inner pager.ByteFile, inj *Injector) *File {
	return &File{name: name, inner: inner, inj: inj}
}

func (f *File) step(op uint64, what string) {
	if f.inj.Step != nil {
		f.inj.Step(op, f.name+":"+what)
	}
}

// ReadAt implements pager.ByteFile. Reads fail only after a crash.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.inj.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.ReadAt(p, off)
}

// WriteAt implements pager.ByteFile, honouring scripted failures, torn
// writes, and crashes.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	d := f.inj.next("write")
	if d.crash {
		f.step(d.op, fmt.Sprintf("crash-write[%d:%d]", off, off+int64(len(p))))
		if d.torn > 0 {
			n := d.torn
			if n > len(p) {
				n = len(p)
			}
			f.inner.WriteAt(p[:n], off) // best-effort torn prefix
		}
		return 0, ErrCrashed
	}
	if d.fail != nil {
		if !d.dead {
			f.step(d.op, fmt.Sprintf("fail-write[%d:%d]", off, off+int64(len(p))))
		}
		return 0, d.fail
	}
	f.step(d.op, fmt.Sprintf("write[%d:%d]", off, off+int64(len(p))))
	return f.inner.WriteAt(p, off)
}

// Sync implements pager.ByteFile, honouring scripted sync failures and
// crashes.
func (f *File) Sync() error {
	d := f.inj.next("sync")
	if d.crash {
		f.step(d.op, "crash-sync")
		return ErrCrashed
	}
	if d.fail != nil {
		if !d.dead {
			f.step(d.op, "fail-sync")
		}
		return d.fail
	}
	f.step(d.op, "sync")
	return f.inner.Sync()
}

// Truncate implements pager.ByteFile. It counts as a mutating
// operation: a crash can land on it, freezing the pre-truncate image.
func (f *File) Truncate(size int64) error {
	d := f.inj.next("truncate")
	if d.crash {
		f.step(d.op, "crash-truncate")
		return ErrCrashed
	}
	if d.fail != nil {
		if !d.dead {
			f.step(d.op, "fail-truncate")
		}
		return d.fail
	}
	f.step(d.op, fmt.Sprintf("truncate[%d]", size))
	return f.inner.Truncate(size)
}

// Size implements pager.ByteFile.
func (f *File) Size() (int64, error) {
	if f.inj.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Size()
}

// Close implements pager.ByteFile. Closing a crashed file is a no-op:
// the process is "dead" and the frozen image belongs to the reopener.
func (f *File) Close() error {
	if f.inj.Crashed() {
		return nil
	}
	return f.inner.Close()
}

// FlipBit damages the stored image directly — bit (0-7) of the byte at
// off — bypassing the injector entirely. It models at-rest disk
// corruption for checksum drills.
func (f *File) FlipBit(off int64, bit uint) error {
	var b [1]byte
	if _, err := f.inner.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit & 7)
	_, err := f.inner.WriteAt(b[:], off)
	return err
}

var _ pager.ByteFile = (*File)(nil)
