package fault

import (
	"errors"
	"io"
	"testing"

	"sim/internal/pager"
)

func TestFailNthWrite(t *testing.T) {
	inj := NewInjector()
	boom := errors.New("boom")
	inj.FailWrite(2, boom)
	f := Wrap("db", pager.NewMemByteFile(), inj)

	if _, err := f.WriteAt([]byte("one"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("two"), 3); !errors.Is(err, boom) {
		t.Fatalf("second write = %v, want boom", err)
	}
	if _, err := f.WriteAt([]byte("three"), 3); err != nil {
		t.Fatalf("third write = %v, want success (one-shot script)", err)
	}
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "onethree" {
		t.Errorf("image = %q, failed write must persist nothing", buf)
	}
}

func TestFailNthSync(t *testing.T) {
	inj := NewInjector()
	inj.FailSync(2, nil)
	f := Wrap("wal", pager.NewMemByteFile(), inj)

	f.WriteAt([]byte("data"), 0) // op 1
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("later sync = %v", err)
	}
}

func TestCrashFreezesImage(t *testing.T) {
	mem := pager.NewMemByteFile()
	inj := NewInjector()
	inj.CrashAt(3)
	f := Wrap("db", mem, inj)

	f.WriteAt([]byte("aa"), 0) // op 1
	f.WriteAt([]byte("bb"), 2) // op 2
	if _, err := f.WriteAt([]byte("cc"), 4); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write = %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed")
	}
	// Everything fails post-crash.
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash read = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash sync = %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash truncate = %v", err)
	}
	if _, err := f.Size(); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash size = %v", err)
	}

	// "Reboot": the backing image holds exactly the pre-crash bytes.
	buf := make([]byte, 4)
	if _, err := mem.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "aabb" {
		t.Errorf("frozen image = %q, want aabb", buf)
	}
	if size, _ := mem.Size(); size != 4 {
		t.Errorf("frozen size = %d, want 4", size)
	}
}

func TestCrashTornWrite(t *testing.T) {
	mem := pager.NewMemByteFile()
	inj := NewInjector()
	inj.CrashAtTorn(1, 3)
	f := Wrap("db", mem, inj)

	if _, err := f.WriteAt([]byte("abcdef"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write = %v, want ErrCrashed", err)
	}
	buf := make([]byte, 6)
	n, err := mem.ReadAt(buf, 0)
	if err != io.EOF || n != 3 {
		t.Fatalf("image read = %d, %v; want 3 torn bytes then EOF", n, err)
	}
	if string(buf[:3]) != "abc" {
		t.Errorf("torn prefix = %q", buf[:3])
	}
}

// Two files on one injector share the operation counter, so a crash
// point indexes the interleaved schedule of db and wal operations.
func TestSharedCounterAcrossFiles(t *testing.T) {
	inj := NewInjector()
	var trace []string
	inj.Step = func(op uint64, what string) { trace = append(trace, what) }
	inj.CrashAt(3)
	db := Wrap("db", pager.NewMemByteFile(), inj)
	lg := Wrap("wal", pager.NewMemByteFile(), inj)

	lg.WriteAt([]byte("w"), 0) // op 1
	lg.Sync()                  // op 2
	if _, err := db.WriteAt([]byte("d"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third op = %v, want ErrCrashed", err)
	}
	// The wal file is dead too: one process, one crash.
	if _, err := lg.WriteAt([]byte("x"), 1); !errors.Is(err, ErrCrashed) {
		t.Errorf("wal write after crash = %v", err)
	}
	want := []string{"wal:write[0:1]", "wal:sync", "db:crash-write[0:1]"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace[%d] = %q, want %q", i, trace[i], want[i])
		}
	}
}

func TestFlipBit(t *testing.T) {
	mem := pager.NewMemByteFile()
	inj := NewInjector()
	f := Wrap("db", mem, inj)
	f.WriteAt([]byte{0x00}, 5)
	ops := inj.Ops()
	if err := f.FlipBit(5, 4); err != nil {
		t.Fatal(err)
	}
	if inj.Ops() != ops {
		t.Error("FlipBit consumed an operation slot; it must bypass the injector")
	}
	var b [1]byte
	mem.ReadAt(b[:], 5)
	if b[0] != 0x10 {
		t.Errorf("byte = %#x, want 0x10", b[0])
	}
}
