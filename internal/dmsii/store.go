// Package dmsii implements the record-store substrate SIM runs on. The
// paper built SIM over DMSII, Unisys's network-model DBMS, relying on it
// for "transaction, cursor and I/O management" (§1); this package is the
// equivalent substrate built from scratch: named structures (clustered
// B+trees), a page allocator with a persistent freelist, single-writer
// transactions with WAL-backed atomic commit, and crash recovery.
//
// The package is not internally synchronized; sim.Database serializes
// access (single writer, multiple readers), as DMSII did on the paper's
// behalf.
package dmsii

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sim/internal/btree"
	"sim/internal/obs"
	"sim/internal/pager"
	"sim/internal/wal"
)

// Meta page (page 0) layout.
const (
	magicOff    = 0 // 8 bytes
	versionOff  = 8
	freelistOff = 12
	dirRootOff  = 16
)

var magic = [8]byte{'S', 'I', 'M', 'D', 'B', '0', '0', '1'}

// checkpointThreshold is the WAL size that triggers an automatic
// checkpoint at commit.
const checkpointThreshold = 8 << 20

// Store is an open database file: a directory of named structures plus the
// transaction machinery. Reads (Get/cursor traffic on already-open
// structures) are safe from concurrent goroutines; dirMu serializes the
// structure directory so concurrent readers can open structures, and the
// database layer serializes writers against readers.
type Store struct {
	file      pager.File
	pool      *pager.Pool
	log       *wal.Log // nil for purely in-memory stores
	dir       *btree.Tree
	dirMu     sync.Mutex // guards dir traffic and the open map
	open      map[string]*Structure
	inTx      bool
	closed    bool
	recovered wal.RecoverInfo // what recovery did when the store opened
}

// Options configures Open.
type Options struct {
	// PoolPages is the buffer pool capacity in pages (default 1024).
	PoolPages int
}

// OpenFile opens (creating if necessary) a database at path, with its WAL
// at path+".wal". Committed transactions survive crashes.
func OpenFile(path string, opts Options) (*Store, error) {
	file, err := pager.OpenOSFile(path)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(path + ".wal")
	if err != nil {
		file.Close()
		return nil, err
	}
	return OpenFiles(file, log, opts)
}

// OpenFiles opens a store over an explicit page file and commit journal,
// running crash recovery first. It is how the fault-injection harness
// assembles a store over scripted storage; OpenFile is the production
// path. The log may be nil for a non-durable store.
func OpenFiles(file pager.File, log *wal.Log, opts Options) (*Store, error) {
	var info wal.RecoverInfo
	if log != nil {
		var err error
		if info, err = log.Recover(file); err != nil {
			log.Close()
			file.Close()
			return nil, fmt.Errorf("dmsii: recover: %w", err)
		}
	}
	s, err := open(file, log, opts)
	if err != nil {
		if log != nil {
			log.Close()
		}
		file.Close()
		return nil, err
	}
	s.recovered = info
	return s, nil
}

// RecoverInfo reports what crash recovery did when this store opened:
// batches replayed and whether a torn WAL tail was salvaged.
func (s *Store) RecoverInfo() wal.RecoverInfo { return s.recovered }

// OpenMemory opens a transient in-memory store (no durability; rollback
// still works).
func OpenMemory(opts Options) (*Store, error) {
	return open(pager.NewMemFile(), nil, opts)
}

func open(file pager.File, log *wal.Log, opts Options) (*Store, error) {
	if opts.PoolPages == 0 {
		opts.PoolPages = 1024
	}
	pool, err := pager.NewPool(file, opts.PoolPages)
	if err != nil {
		return nil, err
	}
	s := &Store{file: file, pool: pool, log: log, open: make(map[string]*Structure)}
	n, err := file.NumPages()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if err := s.initialize(); err != nil {
			return nil, err
		}
		return s, nil
	}
	// Existing database: validate the meta page and attach the directory.
	meta, err := pool.Get(0)
	if err != nil {
		return nil, err
	}
	defer pool.Release(meta)
	if [8]byte(meta.Data[magicOff:magicOff+8]) != magic {
		return nil, fmt.Errorf("dmsii: not a SIM database file")
	}
	dirRoot := pager.PageID(binary.BigEndian.Uint32(meta.Data[dirRootOff : dirRootOff+4]))
	s.dir = btree.Open(s, dirRoot, s.setDirRoot)
	return s, nil
}

// initialize formats a brand-new database file.
func (s *Store) initialize() error {
	meta, err := s.pool.Allocate()
	if err != nil {
		return err
	}
	copy(meta.Data[magicOff:], magic[:])
	binary.BigEndian.PutUint32(meta.Data[versionOff:], 1)
	binary.BigEndian.PutUint32(meta.Data[freelistOff:], uint32(pager.Invalid))
	s.pool.MarkDirty(meta)
	s.pool.Release(meta)

	dir, err := btree.Create(s)
	if err != nil {
		return err
	}
	dir.SetOnRootChange(s.setDirRoot)
	s.dir = dir
	if err := s.setDirRoot(dir.Root()); err != nil {
		return err
	}
	// Persist the empty database shell.
	return s.commitPages()
}

func (s *Store) setDirRoot(id pager.PageID) error {
	meta, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(meta.Data[dirRootOff:], uint32(id))
	s.pool.MarkDirty(meta)
	s.pool.Release(meta)
	return nil
}

// Close checkpoints and releases the store.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.inTx {
		return fmt.Errorf("dmsii: Close with an open transaction")
	}
	if err := s.Checkpoint(); err != nil {
		return err
	}
	if s.log != nil {
		if err := s.log.Close(); err != nil {
			return err
		}
	}
	return s.file.Close()
}

// Checkpoint makes the database file current and truncates the WAL.
func (s *Store) Checkpoint() error {
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if s.log != nil {
		return s.log.Truncate()
	}
	return nil
}

// Stats exposes buffer pool counters for the optimizer and benchmarks.
func (s *Store) Stats() pager.Stats { return s.pool.Stats() }

// WALStats exposes commit-journal counters (zero for in-memory stores).
func (s *Store) WALStats() wal.Stats {
	if s.log == nil {
		return wal.Stats{}
	}
	return s.log.Stats()
}

// ResetStats zeroes the pool counters.
func (s *Store) ResetStats() { s.pool.ResetStats() }

// RegisterMetrics publishes the substrate's counters — buffer pool and,
// for durable stores, the WAL — on an obs registry.
func (s *Store) RegisterMetrics(r *obs.Registry) {
	s.pool.RegisterMetrics(r)
	if s.log != nil {
		s.log.RegisterMetrics(r)
	}
	if cf, ok := s.file.(*pager.ChecksumFile); ok {
		cf.RegisterMetrics(r)
	}
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

// Txn is a write transaction. Reads outside transactions observe the last
// committed state.
type Txn struct {
	s    *Store
	done bool
}

// Begin starts the store's single write transaction.
func (s *Store) Begin() (*Txn, error) {
	if s.inTx {
		return nil, fmt.Errorf("dmsii: a transaction is already active")
	}
	s.inTx = true
	return &Txn{s: s}, nil
}

// Commit durably applies the transaction.
func (tx *Txn) Commit() error {
	if tx.done {
		return fmt.Errorf("dmsii: transaction already finished")
	}
	tx.done = true
	tx.s.inTx = false
	if err := tx.s.commitPages(); err != nil {
		return err
	}
	if tx.s.log != nil && tx.s.log.Size() > checkpointThreshold {
		return tx.s.Checkpoint()
	}
	return nil
}

func (s *Store) commitPages() error {
	if s.log != nil {
		if err := s.log.Commit(s.pool.DirtyPages()); err != nil {
			// The batch never became durable: the transaction did not
			// commit. Discard its in-memory effects so the cached state
			// matches the last durable commit; otherwise a later
			// transaction would journal this one's half-applied pages.
			if derr := s.discardUncommitted(); derr != nil {
				return fmt.Errorf("%w (and discarding the failed transaction: %v)", err, derr)
			}
			return err
		}
	}
	// Past this point the transaction is durable (journaled + synced).
	// A writeback failure here is not a commit failure: the dirty pages
	// stay cached and will be retried by a later writeback/checkpoint or
	// replayed from the WAL after a crash.
	return s.pool.WriteBackDirty()
}

// discardUncommitted drops all dirty pool state and reattaches the
// directory from the durable meta page — the shared abort path for
// Rollback and for commits whose journaling failed.
func (s *Store) discardUncommitted() error {
	s.open = make(map[string]*Structure)
	if err := s.pool.DiscardDirty(); err != nil {
		return err
	}
	meta, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	dirRoot := pager.PageID(binary.BigEndian.Uint32(meta.Data[dirRootOff:]))
	s.pool.Release(meta)
	s.dir = btree.Open(s, dirRoot, s.setDirRoot)
	return nil
}

// Rollback discards the transaction's changes.
func (tx *Txn) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	tx.s.inTx = false
	// Structures (and the directory itself) whose roots changed during the
	// transaction hold stale root ids; drop the cache and reattach the
	// directory from the durable meta page.
	return tx.s.discardUncommitted()
}

// ---------------------------------------------------------------------------
// Page allocator (btree.Alloc)
// ---------------------------------------------------------------------------

// AllocPage pops the persistent freelist or grows the file.
func (s *Store) AllocPage() (*pager.Frame, error) {
	meta, err := s.pool.Get(0)
	if err != nil {
		return nil, err
	}
	head := pager.PageID(binary.BigEndian.Uint32(meta.Data[freelistOff:]))
	if head == pager.Invalid {
		s.pool.Release(meta)
		return s.pool.Allocate()
	}
	// Pop: the free page's first 4 bytes link to the next free page.
	f, err := s.pool.Get(head)
	if err != nil {
		s.pool.Release(meta)
		return nil, err
	}
	next := binary.BigEndian.Uint32(f.Data[0:4])
	binary.BigEndian.PutUint32(meta.Data[freelistOff:], next)
	s.pool.MarkDirty(meta)
	s.pool.Release(meta)
	for i := range f.Data {
		f.Data[i] = 0
	}
	s.pool.MarkDirty(f)
	return f, nil
}

// FreePage pushes a page onto the persistent freelist.
func (s *Store) FreePage(id pager.PageID) error {
	meta, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	head := binary.BigEndian.Uint32(meta.Data[freelistOff:])
	f, err := s.pool.Get(id)
	if err != nil {
		s.pool.Release(meta)
		return err
	}
	for i := range f.Data {
		f.Data[i] = 0
	}
	binary.BigEndian.PutUint32(f.Data[0:4], head)
	s.pool.MarkDirty(f)
	s.pool.Release(f)
	binary.BigEndian.PutUint32(meta.Data[freelistOff:], uint32(id))
	s.pool.MarkDirty(meta)
	s.pool.Release(meta)
	return nil
}

// Get implements btree.Alloc.
func (s *Store) Get(id pager.PageID) (*pager.Frame, error) { return s.pool.Get(id) }

// Release implements btree.Alloc.
func (s *Store) Release(f *pager.Frame) { s.pool.Release(f) }

// MarkDirty implements btree.Alloc.
func (s *Store) MarkDirty(f *pager.Frame) { s.pool.MarkDirty(f) }
