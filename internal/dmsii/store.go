// Package dmsii implements the record-store substrate SIM runs on. The
// paper built SIM over DMSII, Unisys's network-model DBMS, relying on it
// for "transaction, cursor and I/O management" (§1); this package is the
// equivalent substrate built from scratch: named structures (clustered
// B+trees), a page allocator with a persistent freelist, concurrent
// transactions with WAL-backed atomic group commit, and crash recovery.
//
// Concurrency model: any number of transactions may be open (BeginSession),
// their write phases serialized on a store-wide latch while commit fsync and
// write-back are pipelined — see Store and Txn. Reads on open structures are
// safe from concurrent goroutines; sim.Database layers statement-level
// reader/writer exclusion on top, as DMSII did on the paper's behalf.
package dmsii

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sim/internal/btree"
	"sim/internal/obs"
	"sim/internal/pager"
	"sim/internal/wal"
)

// Meta page (page 0) layout.
const (
	magicOff    = 0 // 8 bytes
	versionOff  = 8
	freelistOff = 12
	dirRootOff  = 16
)

var magic = [8]byte{'S', 'I', 'M', 'D', 'B', '0', '0', '1'}

// checkpointThreshold is the WAL size that triggers an automatic
// checkpoint at commit.
const checkpointThreshold = 8 << 20

// Store is an open database file: a directory of named structures plus the
// transaction machinery. Reads (Get/cursor traffic on already-open
// structures) are safe from concurrent goroutines; dirMu serializes the
// structure directory so concurrent readers can open structures, and the
// database layer serializes writers against readers.
//
// Multiple transactions may be open concurrently (BeginSession), but their
// write phases are serialized on the store-wide write latch: a transaction
// holds the latch from its first write until its commit snapshot, at which
// point the next writer may proceed while the first one's fsync is still
// in flight. That pipeline is what feeds WAL group commit. Per-entity
// latches (Txn.LatchEntity) give fail-fast first-writer-wins conflicts
// between open transactions targeting the same entity; transactions
// writing distinct entities of the same class do not conflict.
//
// Reads are versioned: PinSnapshot returns a Snap pinned at the newest
// published commit stamp, whose structures resolve pages through
// copy-on-write version chains (pager.Pool.ViewPage) — snapshot readers
// never block writers and never see uncommitted bytes.
type Store struct {
	file      pager.File
	pool      *pager.Pool
	log       *wal.Log // nil for purely in-memory stores
	dir       *btree.Tree
	dirMu     sync.Mutex // guards dir traffic and the open map
	open      map[string]*Structure
	closed    atomic.Bool
	recovered wal.RecoverInfo // what recovery did when the store opened

	writeSem   chan struct{} // capacity-1 store-wide write latch
	writeHeld  atomic.Bool   // the write latch is currently held
	writeLatch *obs.Latch    // contention profile for the store write latch

	latchMu     sync.Mutex
	latches     map[EntityKey]*Txn        // per-entity write latches, first writer wins
	classConf   map[string]*atomic.Uint64 // per-class conflict counters (latchMu)
	conflictEnt atomic.Uint64             // entity-granularity conflicts (sim_conflict_entities)

	reg         atomic.Pointer[obs.Registry]   // set by RegisterMetrics
	flightTxn   atomic.Pointer[obs.FlightRing] // txn begin/commit/conflict events
	flightStore atomic.Pointer[obs.FlightRing] // checkpoint/scrub incidents

	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  []*pager.Snapshot // committed snapshots awaiting write-back, FIFO

	active     atomic.Int64 // open transactions
	conflicts  atomic.Uint64
	needsReset atomic.Bool // a commit group failed; discard before next write
}

// Options configures Open.
type Options struct {
	// PoolPages is the buffer pool capacity in pages (default 1024).
	PoolPages int
}

// OpenFile opens (creating if necessary) a database at path, with its WAL
// at path+".wal". Committed transactions survive crashes.
func OpenFile(path string, opts Options) (*Store, error) {
	file, err := pager.OpenOSFile(path)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(path + ".wal")
	if err != nil {
		file.Close()
		return nil, err
	}
	return OpenFiles(file, log, opts)
}

// OpenFiles opens a store over an explicit page file and commit journal,
// running crash recovery first. It is how the fault-injection harness
// assembles a store over scripted storage; OpenFile is the production
// path. The log may be nil for a non-durable store.
func OpenFiles(file pager.File, log *wal.Log, opts Options) (*Store, error) {
	var info wal.RecoverInfo
	if log != nil {
		var err error
		if info, err = log.Recover(file); err != nil {
			log.Close()
			file.Close()
			return nil, fmt.Errorf("dmsii: recover: %w", err)
		}
	}
	s, err := open(file, log, opts)
	if err != nil {
		if log != nil {
			log.Close()
		}
		file.Close()
		return nil, err
	}
	s.recovered = info
	return s, nil
}

// RecoverInfo reports what crash recovery did when this store opened:
// batches replayed and whether a torn WAL tail was salvaged.
func (s *Store) RecoverInfo() wal.RecoverInfo { return s.recovered }

// OpenMemory opens a transient in-memory store (no durability; rollback
// still works).
func OpenMemory(opts Options) (*Store, error) {
	return open(pager.NewMemFile(), nil, opts)
}

func open(file pager.File, log *wal.Log, opts Options) (*Store, error) {
	if opts.PoolPages == 0 {
		opts.PoolPages = 1024
	}
	pool, err := pager.NewPool(file, opts.PoolPages)
	if err != nil {
		return nil, err
	}
	s := &Store{
		file:       file,
		pool:       pool,
		log:        log,
		open:       make(map[string]*Structure),
		writeSem:   make(chan struct{}, 1),
		writeLatch: obs.NewLatch("store_write"),
		latches:    make(map[EntityKey]*Txn),
		classConf:  make(map[string]*atomic.Uint64),
	}
	s.pendCond = sync.NewCond(&s.pendMu)
	n, err := file.NumPages()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if err := s.initialize(); err != nil {
			return nil, err
		}
		return s, nil
	}
	// Existing database: validate the meta page and attach the directory.
	meta, err := pool.Get(0)
	if err != nil {
		return nil, err
	}
	defer pool.Release(meta)
	if [8]byte(meta.Data[magicOff:magicOff+8]) != magic {
		return nil, fmt.Errorf("dmsii: not a SIM database file")
	}
	dirRoot := pager.PageID(binary.BigEndian.Uint32(meta.Data[dirRootOff : dirRootOff+4]))
	s.dir = btree.Open(s, dirRoot, s.setDirRoot)
	return s, nil
}

// initialize formats a brand-new database file.
func (s *Store) initialize() error {
	meta, err := s.pool.Allocate()
	if err != nil {
		return err
	}
	copy(meta.Data[magicOff:], magic[:])
	binary.BigEndian.PutUint32(meta.Data[versionOff:], 1)
	binary.BigEndian.PutUint32(meta.Data[freelistOff:], uint32(pager.Invalid))
	s.pool.MarkDirty(meta)
	s.pool.Release(meta)

	dir, err := btree.Create(s)
	if err != nil {
		return err
	}
	dir.SetOnRootChange(s.setDirRoot)
	s.dir = dir
	if err := s.setDirRoot(dir.Root()); err != nil {
		return err
	}
	// Persist the empty database shell.
	return s.commitPages()
}

func (s *Store) setDirRoot(id pager.PageID) error {
	meta, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	s.pool.Prepare(meta)
	binary.BigEndian.PutUint32(meta.Data[dirRootOff:], uint32(id))
	s.pool.MarkDirty(meta)
	s.pool.Release(meta)
	return nil
}

// Close checkpoints and releases the store.
func (s *Store) Close() error {
	if s.closed.Load() {
		return nil
	}
	if s.active.Load() > 0 {
		return fmt.Errorf("dmsii: Close with an open transaction")
	}
	unlock, err := s.lockWrites()
	if err != nil {
		return err
	}
	defer unlock()
	s.closed.Store(true)
	if err := s.checkpointLocked(); err != nil {
		return err
	}
	if s.log != nil {
		if err := s.log.Close(); err != nil {
			return err
		}
	}
	return s.file.Close()
}

// Checkpoint makes the database file current and truncates the WAL. It
// takes the store write latch itself, so callers must not hold it; open
// transactions block it until they finish.
func (s *Store) Checkpoint() error {
	unlock, err := s.lockWrites()
	if err != nil {
		return err
	}
	defer unlock()
	return s.checkpointLocked()
}

// checkpointLocked flushes the pool and truncates the WAL; the caller
// holds the write latch with the commit pipeline drained.
func (s *Store) checkpointLocked() error {
	start := time.Now()
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	// With the file current, prune every page-version chain no pinned
	// snapshot can still see.
	s.pool.SweepVersions()
	if s.log != nil {
		if err := s.log.Truncate(); err != nil {
			return err
		}
	}
	s.flightStore.Load().Event("store", "checkpoint", 0, time.Since(start), 0, "")
	return nil
}

// lockWrites acquires the store write latch outside any transaction,
// drains the commit pipeline (so the database file reflects every durable
// commit) and repairs state after a failed commit group. The returned
// func releases the latch.
func (s *Store) lockWrites() (func(), error) {
	s.acquireSem(nil)
	s.writeHeld.Store(true)
	release := func() { s.writeHeld.Store(false); <-s.writeSem }
	s.drainPending()
	if s.needsReset.Load() {
		if err := s.resetUncommitted(); err != nil {
			release()
			return nil, err
		}
	}
	return release, nil
}

// acquireSem takes the store write latch, recording contention on the
// writeLatch profile. A nil ctx means uncancellable acquisition; the wait
// duration (0 when uncontended) is returned so traced transactions can
// attribute it.
func (s *Store) acquireSem(ctx context.Context) (time.Duration, error) {
	select {
	case s.writeSem <- struct{}{}:
		s.writeLatch.Acquired()
		return 0, nil
	default:
	}
	start := time.Now()
	if ctx == nil {
		s.writeSem <- struct{}{}
	} else {
		select {
		case s.writeSem <- struct{}{}:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	d := time.Since(start)
	s.writeLatch.Waited(d)
	return d, nil
}

// Stats exposes buffer pool counters for the optimizer and benchmarks.
func (s *Store) Stats() pager.Stats { return s.pool.Stats() }

// WALStats exposes commit-journal counters (zero for in-memory stores).
func (s *Store) WALStats() wal.Stats {
	if s.log == nil {
		return wal.Stats{}
	}
	return s.log.Stats()
}

// ResetStats zeroes the pool counters.
func (s *Store) ResetStats() { s.pool.ResetStats() }

// RegisterMetrics publishes the substrate's counters — buffer pool and,
// for durable stores, the WAL — on an obs registry.
func (s *Store) RegisterMetrics(r *obs.Registry) {
	s.pool.RegisterMetrics(r)
	if s.log != nil {
		s.log.RegisterMetrics(r)
	}
	if cf, ok := s.file.(*pager.ChecksumFile); ok {
		cf.RegisterMetrics(r)
	}
	r.CounterFunc("sim_txn_conflicts_total", "First-writer-wins write-latch conflicts.",
		func() float64 { return float64(s.conflicts.Load()) })
	r.CounterFunc("sim_conflict_entities", "First-writer-wins conflicts at entity (surrogate) granularity.",
		func() float64 { return float64(s.conflictEnt.Load()) })
	r.GaugeFunc("sim_txn_active", "Open transactions.",
		func() float64 { return float64(s.active.Load()) })
	s.writeLatch.Register(r, "Store-wide write latch (one writer in its write phase).")
	s.reg.Store(r)
	s.flightTxn.Store(r.Flight().Component("txn"))
	s.flightStore.Store(r.Flight().Component("store"))
	s.latchMu.Lock()
	for name, c := range s.classConf {
		registerClassCounter(r, name, c)
	}
	s.latchMu.Unlock()
	r.OnReset(func() {
		s.latchMu.Lock()
		for _, c := range s.classConf {
			c.Store(0)
		}
		s.latchMu.Unlock()
	})
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

// ErrConflict is wrapped by Latch when a structure is already write-latched
// by another open transaction: first writer wins, the later one fails fast
// instead of queueing behind an open transaction known to conflict.
var ErrConflict = errors.New("dmsii: write-write conflict")

// Txn is a write transaction. Reads outside transactions observe the
// store's current cached state — read-uncommitted with respect to open
// transactions, last-committed otherwise.
type Txn struct {
	s       *Store
	done    bool
	wrote   bool        // holds the store-wide write latch
	latched []EntityKey // entity latches held until commit/rollback

	id        uint64           // request/trace ID, 0 when untraced
	ct        *obs.CommitTrace // spans filled across the commit, nil unless tracing
	latchWait time.Duration    // accumulated store-write-latch wait
}

// SetTrace attaches a request ID to this transaction — it rides into the
// flight recorder, the WAL flush group and the replication stream — and,
// when ct is non-nil, arranges for the commit spans (latch-wait,
// enqueue-wait, fsync, group size, replication position) to be filled in
// by the time Commit returns.
func (tx *Txn) SetTrace(id uint64, ct *obs.CommitTrace) {
	tx.id = id
	tx.ct = ct
	if ct != nil {
		ct.ID = id
	}
}

// BeginSession registers a transaction without acquiring any latch; the
// store-wide write latch is taken at the first AcquireWrite, so read-only
// and still-idle transactions do not block writers.
func (s *Store) BeginSession() (*Txn, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("dmsii: store is closed")
	}
	s.active.Add(1)
	return &Txn{s: s}, nil
}

// Begin starts a write transaction holding the store's write latch from
// the start — the shape single-threaded callers (schema persistence, the
// benchmark harness) use. It blocks while another transaction is in its
// write phase.
func (s *Store) Begin() (*Txn, error) {
	tx, err := s.BeginSession()
	if err != nil {
		return nil, err
	}
	if err := tx.AcquireWrite(context.Background()); err != nil {
		tx.Rollback()
		return nil, err
	}
	return tx, nil
}

// AcquireWrite takes the store-wide write latch for this transaction,
// blocking (under ctx) while another transaction is in its write phase.
// It is idempotent. If an earlier commit group failed, the uncommitted
// state it left behind is discarded before this transaction may write.
func (tx *Txn) AcquireWrite(ctx context.Context) error {
	if tx.done {
		return fmt.Errorf("dmsii: transaction already finished")
	}
	if tx.wrote {
		return nil
	}
	wait, err := tx.s.acquireSem(ctx)
	if err != nil {
		return err
	}
	tx.latchWait += wait
	tx.s.writeHeld.Store(true)
	tx.wrote = true
	tx.s.flightTxn.Load().Event("txn", "begin", tx.id, wait, 0, "")
	if tx.s.needsReset.Load() {
		if err := tx.s.resetUncommitted(); err != nil {
			tx.releaseWrite()
			return err
		}
	}
	return nil
}

// EntityKey identifies one entity for write-latching purposes: its base
// class name (latching granularity is the entity, shared across the
// subclass hierarchy it threads through) and its surrogate.
type EntityKey struct {
	Base string
	Surr uint64
}

// LatchEntity takes the write latch for one entity of the named base
// class, failing fast with ErrConflict when another open transaction
// holds it (first writer wins). Two transactions writing distinct
// entities of the same class do not conflict. Latches are held until
// commit or rollback.
func (tx *Txn) LatchEntity(base string, surr uint64) error {
	if tx.done {
		return fmt.Errorf("dmsii: transaction already finished")
	}
	key := EntityKey{Base: base, Surr: surr}
	s := tx.s
	s.latchMu.Lock()
	defer s.latchMu.Unlock()
	if holder, ok := s.latches[key]; ok {
		if holder == tx {
			return nil
		}
		s.conflicts.Add(1)
		s.conflictEnt.Add(1)
		s.classConflictLocked(base)
		s.flightTxn.Load().Event("txn", "conflict", tx.id, 0, int64(surr), base)
		return fmt.Errorf("%w: entity %d of %q is write-latched by another open transaction (first writer wins)", ErrConflict, surr, base)
	}
	s.latches[key] = tx
	tx.latched = append(tx.latched, key)
	return nil
}

// EntityConflicts reports entity-granularity first-writer-wins conflicts
// since open.
func (s *Store) EntityConflicts() uint64 { return s.conflictEnt.Load() }

// classConflictLocked counts a first-writer-wins conflict against the
// contended class and, when metrics are registered, exposes the per-class
// counter as sim_latch_class_<class>_conflicts_total (the \hot view's
// conflict line). Caller holds latchMu.
func (s *Store) classConflictLocked(name string) {
	c := s.classConf[name]
	if c == nil {
		c = new(atomic.Uint64)
		s.classConf[name] = c
		if r := s.reg.Load(); r != nil {
			registerClassCounter(r, name, c)
		}
	}
	c.Add(1)
}

func registerClassCounter(r *obs.Registry, name string, c *atomic.Uint64) {
	r.CounterFunc("sim_latch_class_"+metricName(name)+"_conflicts_total",
		"First-writer-wins conflicts on the class write latch for "+name+".",
		func() float64 { return float64(c.Load()) })
}

// metricName maps a structure name onto the Prometheus metric-name
// alphabet.
func metricName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

func (tx *Txn) releaseLatches() {
	if len(tx.latched) == 0 {
		return
	}
	s := tx.s
	s.latchMu.Lock()
	for _, key := range tx.latched {
		if s.latches[key] == tx {
			delete(s.latches, key)
		}
	}
	s.latchMu.Unlock()
	tx.latched = nil
}

func (tx *Txn) releaseWrite() {
	if !tx.wrote {
		return
	}
	tx.wrote = false
	tx.s.writeHeld.Store(false)
	<-tx.s.writeSem
}

// Commit durably applies the transaction. The write phase ends at the
// commit snapshot: the dirty page images are copied and their WAL batch
// enqueued while the write latch is still held (so batches hit the log in
// write-phase order), then the latch is released and the committer waits
// for its group's fsync — the next writer executes while this fsync is in
// flight, which is what lets the WAL group commits. After the batch is
// durable the snapshot images are written back to the database file in
// commit order.
func (tx *Txn) Commit() error {
	if tx.done {
		return fmt.Errorf("dmsii: transaction already finished")
	}
	tx.done = true
	defer tx.s.active.Add(-1)
	s := tx.s
	if !tx.wrote {
		tx.releaseLatches()
		return nil
	}
	snap := s.pool.Snapshot()
	if snap.Len() == 0 {
		tx.releaseLatches()
		tx.releaseWrite()
		return nil
	}
	s.pendMu.Lock()
	s.pending = append(s.pending, snap)
	s.pendMu.Unlock()
	if tx.ct != nil {
		tx.ct.Pages = snap.Len()
		tx.ct.LatchWait = tx.latchWait
	}
	var p *wal.Pending
	if s.log != nil {
		p = s.log.EnqueueTraced(snap.Frames(), tx.id, tx.ct)
	}
	tx.releaseLatches()
	tx.releaseWrite()
	if p != nil {
		if err := p.Wait(); err != nil {
			// The batch never became durable: the transaction did not
			// commit. The pool still holds its half-applied pages (and a
			// later writer may already be stacking more on top — its
			// commit will fail on the poisoned log too); discard them
			// before the next write phase.
			s.removePending(snap)
			s.needsReset.Store(true)
			s.tryReset()
			return err
		}
	}
	// Past this point the transaction is durable (journaled + synced).
	// A writeback failure here is not a commit failure: the pages stay
	// dirty/cached and will be retried by a later writeback/checkpoint or
	// replayed from the WAL after a crash.
	//
	// Publish the commit's version stamp: snapshot readers pinning after
	// this point see these changes. Group commit makes every batch in the
	// same fsync durable together and stamps are assigned in write-phase
	// order, so max-publishing this stamp never exposes a non-durable
	// predecessor.
	s.pool.Publish(snap.Stamp())
	s.flightTxn.Load().Event("txn", "commit", tx.id, 0, int64(snap.Len()), "")
	s.awaitHead(snap)
	werr := s.pool.WriteBack(snap)
	s.removePending(snap)
	if werr != nil {
		return werr
	}
	if s.log != nil && s.log.Size() > checkpointThreshold {
		return s.tryCheckpoint()
	}
	return nil
}

// Rollback discards the transaction's changes.
func (tx *Txn) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	defer tx.s.active.Add(-1)
	s := tx.s
	if !tx.wrote {
		tx.releaseLatches()
		return nil
	}
	defer tx.releaseWrite()
	defer tx.releaseLatches()
	// Committed predecessors must reach the database file before state is
	// reloaded from it.
	s.drainPending()
	// Structures (and the directory itself) whose roots changed during the
	// transaction hold stale root ids; drop the cache and reattach the
	// directory from the durable meta page.
	if err := s.discardUncommitted(); err != nil {
		return err
	}
	s.needsReset.Store(false)
	return nil
}

// awaitHead blocks until snap is at the head of the commit pipeline, so
// snapshots reach the database file in commit order.
func (s *Store) awaitHead(snap *pager.Snapshot) {
	s.pendMu.Lock()
	for len(s.pending) > 0 && s.pending[0] != snap {
		s.pendCond.Wait()
	}
	s.pendMu.Unlock()
}

func (s *Store) removePending(snap *pager.Snapshot) {
	s.pendMu.Lock()
	for i, p := range s.pending {
		if p == snap {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.pendCond.Broadcast()
	s.pendMu.Unlock()
}

// drainPending waits until every in-flight commit has written its
// snapshot back (or failed and been removed). New snapshots only enter
// the pipeline under the write latch, so holding it guarantees progress.
func (s *Store) drainPending() {
	s.pendMu.Lock()
	for len(s.pending) > 0 {
		s.pendCond.Wait()
	}
	s.pendMu.Unlock()
}

// resetUncommitted repairs the store after a failed commit group: drains
// the pipeline and discards every dirty frame so the cache matches the
// last durable state. The caller holds the write latch. Concurrent
// readers may briefly pin dirty frames, so the discard retries.
func (s *Store) resetUncommitted() error {
	s.drainPending()
	var err error
	for i := 0; i < 1000; i++ {
		if err = s.discardUncommitted(); err == nil {
			s.needsReset.Store(false)
			return nil
		}
		runtime.Gosched()
	}
	return err
}

// tryReset repairs post-commit-failure state immediately when the write
// latch is free — the common case, preserving the pre-session behavior
// where a failed commit left the cache already clean. With an open writer
// the flag stays set and the next AcquireWrite/lockWrites repairs.
func (s *Store) tryReset() {
	select {
	case s.writeSem <- struct{}{}:
	default:
		return
	}
	s.writeHeld.Store(true)
	s.resetUncommitted() // best effort; the flag stays set on failure
	s.writeHeld.Store(false)
	<-s.writeSem
}

// tryCheckpoint checkpoints if the write latch is free; with an active
// writer the next threshold crossing retries.
func (s *Store) tryCheckpoint() error {
	select {
	case s.writeSem <- struct{}{}:
	default:
		return nil
	}
	s.writeHeld.Store(true)
	defer func() { s.writeHeld.Store(false); <-s.writeSem }()
	s.drainPending()
	if s.needsReset.Load() {
		if err := s.resetUncommitted(); err != nil {
			return err
		}
	}
	return s.checkpointLocked()
}

// commitPages is the serial commit used when formatting a new database:
// journal all dirty pages, then write them back.
func (s *Store) commitPages() error {
	if s.log != nil {
		if err := s.log.Commit(s.pool.DirtyPages()); err != nil {
			if derr := s.discardUncommitted(); derr != nil {
				return fmt.Errorf("%w (and discarding the failed transaction: %v)", err, derr)
			}
			return err
		}
	}
	return s.pool.WriteBackDirty()
}

// discardUncommitted drops all dirty pool state and reattaches the
// directory from the durable meta page — the shared abort path for
// Rollback and for commits whose journaling failed.
func (s *Store) discardUncommitted() error {
	if err := s.pool.DiscardDirty(); err != nil {
		return err
	}
	meta, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	dirRoot := pager.PageID(binary.BigEndian.Uint32(meta.Data[dirRootOff:]))
	s.pool.Release(meta)
	s.dirMu.Lock()
	s.open = make(map[string]*Structure)
	s.dir = btree.Open(s, dirRoot, s.setDirRoot)
	s.dirMu.Unlock()
	return nil
}

// Conflicts reports first-writer-wins latch conflicts since open.
func (s *Store) Conflicts() uint64 { return s.conflicts.Load() }

// ActiveTxns reports the number of open transactions.
func (s *Store) ActiveTxns() int64 { return s.active.Load() }

// ---------------------------------------------------------------------------
// Page allocator (btree.Alloc)
// ---------------------------------------------------------------------------

// AllocPage pops the persistent freelist or grows the file.
func (s *Store) AllocPage() (*pager.Frame, error) {
	meta, err := s.pool.Get(0)
	if err != nil {
		return nil, err
	}
	head := pager.PageID(binary.BigEndian.Uint32(meta.Data[freelistOff:]))
	if head == pager.Invalid {
		s.pool.Release(meta)
		return s.pool.Allocate()
	}
	// Pop: the free page's first 4 bytes link to the next free page.
	f, err := s.pool.Get(head)
	if err != nil {
		s.pool.Release(meta)
		return nil, err
	}
	next := binary.BigEndian.Uint32(f.Data[0:4])
	s.pool.Prepare(meta)
	binary.BigEndian.PutUint32(meta.Data[freelistOff:], next)
	s.pool.MarkDirty(meta)
	s.pool.Release(meta)
	// Re-acquire the page as a fresh allocation: AllocateAt zeroes it
	// without disturbing any buffer snapshot readers may hold.
	s.pool.Release(f)
	return s.pool.AllocateAt(head)
}

// FreePage pushes a page onto the persistent freelist.
func (s *Store) FreePage(id pager.PageID) error {
	meta, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	head := binary.BigEndian.Uint32(meta.Data[freelistOff:])
	f, err := s.pool.Get(id)
	if err != nil {
		s.pool.Release(meta)
		return err
	}
	// Push the page's committed image for snapshot readers pinned before
	// this free, then turn it into a freelist node.
	s.pool.Prepare(f)
	for i := range f.Data {
		f.Data[i] = 0
	}
	binary.BigEndian.PutUint32(f.Data[0:4], head)
	s.pool.MarkDirty(f)
	s.pool.Release(f)
	s.pool.Prepare(meta)
	binary.BigEndian.PutUint32(meta.Data[freelistOff:], uint32(id))
	s.pool.MarkDirty(meta)
	s.pool.Release(meta)
	return nil
}

// Get implements btree.Alloc.
func (s *Store) Get(id pager.PageID) (*pager.Frame, error) { return s.pool.Get(id) }

// Release implements btree.Alloc.
func (s *Store) Release(f *pager.Frame) { s.pool.Release(f) }

// Prepare implements btree.Alloc: it opens a copy-on-write cycle on the
// frame so snapshot readers keep the committed image.
func (s *Store) Prepare(f *pager.Frame) { s.pool.Prepare(f) }

// MarkDirty implements btree.Alloc.
func (s *Store) MarkDirty(f *pager.Frame) { s.pool.MarkDirty(f) }
