package dmsii

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenMemory(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func put(t *testing.T, st *Structure, k, v string) {
	t.Helper()
	if err := st.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("put %s: %v", k, err)
	}
}

func TestBasicStructureOps(t *testing.T) {
	s := memStore(t)
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Structure("persons")
	if err != nil {
		t.Fatal(err)
	}
	put(t, st, "a", "1")
	put(t, st, "b", "2")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := st.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	names, err := s.Structures()
	if err != nil || len(names) != 1 || names[0] != "persons" {
		t.Fatalf("structures = %v %v", names, err)
	}
}

func TestMutationOutsideTxnFails(t *testing.T) {
	s := memStore(t)
	st, err := s.Structure("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("k"), []byte("v")); err == nil {
		t.Error("Put outside transaction succeeded")
	}
	if _, err := st.Delete([]byte("k")); err == nil {
		t.Error("Delete outside transaction succeeded")
	}
}

func TestWritePhaseSerialized(t *testing.T) {
	s := memStore(t)
	tx, _ := s.Begin()
	// A second writer queues on the write latch rather than failing; it
	// proceeds once the first transaction finishes.
	done := make(chan error, 1)
	go func() {
		tx2, err := s.Begin()
		if err == nil {
			err = tx2.Rollback()
		}
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("second Begin proceeded while the first held the write latch")
	case <-time.After(20 * time.Millisecond):
	}
	tx.Rollback()
	if err := <-done; err != nil {
		t.Errorf("queued Begin after rollback: %v", err)
	}
}

func TestLatchConflict(t *testing.T) {
	s := memStore(t)
	tx1, err := s.BeginSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.LatchEntity("persons", 1); err != nil {
		t.Fatal(err)
	}
	// Re-latching by the holder is a no-op.
	if err := tx1.LatchEntity("persons", 1); err != nil {
		t.Fatal(err)
	}
	tx2, err := s.BeginSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.LatchEntity("persons", 1); !errors.Is(err, ErrConflict) {
		t.Fatalf("LatchEntity on held entity = %v, want ErrConflict", err)
	}
	// A different entity of the SAME class is free: conflicts are
	// entity-granular, not class-granular.
	if err := tx2.LatchEntity("persons", 2); err != nil {
		t.Errorf("LatchEntity on free entity of held class: %v", err)
	}
	if err := tx2.LatchEntity("orders", 1); err != nil {
		t.Errorf("LatchEntity on free class: %v", err)
	}
	if got := s.Conflicts(); got != 1 {
		t.Errorf("Conflicts() = %d, want 1", got)
	}
	if got := s.EntityConflicts(); got != 1 {
		t.Errorf("EntityConflicts() = %d, want 1", got)
	}
	// Rollback releases latches; the other session may now take them.
	if err := tx1.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.LatchEntity("persons", 1); err != nil {
		t.Errorf("LatchEntity after holder rollback: %v", err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.sim")
	s, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tx, err := s.Begin()
				if err != nil {
					errs <- err
					return
				}
				st, err := s.Structure("d")
				if err != nil {
					tx.Rollback()
					errs <- err
					return
				}
				if err := st.Put([]byte(fmt.Sprintf("w%02d-%04d", w, i)), []byte("v")); err != nil {
					tx.Rollback()
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := s.Structure("d")
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			k := fmt.Sprintf("w%02d-%04d", w, i)
			if _, ok, err := st.Get([]byte(k)); err != nil || !ok {
				t.Fatalf("missing committed key %s (ok=%v err=%v)", k, ok, err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Every commit survives reopen.
	s2, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Structure("d")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st2.Get([]byte("w00-0000")); err != nil || !ok {
		t.Fatalf("committed key lost after reopen (ok=%v err=%v)", ok, err)
	}
}

func TestRollbackDiscardsChanges(t *testing.T) {
	s := memStore(t)
	tx, _ := s.Begin()
	st, _ := s.Structure("d")
	put(t, st, "committed", "yes")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx, _ = s.Begin()
	st, _ = s.Structure("d")
	put(t, st, "uncommitted", "no")
	// Overwrite a committed key too.
	put(t, st, "committed", "overwritten")
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	st, _ = s.Structure("d")
	if _, ok, _ := st.Get([]byte("uncommitted")); ok {
		t.Error("rolled-back insert visible")
	}
	v, ok, _ := st.Get([]byte("committed"))
	if !ok || string(v) != "yes" {
		t.Errorf("committed value after rollback = %q %v", v, ok)
	}
}

func TestRollbackManyPages(t *testing.T) {
	s := memStore(t)
	tx, _ := s.Begin()
	st, _ := s.Structure("d")
	for i := 0; i < 2000; i++ {
		put(t, st, fmt.Sprintf("base-%05d", i), "v")
	}
	tx.Commit()

	tx, _ = s.Begin()
	st, _ = s.Structure("d")
	for i := 0; i < 2000; i++ {
		put(t, st, fmt.Sprintf("extra-%05d", i), "v")
	}
	tx.Rollback()

	st, _ = s.Structure("d")
	c, err := st.First()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for ; c.Valid(); c.Next() {
		count++
	}
	if count != 2000 {
		t.Errorf("after rollback scan found %d, want 2000", count)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.sim")
	s, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	st, _ := s.Structure("persons")
	for i := 0; i < 1000; i++ {
		put(t, st, fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Structure("persons")
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := st2.Get([]byte("k0500"))
	if err != nil || !ok || string(v) != "v500" {
		t.Fatalf("after reopen get = %q %v %v", v, ok, err)
	}
}

// TestCrashRecovery simulates a crash after commit but before checkpoint:
// the database file is stale, the WAL holds the committed batch, and
// reopening must replay it.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.sim")
	s, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	st, _ := s.Structure("d")
	put(t, st, "survives", "crash")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: abandon the store without Close (no checkpoint).
	// The WAL file must exist and be non-empty.
	if fi, err := os.Stat(path + ".wal"); err != nil || fi.Size() == 0 {
		t.Fatalf("wal missing before crash: %v", err)
	}

	s2, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Structure("d")
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := st2.Get([]byte("survives"))
	if err != nil || !ok || string(v) != "crash" {
		t.Fatalf("after crash recovery get = %q %v %v", v, ok, err)
	}
}

// TestTornCommitIgnored verifies that an incomplete WAL batch (no commit
// record) is discarded at recovery.
func TestTornCommitIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.sim")
	s, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	st, _ := s.Structure("d")
	put(t, st, "a", "committed")
	tx.Commit()
	// Abandon without checkpoint, then truncate the WAL mid-record to
	// simulate a torn write of a second transaction.
	fi, err := os.Stat(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path+".wal", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Append garbage that looks like a torn record.
	if _, err := f.WriteAt([]byte{1, 0, 0, 0, 9, 0, 0}, fi.Size()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, _ := s2.Structure("d")
	v, ok, _ := st2.Get([]byte("a"))
	if !ok || string(v) != "committed" {
		t.Fatalf("committed batch lost: %q %v", v, ok)
	}
}

func TestDropStructure(t *testing.T) {
	s := memStore(t)
	tx, _ := s.Begin()
	st, _ := s.Structure("temp")
	put(t, st, "k", "v")
	if err := s.DropStructure("temp"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	ok, err := s.HasStructure("temp")
	if err != nil || ok {
		t.Errorf("dropped structure still listed: %v %v", ok, err)
	}
	// Its pages are reusable: create another and write to it.
	tx, _ = s.Begin()
	st2, _ := s.Structure("temp2")
	put(t, st2, "k2", "v2")
	tx.Commit()
}

func TestNotADatabaseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, Options{}); err == nil {
		t.Error("junk file opened as database")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.sim")
	s, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tx, _ := s.Begin()
	st, _ := s.Structure("d")
	put(t, st, "k", "v")
	tx.Commit()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("wal size after checkpoint = %d, want 0", fi.Size())
	}
}

func TestFreelistReuse(t *testing.T) {
	s := memStore(t)
	tx, _ := s.Begin()
	st, _ := s.Structure("big")
	for i := 0; i < 3000; i++ {
		put(t, st, fmt.Sprintf("k%05d", i), "some moderately sized value for page fill")
	}
	tx.Commit()
	before := s.pool.NumPages()

	tx, _ = s.Begin()
	if err := s.DropStructure("big"); err != nil {
		t.Fatal(err)
	}
	st2, _ := s.Structure("big2")
	for i := 0; i < 3000; i++ {
		put(t, st2, fmt.Sprintf("k%05d", i), "some moderately sized value for page fill")
	}
	tx.Commit()
	after := s.pool.NumPages()
	// The second structure should predominantly reuse freed pages.
	if after > before+8 {
		t.Errorf("file grew from %d to %d pages despite freelist", before, after)
	}
}
