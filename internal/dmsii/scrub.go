package dmsii

import (
	"errors"
	"fmt"
	"strings"

	"sim/internal/pager"
)

// ScrubReport is the result of a full physical + logical audit of the
// store. The paper's DMSII substrate audited its physical storage on
// SIM's behalf; Scrub is the equivalent facility here.
type ScrubReport struct {
	Pages      uint32         // pages verified against their checksums
	Corrupt    []pager.PageID // pages whose checksum did not match
	Structures int            // named structures cursor-scanned end to end
	Entries    int            // entries visited across all structures
	Errors     []string       // logical-scan failures (structure: cause)
}

// OK reports whether the audit found no damage.
func (r ScrubReport) OK() bool { return len(r.Corrupt) == 0 && len(r.Errors) == 0 }

// String renders the report for CLI display.
func (r ScrubReport) String() string {
	if r.OK() {
		return fmt.Sprintf("scrub ok: %d pages, %d structures, %d entries", r.Pages, r.Structures, r.Entries)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scrub FAILED: %d pages, %d structures, %d entries", r.Pages, r.Structures, r.Entries)
	for _, id := range r.Corrupt {
		fmt.Fprintf(&b, "\n  corrupt page %d", id)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "\n  %s", e)
	}
	return b.String()
}

// Scrub audits every page and every structure in the store. It first
// checkpoints (so the database file is current), then re-reads every
// page from the file verifying its checksum, then cursor-scans the
// structure directory and every named structure end to end. Damage is
// reported, never repaired: a corrupt page is detected on read instead
// of being silently served, and Scrub tells the operator which page.
//
// Scrub holds the store's write latch for the checkpoint and refuses to
// run while transactions are open; concurrent readers are tolerated.
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	if s.active.Load() > 0 {
		return rep, fmt.Errorf("dmsii: Scrub with an open transaction")
	}
	unlock, err := s.lockWrites()
	if err != nil {
		return rep, err
	}
	cperr := s.checkpointLocked()
	unlock()
	if cperr != nil {
		return rep, fmt.Errorf("dmsii: scrub checkpoint: %w", cperr)
	}

	// Physical pass: every page in the file, checksums verified.
	n, err := s.file.NumPages()
	if err != nil {
		return rep, err
	}
	buf := make([]byte, pager.PageSize)
	for id := uint32(0); id < n; id++ {
		err := s.file.ReadPage(pager.PageID(id), buf)
		switch {
		case err == nil:
			rep.Pages++
		case errors.Is(err, pager.ErrCorruptPage):
			rep.Pages++
			rep.Corrupt = append(rep.Corrupt, pager.PageID(id))
		default:
			return rep, fmt.Errorf("dmsii: scrub page %d: %w", id, err)
		}
	}

	// Logical pass: walk the directory and cursor-scan each structure.
	names, err := s.Structures()
	if err != nil {
		rep.Errors = append(rep.Errors, fmt.Sprintf("directory: %v", err))
		return rep, nil
	}
	for _, name := range names {
		st, err := s.Structure(name)
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: open: %v", name, err))
			continue
		}
		rep.Structures++
		cur, err := st.First()
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: scan: %v", name, err))
			continue
		}
		for cur.Valid() {
			rep.Entries++
			cur.Next()
		}
		if err := cur.Err(); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: scan: %v", name, err))
		}
	}
	return rep, nil
}
