package dmsii

import (
	"encoding/binary"
	"fmt"

	"sim/internal/btree"
	"sim/internal/pager"
)

// Structure is a named, ordered key/value collection — the substrate's
// equivalent of a DMSII data set or index set. Class LUCs, multi-valued DVA
// LUCs, EVA structures and secondary indexes are all Structures.
type Structure struct {
	s    *Store
	name string
	tree *btree.Tree
	ro   bool // snapshot view: reads only, pages resolved as of a pinned stamp
}

// Structure opens the named structure, creating it when absent. It is
// safe for concurrent readers: the directory lookup and open-structure
// cache are serialized behind the store's directory lock.
func (s *Store) Structure(name string) (*Structure, error) {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	return s.structureLocked(name)
}

func (s *Store) structureLocked(name string) (*Structure, error) {
	if st, ok := s.open[name]; ok {
		return st, nil
	}
	rootBytes, found, err := s.dir.Get([]byte(name))
	if err != nil {
		return nil, err
	}
	var tree *btree.Tree
	if found {
		root := pager.PageID(binary.BigEndian.Uint32(rootBytes))
		tree = btree.Open(s, root, nil)
	} else {
		tree, err = btree.Create(s)
		if err != nil {
			return nil, err
		}
		if err := s.putDirEntry(name, tree.Root()); err != nil {
			return nil, err
		}
	}
	st := &Structure{s: s, name: name, tree: tree}
	tree.SetOnRootChange(func(id pager.PageID) error { return s.putDirEntry(name, id) })
	s.open[name] = st
	return st, nil
}

// HasStructure reports whether the named structure exists without creating
// it.
func (s *Store) HasStructure(name string) (bool, error) {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	if _, ok := s.open[name]; ok {
		return true, nil
	}
	_, found, err := s.dir.Get([]byte(name))
	return found, err
}

// DropStructure deletes the named structure and frees its pages.
func (s *Store) DropStructure(name string) error {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	st, err := s.structureLocked(name)
	if err != nil {
		return err
	}
	if err := st.tree.Drop(); err != nil {
		return err
	}
	delete(s.open, name)
	_, err = s.dir.Delete([]byte(name))
	return err
}

// Structures lists all structure names in lexicographic order.
func (s *Store) Structures() ([]string, error) {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	c, err := s.dir.First()
	if err != nil {
		return nil, err
	}
	var names []string
	for ; c.Valid(); c.Next() {
		names = append(names, string(c.Key()))
	}
	return names, c.Err()
}

func (s *Store) putDirEntry(name string, root pager.PageID) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(root))
	return s.dir.Put([]byte(name), b[:])
}

// Name returns the structure's name.
func (st *Structure) Name() string { return st.name }

func (st *Structure) mutable() error {
	if st.ro {
		return fmt.Errorf("dmsii: mutation of %q through a read snapshot", st.name)
	}
	if !st.s.writeHeld.Load() {
		return fmt.Errorf("dmsii: mutation of %q outside a transaction", st.name)
	}
	return nil
}

// Put inserts or replaces a record.
func (st *Structure) Put(key, val []byte) error {
	if err := st.mutable(); err != nil {
		return err
	}
	return st.tree.Put(key, val)
}

// Get reads the record stored under key.
func (st *Structure) Get(key []byte) ([]byte, bool, error) { return st.tree.Get(key) }

// Delete removes the record stored under key.
func (st *Structure) Delete(key []byte) (bool, error) {
	if err := st.mutable(); err != nil {
		return false, err
	}
	return st.tree.Delete(key)
}

// First returns a cursor over all records in key order.
func (st *Structure) First() (*btree.Cursor, error) { return st.tree.First() }

// Seek returns a cursor positioned at the first key >= key.
func (st *Structure) Seek(key []byte) (*btree.Cursor, error) { return st.tree.Seek(key) }

// SeekPrefix returns a cursor over exactly the keys beginning with prefix.
func (st *Structure) SeekPrefix(prefix []byte) (*btree.Cursor, error) {
	return st.tree.SeekPrefix(prefix)
}

// SeekInto is Seek into a caller-reused cursor, so repeated probes reuse
// the cursor's snapshot buffers instead of allocating per seek.
func (st *Structure) SeekInto(cur *btree.Cursor, key []byte) error {
	return st.tree.SeekInto(cur, key)
}

// SeekPrefixInto is SeekPrefix into a caller-reused cursor.
func (st *Structure) SeekPrefixInto(cur *btree.Cursor, prefix []byte) error {
	return st.tree.SeekPrefixInto(cur, prefix)
}
