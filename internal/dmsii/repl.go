package dmsii

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"sim/internal/btree"
	"sim/internal/pager"
	"sim/internal/wal"
)

// This file is the store half of the replication subsystem: the hooks a
// primary needs to publish its committed page groups and base image, and
// the apply path a follower uses to install them. Both sides reuse the
// commit machinery — a follower journals each incoming group through its
// own WAL before touching the database file, so a follower crash at any
// frame boundary recovers exactly like a primary crash: the WAL's
// committed-prefix replay finishes or discards the interrupted group.

// SetCommitHook installs fn on the store's WAL: it observes every commit
// group — deduplicated page images plus the request IDs that rode the
// group — in commit order, after the group is durable, and returns the
// replication position the group published at. Returns an error for
// in-memory stores (nothing to ship).
func (s *Store) SetCommitHook(fn func(wal.CommitGroup) uint64) error {
	if s.log == nil {
		return fmt.Errorf("dmsii: replication needs a durable store (no WAL)")
	}
	s.log.SetOnCommit(fn)
	return nil
}

// SnapshotImage returns a point-in-time copy of the whole database file:
// the base image a new follower starts from. It takes the write latch,
// drains the commit pipeline and flushes the pool, so the image holds
// exactly the committed state; pos is called while the latch is still
// held, letting the publisher record the position the image is current
// as of without racing later commits.
func (s *Store) SnapshotImage(pos func() uint64) ([]byte, uint64, error) {
	unlock, err := s.lockWrites()
	if err != nil {
		return nil, 0, err
	}
	defer unlock()
	if err := s.pool.FlushAll(); err != nil {
		return nil, 0, err
	}
	n, err := s.file.NumPages()
	if err != nil {
		return nil, 0, err
	}
	img := make([]byte, int(n)*pager.PageSize)
	for id := uint32(0); id < n; id++ {
		if err := s.file.ReadPage(pager.PageID(id), img[int(id)*pager.PageSize:]); err != nil {
			return nil, 0, err
		}
	}
	var p uint64
	if pos != nil {
		p = pos()
	}
	return img, p, nil
}

// ApplyReplicated applies one committed page group shipped from a
// primary: journal the images through this store's own WAL (crash
// safety), then write them to the database file and drop the pool so
// reads observe the new bytes. Page images must be full pages. The WAL
// is truncated once the file is synced and the log crosses the
// checkpoint threshold, bounding follower log growth just like primary
// commits do.
func (s *Store) ApplyReplicated(pages []pager.PageImage) error {
	if s.log == nil {
		return fmt.Errorf("dmsii: replication needs a durable store (no WAL)")
	}
	frames := make([]*pager.Frame, len(pages))
	for i, p := range pages {
		if len(p.Data) != pager.PageSize {
			return fmt.Errorf("dmsii: replicated page %d has %d bytes", p.ID, len(p.Data))
		}
		frames[i] = &pager.Frame{ID: p.ID, Data: p.Data}
	}
	unlock, err := s.lockWrites()
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.log.Commit(frames); err != nil {
		return err
	}
	for _, p := range pages {
		if err := s.file.WritePage(p.ID, p.Data); err != nil {
			return err
		}
	}
	if err := s.invalidateCaches(); err != nil {
		return err
	}
	if s.log.Size() > checkpointThreshold {
		if err := s.file.Sync(); err != nil {
			return err
		}
		return s.log.Truncate()
	}
	return nil
}

// ReplaceImage atomically replaces the entire database file with a base
// image shipped from a primary (snapshot install). The WAL is truncated
// first: its contents describe the old image, and replaying them over the
// new one after a crash mid-install would corrupt it. A crash between the
// truncate and the final sync leaves a partially written file, which is
// why the follower invalidates its position sidecar before calling this —
// restart then forces a fresh snapshot rather than trusting the file.
func (s *Store) ReplaceImage(img []byte) error {
	if s.log == nil {
		return fmt.Errorf("dmsii: replication needs a durable store (no WAL)")
	}
	if len(img)%pager.PageSize != 0 || len(img) == 0 {
		return fmt.Errorf("dmsii: snapshot image of %d bytes is not whole pages", len(img))
	}
	if [8]byte(img[magicOff:magicOff+8]) != magic {
		return fmt.Errorf("dmsii: snapshot image is not a SIM database")
	}
	unlock, err := s.lockWrites()
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.log.Truncate(); err != nil {
		return err
	}
	n := uint32(len(img) / pager.PageSize)
	for id := uint32(0); id < n; id++ {
		if err := s.file.WritePage(pager.PageID(id), img[int(id)*pager.PageSize:(int(id)+1)*pager.PageSize]); err != nil {
			return err
		}
	}
	if tr, ok := s.file.(pager.PageTruncator); ok {
		if err := tr.TruncatePages(n); err != nil {
			return err
		}
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	return s.invalidateCaches()
}

// invalidateCaches drops every pool frame and reattaches the directory
// from the (just rewritten) meta page, so reads observe the replicated
// bytes. The caller holds the write latch; concurrent readers may briefly
// pin frames, so the drop retries like resetUncommitted.
func (s *Store) invalidateCaches() error {
	var err error
	for i := 0; i < 1000; i++ {
		if err = s.pool.DropAll(); err == nil {
			break
		}
		runtime.Gosched()
	}
	if err != nil {
		return err
	}
	meta, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	dirRoot := pager.PageID(binary.BigEndian.Uint32(meta.Data[dirRootOff:]))
	s.pool.Release(meta)
	s.dirMu.Lock()
	s.open = make(map[string]*Structure)
	s.dir = btree.Open(s, dirRoot, s.setDirRoot)
	s.dirMu.Unlock()
	return nil
}
