package dmsii

import (
	"encoding/binary"
	"errors"
	"sync"

	"sim/internal/btree"
	"sim/internal/pager"
)

// errSnapshotRO guards the btree.Alloc mutation entry points of snapshot
// views; Structure.mutable fails first on every public path, so hitting
// this means a caller bypassed the Structure API.
var errSnapshotRO = errors.New("dmsii: snapshot views are read-only")

// snapAlloc adapts ViewPage to btree.Alloc so an unmodified B+tree can
// traverse the store as of one commit stamp. Get hands out lightweight
// Frame wrappers around the immutable version buffers — there is no pin
// accounting to do (version GC is governed by the view pin, not by frame
// pins), so wrappers are pooled and recycled on Release.
type snapAlloc struct {
	pool  *pager.Pool
	stamp uint64
}

var snapFrames = sync.Pool{New: func() any { return new(pager.Frame) }}

func (a *snapAlloc) Get(id pager.PageID) (*pager.Frame, error) {
	data, err := a.pool.ViewPage(id, a.stamp)
	if err != nil {
		return nil, err
	}
	f := snapFrames.Get().(*pager.Frame)
	f.ID = id
	f.Data = data
	return f, nil
}

func (a *snapAlloc) Release(f *pager.Frame) {
	f.Data = nil
	snapFrames.Put(f)
}

func (a *snapAlloc) AllocPage() (*pager.Frame, error) { return nil, errSnapshotRO }
func (a *snapAlloc) FreePage(pager.PageID) error      { return errSnapshotRO }
func (a *snapAlloc) Prepare(*pager.Frame)             {}
func (a *snapAlloc) MarkDirty(*pager.Frame)           {}

// Snap is a pinned, immutable read view of the store at one published
// commit stamp. Its structures resolve pages through the pool's version
// chains, so a Snap never takes the store write latch, never observes
// uncommitted bytes, and keeps returning the same data while later
// transactions commit. A Snap is safe for concurrent readers (parallel
// query workers share one). Every PinSnapshot must be paired with
// Release, which is what lets version GC reclaim old page images.
type Snap struct {
	s     *Store
	alloc *snapAlloc
	stamp uint64

	mu       sync.Mutex
	dir      *btree.Tree // directory as of stamp, opened lazily
	open     map[string]*Structure
	released bool
}

// PinSnapshot pins a read view at the newest published commit stamp.
func (s *Store) PinSnapshot() *Snap {
	stamp := s.pool.PinView()
	return &Snap{
		s:     s,
		stamp: stamp,
		alloc: &snapAlloc{pool: s.pool, stamp: stamp},
		open:  make(map[string]*Structure),
	}
}

// Stamp returns the commit stamp the view is pinned at.
func (sn *Snap) Stamp() uint64 { return sn.stamp }

// Release unpins the view, allowing version GC to advance past it. It is
// idempotent; structures obtained from the view must not be used after.
func (sn *Snap) Release() {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.released {
		return
	}
	sn.released = true
	sn.s.pool.UnpinView(sn.stamp)
}

// Structure opens a read-only view of the named structure as of the
// snapshot. A structure absent from the snapshot's directory (created
// after the pin, or never) falls back to the live store — schema changes
// are not snapshot-isolated, matching the statement-level DDL exclusion
// the database layer already enforces.
func (sn *Snap) Structure(name string) (*Structure, error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if st, ok := sn.open[name]; ok {
		return st, nil
	}
	if sn.dir == nil {
		meta, err := sn.s.pool.ViewPage(0, sn.stamp)
		if err != nil {
			return nil, err
		}
		root := pager.PageID(binary.BigEndian.Uint32(meta[dirRootOff:]))
		sn.dir = btree.Open(sn.alloc, root, nil)
	}
	rootBytes, found, err := sn.dir.Get([]byte(name))
	if err != nil {
		return nil, err
	}
	if !found {
		return sn.s.Structure(name)
	}
	root := pager.PageID(binary.BigEndian.Uint32(rootBytes))
	st := &Structure{s: sn.s, name: name, tree: btree.Open(sn.alloc, root, nil), ro: true}
	sn.open[name] = st
	return st, nil
}

// Published returns the newest commit stamp visible to new snapshots.
func (s *Store) Published() uint64 { return s.pool.Published() }

// OldestPinned returns the version-GC floor: the oldest stamp a live
// snapshot is pinned at, or the published stamp with none pinned.
func (s *Store) OldestPinned() uint64 { return s.pool.OldestPinned() }

// PinnedViews returns the number of live pinned snapshots.
func (s *Store) PinnedViews() int { return s.pool.PinnedViews() }

// LiveVersions returns the number of retained copy-on-write page images.
func (s *Store) LiveVersions() int64 { return s.pool.LiveVersions() }
