package dmsii

import (
	"fmt"
	"testing"

	"sim/internal/fault"
	"sim/internal/pager"
	"sim/internal/wal"
)

// newFaultStore assembles a durable store over in-memory byte images
// wrapped with a fault injector, returning the raw images so tests can
// damage them or "reboot" from them.
func newFaultStore(t *testing.T, inj *fault.Injector) (*Store, *pager.MemByteFile, *pager.MemByteFile) {
	t.Helper()
	dbImg, walImg := pager.NewMemByteFile(), pager.NewMemByteFile()
	file := pager.NewChecksumFile(fault.Wrap("db", dbImg, inj))
	log, err := wal.OpenBacking(fault.Wrap("wal", walImg, inj))
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenFiles(file, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, dbImg, walImg
}

func commitPut(t *testing.T, s *Store, st *Structure, key, val string) {
	t.Helper()
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte(key), []byte(val)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanStore(t *testing.T) {
	s, _, _ := newFaultStore(t, fault.NewInjector())
	st, err := s.Structure("people")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		commitPut(t, s, st, fmt.Sprintf("key%03d", i), "value")
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub of healthy store failed: %s", rep)
	}
	if rep.Entries != 50 || rep.Structures != 1 {
		t.Errorf("report = %+v, want 50 entries in 1 structure", rep)
	}
	if rep.Pages == 0 {
		t.Error("physical pass checked no pages")
	}
}

// A bit flipped in the stored image must surface as a detected,
// page-addressed corruption in the scrub report — not be silently
// served to readers.
func TestScrubReportsFlippedBit(t *testing.T) {
	s, dbImg, _ := newFaultStore(t, fault.NewInjector())
	st, err := s.Structure("people")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		commitPut(t, s, st, fmt.Sprintf("key%03d", i), "value")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Damage a byte in the middle of page 2's data region.
	const slot = int64(pager.PageSize + 4)
	var b [1]byte
	off := 2*slot + 512
	dbImg.ReadAt(b[:], off)
	b[0] ^= 0x01
	dbImg.WriteAt(b[:], off)

	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("scrub missed the flipped bit")
	}
	found := false
	for _, id := range rep.Corrupt {
		if id == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("corrupt pages = %v, want page 2 reported", rep.Corrupt)
	}
}

// When journaling fails mid-commit, the transaction must abort: its
// in-memory effects are discarded and the store still serves the last
// committed state, rather than caching half-applied pages that a later
// commit would journal.
func TestFailedJournalAbortsTransaction(t *testing.T) {
	inj := fault.NewInjector()
	s, _, _ := newFaultStore(t, inj)
	st, err := s.Structure("people")
	if err != nil {
		t.Fatal(err)
	}
	commitPut(t, s, st, "alice", "committed")

	// Script the next WAL sync to fail. Ops so far are unknown — use a
	// large window by failing every sync until one fires.
	inj.FailSync(inj.Ops()+2, nil) // commit = 1 write + 1 sync

	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Structure("people")
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Put([]byte("bob"), []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit with failing WAL sync succeeded")
	}

	// The WAL is poisoned; clear it the way an operator would (checkpoint
	// truncates), after verifying the aborted write is invisible.
	st3, err := s.Structure("people")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st3.Get([]byte("bob")); ok {
		t.Error("aborted transaction's write is visible")
	}
	if v, ok, err := st3.Get([]byte("alice")); err != nil || !ok || string(v) != "committed" {
		t.Errorf("committed row lost after aborted commit: %q %v %v", v, ok, err)
	}
}
