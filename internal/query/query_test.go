package query

import (
	"strings"
	"testing"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/parser"
	"sim/internal/university"
)

func cat(t *testing.T) *catalog.Catalog {
	t.Helper()
	sch, err := parser.ParseSchema(university.DDL)
	if err != nil {
		t.Fatal(err)
	}
	c, err := catalog.Build(sch)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func bind(t *testing.T, dml string) *Tree {
	t.Helper()
	s, err := parser.ParseStmt(dml)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Bind(cat(t), s.(*ast.RetrieveStmt))
	if err != nil {
		t.Fatalf("Bind(%q): %v", dml, err)
	}
	return tree
}

func bindErr(t *testing.T, dml string) error {
	t.Helper()
	s, err := parser.ParseStmt(dml)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Bind(cat(t), s.(*ast.RetrieveStmt))
	if err == nil {
		t.Fatalf("Bind(%q) succeeded, want error", dml)
	}
	return err
}

// nodeByLabel finds a node whose printable qualification contains s.
func nodeByLabel(t *testing.T, tree *Tree, s string) *Node {
	t.Helper()
	for _, n := range tree.Nodes {
		if strings.Contains(n.Label(), s) && !n.Sub {
			return n
		}
	}
	t.Fatalf("no node labelled %q in %d nodes", s, len(tree.Nodes))
	return nil
}

// §4.4: identically qualified paths bind to one range variable.
func TestImplicitBindingSharesNodes(t *testing.T) {
	tree := bind(t, `
Retrieve Name of Student,
  Title of Courses-Enrolled of Student,
  Credits of Courses-Enrolled of Student,
  Name of Teachers of Courses-Enrolled of Student
Where Soc-Sec-No of Student = 456887766.`)
	// Nodes: student root, courses-enrolled, teachers. Three non-sub
	// nodes total, despite five STUDENT and three COURSES-ENROLLED
	// occurrences.
	count := 0
	for _, n := range tree.Nodes {
		if !n.Sub {
			count++
		}
	}
	if count != 3 {
		for _, n := range tree.Nodes {
			t.Logf("node %d: %s (sub=%v)", n.ID, n.Label(), n.Sub)
		}
		t.Fatalf("got %d range variables, want 3", count)
	}
}

// §4.5 labeling: the worked taxonomy.
func TestTypeLabeling(t *testing.T) {
	tree := bind(t, `
From Student
Retrieve Name, Title of Courses-Enrolled
Where Salary of Advisor > 50000.`)
	if got := tree.Roots[0].Type; got != Type1 {
		t.Errorf("root = %v, want TYPE 1", got)
	}
	// courses-enrolled: target-only → TYPE 3.
	if got := nodeByLabel(t, tree, "courses-enrolled").Type; got != Type3 {
		t.Errorf("courses-enrolled = %v, want TYPE 3", got)
	}
	// advisor: selection-only → TYPE 2.
	if got := nodeByLabel(t, tree, "advisor").Type; got != Type2 {
		t.Errorf("advisor = %v, want TYPE 2", got)
	}
	// Main iteration excludes TYPE 2; exist list holds it.
	if len(tree.MainNodes()) != 2 {
		t.Errorf("main nodes = %d, want 2", len(tree.MainNodes()))
	}
	if len(tree.ExistNodes()) != 1 {
		t.Errorf("exist nodes = %d, want 1", len(tree.ExistNodes()))
	}
}

func TestTypeLabelingMixedUsage(t *testing.T) {
	// courses-enrolled used in BOTH target and selection → TYPE 1.
	tree := bind(t, `
From Student Retrieve Title of Courses-Enrolled
Where Credits of Courses-Enrolled > 3.`)
	if got := nodeByLabel(t, tree, "courses-enrolled").Type; got != Type1 {
		t.Errorf("courses-enrolled = %v, want TYPE 1", got)
	}
}

// A node whose descendant is a target forces TYPE 1 even if unused itself.
func TestTypeLabelingPropagates(t *testing.T) {
	tree := bind(t, `
From Student Retrieve Name of Teachers of Courses-Enrolled
Where Credits of Courses-Enrolled > 3.`)
	// courses-enrolled: its subtree has a target (teachers) and itself is
	// in selection → TYPE 1.
	if got := nodeByLabel(t, tree, "courses-enrolled of").Type; got != Type1 {
		t.Errorf("courses-enrolled = %v, want TYPE 1", got)
	}
}

func TestAggregateBreaksBinding(t *testing.T) {
	// The aggregate's instructor scan must NOT bind to the perspective.
	tree := bind(t, `From Instructor Retrieve Name, AVG(Salary of Instructor).`)
	subCount := 0
	for _, n := range tree.Nodes {
		if n.Sub {
			subCount++
		}
	}
	if subCount != 1 {
		t.Fatalf("aggregate created %d sub nodes, want 1 standalone scan", subCount)
	}
	agg := tree.Targets[1].(*Agg)
	if agg.Sub.Anchor() != nil {
		t.Error("standalone aggregate should have no anchor")
	}
	if len(agg.Sub.Chain) != 1 || !agg.Sub.Chain[0].Sub {
		t.Errorf("chain = %v", agg.Sub.Chain)
	}
}

func TestAggregateAnchored(t *testing.T) {
	tree := bind(t, `From Department Retrieve Name, AVG(Salary of Instructors-employed).`)
	agg := tree.Targets[1].(*Agg)
	if agg.Sub.Anchor() != tree.Roots[0] {
		t.Error("aggregate should anchor at the department root")
	}
	if len(agg.Sub.Chain) != 1 {
		t.Errorf("chain length = %d", len(agg.Sub.Chain))
	}
	if _, ok := agg.Sub.Value.(*AttrRef); !ok {
		t.Errorf("value = %T", agg.Sub.Value)
	}
}

func TestShortcutAmbiguity(t *testing.T) {
	// Two bound instructor-entities could complete "salary"; ambiguous.
	err := bindErr(t, `
From Student
Retrieve Name of Advisor, Name of Teachers of Courses-Enrolled, Salary.`)
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("error = %v, want ambiguity", err)
	}
}

func TestShortcutPrefersRoot(t *testing.T) {
	// "name" resolves on the root (person-inherited) even though advisor
	// also has a name.
	tree := bind(t, `From Student Retrieve Name of Advisor, Name.`)
	second := tree.Targets[1].(*AttrRef)
	if second.Node != tree.Roots[0] {
		t.Errorf("bare Name bound to %s, want the perspective", second.Node.Label())
	}
}

func TestUnknownAttribute(t *testing.T) {
	bindErr(t, `From Student Retrieve Nonexistent-Attr.`)
	bindErr(t, `From Student Retrieve Name of Advisor of Nowhere.`)
}

func TestCannotQualifyThroughDVA(t *testing.T) {
	err := bindErr(t, `From Student Retrieve Name of Birthdate of Student.`)
	if !strings.Contains(err.Error(), "no attribute") && !strings.Contains(err.Error(), "values have no attributes") {
		t.Errorf("error = %v", err)
	}
}

func TestRoleConversionValidation(t *testing.T) {
	// Converting between unrelated hierarchies is rejected.
	err := bindErr(t, `From Student Retrieve Name of Student as Course.`)
	if !strings.Contains(err.Error(), "hierarch") {
		t.Errorf("error = %v", err)
	}
}

func TestTransitiveRequiresCyclicChain(t *testing.T) {
	// major-department leaves the person hierarchy: no cyclic chain.
	err := bindErr(t, `From Student Retrieve Name of Transitive(Major-Department) of Student.`)
	if !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("error = %v", err)
	}
	// advisor stays within the person hierarchy (an instructor may also
	// be a student), so its closure is legal.
	bind(t, `From Student Retrieve Name of Transitive(Advisor) of Student.`)
}

func TestIsaRequiresEntity(t *testing.T) {
	err := bindErr(t, `From Student Retrieve Name Where Birthdate isa Teaching-Assistant.`)
	if !strings.Contains(err.Error(), "entity") {
		t.Errorf("error = %v", err)
	}
}

func TestSymbolicLiteralCoercion(t *testing.T) {
	// A schema with a symbolic attribute: the degree type exists but no
	// attribute uses it in the university schema, so extend one.
	c := cat(t)
	sch, err := parser.ParseSchema(`Class Grad ( level: degree );`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Extend(sch); err != nil {
		t.Fatal(err)
	}
	s, _ := parser.ParseStmt(`From Grad Retrieve level Where level >= "MS".`)
	tree, err := Bind(c, s.(*ast.RetrieveStmt))
	if err != nil {
		t.Fatal(err)
	}
	cmp := tree.Where.(*Binary)
	lit := cmp.R.(*Lit)
	if lit.Val.Kind().String() != "symbolic" || lit.Val.Ordinal() != 2 {
		t.Errorf("literal not coerced: %v (%v)", lit.Val, lit.Val.Kind())
	}
	// Invalid labels are bind-time errors (strong typing).
	s, _ = parser.ParseStmt(`From Grad Retrieve level Where level = "BBQ".`)
	if _, err := Bind(c, s.(*ast.RetrieveStmt)); err == nil {
		t.Error("invalid symbolic label accepted")
	}
}

func TestBindSelectionShape(t *testing.T) {
	c := cat(t)
	s, _ := parser.ParseStmt(`Delete student Where salary of advisor > 10.`)
	tree, err := BindSelection(c, c.Class("student"), s.(*ast.DeleteStmt).Where)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Roots) != 1 || len(tree.Targets) != 0 {
		t.Errorf("selection tree shape wrong")
	}
	if got := len(tree.ExistNodes()); got != 1 {
		t.Errorf("exist nodes = %d", got)
	}
}

func TestBindScalarShape(t *testing.T) {
	c := cat(t)
	s, _ := parser.ParseStmt(`Modify instructor (salary := 1.1 * salary) Where salary > 0.`)
	mod := s.(*ast.ModifyStmt)
	tree, err := BindScalar(c, c.Class("instructor"), mod.Assigns[0].Value)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Targets) != 1 {
		t.Fatal("scalar tree needs exactly one target")
	}
	if _, ok := tree.Targets[0].(*Binary); !ok {
		t.Errorf("target = %T", tree.Targets[0])
	}
}

func TestReferenceVariableBinding(t *testing.T) {
	tree := bind(t, `From student s1, student s2 Retrieve name of s1 Where advisor of s1 = advisor of s2.`)
	if len(tree.Roots) != 2 {
		t.Fatalf("roots = %d", len(tree.Roots))
	}
	// Each variable has its own advisor node.
	advisors := 0
	for _, n := range tree.Nodes {
		if n.Edge != nil && strings.EqualFold(n.Edge.Name, "advisor") {
			advisors++
		}
	}
	if advisors != 2 {
		t.Errorf("advisor nodes = %d, want 2 (distinct per variable)", advisors)
	}
}

func TestRefVarCollisionRejected(t *testing.T) {
	err := bindErr(t, `From student course Retrieve name of course.`)
	if !strings.Contains(err.Error(), "collides") {
		t.Errorf("error = %v", err)
	}
}

func TestColumnNames(t *testing.T) {
	tree := bind(t, `From Student Retrieve Name, Salary of Advisor, count(courses-enrolled).`)
	want := []string{"name of student", "salary of advisor of student", "count(courses-enrolled of student)"}
	for i, n := range tree.Names {
		if n != want[i] {
			t.Errorf("column %d = %q, want %q", i, n, want[i])
		}
	}
}
