// Package query builds SIM query trees: it resolves qualifications against
// the perspective classes (§4.2), applies the implicit binding rules that
// map identically qualified paths to one range variable (§4.4), and labels
// every range variable TYPE 1, 2 or 3 to define the DAPLEX-style iteration
// semantics of §4.5.
package query

import (
	"fmt"
	"strings"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/value"
)

// NodeType is the §4.5 label of a range variable.
type NodeType int

// Node types. Type1 variables appear in both the target list and the
// selection expression (or are perspective roots); Type3 subtrees are
// target-only (outer-joined with null dummies when empty); Type2 subtrees
// are selection-only and existentially quantified.
const (
	Type1 NodeType = 1
	Type2 NodeType = 2
	Type3 NodeType = 3
)

func (t NodeType) String() string { return fmt.Sprintf("TYPE %d", int(t)) }

// Node is one range variable of the query tree. A node ranges over
// entities of a class (perspective roots and EVA edges) or over the values
// of a multi-valued DVA or subrole.
type Node struct {
	ID     int
	Class  *catalog.Class // resolution class (reflects AS role conversion)
	Parent *Node
	// Edge is the EVA, multi-valued DVA or multi-valued subrole leading
	// here from Parent; nil for perspective roots.
	Edge       *catalog.Attribute
	Transitive bool
	Children   []*Node
	Type       NodeType

	// IsValue marks nodes ranging over DVA/subrole values rather than
	// entities.
	IsValue bool

	// Sub marks nodes belonging to an aggregate/quantifier subquery;
	// they are excluded from the main iteration.
	Sub bool

	usedTarget bool
	usedSelect bool
	key        string
	label      string // printable qualification, for column naming
}

// IsRoot reports whether the node is a perspective root.
func (n *Node) IsRoot() bool { return n.Parent == nil }

// Label returns the printable qualification of this node.
func (n *Node) Label() string { return n.label }

// Tree is a bound query.
type Tree struct {
	Roots   []*Node
	Nodes   []*Node // every node, main tree and subqueries
	Targets []Expr
	Names   []string // column names for tabular output
	OrderBy []Expr
	Where   Expr // nil when absent
	Mode    ast.OutputMode
}

// MainNodes returns the TYPE 1 and TYPE 3 nodes in depth-first order — the
// nesting order of the output loops (§4.5).
func (t *Tree) MainNodes() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Type == Type2 {
			return
		}
		out = append(out, n)
		for _, c := range n.Children {
			if !c.Sub {
				walk(c)
			}
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// ExistNodes returns the TYPE 2 nodes in depth-first order — the
// existentially quantified loops.
func (t *Tree) ExistNodes() []*Node {
	var out []*Node
	var walk func(n *Node, inType2 bool)
	walk = func(n *Node, inType2 bool) {
		in := inType2 || n.Type == Type2
		if in {
			out = append(out, n)
		}
		for _, c := range n.Children {
			if !c.Sub {
				walk(c, in)
			}
		}
	}
	for _, r := range t.Roots {
		walk(r, false)
	}
	return out
}

// ---------------------------------------------------------------------------
// Bound expressions
// ---------------------------------------------------------------------------

// Expr is a bound expression.
type Expr interface{ expr() }

// Lit is a literal.
type Lit struct{ Val value.Value }

// AttrRef reads a single-valued DVA or single-valued subrole of the node's
// current entity.
type AttrRef struct {
	Node *Node
	Attr *catalog.Attribute
	// As is the role-conversion class in effect for this access (nil when
	// none); access on an entity lacking the role yields NULL.
	As *catalog.Class
}

// EntityRef is the node's current entity (a surrogate value; NULL for the
// outer-join dummy).
type EntityRef struct{ Node *Node }

// ValueRef is the current value of a value node (MV DVA / MV subrole).
type ValueRef struct{ Node *Node }

// Binary is a bound binary operation.
type Binary struct {
	Op   ast.BinaryOp
	L, R Expr
}

// Unary is a bound NOT or negation.
type Unary struct {
	Op ast.UnaryOp
	X  Expr
}

// SubQuery is the broken-binding iteration scope of an aggregate or
// quantifier (§4.4: "implicit binding of names is broken in … aggregate
// functions, transitive closure or quantifiers").
type SubQuery struct {
	// Chain lists the fresh nodes outermost-first. Chain[0].Parent is the
	// anchor in the enclosing tree (nil for a standalone class scan).
	Chain []*Node
	// Value is evaluated at the innermost nesting for each combination.
	Value Expr
}

// Anchor returns the enclosing-tree node the subquery hangs off, or nil.
func (s *SubQuery) Anchor() *Node {
	if len(s.Chain) == 0 {
		return nil
	}
	return s.Chain[0].Parent
}

// Agg is a bound aggregate.
type Agg struct {
	Func     ast.AggFunc
	Distinct bool
	Sub      *SubQuery
}

// Quant is a bound quantifier, usable only as a comparison operand.
type Quant struct {
	Quant ast.Quant
	Sub   *SubQuery
}

// Isa tests whether the node's current entity holds a role in Class.
type Isa struct {
	Node  *Node
	Class *catalog.Class
}

func (*Lit) expr()       {}
func (*AttrRef) expr()   {}
func (*EntityRef) expr() {}
func (*ValueRef) expr()  {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*Agg) expr()       {}
func (*Quant) expr()     {}
func (*Isa) expr()       {}

// Walk visits every expression node of e in preorder.
func Walk(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Binary:
		Walk(x.L, f)
		Walk(x.R, f)
	case *Unary:
		Walk(x.X, f)
	case *Agg:
		Walk(x.Sub.Value, f)
	case *Quant:
		Walk(x.Sub.Value, f)
	}
}

// exprString renders a bound expression for column naming.
func exprString(e Expr) string {
	switch x := e.(type) {
	case *Lit:
		return x.Val.String()
	case *AttrRef:
		if x.Node.label == "" {
			return strings.ToLower(x.Attr.Name)
		}
		return strings.ToLower(x.Attr.Name) + " of " + x.Node.label
	case *EntityRef:
		return x.Node.label
	case *ValueRef:
		return x.Node.label
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(x.L), x.Op, exprString(x.R))
	case *Unary:
		if x.Op == ast.OpNot {
			return "not " + exprString(x.X)
		}
		return "-" + exprString(x.X)
	case *Agg:
		return fmt.Sprintf("%s(%s)", x.Func, exprString(x.Sub.Value))
	case *Quant:
		return fmt.Sprintf("%s(%s)", x.Quant, exprString(x.Sub.Value))
	case *Isa:
		return fmt.Sprintf("%s isa %s", x.Node.label, strings.ToLower(x.Class.Name))
	}
	return "?"
}
