package query

import (
	"fmt"
	"strings"

	"sim/internal/ast"
	"sim/internal/catalog"
)

type usage int

const (
	useTarget usage = iota
	useSelect
)

type binder struct {
	cat          *catalog.Catalog
	tree         *Tree
	byKey        map[string]*Node
	nextSub      int
	derivedDepth int
}

// Bind resolves and labels a Retrieve statement.
func Bind(cat *catalog.Catalog, stmt *ast.RetrieveStmt) (*Tree, error) {
	b := &binder{cat: cat, tree: &Tree{Mode: stmt.Mode}, byKey: make(map[string]*Node)}
	if err := b.setupRoots(stmt); err != nil {
		return nil, err
	}
	for _, t := range stmt.Targets {
		e, err := b.bindExpr(t, useTarget, nil)
		if err != nil {
			return nil, err
		}
		b.tree.Targets = append(b.tree.Targets, e)
		b.tree.Names = append(b.tree.Names, exprString(e))
	}
	for _, o := range stmt.OrderBy {
		e, err := b.bindExpr(o, useTarget, nil)
		if err != nil {
			return nil, err
		}
		b.tree.OrderBy = append(b.tree.OrderBy, e)
	}
	if stmt.Where != nil {
		e, err := b.bindExpr(stmt.Where, useSelect, nil)
		if err != nil {
			return nil, err
		}
		b.tree.Where = e
	}
	b.label()
	return b.tree, nil
}

// BindSelection builds a single-perspective tree for an update statement's
// WHERE clause, an entity selection, or a VERIFY assertion. The returned
// tree has no targets; the executor collects the root entities for which
// where holds.
func BindSelection(cat *catalog.Catalog, cl *catalog.Class, where ast.Expr) (*Tree, error) {
	b := &binder{cat: cat, tree: &Tree{}, byKey: make(map[string]*Node)}
	b.addRoot(cl, "")
	if where != nil {
		e, err := b.bindExpr(where, useSelect, nil)
		if err != nil {
			return nil, err
		}
		b.tree.Where = e
	}
	b.label()
	return b.tree, nil
}

// BindScalar builds a single-perspective tree whose only target is one
// expression — used to evaluate assignment right-hand sides such as
// "salary := 1.1 * salary" in the context of each modified entity.
func BindScalar(cat *catalog.Catalog, cl *catalog.Class, e ast.Expr) (*Tree, error) {
	b := &binder{cat: cat, tree: &Tree{}, byKey: make(map[string]*Node)}
	b.addRoot(cl, "")
	bound, err := b.bindExpr(e, useTarget, nil)
	if err != nil {
		return nil, err
	}
	b.tree.Targets = []Expr{bound}
	b.tree.Names = []string{exprString(bound)}
	b.label()
	return b.tree, nil
}

func (b *binder) addRoot(cl *catalog.Class, refVar string) *Node {
	key := "root:" + strings.ToLower(cl.Name)
	if refVar != "" {
		key = "var:" + strings.ToLower(refVar)
	}
	if n, ok := b.byKey[key]; ok {
		return n
	}
	label := strings.ToLower(cl.Name)
	if refVar != "" {
		label = strings.ToLower(refVar)
	}
	n := &Node{
		ID:    len(b.tree.Nodes),
		Class: cl,
		Type:  Type1,
		key:   key,
		label: label,
	}
	b.tree.Nodes = append(b.tree.Nodes, n)
	b.tree.Roots = append(b.tree.Roots, n)
	b.byKey[key] = n
	return n
}

// setupRoots installs the FROM-clause perspectives, or infers them from
// the class names terminating target qualifications when FROM is omitted
// (every §4 example without FROM qualifies its paths down to a class).
func (b *binder) setupRoots(stmt *ast.RetrieveStmt) error {
	if len(stmt.Perspectives) > 0 {
		for _, p := range stmt.Perspectives {
			cl := b.cat.Class(p.Class)
			if cl == nil {
				return fmt.Errorf("unknown perspective class %q", p.Class)
			}
			if p.Var != "" && b.cat.Class(p.Var) != nil {
				return fmt.Errorf("reference variable %q collides with a class name", p.Var)
			}
			b.addRoot(cl, p.Var)
		}
		return nil
	}
	// Inference: collect class-name tails from the target paths.
	found := false
	for _, t := range stmt.Targets {
		p, ok := t.(*ast.Path)
		if !ok {
			continue
		}
		tail := p.Steps[len(p.Steps)-1]
		if tail.Transitive || tail.Inverse {
			continue
		}
		if cl := b.cat.Class(tail.Name); cl != nil {
			b.addRoot(cl, "")
			found = true
		}
	}
	if !found {
		return fmt.Errorf("no FROM clause and no target qualification names a perspective class")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Expression binding
// ---------------------------------------------------------------------------

func (b *binder) bindExpr(e ast.Expr, u usage, sub *subScope) (Expr, error) {
	switch x := e.(type) {
	case *ast.Lit:
		return &Lit{Val: x.Val}, nil
	case *ast.Path:
		return b.bindPath(x.Steps, u, sub)
	case *ast.Unary:
		inner, err := b.bindExpr(x.X, u, sub)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: inner}, nil
	case *ast.Binary:
		l, err := b.bindExpr(x.L, u, sub)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.R, u, sub)
		if err != nil {
			return nil, err
		}
		// Strong typing (§2): in comparisons, literals coerce to the
		// declared type of the opposite attribute — "HIGH" against a
		// symbolic attribute becomes the symbolic value, "1970-01-01"
		// against a date attribute becomes the date. An impossible
		// coercion is a bind-time error, discouraging "meaningless
		// associations between components of data".
		switch x.Op {
		case ast.OpEQ, ast.OpNEQ, ast.OpLT, ast.OpLE, ast.OpGT, ast.OpGE:
			if err := coerceLiteral(l, r); err != nil {
				return nil, err
			}
			if err := coerceLiteral(r, l); err != nil {
				return nil, err
			}
		}
		return &Binary{Op: x.Op, L: l, R: r}, nil
	case *ast.Agg:
		sq, innermost, err := b.bindSubQuery(x.Inner, x.Outer, u)
		if err != nil {
			return nil, err
		}
		if x.Func == ast.AggCount && sq.Value == nil {
			sq.Value = innermost
		}
		if sq.Value == nil {
			return nil, fmt.Errorf("aggregate %s needs a value qualification", x.Func)
		}
		return &Agg{Func: x.Func, Distinct: x.Distinct, Sub: sq}, nil
	case *ast.Quantified:
		sq, innermost, err := b.bindSubQuery(x.Inner, x.Outer, u)
		if err != nil {
			return nil, err
		}
		if sq.Value == nil {
			sq.Value = innermost
		}
		return &Quant{Quant: x.Quant, Sub: sq}, nil
	case *ast.Isa:
		bound, err := b.bindPath(x.Entity.Steps, u, sub)
		if err != nil {
			return nil, err
		}
		er, ok := bound.(*EntityRef)
		if !ok {
			return nil, fmt.Errorf("left side of ISA must denote an entity, not %s", exprString(bound))
		}
		cl := b.cat.Class(x.Class)
		if cl == nil {
			return nil, fmt.Errorf("unknown class %q in ISA", x.Class)
		}
		if !catalog.SameHierarchy(er.Node.Class, cl) {
			return nil, fmt.Errorf("ISA class %s is not in %s's hierarchy", cl.Name, er.Node.Class.Name)
		}
		return &Isa{Node: er.Node, Class: cl}, nil
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

// coerceLiteral rewrites lit (when it is a literal) to the declared type
// of the expression on the other side of a comparison.
func coerceLiteral(lit, other Expr) error {
	l, ok := lit.(*Lit)
	if !ok || l.Val.IsNull() {
		return nil
	}
	t := declaredType(other)
	if t == nil {
		return nil
	}
	v, err := t.Coerce(l.Val)
	if err != nil {
		return err
	}
	l.Val = v
	return nil
}

// declaredType finds the catalog type an expression's values carry, when
// determinable: attribute references, MV-DVA value references, and MIN/MAX
// aggregates or quantifiers over them.
func declaredType(e Expr) *catalog.DataType {
	switch x := e.(type) {
	case *AttrRef:
		if x.Attr.Kind == catalog.DVA {
			return x.Attr.Type
		}
	case *ValueRef:
		if x.Node.Edge != nil && x.Node.Edge.Kind == catalog.DVA {
			return x.Node.Edge.Type
		}
	case *Agg:
		if x.Func == ast.AggMin || x.Func == ast.AggMax {
			return declaredType(x.Sub.Value)
		}
	case *Quant:
		return declaredType(x.Sub.Value)
	}
	return nil
}

// subScope marks binding inside an aggregate/quantifier: fresh nodes.
type subScope struct{ id int }

// bindPath resolves a qualification chain (steps outermost-first) to a
// bound expression.
func (b *binder) bindPath(steps []ast.PathStep, u usage, sub *subScope) (Expr, error) {
	ctx, curClass, rest, err := b.findContext(steps, sub)
	if err != nil {
		return nil, err
	}
	return b.walkSteps(ctx, curClass, rest, u, sub)
}

// expandDerived binds a derived attribute reference by qualified macro
// expansion: every path of the defining expression is re-qualified with
// the access path's suffix, then bound normally — so the expansion shares
// range variables with the rest of the query exactly as if the user had
// written the expression inline.
func (b *binder) expandDerived(attr *catalog.Attribute, suffix []ast.PathStep, u usage, sub *subScope) (Expr, error) {
	if b.derivedDepth >= 16 {
		return nil, fmt.Errorf("derived attribute %s: expansion too deep (recursive definition?)", attr)
	}
	b.derivedDepth++
	defer func() { b.derivedDepth-- }()
	return b.bindExpr(b.qualifyExpr(attr.Expr, suffix), u, sub)
}

// qualifyExpr deep-copies e with suffix appended to every qualification,
// anchoring the expression at the access point.
func (b *binder) qualifyExpr(e ast.Expr, suffix []ast.PathStep) ast.Expr {
	appendSteps := func(steps []ast.PathStep) []ast.PathStep {
		out := make([]ast.PathStep, 0, len(steps)+len(suffix))
		out = append(out, steps...)
		return append(out, suffix...)
	}
	switch x := e.(type) {
	case *ast.Lit:
		return x
	case *ast.Path:
		return &ast.Path{P: x.P, Steps: appendSteps(x.Steps)}
	case *ast.Binary:
		return &ast.Binary{P: x.P, Op: x.Op, L: b.qualifyExpr(x.L, suffix), R: b.qualifyExpr(x.R, suffix)}
	case *ast.Unary:
		return &ast.Unary{P: x.P, Op: x.Op, X: b.qualifyExpr(x.X, suffix)}
	case *ast.Agg:
		out := *x
		out.Outer = b.qualifyOuter(x.Inner, x.Outer, suffix)
		return &out
	case *ast.Quantified:
		out := *x
		out.Outer = b.qualifyOuter(x.Inner, x.Outer, suffix)
		return &out
	case *ast.Isa:
		return &ast.Isa{P: x.P, Entity: &ast.Path{P: x.Entity.P, Steps: appendSteps(x.Entity.Steps)}, Class: x.Class}
	}
	return e
}

// qualifyOuter re-anchors a subquery's outer qualification. A standalone
// whole-class aggregate (AVG(Salary of Instructor)) stays standalone.
func (b *binder) qualifyOuter(inner *ast.Path, outer, suffix []ast.PathStep) []ast.PathStep {
	if len(outer) > 0 {
		out := make([]ast.PathStep, 0, len(outer)+len(suffix))
		out = append(out, outer...)
		return append(out, suffix...)
	}
	tail := inner.Steps[len(inner.Steps)-1]
	if !tail.Transitive && !tail.Inverse && b.cat.Class(tail.Name) != nil {
		return nil // standalone scan
	}
	return append([]ast.PathStep(nil), suffix...)
}

// findContext locates the range variable a path hangs off: an explicit
// perspective/reference-variable tail, or — when the qualification is cut
// short (§4.2) — the unique root or bound node that can resolve the tail.
func (b *binder) findContext(steps []ast.PathStep, sub *subScope) (*Node, *catalog.Class, []ast.PathStep, error) {
	tail := steps[len(steps)-1]
	if !tail.Transitive && !tail.Inverse {
		for _, r := range b.tree.Roots {
			key := strings.TrimPrefix(r.key, "root:")
			isVar := strings.HasPrefix(r.key, "var:")
			if isVar {
				key = strings.TrimPrefix(r.key, "var:")
			}
			if strings.EqualFold(tail.Name, key) ||
				(!isVar && strings.EqualFold(tail.Name, r.Class.Name)) {
				curClass := r.Class
				if tail.As != "" {
					var err error
					curClass, err = b.roleClass(r.Class, tail.As)
					if err != nil {
						return nil, nil, nil, err
					}
				}
				return r, curClass, steps[:len(steps)-1], nil
			}
		}
	}
	// Shortcut completion: the whole path is attributes; find the context
	// able to resolve the tail step. Roots are preferred; otherwise any
	// already-bound entity node, unambiguously.
	for _, r := range b.tree.Roots {
		if a, _ := b.resolveStepAttr(r.Class, tail); a != nil {
			return r, r.Class, steps, nil
		}
	}
	var cands []*Node
	for _, n := range b.tree.Nodes {
		if n.IsValue || n.Sub || n.IsRoot() {
			continue
		}
		if a, _ := b.resolveStepAttr(n.Class, tail); a != nil {
			cands = append(cands, n)
		}
	}
	switch len(cands) {
	case 1:
		return cands[0], cands[0].Class, steps, nil
	case 0:
		return nil, nil, nil, fmt.Errorf("cannot resolve %q against any perspective", tail.Name)
	}
	return nil, nil, nil, fmt.Errorf("qualification %q is ambiguous: resolvable from %s and %s", tail.Name, cands[0].label, cands[1].label)
}

// walkSteps descends the remaining qualification steps (outermost-first in
// rest) from ctx, creating or reusing edge nodes, and returns the bound
// expression for the outermost step.
func (b *binder) walkSteps(ctx *Node, curClass *catalog.Class, rest []ast.PathStep, u usage, sub *subScope) (Expr, error) {
	if len(rest) == 0 {
		b.mark(ctx, u)
		return &EntityRef{Node: ctx}, nil
	}
	cur := ctx
	for i := len(rest) - 1; i >= 1; i-- {
		step := rest[i]
		attr, err := b.resolveStepAttr(curClass, step)
		if err != nil {
			return nil, err
		}
		if attr == nil {
			return nil, fmt.Errorf("class %s has no attribute %q", curClass.Name, step.Name)
		}
		if attr.Kind != catalog.EVA {
			return nil, fmt.Errorf("cannot qualify through %s: %s values have no attributes", attr, attr.Kind)
		}
		cur, err = b.edgeNode(cur, attr, step, sub)
		if err != nil {
			return nil, err
		}
		curClass = cur.Class
	}
	terminal := rest[0]
	attr, err := b.resolveStepAttr(curClass, terminal)
	if err != nil {
		return nil, err
	}
	if attr == nil {
		return nil, fmt.Errorf("class %s has no attribute %q", curClass.Name, terminal.Name)
	}
	switch {
	case attr.Kind == catalog.Derived:
		if terminal.Transitive {
			return nil, fmt.Errorf("transitive closure needs an EVA, not derived %s", attr)
		}
		return b.expandDerived(attr, pathSuffix(cur), u, sub)
	case attr.Kind == catalog.EVA:
		n, err := b.edgeNode(cur, attr, terminal, sub)
		if err != nil {
			return nil, err
		}
		b.mark(n, u)
		return &EntityRef{Node: n}, nil
	case attr.Options.MV: // MV DVA or MV subrole: a value node
		n, err := b.edgeNode(cur, attr, terminal, sub)
		if err != nil {
			return nil, err
		}
		b.mark(n, u)
		return &ValueRef{Node: n}, nil
	default:
		if terminal.Transitive {
			return nil, fmt.Errorf("transitive closure needs an EVA, not %s", attr)
		}
		b.mark(cur, u)
		return &AttrRef{Node: cur, Attr: attr}, nil
	}
}

// edgeNode creates or reuses the range variable for an EVA / MV-DVA edge.
func (b *binder) edgeNode(parent *Node, attr *catalog.Attribute, step ast.PathStep, sub *subScope) (*Node, error) {
	if parent.IsValue {
		return nil, fmt.Errorf("cannot traverse %q from a value", attr.Name)
	}
	if step.Transitive {
		if attr.Kind != catalog.EVA {
			return nil, fmt.Errorf("transitive closure needs an EVA, not %s", attr)
		}
		if !catalog.SameHierarchy(attr.Owner, attr.Range) {
			return nil, fmt.Errorf("transitive(%s) is not a cyclic chain: range %s is outside %s's hierarchy", attr.Name, attr.Range.Name, attr.Owner.Name)
		}
	}
	key := fmt.Sprintf("%s|%d", parent.key, attr.ID)
	if step.Transitive {
		key += ":t"
	}
	if step.As != "" {
		key += ":as:" + strings.ToLower(step.As)
	}
	if sub != nil {
		key = fmt.Sprintf("sub%d:%s", sub.id, key)
	} else if n, ok := b.byKey[key]; ok {
		return n, nil
	}
	cls := attr.Range // nil for DVA/subrole value nodes
	if step.As != "" {
		if attr.Kind != catalog.EVA {
			return nil, fmt.Errorf("role conversion AS %s applies to entities, not %s values", step.As, attr.Kind)
		}
		var err error
		cls, err = b.roleClass(attr.Range, step.As)
		if err != nil {
			return nil, err
		}
	}
	label := strings.ToLower(attr.Name)
	if step.Transitive {
		label = "transitive(" + label + ")"
	}
	if parent.label != "" {
		label += " of " + parent.label
	}
	n := &Node{
		ID:         len(b.tree.Nodes),
		Class:      cls,
		Parent:     parent,
		Edge:       attr,
		Transitive: step.Transitive,
		IsValue:    attr.Kind != catalog.EVA,
		Sub:        sub != nil,
		Type:       Type1,
		key:        key,
		label:      label,
	}
	b.tree.Nodes = append(b.tree.Nodes, n)
	parent.Children = append(parent.Children, n)
	if sub == nil {
		b.byKey[key] = n
	}
	return n, nil
}

// pathSuffix reconstructs the qualification from a bound node back to its
// perspective, used to anchor derived-attribute expansions at the access
// point.
func pathSuffix(cur *Node) []ast.PathStep {
	var steps []ast.PathStep
	for n := cur; n != nil; n = n.Parent {
		if n.IsRoot() {
			steps = append(steps, ast.PathStep{Name: n.label})
			break
		}
		step := ast.PathStep{Name: n.Edge.Name, Transitive: n.Transitive}
		if n.Edge.Implicit {
			// Implicit inverses have no user-visible name; address them
			// through INVERSE(<declared eva>).
			step.Name = n.Edge.Inverse.Name
			step.Inverse = true
		}
		if n.Edge.Kind == catalog.EVA && n.Class != nil && n.Class != n.Edge.Range {
			step.As = n.Class.Name
		}
		steps = append(steps, step)
	}
	return steps
}

// roleClass validates an AS conversion target.
func (b *binder) roleClass(from *catalog.Class, as string) (*catalog.Class, error) {
	cl := b.cat.Class(as)
	if cl == nil {
		return nil, fmt.Errorf("unknown class %q in AS conversion", as)
	}
	if !catalog.SameHierarchy(from, cl) {
		return nil, fmt.Errorf("cannot convert %s to %s: different hierarchies", from.Name, cl.Name)
	}
	return cl, nil
}

// resolveStepAttr resolves one step name against a class, handling the
// INVERSE(<eva>) form: the named EVA must point at (an ancestor or
// descendant of) the class, and the step denotes its inverse.
func (b *binder) resolveStepAttr(cl *catalog.Class, step ast.PathStep) (*catalog.Attribute, error) {
	if !step.Inverse {
		return catalog.ResolveAttr(cl, step.Name), nil
	}
	var found *catalog.Attribute
	for _, c := range b.cat.Classes() {
		a := c.Attr(step.Name)
		if a == nil || a.Kind != catalog.EVA || a.Implicit {
			continue
		}
		if a.Owner != c {
			continue // inherited copies are found on the owner
		}
		if catalog.IsAncestor(a.Range, cl) || catalog.IsAncestor(cl, a.Range) {
			if found != nil && found != a {
				return nil, fmt.Errorf("INVERSE(%s) is ambiguous", step.Name)
			}
			found = a
		}
	}
	if found == nil {
		return nil, fmt.Errorf("no EVA %q ranges over %s", step.Name, cl.Name)
	}
	return found.Inverse, nil
}

func (b *binder) mark(n *Node, u usage) {
	if u == useTarget {
		n.usedTarget = true
	} else {
		n.usedSelect = true
	}
}

// ---------------------------------------------------------------------------
// Subqueries (aggregates, quantifiers)
// ---------------------------------------------------------------------------

// bindSubQuery binds an aggregate/quantifier body. inner is the
// parenthesized path (binding broken: fresh nodes); outer the trailing
// qualification resolved in the enclosing scope. It returns the subquery
// and, when inner denotes entities/values rather than a scalar attribute,
// the reference usable as the aggregated value.
func (b *binder) bindSubQuery(inner *ast.Path, outer []ast.PathStep, u usage) (*SubQuery, Expr, error) {
	sub := &subScope{id: b.nextSub}
	b.nextSub++

	// Resolve the anchor from the outer qualification.
	var anchor *Node
	var anchorClass *catalog.Class
	if len(outer) > 0 {
		e, err := b.bindPath(outer, u, nil)
		if err != nil {
			return nil, nil, err
		}
		er, ok := e.(*EntityRef)
		if !ok {
			return nil, nil, fmt.Errorf("aggregate outer qualification must denote entities")
		}
		anchor = er.Node
		anchorClass = er.Node.Class
	}

	steps := inner.Steps
	tail := steps[len(steps)-1]
	var chainRoot *Node
	var rest []ast.PathStep

	if !tail.Transitive && !tail.Inverse && b.cat.Class(tail.Name) != nil && anchor == nil {
		// Standalone scan: AVG(Salary of Instructor).
		cl := b.cat.Class(tail.Name)
		if tail.As != "" {
			var err error
			cl, err = b.roleClass(cl, tail.As)
			if err != nil {
				return nil, nil, err
			}
		}
		chainRoot = &Node{
			ID:    len(b.tree.Nodes),
			Class: cl,
			Sub:   true,
			Type:  Type1,
			key:   fmt.Sprintf("sub%d:scan:%s", sub.id, strings.ToLower(cl.Name)),
			label: strings.ToLower(cl.Name),
		}
		b.tree.Nodes = append(b.tree.Nodes, chainRoot)
		rest = steps[:len(steps)-1]
		anchorClass = cl
		anchor = chainRoot
	} else {
		// Anchored: resolve against the anchor, or complete against the
		// enclosing perspectives when no outer qualification was given.
		if anchor == nil {
			var err error
			var allSteps []ast.PathStep
			anchor, anchorClass, allSteps, err = b.findContext(steps, sub)
			if err != nil {
				return nil, nil, err
			}
			rest = allSteps
		} else {
			rest = steps
		}
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("aggregate over a bare perspective needs a qualification")
		}
		// The innermost remaining step hangs a fresh node off the anchor.
		i := len(rest) - 1
		step := rest[i]
		attr, err := b.resolveStepAttr(anchorClass, step)
		if err != nil {
			return nil, nil, err
		}
		if attr == nil {
			return nil, nil, fmt.Errorf("class %s has no attribute %q", anchorClass.Name, step.Name)
		}
		if attr.Kind == catalog.DVA && !attr.Options.MV {
			// Single-valued scalar directly on the anchor: empty chain.
			if i != 0 {
				return nil, nil, fmt.Errorf("cannot qualify through single-valued %s", attr)
			}
			b.mark(anchor, u)
			return &SubQuery{Value: &AttrRef{Node: anchor, Attr: attr}}, nil, nil
		}
		chainRoot, err = b.edgeNode(anchor, attr, step, sub)
		if err != nil {
			return nil, nil, err
		}
		rest = rest[:i]
	}

	// Walk any remaining steps inside the subquery scope.
	e, err := b.walkSteps(chainRoot, chainRoot.Class, rest, u, sub)
	if err != nil {
		return nil, nil, err
	}

	// Collect the fresh chain outermost-first by following parents.
	var chain []*Node
	refNode := chainRoot
	if er, ok := e.(*EntityRef); ok {
		refNode = er.Node
	} else if vr, ok := e.(*ValueRef); ok {
		refNode = vr.Node
	} else if ar, ok := e.(*AttrRef); ok {
		refNode = ar.Node
	}
	for n := refNode; n != nil && n.Sub; n = n.Parent {
		chain = append([]*Node{n}, chain...)
	}
	if len(chain) == 0 && chainRoot.Sub {
		chain = []*Node{chainRoot}
	}

	sq := &SubQuery{Chain: chain}
	switch x := e.(type) {
	case *AttrRef:
		sq.Value = x
		return sq, x, nil
	case *EntityRef, *ValueRef:
		// COUNT counts these directly; other aggregates over entity refs
		// are an error caught by the executor's type rules.
		return sq, e, nil
	}
	return nil, nil, fmt.Errorf("unsupported aggregate body")
}

// ---------------------------------------------------------------------------
// Labeling (§4.5)
// ---------------------------------------------------------------------------

func (b *binder) label() {
	var visit func(n *Node) (target, sel bool)
	visit = func(n *Node) (bool, bool) {
		target, sel := n.usedTarget, n.usedSelect
		for _, c := range n.Children {
			if c.Sub {
				continue
			}
			t, s := visit(c)
			target = target || t
			sel = sel || s
		}
		switch {
		case n.IsRoot():
			n.Type = Type1 // X1 is always TYPE 1
		case target && sel:
			n.Type = Type1
		case target:
			n.Type = Type3
		case sel:
			n.Type = Type2
		default:
			n.Type = Type1
		}
		return target, sel
	}
	for _, r := range b.tree.Roots {
		visit(r)
	}
}
