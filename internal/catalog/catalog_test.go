package catalog

import (
	"strings"
	"testing"

	"sim/internal/parser"
	"sim/internal/university"
)

func buildSchema(t *testing.T, ddl string) *Catalog {
	t.Helper()
	sch, err := parser.ParseSchema(ddl)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cat, err := Build(sch)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return cat
}

func buildErr(t *testing.T, ddl string) error {
	t.Helper()
	sch, err := parser.ParseSchema(ddl)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Build(sch)
	if err == nil {
		t.Fatalf("Build succeeded, want error\n%s", ddl)
	}
	return err
}

func university_(t *testing.T) *Catalog { return buildSchema(t, university.DDL) }

func TestUniversityClasses(t *testing.T) {
	cat := university_(t)
	for _, name := range []string{"person", "student", "instructor", "teaching-assistant", "course", "department"} {
		if cat.Class(name) == nil {
			t.Errorf("class %q missing", name)
		}
	}
	if got := len(cat.Classes()); got != 6 {
		t.Errorf("got %d classes, want 6", got)
	}
}

func TestUniversityDAG(t *testing.T) {
	cat := university_(t)
	person := cat.Class("person")
	student := cat.Class("student")
	instructor := cat.Class("instructor")
	ta := cat.Class("teaching-assistant")

	if !person.IsBase() || student.IsBase() || ta.IsBase() {
		t.Error("base/subclass classification wrong")
	}
	if student.Base != person || ta.Base != person {
		t.Error("base ancestor tracking wrong")
	}
	if len(ta.Supers) != 2 {
		t.Fatalf("teaching-assistant has %d supers, want 2", len(ta.Supers))
	}
	if !IsAncestor(person, ta) || !IsAncestor(student, ta) || !IsAncestor(instructor, ta) {
		t.Error("IsAncestor of teaching-assistant wrong")
	}
	if IsAncestor(ta, person) {
		t.Error("IsAncestor inverted")
	}
	// Diamond dedup: Ancestors(ta) = {student, instructor, person}.
	anc := Ancestors(ta)
	if len(anc) != 3 {
		t.Errorf("Ancestors(ta) = %v, want 3 classes", anc)
	}
	desc := Descendants(person)
	if len(desc) != 3 {
		t.Errorf("Descendants(person) = %v, want 3 classes", desc)
	}
}

func TestUniversityInheritance(t *testing.T) {
	cat := university_(t)
	student := cat.Class("student")
	ta := cat.Class("teaching-assistant")

	// Inherited attribute resolution.
	if a := ResolveAttr(student, "name"); a == nil || a.Owner != cat.Class("person") {
		t.Error("student does not inherit name from person")
	}
	if a := ResolveAttr(ta, "salary"); a == nil || a.Owner != cat.Class("instructor") {
		t.Error("teaching-assistant does not inherit salary")
	}
	if a := ResolveAttr(ta, "courses-enrolled"); a == nil {
		t.Error("teaching-assistant does not inherit courses-enrolled")
	}
	// Case-insensitive.
	if ResolveAttr(student, "NAME") == nil {
		t.Error("attribute lookup is case-sensitive")
	}
	// AllAttrs dedups the diamond: person attrs appear once.
	count := 0
	for _, a := range AllAttrs(ta) {
		if strings.EqualFold(a.Name, "name") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("name appears %d times in AllAttrs(ta), want 1", count)
	}
}

func TestUniversityInversePairs(t *testing.T) {
	cat := university_(t)
	advisor := ResolveAttr(cat.Class("student"), "advisor")
	advisees := ResolveAttr(cat.Class("instructor"), "advisees")
	if advisor == nil || advisees == nil {
		t.Fatal("advisor/advisees missing")
	}
	if advisor.Inverse != advisees || advisees.Inverse != advisor {
		t.Error("advisor/advisees not paired")
	}
	// many:1 with max 10 advisees.
	if advisor.Options.MV {
		t.Error("advisor should be single-valued")
	}
	if !advisees.Options.MV || advisees.Options.Max != 10 {
		t.Errorf("advisees options wrong: %+v", advisees.Options)
	}

	// Self-inverse spouse (1:1).
	spouse := ResolveAttr(cat.Class("person"), "spouse")
	if spouse == nil || spouse.Inverse != spouse {
		t.Error("spouse is not its own inverse")
	}

	// Reflexive pair on one class.
	prereq := ResolveAttr(cat.Class("course"), "prerequisites")
	prereqOf := ResolveAttr(cat.Class("course"), "prerequisite-of")
	if prereq.Inverse != prereqOf || prereqOf.Inverse != prereq {
		t.Error("prerequisites/prerequisite-of not paired")
	}

	// Implicit inverse for courses-offered (no inverse declared).
	offered := ResolveAttr(cat.Class("department"), "courses-offered")
	if offered.Inverse == nil || !offered.Inverse.Implicit {
		t.Error("courses-offered has no implicit inverse")
	}
	if offered.Inverse.Range != cat.Class("department") {
		t.Error("implicit inverse range wrong")
	}
	// Implicit inverses are hidden from name resolution.
	if ResolveAttr(cat.Class("course"), offered.Inverse.Name) != nil {
		t.Error("implicit inverse resolvable by name")
	}
}

func TestUniversityTypesAndOptions(t *testing.T) {
	cat := university_(t)
	deg := cat.Type("degree")
	if deg == nil || deg.Kind != TSymbolic || len(deg.Labels) != 4 {
		t.Fatalf("degree type wrong: %+v", deg)
	}
	v, err := deg.Symbolic("phd")
	if err != nil || v.Str() != "PHD" || v.Ordinal() != 3 {
		t.Errorf("Symbolic(phd) = %v, %v", v, err)
	}
	if _, err := deg.Symbolic("BA"); err == nil {
		t.Error("Symbolic(BA) should fail")
	}

	idnum := cat.Type("id-number")
	if idnum == nil || idnum.Kind != TInt || len(idnum.IntRanges) != 2 {
		t.Fatalf("id-number type wrong: %+v", idnum)
	}

	ssn := ResolveAttr(cat.Class("person"), "soc-sec-no")
	if !ssn.Options.Unique || !ssn.Options.Required {
		t.Errorf("soc-sec-no options wrong: %+v", ssn.Options)
	}
	taught := ResolveAttr(cat.Class("instructor"), "courses-taught")
	if !taught.Options.MV || taught.Options.Max != 3 || !taught.Options.Distinct {
		t.Errorf("courses-taught options wrong: %+v", taught.Options)
	}
}

func TestUniversitySubroles(t *testing.T) {
	cat := university_(t)
	prof := ResolveAttr(cat.Class("person"), "profession")
	if prof == nil || prof.Kind != Subrole || !prof.Options.MV {
		t.Fatalf("profession subrole wrong: %+v", prof)
	}
	if len(prof.SubroleOf) != 2 {
		t.Errorf("profession enumerates %d classes, want 2", len(prof.SubroleOf))
	}
}

func TestUniversityVerifies(t *testing.T) {
	cat := university_(t)
	vs := cat.Verifies()
	if len(vs) != 2 {
		t.Fatalf("got %d verifies, want 2", len(vs))
	}
	if vs[0].Name != "v1" || vs[0].Class != cat.Class("student") {
		t.Errorf("v1 wrong: %+v", vs[0])
	}
	if vs[1].ElseMsg != "instructor makes too much money" {
		t.Errorf("v2 message wrong: %q", vs[1].ElseMsg)
	}
	if len(cat.Class("student").Verifies) != 1 {
		t.Error("verify not attached to class")
	}
}

func TestErrUnknownSuperclass(t *testing.T) {
	err := buildErr(t, `Subclass S of Nowhere ( x: integer );`)
	if !strings.Contains(err.Error(), "Nowhere") {
		t.Errorf("error %v does not name the missing class", err)
	}
}

func TestErrTwoBaseAncestors(t *testing.T) {
	err := buildErr(t, `
Class A ( ra: subrole (C) );
Class B ( rb: subrole (C) );
Subclass C of A and B ( x: integer );`)
	if !strings.Contains(err.Error(), "base") {
		t.Errorf("error %v does not mention base classes", err)
	}
}

func TestErrDuplicateClass(t *testing.T) {
	buildErr(t, `Class A ( x: integer ); Class a ( y: integer );`)
}

func TestErrDuplicateAttr(t *testing.T) {
	buildErr(t, `Class A ( x: integer; X: string );`)
}

func TestErrShadowInheritedAttr(t *testing.T) {
	err := buildErr(t, `
Class A ( x: integer; r: subrole (B) );
Subclass B of A ( x: string );`)
	if !strings.Contains(err.Error(), "inherited") {
		t.Errorf("error %v does not mention inheritance", err)
	}
}

func TestErrMissingSubrole(t *testing.T) {
	err := buildErr(t, `
Class A ( x: integer );
Subclass B of A ( y: integer );`)
	if !strings.Contains(err.Error(), "subrole") {
		t.Errorf("error %v does not mention subrole", err)
	}
}

func TestErrSubroleNamesNonSubclass(t *testing.T) {
	buildErr(t, `
Class A ( r: subrole (B) );
Class B ( x: integer );`)
}

func TestErrOptionsSanity(t *testing.T) {
	buildErr(t, `Class A ( x: integer mv (distinct) unique );`) // UNIQUE on MV
	buildErr(t, `Class A ( x: integer distinct );`)             // DISTINCT without MV
	buildErr(t, `Class A ( x: a-missing-type );`)
}

func TestErrInverseMismatch(t *testing.T) {
	// B.back declares inverse "other", not "fwd".
	err := buildErr(t, `
Class A ( fwd: B inverse is back );
Class B ( back: A inverse is other; other: A inverse is back );`)
	_ = err
}

func TestErrDVACannotHaveInverse(t *testing.T) {
	buildErr(t, `Class A ( x: integer inverse is y );`)
}

func TestExtendAcrossBatches(t *testing.T) {
	cat := buildSchema(t, `Class A ( x: integer );`)
	sch, err := parser.ParseSchema(`Class B ( a-ref: A inverse is b-refs );`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Extend(sch); err != nil {
		t.Fatalf("extend: %v", err)
	}
	aRef := ResolveAttr(cat.Class("b"), "a-ref")
	if aRef == nil || aRef.Range != cat.Class("a") {
		t.Error("cross-batch EVA range not resolved")
	}
	if got := ResolveAttr(cat.Class("a"), "b-refs"); got == nil || got.Inverse != aRef {
		t.Error("cross-batch named inverse not created")
	}
}

func TestCoerce(t *testing.T) {
	cat := university_(t)
	idnum := cat.Type("id-number")
	if _, err := idnum.Coerce(intVal(1500)); err != nil {
		t.Errorf("1500 should be a valid id-number: %v", err)
	}
	if _, err := idnum.Coerce(intVal(40000)); err == nil {
		t.Error("40000 should be outside id-number ranges")
	}
	if _, err := idnum.Coerce(intVal(60001)); err != nil {
		t.Error("60001 should be inside the second range")
	}
}
