package catalog

import (
	"testing"

	"sim/internal/value"
)

func intVal(n int64) value.Value   { return value.NewInt(n) }
func strVal(s string) value.Value  { return value.NewString(s) }
func numVal(f float64) value.Value { return value.NewNumber(f) }
func boolVal(b bool) value.Value   { return value.NewBool(b) }

func TestCoerceString(t *testing.T) {
	dt := &DataType{Kind: TString, StrLen: 5}
	if _, err := dt.Coerce(strVal("abcde")); err != nil {
		t.Errorf("5-char string rejected: %v", err)
	}
	if _, err := dt.Coerce(strVal("abcdef")); err == nil {
		t.Error("6-char string accepted by string[5]")
	}
	if _, err := dt.Coerce(intVal(3)); err == nil {
		t.Error("integer accepted by string type")
	}
}

func TestCoerceNumberWidening(t *testing.T) {
	dt := &DataType{Kind: TNumber, Precision: 9, Scale: 2}
	v, err := dt.Coerce(intVal(42))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != value.KindNumber || v.Number() != 42 {
		t.Errorf("int not widened: %v", v)
	}
	if _, err := dt.Coerce(strVal("x")); err == nil {
		t.Error("string accepted by number type")
	}
}

func TestCoerceDate(t *testing.T) {
	dt := &DataType{Kind: TDate}
	v, err := dt.Coerce(strVal("1988-06-01"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != value.KindDate {
		t.Errorf("date parse gave %v", v.Kind())
	}
	if v.String() != "1988-06-01" {
		t.Errorf("round trip: %s", v)
	}
	if _, err := dt.Coerce(strVal("not-a-date")); err == nil {
		t.Error("bad date accepted")
	}
}

func TestCoerceBool(t *testing.T) {
	dt := &DataType{Kind: TBool}
	if _, err := dt.Coerce(boolVal(true)); err != nil {
		t.Error(err)
	}
	if _, err := dt.Coerce(intVal(1)); err == nil {
		t.Error("integer accepted by boolean type")
	}
}

func TestCoerceNullAlwaysOK(t *testing.T) {
	for _, dt := range []*DataType{
		{Kind: TInt}, {Kind: TNumber}, {Kind: TString}, {Kind: TDate}, {Kind: TBool},
	} {
		v, err := dt.Coerce(value.Null)
		if err != nil || !v.IsNull() {
			t.Errorf("%v: NULL coercion failed: %v %v", dt.Kind, v, err)
		}
	}
}

func TestCoerceIntStaysInt(t *testing.T) {
	dt := &DataType{Kind: TInt}
	v, err := dt.Coerce(intVal(7))
	if err != nil || v.Kind() != value.KindInt {
		t.Errorf("got %v %v", v, err)
	}
	if _, err := dt.Coerce(numVal(7.5)); err == nil {
		t.Error("float accepted by integer type")
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct {
		dt   *DataType
		want string
	}{
		{&DataType{Kind: TInt, IntRanges: [][2]int64{{1, 20}}}, "integer(1..20)"},
		{&DataType{Kind: TNumber, Precision: 9, Scale: 2}, "number[9,2]"},
		{&DataType{Kind: TString, StrLen: 30}, "string[30]"},
		{&DataType{Kind: TDate}, "date"},
		{&DataType{Kind: TSymbolic, Labels: []string{"A", "B"}}, "symbolic(A,B)"},
		{&DataType{Kind: TInt, Name: "id-number"}, "id-number"},
	}
	for _, c := range cases {
		if got := c.dt.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
