// Package catalog implements SIM's Directory Manager (Figure 1): the
// in-memory schema catalog describing classes, the generalization DAG,
// attributes (data-valued, entity-valued and subrole), user types, and
// class integrity assertions.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"sim/internal/ast"
	"sim/internal/value"
)

// Catalog is a validated SIM schema.
type Catalog struct {
	classes   map[string]*Class // keyed by lower-case name
	classList []*Class          // in declaration order
	types     map[string]*DataType
	verifies  []*Verify
	nextAttr  int
	pending   map[pendingKey]string // declared inverse names awaiting pairing
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		classes: make(map[string]*Class),
		types:   make(map[string]*DataType),
	}
}

// Class is a base class or subclass (§3.1).
type Class struct {
	ID     int
	Name   string   // as declared
	Supers []*Class // immediate superclasses; empty for a base class
	Subs   []*Class // immediate subclasses
	Base   *Class   // the unique base-class ancestor (itself for a base class)
	Attrs  []*Attribute
	byName map[string]*Attribute // immediate attributes, lower-case

	Verifies []*Verify // assertions whose perspective is this class
}

// IsBase reports whether the class is a base class.
func (c *Class) IsBase() bool { return len(c.Supers) == 0 }

func (c *Class) String() string { return c.Name }

// Attr returns the immediate attribute with the given name, or nil.
func (c *Class) Attr(name string) *Attribute { return c.byName[strings.ToLower(name)] }

// AttrKind distinguishes the three attribute varieties.
type AttrKind int

// Attribute kinds.
const (
	DVA     AttrKind = iota // data-valued
	EVA                     // entity-valued
	Subrole                 // system-maintained role enumeration
	Derived                 // computed from other attributes (§6)
)

func (k AttrKind) String() string {
	return [...]string{"DVA", "EVA", "subrole", "derived"}[k]
}

// Options are the attribute options of §3.2.1.
type Options struct {
	Required bool
	Unique   bool
	MV       bool
	Distinct bool
	Max      int // 0 = unbounded
}

// Attribute is one immediate attribute of a class.
type Attribute struct {
	ID      int
	Name    string
	Owner   *Class
	Kind    AttrKind
	Type    *DataType  // for DVA; nil otherwise
	Range   *Class     // for EVA; nil otherwise
	Inverse *Attribute // for EVA; always non-nil after Finalize
	Options Options

	// Implicit marks a system-generated inverse that has no user-visible
	// name; it is reachable only through INVERSE(<eva>) in DML.
	Implicit bool

	// SubroleOf lists the classes enumerated by a subrole attribute.
	SubroleOf []*Class

	// Expr is the defining expression of a derived attribute, kept in AST
	// form and expanded by the query binder at each reference (qualified
	// macro semantics).
	Expr ast.Expr
}

func (a *Attribute) String() string { return a.Owner.Name + "." + a.Name }

// Verify is a class integrity assertion (§3.3). The assertion expression is
// kept in AST form; the integrity module binds it against the catalog.
type Verify struct {
	Name    string
	Class   *Class
	Assert  ast.Expr
	ElseMsg string
	// Triggers lists the attribute names (lower-case) whose mutation can
	// violate the assertion; filled in by the integrity analyzer.
	Triggers map[string]bool
}

// TypeKind enumerates data types.
type TypeKind int

// Data type kinds.
const (
	TInt TypeKind = iota
	TNumber
	TString
	TDate
	TBool
	TSymbolic
)

func (k TypeKind) String() string {
	return [...]string{"integer", "number", "string", "date", "boolean", "symbolic"}[k]
}

// DataType is a resolved attribute type with its constraints.
type DataType struct {
	Kind      TypeKind
	Name      string // user-type name; empty for anonymous types
	IntRanges [][2]int64
	StrLen    int // 0 = unbounded
	Precision int
	Scale     int
	Labels    []string
	labelOrd  map[string]int
}

func (t *DataType) String() string {
	if t.Name != "" {
		return t.Name
	}
	switch t.Kind {
	case TInt:
		if len(t.IntRanges) > 0 {
			parts := make([]string, len(t.IntRanges))
			for i, r := range t.IntRanges {
				parts[i] = fmt.Sprintf("%d..%d", r[0], r[1])
			}
			return "integer(" + strings.Join(parts, ",") + ")"
		}
		return "integer"
	case TNumber:
		if t.Precision > 0 {
			return fmt.Sprintf("number[%d,%d]", t.Precision, t.Scale)
		}
		return "number"
	case TString:
		if t.StrLen > 0 {
			return fmt.Sprintf("string[%d]", t.StrLen)
		}
		return "string"
	case TSymbolic:
		return "symbolic(" + strings.Join(t.Labels, ",") + ")"
	}
	return t.Kind.String()
}

// Symbolic returns the symbolic value for label, or an error when the label
// is not a member of the type.
func (t *DataType) Symbolic(label string) (value.Value, error) {
	if t.Kind != TSymbolic {
		return value.Null, fmt.Errorf("type %s is not symbolic", t)
	}
	ord, ok := t.labelOrd[strings.ToLower(label)]
	if !ok {
		return value.Null, fmt.Errorf("%q is not a value of %s", label, t)
	}
	return value.NewSymbolic(t.Labels[ord], ord), nil
}

// Coerce converts v to this type, applying integer→number widening, string
// → symbolic lookup, string → date parsing, and validating constraints.
// NULL coerces to NULL for any type.
func (t *DataType) Coerce(v value.Value) (value.Value, error) {
	if v.IsNull() {
		return value.Null, nil
	}
	switch t.Kind {
	case TInt:
		if v.Kind() != value.KindInt {
			return value.Null, fmt.Errorf("cannot assign %s to %s", v.Kind(), t)
		}
		if err := t.checkIntRange(v.Int()); err != nil {
			return value.Null, err
		}
		return v, nil
	case TNumber:
		switch v.Kind() {
		case value.KindInt:
			v = value.NewNumber(float64(v.Int()))
		case value.KindNumber:
		default:
			return value.Null, fmt.Errorf("cannot assign %s to %s", v.Kind(), t)
		}
		return v, nil
	case TString:
		if v.Kind() != value.KindString {
			return value.Null, fmt.Errorf("cannot assign %s to %s", v.Kind(), t)
		}
		if t.StrLen > 0 && len(v.Str()) > t.StrLen {
			return value.Null, fmt.Errorf("string of length %d exceeds %s", len(v.Str()), t)
		}
		return v, nil
	case TDate:
		switch v.Kind() {
		case value.KindDate:
			return v, nil
		case value.KindString:
			return value.ParseDate(v.Str())
		}
		return value.Null, fmt.Errorf("cannot assign %s to %s", v.Kind(), t)
	case TBool:
		if v.Kind() != value.KindBool {
			return value.Null, fmt.Errorf("cannot assign %s to %s", v.Kind(), t)
		}
		return v, nil
	case TSymbolic:
		switch v.Kind() {
		case value.KindSymbolic:
			// Re-resolve by label so symbolics from other types normalize.
			return t.Symbolic(v.Str())
		case value.KindString:
			return t.Symbolic(v.Str())
		}
		return value.Null, fmt.Errorf("cannot assign %s to %s", v.Kind(), t)
	}
	return value.Null, fmt.Errorf("unknown type kind %v", t.Kind)
}

func (t *DataType) checkIntRange(n int64) error {
	if len(t.IntRanges) == 0 {
		return nil
	}
	for _, r := range t.IntRanges {
		if n >= r[0] && n <= r[1] {
			return nil
		}
	}
	return fmt.Errorf("%d is outside the permitted ranges of %s", n, t)
}

// ---------------------------------------------------------------------------
// Lookups
// ---------------------------------------------------------------------------

// Class returns the class with the given (case-insensitive) name, or nil.
func (c *Catalog) Class(name string) *Class { return c.classes[strings.ToLower(name)] }

// MustClass is Class but returns an error for unknown names.
func (c *Catalog) MustClass(name string) (*Class, error) {
	cl := c.Class(name)
	if cl == nil {
		return nil, fmt.Errorf("unknown class %q", name)
	}
	return cl, nil
}

// Classes returns all classes in declaration order.
func (c *Catalog) Classes() []*Class { return c.classList }

// Type returns the user type with the given name, or nil.
func (c *Catalog) Type(name string) *DataType { return c.types[strings.ToLower(name)] }

// Verifies returns all integrity assertions in declaration order.
func (c *Catalog) Verifies() []*Verify { return c.verifies }

// Ancestors returns every proper ancestor of cl in the generalization DAG,
// deduplicated, nearest first (breadth-first).
func Ancestors(cl *Class) []*Class {
	var out []*Class
	seen := map[*Class]bool{cl: true}
	queue := append([]*Class(nil), cl.Supers...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		queue = append(queue, n.Supers...)
	}
	return out
}

// Descendants returns every proper descendant of cl, breadth-first.
func Descendants(cl *Class) []*Class {
	var out []*Class
	seen := map[*Class]bool{cl: true}
	queue := append([]*Class(nil), cl.Subs...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		queue = append(queue, n.Subs...)
	}
	return out
}

// IsAncestor reports whether anc is cl or a proper ancestor of cl.
func IsAncestor(anc, cl *Class) bool {
	if anc == cl {
		return true
	}
	for _, a := range Ancestors(cl) {
		if a == anc {
			return true
		}
	}
	return false
}

// SameHierarchy reports whether two classes share a base class, i.e. role
// conversion between them can be meaningful.
func SameHierarchy(a, b *Class) bool { return a.Base == b.Base }

// ResolveAttr finds the attribute named name on cl, searching immediate
// attributes first and then every ancestor (§3.2: "an inherited attribute
// of a subclass can be used in any context where an immediate attribute is
// allowed"). Implicit inverses are not found by name.
func ResolveAttr(cl *Class, name string) *Attribute {
	if a := cl.Attr(name); a != nil && !a.Implicit {
		return a
	}
	for _, anc := range Ancestors(cl) {
		if a := anc.Attr(name); a != nil && !a.Implicit {
			return a
		}
	}
	return nil
}

// AllAttrs returns the immediate and inherited attributes of cl, immediate
// first, then ancestors nearest-first, skipping implicit inverses and
// deduplicating diamonds by attribute identity.
func AllAttrs(cl *Class) []*Attribute {
	var out []*Attribute
	seen := make(map[*Attribute]bool)
	add := func(c *Class) {
		for _, a := range c.Attrs {
			if a.Implicit || seen[a] {
				continue
			}
			seen[a] = true
			out = append(out, a)
		}
	}
	add(cl)
	for _, anc := range Ancestors(cl) {
		add(anc)
	}
	return out
}

// HierarchyClasses returns every class sharing base's hierarchy, topological
// (supers before subs), stable by class ID.
func HierarchyClasses(base *Class) []*Class {
	all := append([]*Class{base}, Descendants(base)...)
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}
