package catalog

import (
	"fmt"
	"strings"

	"sim/internal/ast"
)

// Build validates an AST schema and constructs the catalog. It implements
// the structural rules of §3: the interclass graph must be acyclic (followed
// here by construction, since a superclass must be declared before its
// subclasses), the ancestor set of any class contains at most one base
// class, inverses are paired or auto-created, and every class with
// subclasses carries a subrole attribute enumerating them.
func Build(schema *ast.Schema) (*Catalog, error) {
	c := New()
	if err := c.Extend(schema); err != nil {
		return nil, err
	}
	return c, nil
}

// Extend adds the declarations of schema to the catalog, then re-validates.
// It allows a database to grow its schema over multiple DDL texts.
func (c *Catalog) Extend(schema *ast.Schema) error {
	// Pass 1: user types and class shells.
	var classDecls []*ast.ClassDecl
	var verifyDecls []*ast.VerifyDecl
	for _, d := range schema.Decls {
		switch d := d.(type) {
		case *ast.TypeDecl:
			if err := c.addType(d); err != nil {
				return err
			}
		case *ast.ClassDecl:
			if err := c.addClassShell(d); err != nil {
				return err
			}
			classDecls = append(classDecls, d)
		case *ast.VerifyDecl:
			verifyDecls = append(verifyDecls, d)
		}
	}
	// Pass 2: attributes (EVA ranges may reference any class declared in
	// this or an earlier batch, including forward references within the
	// batch).
	for _, d := range classDecls {
		if err := c.addAttrs(d); err != nil {
			return err
		}
	}
	// Pass 3: inverse pairing and auto-creation.
	for _, d := range classDecls {
		cl := c.Class(d.Name)
		for _, a := range cl.Attrs {
			if a.Kind == EVA && a.Inverse == nil {
				if err := c.pairInverse(cl, a, d); err != nil {
					return err
				}
			}
		}
	}
	// Pass 4: subrole validation. §3.2's rule — every class with
	// subclasses declares a subrole covering them — is enforced strictly
	// for classes declared in this batch. A class from an earlier batch
	// that gains subclasses cannot amend its declaration, so it receives a
	// system-maintained implicit subrole for the additions (readable
	// through the explicit subroles it already has, or not at all).
	newHere := make(map[*Class]bool)
	for _, d := range classDecls {
		newHere[c.Class(d.Name)] = true
	}
	for _, cl := range c.classList {
		if err := c.checkSubroles(cl, newHere[cl]); err != nil {
			return err
		}
	}
	// Pass 5: verify declarations (expression binding is deferred to the
	// integrity analyzer, which needs the query binder).
	for _, d := range verifyDecls {
		cl := c.Class(d.Class)
		if cl == nil {
			return fmt.Errorf("verify %s: unknown class %q", d.Name, d.Class)
		}
		v := &Verify{Name: d.Name, Class: cl, Assert: d.Assert, ElseMsg: d.ElseMsg}
		cl.Verifies = append(cl.Verifies, v)
		c.verifies = append(c.verifies, v)
	}
	return nil
}

func (c *Catalog) addType(d *ast.TypeDecl) error {
	key := strings.ToLower(d.Name)
	if _, dup := c.types[key]; dup {
		return fmt.Errorf("type %q declared twice", d.Name)
	}
	if _, dup := c.classes[key]; dup {
		return fmt.Errorf("type %q collides with a class name", d.Name)
	}
	t, err := c.resolveType(d.Def)
	if err != nil {
		return fmt.Errorf("type %s: %w", d.Name, err)
	}
	named := *t
	named.Name = d.Name
	c.types[key] = &named
	return nil
}

func (c *Catalog) addClassShell(d *ast.ClassDecl) error {
	key := strings.ToLower(d.Name)
	if _, dup := c.classes[key]; dup {
		return fmt.Errorf("class %q declared twice", d.Name)
	}
	if _, dup := c.types[key]; dup {
		return fmt.Errorf("class %q collides with a type name", d.Name)
	}
	cl := &Class{
		ID:     len(c.classList),
		Name:   d.Name,
		byName: make(map[string]*Attribute),
	}
	if len(d.Supers) == 0 {
		cl.Base = cl
	} else {
		seen := map[string]bool{}
		for _, sn := range d.Supers {
			if seen[strings.ToLower(sn)] {
				return fmt.Errorf("class %s: duplicate superclass %q", d.Name, sn)
			}
			seen[strings.ToLower(sn)] = true
			sup := c.Class(sn)
			if sup == nil {
				return fmt.Errorf("class %s: superclass %q is not declared (superclasses must precede subclasses)", d.Name, sn)
			}
			cl.Supers = append(cl.Supers, sup)
		}
		// §3.1: the ancestor set must contain at most one base class.
		base := cl.Supers[0].Base
		for _, sup := range cl.Supers[1:] {
			if sup.Base != base {
				return fmt.Errorf("class %s: ancestors span two base classes (%s and %s); a class may have at most one base-class ancestor", d.Name, base.Name, sup.Base.Name)
			}
		}
		cl.Base = base
		for _, sup := range cl.Supers {
			sup.Subs = append(sup.Subs, cl)
		}
	}
	c.classes[key] = cl
	c.classList = append(c.classList, cl)
	return nil
}

func (c *Catalog) addAttrs(d *ast.ClassDecl) error {
	cl := c.Class(d.Name)
	for i := range d.Attrs {
		ad := &d.Attrs[i]
		if err := c.addAttr(cl, ad); err != nil {
			return fmt.Errorf("class %s: %w", cl.Name, err)
		}
	}
	return nil
}

func (c *Catalog) addAttr(cl *Class, ad *ast.AttrDecl) error {
	key := strings.ToLower(ad.Name)
	if _, dup := cl.byName[key]; dup {
		return fmt.Errorf("attribute %q declared twice", ad.Name)
	}
	// Inherited-name shadowing is disallowed: the attribute namespace of a
	// class unifies immediate and inherited names (§3.2).
	for _, anc := range Ancestors(cl) {
		if a := anc.Attr(ad.Name); a != nil && !a.Implicit {
			return fmt.Errorf("attribute %q already inherited from %s", ad.Name, anc.Name)
		}
	}
	a := &Attribute{
		ID:    c.nextAttr,
		Name:  ad.Name,
		Owner: cl,
		Options: Options{
			Required: ad.Options.Required,
			Unique:   ad.Options.Unique,
			MV:       ad.Options.MV,
			Distinct: ad.Options.Distinct,
			Max:      ad.Options.Max,
		},
	}
	c.nextAttr++

	if ad.Derived != nil {
		a.Kind = Derived
		a.Expr = ad.Derived
		if ad.Options.Required || ad.Options.Unique || ad.Options.MV {
			return fmt.Errorf("attribute %s: options do not apply to derived attributes", ad.Name)
		}
		cl.byName[key] = a
		cl.Attrs = append(cl.Attrs, a)
		return nil
	}

	switch t := ad.Type.(type) {
	case *ast.SubroleType:
		a.Kind = Subrole
		for _, name := range t.Classes {
			sub := c.Class(name)
			if sub == nil {
				return fmt.Errorf("attribute %s: subrole names unknown class %q", ad.Name, name)
			}
			a.SubroleOf = append(a.SubroleOf, sub)
		}
		if ad.Inverse != "" {
			return fmt.Errorf("attribute %s: a subrole cannot declare an inverse", ad.Name)
		}
	case *ast.NamedType:
		// A named type is either a user type (DVA) or a class (EVA).
		if ut := c.Type(t.Name); ut != nil {
			a.Kind = DVA
			a.Type = ut
		} else if rng := c.Class(t.Name); rng != nil {
			a.Kind = EVA
			a.Range = rng
		} else {
			return fmt.Errorf("attribute %s: %q is neither a type nor a class", ad.Name, t.Name)
		}
		if a.Kind == DVA && ad.Inverse != "" {
			return fmt.Errorf("attribute %s: a data-valued attribute cannot declare an inverse", ad.Name)
		}
	default:
		dt, err := c.resolveType(ad.Type)
		if err != nil {
			return fmt.Errorf("attribute %s: %w", ad.Name, err)
		}
		a.Kind = DVA
		a.Type = dt
		if ad.Inverse != "" {
			return fmt.Errorf("attribute %s: a data-valued attribute cannot declare an inverse", ad.Name)
		}
	}

	// Option sanity (§3.2.1).
	if !a.Options.MV {
		if a.Options.Distinct {
			return fmt.Errorf("attribute %s: DISTINCT requires MV", ad.Name)
		}
		if a.Options.Max != 0 {
			return fmt.Errorf("attribute %s: MAX requires MV", ad.Name)
		}
	}
	if a.Options.Unique {
		if a.Kind != DVA {
			return fmt.Errorf("attribute %s: UNIQUE applies only to data-valued attributes", ad.Name)
		}
		if a.Options.MV {
			return fmt.Errorf("attribute %s: UNIQUE applies only to single-valued attributes", ad.Name)
		}
	}
	if a.Kind == Subrole && a.Options.Required {
		return fmt.Errorf("attribute %s: a subrole is system-maintained and cannot be REQUIRED", ad.Name)
	}
	// EVAs are implicitly distinct: an entity cannot be related to the
	// same entity twice through one EVA instance set.
	if a.Kind == EVA && a.Options.MV {
		a.Options.Distinct = true
	}

	// Stash the declared inverse name for pass 3 in a side map.
	if ad.Inverse != "" {
		c.pendingInverse(cl, a, ad.Inverse)
	}

	cl.byName[key] = a
	cl.Attrs = append(cl.Attrs, a)
	return nil
}

// pendingKey identifies an attribute whose declared inverse name awaits
// pairing in pass 3.
type pendingKey struct {
	class *Class
	attr  *Attribute
}

func (c *Catalog) pendingInverse(cl *Class, a *Attribute, name string) {
	if c.pending == nil {
		c.pending = make(map[pendingKey]string)
	}
	c.pending[pendingKey{cl, a}] = name
}

func (c *Catalog) declaredInverse(cl *Class, a *Attribute) string {
	return c.pending[pendingKey{cl, a}]
}

// pairInverse resolves the inverse of EVA a on class cl (§3.2: "SIM
// automatically maintains the inverse of every declared EVA").
func (c *Catalog) pairInverse(cl *Class, a *Attribute, d *ast.ClassDecl) error {
	invName := c.declaredInverse(cl, a)

	// Self-inverse: spouse: person inverse is spouse.
	if invName != "" && strings.EqualFold(invName, a.Name) && a.Range == cl {
		a.Inverse = a
		return nil
	}

	if invName != "" {
		// Look for the named attribute on the range class.
		if inv := ResolveAttr(a.Range, invName); inv != nil {
			if inv.Kind != EVA {
				return fmt.Errorf("class %s: inverse of %s names %s, which is not entity-valued", cl.Name, a.Name, inv)
			}
			if !IsAncestor(inv.Range, cl) && !IsAncestor(cl, inv.Range) {
				return fmt.Errorf("class %s: inverse pair %s / %s have mismatched ranges (%s vs %s)", cl.Name, a.Name, inv.Name, inv.Range.Name, cl.Name)
			}
			if declared := c.declaredInverse(inv.Owner, inv); declared != "" && !strings.EqualFold(declared, a.Name) {
				return fmt.Errorf("class %s: %s declares inverse %s, but %s declares inverse %s", cl.Name, a.Name, invName, inv, declared)
			}
			if inv.Inverse != nil && inv.Inverse != a {
				return fmt.Errorf("class %s: %s is already the inverse of %s", cl.Name, inv, inv.Inverse)
			}
			a.Inverse = inv
			inv.Inverse = a
			return nil
		}
		// Auto-create a user-named inverse on the range class.
		inv := &Attribute{
			ID:      c.nextAttr,
			Name:    invName,
			Owner:   a.Range,
			Kind:    EVA,
			Range:   cl,
			Inverse: a,
			Options: Options{MV: true, Distinct: true},
		}
		c.nextAttr++
		if _, dup := a.Range.byName[strings.ToLower(invName)]; dup {
			return fmt.Errorf("class %s: cannot create inverse %q on %s: name already in use", cl.Name, invName, a.Range.Name)
		}
		a.Range.byName[strings.ToLower(invName)] = inv
		a.Range.Attrs = append(a.Range.Attrs, inv)
		a.Inverse = inv
		return nil
	}

	// No inverse declared anywhere: create an implicit, unnamed inverse,
	// reachable only through INVERSE(<eva>).
	inv := &Attribute{
		ID:       c.nextAttr,
		Name:     "~inverse-of-" + strings.ToLower(cl.Name) + "-" + strings.ToLower(a.Name),
		Owner:    a.Range,
		Kind:     EVA,
		Range:    cl,
		Inverse:  a,
		Options:  Options{MV: true, Distinct: true},
		Implicit: true,
	}
	c.nextAttr++
	a.Range.byName[strings.ToLower(inv.Name)] = inv
	a.Range.Attrs = append(a.Range.Attrs, inv)
	a.Inverse = inv
	return nil
}

// checkSubroles enforces §3.2: every class with subclasses must declare a
// subrole attribute whose value set contains the names of all its immediate
// subclasses, and subrole attributes may only enumerate immediate
// subclasses. When strict is false (the class predates this schema batch),
// uncovered subclasses are absorbed into an implicit subrole instead.
func (c *Catalog) checkSubroles(cl *Class, strict bool) error {
	covered := make(map[*Class]bool)
	var implicit *Attribute
	for _, a := range cl.Attrs {
		if a.Kind != Subrole {
			continue
		}
		if a.Implicit {
			implicit = a
		}
		for _, sc := range a.SubroleOf {
			isImmediate := false
			for _, sub := range cl.Subs {
				if sub == sc {
					isImmediate = true
					break
				}
			}
			if !isImmediate {
				return fmt.Errorf("class %s: subrole %s names %s, which is not an immediate subclass", cl.Name, a.Name, sc.Name)
			}
			covered[sc] = true
		}
	}
	var uncovered []*Class
	for _, sub := range cl.Subs {
		if !covered[sub] {
			uncovered = append(uncovered, sub)
		}
	}
	if len(uncovered) == 0 {
		return nil
	}
	if strict {
		return fmt.Errorf("class %s: immediate subclass %s is not covered by any subrole attribute", cl.Name, uncovered[0].Name)
	}
	if implicit == nil {
		implicit = &Attribute{
			ID:       c.nextAttr,
			Name:     "~subroles-of-" + strings.ToLower(cl.Name),
			Owner:    cl,
			Kind:     Subrole,
			Options:  Options{MV: true},
			Implicit: true,
		}
		c.nextAttr++
		cl.byName[implicit.Name] = implicit
		cl.Attrs = append(cl.Attrs, implicit)
	}
	implicit.SubroleOf = append(implicit.SubroleOf, uncovered...)
	return nil
}

func (c *Catalog) resolveType(te ast.TypeExpr) (*DataType, error) {
	switch t := te.(type) {
	case *ast.IntType:
		return &DataType{Kind: TInt, IntRanges: t.Ranges}, nil
	case *ast.NumberType:
		return &DataType{Kind: TNumber, Precision: t.Precision, Scale: t.Scale}, nil
	case *ast.RealType:
		return &DataType{Kind: TNumber}, nil
	case *ast.StringType:
		return &DataType{Kind: TString, StrLen: t.Len}, nil
	case *ast.DateType:
		return &DataType{Kind: TDate}, nil
	case *ast.BoolType:
		return &DataType{Kind: TBool}, nil
	case *ast.SymbolicType:
		dt := &DataType{Kind: TSymbolic, labelOrd: make(map[string]int)}
		for _, lbl := range t.Labels {
			key := strings.ToLower(lbl)
			if _, dup := dt.labelOrd[key]; dup {
				return nil, fmt.Errorf("symbolic label %q repeated", lbl)
			}
			dt.labelOrd[key] = len(dt.Labels)
			dt.Labels = append(dt.Labels, lbl)
		}
		return dt, nil
	case *ast.NamedType:
		if ut := c.Type(t.Name); ut != nil {
			return ut, nil
		}
		return nil, fmt.Errorf("unknown type %q", t.Name)
	}
	return nil, fmt.Errorf("unsupported type syntax %T", te)
}
