package pager

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sim/internal/obs"
)

// Stats counts buffer pool activity; the query optimizer's cost model and
// the benchmark harness read these to attribute I/O.
type Stats struct {
	Hits       uint64 // page found in pool
	Misses     uint64 // page read from the file
	PageWrites uint64 // pages written back to the file
}

// Frame is a pinned page in the pool. Callers must Release every frame
// they Get, and MarkDirty frames they mutate. The pins/dirty/gen/elem
// fields are guarded by the owning shard's mutex.
type Frame struct {
	ID     PageID
	Data   []byte // PageSize bytes
	pins   int
	dirty  bool
	gen    uint64        // bumped on every MarkDirty/Allocate; see Snapshot
	capGen uint64        // gen when last captured by a Snapshot
	elem   *list.Element // position in the shard LRU list when unpinned
}

// poolShards is the number of independently locked shards. Pages hash to
// shards by id, so concurrent readers touching different pages rarely
// contend on a lock.
const poolShards = 8

// shard is one independently locked slice of the pool with its own LRU.
type shard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // unpinned frames, least recently used at front
}

// Pool is a pinning buffer pool over a page File, sharded by page number
// into independently locked LRU shards. It is safe for a single writer or
// multiple concurrent readers (the database layer serializes writers);
// Stats/NumPages are safe to call at any time.
type Pool struct {
	file   File
	shards [poolShards]shard
	next   atomic.Uint32 // next page id to allocate when the freelist is empty
	latch  *obs.Latch    // contention profile over all shard locks

	hits       atomic.Uint64
	misses     atomic.Uint64
	pageWrites atomic.Uint64
}

// NewPool returns a pool of the given capacity (in pages) over file.
func NewPool(file File, capacity int) (*Pool, error) {
	if capacity < 4 {
		capacity = 4
	}
	n, err := file.NumPages()
	if err != nil {
		return nil, err
	}
	p := &Pool{file: file, latch: obs.NewLatch("pool_shard")}
	per := (capacity + poolShards - 1) / poolShards
	if per < 2 {
		per = 2
	}
	for i := range p.shards {
		p.shards[i].capacity = per
		p.shards[i].frames = make(map[PageID]*Frame)
		p.shards[i].lru = list.New()
	}
	p.next.Store(uint32(n))
	return p, nil
}

func (p *Pool) shardOf(id PageID) *shard { return &p.shards[uint32(id)%poolShards] }

// lock acquires a shard mutex through the contention profile: an
// uncontended TryLock adds one atomic to the hot path; a contended
// acquisition is timed into the pool_shard wait histogram.
func (p *Pool) lock(sh *shard) {
	if sh.mu.TryLock() {
		p.latch.Acquired()
		return
	}
	start := time.Now()
	sh.mu.Lock()
	p.latch.Waited(time.Since(start))
}

// Stats returns a snapshot of the pool's counters. It never blocks on the
// shard locks, so it is safe to call while queries run.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		PageWrites: p.pageWrites.Load(),
	}
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.pageWrites.Store(0)
}

// RegisterMetrics publishes the pool's counters on an obs registry. The
// metrics read the same atomics Stats snapshots, so registration adds no
// hot-path cost.
func (p *Pool) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sim_pager_hits_total", "Buffer pool page hits.",
		func() float64 { return float64(p.hits.Load()) })
	r.CounterFunc("sim_pager_misses_total", "Buffer pool misses (pages read from the file).",
		func() float64 { return float64(p.misses.Load()) })
	r.CounterFunc("sim_pager_page_writes_total", "Pages written back to the database file.",
		func() float64 { return float64(p.pageWrites.Load()) })
	r.GaugeFunc("sim_pager_pages", "Allocated pages, including not-yet-flushed allocations.",
		func() float64 { return float64(p.next.Load()) })
	p.latch.Register(r, "Buffer pool shard locks.")
}

// NumPages returns the page count including not-yet-flushed allocations.
func (p *Pool) NumPages() uint32 { return p.next.Load() }

// Get pins the page and returns its frame, reading it from the file when
// absent from the pool.
func (p *Pool) Get(id PageID) (*Frame, error) {
	sh := p.shardOf(id)
	p.lock(sh)
	defer sh.mu.Unlock()
	return p.getLocked(sh, id, true)
}

// Allocate pins a zeroed new page at the end of the file. Free-page reuse
// is managed by the layer above (the dmsii allocator), which calls
// AllocateAt for recycled ids.
func (p *Pool) Allocate() (*Frame, error) {
	id := PageID(p.next.Add(1) - 1)
	sh := p.shardOf(id)
	p.lock(sh)
	defer sh.mu.Unlock()
	f, err := p.getLocked(sh, id, false)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	f.gen++
	return f, nil
}

// AllocateAt pins page id (a recycled free page) with zeroed contents.
func (p *Pool) AllocateAt(id PageID) (*Frame, error) {
	sh := p.shardOf(id)
	p.lock(sh)
	defer sh.mu.Unlock()
	f, err := p.getLocked(sh, id, false)
	if err != nil {
		return nil, err
	}
	for i := range f.Data {
		f.Data[i] = 0
	}
	f.dirty = true
	f.gen++
	return f, nil
}

func (p *Pool) getLocked(sh *shard, id PageID, read bool) (*Frame, error) {
	if f, ok := sh.frames[id]; ok {
		p.hits.Add(1)
		if f.pins == 0 && f.elem != nil {
			sh.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	evictLocked(sh)
	f := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1}
	if read {
		p.misses.Add(1)
		if err := p.file.ReadPage(id, f.Data); err != nil {
			return nil, err
		}
	}
	sh.frames[id] = f
	return f, nil
}

// evictLocked makes room for one more frame in the shard. The pool is
// no-steal: dirty frames are never written to the database file before the
// WAL journals them at commit, so only clean unpinned frames are eviction
// victims. When every frame is dirty or pinned the shard grows past its
// soft capacity for the remainder of the transaction.
func evictLocked(sh *shard) {
	for len(sh.frames) >= sh.capacity {
		var victim *Frame
		for e := sh.lru.Front(); e != nil; e = e.Next() {
			if f := e.Value.(*Frame); !f.dirty {
				victim = f
				break
			}
		}
		if victim == nil {
			return // soft capacity: all candidates dirty or pinned
		}
		sh.lru.Remove(victim.elem)
		victim.elem = nil
		delete(sh.frames, victim.ID)
	}
}

// Release unpins the frame.
func (p *Pool) Release(f *Frame) {
	sh := p.shardOf(f.ID)
	p.lock(sh)
	defer sh.mu.Unlock()
	if f.pins <= 0 {
		panic("pager: Release of unpinned frame")
	}
	f.pins--
	if f.pins == 0 {
		f.elem = sh.lru.PushBack(f)
	}
}

// MarkDirty records that the frame's contents changed. Every call bumps
// the frame's dirty generation, so a commit snapshot taken between two
// mutations can tell whether the frame changed again after it was copied.
func (p *Pool) MarkDirty(f *Frame) {
	sh := p.shardOf(f.ID)
	p.lock(sh)
	defer sh.mu.Unlock()
	f.dirty = true
	f.gen++
}

// DirtyPages returns the ids and contents of all dirty frames, sorted by
// id. The WAL uses this at commit to journal page images.
func (p *Pool) DirtyPages() []*Frame {
	var out []*Frame
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				out = append(out, f)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DiscardDirty drops every dirty frame from the pool, so subsequent reads
// observe the last durable contents. Frames must be unpinned. Page
// allocations since the last clean point are rolled back by resetting the
// next-allocation cursor to the file's size. This implements transaction
// abort for the commit-journal WAL scheme.
func (p *Pool) DiscardDirty() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id, f := range sh.frames {
			if !f.dirty {
				continue
			}
			if f.pins > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("pager: DiscardDirty: page %d still pinned", id)
			}
			if f.elem != nil {
				sh.lru.Remove(f.elem)
				f.elem = nil
			}
			delete(sh.frames, id)
		}
		sh.mu.Unlock()
	}
	n, err := p.file.NumPages()
	if err != nil {
		return err
	}
	p.next.Store(uint32(n))
	return nil
}

// DropAll empties the pool: every frame — clean or dirty — is discarded,
// so subsequent reads observe the file's current contents, and the
// next-allocation cursor is reset from the file size. Replica apply uses
// this after overwriting pages underneath the pool. Frames must be
// unpinned (the caller holds the store's write latch and has drained
// readers).
func (p *Pool) DropAll() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id, f := range sh.frames {
			if f.pins > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("pager: DropAll: page %d still pinned", id)
			}
			if f.elem != nil {
				sh.lru.Remove(f.elem)
				f.elem = nil
			}
			delete(sh.frames, id)
		}
		sh.mu.Unlock()
	}
	n, err := p.file.NumPages()
	if err != nil {
		return err
	}
	p.next.Store(uint32(n))
	return nil
}

// WriteBackDirty writes every dirty frame to the file without syncing and
// clears the dirty bits. Called at commit after the WAL has journaled the
// same images: clean frames may then be evicted safely, and a crash is
// repaired by WAL replay.
func (p *Pool) WriteBackDirty() error {
	return p.writeDirty()
}

// snapPage is one dirty frame captured by Snapshot: the frame, the dirty
// generation at capture time, and a private copy of its bytes.
type snapPage struct {
	f    *Frame
	gen  uint64
	data []byte
}

// Snapshot is a point-in-time copy of the pool's dirty frames, taken at
// commit. The copies are what the WAL journals and what WriteBack later
// writes to the database file, so the committing transaction's images
// stay stable even while later transactions re-dirty the same frames.
type Snapshot struct {
	pages []snapPage
}

// Len returns the number of captured pages.
func (s *Snapshot) Len() int { return len(s.pages) }

// Frames returns the snapshot as detached frames (copied data), sorted by
// page id — the shape the WAL journals.
func (s *Snapshot) Frames() []*Frame {
	out := make([]*Frame, len(s.pages))
	for i, sp := range s.pages {
		out[i] = &Frame{ID: sp.f.ID, Data: sp.data}
	}
	return out
}

// Snapshot captures the dirty frames the committing transaction changed:
// a copy of each frame's bytes plus its dirty generation, sorted by page
// id. A dirty frame whose generation is unchanged since an earlier
// snapshot captured it is skipped — that predecessor's commit already
// journaled the identical image (and its queued WriteBack will write it),
// so re-capturing would only grow WAL batches with the depth of the
// commit pipeline. Replay stays correct because WAL batches are appended
// in commit order: a durable batch implies every predecessor batch is
// durable too. The caller must hold the store's write latch so no writer
// mutates frames mid-copy; concurrent readers are fine.
func (p *Pool) Snapshot() *Snapshot {
	snap := &Snapshot{}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty && f.gen != f.capGen {
				f.capGen = f.gen
				data := make([]byte, len(f.Data))
				copy(data, f.Data)
				snap.pages = append(snap.pages, snapPage{f: f, gen: f.gen, data: data})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.pages, func(i, j int) bool { return snap.pages[i].f.ID < snap.pages[j].f.ID })
	return snap
}

// WriteBack writes a snapshot's page images to the file (without syncing)
// and clears the dirty bit of every frame whose generation is unchanged
// since the snapshot — a frame re-dirtied by a later transaction stays
// dirty so that transaction's commit journals and writes it again. The
// snapshot image is always written even on a generation mismatch: it is
// the committed content, and the file must not be left behind the WAL
// when the later transaction rolls back.
func (p *Pool) WriteBack(s *Snapshot) error {
	for _, sp := range s.pages {
		p.pageWrites.Add(1)
		if err := p.file.WritePage(sp.f.ID, sp.data); err != nil {
			return err
		}
		sh := p.shardOf(sp.f.ID)
		sh.mu.Lock()
		if sp.f.gen == sp.gen {
			sp.f.dirty = false
		}
		sh.mu.Unlock()
	}
	return nil
}

// FlushAll writes every dirty frame to the file and syncs it. Used at
// checkpoints.
func (p *Pool) FlushAll() error {
	if err := p.writeDirty(); err != nil {
		return err
	}
	return p.file.Sync()
}

func (p *Pool) writeDirty() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				p.pageWrites.Add(1)
				if err := p.file.WritePage(f.ID, f.Data); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return nil
}
