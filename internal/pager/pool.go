package pager

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
)

// Stats counts buffer pool activity; the query optimizer's cost model and
// the benchmark harness read these to attribute I/O.
type Stats struct {
	Hits       uint64 // page found in pool
	Misses     uint64 // page read from the file
	PageWrites uint64 // pages written back to the file
}

// Frame is a pinned page in the pool. Callers must Release every frame
// they Get, and MarkDirty frames they mutate.
type Frame struct {
	ID    PageID
	Data  []byte // PageSize bytes
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list when unpinned
}

// Pool is a pinning buffer pool over a page File with LRU replacement.
// It is safe for a single writer or multiple readers (the database layer
// serializes writers).
type Pool struct {
	mu       sync.Mutex
	file     File
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // unpinned frames, least recently used at front
	next     PageID     // next page id to allocate when the freelist is empty
	stats    Stats
}

// NewPool returns a pool of the given capacity (in pages) over file.
func NewPool(file File, capacity int) (*Pool, error) {
	if capacity < 4 {
		capacity = 4
	}
	n, err := file.NumPages()
	if err != nil {
		return nil, err
	}
	return &Pool{
		file:     file,
		capacity: capacity,
		frames:   make(map[PageID]*Frame),
		lru:      list.New(),
		next:     PageID(n),
	}, nil
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// NumPages returns the page count including not-yet-flushed allocations.
func (p *Pool) NumPages() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return uint32(p.next)
}

// Get pins the page and returns its frame, reading it from the file when
// absent from the pool.
func (p *Pool) Get(id PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.getLocked(id, true)
}

// Allocate pins a zeroed new page at the end of the file. Free-page reuse
// is managed by the layer above (the dmsii allocator), which calls
// AllocateAt for recycled ids.
func (p *Pool) Allocate() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.next
	p.next++
	f, err := p.getLocked(id, false)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	return f, nil
}

// AllocateAt pins page id (a recycled free page) with zeroed contents.
func (p *Pool) AllocateAt(id PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.getLocked(id, false)
	if err != nil {
		return nil, err
	}
	for i := range f.Data {
		f.Data[i] = 0
	}
	f.dirty = true
	return f, nil
}

func (p *Pool) getLocked(id PageID, read bool) (*Frame, error) {
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		if f.pins == 0 && f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	if err := p.evictLocked(); err != nil {
		return nil, err
	}
	f := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1}
	if read {
		p.stats.Misses++
		if err := p.file.ReadPage(id, f.Data); err != nil {
			return nil, err
		}
	}
	p.frames[id] = f
	return f, nil
}

// evictLocked makes room for one more frame. The pool is no-steal: dirty
// frames are never written to the database file before the WAL journals
// them at commit, so only clean unpinned frames are eviction victims. When
// every frame is dirty or pinned the pool grows past its soft capacity for
// the remainder of the transaction.
func (p *Pool) evictLocked() error {
	for len(p.frames) >= p.capacity {
		var victim *Frame
		for e := p.lru.Front(); e != nil; e = e.Next() {
			if f := e.Value.(*Frame); !f.dirty {
				victim = f
				break
			}
		}
		if victim == nil {
			return nil // soft capacity: all candidates dirty or pinned
		}
		p.lru.Remove(victim.elem)
		victim.elem = nil
		delete(p.frames, victim.ID)
	}
	return nil
}

// Release unpins the frame.
func (p *Pool) Release(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic("pager: Release of unpinned frame")
	}
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushBack(f)
	}
}

// MarkDirty records that the frame's contents changed.
func (p *Pool) MarkDirty(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f.dirty = true
}

// DirtyPages returns the ids and contents of all dirty frames, sorted by
// id. The WAL uses this at commit to journal page images.
func (p *Pool) DirtyPages() []*Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Frame
	for _, f := range p.frames {
		if f.dirty {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DiscardDirty drops every dirty frame from the pool, so subsequent reads
// observe the last durable contents. Frames must be unpinned. Page
// allocations since the last clean point are rolled back by resetting the
// next-allocation cursor to the file's size. This implements transaction
// abort for the commit-journal WAL scheme.
func (p *Pool) DiscardDirty() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if !f.dirty {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("pager: DiscardDirty: page %d still pinned", id)
		}
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		delete(p.frames, id)
	}
	n, err := p.file.NumPages()
	if err != nil {
		return err
	}
	p.next = PageID(n)
	return nil
}

// WriteBackDirty writes every dirty frame to the file without syncing and
// clears the dirty bits. Called at commit after the WAL has journaled the
// same images: clean frames may then be evicted safely, and a crash is
// repaired by WAL replay.
func (p *Pool) WriteBackDirty() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			p.stats.PageWrites++
			if err := p.file.WritePage(f.ID, f.Data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// FlushAll writes every dirty frame to the file and syncs it. Used at
// checkpoints.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	for _, f := range p.frames {
		if f.dirty {
			p.stats.PageWrites++
			if err := p.file.WritePage(f.ID, f.Data); err != nil {
				p.mu.Unlock()
				return err
			}
			f.dirty = false
		}
	}
	p.mu.Unlock()
	return p.file.Sync()
}
