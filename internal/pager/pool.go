package pager

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sim/internal/obs"
)

// Stats counts buffer pool activity; the query optimizer's cost model and
// the benchmark harness read these to attribute I/O.
type Stats struct {
	Hits       uint64 // page found in pool
	Misses     uint64 // page read from the file
	PageWrites uint64 // pages written back to the file
}

// Frame is a pinned page in the pool. Callers must Release every frame
// they Get, Prepare frames before mutating them in place, and MarkDirty
// frames they mutated. The pins/dirty/gen/unc/elem fields are guarded by
// the owning shard's mutex.
type Frame struct {
	ID     PageID
	Data   []byte // PageSize bytes
	pins   int
	dirty  bool
	unc    bool          // holds uncommitted bytes: Data was re-buffered by Prepare/Allocate and not yet captured
	gen    uint64        // bumped on every MarkDirty/Allocate; see Snapshot
	capGen uint64        // gen when last captured by a Snapshot
	elem   *list.Element // position in the shard LRU list when unpinned
}

// pageVersion is one committed pre-image on a page's version chain: the
// page bytes as of commit stamp. Chains are kept in ascending stamp order
// and entries are immutable once pushed — ViewPage hands the data slice to
// readers zero-copy, relying on the swap-don't-overwrite discipline of
// Prepare (a frame buffer pushed onto the chain is never written again).
type pageVersion struct {
	stamp uint64
	data  []byte
}

// poolShards is the number of independently locked shards. Pages hash to
// shards by id, so concurrent readers touching different pages rarely
// contend on a lock.
const poolShards = 8

// shard is one independently locked slice of the pool with its own LRU.
// versions and stamps outlive the frames: a page's version chain and its
// latest commit stamp stay valid while the frame itself is evicted.
type shard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List                // unpinned frames, least recently used at front
	versions map[PageID][]pageVersion  // committed pre-images, ascending stamp
	stamps   map[PageID]uint64         // latest commit stamp that captured the page (absent = 0, "as old as the file")
}

// Pool is a pinning buffer pool over a page File, sharded by page number
// into independently locked LRU shards. It is safe for a single writer or
// multiple concurrent readers (the database layer serializes writers);
// Stats/NumPages are safe to call at any time.
type Pool struct {
	file   File
	shards [poolShards]shard
	next   atomic.Uint32 // next page id to allocate when the freelist is empty
	latch  *obs.Latch    // contention profile over all shard locks

	hits       atomic.Uint64
	misses     atomic.Uint64
	pageWrites atomic.Uint64

	// MVCC state. stampSeq is the monotonic commit-stamp counter, bumped
	// by Snapshot under the store's write latch; published is the newest
	// stamp whose commit is durable (what new readers pin); pins counts
	// the live read views per stamp; minPinned caches the GC floor —
	// min(published, oldest pinned stamp) — so Prepare can prune without
	// taking pinMu.
	stampSeq  atomic.Uint64
	published atomic.Uint64
	pinMu     sync.Mutex
	pins      map[uint64]int
	minPinned atomic.Uint64

	liveVersions atomic.Int64
	versionErrs  atomic.Uint64
}

// NewPool returns a pool of the given capacity (in pages) over file.
func NewPool(file File, capacity int) (*Pool, error) {
	if capacity < 4 {
		capacity = 4
	}
	n, err := file.NumPages()
	if err != nil {
		return nil, err
	}
	p := &Pool{file: file, latch: obs.NewLatch("pool_shard")}
	per := (capacity + poolShards - 1) / poolShards
	if per < 2 {
		per = 2
	}
	for i := range p.shards {
		p.shards[i].capacity = per
		p.shards[i].frames = make(map[PageID]*Frame)
		p.shards[i].lru = list.New()
		p.shards[i].versions = make(map[PageID][]pageVersion)
		p.shards[i].stamps = make(map[PageID]uint64)
	}
	p.next.Store(uint32(n))
	p.pins = make(map[uint64]int)
	return p, nil
}

func (p *Pool) shardOf(id PageID) *shard { return &p.shards[uint32(id)%poolShards] }

// lock acquires a shard mutex through the contention profile: an
// uncontended TryLock adds one atomic to the hot path; a contended
// acquisition is timed into the pool_shard wait histogram.
func (p *Pool) lock(sh *shard) {
	if sh.mu.TryLock() {
		p.latch.Acquired()
		return
	}
	start := time.Now()
	sh.mu.Lock()
	p.latch.Waited(time.Since(start))
}

// Stats returns a snapshot of the pool's counters. It never blocks on the
// shard locks, so it is safe to call while queries run.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		PageWrites: p.pageWrites.Load(),
	}
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.pageWrites.Store(0)
}

// RegisterMetrics publishes the pool's counters on an obs registry. The
// metrics read the same atomics Stats snapshots, so registration adds no
// hot-path cost.
func (p *Pool) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sim_pager_hits_total", "Buffer pool page hits.",
		func() float64 { return float64(p.hits.Load()) })
	r.CounterFunc("sim_pager_misses_total", "Buffer pool misses (pages read from the file).",
		func() float64 { return float64(p.misses.Load()) })
	r.CounterFunc("sim_pager_page_writes_total", "Pages written back to the database file.",
		func() float64 { return float64(p.pageWrites.Load()) })
	r.GaugeFunc("sim_pager_pages", "Allocated pages, including not-yet-flushed allocations.",
		func() float64 { return float64(p.next.Load()) })
	r.GaugeFunc("sim_mvcc_published_stamp", "Newest commit stamp visible to new read snapshots.",
		func() float64 { return float64(p.published.Load()) })
	r.GaugeFunc("sim_mvcc_oldest_pinned_stamp", "Oldest stamp a live snapshot is pinned at (the version-GC floor).",
		func() float64 { return float64(p.minPinned.Load()) })
	r.GaugeFunc("sim_mvcc_pinned_views", "Live pinned read snapshots.",
		func() float64 { return float64(p.PinnedViews()) })
	r.GaugeFunc("sim_mvcc_live_versions", "Retained copy-on-write page pre-images awaiting GC.",
		func() float64 { return float64(p.liveVersions.Load()) })
	r.CounterFunc("sim_mvcc_version_errors_total", "Snapshot page resolutions that found no visible version (GC bug guard).",
		func() float64 { return float64(p.versionErrs.Load()) })
	p.latch.Register(r, "Buffer pool shard locks.")
}

// NumPages returns the page count including not-yet-flushed allocations.
func (p *Pool) NumPages() uint32 { return p.next.Load() }

// Get pins the page and returns its frame, reading it from the file when
// absent from the pool.
func (p *Pool) Get(id PageID) (*Frame, error) {
	sh := p.shardOf(id)
	p.lock(sh)
	defer sh.mu.Unlock()
	return p.getLocked(sh, id, true)
}

// Allocate pins a zeroed new page at the end of the file. Free-page reuse
// is managed by the layer above (the dmsii allocator), which calls
// AllocateAt for recycled ids.
func (p *Pool) Allocate() (*Frame, error) {
	id := PageID(p.next.Add(1) - 1)
	sh := p.shardOf(id)
	p.lock(sh)
	defer sh.mu.Unlock()
	f, err := p.getLocked(sh, id, false)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	f.unc = true
	f.gen++
	return f, nil
}

// AllocateAt pins page id (a recycled free page) with zeroed contents. No
// pre-image is pushed: a recycled page is unreachable from every committed
// structure root, so no pinned snapshot can traverse to it — readers that
// predate the page's FreePage commit are served by the pre-image that
// FreePage's own Prepare pushed.
func (p *Pool) AllocateAt(id PageID) (*Frame, error) {
	sh := p.shardOf(id)
	p.lock(sh)
	defer sh.mu.Unlock()
	f, err := p.getLocked(sh, id, false)
	if err != nil {
		return nil, err
	}
	if !f.unc {
		// Re-buffer instead of zeroing in place: the old buffer may have
		// been handed out by ViewPage and must stay immutable.
		f.Data = make([]byte, PageSize)
		f.unc = true
	} else {
		for i := range f.Data {
			f.Data[i] = 0
		}
	}
	f.dirty = true
	f.gen++
	return f, nil
}

// Prepare declares that the caller (which holds the store's write latch)
// is about to mutate the frame's bytes in place. The first Prepare of a
// frame per commit cycle pushes the current committed image onto the
// page's version chain — tagged with the stamp of the commit that produced
// it — and swaps in a private copy for the writer, so every buffer a
// reader may hold stays immutable (copy-on-write by buffer swap). Later
// Prepares in the same cycle are no-ops until Snapshot captures the frame.
func (p *Pool) Prepare(f *Frame) {
	sh := p.shardOf(f.ID)
	p.lock(sh)
	defer sh.mu.Unlock()
	if f.unc {
		return
	}
	f.unc = true
	old := f.Data
	nd := make([]byte, PageSize)
	copy(nd, old)
	f.Data = nd
	sh.versions[f.ID] = append(sh.versions[f.ID], pageVersion{stamp: sh.stamps[f.ID], data: old})
	p.liveVersions.Add(1)
	p.pruneLocked(sh, f.ID)
}

// pruneLocked drops chain entries no pinned snapshot can see: an entry is
// dead once a strictly newer committed version (the next chain entry, or
// the frame's last captured image) is itself visible at the GC floor.
func (p *Pool) pruneLocked(sh *shard, id PageID) {
	ch := sh.versions[id]
	if len(ch) == 0 {
		return
	}
	mp := p.minPinned.Load()
	i := 0
	for i < len(ch) {
		succ := sh.stamps[id]
		if i+1 < len(ch) {
			succ = ch[i+1].stamp
		}
		if succ > ch[i].stamp && succ <= mp {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return
	}
	p.liveVersions.Add(int64(-i))
	if i == len(ch) {
		delete(sh.versions, id)
		return
	}
	sh.versions[id] = append(ch[:0:0], ch[i:]...)
}

// SweepVersions prunes every page's version chain against the current GC
// floor. The store calls it at checkpoint, when the pipeline is drained
// and old pinned snapshots have typically gone away.
func (p *Pool) SweepVersions() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id := range sh.versions {
			p.pruneLocked(sh, id)
		}
		sh.mu.Unlock()
	}
}

// PinView registers a read snapshot at the newest published stamp and
// returns that stamp. Every PinView must be paired with UnpinView, which
// is what lets version GC advance past the snapshot.
func (p *Pool) PinView() uint64 {
	p.pinMu.Lock()
	s := p.published.Load()
	p.pins[s]++
	p.pinMu.Unlock()
	return s
}

// UnpinView releases a snapshot pinned by PinView.
func (p *Pool) UnpinView(stamp uint64) {
	p.pinMu.Lock()
	if n := p.pins[stamp] - 1; n > 0 {
		p.pins[stamp] = n
	} else {
		delete(p.pins, stamp)
	}
	p.recomputeFloorLocked()
	p.pinMu.Unlock()
}

// Publish makes stamp (and every stamp below it) visible to new readers.
// The store calls it once the commit that produced the stamp is durable;
// group commit makes a durable batch imply every predecessor is durable,
// so a max-store publishes in commit order regardless of Wait ordering.
func (p *Pool) Publish(stamp uint64) {
	p.pinMu.Lock()
	if stamp > p.published.Load() {
		p.published.Store(stamp)
	}
	p.recomputeFloorLocked()
	p.pinMu.Unlock()
}

// Published returns the newest stamp visible to readers.
func (p *Pool) Published() uint64 { return p.published.Load() }

// recomputeFloorLocked refreshes the GC floor; pinMu held.
func (p *Pool) recomputeFloorLocked() {
	mp := p.published.Load()
	for s := range p.pins {
		if s < mp {
			mp = s
		}
	}
	p.minPinned.Store(mp)
}

// OldestPinned returns the oldest stamp a live snapshot is pinned at, or
// the published stamp when no snapshot is pinned (the GC floor).
func (p *Pool) OldestPinned() uint64 { return p.minPinned.Load() }

// PinnedViews returns the number of live pinned snapshots.
func (p *Pool) PinnedViews() int {
	p.pinMu.Lock()
	n := 0
	for _, c := range p.pins {
		n += c
	}
	p.pinMu.Unlock()
	return n
}

// LiveVersions returns the number of retained page pre-images.
func (p *Pool) LiveVersions() int64 { return p.liveVersions.Load() }

// ViewPage resolves the bytes of page id as of the pinned stamp, without
// pinning: the returned slice is immutable (writers swap buffers, never
// overwrite) and stays valid for as long as the caller references it. The
// resolution order is: the frame itself when it holds a committed image no
// newer than the view; else the newest chain entry at or below the view;
// else — frame absent and the page's last capture not newer than the view
// — the database file, which is current for evicted pages (no-steal plus
// write-back-before-clean guarantee). Any other state is a GC bug and
// returns a counted error rather than wrong bytes.
func (p *Pool) ViewPage(id PageID, stamp uint64) ([]byte, error) {
	sh := p.shardOf(id)
	p.lock(sh)
	defer sh.mu.Unlock()
	f, ok := sh.frames[id]
	if ok && !f.unc && sh.stamps[id] <= stamp {
		p.hits.Add(1)
		return f.Data, nil
	}
	if ch := sh.versions[id]; len(ch) > 0 {
		// Newest entry with entry.stamp <= stamp.
		lo, hi := 0, len(ch)
		for lo < hi {
			mid := (lo + hi) / 2
			if ch[mid].stamp <= stamp {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			p.hits.Add(1)
			return ch[lo-1].data, nil
		}
	}
	if !ok && sh.stamps[id] <= stamp {
		nf, err := p.getLocked(sh, id, true)
		if err != nil {
			return nil, err
		}
		// getLocked pinned the frame; release it inline (lock already held).
		nf.pins--
		if nf.pins == 0 {
			nf.elem = sh.lru.PushBack(nf)
		}
		return nf.Data, nil
	}
	p.versionErrs.Add(1)
	return nil, fmt.Errorf("pager: no version of page %d visible at stamp %d (last capture %d)", id, stamp, sh.stamps[id])
}

func (p *Pool) getLocked(sh *shard, id PageID, read bool) (*Frame, error) {
	if f, ok := sh.frames[id]; ok {
		p.hits.Add(1)
		if f.pins == 0 && f.elem != nil {
			sh.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	evictLocked(sh)
	f := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1}
	if read {
		p.misses.Add(1)
		if err := p.file.ReadPage(id, f.Data); err != nil {
			return nil, err
		}
	}
	sh.frames[id] = f
	return f, nil
}

// evictLocked makes room for one more frame in the shard. The pool is
// no-steal: dirty frames are never written to the database file before the
// WAL journals them at commit, so only clean unpinned frames are eviction
// victims. When every frame is dirty or pinned the shard grows past its
// soft capacity for the remainder of the transaction.
func evictLocked(sh *shard) {
	for len(sh.frames) >= sh.capacity {
		var victim *Frame
		for e := sh.lru.Front(); e != nil; e = e.Next() {
			if f := e.Value.(*Frame); !f.dirty {
				victim = f
				break
			}
		}
		if victim == nil {
			return // soft capacity: all candidates dirty or pinned
		}
		sh.lru.Remove(victim.elem)
		victim.elem = nil
		delete(sh.frames, victim.ID)
	}
}

// Release unpins the frame.
func (p *Pool) Release(f *Frame) {
	sh := p.shardOf(f.ID)
	p.lock(sh)
	defer sh.mu.Unlock()
	if f.pins <= 0 {
		panic("pager: Release of unpinned frame")
	}
	f.pins--
	if f.pins == 0 {
		f.elem = sh.lru.PushBack(f)
	}
}

// MarkDirty records that the frame's contents changed. Every call bumps
// the frame's dirty generation, so a commit snapshot taken between two
// mutations can tell whether the frame changed again after it was copied.
func (p *Pool) MarkDirty(f *Frame) {
	sh := p.shardOf(f.ID)
	p.lock(sh)
	defer sh.mu.Unlock()
	f.dirty = true
	f.gen++
}

// DirtyPages returns the ids and contents of all dirty frames, sorted by
// id. The WAL uses this at commit to journal page images.
func (p *Pool) DirtyPages() []*Frame {
	var out []*Frame
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				out = append(out, f)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DiscardDirty drops every dirty frame from the pool, so subsequent reads
// observe the last durable contents. Frames must be unpinned. Page
// allocations since the last clean point are rolled back by resetting the
// next-allocation cursor to the file's size. This implements transaction
// abort for the commit-journal WAL scheme.
func (p *Pool) DiscardDirty() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id, f := range sh.frames {
			if !f.dirty {
				p.repairCleanLocked(sh, f)
				continue
			}
			if f.pins > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("pager: DiscardDirty: page %d still pinned", id)
			}
			if f.elem != nil {
				sh.lru.Remove(f.elem)
				f.elem = nil
			}
			delete(sh.frames, id)
		}
		sh.mu.Unlock()
	}
	n, err := p.file.NumPages()
	if err != nil {
		return err
	}
	p.next.Store(uint32(n))
	return nil
}

// repairCleanLocked undoes an open copy-on-write cycle on a frame the
// rollback keeps (Prepared but never re-dirtied): the chain's top entry is
// the committed image Prepare displaced, so restore it and pop the entry.
func (p *Pool) repairCleanLocked(sh *shard, f *Frame) {
	if !f.unc {
		return
	}
	f.unc = false
	ch := sh.versions[f.ID]
	if len(ch) > 0 && ch[len(ch)-1].stamp == sh.stamps[f.ID] {
		f.Data = ch[len(ch)-1].data
		if len(ch) == 1 {
			delete(sh.versions, f.ID)
		} else {
			sh.versions[f.ID] = ch[:len(ch)-1]
		}
		p.liveVersions.Add(-1)
	}
}

// DropAll empties the pool: every frame — clean or dirty — is discarded,
// so subsequent reads observe the file's current contents, and the
// next-allocation cursor is reset from the file size. Replica apply uses
// this after overwriting pages underneath the pool. The MVCC version
// state goes with the frames: retained pre-images and capture stamps
// describe a history the file no longer continues (a rejoining fenced
// primary's own commits, overwritten by the new primary's image), and a
// surviving chain entry would satisfy ViewPage ahead of the disk
// fallback, serving pre-replacement bytes forever. Frames must be
// unpinned (the caller holds the store's write latch and has drained
// readers).
func (p *Pool) DropAll() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id, f := range sh.frames {
			if f.pins > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("pager: DropAll: page %d still pinned", id)
			}
			if f.elem != nil {
				sh.lru.Remove(f.elem)
				f.elem = nil
			}
			delete(sh.frames, id)
		}
		for id, ch := range sh.versions {
			p.liveVersions.Add(int64(-len(ch)))
			delete(sh.versions, id)
		}
		for id := range sh.stamps {
			delete(sh.stamps, id)
		}
		sh.mu.Unlock()
	}
	n, err := p.file.NumPages()
	if err != nil {
		return err
	}
	p.next.Store(uint32(n))
	return nil
}

// WriteBackDirty writes every dirty frame to the file without syncing and
// clears the dirty bits. Called at commit after the WAL has journaled the
// same images: clean frames may then be evicted safely, and a crash is
// repaired by WAL replay.
func (p *Pool) WriteBackDirty() error {
	return p.writeDirty()
}

// snapPage is one dirty frame captured by Snapshot: the frame, the dirty
// generation at capture time, and a private copy of its bytes.
type snapPage struct {
	f    *Frame
	gen  uint64
	data []byte
}

// Snapshot is a point-in-time copy of the pool's dirty frames, taken at
// commit. The copies are what the WAL journals and what WriteBack later
// writes to the database file, so the committing transaction's images
// stay stable even while later transactions re-dirty the same frames.
type Snapshot struct {
	pages []snapPage
	stamp uint64
}

// Stamp returns the commit stamp assigned when the snapshot was captured.
// Publishing this stamp (after the commit is durable) makes the captured
// state visible to new read views.
func (s *Snapshot) Stamp() uint64 { return s.stamp }

// Len returns the number of captured pages.
func (s *Snapshot) Len() int { return len(s.pages) }

// Frames returns the snapshot as detached frames (copied data), sorted by
// page id — the shape the WAL journals.
func (s *Snapshot) Frames() []*Frame {
	out := make([]*Frame, len(s.pages))
	for i, sp := range s.pages {
		out[i] = &Frame{ID: sp.f.ID, Data: sp.data}
	}
	return out
}

// Snapshot captures the dirty frames the committing transaction changed:
// a copy of each frame's bytes plus its dirty generation, sorted by page
// id. A dirty frame whose generation is unchanged since an earlier
// snapshot captured it is skipped — that predecessor's commit already
// journaled the identical image (and its queued WriteBack will write it),
// so re-capturing would only grow WAL batches with the depth of the
// commit pipeline. Replay stays correct because WAL batches are appended
// in commit order: a durable batch implies every predecessor batch is
// durable too. The caller must hold the store's write latch so no writer
// mutates frames mid-copy; concurrent readers are fine.
func (p *Pool) Snapshot() *Snapshot {
	snap := &Snapshot{stamp: p.stampSeq.Add(1)}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty && f.gen != f.capGen {
				f.capGen = f.gen
				data := make([]byte, len(f.Data))
				copy(data, f.Data)
				snap.pages = append(snap.pages, snapPage{f: f, gen: f.gen, data: data})
				// The frame now holds this commit's image: stamp it and
				// end the copy-on-write cycle Prepare opened.
				sh.stamps[f.ID] = snap.stamp
				f.unc = false
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.pages, func(i, j int) bool { return snap.pages[i].f.ID < snap.pages[j].f.ID })
	return snap
}

// WriteBack writes a snapshot's page images to the file (without syncing)
// and clears the dirty bit of every frame whose generation is unchanged
// since the snapshot — a frame re-dirtied by a later transaction stays
// dirty so that transaction's commit journals and writes it again. The
// snapshot image is always written even on a generation mismatch: it is
// the committed content, and the file must not be left behind the WAL
// when the later transaction rolls back.
func (p *Pool) WriteBack(s *Snapshot) error {
	for _, sp := range s.pages {
		p.pageWrites.Add(1)
		if err := p.file.WritePage(sp.f.ID, sp.data); err != nil {
			return err
		}
		sh := p.shardOf(sp.f.ID)
		sh.mu.Lock()
		if sp.f.gen == sp.gen {
			sp.f.dirty = false
		}
		sh.mu.Unlock()
	}
	return nil
}

// FlushAll writes every dirty frame to the file and syncs it. Used at
// checkpoints.
func (p *Pool) FlushAll() error {
	if err := p.writeDirty(); err != nil {
		return err
	}
	return p.file.Sync()
}

func (p *Pool) writeDirty() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				p.pageWrites.Add(1)
				if err := p.file.WritePage(f.ID, f.Data); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
			}
			// Every caller holds the store write latch with the commit
			// pipeline drained, so frame contents are committed: end any
			// copy-on-write cycle still open (format-time allocations are
			// written outside a transaction and never pass through
			// Snapshot), or the frame would stay invisible to snapshot
			// reads forever.
			f.unc = false
		}
		sh.mu.Unlock()
	}
	return nil
}
