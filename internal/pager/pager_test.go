package pager

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestMemFileRoundTrip(t *testing.T) {
	f := NewMemFile()
	page := make([]byte, PageSize)
	copy(page, "hello")
	if err := f.WritePage(3, page); err != nil {
		t.Fatal(err)
	}
	n, _ := f.NumPages()
	if n != 4 {
		t.Errorf("NumPages = %d, want 4 (grow to written id)", n)
	}
	got := make([]byte, PageSize)
	if err := f.ReadPage(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("hello")) {
		t.Errorf("read back %q", got[:5])
	}
	if err := f.ReadPage(10, got); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestOSFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	page := make([]byte, PageSize)
	copy(page, "disk page")
	if err := f.WritePage(2, page); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := f.ReadPage(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:9], []byte("disk page")) {
		t.Errorf("read back %q", got[:9])
	}
	if n, _ := f.NumPages(); n != 3 {
		t.Errorf("NumPages = %d", n)
	}
}

func newPool(t *testing.T, capacity int) *Pool {
	t.Helper()
	p, err := NewPool(NewMemFile(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolAllocateAndGet(t *testing.T) {
	p := newPool(t, 8)
	f, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data, "page zero")
	p.MarkDirty(f)
	p.Release(f)

	g, err := p.Get(f.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Data[:9], []byte("page zero")) {
		t.Errorf("got %q", g.Data[:9])
	}
	p.Release(g)
	st := p.Stats()
	if st.Hits == 0 {
		t.Error("second Get should be a pool hit")
	}
}

func TestPoolEvictionWritesNothingDirty(t *testing.T) {
	// No-steal: dirty frames survive over-capacity allocation; clean
	// frames are evicted without file writes.
	p := newPool(t, 4)
	var ids []PageID
	for i := 0; i < 8; i++ {
		f, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i)
		p.MarkDirty(f)
		ids = append(ids, f.ID)
		p.Release(f)
	}
	if got := p.Stats().PageWrites; got != 0 {
		t.Errorf("dirty frames written during eviction: %d", got)
	}
	// All 8 dirty pages still correct in pool (soft capacity).
	for i, id := range ids {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i) {
			t.Errorf("page %d corrupted", id)
		}
		p.Release(f)
	}
}

func TestPoolCleanEviction(t *testing.T) {
	p := newPool(t, 4)
	var ids []PageID
	for i := 0; i < 4; i++ {
		f, _ := p.Allocate()
		f.Data[0] = byte(i + 1)
		p.MarkDirty(f)
		ids = append(ids, f.ID)
		p.Release(f)
	}
	if err := p.WriteBackDirty(); err != nil {
		t.Fatal(err)
	}
	// Now clean; filling the pool evicts them without writes.
	before := p.Stats().PageWrites
	for i := 0; i < 4; i++ {
		f, _ := p.Allocate()
		p.Release(f)
	}
	if got := p.Stats().PageWrites; got != before {
		t.Errorf("clean eviction wrote pages: %d → %d", before, got)
	}
	// Evicted pages reload from the file with correct contents.
	for i, id := range ids {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i+1) {
			t.Errorf("page %d lost contents after clean eviction", id)
		}
		p.Release(f)
	}
}

func TestPoolDiscardDirty(t *testing.T) {
	file := NewMemFile()
	p, _ := NewPool(file, 8)
	f, _ := p.Allocate()
	f.Data[0] = 42
	p.MarkDirty(f)
	id := f.ID
	p.Release(f)
	if err := p.WriteBackDirty(); err != nil {
		t.Fatal(err)
	}
	// Dirty it again, then discard.
	f, _ = p.Get(id)
	f.Data[0] = 99
	p.MarkDirty(f)
	p.Release(f)
	if err := p.DiscardDirty(); err != nil {
		t.Fatal(err)
	}
	f, _ = p.Get(id)
	if f.Data[0] != 42 {
		t.Errorf("discard did not restore committed contents: %d", f.Data[0])
	}
	p.Release(f)
}

func TestPoolDiscardDirtyRefusesPinned(t *testing.T) {
	p := newPool(t, 8)
	f, _ := p.Allocate()
	p.MarkDirty(f)
	if err := p.DiscardDirty(); err == nil {
		t.Error("DiscardDirty with pinned dirty frame succeeded")
	}
	p.Release(f)
}

func TestPoolReleasePanicsWhenUnpinned(t *testing.T) {
	p := newPool(t, 8)
	f, _ := p.Allocate()
	p.Release(f)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	p.Release(f)
}

func TestPoolPinningKeepsFrameStable(t *testing.T) {
	p := newPool(t, 4)
	pinned, _ := p.Allocate()
	pinned.Data[0] = 7
	p.MarkDirty(pinned)
	// Churn the pool well past capacity.
	for i := 0; i < 16; i++ {
		f, _ := p.Allocate()
		p.Release(f)
	}
	if pinned.Data[0] != 7 {
		t.Error("pinned frame reused")
	}
	p.Release(pinned)
}

func TestAllocateAtZeroes(t *testing.T) {
	p := newPool(t, 8)
	f, _ := p.Allocate()
	for i := range f.Data {
		f.Data[i] = 0xAA
	}
	p.MarkDirty(f)
	id := f.ID
	p.Release(f)
	if err := p.WriteBackDirty(); err != nil {
		t.Fatal(err)
	}
	g, err := p.AllocateAt(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < PageSize; i += 512 {
		if g.Data[i] != 0 {
			t.Fatalf("AllocateAt not zeroed at %d", i)
		}
	}
	p.Release(g)
}
