package pager

import (
	"sync"
	"testing"
)

// TestPoolConcurrentReaders hammers Get/Release from many goroutines over
// a working set larger than the pool, mixing in Stats() calls; run under
// -race this is the regression test for the sharded pool.
func TestPoolConcurrentReaders(t *testing.T) {
	file := NewMemFile()
	const pages = 64
	p, err := NewPool(file, 16)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < pages; i++ {
		f, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i)
		p.MarkDirty(f)
		ids = append(ids, f.ID)
		p.Release(f)
	}
	if err := p.WriteBackDirty(); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(i*7+g*13)%pages]
				f, err := p.Get(id)
				if err != nil {
					errs <- err
					return
				}
				if f.Data[0] != byte(id) {
					t.Errorf("page %d read %d", id, f.Data[0])
					p.Release(f)
					return
				}
				p.Release(f)
				if i%50 == 0 {
					_ = p.Stats()
					_ = p.NumPages()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Hits+st.Misses < goroutines*500 {
		t.Errorf("stats lost accesses: hits=%d misses=%d", st.Hits, st.Misses)
	}
}

// TestPoolShardedEvictionBounded checks the soft capacity still bounds the
// resident set when frames are clean.
func TestPoolShardedEvictionBounded(t *testing.T) {
	p, err := NewPool(NewMemFile(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		f, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.MarkDirty(f)
		p.Release(f)
		if err := p.WriteBackDirty(); err != nil {
			t.Fatal(err)
		}
	}
	resident := 0
	for i := range p.shards {
		resident += len(p.shards[i].frames)
	}
	// Per-shard soft capacity is ceil(16/8)=2; eviction runs at insert, so
	// each shard holds at most capacity clean frames plus the newest one.
	if resident > 3*poolShards {
		t.Errorf("resident frames = %d, want <= %d", resident, 3*poolShards)
	}
}
