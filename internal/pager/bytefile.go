package pager

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// ByteFile is byte-addressed storage: the raw medium a page file or a
// write-ahead log sits on. *os.File satisfies the I/O surface directly
// (OSByteFile adds Size); MemByteFile keeps the image in memory; the
// fault package wraps any ByteFile with scriptable failures, which is why
// both the pager and the WAL are written against this interface instead
// of *os.File.
type ByteFile interface {
	io.ReaderAt
	io.WriterAt
	// Truncate resizes the file to exactly size bytes.
	Truncate(size int64) error
	// Sync forces written bytes to stable storage.
	Sync() error
	// Size returns the current length in bytes.
	Size() (int64, error)
	// Close releases the file.
	Close() error
}

// OSByteFile is a ByteFile backed by an operating system file.
type OSByteFile struct {
	f *os.File
}

// OpenOSByteFile opens (creating if necessary) the file at path.
func OpenOSByteFile(path string) (*OSByteFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	return &OSByteFile{f: f}, nil
}

// ReadAt implements io.ReaderAt.
func (o *OSByteFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (o *OSByteFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }

// Truncate implements ByteFile.
func (o *OSByteFile) Truncate(size int64) error { return o.f.Truncate(size) }

// Sync implements ByteFile.
func (o *OSByteFile) Sync() error { return o.f.Sync() }

// Size implements ByteFile.
func (o *OSByteFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close implements ByteFile.
func (o *OSByteFile) Close() error { return o.f.Close() }

// MemByteFile is an in-memory ByteFile. It is safe for concurrent use and
// survives the wrappers opened over it, so a crash-recovery test can
// "reopen" the same image with a fresh page file and WAL.
type MemByteFile struct {
	mu   sync.Mutex
	data []byte
}

// NewMemByteFile returns an empty in-memory byte file.
func NewMemByteFile() *MemByteFile { return &MemByteFile{} }

// ReadAt implements io.ReaderAt.
func (m *MemByteFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the file as needed.
func (m *MemByteFile) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(m.data)) {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	return copy(m.data[off:], p), nil
}

// Truncate implements ByteFile.
func (m *MemByteFile) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size <= int64(len(m.data)) {
		m.data = m.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, m.data)
	m.data = grown
	return nil
}

// Sync implements ByteFile.
func (m *MemByteFile) Sync() error { return nil }

// Size implements ByteFile.
func (m *MemByteFile) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.data)), nil
}

// Close implements ByteFile.
func (m *MemByteFile) Close() error { return nil }
