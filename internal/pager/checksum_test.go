package pager

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestChecksumFileRoundTrip(t *testing.T) {
	f := NewChecksumFile(NewMemByteFile())
	page := make([]byte, PageSize)
	copy(page, "sealed page")
	if err := f.WritePage(5, page); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := f.ReadPage(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Error("round trip lost data")
	}
	if n, _ := f.NumPages(); n != 6 {
		t.Errorf("NumPages = %d, want 6", n)
	}
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	bf := NewMemByteFile()
	f := NewChecksumFile(bf)
	page := make([]byte, PageSize)
	copy(page, "precious data")
	if err := f.WritePage(2, page); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside page 2's data region, as a failing disk would.
	var b [1]byte
	off := int64(2)*slotSize + 100
	bf.ReadAt(b[:], off)
	b[0] ^= 0x10
	bf.WriteAt(b[:], off)

	err := f.ReadPage(2, make([]byte, PageSize))
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("corrupt read error = %v, want ErrCorruptPage", err)
	}
	var ce *CorruptPageError
	if !errors.As(err, &ce) || ce.Page != 2 {
		t.Fatalf("corrupt error lacks page id: %v", err)
	}
	if f.ChecksumFailures() != 1 {
		t.Errorf("ChecksumFailures = %d, want 1", f.ChecksumFailures())
	}
	// Undamaged pages still read fine after the failure.
	if err := f.WritePage(0, page); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(0, make([]byte, PageSize)); err != nil {
		t.Error(err)
	}
}

func TestChecksumDetectsTornSlot(t *testing.T) {
	bf := NewMemByteFile()
	f := NewChecksumFile(bf)
	page := bytes.Repeat([]byte{0xAB}, PageSize)
	if err := f.WritePage(0, page); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(1, page); err != nil {
		t.Fatal(err)
	}
	// Tear page 1: overwrite its first half as an interrupted rewrite would.
	torn := bytes.Repeat([]byte{0xCD}, PageSize/2)
	bf.WriteAt(torn, slotSize)
	if err := f.ReadPage(1, make([]byte, PageSize)); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("torn page read = %v, want ErrCorruptPage", err)
	}
	// ReadPageRaw still hands back the damaged bytes for assessment.
	raw := make([]byte, PageSize)
	if err := f.ReadPageRaw(1, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0xCD || raw[PageSize-1] != 0xAB {
		t.Error("raw read does not reflect the torn image")
	}
}

func TestMemByteFile(t *testing.T) {
	m := NewMemByteFile()
	if _, err := m.WriteAt([]byte("hello"), 10); err != nil {
		t.Fatal(err)
	}
	if size, _ := m.Size(); size != 15 {
		t.Errorf("Size = %d, want 15", size)
	}
	buf := make([]byte, 5)
	if _, err := m.ReadAt(buf, 10); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("read back %q", buf)
	}
	if n, err := m.ReadAt(make([]byte, 10), 12); err != io.EOF || n != 3 {
		t.Errorf("short read = %d, %v; want 3, EOF", n, err)
	}
	if _, err := m.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("read past end = %v, want EOF", err)
	}
	if err := m.Truncate(12); err != nil {
		t.Fatal(err)
	}
	if size, _ := m.Size(); size != 12 {
		t.Errorf("Size after truncate = %d", size)
	}
	if err := m.Truncate(20); err != nil {
		t.Fatal(err)
	}
	if size, _ := m.Size(); size != 20 {
		t.Errorf("Size after growing truncate = %d", size)
	}
}
