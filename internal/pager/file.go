// Package pager provides fixed-size page files and a pinning buffer pool
// with LRU replacement. It is the lowest layer of the DMSII-like storage
// substrate that SIM's LUC Mapper runs against.
package pager

import (
	"fmt"
	"sync"
)

// PageSize is the fixed size of every page, in bytes.
const PageSize = 4096

// PageID identifies a page within a file. Page 0 is reserved for file
// metadata by the layers above.
type PageID uint32

// Invalid is the nil page id.
const Invalid PageID = 0xFFFFFFFF

// PageImage is one page's committed contents, as shipped between nodes
// by the replication subsystem: the page id plus its full PageSize image.
type PageImage struct {
	ID   PageID
	Data []byte
}

// PageTruncator is implemented by Files whose backing storage can shrink.
// Replica snapshot installation truncates the follower's file to exactly
// the primary's page count before overwriting, so stale tail pages from a
// previous, longer image cannot survive.
type PageTruncator interface {
	// TruncatePages resizes the file to exactly n pages.
	TruncatePages(n uint32) error
}

// File is random access storage in page units.
type File interface {
	// ReadPage fills buf (PageSize bytes) with the page's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (PageSize bytes) as the page's contents,
	// growing the file as needed.
	WritePage(id PageID, buf []byte) error
	// NumPages returns the current page count.
	NumPages() (uint32, error)
	// Sync forces written pages to stable storage.
	Sync() error
	// Close releases the file.
	Close() error
}

// MemFile is an in-memory File, used for tests and purely transient
// databases.
type MemFile struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMemFile returns an empty in-memory page file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadPage implements File.
func (m *MemFile) ReadPage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) || m.pages[id] == nil {
		return fmt.Errorf("pager: read page %d: beyond end of file", id)
	}
	copy(buf[:PageSize], m.pages[id])
	return nil
}

// WritePage implements File.
func (m *MemFile) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for int(id) >= len(m.pages) {
		m.pages = append(m.pages, nil)
	}
	if m.pages[id] == nil {
		m.pages[id] = make([]byte, PageSize)
	}
	copy(m.pages[id], buf[:PageSize])
	return nil
}

// NumPages implements File.
func (m *MemFile) NumPages() (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint32(len(m.pages)), nil
}

// TruncatePages implements PageTruncator.
func (m *MemFile) TruncatePages(n uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(n) < len(m.pages) {
		m.pages = m.pages[:n]
	}
	for int(n) > len(m.pages) {
		m.pages = append(m.pages, make([]byte, PageSize))
	}
	return nil
}

// Sync implements File.
func (m *MemFile) Sync() error { return nil }

// Close implements File.
func (m *MemFile) Close() error { return nil }
