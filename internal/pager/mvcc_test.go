package pager

import (
	"bytes"
	"testing"
)

// commitPage runs one page through the writer's commit cycle: CoW
// prepare, mutate, stamp, write back, publish. Returns the commit stamp.
func commitPage(t *testing.T, p *Pool, id PageID, content string) uint64 {
	t.Helper()
	f, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	p.Prepare(f)
	copy(f.Data, content)
	p.MarkDirty(f)
	p.Release(f)
	snap := p.Snapshot()
	if err := p.WriteBack(snap); err != nil {
		t.Fatal(err)
	}
	p.Publish(snap.Stamp())
	return snap.Stamp()
}

// TestViewPageResolvesPinnedVersion: a reader pinned before a commit
// keeps seeing the pre-image out of the version chain, while a reader
// pinned after sees the new bytes.
func TestViewPageResolvesPinnedVersion(t *testing.T) {
	p, err := NewPool(NewMemFile(), 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID
	copy(f.Data, "v1")
	p.MarkDirty(f)
	p.Release(f)
	snap := p.Snapshot()
	if err := p.WriteBack(snap); err != nil {
		t.Fatal(err)
	}
	p.Publish(snap.Stamp())

	old := p.PinView()
	defer p.UnpinView(old)
	commitPage(t, p, id, "v2")

	got, err := p.ViewPage(id, old)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2], []byte("v1")) {
		t.Fatalf("pinned view read %q, want the pre-image v1", got[:2])
	}
	cur := p.PinView()
	defer p.UnpinView(cur)
	got, err = p.ViewPage(id, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2], []byte("v2")) {
		t.Fatalf("fresh view read %q, want v2", got[:2])
	}
}

// TestDropAllDiscardsVersionState pins the fenced-rejoin regression: a
// node that committed locally (populating version chains and capture
// stamps) and then has its file replaced underneath the pool — replica
// snapshot install — must not serve pre-replacement bytes out of a
// surviving chain entry. DropAll discards the version state along with
// the frames, so readers fall through to the file.
func TestDropAllDiscardsVersionState(t *testing.T) {
	file := NewMemFile()
	p, err := NewPool(file, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID
	copy(f.Data, "v1")
	p.MarkDirty(f)
	p.Release(f)
	snap := p.Snapshot()
	if err := p.WriteBack(snap); err != nil {
		t.Fatal(err)
	}
	p.Publish(snap.Stamp())
	// A second commit leaves "v1" in the version chain.
	commitPage(t, p, id, "v2")
	if p.LiveVersions() == 0 {
		t.Fatal("no retained version; the test lost its preconditions")
	}

	// Replica install: new bytes written straight to the file, then the
	// pool is dropped.
	remote := make([]byte, PageSize)
	copy(remote, "remote")
	if err := file.WritePage(id, remote); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	if n := p.LiveVersions(); n != 0 {
		t.Fatalf("LiveVersions = %d after DropAll, want 0", n)
	}

	view := p.PinView()
	defer p.UnpinView(view)
	got, err := p.ViewPage(id, view)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:6], []byte("remote")) {
		t.Fatalf("post-DropAll view read %q, want the file's replaced bytes", got[:6])
	}
}
