package pager

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"sim/internal/obs"
)

// ErrCorruptPage is the sentinel every checksum failure wraps; match with
// errors.Is. The concrete *CorruptPageError carries the page id.
var ErrCorruptPage = errors.New("pager: corrupt page")

// CorruptPageError reports a page whose stored checksum does not match its
// contents: a torn write the WAL could not repair, or byzantine disk
// damage. The storage engine detects it on read instead of serving the
// damaged bytes.
type CorruptPageError struct {
	Page PageID
	Want uint32 // checksum stored in the page trailer
	Got  uint32 // checksum of the bytes actually read
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("pager: corrupt page %d: checksum %08x, computed %08x", e.Page, e.Want, e.Got)
}

// Unwrap makes errors.Is(err, ErrCorruptPage) hold.
func (e *CorruptPageError) Unwrap() error { return ErrCorruptPage }

// slotSize is the on-disk footprint of one page: PageSize data bytes plus
// a 4-byte CRC32 (IEEE) trailer. The trailer lives outside the page image,
// so the layers above keep their full PageSize of usable space and page
// ids map to byte offsets by id*slotSize.
const slotSize = PageSize + 4

// ChecksumFile is a File over byte storage with a per-page CRC32 trailer.
// WritePage seals each page with the checksum of its contents; ReadPage
// verifies it and returns *CorruptPageError on mismatch. This turns silent
// disk corruption and unrepaired torn page writes into detected, page-
// addressed failures (the paper's DMSII substrate audited its physical
// storage; this is our equivalent).
type ChecksumFile struct {
	bf      ByteFile
	badRead atomic.Uint64 // checksum verification failures observed
	flight  atomic.Pointer[obs.FlightRing]
}

// NewChecksumFile returns a checksummed page File over bf.
func NewChecksumFile(bf ByteFile) *ChecksumFile { return &ChecksumFile{bf: bf} }

// OpenOSFile opens (creating if necessary) the checksummed page file at
// path. This is the standard durable page file.
func OpenOSFile(path string) (*ChecksumFile, error) {
	bf, err := OpenOSByteFile(path)
	if err != nil {
		return nil, err
	}
	return NewChecksumFile(bf), nil
}

// ReadPage implements File, verifying the page checksum.
func (c *ChecksumFile) ReadPage(id PageID, buf []byte) error {
	var slot [slotSize]byte
	if _, err := c.bf.ReadAt(slot[:], int64(id)*slotSize); err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	want := uint32(slot[PageSize])<<24 | uint32(slot[PageSize+1])<<16 |
		uint32(slot[PageSize+2])<<8 | uint32(slot[PageSize+3])
	if got := crc32.ChecksumIEEE(slot[:PageSize]); got != want {
		c.badRead.Add(1)
		c.flight.Load().Record(obs.FlightEvent{Comp: "pager", Kind: "checksum",
			Pos: uint64(id), Note: fmt.Sprintf("stored %08x computed %08x", want, got)})
		return &CorruptPageError{Page: id, Want: want, Got: got}
	}
	copy(buf[:PageSize], slot[:PageSize])
	return nil
}

// ReadPageRaw reads the page without checksum verification, for damage
// assessment (Scrub reports the corruption but may still want the bytes).
func (c *ChecksumFile) ReadPageRaw(id PageID, buf []byte) error {
	if _, err := c.bf.ReadAt(buf[:PageSize], int64(id)*slotSize); err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements File, sealing the page with its checksum.
func (c *ChecksumFile) WritePage(id PageID, buf []byte) error {
	var slot [slotSize]byte
	copy(slot[:PageSize], buf[:PageSize])
	crc := crc32.ChecksumIEEE(slot[:PageSize])
	slot[PageSize] = byte(crc >> 24)
	slot[PageSize+1] = byte(crc >> 16)
	slot[PageSize+2] = byte(crc >> 8)
	slot[PageSize+3] = byte(crc)
	if _, err := c.bf.WriteAt(slot[:], int64(id)*slotSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	return nil
}

// NumPages implements File. A torn final slot (partial page at the tail)
// does not count as a page; WAL replay rewrites and completes it.
func (c *ChecksumFile) NumPages() (uint32, error) {
	size, err := c.bf.Size()
	if err != nil {
		return 0, err
	}
	return uint32(size / slotSize), nil
}

// TruncatePages implements PageTruncator: the file is resized to exactly
// n checksummed slots.
func (c *ChecksumFile) TruncatePages(n uint32) error {
	return c.bf.Truncate(int64(n) * slotSize)
}

// Sync implements File.
func (c *ChecksumFile) Sync() error { return c.bf.Sync() }

// Close implements File.
func (c *ChecksumFile) Close() error { return c.bf.Close() }

// ChecksumFailures returns the number of checksum verification failures
// observed since open.
func (c *ChecksumFile) ChecksumFailures() uint64 { return c.badRead.Load() }

// RegisterMetrics publishes the file's robustness counters on an obs
// registry.
func (c *ChecksumFile) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sim_pager_checksum_failures_total",
		"Page reads rejected because the stored CRC32 did not match the contents.",
		func() float64 { return float64(c.badRead.Load()) })
	c.flight.Store(r.Flight().Component("pager"))
}

// RawPageFile is a page File over byte storage with no checksum trailer
// (pages are packed at id*PageSize). It exists for the fault benchmark's
// checksum-overhead ablation and must not be used for real databases.
type RawPageFile struct {
	bf ByteFile
}

// NewRawPageFile returns an unchecksummed page File over bf.
func NewRawPageFile(bf ByteFile) *RawPageFile { return &RawPageFile{bf: bf} }

// ReadPage implements File.
func (r *RawPageFile) ReadPage(id PageID, buf []byte) error {
	if _, err := r.bf.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements File.
func (r *RawPageFile) WritePage(id PageID, buf []byte) error {
	if _, err := r.bf.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	return nil
}

// NumPages implements File.
func (r *RawPageFile) NumPages() (uint32, error) {
	size, err := r.bf.Size()
	if err != nil {
		return 0, err
	}
	return uint32(size / PageSize), nil
}

// TruncatePages implements PageTruncator.
func (r *RawPageFile) TruncatePages(n uint32) error {
	return r.bf.Truncate(int64(n) * PageSize)
}

// Sync implements File.
func (r *RawPageFile) Sync() error { return r.bf.Sync() }

// Close implements File.
func (r *RawPageFile) Close() error { return r.bf.Close() }

// assert interface conformance at compile time.
var (
	_ File = (*ChecksumFile)(nil)
	_ File = (*RawPageFile)(nil)
	_ File = (*MemFile)(nil)

	_ PageTruncator = (*ChecksumFile)(nil)
	_ PageTruncator = (*RawPageFile)(nil)
	_ PageTruncator = (*MemFile)(nil)

	_ ByteFile = (*OSByteFile)(nil)
	_ ByteFile = (*MemByteFile)(nil)
)
