// Package adds generates a synthetic data-dictionary schema at the scale
// the paper reports for ADDS (§6): "It consists of 13 base classes, 209
// subclasses, 39 EVA-inverse pairs, 530 DVAs and at its deepest, one
// hierarchy represents 5 levels of generalization." The real ADDS schema
// is proprietary; this generator reproduces its published shape so the
// claim is checkable against SchemaSummary.
package adds

import (
	"fmt"
	"strings"
)

// Scale parameters from §6.
const (
	BaseClasses = 13
	Subclasses  = 209
	EVAPairs    = 39
	DVAs        = 530
	MaxDepth    = 5
)

// DDL returns the generated schema text.
func DDL() string {
	var b strings.Builder
	dvasLeft := DVAs

	// Plan the class tree: hierarchy 0 carries a generalization chain of
	// depth 5; the remaining subclasses hang directly under their bases.
	type class struct {
		name     string
		super    string // immediate superclass ("" for bases)
		children []string
	}
	classes := make(map[string]*class)
	var order []string
	add := func(name, super string) {
		c := &class{name: name, super: super}
		classes[name] = c
		order = append(order, name)
		if super != "" {
			classes[super].children = append(classes[super].children, name)
		}
	}
	for i := 0; i < BaseClasses; i++ {
		add(fmt.Sprintf("dd-ent%02d", i), "")
	}
	subs := 0
	// Depth-5 chain in hierarchy 0.
	prev := "dd-ent00"
	for d := 1; d <= MaxDepth; d++ {
		name := fmt.Sprintf("dd-ent00-lvl%d", d)
		add(name, prev)
		prev = name
		subs++
	}
	// Remaining subclasses round-robin under the bases.
	for i := 0; subs < Subclasses; i++ {
		base := fmt.Sprintf("dd-ent%02d", i%BaseClasses)
		add(fmt.Sprintf("%s-sub%03d", base, i/BaseClasses), base)
		subs++
	}

	// DVA allocation: bases get 10 each; subclasses share the rest.
	dvaFor := make(map[string]int)
	for i := 0; i < BaseClasses; i++ {
		name := fmt.Sprintf("dd-ent%02d", i)
		dvaFor[name] = 10
		dvasLeft -= 10
	}
	subNames := order[BaseClasses:]
	for _, n := range subNames {
		dvaFor[n] = 1
		dvasLeft--
	}
	for i := 0; dvasLeft > 0; i++ {
		dvaFor[subNames[i%len(subNames)]]++
		dvasLeft--
	}

	// EVA pairs: three per base class, pointing at the next base.
	evasFor := make(map[string][]string)
	pair := 0
	for i := 0; i < BaseClasses && pair < EVAPairs; i++ {
		from := fmt.Sprintf("dd-ent%02d", i)
		to := fmt.Sprintf("dd-ent%02d", (i+1)%BaseClasses)
		for k := 0; k < 3 && pair < EVAPairs; k++ {
			// A hyphen before a digit lexes as subtraction, so the suffix
			// must be alphabetic.
			suffix := string(rune('a' + k))
			evasFor[from] = append(evasFor[from],
				fmt.Sprintf("rel%02d-%s: %s inverse is rel%02d-%s-back mv", i, suffix, to, i, suffix))
			pair++
		}
	}

	emit := func(name string) {
		c := classes[name]
		if c.super == "" {
			fmt.Fprintf(&b, "Class %s (\n", name)
		} else {
			fmt.Fprintf(&b, "Subclass %s of %s (\n", name, c.super)
		}
		var attrs []string
		for j := 0; j < dvaFor[name]; j++ {
			typ := "string[40]"
			switch j % 4 {
			case 1:
				typ = "integer"
			case 2:
				typ = "number[9,2]"
			case 3:
				typ = "date"
			}
			opts := ""
			if j == 0 && c.super == "" {
				opts = " unique required"
			}
			// Attribute names carry the class name: a subclass may not
			// shadow an inherited attribute (§3.2).
			attrs = append(attrs, fmt.Sprintf("  %s-attr%02d: %s%s", name, j, typ, opts))
		}
		attrs = append(attrs, evasFor[name]...)
		for i, e := range evasFor[name] {
			attrs[len(attrs)-len(evasFor[name])+i] = "  " + e
		}
		if len(c.children) > 0 {
			attrs = append(attrs, fmt.Sprintf("  %s-roles: subrole (%s) mv", name, strings.Join(c.children, ", ")))
		}
		b.WriteString(strings.Join(attrs, ";\n"))
		b.WriteString(" );\n\n")
	}
	for _, name := range order {
		emit(name)
	}
	return b.String()
}
