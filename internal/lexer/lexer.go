// Package lexer implements the tokenizer for SIM DDL and DML source text.
//
// SIM identifiers may contain hyphens (soc-sec-no, courses-enrolled). A '-'
// is taken as part of an identifier when it appears directly between an
// identifier character and a letter with no intervening space; surrounded by
// spaces (or followed by a digit) it is the subtraction operator, matching
// the paper's examples where arithmetic is written with spacing.
package lexer

import (
	"fmt"
	"strings"

	"sim/internal/token"
)

// Lexer scans SIM source text into tokens.
type Lexer struct {
	src  string
	pos  int // byte offset of next rune
	line int
	col  int
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error describes a lexical error with its position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(n int) byte {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentChar(c byte) bool { return isLetter(c) || isDigit(c) }

// skipSpace consumes whitespace and comments. SIM accepts Pascal-style
// (* ... *) comments (used in the paper's example schema) and
// line comments beginning with "--".
func (l *Lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '(' && l.peekAt(1) == '*':
			start := token.Pos{Line: l.line, Col: l.col}
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == ')' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated comment"}
			}
		case c == '-' && l.peekAt(1) == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token. At end of input it returns an EOF token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpace(); err != nil {
		return token.Token{}, err
	}
	pos := token.Pos{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		return l.scanIdent(pos), nil
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}
	l.advance()
	two := func(k token.Kind, text string) (token.Token, error) {
		l.advance()
		return token.Token{Kind: k, Text: text, Pos: pos}, nil
	}
	switch c {
	case ':':
		if l.peek() == '=' {
			return two(token.ASSIGN, ":=")
		}
		return token.Token{Kind: token.COLON, Text: ":", Pos: pos}, nil
	case '=':
		return token.Token{Kind: token.EQ, Text: "=", Pos: pos}, nil
	case '<':
		switch l.peek() {
		case '=':
			return two(token.LE, "<=")
		case '>':
			return two(token.NEQ, "<>")
		}
		return token.Token{Kind: token.LT, Text: "<", Pos: pos}, nil
	case '>':
		if l.peek() == '=' {
			return two(token.GE, ">=")
		}
		return token.Token{Kind: token.GT, Text: ">", Pos: pos}, nil
	case '+':
		return token.Token{Kind: token.PLUS, Text: "+", Pos: pos}, nil
	case '-':
		return token.Token{Kind: token.MINUS, Text: "-", Pos: pos}, nil
	case '*':
		return token.Token{Kind: token.STAR, Text: "*", Pos: pos}, nil
	case '/':
		return token.Token{Kind: token.SLASH, Text: "/", Pos: pos}, nil
	case '(':
		return token.Token{Kind: token.LPAREN, Text: "(", Pos: pos}, nil
	case ')':
		return token.Token{Kind: token.RPAREN, Text: ")", Pos: pos}, nil
	case '[':
		return token.Token{Kind: token.LBRACKET, Text: "[", Pos: pos}, nil
	case ']':
		return token.Token{Kind: token.RBRACKET, Text: "]", Pos: pos}, nil
	case ',':
		return token.Token{Kind: token.COMMA, Text: ",", Pos: pos}, nil
	case ';':
		return token.Token{Kind: token.SEMICOLON, Text: ";", Pos: pos}, nil
	case '.':
		if l.peek() == '.' {
			return two(token.DOTDOT, "..")
		}
		return token.Token{Kind: token.PERIOD, Text: ".", Pos: pos}, nil
	}
	return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.peek()
		if isIdentChar(c) {
			l.advance()
			continue
		}
		// Hyphen glued between an identifier character and a letter is part
		// of the name: soc-sec-no, courses-enrolled.
		if c == '-' && isLetter(l.peekAt(1)) {
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	kind := token.Lookup(text)
	// Hyphenated words are never keywords even if a segment matches one.
	if strings.ContainsRune(text, '-') {
		kind = token.IDENT
	}
	return token.Token{Kind: kind, Text: text, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) (token.Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	kind := token.INT
	// A '.' begins a fraction only when a digit follows; otherwise it is a
	// range operator ('..') or the statement terminator ("= 3.").
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		kind = token.NUMBER
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	return token.Token{Kind: kind, Text: l.src[start:l.pos], Pos: pos}, nil
}

func (l *Lexer) scanString(pos token.Pos) (token.Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		if c == '"' {
			// Doubled quote is an escaped quote.
			if l.peek() == '"' {
				l.advance()
				b.WriteByte('"')
				continue
			}
			return token.Token{Kind: token.STRING, Text: b.String(), Pos: pos}, nil
		}
		if c == '\n' {
			return token.Token{}, &Error{Pos: pos, Msg: "unterminated string literal"}
		}
		b.WriteByte(c)
	}
	return token.Token{}, &Error{Pos: pos, Msg: "unterminated string literal"}
}

// All tokenizes the entire input, returning the tokens up to and including
// the EOF token.
func All(src string) ([]token.Token, error) {
	l := New(src)
	var out []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}
