package lexer

import (
	"testing"

	"sim/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := All(src)
	if err != nil {
		t.Fatalf("All(%q): %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func texts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := All(src)
	if err != nil {
		t.Fatalf("All(%q): %v", src, err)
	}
	out := make([]string, 0, len(toks)-1)
	for _, tk := range toks {
		if tk.Kind != token.EOF {
			out = append(out, tk.Text)
		}
	}
	return out
}

func TestHyphenatedIdentifiers(t *testing.T) {
	got := texts(t, "soc-sec-no of courses-enrolled")
	want := []string{"soc-sec-no", "of", "courses-enrolled"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestHyphenVsMinus(t *testing.T) {
	// Spaced hyphen is subtraction.
	ks := kinds(t, "salary - bonus")
	want := []token.Kind{token.IDENT, token.MINUS, token.IDENT, token.EOF}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("salary - bonus: token %d = %v, want %v (all: %v)", i, ks[i], want[i], ks)
		}
	}
	// Hyphen before a digit is subtraction even unspaced.
	ks = kinds(t, "salary-1")
	want = []token.Kind{token.IDENT, token.MINUS, token.INT, token.EOF}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("salary-1: token %d = %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestHyphenatedNeverKeyword(t *testing.T) {
	toks, err := All("prerequisite-of")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.IDENT {
		t.Errorf("prerequisite-of lexed as %v, want IDENT", toks[0].Kind)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"RETRIEVE", "Retrieve", "retrieve"} {
		ks := kinds(t, src)
		if ks[0] != token.RETRIEVE {
			t.Errorf("%q lexed as %v, want RETRIEVE", src, ks[0])
		}
	}
}

func TestNumbersAndRanges(t *testing.T) {
	ks := kinds(t, "1001..39999")
	want := []token.Kind{token.INT, token.DOTDOT, token.INT, token.EOF}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("range: token %d = %v, want %v", i, ks[i], want[i])
		}
	}
	ks = kinds(t, "1.1 * salary")
	want = []token.Kind{token.NUMBER, token.STAR, token.IDENT, token.EOF}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("number: token %d = %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestStringLiteral(t *testing.T) {
	toks, err := All(`"Algebra I"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.STRING || toks[0].Text != "Algebra I" {
		t.Errorf("got %v %q", toks[0].Kind, toks[0].Text)
	}
	// Doubled quote escapes.
	toks, err = All(`"say ""hi"""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != `say "hi"` {
		t.Errorf("escaped quote: got %q", toks[0].Text)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := All(`"open`); err == nil {
		t.Error("unterminated string did not fail")
	}
	if _, err := All("\"newline\nin string\""); err == nil {
		t.Error("newline in string did not fail")
	}
}

func TestComments(t *testing.T) {
	got := texts(t, "(* a comment *) name -- trailing\nof")
	if len(got) != 2 || got[0] != "name" || got[1] != "of" {
		t.Fatalf("comments: got %v", got)
	}
}

func TestUnterminatedComment(t *testing.T) {
	if _, err := All("(* never closed"); err == nil {
		t.Error("unterminated comment did not fail")
	}
}

func TestOperators(t *testing.T) {
	ks := kinds(t, ":= <= >= <> = < > + - * / ( ) [ ] , ; : .")
	want := []token.Kind{
		token.ASSIGN, token.LE, token.GE, token.NEQ, token.EQ, token.LT,
		token.GT, token.PLUS, token.MINUS, token.STAR, token.SLASH,
		token.LPAREN, token.RPAREN, token.LBRACKET, token.RBRACKET,
		token.COMMA, token.SEMICOLON, token.COLON, token.PERIOD, token.EOF,
	}
	if len(ks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(ks), ks, len(want))
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := All("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestIllegalCharacter(t *testing.T) {
	if _, err := All("a @ b"); err == nil {
		t.Error("illegal character did not fail")
	}
}

func TestNEQKeyword(t *testing.T) {
	ks := kinds(t, "a neq b")
	if ks[1] != token.NEQKW {
		t.Errorf("neq lexed as %v", ks[1])
	}
}
