// Package ast defines the abstract syntax of SIM schema definitions (DDL)
// and data manipulation statements (DML).
package ast

import (
	"strings"

	"sim/internal/token"
	"sim/internal/value"
)

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// Schema is a parsed sequence of DDL declarations.
type Schema struct {
	Decls []Decl
}

// Decl is a DDL declaration: Type, Class, Subclass or Verify.
type Decl interface {
	Node
	declNode()
}

// TypeDecl declares a named user type: Type degree = symbolic (BS, MBA, ...).
type TypeDecl struct {
	P    token.Pos
	Name string
	Def  TypeExpr
}

// ClassDecl declares a base class or subclass with its immediate attributes.
type ClassDecl struct {
	P      token.Pos
	Name   string
	Supers []string // empty for a base class
	Attrs  []AttrDecl
}

// VerifyDecl declares a class integrity assertion:
// Verify v1 on Student assert <expr> else "message".
type VerifyDecl struct {
	P       token.Pos
	Name    string
	Class   string
	Assert  Expr
	ElseMsg string
}

func (d *TypeDecl) Pos() token.Pos   { return d.P }
func (d *ClassDecl) Pos() token.Pos  { return d.P }
func (d *VerifyDecl) Pos() token.Pos { return d.P }

func (*TypeDecl) declNode()   {}
func (*ClassDecl) declNode()  {}
func (*VerifyDecl) declNode() {}

// AttrOptions collects the attribute options of §3.2.1.
type AttrOptions struct {
	Required bool
	Unique   bool
	MV       bool
	Distinct bool
	Max      int // 0 means unbounded
}

// AttrDecl declares one immediate attribute of a class. For an EVA the
// declared type is a NamedType naming the range class and Inverse names the
// inverse EVA; for a DVA Inverse is empty. A derived attribute (§6 "work
// under progress … derived attributes") carries its defining expression
// instead of a type.
type AttrDecl struct {
	P       token.Pos
	Name    string
	Type    TypeExpr
	Inverse string // "inverse is <name>"; empty for DVAs
	Derived Expr   // non-nil for derived attributes
	Options AttrOptions
}

func (a *AttrDecl) Pos() token.Pos { return a.P }

// TypeExpr is the syntax of a declared type.
type TypeExpr interface {
	Node
	typeNode()
}

// NamedType refers to a user type or a class (making the attribute an EVA).
type NamedType struct {
	P    token.Pos
	Name string
}

// IntType is integer with optional permitted ranges: integer (1..20, 60001..99999).
type IntType struct {
	P      token.Pos
	Ranges [][2]int64 // inclusive; empty means unrestricted
}

// NumberType is a fixed-point numeric: number[9,2].
type NumberType struct {
	P                token.Pos
	Precision, Scale int
}

// StringType is a bounded string: string[30]. Len 0 means unbounded.
type StringType struct {
	P   token.Pos
	Len int
}

// DateType is the calendar date type.
type DateType struct{ P token.Pos }

// BoolType is the boolean type.
type BoolType struct{ P token.Pos }

// RealType is an unconstrained floating numeric ("real").
type RealType struct{ P token.Pos }

// SymbolicType is an enumerated type: symbolic (BS, MBA, MS, PHD).
type SymbolicType struct {
	P      token.Pos
	Labels []string
}

// SubroleType declares a system-maintained subrole attribute whose value
// set names the immediate subclasses: subrole (student, instructor).
type SubroleType struct {
	P       token.Pos
	Classes []string
}

func (t *NamedType) Pos() token.Pos    { return t.P }
func (t *IntType) Pos() token.Pos      { return t.P }
func (t *NumberType) Pos() token.Pos   { return t.P }
func (t *StringType) Pos() token.Pos   { return t.P }
func (t *DateType) Pos() token.Pos     { return t.P }
func (t *BoolType) Pos() token.Pos     { return t.P }
func (t *RealType) Pos() token.Pos     { return t.P }
func (t *SymbolicType) Pos() token.Pos { return t.P }
func (t *SubroleType) Pos() token.Pos  { return t.P }

func (*NamedType) typeNode()    {}
func (*IntType) typeNode()      {}
func (*NumberType) typeNode()   {}
func (*StringType) typeNode()   {}
func (*DateType) typeNode()     {}
func (*BoolType) typeNode()     {}
func (*RealType) typeNode()     {}
func (*SymbolicType) typeNode() {}
func (*SubroleType) typeNode()  {}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// Stmt is a DML statement.
type Stmt interface {
	Node
	stmtNode()
}

// OutputMode selects the output structuring of a Retrieve (§4.5).
type OutputMode int

// Output modes.
const (
	OutputTable OutputMode = iota
	OutputTableDistinct
	OutputStructure
)

func (m OutputMode) String() string {
	switch m {
	case OutputTableDistinct:
		return "TABLE DISTINCT"
	case OutputStructure:
		return "STRUCTURE"
	}
	return "TABLE"
}

// PerspectiveRef names one perspective class, optionally with a reference
// variable for multi-perspective queries: From student s1, student s2.
type PerspectiveRef struct {
	P     token.Pos
	Class string
	Var   string // optional
}

// RetrieveStmt is [FROM ...] RETRIEVE ... [ORDER BY ...] [WHERE ...].
type RetrieveStmt struct {
	P            token.Pos
	Perspectives []PerspectiveRef // empty: inferred from the first target path
	Mode         OutputMode
	Targets      []Expr
	OrderBy      []Expr
	Where        Expr // nil if absent
}

// AssignMode distinguishes plain assignment from INCLUDE/EXCLUDE on
// multi-valued attributes (§4.8).
type AssignMode int

// Assignment modes.
const (
	AssignSet AssignMode = iota
	AssignInclude
	AssignExclude
)

func (m AssignMode) String() string {
	switch m {
	case AssignInclude:
		return "include"
	case AssignExclude:
		return "exclude"
	}
	return "set"
}

// Assign is one element of an assignment list. For DVA assignment Value is
// a scalar expression. For EVA assignment the paper's form is
//
//	<eva> := [INCLUDE|EXCLUDE] <object name> WITH ( <boolean expn> )
//
// captured by Entity. Assigning NULL to an EVA clears it.
type Assign struct {
	P      token.Pos
	Attr   string
	Mode   AssignMode
	Value  Expr       // scalar RHS; nil when Entity is set
	Entity *EntitySel // EVA RHS; nil for scalar assignment
}

// EntitySel selects entities of a class (or of the target EVA itself, for
// EXCLUDE) by a boolean expression: course with (title = "Algebra I").
type EntitySel struct {
	P     token.Pos
	Name  string // class name, or the EVA's own name for exclusions
	Where Expr   // nil means all
}

// InsertStmt is INSERT <class> [FROM <class> WHERE <expn>] [(assigns)].
type InsertStmt struct {
	P         token.Pos
	Class     string
	FromClass string // empty when no FROM clause
	FromWhere Expr
	Assigns   []Assign
}

// ModifyStmt is MODIFY <class> (assigns) WHERE <expn>.
type ModifyStmt struct {
	P       token.Pos
	Class   string
	Assigns []Assign
	Where   Expr
}

// DeleteStmt is DELETE <class> WHERE <expn>.
type DeleteStmt struct {
	P     token.Pos
	Class string
	Where Expr
}

// BeginStmt is BEGIN [TRANSACTION]: open an explicit transaction. Later
// statements join it until COMMIT or ROLLBACK.
type BeginStmt struct {
	P token.Pos
}

// CommitStmt is COMMIT [TRANSACTION]: durably apply the open transaction.
type CommitStmt struct {
	P token.Pos
}

// RollbackStmt is ROLLBACK [TRANSACTION]: discard the open transaction.
type RollbackStmt struct {
	P token.Pos
}

func (s *RetrieveStmt) Pos() token.Pos { return s.P }
func (s *InsertStmt) Pos() token.Pos   { return s.P }
func (s *ModifyStmt) Pos() token.Pos   { return s.P }
func (s *DeleteStmt) Pos() token.Pos   { return s.P }
func (s *BeginStmt) Pos() token.Pos    { return s.P }
func (s *CommitStmt) Pos() token.Pos   { return s.P }
func (s *RollbackStmt) Pos() token.Pos { return s.P }

func (*RetrieveStmt) stmtNode() {}
func (*InsertStmt) stmtNode()   {}
func (*ModifyStmt) stmtNode()   {}
func (*DeleteStmt) stmtNode()   {}
func (*BeginStmt) stmtNode()    {}
func (*CommitStmt) stmtNode()   {}
func (*RollbackStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is a DML expression.
type Expr interface {
	Node
	exprNode()
}

// PathStep is one element of a qualification chain. Transitive marks
// transitive(<eva>); As carries role conversion (teaching-load of student
// AS teaching-assistant — the AS attaches to the step it follows).
type PathStep struct {
	Name       string
	As         string // role conversion target class; empty if none
	Transitive bool
	Inverse    bool // INVERSE(<eva>) form
}

// Path is a qualification: Steps are ordered outermost-first, i.e.
// "Name of Advisor of Student" is [Name, Advisor, Student]. A bare
// identifier is a Path of one step.
type Path struct {
	P     token.Pos
	Steps []PathStep
}

func (p *Path) Pos() token.Pos { return p.P }
func (*Path) exprNode()        {}

// String renders the path in DML syntax.
func (p *Path) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteString(" of ")
		}
		if s.Transitive {
			b.WriteString("transitive(")
		}
		if s.Inverse {
			b.WriteString("inverse(")
		}
		b.WriteString(s.Name)
		if s.Inverse {
			b.WriteString(")")
		}
		if s.Transitive {
			b.WriteString(")")
		}
		if s.As != "" {
			b.WriteString(" as ")
			b.WriteString(s.As)
		}
	}
	return b.String()
}

// Lit is a literal value.
type Lit struct {
	P   token.Pos
	Val value.Value
}

func (l *Lit) Pos() token.Pos { return l.P }
func (*Lit) exprNode()        {}

// BinaryOp enumerates binary operators in expressions.
type BinaryOp int

// Binary operators.
const (
	OpAnd BinaryOp = iota
	OpOr
	OpEQ
	OpNEQ
	OpLT
	OpLE
	OpGT
	OpGE
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpLike
)

func (o BinaryOp) String() string {
	return [...]string{"and", "or", "=", "neq", "<", "<=", ">", ">=", "+", "-", "*", "/", "like"}[o]
}

// Binary is a binary operation.
type Binary struct {
	P    token.Pos
	Op   BinaryOp
	L, R Expr
}

func (b *Binary) Pos() token.Pos { return b.P }
func (*Binary) exprNode()        {}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNot UnaryOp = iota
	OpNeg
)

// Unary is NOT <expr> or -<expr>.
type Unary struct {
	P  token.Pos
	Op UnaryOp
	X  Expr
}

func (u *Unary) Pos() token.Pos { return u.P }
func (*Unary) exprNode()        {}

// AggFunc enumerates aggregate functions (§4.6).
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[f]
}

// Agg is an aggregate with delimited scope: AVG(Salary of
// Instructors-employed) of Department. Inner is the path inside the
// parentheses; Outer the qualification following them (may be empty).
// Binding of names inside Inner is broken from the enclosing query (§4.4).
type Agg struct {
	P        token.Pos
	Func     AggFunc
	Distinct bool
	Inner    *Path
	Outer    []PathStep
}

func (a *Agg) Pos() token.Pos { return a.P }
func (*Agg) exprNode()        {}

// Quant enumerates quantifiers.
type Quant int

// Quantifiers.
const (
	QSome Quant = iota
	QAll
	QNo
)

func (q Quant) String() string { return [...]string{"some", "all", "no"}[q] }

// Quantified wraps a path for use as a comparison operand:
// assigned-department neq some(major-department of advisees). Like Agg its
// binding is broken, and it may carry a trailing outer qualification.
type Quantified struct {
	P     token.Pos
	Quant Quant
	Inner *Path
	Outer []PathStep
}

func (q *Quantified) Pos() token.Pos { return q.P }
func (*Quantified) exprNode()        {}

// Isa tests role membership: <path> ISA <class> (§4.9 example 7).
type Isa struct {
	P      token.Pos
	Entity *Path
	Class  string
}

func (i *Isa) Pos() token.Pos { return i.P }
func (*Isa) exprNode()        {}
