// Package university holds the UNIVERSITY example schema of the paper's
// Section 7 (Figure 2), shared by tests, examples and the benchmark
// harness.
package university

// DDL is the paper's example schema, transcribed verbatim (§7).
const DDL = `
(* The schema diagram is in Figure 2 of the paper. *)
Type degree = symbolic (BS, MBA, MS, PHD);
Type id-number = integer (1001..39999, 60001..99999);

Class Person (
  name: string[30];
  soc-sec-no: integer, unique, required;
  birthdate: date;
  spouse: person inverse is spouse;
  profession: subrole (student, instructor) mv );

Subclass Student of Person (
  student-nbr: id-number;
  advisor: instructor inverse is advisees;
  instructor-status: subrole (teaching-assistant);
  courses-enrolled: course inverse is students-enrolled mv (distinct);
  major-department: department );

Verify v1 on Student
  assert sum(credits of courses-enrolled) >= 12
  else "student is taking too few credits";

Subclass Instructor of Person (
  employee-nbr: id-number unique required;
  salary: number[9,2];
  bonus: number[9,2];
  student-status: subrole (teaching-assistant);
  advisees: student inverse is advisor mv (max 10);
  courses-taught: course inverse is teachers mv (max 3, distinct);
  assigned-department: department inverse is instructors-employed );

Verify v2 on Instructor
  assert salary + bonus < 100000
  else "instructor makes too much money";

Subclass Teaching-assistant of Student and Instructor (
  teaching-load: integer (1..20) );

Class Course (
  course-no: integer (1..9999) unique required;
  title: string[30] required;
  credits: integer (1..15) required;
  students-enrolled: student inverse is courses-enrolled mv;
  teachers: instructor inverse is courses-taught mv (max 7);
  prerequisites: course inverse is prerequisite-of mv;
  prerequisite-of: course inverse is prerequisites mv );

Class Department (
  dept-nbr: integer (100..999) required unique;
  name: string[30] required;
  instructors-employed: instructor inverse is assigned-department mv;
  courses-offered: course mv );
`
