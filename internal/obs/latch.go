package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Latch contention profiling. The hot synchronization points of the
// engine — the store write latch, the buffer-pool shard locks, the WAL
// group-commit leader hand-off — each own a Latch and report every
// acquisition: uncontended acquisitions pay one atomic add, contended
// ones additionally record the wait in a histogram. The profiles surface
// as sim_latch_<name>_* metrics and the \hot view, and are the baseline
// the MVCC refactor (ROADMAP) will be judged against: they name which
// latches serialize the flat ~320 qps T10 ceiling.

// Latch accumulates acquisition and wait statistics for one named lock.
// The zero value is not usable; embed a named Latch per lock.
type Latch struct {
	name      string
	acq       atomic.Uint64
	contended atomic.Uint64
	wait      Histogram // waits observed on the contended path only
}

// NewLatch returns a profile for the latch named name (snake_case; it
// becomes part of the metric names).
func NewLatch(name string) *Latch { return &Latch{name: name} }

// Acquired records one uncontended acquisition.
func (l *Latch) Acquired() { l.acq.Add(1) }

// Waited records one contended acquisition that blocked for d.
func (l *Latch) Waited(d time.Duration) {
	l.acq.Add(1)
	l.contended.Add(1)
	l.wait.Observe(d)
}

// Register exposes the profile as sim_latch_<name>_acquisitions_total,
// sim_latch_<name>_contended_total and sim_latch_<name>_wait_seconds,
// and hooks the owned atomics into the registry's reset scope.
func (l *Latch) Register(r *Registry, help string) {
	prefix := "sim_latch_" + l.name
	r.CounterFunc(prefix+"_acquisitions_total", help+" (acquisitions)",
		func() float64 { return float64(l.acq.Load()) })
	r.CounterFunc(prefix+"_contended_total", help+" (contended acquisitions)",
		func() float64 { return float64(l.contended.Load()) })
	r.HistogramVar(&l.wait, prefix+"_wait_seconds", help+" (contended wait time)")
	r.OnReset(func() {
		l.acq.Store(0)
		l.contended.Store(0)
		// The wait histogram is registry-owned via HistogramVar and already
		// zeroed by ResetCounters.
	})
}

// RenderHot formats the contention profile from a registry snapshot: one
// line per sim_latch_* family, hottest (largest total wait) first — the
// body of the \hot view.
func RenderHot(snap map[string]float64) string {
	type family struct {
		name           string
		acq, contended float64
		waitSum        float64
		waitCount      float64
	}
	var fams []family
	var conflicts []string
	for name := range snap {
		if f, ok := strings.CutSuffix(name, "_acquisitions_total"); ok && strings.HasPrefix(f, "sim_latch_") {
			short := strings.TrimPrefix(f, "sim_latch_")
			fams = append(fams, family{
				name:      short,
				acq:       snap[name],
				contended: snap[f+"_contended_total"],
				waitSum:   snap[f+"_wait_seconds_sum"],
				waitCount: snap[f+"_wait_seconds_count"],
			})
		}
		if strings.HasPrefix(name, "sim_latch_class_") && strings.HasSuffix(name, "_conflicts_total") && snap[name] > 0 {
			class := strings.TrimSuffix(strings.TrimPrefix(name, "sim_latch_class_"), "_conflicts_total")
			conflicts = append(conflicts, fmt.Sprintf("%s=%d", class, int64(snap[name])))
		}
	}
	if len(fams) == 0 {
		return "no latch profiles registered\n"
	}
	sort.Slice(fams, func(i, j int) bool {
		if fams[i].waitSum != fams[j].waitSum {
			return fams[i].waitSum > fams[j].waitSum
		}
		return fams[i].name < fams[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %8s %12s %12s\n",
		"latch", "acq", "contended", "cont%", "wait-total", "wait-avg")
	for _, f := range fams {
		pct := 0.0
		if f.acq > 0 {
			pct = 100 * f.contended / f.acq
		}
		avg := time.Duration(0)
		if f.waitCount > 0 {
			avg = time.Duration(f.waitSum / f.waitCount * float64(time.Second))
		}
		fmt.Fprintf(&b, "%-16s %12d %12d %7.2f%% %12s %12s\n",
			f.name, int64(f.acq), int64(f.contended), pct,
			fmtDur(time.Duration(f.waitSum*float64(time.Second))), fmtDur(avg))
	}
	if len(conflicts) > 0 {
		sort.Strings(conflicts)
		fmt.Fprintf(&b, "class-latch conflicts: %s\n", strings.Join(conflicts, " "))
	}
	if _, ok := snap["sim_mvcc_published_stamp"]; ok {
		fmt.Fprintf(&b, "mvcc: published=%d oldest-pinned=%d pinned-views=%d live-versions=%d entity-conflicts=%d version-errors=%d\n",
			int64(snap["sim_mvcc_published_stamp"]),
			int64(snap["sim_mvcc_oldest_pinned_stamp"]),
			int64(snap["sim_mvcc_pinned_views"]),
			int64(snap["sim_mvcc_live_versions"]),
			int64(snap["sim_conflict_entities"]),
			int64(snap["sim_mvcc_version_errors_total"]))
	}
	return b.String()
}

// Request/trace IDs. A request ID is minted by the client, rides every
// request frame, and names the full lifecycle of a write: the server
// session, the transaction, the group-commit flush, the replication
// group, and the follower's apply all record it. 0 means "no ID".

// idCounter seeds request IDs: a random 32-bit prefix (per process) with
// a 32-bit counter, so IDs from concurrent clients rarely collide while
// staying cheap to mint.
var idCounter = func() *atomic.Uint64 {
	var c atomic.Uint64
	var seed [4]byte
	rand.Read(seed[:])
	c.Store(uint64(binary.BigEndian.Uint32(seed[:])) << 32)
	return &c
}()

// NewRequestID mints a nonzero request ID.
func NewRequestID() uint64 {
	for {
		if id := idCounter.Add(1); id != 0 {
			return id
		}
	}
}

// ctxKey carries a request ID through a context.
type ctxKey struct{}

// WithRequestID returns ctx carrying id.
func WithRequestID(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the request ID carried by ctx, or 0.
func RequestID(ctx context.Context) uint64 {
	id, _ := ctx.Value(ctxKey{}).(uint64)
	return id
}
