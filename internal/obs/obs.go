// Package obs is the observability layer of the reproduction: a
// zero-dependency metrics registry (atomic counters, gauges and lock-cheap
// latency histograms), per-query trace spans with a per-query-tree-node
// breakdown, and a slow-query log. The paper's §5 makes unmeasured
// performance claims about physical mapping, LUC caching and query-tree
// evaluation; every engine component (pager, LUC caches, plan cache,
// executor, WAL, server) registers its counters here so those claims can
// be measured instead of guessed — through sim.Stats, Prometheus text
// exposition (/metrics on simserve), expvar, and EXPLAIN ANALYZE.
//
// Metric naming convention: sim_<component>_<what>[_total|_seconds|_bytes].
// Monotonic counts end in _total, latency histograms in _seconds, sizes in
// _bytes; everything else is a gauge.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; Reset is for benchmark phase boundaries only.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// numBuckets is the number of finite histogram bounds.
const numBuckets = 13

// histBuckets are the upper bounds (seconds) of the latency histogram:
// powers of 4 from 1µs to ~17s, plus an implicit +Inf. One query tree node
// visit lands near the bottom, a cold scan over a large perspective near
// the top.
var histBuckets = func() []float64 {
	b := make([]float64, numBuckets)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// Histogram is a lock-free latency histogram with fixed exponential
// buckets. Observe is a few atomic adds; snapshots never block writers.
type Histogram struct {
	buckets [numBuckets + 1]atomic.Uint64 // one per bound + overflow
	count   atomic.Uint64
	sumNS   atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(histBuckets) && s > histBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumNS.Store(0)
}

// metricKind distinguishes exposition types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// metric is one registered metric.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	h    *Histogram
	fn   func() float64
}

// Registry is a named collection of metrics. Registration is idempotent
// by name (the schema-rebuild path re-registers executor counters), and
// collection never blocks the hot-path atomics.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*metric
	ordered []*metric
	resets  []func()
	flight  *Flight
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric), flight: NewFlight()}
}

// Flight returns the registry's flight recorder. Components that register
// metrics grab it here so one plumbing path carries both. Nil-safe: a nil
// registry returns a nil recorder, whose methods are all no-ops.
func (r *Registry) Flight() *Flight {
	if r == nil {
		return nil
	}
	return r.flight
}

// OnReset arranges for fn to run after ResetCounters zeroes the owned
// metrics. Components whose counters are func-backed (they keep their own
// atomics — the replication publisher and follower, latch profiles)
// register a zeroing hook here so Database.ResetStats covers them too.
func (r *Registry) OnReset(fn func()) {
	r.mu.Lock()
	r.resets = append(r.resets, fn)
	r.mu.Unlock()
}

// register installs m. Owned metrics (Counter, Histogram) are idempotent
// by name — the first registration wins, so the schema-rebuild path keeps
// accumulating into one counter. Func-backed metrics are replaced — a
// rebuilt component re-registers readers over its fresh state.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.name]; ok {
		if m.fn != nil && prev.kind == m.kind {
			prev.fn = m.fn
		}
		return prev
	}
	r.byName[m.name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter registered under name, creating it when
// absent. Repeated calls with one name share one counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, kind: kindCounter, c: &Counter{}})
	return m.c
}

// CounterFunc registers a monotonic counter whose value is read from fn at
// collection time — for components that already keep their own atomics.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge read from fn at collection time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram returns the latency histogram registered under name, creating
// it when absent.
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.register(&metric{name: name, help: help, kind: kindHistogram, h: &Histogram{}})
	return m.h
}

// HistogramVar registers an externally owned histogram under name — for
// components that observe into their own Histogram on paths that must not
// take the registry lock. First registration wins, like Histogram.
func (r *Registry) HistogramVar(h *Histogram, name, help string) {
	r.register(&metric{name: name, help: help, kind: kindHistogram, h: h})
}

// ResetCounters zeroes every registry-owned Counter and Histogram, then
// runs the OnReset hooks. Other func-backed metrics read external state
// and are reset by their owning component (see Database.ResetStats for
// the composed reset).
func (r *Registry) ResetCounters() {
	r.mu.RLock()
	for _, m := range r.ordered {
		switch m.kind {
		case kindCounter:
			m.c.Reset()
		case kindHistogram:
			m.h.Reset()
		}
	}
	hooks := make([]func(), len(r.resets))
	copy(hooks, r.resets)
	r.mu.RUnlock()
	// Hooks run outside the lock: a hook may touch the registry.
	for _, fn := range hooks {
		fn()
	}
}

// Snapshot returns every metric's current value, flattened: histograms
// contribute <name>_count and <name>_sum entries. The expvar endpoint and
// sim.Stats both read this.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.ordered)+4)
	for _, m := range r.ordered {
		switch m.kind {
		case kindCounter:
			out[m.name] = float64(m.c.Load())
		case kindCounterFunc, kindGaugeFunc:
			out[m.name] = m.fn()
		case kindHistogram:
			out[m.name+"_count"] = float64(m.h.Count())
			out[m.name+"_sum"] = m.h.Sum().Seconds()
		}
	}
	return out
}

// Get returns the snapshot value of one metric (0 when absent).
func (r *Registry) Get(name string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.byName[name]
	if !ok {
		return 0
	}
	switch m.kind {
	case kindCounter:
		return float64(m.c.Load())
	case kindCounterFunc, kindGaugeFunc:
		return m.fn()
	case kindHistogram:
		return float64(m.h.Count())
	}
	return 0
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// The read lock is held while formatting: hot-path Observe/Add touch
	// only atomics, never this lock, and fn pointers may be replaced by a
	// concurrent re-registration.
	r.mu.RLock()
	defer r.mu.RUnlock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", m.name, m.name, fmtFloat(float64(m.c.Load())))
		case kindCounterFunc:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", m.name, m.name, fmtFloat(m.fn()))
		case kindGaugeFunc:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", m.name, m.name, fmtFloat(m.fn()))
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", m.name)
			// Read buckets once; cumulative counts must be non-decreasing,
			// and +Inf must equal _count, so derive all from one pass.
			cum := uint64(0)
			for i, bound := range histBuckets {
				cum += m.h.buckets[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, fmtFloat(bound), cum)
			}
			cum += m.h.buckets[len(histBuckets)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, fmtFloat(m.h.Sum().Seconds()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeHelp escapes HELP text per the 0.0.4 exposition format: backslash
// and newline become \\ and \n so the line structure survives arbitrary
// help strings.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func fmtFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
