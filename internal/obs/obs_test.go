package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndFuncs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name returns the same counter (schema rebuilds re-register).
	if again := r.Counter("sim_test_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	var external uint64 = 42
	r.CounterFunc("sim_test_ext_total", "func-backed", func() float64 { return float64(external) })
	r.GaugeFunc("sim_test_gauge", "a gauge", func() float64 { return 7 })
	snap := r.Snapshot()
	if snap["sim_test_total"] != 5 || snap["sim_test_ext_total"] != 42 || snap["sim_test_gauge"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	if got := r.Get("sim_test_ext_total"); got != 42 {
		t.Fatalf("Get = %v, want 42", got)
	}
	r.ResetCounters()
	if c.Load() != 0 {
		t.Fatal("ResetCounters left a counter nonzero")
	}
	if r.Get("sim_test_ext_total") != 42 {
		t.Fatal("ResetCounters touched a func-backed metric")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sim_test_seconds", "latencies")
	for _, d := range []time.Duration{500 * time.Nanosecond, 3 * time.Microsecond,
		2 * time.Millisecond, 30 * time.Second} {
		h.Observe(d)
	}
	h.Observe(-time.Second) // clamped to 0
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() <= 30*time.Second {
		t.Fatalf("sum = %v, want > 30s", h.Sum())
	}
}

// TestPrometheusFormat checks the text exposition parses line by line and
// the histogram invariants hold (cumulative buckets, +Inf == count).
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_a_total", "with\nnewline help").Add(3)
	r.GaugeFunc("sim_b", "gauge", func() float64 { return 1.5 })
	h := r.Histogram("sim_lat_seconds", "latency")
	h.Observe(2 * time.Microsecond)
	h.Observe(10 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	var bucketCum []uint64
	var infVal, countVal uint64
	seenTypes := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", text)
		}
		if strings.HasPrefix(line, "# HELP ") {
			if strings.Contains(line, "\n") {
				t.Fatal("help text contains a newline")
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			seenTypes[parts[2]] = parts[3]
			continue
		}
		// Sample line: name{labels} value — value must parse as a float.
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		val, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := line[:idx]
		switch {
		case strings.HasPrefix(name, "sim_lat_seconds_bucket{le=\"+Inf\"}"):
			infVal = uint64(val)
		case strings.HasPrefix(name, "sim_lat_seconds_bucket"):
			bucketCum = append(bucketCum, uint64(val))
		case name == "sim_lat_seconds_count":
			countVal = uint64(val)
		}
	}
	if seenTypes["sim_a_total"] != "counter" || seenTypes["sim_b"] != "gauge" || seenTypes["sim_lat_seconds"] != "histogram" {
		t.Fatalf("metric types = %v", seenTypes)
	}
	for i := 1; i < len(bucketCum); i++ {
		if bucketCum[i] < bucketCum[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", bucketCum)
		}
	}
	if infVal != countVal || countVal != 2 {
		t.Fatalf("+Inf bucket %d != count %d (want 2)", infVal, countVal)
	}
}

// TestRegistryRace hammers one registry from many goroutines: counters,
// histograms, re-registration, snapshots and exposition concurrently.
// Run with -race.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("sim_race_total", "shared").Inc()
				r.Counter(fmt.Sprintf("sim_race_%d_total", g), "private").Add(2)
				r.Histogram("sim_race_seconds", "shared").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(&strings.Builder{})
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("sim_race_total", "shared").Load(); got != 8*500 {
		t.Fatalf("shared counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("sim_race_seconds", "shared").Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(10 * time.Millisecond)
	if l.Observe("fast", time.Millisecond, 1, 0) {
		t.Fatal("fast query recorded")
	}
	for i := 0; i < slowLogCap+10; i++ {
		if !l.Observe(fmt.Sprintf("q%d", i), 20*time.Millisecond, i, 7) {
			t.Fatal("slow query not recorded")
		}
	}
	if l.Total() != slowLogCap+10 {
		t.Fatalf("total = %d, want %d", l.Total(), slowLogCap+10)
	}
	es := l.Entries()
	if len(es) != slowLogCap {
		t.Fatalf("retained = %d, want %d", len(es), slowLogCap)
	}
	if es[0].Statement != "q10" || es[len(es)-1].Statement != fmt.Sprintf("q%d", slowLogCap+9) {
		t.Fatalf("ring order wrong: first=%s last=%s", es[0].Statement, es[len(es)-1].Statement)
	}
	var disabled *SlowLog
	if disabled.Observe("x", time.Hour, 0, 0) || disabled.Total() != 0 || disabled.Entries() != nil {
		t.Fatal("nil SlowLog misbehaved")
	}
}

func TestTraceRender(t *testing.T) {
	tr := &QueryTrace{
		Statement: "From student Retrieve name.",
		Parse:     10 * time.Microsecond,
		Plan:      20 * time.Microsecond,
		Exec:      2 * time.Millisecond,
		Total:     2030 * time.Microsecond,
		Rows:      4,
		Instances: 9,
		Workers:   2,
		Nodes: []NodeTrace{
			{Depth: 0, Label: "student", Type: "TYPE 1", Access: "scan student", Instances: 4, Entities: 4, Wall: 2 * time.Millisecond},
			{Depth: 1, Label: "advisor of student", Type: "TYPE 3", Instances: 5, Entities: 3, Wall: time.Millisecond},
		},
		WorkerSpans: []WorkerTrace{{Chunk: 2, Instances: 5, Rows: 2, Wall: time.Millisecond}},
	}
	out := tr.Render()
	for _, want := range []string{"scan student", "rows=4", "TYPE 3", "entities=3",
		"parse 10µs", "exec 2.000ms", "worker 0", "rows: 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
