package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Help text with backslashes and newlines must survive as a single HELP
// line per the 0.0.4 exposition format.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_test_escape_total", "line one\nline two with a \\ backslash")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `# HELP sim_test_escape_total line one\nline two with a \\ backslash`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped HELP line missing:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP") && strings.Contains(line, "line two") && !strings.Contains(line, `\n`) {
			t.Fatalf("raw newline leaked into HELP: %q", line)
		}
	}
}

func TestEscapeHelpEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"", ""},
		{"a\nb", `a\nb`},
		{`a\b`, `a\\b`},
		{"\\\n", `\\\n`},
		{"tail\n", `tail\n`},
	}
	for _, c := range cases {
		if got := escapeHelp(c.in); got != c.want {
			t.Errorf("escapeHelp(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Non-finite values from func-backed metrics must render as the spec's
// NaN/+Inf/-Inf tokens, one sample per line.
func TestNonFiniteExposition(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("sim_test_nan", "a NaN gauge", func() float64 { return math.NaN() })
	r.GaugeFunc("sim_test_neginf", "a -Inf gauge", func() float64 { return math.Inf(-1) })
	r.CounterFunc("sim_test_posinf_total", "a +Inf counter", func() float64 { return math.Inf(+1) })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"sim_test_nan NaN\n", "sim_test_neginf -Inf\n", "sim_test_posinf_total +Inf\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be exactly "name value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if n := len(strings.Fields(line)); n != 2 {
			t.Errorf("sample line has %d fields: %q", n, line)
		}
	}
}

func TestFmtFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(+1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0, "0"},
		{1.5, "1.5"},
	}
	for _, c := range cases {
		if got := fmtFloat(c.in); got != c.want {
			t.Errorf("fmtFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// A histogram whose sum overflows to +Inf must still expose a parseable
// _sum line (the token +Inf), and its bucket counts must stay cumulative
// with +Inf equal to _count.
func TestHistogramInfSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sim_test_hist_seconds", "histogram with a huge sum")
	// Push the nanosecond sum past what float64 seconds represents finitely
	// is impossible via Observe alone, so drive the rendering path with the
	// largest observable durations and verify the output stays well-formed.
	for i := 0; i < 4; i++ {
		h.Observe(time.Duration(math.MaxInt64 / 4))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `sim_test_hist_seconds_bucket{le="+Inf"} 4`) {
		t.Fatalf("+Inf bucket must equal count:\n%s", out)
	}
	if !strings.Contains(out, "sim_test_hist_seconds_count 4") {
		t.Fatalf("count line wrong:\n%s", out)
	}
	if !strings.Contains(out, "sim_test_hist_seconds_sum ") {
		t.Fatalf("sum line missing:\n%s", out)
	}
}

// Concurrent Observe against WritePrometheus must be race-free (run under
// -race) and every scrape must be internally consistent: cumulative
// buckets non-decreasing and the +Inf bucket equal to _count.
func TestConcurrentObserveVsScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sim_test_conc_seconds", "concurrently observed")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := time.Duration(g+1) * 37 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		prev := int64(-1)
		var infBucket, count int64 = -1, -1
		for _, line := range strings.Split(b.String(), "\n") {
			switch {
			case strings.HasPrefix(line, "sim_test_conc_seconds_bucket"):
				v := sampleValue(t, line)
				if v < prev {
					t.Fatalf("cumulative buckets decreased: %d after %d in %q", v, prev, line)
				}
				prev = v
				infBucket = v
			case strings.HasPrefix(line, "sim_test_conc_seconds_count"):
				count = sampleValue(t, line)
			}
		}
		if infBucket != count {
			t.Fatalf("+Inf bucket %d != count %d", infBucket, count)
		}
	}
	close(stop)
	wg.Wait()
}

// sampleValue parses the integer value off a "name value" sample line.
func sampleValue(t *testing.T, line string) int64 {
	t.Helper()
	fields := strings.Fields(line)
	v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("sample line %q: %v", line, err)
	}
	return v
}
