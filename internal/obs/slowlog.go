package obs

import (
	"sync"
	"time"
)

// SlowEntry is one record of the slow-query log.
type SlowEntry struct {
	Statement string
	Duration  time.Duration
	Rows      int
	When      time.Time
	ID        uint64 // request/trace ID the statement ran under, 0 when unset
}

// slowLogCap bounds the retained slow-query history.
const slowLogCap = 128

// SlowLog is a fixed-capacity ring of the most recent statements that ran
// past a configurable threshold. A zero threshold disables recording, so
// the untraced hot path pays one comparison.
type SlowLog struct {
	threshold time.Duration

	mu      sync.Mutex
	entries []SlowEntry
	next    int  // ring cursor
	wrapped bool // ring has overwritten at least one entry
	total   uint64
}

// NewSlowLog returns a slow-query log with the given threshold
// (0 disables it).
func NewSlowLog(threshold time.Duration) *SlowLog {
	return &SlowLog{threshold: threshold}
}

// Threshold returns the configured threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Observe records stmt when d reaches the threshold, reporting whether it
// did. id is the request/trace ID the statement ran under (0 when none),
// so slow entries correlate with flight-recorder events. Nil logs and
// zero thresholds observe nothing.
func (l *SlowLog) Observe(stmt string, d time.Duration, rows int, id uint64) bool {
	if l == nil || l.threshold <= 0 || d < l.threshold {
		return false
	}
	e := SlowEntry{Statement: stmt, Duration: d, Rows: rows, When: time.Now(), ID: id}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) < slowLogCap {
		l.entries = append(l.entries, e)
		return true
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % slowLogCap
	l.wrapped = true
	return true
}

// Total returns the number of slow statements observed since creation
// (including ones the ring has since overwritten).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained slow statements, oldest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.entries))
	if l.wrapped {
		out = append(out, l.entries[l.next:]...)
		out = append(out, l.entries[:l.next]...)
	} else {
		out = append(out, l.entries...)
	}
	return out
}
