package obs

import (
	"fmt"
	"strings"
	"time"
)

// NodeTrace is the measured execution profile of one query-tree range
// variable (one loop of the §4.5 DAPLEX nest). Wall is inclusive: the time
// spent enumerating this node's domain and running everything nested under
// it, so the outermost node's wall approximates the whole execution and
// nested nodes attribute their share. On the parallel path walls are the
// maximum across workers (the wall-clock of the slowest worker) while
// Instances sum.
type NodeTrace struct {
	Depth     int    // nesting depth in the main-variable list
	Label     string // printable qualification, e.g. "advisor of student"
	Type      string // "TYPE 1" / "TYPE 2" / "TYPE 3"
	Access    string // access-path description for perspective roots
	Instances int64  // range-variable bindings tried ("rows scanned")
	Entities  int64  // bindings that materialized an entity record
	Wall      time.Duration
}

// WorkerTrace is one worker's share of a parallel Retrieve.
type WorkerTrace struct {
	Chunk     int // outermost-domain rows assigned
	Instances int64
	Rows      int
	Wall      time.Duration
}

// QueryTrace is the span breakdown of one traced query: the parse → plan →
// execute phases, the per-node profile, per-worker spans on the parallel
// path, and the storage-cache deltas observed across the execution. Cache
// deltas are process-wide counters sampled before and after, so under
// concurrent load they include neighbors' traffic; on a quiet database
// they are exact.
type QueryTrace struct {
	Statement  string
	ID         uint64 // request/trace ID the query ran under, 0 when unset
	PlanCached bool   // plan came from the plan cache (parse/plan ≈ 0)
	Parse      time.Duration
	Plan       time.Duration
	Exec       time.Duration
	Total      time.Duration
	Rows       int   // rows returned
	Instances  int64 // total bindings tried across all nodes
	Workers    int   // workers used (1 = serial)

	Nodes       []NodeTrace
	WorkerSpans []WorkerTrace

	PagerHits, PagerMisses uint64 // buffer pool delta over the query
	CacheHits, CacheMisses uint64 // LUC record cache delta over the query
	PlanDesc               string // optimizer strategy summary
}

// fmtDur renders a duration at µs precision, the scale of one node visit.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Render formats the trace as an annotated query tree followed by the
// phase and cache summary — the body of EXPLAIN ANALYZE.
func (t *QueryTrace) Render() string {
	var b strings.Builder
	if t.Statement != "" {
		fmt.Fprintf(&b, "%s\n", strings.TrimSpace(t.Statement))
	}
	for _, n := range t.Nodes {
		b.WriteString(strings.Repeat("  ", n.Depth))
		b.WriteString(n.Label)
		if n.Type != "" {
			fmt.Fprintf(&b, " (%s)", n.Type)
		}
		if n.Access != "" {
			fmt.Fprintf(&b, " via %s", n.Access)
		}
		fmt.Fprintf(&b, "  rows=%d", n.Instances)
		if n.Entities != n.Instances {
			fmt.Fprintf(&b, " entities=%d", n.Entities)
		}
		fmt.Fprintf(&b, " wall=%s\n", fmtDur(n.Wall))
	}
	if t.Workers > 1 {
		fmt.Fprintf(&b, "parallel: %d workers (node walls are per-worker maxima)\n", t.Workers)
		for i, w := range t.WorkerSpans {
			fmt.Fprintf(&b, "  worker %d: chunk=%d instances=%d rows=%d wall=%s\n",
				i, w.Chunk, w.Instances, w.Rows, fmtDur(w.Wall))
		}
	}
	plan := fmtDur(t.Plan)
	if t.PlanCached {
		plan += " (cached)"
	}
	fmt.Fprintf(&b, "parse %s  plan %s  exec %s  total %s\n",
		fmtDur(t.Parse), plan, fmtDur(t.Exec), fmtDur(t.Total))
	fmt.Fprintf(&b, "pager hits=%d misses=%d  luc-cache hits=%d misses=%d\n",
		t.PagerHits, t.PagerMisses, t.CacheHits, t.CacheMisses)
	fmt.Fprintf(&b, "rows: %d  instances: %d\n", t.Rows, t.Instances)
	if t.ID != 0 {
		fmt.Fprintf(&b, "request: %016x\n", t.ID)
	}
	return b.String()
}

// CommitTrace is the span breakdown of one committed write transaction:
// where the commit spent its time from the first latch acquisition to
// group-commit durability, plus where replication picked it up. One
// request ID names the same write in the slow-query ring, the flight
// recorder on both primary and follower, and this trace.
type CommitTrace struct {
	ID     uint64 // request/trace ID, 0 when the client did not send one
	Pages  int    // dirty pages this transaction contributed
	GroupN int    // transactions merged into the same flush group
	Pos    uint64 // replication position the group published at (0 = unreplicated)

	LatchWait   time.Duration // waiting for class latches + the store write latch
	EnqueueWait time.Duration // commit enqueue until the group leader picked it up
	Fsync       time.Duration // the leader's WAL write + fsync for the group
	Total       time.Duration // Commit() entry to durable return
}

// Render formats the commit trace — the body of client.TraceCommit.
func (ct *CommitTrace) Render() string {
	var b strings.Builder
	if ct.ID != 0 {
		fmt.Fprintf(&b, "commit request %016x\n", ct.ID)
	} else {
		b.WriteString("commit\n")
	}
	fmt.Fprintf(&b, "pages=%d group=%d", ct.Pages, ct.GroupN)
	if ct.Pos != 0 {
		fmt.Fprintf(&b, " repl-pos=%d", ct.Pos)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "latch-wait %s  enqueue-wait %s  fsync %s  total %s\n",
		fmtDur(ct.LatchWait), fmtDur(ct.EnqueueWait), fmtDur(ct.Fsync), fmtDur(ct.Total))
	return b.String()
}
