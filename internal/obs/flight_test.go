package obs

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFlightRingRecordAndDump(t *testing.T) {
	f := NewFlight()
	wal := f.Component("wal")
	txn := f.Component("txn")
	txn.Event("txn", "begin", 0xabc, 0, 0, "")
	wal.Record(FlightEvent{Comp: "wal", Kind: "flush", ID: 0xabc, Pos: 7,
		Dur: 3 * time.Millisecond, N: 2, Note: "pages=2"})
	txn.Event("txn", "commit", 0xabc, 0, 2, "")

	evs := f.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of sequence: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	dump := f.Dump()
	for _, want := range []string{"id=0000000000000abc", "pos=7", "flush", "begin", "commit", "pages=2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestFlightRingWraps(t *testing.T) {
	f := NewFlight()
	r := f.Component("txn")
	for i := 0; i < flightRingCap+50; i++ {
		r.Event("txn", "commit", uint64(i+1), 0, 0, "")
	}
	evs := f.Events()
	if len(evs) != flightRingCap {
		t.Fatalf("ring holds %d events, want %d", len(evs), flightRingCap)
	}
	// Oldest retained event is the 51st recorded.
	if evs[0].ID != 51 {
		t.Fatalf("oldest retained ID = %d, want 51", evs[0].ID)
	}
}

func TestFlightDisabled(t *testing.T) {
	f := NewFlight()
	r := f.Component("txn")
	f.SetEnabled(false)
	r.Event("txn", "commit", 1, 0, 0, "")
	if n := len(f.Events()); n != 0 {
		t.Fatalf("disabled recorder kept %d events", n)
	}
	f.SetEnabled(true)
	r.Event("txn", "commit", 2, 0, 0, "")
	if n := len(f.Events()); n != 1 {
		t.Fatalf("re-enabled recorder kept %d events, want 1", n)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	r := f.Component("anything") // nil recorder: nil ring
	r.Record(FlightEvent{Comp: "x", Kind: "y"})
	r.Event("x", "y", 1, 0, 0, "")
	if evs := f.Events(); evs != nil {
		t.Fatalf("nil Flight returned events: %v", evs)
	}
	f.SetEnabled(false) // must not panic
}

func TestLatchProfileAndHotView(t *testing.T) {
	r := NewRegistry()
	l := NewLatch("test_lock")
	l.Register(r, "A test lock.")
	l.Acquired()
	l.Acquired()
	l.Waited(2 * time.Millisecond)
	if got := r.Get("sim_latch_test_lock_acquisitions_total"); got != 3 {
		t.Fatalf("acquisitions = %v, want 3", got)
	}
	if got := r.Get("sim_latch_test_lock_contended_total"); got != 1 {
		t.Fatalf("contended = %v, want 1", got)
	}
	hot := RenderHot(r.Snapshot())
	if !strings.Contains(hot, "test_lock") {
		t.Fatalf("hot view missing latch:\n%s", hot)
	}
	r.ResetCounters()
	if got := r.Get("sim_latch_test_lock_acquisitions_total"); got != 0 {
		t.Fatalf("acquisitions after reset = %v, want 0", got)
	}
}

func TestRequestIDs(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if id == 0 {
			t.Fatal("minted a zero request ID")
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %016x", id)
		}
		seen[id] = true
	}
	ctx := WithRequestID(context.Background(), 42)
	if got := RequestID(ctx); got != 42 {
		t.Fatalf("RequestID = %d, want 42", got)
	}
	if got := RequestID(context.Background()); got != 0 {
		t.Fatalf("bare context RequestID = %d, want 0", got)
	}
	if ctx := WithRequestID(context.Background(), 0); RequestID(ctx) != 0 {
		t.Fatal("zero ID must not be carried")
	}
}

func TestCommitTraceRender(t *testing.T) {
	ct := &CommitTrace{ID: 0xbeef, Pages: 3, GroupN: 2, Pos: 11,
		LatchWait: time.Millisecond, EnqueueWait: 2 * time.Millisecond,
		Fsync: 3 * time.Millisecond, Total: 7 * time.Millisecond}
	out := ct.Render()
	for _, want := range []string{fmt.Sprintf("%016x", uint64(0xbeef)), "pages", "group", "fsync"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("CommitTrace render missing %q:\n%s", want, out)
		}
	}
}
