package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder keeps the last few hundred structured events per
// component in fixed ring buffers — txn begins/commits/conflicts, group
// commit flushes, checkpoints, replication snapshot installs and frame
// applies, overload fast-fails, checksum and salvage incidents. It is
// always on: recording an event is one short mutex hold and a handful of
// field stores, cheap enough for the commit path. The rings are dumped on
// demand (/debug/flight, simdb \flight) and automatically on server panic
// and on crash-matrix or Scrub failure, so the events leading up to an
// incident are available without any prior configuration.

// FlightEvent is one recorded incident.
type FlightEvent struct {
	Seq  uint64        // global order across components
	When time.Time     // wall clock at record time
	Comp string        // component: "txn", "wal", "repl", "server", "pager", ...
	Kind string        // event kind within the component
	ID   uint64        // request/trace ID, 0 when none
	Pos  uint64        // replication position, 0 when none
	Dur  time.Duration // span duration, 0 when not timed
	N    int64         // size or count payload (pages, bytes, lag, ...)
	Note string        // short free-form detail (class name, error, ...)
}

// flightRingCap is the number of events each component ring retains.
const flightRingCap = 256

// FlightRing is one component's ring. Components hold the pointer so the
// record path skips the component map entirely.
type FlightRing struct {
	f   *Flight
	mu  sync.Mutex
	buf [flightRingCap]FlightEvent
	n   uint64 // total events ever recorded
}

// Flight is a set of per-component rings sharing one sequence counter.
type Flight struct {
	disabled atomic.Bool // zero value: enabled
	seq      atomic.Uint64
	mu       sync.RWMutex
	comps    map[string]*FlightRing
}

// NewFlight returns an enabled recorder with no components yet.
func NewFlight() *Flight {
	return &Flight{comps: make(map[string]*FlightRing)}
}

// SetEnabled turns recording on or off. Off exists for the OBS2 overhead
// experiment; production leaves the recorder on.
func (f *Flight) SetEnabled(on bool) {
	if f != nil {
		f.disabled.Store(!on)
	}
}

// Component returns the ring registered under name, creating it when
// absent. Nil-safe: a nil recorder returns a nil ring whose Record is a
// no-op.
func (f *Flight) Component(name string) *FlightRing {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	r := f.comps[name]
	f.mu.RUnlock()
	if r != nil {
		return r
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if r = f.comps[name]; r == nil {
		r = &FlightRing{f: f}
		f.comps[name] = r
	}
	return r
}

// Record stamps ev with a sequence number and wall clock and appends it
// to the ring, overwriting the oldest entry when full.
func (r *FlightRing) Record(ev FlightEvent) {
	if r == nil || r.f.disabled.Load() {
		return
	}
	ev.Seq = r.f.seq.Add(1)
	ev.When = time.Now()
	r.mu.Lock()
	r.buf[r.n%flightRingCap] = ev
	r.n++
	r.mu.Unlock()
}

// Event is shorthand for Record with the common fields.
func (r *FlightRing) Event(comp, kind string, id uint64, d time.Duration, n int64, note string) {
	r.Record(FlightEvent{Comp: comp, Kind: kind, ID: id, Dur: d, N: n, Note: note})
}

// Events returns every retained event across all components, oldest
// first by global sequence. Nil-safe.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	rings := make([]*FlightRing, 0, len(f.comps))
	for _, r := range f.comps {
		rings = append(rings, r)
	}
	f.mu.RUnlock()
	var out []FlightEvent
	for _, r := range rings {
		r.mu.Lock()
		n := r.n
		if n > flightRingCap {
			n = flightRingCap
		}
		start := r.n - n
		for i := uint64(0); i < n; i++ {
			out = append(out, r.buf[(start+i)%flightRingCap])
		}
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump renders the retained events as aligned text, oldest first. The
// format is the flight-recorder's public face: it is what /debug/flight,
// simdb \flight, panic handlers and failing crash-matrix runs emit.
func (f *Flight) Dump() string {
	evs := f.Events()
	if len(evs) == 0 {
		return "flight recorder: no events\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d events (newest last)\n", len(evs))
	for _, ev := range evs {
		fmt.Fprintf(&b, "%8d %s %-6s %-10s", ev.Seq, ev.When.Format("15:04:05.000"), ev.Comp, ev.Kind)
		if ev.ID != 0 {
			fmt.Fprintf(&b, " id=%016x", ev.ID)
		}
		if ev.Pos != 0 {
			fmt.Fprintf(&b, " pos=%d", ev.Pos)
		}
		if ev.Dur != 0 {
			fmt.Fprintf(&b, " dur=%s", fmtDur(ev.Dur))
		}
		if ev.N != 0 {
			fmt.Fprintf(&b, " n=%d", ev.N)
		}
		if ev.Note != "" {
			fmt.Fprintf(&b, " %s", ev.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
