package bench

import (
	"strings"
	"testing"

	"sim"
)

var tiny = Workload{
	Departments: 2,
	Instructors: 4,
	Students:    20,
	Courses:     8,
	EnrollPer:   2,
	AdvisePer:   5,
}

func TestBuildUniversityWorkload(t *testing.T) {
	db, err := BuildUniversity(sim.Config{}, tiny)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r, err := db.Query(`From student Retrieve Table Distinct count(soc-sec-no of student).`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rows()[0][0].String(); got != "20" {
		t.Errorf("students loaded = %s", got)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Errorf("workload violates the schema's assertions: %v", err)
	}
}

func TestExperimentsProduceTables(t *testing.T) {
	type exp struct {
		name string
		fn   func() (*Table, error)
	}
	exps := []exp{
		{"fig2", Fig2},
		{"dml", DML},
		{"t1", func() (*Table, error) { return T1(tiny, 1) }},
		{"t2", func() (*Table, error) { return T2(tiny, 1) }},
		{"t3", func() (*Table, error) { return T3(20, 4, 1) }},
		{"t4", func() (*Table, error) { return T4(tiny, 1) }},
		{"t5", func() (*Table, error) { return T5(tiny, 1) }},
		{"t6", func() (*Table, error) { return T6(tiny, 1) }},
		{"t8", func() (*Table, error) { return T8(tiny, 1) }},
		{"t9", func() (*Table, error) { return T9(tiny, 1, 2) }},
		{"obs", func() (*Table, error) { return Obs(tiny, 1) }},
	}
	for _, e := range exps {
		tbl, err := e.fn()
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", e.name)
		}
		out := tbl.Format()
		if !strings.Contains(out, tbl.Title) {
			t.Errorf("%s format lacks its title", e.name)
		}
	}
}

func TestT7SmallChains(t *testing.T) {
	// T7 builds its own databases; smoke-test the chain builder instead
	// (the full T7 sweep runs in the harness).
	db, err := BuildPrereqChain(sim.Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r, err := db.Query(`From course Retrieve count(transitive(prerequisites)) Where course-no = 5.`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rows()[0][0].String(); got != "4" {
		t.Errorf("chain closure = %s, want 4", got)
	}
}

func TestStripVerifies(t *testing.T) {
	out := stripVerifies()
	if strings.Contains(strings.ToLower(out), "verify") {
		t.Error("verifies survive stripping")
	}
	if !strings.Contains(strings.ToLower(out), "class person") {
		t.Error("classes stripped too")
	}
}
