package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"sim"
)

// mvccRows is the seeded account population for the MVCC experiment; a
// power of two so every writer count in the sweep partitions it evenly.
const mvccRows = 1024

// MVCC — snapshot isolation (this repo's extension beyond the paper):
// three sections probing the claims of DESIGN.md §15.
//
//   - read scaling: aggregate snapshot-read throughput at 1..maxClients
//     concurrent clients WHILE an open transaction holds the store write
//     latch. Pre-MVCC these readers would queue behind the writer; with
//     snapshot reads they never touch the write latch at all, so
//     throughput should track available cores.
//   - distinct-entity writers: Begin/Modify/Commit transactions over
//     disjoint entities of one class at 1..8 concurrent writers. Entity-
//     granularity conflict detection must report zero conflicts (the old
//     class-granularity latch would have failed every overlap).
//   - version GC: retained copy-on-write page versions while a snapshot
//     pins the GC floor, and after release + checkpoint. Steady-state
//     memory must be bounded by the oldest pin, not by write volume.
func MVCC(reps, maxClients int) (*Table, error) {
	t := &Table{
		ID:     "MVCC",
		Title:  "MVCC: snapshot read scaling, entity-granularity writers, version GC",
		Header: []string{"section", "config", "time/op", "value", "speedup"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d; read scaling runs under a HELD store write latch (an open\n"+
			"transaction after its first write) — snapshot readers never acquire it.\n"+
			"distinct-entity writers are explicit Begin/Exec/Commit transactions over\n"+
			"disjoint ids; conflicts counts sim_conflict_entities over the whole sweep\n"+
			"(zero means entity granularity never false-conflicts same-class writers).\n"+
			"version GC reports sim_mvcc_live_versions: retained page pre-images are\n"+
			"gated by the oldest pinned snapshot and swept at checkpoint.",
			runtime.GOMAXPROCS(0)),
	}
	ctx := context.Background()

	// ---- read scaling under a held write latch ----
	db, err := mvccDB("", ctx)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	const q = `From acct Retrieve bal Where id = 500.`
	if _, err := db.Query(q); err != nil { // warm plan cache
		return nil, err
	}
	wtx, err := db.Begin(ctx)
	if err != nil {
		return nil, err
	}
	if _, err := wtx.Exec(ctx, `Modify acct (bal := bal + 1) Where id = 1.`); err != nil {
		return nil, err
	}
	iters := 100 * reps
	var baseQPS float64
	for c := 1; c <= maxClients; c *= 2 {
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, c)
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if _, err := db.QueryCtx(ctx, q); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			return nil, fmt.Errorf("reader under held latch: %w", err)
		}
		el := time.Since(start)
		qps := float64(c*iters) / el.Seconds()
		if c == 1 {
			baseQPS = qps
		}
		t.Rows = append(t.Rows, []string{"read scaling", fmt.Sprintf("%d clients", c),
			dur(el / time.Duration(c*iters)), fmt.Sprintf("%.0f qps", qps),
			fmt.Sprintf("%.2fx", qps/baseQPS)})
	}
	if err := wtx.Commit(); err != nil {
		return nil, err
	}

	// ---- distinct-entity concurrent writers ----
	conflicts := func() float64 { return db.Metrics().Snapshot()["sim_conflict_entities"] }
	cBefore := conflicts()
	total := 100 * reps
	if total < 400 {
		total = 400
	}
	var baseWQPS float64
	for n := 1; n <= 8; n *= 2 {
		per := total / n
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, n)
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					// Writer g owns the ids congruent to g mod n: disjoint
					// entity sets, same class.
					id := 1 + (g+n*i)%mvccRows
					tx, err := db.Begin(ctx)
					if err == nil {
						_, err = tx.Exec(ctx, fmt.Sprintf(`Modify acct (bal := bal + 1) Where id = %d.`, id))
					}
					if err == nil {
						err = tx.Commit()
					}
					if err != nil {
						errc <- fmt.Errorf("writer %d: %w", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			return nil, err
		}
		el := time.Since(start)
		qps := float64(n*per) / el.Seconds()
		if n == 1 {
			baseWQPS = qps
		}
		t.Rows = append(t.Rows, []string{"distinct-entity writers", fmt.Sprintf("%d writers", n),
			dur(el / time.Duration(n*per)), fmt.Sprintf("%.0f commits/s", qps),
			fmt.Sprintf("%.2fx", qps/baseWQPS)})
	}
	if d := conflicts() - cBefore; d != 0 {
		return nil, fmt.Errorf("distinct-entity writers hit %v entity conflicts, want 0", d)
	}
	t.Rows = append(t.Rows, []string{"distinct-entity writers", "conflicts over sweep", "",
		fmt.Sprintf("%.0f", conflicts()-cBefore), ""})

	// ---- version GC: retained versions gated by the oldest pin ----
	dir, err := os.MkdirTemp("", "simbench-mvcc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fdb, err := mvccDB(filepath.Join(dir, "mvcc.db"), ctx)
	if err != nil {
		return nil, err
	}
	defer fdb.Close()
	live := func() float64 { return fdb.Metrics().Snapshot()["sim_mvcc_live_versions"] }

	ro, err := fdb.Begin(ctx, sim.ReadOnly())
	if err != nil {
		return nil, err
	}
	if _, err := ro.Query(ctx, q); err != nil {
		return nil, err
	}
	updates := 200 * reps
	for i := 0; i < updates; i++ {
		stmt := fmt.Sprintf(`Modify acct (bal := bal + 1) Where id = %d.`, 1+i%mvccRows)
		if _, err := fdb.ExecCtx(ctx, stmt); err != nil {
			return nil, err
		}
	}
	grew := live()
	if err := fdb.Checkpoint(); err != nil {
		return nil, err
	}
	held := live()
	if err := ro.Rollback(); err != nil {
		return nil, err
	}
	if err := fdb.Checkpoint(); err != nil {
		return nil, err
	}
	released := live()
	if released > held {
		return nil, fmt.Errorf("version GC retained %v versions after pin release, had %v under pin", released, held)
	}
	t.Rows = append(t.Rows,
		[]string{"version GC", fmt.Sprintf("%d updates, snapshot pinned", updates), "", fmt.Sprintf("%.0f versions", grew), ""},
		[]string{"version GC", "checkpoint, snapshot still pinned", "", fmt.Sprintf("%.0f versions", held), ""},
		[]string{"version GC", "checkpoint, snapshot released", "", fmt.Sprintf("%.0f versions", released), ""})

	// Allocation footprint of one snapshot point read (pin + view + read +
	// release) on the write-hot database.
	mrow, err := measureMem("snapshot point read", func() error {
		_, err := fdb.Query(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Mem = append(t.Mem, mrow)
	return t, nil
}

// mvccDB opens a database (in-memory when path is empty) with one acct
// class seeded with mvccRows rows.
func mvccDB(path string, ctx context.Context) (*sim.Database, error) {
	db, err := sim.Open(path, sim.Config{})
	if err != nil {
		return nil, err
	}
	if err := db.DefineSchema(`Class Acct ( id: integer unique required; bal: integer );`); err != nil {
		db.Close()
		return nil, err
	}
	for i := 1; i <= mvccRows; i++ {
		if _, err := db.ExecCtx(ctx, fmt.Sprintf(`Insert acct (id := %d, bal := 100).`, i)); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}
