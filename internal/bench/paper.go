package bench

import (
	"fmt"
	"strings"

	"sim"
	"sim/internal/adds"
	"sim/internal/university"
)

func universityDDL() string { return university.DDL }

// Fig2 reproduces Figure 2: the UNIVERSITY schema compiles and its catalog
// shape matches the paper's drawing.
func Fig2() (*Table, error) {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.DefineSchema(university.DDL); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "FIG2",
		Title:  "Figure 2 / §7: UNIVERSITY schema catalog shape",
		Header: []string{"measure", "paper", "measured"},
	}
	sum := db.SchemaSummary()
	read := func(key string) string {
		for _, line := range strings.Split(sum, "\n") {
			if strings.HasPrefix(line, key) {
				return strings.TrimSpace(strings.TrimPrefix(line, key+":"))
			}
		}
		return "?"
	}
	t.Rows = [][]string{
		{"base classes (PERSON, COURSE, DEPARTMENT)", "3", read("base classes")},
		{"subclasses (STUDENT, INSTRUCTOR, TEACHING-ASSISTANT)", "3", read("subclasses")},
		{"EVA-inverse pairs", "8", read("EVA-inverse pairs")},
		{"max generalization depth", "2", read("max generalization depth")},
	}
	return t, nil
}

// ADDS reproduces §6's data-dictionary statistics.
func ADDS() (*Table, error) {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.DefineSchema(adds.DDL()); err != nil {
		return nil, err
	}
	sum := db.SchemaSummary()
	read := func(key string) string {
		for _, line := range strings.Split(sum, "\n") {
			if strings.HasPrefix(line, key) {
				return strings.TrimSpace(strings.TrimPrefix(line, key+":"))
			}
		}
		return "?"
	}
	return &Table{
		ID:     "ADDS",
		Title:  "§6: ADDS data dictionary scale (synthetic schema at the published shape)",
		Header: []string{"measure", "paper", "measured"},
		Rows: [][]string{
			{"base classes", fmt.Sprint(adds.BaseClasses), read("base classes")},
			{"subclasses", fmt.Sprint(adds.Subclasses), read("subclasses")},
			{"EVA-inverse pairs", fmt.Sprint(adds.EVAPairs), read("EVA-inverse pairs")},
			{"DVAs", fmt.Sprint(adds.DVAs), read("DVAs")},
			{"max generalization depth", fmt.Sprint(adds.MaxDepth), read("max generalization depth")},
		},
	}, nil
}

// DML runs the seven worked examples of §4.9 against a small population
// and reports each outcome.
func DML() (*Table, error) {
	db, err := sim.Open("", sim.Config{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.DefineSchema(university.DDL); err != nil {
		return nil, err
	}
	setup := []string{
		`Insert department (dept-nbr := 100, name := "Physics").`,
		`Insert department (dept-nbr := 300, name := "CS").`,
		`Insert course (course-no := 101, title := "Algebra I", credits := 12).`,
		`Insert course (course-no := 102, title := "Calculus I", credits := 5,
		   prerequisites := course with (title = "Algebra I")).`,
		`Insert course (course-no := 999, title := "Quantum Chromodynamics", credits := 5,
		   prerequisites := course with (title = "Calculus I")).`,
		`Insert instructor (name := "Joe Bloke", soc-sec-no := 1, employee-nbr := 1729,
		   salary := 50000, birthdate := "1950-01-01",
		   assigned-department := department with (name = "Physics"),
		   courses-taught := course with (title = "Quantum Chromodynamics")).`,
		`Insert instructor (name := "Young Prof", soc-sec-no := 3, employee-nbr := 1800,
		   salary := 40000, birthdate := "1990-01-01",
		   assigned-department := department with (name = "Physics")).`,
		`Insert student (name := "Mary Major", soc-sec-no := 2, birthdate := "1970-01-01",
		   advisor := instructor with (name = "Joe Bloke"),
		   major-department := department with (name = "Physics"),
		   courses-enrolled := course with (title = "Algebra I")).`,
		`Insert student (name := "Sam Smith", soc-sec-no := 4, birthdate := "1940-01-01",
		   advisor := instructor with (name = "Joe Bloke"),
		   major-department := department with (name = "CS"),
		   courses-enrolled := course with (title = "Algebra I")).`,
	}
	for _, s := range setup {
		if _, err := db.Exec(s); err != nil {
			return nil, err
		}
	}
	t := &Table{
		ID:     "EX1–EX7",
		Title:  "§4.9 worked DML examples",
		Header: []string{"example", "kind", "outcome"},
	}
	steps := []struct {
		name, stmt string
		isQuery    bool
	}{
		{"EX1 insert + enroll", `Insert student(name := "John Doe", soc-sec-no := 456887766, courses-enrolled := course with (title = "Algebra I")).`, false},
		{"EX2 role extension", `Insert instructor From person Where name = "John Doe" (employee-nbr := 1801).`, false},
		{"EX3 exclude + advisor", `Modify student (courses-enrolled := exclude courses-enrolled with (title = "Algebra I"), advisor := instructor with (name = "Joe Bloke")) Where name of student = "John Doe".`, false},
		{"EX4 conditional raise", `Modify instructor (salary := 1.1 * salary) Where count(courses-taught) of instructor > 0 and assigned-department neq some(major-department of advisees).`, false},
		{"EX5 transitive count", `From course Retrieve count distinct (transitive(prerequisites)) Where title = "Quantum Chromodynamics".`, true},
		{"EX6 advising across depts", `Retrieve name of instructor, title of courses-taught Where name of major-department of advisees = "Physics".`, true},
		{"EX7 multi-perspective", `From student, instructor Retrieve name of student, name of Instructor Where birthdate of student < birthdate of instructor and advisor of student NEQ instructor and not instructor isa teaching-assistant.`, true},
	}
	for _, s := range steps {
		if s.isQuery {
			r, err := db.Query(s.stmt)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.name, err)
			}
			t.Rows = append(t.Rows, []string{s.name, "retrieve", fmt.Sprintf("%d row(s)", r.NumRows())})
			continue
		}
		n, err := db.Exec(s.stmt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		t.Rows = append(t.Rows, []string{s.name, "update", fmt.Sprintf("%d entity(ies)", n)})
	}
	return t, nil
}
