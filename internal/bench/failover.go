package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sim"
	"sim/client"
	"sim/internal/repl"
	"sim/internal/server"
	"sim/internal/wire"
)

// failoverDDL is a deliberately small schema: T15 measures the control
// plane (promotion, fencing, client redirect), not query throughput.
const failoverDDL = `
Class ledger (
  entry-no: integer unique required;
  note: string[40] );
`

// Failover — T15, follower promotion with epoch fencing: per-trial
// latency of promoting a caught-up follower to primary, the time the
// same client.DialMulti handle needs to resume writes on the promoted
// node after the old primary is killed, and the headline robustness
// claim — across every trial, acknowledged commits at risk after the
// failover, which must be zero, while the restarted old primary refuses
// writes with CodeFenced.
func Failover(reps int) (*Table, error) {
	trials := 3 * reps
	if trials < 5 {
		trials = 5
	}
	const commits = 20

	t := &Table{
		ID:     "T15",
		Title:  "Failover: promotion latency, client write resume, commits at risk",
		Header: []string{"phase", "trials", "p50", "p95", "max"},
	}

	var promote, resume []time.Duration
	acked, survived, fenced := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		p, s, f, err := failoverTrial(commits)
		if err != nil {
			return nil, fmt.Errorf("T15 trial %d: %w", trial, err)
		}
		promote = append(promote, p)
		resume = append(resume, s)
		acked += commits
		survived += f.survived
		if f.fenced {
			fenced++
		}
	}
	sort.Slice(promote, func(i, j int) bool { return promote[i] < promote[j] })
	sort.Slice(resume, func(i, j int) bool { return resume[i] < resume[j] })
	t.Rows = append(t.Rows,
		[]string{"promote (drain, seal, claim epoch, open publisher)", fmt.Sprint(trials),
			dur(pct(promote, 50)), dur(pct(promote, 95)), dur(promote[len(promote)-1])},
		[]string{"DialMulti write resume after primary kill", fmt.Sprint(trials),
			dur(pct(resume, 50)), dur(pct(resume, 95)), dur(resume[len(resume)-1])},
	)
	atRisk := acked - survived
	t.Notes = fmt.Sprintf("commit loop of %d acknowledged commits per trial, primary killed at a caught-up\nboundary; acknowledged=%d survived-on-promoted=%d commits-at-risk=%d\nrestarted old primary refused writes with CodeFenced in %d/%d trials",
		commits, acked, survived, atRisk, fenced, trials)
	if atRisk != 0 {
		return nil, fmt.Errorf("T15: %d acknowledged commits lost across %d trials", atRisk, trials)
	}
	if fenced != trials {
		return nil, fmt.Errorf("T15: restarted old primary accepted writes in %d/%d trials", trials-fenced, trials)
	}
	return t, nil
}

type failoverOutcome struct {
	survived int
	fenced   bool
}

// failoverTrial runs one kill/promote/redirect/fence cycle and returns
// the promotion latency and the client's write-resume latency.
func failoverTrial(commits int) (promote, resume time.Duration, out failoverOutcome, err error) {
	dir, err := os.MkdirTemp("", "sim-failover-bench-")
	if err != nil {
		return 0, 0, out, err
	}
	defer os.RemoveAll(dir)

	// Primary with a durable epoch, wired the way simserve wires one.
	epochPath := filepath.Join(dir, "primary.db.epoch")
	pdb, err := sim.Open(filepath.Join(dir, "primary.db"), sim.Config{})
	if err != nil {
		return 0, 0, out, err
	}
	defer pdb.Close()
	epoch, _, err := repl.ClaimEpoch(epochPath)
	if err != nil {
		return 0, 0, out, err
	}
	pub, err := repl.NewPublisher(pdb, repl.Config{Epoch: epoch})
	if err != nil {
		return 0, 0, out, err
	}
	if err := pdb.DefineSchema(failoverDDL); err != nil {
		return 0, 0, out, err
	}
	primary, err := startReplNode(pdb, server.Config{Publisher: pub, ReplStatus: pub.Status})
	if err != nil {
		return 0, 0, out, err
	}
	defer primary.close()

	// Caught-up follower with a promotable server in front of it.
	rdb, err := sim.Open(filepath.Join(dir, "replica.db"), sim.Config{})
	if err != nil {
		return 0, 0, out, err
	}
	defer rdb.Close()
	fol, err := repl.StartFollower(rdb, filepath.Join(dir, "replica.db.repl"), repl.FollowerConfig{
		Primary:      primary.addr,
		Heartbeat:    20 * time.Millisecond,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, out, err
	}
	defer fol.Close()
	replica, err := startReplNode(rdb, server.Config{
		ReadOnly:   true,
		ReplStatus: fol.Status,
		Promote: func() (*repl.Publisher, error) {
			pr, err := fol.Promote(repl.PromoteConfig{EpochPath: filepath.Join(dir, "replica.db.epoch")})
			if err != nil {
				return nil, err
			}
			return pr.Pub, nil
		},
	})
	if err != nil {
		return 0, 0, out, err
	}
	defer replica.close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = fol.WaitReady(ctx)
	cancel()
	if err != nil {
		return 0, 0, out, err
	}

	// The acknowledged-commit loop: every Exec that returns nil is a
	// commit the failover must not lose.
	m, err := client.DialMulti([]string{primary.addr, replica.addr})
	if err != nil {
		return 0, 0, out, err
	}
	defer m.Close()
	for i := 1; i <= commits; i++ {
		if _, err := m.Exec(fmt.Sprintf(`Insert ledger (entry-no := %d, note := "acked %d").`, i, i)); err != nil {
			return 0, 0, out, err
		}
	}
	// Kill at a caught-up boundary (the sync bound of the guarantee):
	// wait until the follower has applied everything acknowledged.
	const q = `From ledger Retrieve entry-no.`
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := rdb.Query(q)
		if err != nil {
			return 0, 0, out, err
		}
		if r.NumRows() == commits {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, out, fmt.Errorf("follower never caught up (%d/%d)", r.NumRows(), commits)
		}
		time.Sleep(200 * time.Microsecond)
	}

	primary.srv.Close() // kill -9: no drain

	rc, err := client.Dial(replica.addr)
	if err != nil {
		return 0, 0, out, err
	}
	defer rc.Close()
	start := time.Now()
	newEpoch, err := rc.Promote(context.Background())
	if err != nil {
		return 0, 0, out, err
	}
	promote = time.Since(start)

	// Same Multi handle, no reconfiguration: the next write probes the
	// topology and lands on the promoted node. The first attempt can die
	// on receive (the socket to the killed primary), which the client
	// refuses to redirect — it cannot prove the statement never executed.
	// The harness killed the server before the attempt, so non-application
	// is certain here and a retry is safe; the resume latency includes it.
	start = time.Now()
	for attempt := 0; ; attempt++ {
		_, werr := m.Exec(`Insert ledger (entry-no := 10000, note := "after failover").`)
		if werr == nil {
			break
		}
		var ne *client.NetError
		if attempt >= 3 || !errors.As(werr, &ne) || !ne.Retryable {
			return 0, 0, out, fmt.Errorf("write resume: %w", werr)
		}
	}
	resume = time.Since(start)

	r, err := rdb.Query(q)
	if err != nil {
		return 0, 0, out, err
	}
	out.survived = r.NumRows() - 1 // minus the post-failover write

	// Restart the old primary on its files, fence it, and prove a write
	// is refused with CodeFenced.
	pdb2, err := sim.Open(filepath.Join(dir, "primary.db"), sim.Config{})
	if err != nil {
		return 0, 0, out, err
	}
	defer pdb2.Close()
	epoch2, fencedBy, err := repl.ClaimEpoch(epochPath)
	if err != nil {
		return 0, 0, out, err
	}
	pub2, err := repl.NewPublisher(pdb2, repl.Config{Epoch: epoch2})
	if err != nil {
		return 0, 0, out, err
	}
	old, err := startReplNode(pdb2, server.Config{Publisher: pub2, ReplStatus: pub2.Status, FencedBy: fencedBy})
	if err != nil {
		return 0, 0, out, err
	}
	defer old.close()
	if err := repl.Fence(old.addr, newEpoch, replica.addr, 5*time.Second); err != nil {
		return 0, 0, out, err
	}
	oc, err := client.Dial(old.addr)
	if err != nil {
		return 0, 0, out, err
	}
	defer oc.Close()
	_, werr := oc.Exec(`Insert ledger (entry-no := 20000, note := "rogue").`)
	var we *wire.Error
	out.fenced = errors.As(werr, &we) && we.Code == wire.CodeFenced
	return promote, resume, out, nil
}
