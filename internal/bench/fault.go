package bench

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"sim/client"
	"sim/internal/dmsii"
	"sim/internal/pager"
	"sim/internal/wal"
	"sim/internal/wire"
)

// Fault — robustness costs (this repo's fault-tolerance extension):
// what the hardening layers charge on the happy path. Three rows:
// per-page CRC32 trailers on the read path (A/B: checksummed vs raw
// page file under the same cursor scans), crash-recovery time as a
// function of WAL size, and the client's retry-path latency when a
// request eats one overloaded fast-fail before succeeding.
func Fault(reps int) (*Table, error) {
	t := &Table{
		ID:     "FAULT",
		Title:  "Robustness overhead: page checksums, recovery time, retry path",
		Header: []string{"aspect", "config", "result"},
		Notes: "checksum rows compare identical cursor-scan workloads over a raw page file\n" +
			"and the production CRC32-trailer file. 'default pool' is the production read\n" +
			"path (the acceptance number); 'all-miss' is an adversarial 16-page pool where\n" +
			"every scan re-reads and re-verifies each page from the OS. recovery reopens a\n" +
			"crashed store and replays the WAL. retry measures a Ping eating a\n" +
			"CodeOverloaded fast-fail (the 1ms backoff base dominates that row).",
	}
	dir, err := os.MkdirTemp("", "simbench-fault")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	if err := checksumOverhead(t, dir, reps); err != nil {
		return nil, fmt.Errorf("checksum: %w", err)
	}
	if err := recoveryTime(t, dir); err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	if err := retryLatency(t, reps); err != nil {
		return nil, fmt.Errorf("retry: %w", err)
	}
	return t, nil
}

// populateStore fills a store with rows of the scan workload.
func populateStore(s *dmsii.Store, rows int) error {
	st, err := s.Structure("bench")
	if err != nil {
		return err
	}
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte(i)
	}
	const perTxn = 200
	for base := 0; base < rows; base += perTxn {
		tx, err := s.Begin()
		if err != nil {
			return err
		}
		for i := base; i < base+perTxn && i < rows; i++ {
			if err := st.Put([]byte(fmt.Sprintf("key%06d", i)), val); err != nil {
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return s.Checkpoint()
}

// scanAll cursor-scans the bench structure end to end.
func scanAll(s *dmsii.Store) (int, error) {
	st, err := s.Structure("bench")
	if err != nil {
		return 0, err
	}
	cur, err := st.First()
	if err != nil {
		return 0, err
	}
	n := 0
	for cur.Valid() {
		n++
		cur.Next()
	}
	return n, cur.Err()
}

// checksumOverhead measures identical dmsii cursor scans over the
// production checksummed page file and the raw (trailer-free) one.
func checksumOverhead(t *Table, dir string, reps int) error {
	const rows = 20000
	openRaw := func(path string, pool int) (*dmsii.Store, error) {
		bf, err := pager.OpenOSByteFile(path)
		if err != nil {
			return nil, err
		}
		log, err := wal.Open(path + ".wal")
		if err != nil {
			return nil, err
		}
		return dmsii.OpenFiles(pager.NewRawPageFile(bf), log, dmsii.Options{PoolPages: pool})
	}
	openSum := func(path string, pool int) (*dmsii.Store, error) {
		file, err := pager.OpenOSFile(path)
		if err != nil {
			return nil, err
		}
		log, err := wal.Open(path + ".wal")
		if err != nil {
			return nil, err
		}
		return dmsii.OpenFiles(file, log, dmsii.Options{PoolPages: pool})
	}
	kinds := []struct {
		name string
		open func(path string, pool int) (*dmsii.Store, error)
	}{
		{"raw", openRaw},
		{"crc32", openSum},
	}
	trials := 3 * reps
	if trials < 6 {
		trials = 6
	}
	for _, pool := range []int{0, 16} {
		mode := "default pool"
		if pool == 16 {
			mode = "all-miss"
		}
		// Open both stores up front, then interleave the timed trials and
		// keep the per-kind minimum: background writeback from the populate
		// phase would otherwise bias whichever kind is measured first.
		stores := make([]*dmsii.Store, len(kinds))
		best := make([]time.Duration, len(kinds))
		for i, k := range kinds {
			path := filepath.Join(dir, fmt.Sprintf("scan-%s-%d.db", k.name, pool))
			s, err := k.open(path, 1024)
			if err != nil {
				return err
			}
			if err := populateStore(s, rows); err != nil {
				return err
			}
			if err := s.Close(); err != nil {
				return err
			}
			if stores[i], err = k.open(path, pool); err != nil {
				return err
			}
			if _, err := scanAll(stores[i]); err != nil { // warm-up / page-in
				return err
			}
			best[i] = time.Duration(1<<63 - 1)
		}
		for trial := 0; trial < trials; trial++ {
			for i := range kinds {
				start := time.Now()
				n, err := scanAll(stores[i])
				if err != nil {
					return err
				}
				if n != rows {
					return fmt.Errorf("scan saw %d rows, want %d", n, rows)
				}
				if el := time.Since(start); el < best[i] {
					best[i] = el
				}
			}
		}
		for i, k := range kinds {
			if pool == 0 {
				s := stores[i]
				mrow, err := measureMem(fmt.Sprintf("cursor scan %d rows, %s", rows, k.name),
					func() error { _, err := scanAll(s); return err })
				if err != nil {
					return err
				}
				t.Mem = append(t.Mem, mrow)
			}
			stores[i].Close()
			if k.name == "raw" {
				t.Rows = append(t.Rows, []string{"checksum-read", fmt.Sprintf("%s scan, %d rows, raw", mode, rows),
					fmt.Sprintf("%.2f ms/scan", float64(best[i].Microseconds())/1000)})
			} else {
				over := 100 * (float64(best[i])/float64(best[0]) - 1)
				t.Rows = append(t.Rows, []string{"checksum-read", fmt.Sprintf("%s scan, %d rows, crc32", mode, rows),
					fmt.Sprintf("%.2f ms/scan (%+.1f%% vs raw)", float64(best[i].Microseconds())/1000, over)})
			}
		}
	}
	return nil
}

// recoveryTime crashes stores with increasingly large WALs and measures
// the reopen (replay) time.
func recoveryTime(t *Table, dir string) error {
	for _, commits := range []int{50, 200, 800} {
		path := filepath.Join(dir, fmt.Sprintf("recover-%d.db", commits))
		s, err := dmsii.OpenFile(path, dmsii.Options{})
		if err != nil {
			return err
		}
		if err := populateStore(s, 10); err != nil { // also checkpoints
			return err
		}
		st, err := s.Structure("bench")
		if err != nil {
			return err
		}
		val := make([]byte, 64)
		for i := 0; i < commits; i++ {
			tx, err := s.Begin()
			if err != nil {
				return err
			}
			if err := st.Put([]byte(fmt.Sprintf("crash%06d", i)), val); err != nil {
				return err
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		walBytes := s.WALStats().SizeBytes
		// Crash: abandon without Close, then reopen and replay.
		start := time.Now()
		s2, err := dmsii.OpenFile(path, dmsii.Options{})
		if err != nil {
			return err
		}
		el := time.Since(start)
		info := s2.RecoverInfo()
		s2.Close()
		t.Rows = append(t.Rows, []string{"recovery",
			fmt.Sprintf("wal %.1f KiB, %d commits", float64(walBytes)/1024, commits),
			fmt.Sprintf("%.2f ms (%d pages, %d commits replayed)",
				float64(el.Microseconds())/1000, info.Replayed, info.Commits)})
	}
	return nil
}

// retryLatency measures a Ping round trip against a scripted wire
// responder: the direct path, and the path that eats one CodeOverloaded
// fast-fail and retries with a 1ms backoff base.
func retryLatency(t *Table, reps int) error {
	var requests atomic.Uint64
	var overloadEvery atomic.Uint64 // 0 = never
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer lis.Close()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				tp, payload, err := wire.ReadFrame(nc, 0)
				if err != nil || tp != wire.THello {
					return
				}
				if _, err := wire.DecodeHello(payload); err != nil {
					return
				}
				if wire.WriteFrame(nc, wire.THello, wire.EncodeHello()) != nil {
					return
				}
				for {
					if _, _, err := wire.ReadFrame(nc, 0); err != nil {
						return
					}
					n := requests.Add(1)
					if k := overloadEvery.Load(); k != 0 && n%k == 1 {
						if wire.WriteFrame(nc, wire.TError, wire.EncodeError(wire.CodeOverloaded, "bench")) != nil {
							return
						}
						continue
					}
					if wire.WriteFrame(nc, wire.TPong, nil) != nil {
						return
					}
				}
			}()
		}
	}()

	c, err := client.DialConfig(lis.Addr().String(), client.Config{
		MaxRetries: 3, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()
	iters := 50 * reps

	measure := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := c.Ping(ctx); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}
	if err := c.Ping(ctx); err != nil { // warm up
		return err
	}
	direct, err := measure()
	if err != nil {
		return err
	}
	overloadEvery.Store(2) // every other request fast-fails once
	retried, err := measure()
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows,
		[]string{"retry", "direct ping", fmt.Sprintf("%.1f µs/req", float64(direct.Nanoseconds())/1000)},
		[]string{"retry", "1 overloaded fast-fail per 2 reqs, 1ms backoff base",
			fmt.Sprintf("%.1f µs/req", float64(retried.Nanoseconds())/1000)})
	return nil
}
