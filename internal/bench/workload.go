// Package bench builds synthetic workloads and runs the experiments of
// EXPERIMENTS.md: the paper has no performance tables, so each §5
// performance claim is turned into a measured ablation over the same data
// under alternative physical mappings or strategies.
package bench

import (
	"fmt"

	"sim"
	"sim/internal/university"
)

// Workload sizes a university population.
type Workload struct {
	Departments int
	Instructors int
	Students    int
	Courses     int
	EnrollPer   int // courses per student
	AdvisePer   int // advisees per instructor (≤ 10 per the schema)
}

// DefaultWorkload is the size used by the harness's standard runs.
var DefaultWorkload = Workload{
	Departments: 5,
	Instructors: 40,
	Students:    400,
	Courses:     80,
	EnrollPer:   3,
	AdvisePer:   8,
}

// Scale multiplies the populations.
func (w Workload) Scale(f int) Workload {
	w.Instructors *= f
	w.Students *= f
	w.Courses *= f
	return w
}

// BuildUniversity opens an in-memory university database and loads the
// workload. Course credits are 15 so verify v1 is satisfied by a single
// enrollment; salaries satisfy v2.
func BuildUniversity(cfg sim.Config, w Workload) (*sim.Database, error) {
	db, err := sim.Open("", cfg)
	if err != nil {
		return nil, err
	}
	if err := db.DefineSchema(university.DDL); err != nil {
		db.Close()
		return nil, err
	}
	if err := Populate(db, w); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// Populate loads the workload into an empty university database.
func Populate(db *sim.Database, w Workload) error {
	for d := 0; d < w.Departments; d++ {
		stmt := fmt.Sprintf(`Insert department (dept-nbr := %d, name := "Dept %03d").`, 100+d, d)
		if _, err := db.Exec(stmt); err != nil {
			return err
		}
	}
	for c := 0; c < w.Courses; c++ {
		stmt := fmt.Sprintf(`Insert course (course-no := %d, title := "Course %04d", credits := 15).`, c+1, c)
		if _, err := db.Exec(stmt); err != nil {
			return err
		}
	}
	for i := 0; i < w.Instructors; i++ {
		stmt := fmt.Sprintf(`Insert instructor (name := "Instructor %04d", soc-sec-no := %d,
		  employee-nbr := %d, salary := %d, birthdate := "19%02d-01-01",
		  assigned-department := department with (dept-nbr = %d)).`,
			i, 100000000+i, 1001+i, 30000+i, 40+i%40, 100+i%w.Departments)
		if _, err := db.Exec(stmt); err != nil {
			return err
		}
	}
	for s := 0; s < w.Students; s++ {
		adv := ""
		if w.AdvisePer > 0 && s < w.AdvisePer*w.Instructors {
			// Blocks of AdvisePer students per instructor; the schema caps
			// advisees at 10, so later students go unadvised.
			instructor := s / w.AdvisePer
			adv = fmt.Sprintf("advisor := instructor with (employee-nbr = %d),", 1001+instructor)
		}
		stmt := fmt.Sprintf(`Insert student (name := "Student %05d", soc-sec-no := %d,
		  student-nbr := %d, birthdate := "19%02d-06-15", %s
		  major-department := department with (dept-nbr = %d)).`,
			s, 200000000+s, 1001+s%38000, 50+s%50, adv, 100+s%w.Departments)
		if _, err := db.Exec(stmt); err != nil {
			return err
		}
		for e := 0; e < w.EnrollPer; e++ {
			course := (s*7 + e*13) % w.Courses
			stmt := fmt.Sprintf(`Modify student (courses-enrolled := include course with (course-no = %d))
			  Where soc-sec-no = %d.`, course+1, 200000000+s)
			if _, err := db.Exec(stmt); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildPrereqChain adds a linear prerequisite chain of length n to a fresh
// university database: course i+1 requires course i.
func BuildPrereqChain(cfg sim.Config, n int) (*sim.Database, error) {
	db, err := sim.Open("", cfg)
	if err != nil {
		return nil, err
	}
	if err := db.DefineSchema(university.DDL); err != nil {
		db.Close()
		return nil, err
	}
	for c := 0; c < n; c++ {
		stmt := fmt.Sprintf(`Insert course (course-no := %d, title := "Chain %05d", credits := 15).`, c+1, c)
		if _, err := db.Exec(stmt); err != nil {
			db.Close()
			return nil, err
		}
		if c > 0 {
			stmt = fmt.Sprintf(`Modify course (prerequisites := include course with (course-no = %d)) Where course-no = %d.`, c, c+1)
			if _, err := db.Exec(stmt); err != nil {
				db.Close()
				return nil, err
			}
		}
	}
	return db, nil
}

// MVSchema is a small schema exercising multi-valued DVA mappings (T3).
const MVSchema = `
Class Note (
  note-no: integer unique required;
  body: string[40];
  tags: string[20] mv (max 64) );
`

// BuildNotes loads n notes with k tags each under the given MV mapping.
func BuildNotes(cfg sim.Config, n, k int) (*sim.Database, error) {
	db, err := sim.Open("", cfg)
	if err != nil {
		return nil, err
	}
	if err := db.DefineSchema(MVSchema); err != nil {
		db.Close()
		return nil, err
	}
	for i := 0; i < n; i++ {
		stmt := fmt.Sprintf(`Insert note (note-no := %d, body := "note body %06d").`, i+1, i)
		if _, err := db.Exec(stmt); err != nil {
			db.Close()
			return nil, err
		}
		for t := 0; t < k; t++ {
			stmt := fmt.Sprintf(`Modify note (tags := include "tag-%03d-%02d") Where note-no = %d.`, i%100, t, i+1)
			if _, err := db.Exec(stmt); err != nil {
				db.Close()
				return nil, err
			}
		}
	}
	return db, nil
}
