package bench

import (
	"fmt"

	"sim"
)

// T13 — compiled evaluator (this repo's zero-allocation executor): bound
// query trees lowered to chains of typed closures, range-variable bindings
// fed through batch-decoded records and reused domain buffers, output rows
// carved from a result-owned arena. Measured against the retained
// reference tree walker (Config.TreeWalkEval) on the T9 hot queries,
// after verifying that compiled and walker output — serial and parallel —
// are byte-identical.
func T13(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "T13",
		Title:  "Compiled evaluator: closure programs + batched bindings vs reference tree walker",
		Header: []string{"query", "evaluator", "time/query", "allocs/op", "B/op", "alloc reduction"},
		Notes: "both evaluators implement §4.5 exactly; output is checked byte-identical\n" +
			"(serial and parallel, both evaluators) before measuring. allocs/op counts\n" +
			"one whole Query call on a warm plan cache: the walker allocates per node\n" +
			"visit while the compiled path reuses pooled scratch, batch-decoded\n" +
			"records and an arena, so its remaining allocations are the result rows.",
	}
	queries := []struct{ name, q string }{
		{"scan+eva", `From student Retrieve name, name of advisor.`},
		{"point lookup", `From person Retrieve name Where soc-sec-no = 100000001.`},
	}

	// Four databases over one workload: {compiled, walker} x {serial,
	// parallel}. The serial pair is measured; the parallel pair only backs
	// the equality check.
	modes := []struct {
		name string
		cfg  sim.Config
	}{
		{"compiled", sim.Config{Workers: 1}},
		{"tree-walker", sim.Config{Workers: 1, TreeWalkEval: true}},
		{"compiled-parallel", sim.Config{}},
		{"tree-walker-parallel", sim.Config{TreeWalkEval: true}},
	}
	dbs := make([]*sim.Database, len(modes))
	for i, m := range modes {
		db, err := BuildUniversity(m.cfg, w)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		defer db.Close()
		dbs[i] = db
	}

	for _, q := range queries {
		var ref string
		for i, m := range modes {
			r, err := dbs[i].Query(q.q)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", m.name, q.name, err)
			}
			if i == 0 {
				ref = r.Format()
			} else if r.Format() != ref {
				return nil, fmt.Errorf("T13: %s output diverged from compiled output on %s", m.name, q.name)
			}
		}
	}

	for _, q := range queries {
		var walkerAllocs int64
		for _, i := range []int{1, 0} { // walker first, so the compiled row can report its reduction
			m := modes[i]
			db, stmt := dbs[i], q.q
			row, err := measureMem(fmt.Sprintf("%s %s", q.name, m.name),
				func() error { _, err := db.Query(stmt); return err })
			if err != nil {
				return nil, err
			}
			t.Mem = append(t.Mem, row)
			reduction := "1.00x"
			if m.name == "tree-walker" {
				walkerAllocs = row.AllocsPerOp
			} else if row.AllocsPerOp > 0 {
				reduction = fmt.Sprintf("%.1fx", float64(walkerAllocs)/float64(row.AllocsPerOp))
			}
			t.Rows = append(t.Rows, []string{q.name, m.name, fmtNs(row.NsPerOp),
				fmt.Sprint(row.AllocsPerOp), fmt.Sprint(row.BytesPerOp), reduction})
		}
	}
	return t, nil
}

// fmtNs renders a ns/op figure as a duration string.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}
