package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"sim"
)

// Obs2 — always-on observability overhead: the flight recorder,
// contention-profiled latches and request-ID trace plumbing ride the
// engine's hottest paths (the read path's buffer-pool shard locks, the
// commit path's txn/WAL flush events). This experiment measures a
// T9-style query loop and a T12-style autocommit write loop with the
// flight recorder forced off versus on — on being the shipping default.
// The target is that always-on recording costs under ~2% on either
// path, so there is no separate "observability build": every binary
// flies with the recorder running.
func Obs2(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "OBS2",
		Title:  "Always-on flight recorder: hot-path cost of recording off vs on",
		Header: []string{"path", "recorder", "time/op", "overhead"},
		Notes: "query is the T9 advisor join (reads record only contended latch waits);\n" +
			"commit is a T12-style autocommit Modify (each commit records txn begin/commit\n" +
			"and a WAL flush event). 'off' disables the recorder — the hot paths then pay\n" +
			"only the enabled check; 'on' is the production default. Modes alternate in\n" +
			"adjacent small batches (order flipping each pair); overhead is the median\n" +
			"of per-pair on/off ratios, so machine-state drift and CPU-steal bursts\n" +
			"cancel out of the comparison.",
	}
	db, err := BuildUniversity(sim.Config{}, w)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	flight := db.Metrics().Flight()

	const q = `From student Retrieve name, name of advisor.`
	// A same-value Modify: the commit machinery (latches, snapshot, WAL
	// group, flight events) runs in full, but the database does not grow,
	// so the off and on loops do identical work.
	const m = `Modify student (birthdate := "1975-06-15") Where student-nbr = 1001.`

	paths := []struct {
		name  string
		iters int
		run   func() error
	}{
		{"T9 query", 200 * reps, func() error {
			_, err := db.Query(q)
			return err
		}},
		{"T12 commit", 400 * reps, func() error {
			_, err := db.Exec(m)
			return err
		}},
	}
	for _, p := range paths {
		// Warm the plan cache and page pool before timing either mode.
		if err := p.run(); err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
		// Alternate off/on in adjacent small batches and accumulate per
		// mode: on a shared 1-CPU box, frequency and scheduler drift over
		// a whole run dwarfs the sub-µs recorder cost, but adjacent
		// batches see the same machine state, so the drift cancels in the
		// off/on comparison.
		const pairs = 100
		batch := p.iters / pairs
		if batch < 1 {
			batch = 1
		}
		total := map[bool]time.Duration{}
		ratios := make([]float64, 0, pairs)
		runtime.GC()
		for pair := 0; pair < pairs; pair++ {
			order := []bool{false, true}
			if pair%2 == 1 { // alternate which mode runs first
				order = []bool{true, false}
			}
			pairT := map[bool]time.Duration{}
			for _, on := range order {
				flight.SetEnabled(on)
				runtime.GC() // identical heap state for both sides of the pair
				start := time.Now()
				for i := 0; i < batch; i++ {
					if err := p.run(); err != nil {
						flight.SetEnabled(true)
						return nil, fmt.Errorf("%s (recorder on=%v): %w", p.name, on, err)
					}
				}
				pairT[on] = time.Since(start)
			}
			total[false] += pairT[false]
			total[true] += pairT[true]
			ratios = append(ratios, float64(pairT[true])/float64(pairT[false]))
		}
		// The overhead estimate is the median of the per-pair on/off
		// ratios: adjacent batches see the same machine state, and the
		// median discards the pairs a CPU-steal burst happened to hit.
		sort.Float64s(ratios)
		med := ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			med = (med + ratios[len(ratios)/2-1]) / 2
		}
		ops := time.Duration(pairs * batch)
		off := total[false] / ops
		t.Rows = append(t.Rows,
			[]string{p.name, "off", dur(off), "base"},
			[]string{p.name, "on", dur(time.Duration(float64(off) * med)),
				fmt.Sprintf("%+.1f%%", 100*(med-1))})
	}
	flight.SetEnabled(true)
	return t, nil
}
