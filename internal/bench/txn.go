package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sim"
)

// T12 — group commit (this repo's transaction extension): N concurrent
// autocommit writers against one file-backed database. Every commit must
// be durable before its Exec returns, so a serialized WAL would pay one
// fsync per commit; group commit lets concurrent committers share a
// leader's fsync. The table reports commit throughput and the measured
// fsyncs-per-commit at each concurrency level.
func T12(reps, maxWriters int) (*Table, error) {
	t := &Table{
		ID:     "T12",
		Title:  "Group commit: concurrent committers sharing WAL fsyncs",
		Header: []string{"writers", "commits", "commits/sec", "fsyncs/commit", "max group", "speedup"},
		Notes: "each writer runs autocommit single-Insert transactions on a shared\n" +
			"file-backed database; every commit is durable (fsync) before Exec returns.\n" +
			"fsyncs/commit = WAL syncs / commits over the run; 1.0 means fully serialized,\n" +
			"lower means committers rode a group leader's fsync. speedup is commit\n" +
			"throughput relative to the 1-writer (fully serialized) baseline.",
	}
	dir, err := os.MkdirTemp("", "simbench-txn")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Same total work at every concurrency level, split across the writers,
	// so the rows compare fsync scheduling rather than table growth.
	total := 400 * reps
	if total < 800 {
		total = 800
	}
	var baseQPS float64
	for n := 1; n <= maxWriters; n *= 4 {
		qps, fpc, groupMax, commits, err := txnRun(filepath.Join(dir, fmt.Sprintf("txn-%d.db", n)), n, total/n)
		if err != nil {
			return nil, fmt.Errorf("%d writers: %w", n, err)
		}
		if n == 1 {
			baseQPS = qps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(commits),
			fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.3f", fpc),
			fmt.Sprint(groupMax),
			fmt.Sprintf("%.2fx", qps/baseQPS),
		})
	}

	// Allocation footprint of one autocommit insert (parse + plan + WAL
	// append + group commit), single writer.
	mdb, err := sim.Open(filepath.Join(dir, "txn-mem.db"), sim.Config{})
	if err != nil {
		return nil, err
	}
	defer mdb.Close()
	if err := mdb.DefineSchema(`Class Ledger ( entry-no: integer unique required; amount: integer );`); err != nil {
		return nil, err
	}
	next := 0
	mrow, err := measureMem("autocommit Insert", func() error {
		next++
		_, err := mdb.Exec(fmt.Sprintf(`Insert ledger (entry-no := %d, amount := 1).`, next))
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Mem = append(t.Mem, mrow)
	return t, nil
}

// txnRun drives n writers for perWriter autocommit inserts each and
// returns commit throughput, fsyncs per commit, and the largest commit
// group observed.
func txnRun(path string, n, perWriter int) (qps, fsyncsPerCommit float64, groupMax uint64, commits uint64, err error) {
	db, err := sim.Open(path, sim.Config{})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer db.Close()
	if err := db.DefineSchema(`Class Ledger ( entry-no: integer unique required; amount: integer );`); err != nil {
		return 0, 0, 0, 0, err
	}
	ctx := context.Background()
	// Warm the plan/record paths so the timed region measures commits, not
	// first-touch setup.
	if _, err := db.ExecCtx(ctx, `Insert ledger (entry-no := 0, amount := 0).`); err != nil {
		return 0, 0, 0, 0, err
	}
	before := db.Stats().WAL

	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				stmt := fmt.Sprintf(`Insert ledger (entry-no := %d, amount := %d).`, 1+g*perWriter+i, i)
				if _, err := db.ExecCtx(ctx, stmt); err != nil {
					errc <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if werr := <-errc; werr != nil {
		return 0, 0, 0, 0, werr
	}
	el := time.Since(start)

	after := db.Stats().WAL
	commits = after.Commits - before.Commits
	syncs := after.Syncs - before.Syncs
	if want := uint64(n * perWriter); commits != want {
		return 0, 0, 0, 0, fmt.Errorf("WAL recorded %d commits, want %d", commits, want)
	}
	// Every row must actually be there: durability bugs would otherwise
	// masquerade as throughput.
	r, err := db.Query(`From ledger Retrieve entry-no.`)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if got := r.NumRows(); got != n*perWriter+1 {
		return 0, 0, 0, 0, fmt.Errorf("ledger has %d entries, want %d", got, n*perWriter+1)
	}
	qps = float64(commits) / el.Seconds()
	fsyncsPerCommit = float64(syncs) / float64(commits)
	return qps, fsyncsPerCommit, after.GroupMax, commits, nil
}
