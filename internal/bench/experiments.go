package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sim"
	"sim/internal/luc"
)

// Table is one experiment's output, printed by cmd/simbench and recorded
// in EXPERIMENTS.md.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
	// Mem carries per-operation allocation measurements; every BENCH_*.json
	// artifact records them so regressions in allocs/op are machine-checkable.
	Mem []MemRow `json:",omitempty"`
}

// MemRow is one allocation measurement, taken with testing.Benchmark: the
// steady-state per-operation cost of the named operation.
type MemRow struct {
	Op          string
	NsPerOp     int64
	AllocsPerOp int64
	BytesPerOp  int64
}

// measureMem benchmarks one operation and records its per-op time and
// allocation footprint. The operation runs b.N times under the standard
// benchmark driver, so the numbers match `go test -bench` output.
func measureMem(op string, f func() error) (MemRow, error) {
	var err error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := f(); e != nil {
				if err == nil {
					err = e
				}
				return
			}
		}
	})
	if err != nil {
		return MemRow{}, err
	}
	return MemRow{Op: op, NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}, nil
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if len(t.Mem) > 0 {
		b.WriteString("allocations:\n")
		for _, m := range t.Mem {
			fmt.Fprintf(&b, "  %-40s %12d ns/op  %8d allocs/op  %10d B/op\n",
				m.Op, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		}
	}
	if t.Notes != "" {
		b.WriteString(t.Notes)
		b.WriteByte('\n')
	}
	return b.String()
}

// timeQuery runs a query n times, returning mean duration and total page
// accesses (pool hits+misses) per run.
func timeQuery(db *sim.Database, q string, n int) (time.Duration, uint64, int, error) {
	r, err := db.Query(q) // warm
	if err != nil {
		return 0, 0, 0, err
	}
	rows := r.NumRows()
	db.ResetStats()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := db.Query(q); err != nil {
			return 0, 0, 0, err
		}
	}
	el := time.Since(start) / time.Duration(n)
	st := db.Stats()
	return el, (st.Pool.Hits + st.Pool.Misses) / uint64(n), rows, nil
}

func dur(d time.Duration) string { return d.Round(time.Microsecond).String() }

// T1 — EVA mapping ablation (§5.2): the advisor/advisees (many:1)
// relationship under the Common EVA Structure vs a foreign-key mapping,
// traversed from both sides.
func T1(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "T1",
		Title:  "EVA mapping: Common EVA Structure vs foreign key (advisor/advisees)",
		Header: []string{"mapping", "direction", "time/query", "page accesses", "rows"},
		Notes:  "claim (§5.2): \"The mapping of EVAs is the key factor in determining SIM's performance\";\nforeign keys make the single-valued side a 0-I/O in-record access, while the\nCommon EVA Structure pays a structure probe per first instance.",
	}
	configs := []struct {
		name string
		cfg  luc.Config
	}{
		{"common-eva-structure", luc.Config{EVA: map[string]luc.EVAStrategy{"student.advisor": luc.EVACommon}}},
		{"foreign-key", luc.Config{EVA: map[string]luc.EVAStrategy{"student.advisor": luc.EVAForeignKey}}},
		{"private-structure", luc.Config{EVA: map[string]luc.EVAStrategy{"student.advisor": luc.EVAPrivate}}},
	}
	queries := []struct{ dir, q string }{
		{"student→advisor", `From student Retrieve name of advisor.`},
		{"instructor→advisees", `From instructor Retrieve name, count(advisees).`},
	}
	for _, c := range configs {
		db, err := BuildUniversity(sim.Config{Mapping: c.cfg}, w)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		for _, q := range queries {
			el, pages, rows, err := timeQuery(db, q.q, reps)
			if err != nil {
				db.Close()
				return nil, fmt.Errorf("%s: %w", c.name, err)
			}
			t.Rows = append(t.Rows, []string{c.name, q.dir, dur(el), fmt.Sprint(pages), fmt.Sprint(rows)})
		}
		db.Close()
	}
	return t, nil
}

// T2 — hierarchy mapping ablation (§5.2): one storage unit with
// variable-format records vs one unit per class with 1:1 subclass links.
func T2(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "T2",
		Title:  "Hierarchy mapping: variable-format single unit vs split per class",
		Header: []string{"mapping", "operation", "time/query", "page accesses", "rows"},
		Notes:  "claim (§5.2): the single-unit mapping \"ensures that all immediate and inherited\nsingle-valued DVAs applicable to a class will be in one physical record\"; the\nsplit mapping must assemble a record from one unit per role, but scans a\nsubclass without touching the rest of the hierarchy.",
	}
	configs := []struct {
		name string
		cfg  luc.Config
	}{
		{"single-record", luc.Config{}},
		{"split-per-class", luc.Config{Hierarchy: map[string]luc.HierarchyStrategy{
			"person": luc.HierarchySplit, "course": luc.HierarchySplit, "department": luc.HierarchySplit}}},
	}
	queries := []struct{ op, q string }{
		{"inherited attrs of students", `From student Retrieve name, birthdate, student-nbr.`},
		{"scan subclass among hierarchy", `From instructor Retrieve employee-nbr.`},
	}
	for _, c := range configs {
		db, err := BuildUniversity(sim.Config{Mapping: c.cfg}, w)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		for _, q := range queries {
			el, pages, rows, err := timeQuery(db, q.q, reps)
			if err != nil {
				db.Close()
				return nil, err
			}
			t.Rows = append(t.Rows, []string{c.name, q.op, dur(el), fmt.Sprint(pages), fmt.Sprint(rows)})
		}
		db.Close()
	}
	return t, nil
}

// T3 — multi-valued DVA mapping (§5.2): bounded in-record arrays vs a
// separate dependent storage unit.
func T3(n, k, reps int) (*Table, error) {
	t := &Table{
		ID:     "T3",
		Title:  fmt.Sprintf("MV DVA mapping: embedded array vs separate unit (%d notes × %d tags)", n, k),
		Header: []string{"mapping", "operation", "time/query", "page accesses", "rows"},
		Notes:  "claim (§5.2): bounded MV DVAs are \"stored as arrays in the same physical record\nwith their owner\" — reading them costs nothing extra, but they inflate the\nrecord every scan of the owner must carry.",
	}
	configs := []struct {
		name string
		cfg  luc.Config
	}{
		{"embedded", luc.Config{MVDVA: map[string]luc.MVDVAStrategy{"note.tags": luc.MVEmbedded}}},
		{"separate-unit", luc.Config{MVDVA: map[string]luc.MVDVAStrategy{"note.tags": luc.MVSeparate}}},
	}
	queries := []struct{ op, q string }{
		{"read all tags", `From note Retrieve note-no, tags.`},
		{"scan owners only", `From note Retrieve body.`},
	}
	for _, c := range configs {
		db, err := BuildNotes(sim.Config{Mapping: c.cfg}, n, k)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		for _, q := range queries {
			el, pages, rows, err := timeQuery(db, q.q, reps)
			if err != nil {
				db.Close()
				return nil, err
			}
			t.Rows = append(t.Rows, []string{c.name, q.op, dur(el), fmt.Sprint(pages), fmt.Sprint(rows)})
		}
		db.Close()
	}
	return t, nil
}

// T4 — optimizer strategy selection (§5.1): selective predicates through
// indexes and pivots vs naive perspective scans.
func T4(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "T4",
		Title:  "Optimizer: chosen strategy vs forced perspective scan",
		Header: []string{"query", "strategy", "time/query", "page accesses", "rows"},
		Notes:  "claim (§5.1): the optimizer enumerates strategies over the query graph and picks\nby estimated cost; selective predicates on related classes enumerate the\nperspective through inverted relationships instead of scanning it.",
	}
	idx := luc.Config{Indexes: []string{"person.name", "course.title"}}
	withIdx, err := BuildUniversity(sim.Config{Mapping: idx}, w)
	if err != nil {
		return nil, err
	}
	defer withIdx.Close()
	noIdx, err := BuildUniversity(sim.Config{}, w)
	if err != nil {
		return nil, err
	}
	defer noIdx.Close()

	queries := []struct{ name, q string }{
		{"unique point lookup", `From person Retrieve name Where soc-sec-no = 200000007.`},
		{"index equality on name", `From person Retrieve soc-sec-no Where name = "Student 00007".`},
		{"pivot via advisor", `From student Retrieve soc-sec-no Where name of advisor = "Instructor 0003".`},
		{"pivot via enrollment", `From student Retrieve name Where title of courses-enrolled = "Course 0011".`},
	}
	for _, q := range queries {
		for _, env := range []struct {
			label string
			db    *sim.Database
		}{{"optimized", withIdx}, {"forced-scan", noIdx}} {
			ex, err := env.db.Explain(q.q)
			if err != nil {
				return nil, err
			}
			el, pages, rows, err := timeQuery(env.db, q.q, reps)
			if err != nil {
				return nil, err
			}
			strat := env.label + ": " + strings.SplitN(ex, " (", 2)[0]
			t.Rows = append(t.Rows, []string{q.name, strat, dur(el), fmt.Sprint(pages), fmt.Sprint(rows)})
		}
	}
	return t, nil
}

// T5 — semantics preservation (§5.1): the pivot strategy restores
// perspective order by sorting; as the predicate loses selectivity the
// sort + traversal overtake the plain scan and the optimizer reverts.
func T5(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "T5",
		Title:  "Ordering: pivot (index + inverse walk + sort) vs perspective scan, by selectivity",
		Header: []string{"matching courses", "strategy chosen", "time/query", "rows"},
		Notes:  "claim (§5.1): \"Transformation of a query graph for a strategy is tested to see\nif it is semantics-preserving, and, if it is not, the cost of reordering/sorting\noutput is added to the cost of a strategy.\"",
	}
	db, err := BuildUniversity(sim.Config{Mapping: luc.Config{Indexes: []string{"course.title"}}}, w)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	// Title ranges of increasing width: more matching courses → more
	// students reached through enrollment → pivot less attractive.
	for _, width := range []int{1, w.Courses / 8, w.Courses / 2, w.Courses} {
		hi := fmt.Sprintf("Course %04d", width)
		q := fmt.Sprintf(`From student Retrieve soc-sec-no Where title of courses-enrolled >= "Course 0000" and title of courses-enrolled < %q.`, hi)
		ex, err := db.Explain(q)
		if err != nil {
			return nil, err
		}
		el, _, rows, err := timeQuery(db, q, reps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(width), strings.SplitN(ex, " (", 2)[0], dur(el), fmt.Sprint(rows)})
	}
	return t, nil
}

// T6 — TYPE 2 existential early exit (§4.5): selection-only variables stop
// at the first witness; forcing full enumeration through an aggregate
// costs proportionally more.
func T6(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "T6",
		Title:  "Query tree: TYPE 2 existential early exit vs full enumeration",
		Header: []string{"form", "time/query", "rows"},
		Notes:  "claim (§4.5): selection-only variables are quantified \"for some\", so iteration\nstops at the first satisfying instance.",
	}
	db, err := BuildUniversity(sim.Config{}, w)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	// Every enrolled student satisfies the predicate, so the existential
	// form stops at each course's first student while the aggregate form
	// must enumerate the whole roster.
	forms := []struct{ name, q string }{
		{"existential (TYPE 2)", `From course Retrieve title Where soc-sec-no of students-enrolled >= 200000000.`},
		{"full enumeration (aggregate)", `From course Retrieve title Where min(soc-sec-no of students-enrolled) >= 200000000.`},
	}
	for _, f := range forms {
		el, _, rows, err := timeQuery(db, f.q, reps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{f.name, dur(el), fmt.Sprint(rows)})
	}
	return t, nil
}

// T7 — transitive closure (§4.7) over prerequisite chains of growing
// depth.
func T7(reps int) (*Table, error) {
	t := &Table{
		ID:     "T7",
		Title:  "Transitive closure over prerequisite chains",
		Header: []string{"chain length", "closure size", "time/query"},
		Notes:  "claim (§4.7): transitive closure works over any cyclic chain of EVAs; cost\ngrows with the closure, not the class.",
	}
	for _, n := range []int{8, 32, 128, 512} {
		db, err := BuildPrereqChain(sim.Config{}, n)
		if err != nil {
			return nil, err
		}
		q := fmt.Sprintf(`From course Retrieve count distinct (transitive(prerequisites)) Where course-no = %d.`, n)
		r, err := db.Query(q)
		if err != nil {
			db.Close()
			return nil, err
		}
		size := r.Rows()[0][0].String()
		el, _, _, err := timeQuery(db, q, reps)
		if err != nil {
			db.Close()
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), size, dur(el)})
		db.Close()
	}
	return t, nil
}

// T8 — integrity enforcement overhead (§3.3): updates with the paper's
// VERIFY assertions vs the same schema without them.
func T8(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "T8",
		Title:  "VERIFY enforcement: trigger detection + targeted re-check overhead",
		Header: []string{"schema", "operation", "time/stmt"},
		Notes:  "claim (§3.3): constraints are \"handled by a trigger detection / query\nenhancement mechanism that works efficiently for a subset of constraints\" —\nonly affected entities are re-verified.",
	}
	plain := stripVerifies()
	for _, env := range []struct{ name, ddl string }{
		{"with verifies", ""},
		{"without verifies", plain},
	} {
		var db *sim.Database
		var err error
		if env.ddl == "" {
			db, err = BuildUniversity(sim.Config{}, w)
		} else {
			db, err = sim.Open("", sim.Config{})
			if err == nil {
				if err = db.DefineSchema(env.ddl); err == nil {
					err = Populate(db, w)
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", env.name, err)
		}
		ops := []struct{ name, stmt string }{
			{"modify salary", `Modify instructor (salary := salary + 1) Where employee-nbr = 1005.`},
			{"modify course credits", `Modify course (credits := 14) Where course-no = 3.`},
		}
		for _, op := range ops {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := db.Exec(op.stmt); err != nil {
					db.Close()
					return nil, fmt.Errorf("%s: %w", op.name, err)
				}
			}
			el := time.Since(start) / time.Duration(reps)
			t.Rows = append(t.Rows, []string{env.name, op.name, dur(el)})
		}
		db.Close()
	}
	return t, nil
}

// stripVerifies removes the Verify declarations from the university DDL.
func stripVerifies() string {
	src := universityDDL()
	var out []string
	skip := false
	for _, line := range strings.Split(src, "\n") {
		l := strings.TrimSpace(strings.ToLower(line))
		if strings.HasPrefix(l, "verify") {
			skip = true
		}
		if !skip {
			out = append(out, line)
		}
		if skip && strings.HasSuffix(l, ";") {
			skip = false
		}
	}
	return strings.Join(out, "\n")
}

// T9 — parallel read path (this repo's extension beyond the paper):
// aggregate throughput with concurrent clients sharing one database, and
// the plan cache's cold vs warm planning cost. Before measuring, parallel
// output is checked byte-identical against a Workers:1 database.
func T9(w Workload, reps, maxClients int) (*Table, error) {
	t := &Table{
		ID:     "T9",
		Title:  "Parallel read path: concurrent clients and plan cache",
		Header: []string{"section", "config", "time/query", "agg qps", "speedup"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d; queries share one database under a read lock; each Retrieve\nmay also split its outermost range across Config.Workers goroutines.\nParallel output verified byte-identical to a Workers:1 database first.",
			runtime.GOMAXPROCS(0)),
	}
	db, err := BuildUniversity(sim.Config{}, w)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	const q = `From student Retrieve name, name of advisor.`
	serial, err := BuildUniversity(sim.Config{Workers: 1}, w)
	if err != nil {
		return nil, err
	}
	rs, err := serial.Query(q)
	if err == nil {
		var rp *sim.Result
		if rp, err = db.Query(q); err == nil && rs.Format() != rp.Format() {
			err = fmt.Errorf("parallel result diverged from serial result")
		}
	}
	serial.Close()
	if err != nil {
		return nil, err
	}

	iters := 20 * reps
	var baseQPS float64
	for c := 1; c <= maxClients; c *= 2 {
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, c)
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if _, err := db.Query(q); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			return nil, err
		}
		el := time.Since(start)
		qps := float64(c*iters) / el.Seconds()
		if c == 1 {
			baseQPS = qps
		}
		t.Rows = append(t.Rows, []string{"concurrency", fmt.Sprintf("%d clients", c),
			dur(el / time.Duration(c*iters)), fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.2fx", qps/baseQPS)})
	}

	// Plan cache: a selective point query where parse+bind+optimize is a
	// large share of the per-query cost.
	const pq = `From person Retrieve name Where soc-sec-no = 100000001.`
	var coldPer, warmPer time.Duration
	for _, cc := range []struct {
		name string
		cfg  sim.Config
		per  *time.Duration
	}{
		{"cold (cache disabled)", sim.Config{PlanCacheSize: -1}, &coldPer},
		{"warm (cached plan)", sim.Config{}, &warmPer},
	} {
		cdb, err := BuildUniversity(cc.cfg, w)
		if err != nil {
			return nil, err
		}
		el, _, _, err := timeQuery(cdb, pq, iters)
		cdb.Close()
		if err != nil {
			return nil, err
		}
		*cc.per = el
	}
	t.Rows = append(t.Rows, []string{"plan cache", "cold (cache disabled)", dur(coldPer), "", "1.00x"})
	t.Rows = append(t.Rows, []string{"plan cache", "warm (cached plan)", dur(warmPer), "",
		fmt.Sprintf("%.2fx", float64(coldPer)/float64(warmPer))})
	for _, m := range []struct{ op, query string }{
		{"Query scan+eva (warm plan)", q},
		{"Query point lookup (warm plan)", pq},
	} {
		mq := m.query
		row, err := measureMem(m.op, func() error { _, err := db.Query(mq); return err })
		if err != nil {
			return nil, err
		}
		t.Mem = append(t.Mem, row)
	}
	return t, nil
}
