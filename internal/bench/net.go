package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"sim"
	"sim/client"
	"sim/internal/server"
)

// T10 — network read path (this repo's extension beyond the paper): the
// Figure 1 interface-product boundary as a TCP server. Measures remote
// queries/sec at 1..maxClients concurrent client connections against the
// in-process path over the same database, after verifying the remote
// result is byte-identical to in-process Query.
func T10(w Workload, reps, maxClients int) (*Table, error) {
	t := &Table{
		ID:     "T10",
		Title:  "Network read path: remote clients vs in-process queries",
		Header: []string{"mode", "clients", "time/query", "agg qps", "vs in-process"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d; one TCP connection per client, loopback transport; remote\nresults verified byte-identical to in-process Query before measuring.",
			runtime.GOMAXPROCS(0)),
	}
	db, err := BuildUniversity(sim.Config{}, w)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(db, server.Config{MaxConns: maxClients + 8})
	go srv.Serve(lis)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := lis.Addr().String()

	const q = `From student Retrieve name, name of advisor.`
	local, err := db.Query(q)
	if err != nil {
		return nil, err
	}
	probe, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	remote, err := probe.Query(q)
	probe.Close()
	if err != nil {
		return nil, err
	}
	if local.Format() != remote.Format() {
		return nil, fmt.Errorf("T10: remote result diverged from in-process result")
	}

	iters := 20 * reps

	// In-process baseline at the same concurrency levels, then remote
	// with one dedicated connection per client goroutine.
	inproc := map[int]float64{}
	for c := 1; c <= maxClients; c *= 2 {
		qps, err := measure(c, iters, func(int) (func() error, func(), error) {
			return func() error { _, err := db.Query(q); return err }, nil, nil
		})
		if err != nil {
			return nil, err
		}
		inproc[c] = qps
		t.Rows = append(t.Rows, []string{"in-process", fmt.Sprint(c),
			perQuery(c, iters, qps), fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.2fx", qps/inproc[1])})
	}
	for c := 1; c <= maxClients; c *= 2 {
		qps, err := measure(c, iters, func(int) (func() error, func(), error) {
			conn, err := client.Dial(addr)
			if err != nil {
				return nil, nil, err
			}
			return func() error { _, err := conn.Query(q); return err },
				func() { conn.Close() }, nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"remote", fmt.Sprint(c),
			perQuery(c, iters, qps), fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.2fx", qps/inproc[c])})
	}

	// Per-request allocation footprint of both paths, one connection.
	mrow, err := measureMem("in-process Query", func() error { _, err := db.Query(q); return err })
	if err != nil {
		return nil, err
	}
	t.Mem = append(t.Mem, mrow)
	mc, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	mrow, err = measureMem("remote Query (framing+decode)", func() error { _, err := mc.Query(q); return err })
	mc.Close()
	if err != nil {
		return nil, err
	}
	t.Mem = append(t.Mem, mrow)
	return t, nil
}

// perQuery renders mean latency per query given aggregate throughput.
func perQuery(clients, iters int, qps float64) string {
	if qps <= 0 {
		return "-"
	}
	return dur(time.Duration(float64(clients) * float64(time.Second) / qps))
}

// measure runs `clients` goroutines of `iters` operations each and
// returns aggregate operations/sec. setup is called once per goroutine
// (before the clock starts) to build its operation and optional cleanup.
func measure(clients, iters int, setup func(g int) (func() error, func(), error)) (float64, error) {
	ops := make([]func() error, clients)
	for g := range ops {
		op, cleanup, err := setup(g)
		if err != nil {
			return 0, err
		}
		if cleanup != nil {
			defer cleanup()
		}
		ops[g] = op
	}
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(op func() error) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := op(); err != nil {
					errc <- err
					return
				}
			}
		}(ops[g])
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return 0, err
	}
	return float64(clients*iters) / time.Since(start).Seconds(), nil
}
