package bench

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"sim"
	"sim/client"
	"sim/internal/repl"
	"sim/internal/server"
	"sim/internal/university"
)

// replNode is one server in the T14 topology: a database, its TCP
// server, and (on replicas) the replication follower.
type replNode struct {
	db       *sim.Database
	srv      *server.Server
	follower *repl.Follower
	addr     string
}

func (n *replNode) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
	if n.follower != nil {
		n.follower.Close()
	}
	n.db.Close()
}

// Repl — T14, WAL-shipped read replicas: aggregate remote read
// throughput at 0, 1, 2, ... maxFollowers read replicas versus the
// single-node ceiling, the staleness distribution a replica serves under
// sustained primary write load, and the time a cold follower needs to
// snapshot-catchup into a populated database.
func Repl(w Workload, reps, maxFollowers int) (*Table, error) {
	if maxFollowers < 1 {
		maxFollowers = 1
	}
	t := &Table{
		ID:     "T14",
		Title:  "Read replicas: follower read scaling, staleness, catch-up",
		Header: []string{"topology", "clients", "time/query", "agg qps", "vs primary-only", "reads on primary"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d; loopback TCP; primary file-backed with WAL shipping;\nreads sprayed round-robin across replicas via client.DialMulti.\nAll nodes share this host's cores, so 'agg qps' is bounded by the host,\nnot the topology; 'reads on primary' is the offload that becomes extra\naggregate capacity when each replica has its own cores.",
			runtime.GOMAXPROCS(0)),
	}
	dir, err := os.MkdirTemp("", "sim-repl-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// File-backed primary: replication ships the WAL, so the publisher
	// requires a durable database.
	pdb, err := sim.Open(filepath.Join(dir, "primary.db"), sim.Config{})
	if err != nil {
		return nil, err
	}
	if err := pdb.DefineSchema(university.DDL); err != nil {
		pdb.Close()
		return nil, err
	}
	if err := Populate(pdb, w); err != nil {
		pdb.Close()
		return nil, err
	}
	pub, err := repl.NewPublisher(pdb, repl.Config{})
	if err != nil {
		pdb.Close()
		return nil, err
	}
	primary, err := startReplNode(pdb, server.Config{
		MaxConns:  256,
		Publisher: pub,
	})
	if err != nil {
		pdb.Close()
		return nil, err
	}
	defer primary.close()

	// Cold followers join a populated primary: each catch-up is one base
	// snapshot plus the live tail.
	var replicas []*replNode
	defer func() {
		for _, r := range replicas {
			r.close()
		}
	}()
	var catchup []time.Duration
	for i := 0; i < maxFollowers; i++ {
		rdb, err := sim.Open(filepath.Join(dir, fmt.Sprintf("replica-%d.db", i)), sim.Config{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		f, err := repl.StartFollower(rdb, filepath.Join(dir, fmt.Sprintf("replica-%d.db.repl", i)), repl.FollowerConfig{
			Primary: primary.addr,
		})
		if err != nil {
			rdb.Close()
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = f.WaitReady(ctx)
		cancel()
		if err != nil {
			f.Close()
			rdb.Close()
			return nil, err
		}
		catchup = append(catchup, time.Since(start))
		node, err := startReplNode(rdb, server.Config{
			MaxConns: 256,
			ReadOnly: true,
		})
		if err != nil {
			f.Close()
			rdb.Close()
			return nil, err
		}
		node.follower = f
		replicas = append(replicas, node)
	}

	// Correctness gate: a replica must serve byte-identical results.
	const q = `From student Retrieve name, name of advisor.`
	local, err := pdb.Query(q)
	if err != nil {
		return nil, err
	}
	probe, err := client.Dial(replicas[0].addr)
	if err != nil {
		return nil, err
	}
	remote, err := probe.Query(q)
	probe.Close()
	if err != nil {
		return nil, err
	}
	if local.Format() != remote.Format() {
		return nil, fmt.Errorf("T14: replica result diverged from the primary")
	}

	// Read throughput: primary only, then primary + n replicas with reads
	// sprayed across the replicas — first against an idle primary, then
	// against a primary under sustained write load, where replica reads
	// dodge the commit path entirely.
	clients := 8
	iters := 20 * reps
	for _, loaded := range []bool{false, true} {
		var stopWriter func() error
		if loaded {
			var err error
			stopWriter, err = replWriteLoad(primary.addr)
			if err != nil {
				return nil, err
			}
		}
		var baseline float64
		for nf := 0; nf <= len(replicas); nf++ {
			addrs := []string{primary.addr}
			for _, r := range replicas[:nf] {
				addrs = append(addrs, r.addr)
			}
			// Warm every node's plan cache and connection path before timing.
			warm, err := client.DialMulti(addrs)
			if err != nil {
				return nil, err
			}
			for i := 0; i <= nf; i++ {
				if _, err := warm.Query(q); err != nil {
					warm.Close()
					return nil, err
				}
			}
			warm.Close()
			before := primary.srv.Stats().Requests
			qps, err := measure(clients, iters, func(int) (func() error, func(), error) {
				m, err := client.DialMulti(addrs)
				if err != nil {
					return nil, nil, err
				}
				return func() error { _, err := m.Query(q); return err },
					func() { m.Close() }, nil
			})
			if err != nil {
				return nil, err
			}
			if nf == 0 {
				baseline = qps
			}
			// Handshakes and the background writer also count as primary
			// requests; the share is still dominated by the read spray.
			onPrimary := primary.srv.Stats().Requests - before
			total := uint64(clients * iters)
			share := fmt.Sprintf("%d%%", min(100*onPrimary/total, 100))
			label := "primary only"
			if nf > 0 {
				label = fmt.Sprintf("primary+%d replicas", nf)
			}
			if loaded {
				label += ", write load"
			}
			t.Rows = append(t.Rows, []string{label, fmt.Sprint(clients),
				perQuery(clients, iters, qps), fmt.Sprintf("%.0f", qps),
				fmt.Sprintf("%.2fx", qps/baseline), share})
		}
		if stopWriter != nil {
			if err := stopWriter(); err != nil {
				return nil, err
			}
		}
	}

	// Staleness under write load: write a visible marker on the primary,
	// poll one replica until it appears; the elapsed time is one sample of
	// the staleness a follower read can observe.
	samples, err := replStaleness(primary.addr, replicas[0].addr, 10*reps)
	if err != nil {
		return nil, err
	}
	t.Notes += fmt.Sprintf("\nstaleness under write load (%d marker writes): p50=%s p95=%s max=%s",
		len(samples), dur(pct(samples, 50)), dur(pct(samples, 95)), dur(samples[len(samples)-1]))
	t.Notes += fmt.Sprintf("\ncold-follower snapshot catch-up into the populated database: first=%s",
		dur(catchup[0]))

	// Allocation footprint of the replica read path next to the primary's.
	mc, err := client.Dial(primary.addr)
	if err != nil {
		return nil, err
	}
	mrow, err := measureMem("remote Query (primary)", func() error { _, err := mc.Query(q); return err })
	mc.Close()
	if err != nil {
		return nil, err
	}
	t.Mem = append(t.Mem, mrow)
	mm, err := client.DialMulti(append([]string{primary.addr}, replicas[0].addr))
	if err != nil {
		return nil, err
	}
	mrow, err = measureMem("remote Query (replica via DialMulti)", func() error { _, err := mm.Query(q); return err })
	mm.Close()
	if err != nil {
		return nil, err
	}
	t.Mem = append(t.Mem, mrow)
	return t, nil
}

// startReplNode serves db on a loopback listener.
func startReplNode(db *sim.Database, cfg server.Config) (*replNode, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(db, cfg)
	go srv.Serve(lis)
	return &replNode{db: db, srv: srv, addr: lis.Addr().String()}, nil
}

// replWriteLoad hammers the primary with single-row updates from a
// background goroutine until the returned stop function is called.
func replWriteLoad(addr string) (stop func() error, err error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	quit := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		i := 0
		for {
			select {
			case <-quit:
				done <- nil
				return
			default:
			}
			stmt := fmt.Sprintf(`Modify course (title := "Load %06d") Where course-no = 1.`, i)
			if _, err := c.Exec(stmt); err != nil {
				done <- err
				return
			}
			i++
		}
	}()
	return func() error {
		close(quit)
		err := <-done
		c.Close()
		return err
	}, nil
}

// replStaleness writes n markers on the primary and measures how long
// each takes to become visible on the replica. Returned samples are
// sorted ascending.
func replStaleness(primaryAddr, replicaAddr string, n int) ([]time.Duration, error) {
	pc, err := client.Dial(primaryAddr)
	if err != nil {
		return nil, err
	}
	defer pc.Close()
	rc, err := client.Dial(replicaAddr)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		no := 9000 + i // course-no is integer(1..9999); Populate stays far below
		stmt := fmt.Sprintf(`Insert course (course-no := %d, title := "Marker %04d", credits := 15).`, no, i)
		if _, err := pc.Exec(stmt); err != nil {
			return nil, err
		}
		start := time.Now()
		probe := fmt.Sprintf(`From course Retrieve title Where course-no = %d.`, no)
		deadline := start.Add(10 * time.Second)
		for {
			r, err := rc.Query(probe)
			if err != nil {
				return nil, err
			}
			if r.NumRows() > 0 {
				samples = append(samples, time.Since(start))
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("T14: marker %d never became visible on the replica", i)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples, nil
}

// pct returns the p-th percentile of sorted samples.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}
