package bench

import (
	"fmt"
	"time"

	"sim"
)

// Obs — tracing overhead (this repo's observability extension): the §4.5
// query tree instrumented with per-node spans and cache deltas, measured
// against the untraced path on the T9 workload and query. The target is
// that full span collection costs under ~3% per query, so EXPLAIN
// ANALYZE and \timing are cheap enough to leave on in development.
func Obs(w Workload, reps int) (*Table, error) {
	t := &Table{
		ID:     "OBS",
		Title:  "Tracing overhead: untraced Query vs QueryTrace vs ExplainAnalyze",
		Header: []string{"path", "time/query", "rows", "overhead"},
		Notes:  "QueryTrace collects parse/plan/exec spans, per-node rows and walls, and\npager/LUC-cache deltas; ExplainAnalyze additionally renders the annotated\ntree. The untraced path pays only nil checks for the same machinery.",
	}
	db, err := BuildUniversity(sim.Config{}, w)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	const q = `From student Retrieve name, name of advisor.`
	iters := 20 * reps

	// Warm the plan cache and page pool on both paths before timing.
	if _, err := db.Query(q); err != nil {
		return nil, err
	}
	if _, _, err := db.QueryTrace(q); err != nil {
		return nil, err
	}

	paths := []struct {
		name string
		run  func() (int, error)
	}{
		{"untraced", func() (int, error) {
			r, err := db.Query(q)
			if err != nil {
				return 0, err
			}
			return r.NumRows(), nil
		}},
		{"traced", func() (int, error) {
			r, _, err := db.QueryTrace(q)
			if err != nil {
				return 0, err
			}
			return r.NumRows(), nil
		}},
		{"traced+rendered", func() (int, error) {
			r, tr, err := db.QueryTrace(q)
			if err != nil {
				return 0, err
			}
			_ = tr.Render()
			return r.NumRows(), nil
		}},
	}
	var base time.Duration
	for _, p := range paths {
		rows := 0
		start := time.Now()
		for i := 0; i < iters; i++ {
			n, err := p.run()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.name, err)
			}
			if i == 0 {
				rows = n
			}
		}
		el := time.Since(start) / time.Duration(iters)
		if p.name == "untraced" {
			base = el
		}
		over := fmt.Sprintf("%+.1f%%", 100*(float64(el)/float64(base)-1))
		t.Rows = append(t.Rows, []string{p.name, dur(el), fmt.Sprint(rows), over})
	}
	for _, p := range paths {
		run := p.run
		row, err := measureMem(p.name, func() error { _, err := run(); return err })
		if err != nil {
			return nil, err
		}
		t.Mem = append(t.Mem, row)
	}
	return t, nil
}
