package integrity

import (
	"strings"
	"testing"

	"sim/internal/catalog"
	"sim/internal/parser"
	"sim/internal/university"
)

func analyzed(t *testing.T, extraDDL string) []*Constraint {
	t.Helper()
	sch, err := parser.ParseSchema(university.DDL + extraDDL)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Build(sch)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Analyze(cat)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func find(t *testing.T, cs []*Constraint, name string) *Constraint {
	t.Helper()
	for _, c := range cs {
		if c.Verify.Name == name {
			return c
		}
	}
	t.Fatalf("constraint %s missing", name)
	return nil
}

func attr(t *testing.T, c *Constraint, class, name string) *catalog.Attribute {
	t.Helper()
	cl := c.Tree.Roots[0].Class
	_ = cl
	a := catalog.ResolveAttr(findClass(t, c, class), name)
	if a == nil {
		t.Fatalf("attribute %s.%s missing", class, name)
	}
	return a
}

func findClass(t *testing.T, c *Constraint, name string) *catalog.Class {
	t.Helper()
	// Walk up from the constraint's class to its catalog via the tree.
	for _, cl := range append([]*catalog.Class{c.Verify.Class.Base}, catalog.HierarchyClasses(c.Verify.Class.Base)...) {
		if strings.EqualFold(cl.Name, name) {
			return cl
		}
	}
	// Fall back: search every hierarchy reachable from trigger refs.
	t.Fatalf("class %s not reachable from constraint", name)
	return nil
}

// v1: sum(credits of courses-enrolled) >= 12 on Student.
func TestV1Triggers(t *testing.T) {
	cs := analyzed(t, "")
	v1 := find(t, cs, "v1")

	// credits of a course: trigger with inverse path through the
	// enrollment EVA.
	course := v1.Tree.Roots[0] // placeholder to reach the catalog
	_ = course
	var credits, enrolled *catalog.Attribute
	for _, n := range v1.Tree.Nodes {
		if n.Edge != nil && strings.EqualFold(n.Edge.Name, "courses-enrolled") {
			enrolled = n.Edge
			credits = catalog.ResolveAttr(n.Edge.Range, "credits")
		}
	}
	if credits == nil || enrolled == nil {
		t.Fatal("v1 tree lacks the enrollment chain")
	}
	paths, all := v1.DVATriggers(credits)
	if all {
		t.Fatal("credits trigger should be bounded")
	}
	if len(paths) != 1 || len(paths[0]) != 1 || paths[0][0] != enrolled {
		t.Fatalf("credits trigger paths = %v", paths)
	}
	// The enrollment EVA itself triggers with an empty path from the
	// student side.
	trigs, all := v1.EVATriggers(enrolled)
	if all || len(trigs) == 0 {
		t.Fatalf("enrollment triggers = %v, all=%v", trigs, all)
	}
	if trigs[0].Ref != enrolled || len(trigs[0].Path) != 0 {
		t.Errorf("enrollment trigger = %+v", trigs[0])
	}
	// Unrelated attributes do not trigger.
	salary := catalog.ResolveAttr(v1.Verify.Class.Base, "name")
	if paths, all := v1.DVATriggers(salary); all || len(paths) != 0 {
		t.Errorf("name triggers v1: %v %v", paths, all)
	}
	// Becoming a student triggers a check of the new student.
	if got := v1.RoleTriggers(v1.Verify.Class); len(got) == 0 {
		t.Error("student role gain does not trigger v1")
	}
}

// v2: salary + bonus < 100000 on Instructor — direct attribute triggers.
func TestV2Triggers(t *testing.T) {
	cs := analyzed(t, "")
	v2 := find(t, cs, "v2")
	salary := catalog.ResolveAttr(v2.Verify.Class, "salary")
	paths, all := v2.DVATriggers(salary)
	if all || len(paths) != 1 || len(paths[0]) != 0 {
		t.Fatalf("salary trigger = %v all=%v, want one empty path", paths, all)
	}
}

// A constraint with a standalone aggregate is a global trigger.
func TestGlobalTriggerForStandaloneScan(t *testing.T) {
	cs := analyzed(t, `
Verify v3 on Instructor
  assert salary <= avg(salary of instructor) * 3
  else "salary too far above average";`)
	v3 := find(t, cs, "v3")
	salary := catalog.ResolveAttr(v3.Verify.Class, "salary")
	_, all := v3.DVATriggers(salary)
	if !all {
		t.Error("standalone-scan reference should force whole-class re-check")
	}
}

// A transitive closure in the assertion cannot be bounded either.
func TestGlobalTriggerForTransitive(t *testing.T) {
	cs := analyzed(t, `
Verify v4 on Course
  assert count(transitive(prerequisites)) < 100
  else "prerequisite chain too deep";`)
	v4 := find(t, cs, "v4")
	var prereq *catalog.Attribute
	for _, n := range v4.Tree.Nodes {
		if n.Edge != nil && strings.EqualFold(n.Edge.Name, "prerequisites") {
			prereq = n.Edge
		}
	}
	if prereq == nil {
		t.Fatal("prerequisites edge missing")
	}
	_, all := v4.EVATriggers(prereq)
	if !all {
		t.Error("transitive reference should force whole-class re-check")
	}
}

func TestAnalyzeRejectsBrokenAssertion(t *testing.T) {
	sch, err := parser.ParseSchema(university.DDL + `
Verify bad on Student assert no-such-attr > 0;`)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Build(sch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(cat); err == nil {
		t.Error("unresolvable assertion accepted")
	}
}

func TestTriggersRecordedOnVerify(t *testing.T) {
	cs := analyzed(t, "")
	v1 := find(t, cs, "v1")
	found := false
	for k := range v1.Verify.Triggers {
		if strings.Contains(strings.ToLower(k), "credits") {
			found = true
		}
	}
	if !found {
		t.Errorf("trigger introspection missing credits: %v", v1.Verify.Triggers)
	}
}
