// Package integrity analyzes VERIFY assertions (§3.3): for each constraint
// it determines "all possible events that may cause this condition to be
// violated" — the trigger set — and the inverse relationship path from each
// trigger to the entities of the constraint's class that must be
// re-verified. Enforcement lives in the executor; this package is pure
// analysis over the catalog and bound query trees.
package integrity

import (
	"fmt"

	"sim/internal/catalog"
	"sim/internal/query"
)

// Path is the chain of EVA edges from a triggering entity back to the
// constraint's perspective; enforcement walks each edge's inverse.
type Path []*catalog.Attribute

// EVATrigger records that instances of Ref's relationship affect the
// assertion; the affected perspective entities are reached by walking Path
// upward from the Ref-owner-side endpoint.
type EVATrigger struct {
	Ref  *catalog.Attribute
	Path Path
}

// Constraint is one analyzed VERIFY.
type Constraint struct {
	Verify *catalog.Verify
	Tree   *query.Tree

	dva       map[*catalog.Attribute][]Path
	eva       map[*catalog.Attribute][]EVATrigger // keyed by canonical attribute
	roles     map[*catalog.Class][]Path           // subrole/ISA-sensitive classes
	globalDVA map[*catalog.Attribute]bool         // attr referenced under a standalone scan
	globalEVA map[*catalog.Attribute]bool
}

// canonicalOf picks the pair representative (lower attribute id).
func canonicalOf(a *catalog.Attribute) *catalog.Attribute {
	if a.Inverse != nil && a.Inverse.ID < a.ID {
		return a.Inverse
	}
	return a
}

// Analyze binds and analyzes every VERIFY in the catalog.
func Analyze(cat *catalog.Catalog) ([]*Constraint, error) {
	var out []*Constraint
	for _, v := range cat.Verifies() {
		c, err := analyzeOne(cat, v)
		if err != nil {
			return nil, fmt.Errorf("verify %s: %w", v.Name, err)
		}
		out = append(out, c)
	}
	return out, nil
}

func analyzeOne(cat *catalog.Catalog, v *catalog.Verify) (*Constraint, error) {
	t, err := query.BindSelection(cat, v.Class, v.Assert)
	if err != nil {
		return nil, err
	}
	c := &Constraint{
		Verify:    v,
		Tree:      t,
		dva:       make(map[*catalog.Attribute][]Path),
		eva:       make(map[*catalog.Attribute][]EVATrigger),
		roles:     make(map[*catalog.Class][]Path),
		globalDVA: make(map[*catalog.Attribute]bool),
		globalEVA: make(map[*catalog.Attribute]bool),
	}
	// Record the trigger set in v for introspection.
	v.Triggers = make(map[string]bool)

	// Relationship edges referenced anywhere in the tree.
	for _, n := range t.Nodes {
		if n.Edge == nil {
			continue
		}
		switch n.Edge.Kind {
		case catalog.EVA:
			path, global := pathUp(n.Parent)
			can := canonicalOf(n.Edge)
			if global || n.Transitive {
				c.globalEVA[can] = true
			} else {
				c.eva[can] = append(c.eva[can], EVATrigger{Ref: n.Edge, Path: path})
			}
			v.Triggers[lowerName(n.Edge)] = true
		case catalog.DVA: // multi-valued DVA value node
			path, global := pathUp(n.Parent)
			if global {
				c.globalDVA[n.Edge] = true
			} else {
				c.dva[n.Edge] = append(c.dva[n.Edge], path)
			}
			v.Triggers[lowerName(n.Edge)] = true
		case catalog.Subrole:
			path, global := pathUp(n.Parent)
			for _, sub := range n.Edge.SubroleOf {
				if global {
					c.roles[sub] = append(c.roles[sub], nil)
				} else {
					c.roles[sub] = append(c.roles[sub], path)
				}
			}
		}
	}

	// Scalar references in the assertion and in every subquery value.
	record := func(e query.Expr) {
		query.Walk(e, func(x query.Expr) {
			switch x := x.(type) {
			case *query.AttrRef:
				path, global := pathUp(x.Node)
				if x.Attr.Kind == catalog.Subrole {
					for _, sub := range x.Attr.SubroleOf {
						c.roles[sub] = append(c.roles[sub], path)
					}
					return
				}
				if global {
					c.globalDVA[x.Attr] = true
				} else {
					c.dva[x.Attr] = append(c.dva[x.Attr], path)
				}
				v.Triggers[lowerName(x.Attr)] = true
			case *query.Isa:
				path, _ := pathUp(x.Node)
				for _, cl := range catalog.HierarchyClasses(x.Class.Base) {
					c.roles[cl] = append(c.roles[cl], path)
				}
			}
		})
	}
	record(t.Where)

	// Creating or extending an entity into the constraint's class (or a
	// descendant) always triggers a check of that entity.
	c.roles[v.Class] = append(c.roles[v.Class], Path{})
	for _, d := range catalog.Descendants(v.Class) {
		c.roles[d] = append(c.roles[d], Path{})
	}
	return c, nil
}

func lowerName(a *catalog.Attribute) string {
	return a.Owner.Name + "." + a.Name
}

// pathUp returns the EVA edges from node n back to the perspective root
// (n-first). global is true when the chain passes a standalone subquery
// scan or a transitive edge, in which case affected entities cannot be
// bounded and the whole class must be re-checked.
func pathUp(n *query.Node) (Path, bool) {
	var path Path
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.IsRoot() {
			if cur.Sub {
				return nil, true // standalone subquery scan
			}
			return path, false
		}
		if cur.Edge != nil && cur.Edge.Kind != catalog.EVA {
			continue // value node: its entity parent carries the path
		}
		if cur.Edge == nil || cur.Transitive {
			return nil, true
		}
		path = append(path, cur.Edge)
	}
	return path, false
}

// DVATriggers returns the trigger paths for a single- or multi-valued DVA,
// or checkAll when the attribute is referenced under an unbounded scope.
func (c *Constraint) DVATriggers(a *catalog.Attribute) ([]Path, bool) {
	if c.globalDVA[a] {
		return nil, true
	}
	return c.dva[a], false
}

// EVATriggers returns the triggers for a relationship (either direction),
// or checkAll.
func (c *Constraint) EVATriggers(a *catalog.Attribute) ([]EVATrigger, bool) {
	can := canonicalOf(a)
	if c.globalEVA[can] {
		return nil, true
	}
	return c.eva[can], false
}

// RoleTriggers returns the trigger paths for gaining or losing a role in
// cl: the affected entities are reached by walking each path upward from
// the event's entity (an empty path means the entity itself).
func (c *Constraint) RoleTriggers(cl *catalog.Class) []Path {
	return c.roles[cl]
}
