package exec

import (
	"fmt"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/plan"
	"sim/internal/query"
	"sim/internal/value"
)

// This file lowers a bound query tree into a Program: one typed closure
// per expression node and one domain enumerator per range variable. The
// hot loop then runs no type switches, no fmt formatting and no query-tree
// traversal — it calls a chain of funcs whose shapes were decided once per
// statement (cached alongside the plan, so repeated DML text skips
// compilation entirely). The recursive evaluator in eval.go is retained as
// the reference semantics; the compiled path must agree with it exactly,
// and the equality suite in the root package enforces that.

// evalFn evaluates one compiled value expression against the scratch.
type evalFn func(sc *scratch) (value.Value, error)

// triFn evaluates one compiled boolean expression to a Kleene truth value.
type triFn func(sc *scratch) (value.Tri, error)

// domFn appends the instances of one range variable (under the current
// parent binding) to buf, prefetching decoded records in batches.
type domFn func(sc *scratch, buf []inst) ([]inst, error)

// subFn collects a subquery chain's non-NULL values onto sc.sub and
// returns the collected slice plus the stack mark the caller must truncate
// back to (sc.sub = sc.sub[:mark]) once done with the values.
type subFn func(sc *scratch) (vals []value.Value, mark int, err error)

// Program is one query's compiled form. It is immutable after Compile and
// safe to share across concurrent executions of the same plan: all mutable
// state lives in the per-execution scratch.
type Program struct {
	tree   *query.Tree
	main   []*query.Node
	exist  []*query.Node
	doms   []domFn // by node id; set for main and existential nodes
	target []evalFn
	orderBy []evalFn
	where  triFn
	nNodes int
}

// Compile lowers a planned query into a Program. Constructs the compiler
// does not understand return an error; callers fall back to the reference
// tree-walker, which reproduces the same runtime behavior.
func (e *Executor) Compile(p *plan.Plan) (*Program, error) {
	t := p.Tree
	prog := &Program{
		tree:   t,
		main:   t.MainNodes(),
		exist:  t.ExistNodes(),
		doms:   make([]domFn, len(t.Nodes)),
		nNodes: len(t.Nodes),
	}
	for _, n := range prog.main {
		prog.doms[n.ID] = e.compileDomain(p, t, n)
	}
	for _, n := range prog.exist {
		// The reference path enumerates existential domains with no plan
		// (selectionHolds passes nil); mirror that.
		prog.doms[n.ID] = e.compileDomain(nil, t, n)
	}
	prog.target = make([]evalFn, len(t.Targets))
	for i, tg := range t.Targets {
		fn, err := e.compileExpr(t, tg)
		if err != nil {
			return nil, err
		}
		prog.target[i] = fn
	}
	for _, ob := range t.OrderBy {
		fn, err := e.compileExpr(t, ob)
		if err != nil {
			return nil, err
		}
		prog.orderBy = append(prog.orderBy, fn)
	}
	if t.Where != nil {
		fn, err := e.compileTri(t, t.Where)
		if err != nil {
			return nil, err
		}
		prog.where = fn
	}
	return prog, nil
}

func unboundErr(n *query.Node) error {
	return fmt.Errorf("exec: range variable %q unbound", n.Label())
}

// ---------------------------------------------------------------------------
// Domain compilation
// ---------------------------------------------------------------------------

// compileDomain resolves node n's enumeration strategy once: root access
// path, EVA walk, transitive closure, subrole or MV DVA expansion. The
// returned closure appends instances to buf and batch-prefetches decoded
// records for entity domains in single-record hierarchies.
func (e *Executor) compileDomain(p *plan.Plan, t *query.Tree, n *query.Node) domFn {
	if n.IsRoot() || (n.Sub && n.Parent == nil) {
		return e.compileRootDomain(p, t, n)
	}
	pid := n.Parent.ID
	parentNode := n.Parent
	edge := n.Edge
	switch {
	case edge.Kind == catalog.EVA && n.Transitive:
		cl := n.Class
		return func(sc *scratch, buf []inst) ([]inst, error) {
			pit, ok, err := parentInst(sc, pid, parentNode)
			if err != nil || !ok {
				return buf, err
			}
			// Closure queries are rare; reuse the reference implementation
			// and just batch the record prefetch for what it found.
			out, err := closureOver(sc.m, pit.surr, edge)
			if err != nil {
				return buf, err
			}
			base := len(buf)
			buf = append(buf, out...)
			return buf, e.fillRecs(sc, cl, buf[base:])
		}
	case edge.Kind == catalog.EVA:
		cl := n.Class
		fkFast := e.m.FKHolder(edge)
		return func(sc *scratch, buf []inst) ([]inst, error) {
			pit, ok, err := parentInst(sc, pid, parentNode)
			if err != nil || !ok {
				return buf, err
			}
			base := len(buf)
			if fkFast && pit.rec.Valid() {
				// The partner surrogate sits in the already-decoded record's
				// FK slot: zero probes.
				if v := pit.rec.Single(edge); !v.IsNull() {
					buf = append(buf, inst{surr: v.Surrogate()})
				}
			} else {
				ss, err := sc.m.GetEVAInto(sc.surrs[:0], pit.surr, edge)
				if err != nil {
					return buf, err
				}
				for _, s := range ss {
					buf = append(buf, inst{surr: s})
				}
				sc.surrs = ss[:0]
			}
			return buf, e.fillRecs(sc, cl, buf[base:])
		}
	case edge.Kind == catalog.Subrole:
		srFast := e.m.Batchable(edge.Owner) && parentNode.Class.Base == edge.Owner.Base
		return func(sc *scratch, buf []inst) ([]inst, error) {
			pit, ok, err := parentInst(sc, pid, parentNode)
			if err != nil || !ok {
				return buf, err
			}
			if srFast && pit.rec.Valid() {
				for ord, sub := range edge.SubroleOf {
					if pit.rec.HasRole(sub.ID) {
						buf = append(buf, inst{val: value.NewSymbolic(sub.Name, ord)})
					}
				}
				return buf, nil
			}
			vals, err := sc.m.Subrole(pit.surr, edge)
			if err != nil {
				return buf, err
			}
			for _, v := range vals {
				buf = append(buf, inst{val: v})
			}
			return buf, nil
		}
	default: // MV DVA
		mvFast := !e.m.MVSeparate(edge) && parentNode.Class.Base == edge.Owner.Base
		return func(sc *scratch, buf []inst) ([]inst, error) {
			pit, ok, err := parentInst(sc, pid, parentNode)
			if err != nil || !ok {
				return buf, err
			}
			if mvFast && pit.rec.Valid() {
				// Values copy into instances here, so aliasing the shared
				// record's slice is safe.
				for _, v := range pit.rec.MultiRaw(edge) {
					buf = append(buf, inst{val: v})
				}
				return buf, nil
			}
			vals, err := sc.m.GetMV(pit.surr, edge)
			if err != nil {
				return buf, err
			}
			for _, v := range vals {
				buf = append(buf, inst{val: v})
			}
			return buf, nil
		}
	}
}

// parentInst fetches the parent binding; ok is false (with nil error) for
// outer-join dummies, whose children have empty domains.
func parentInst(sc *scratch, pid int, pn *query.Node) (inst, bool, error) {
	if !sc.set[pid] {
		return inst{}, false, unboundErr(pn)
	}
	it := sc.insts[pid]
	if it.null {
		return inst{}, false, nil
	}
	return it, true, nil
}

// compileRootDomain resolves the planned access path for a perspective
// root (or subquery-chain anchor, which always scans: the reference path
// enumerates those with no plan).
func (e *Executor) compileRootDomain(p *plan.Plan, t *query.Tree, n *query.Node) domFn {
	var access plan.RootAccess
	if p != nil {
		for i, r := range t.Roots {
			if r == n && i < len(p.Access) {
				access = p.Access[i]
			}
		}
	}
	cl := n.Class
	switch a := access.(type) {
	case *plan.UniqueAccess:
		return func(sc *scratch, buf []inst) ([]inst, error) {
			s, found, err := sc.m.LookupUnique(a.Attr, a.Key)
			if err != nil || !found {
				return buf, err
			}
			return e.appendWithRole(sc, buf, []value.Surrogate{s}, cl)
		}
	case *plan.RangeAccess:
		return func(sc *scratch, buf []inst) ([]inst, error) {
			ss, err := sc.m.IndexScan(a.Attr, lucBound(a.Lo), lucBound(a.Hi))
			if err != nil {
				return buf, err
			}
			return e.appendWithRole(sc, buf, sortSurrs(ss), cl)
		}
	case *plan.PivotAccess:
		return func(sc *scratch, buf []inst) ([]inst, error) {
			ss, err := pivotRootsOver(sc.m, a)
			if err != nil {
				return buf, err
			}
			return e.appendWithRole(sc, buf, ss, cl)
		}
	default:
		return func(sc *scratch, buf []inst) ([]inst, error) {
			c, err := sc.m.Scan(cl)
			if err != nil {
				return buf, err
			}
			base := len(buf)
			for ; c.Valid(); c.Next() {
				buf = append(buf, inst{surr: c.Surrogate()})
			}
			if err := c.Err(); err != nil {
				return buf, err
			}
			return buf, e.fillRecs(sc, cl, buf[base:])
		}
	}
}

// appendWithRole filters candidate surrogates to entities holding cl's
// role and appends them with prefetched records. In batchable hierarchies
// the role test reads the prefetched record instead of probing per entity.
func (e *Executor) appendWithRole(sc *scratch, buf []inst, ss []value.Surrogate, cl *catalog.Class) ([]inst, error) {
	base := len(buf)
	if sc.m.Batchable(cl) {
		for _, s := range ss {
			buf = append(buf, inst{surr: s})
		}
		if err := e.fillRecs(sc, cl, buf[base:]); err != nil {
			return buf, err
		}
		kept := buf[:base]
		for _, it := range buf[base:] {
			if it.rec.HasRole(cl.ID) {
				kept = append(kept, it)
			}
		}
		// Zero the tail so dropped entries don't pin records.
		for i := len(kept); i < len(buf); i++ {
			buf[i] = inst{}
		}
		return kept, nil
	}
	for _, s := range ss {
		ok, err := sc.m.HasRole(s, cl)
		if err != nil {
			return buf, err
		}
		if ok {
			buf = append(buf, inst{surr: s})
		}
	}
	return buf, nil
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

// compileExpr mirrors eval case by case.
func (e *Executor) compileExpr(t *query.Tree, x query.Expr) (evalFn, error) {
	switch x := x.(type) {
	case *query.Lit:
		v := x.Val
		return func(*scratch) (value.Value, error) { return v, nil }, nil
	case *query.AttrRef:
		return e.compileAttrRef(x)
	case *query.EntityRef:
		n := x.Node
		id := n.ID
		return func(sc *scratch) (value.Value, error) {
			if !sc.set[id] {
				return value.Null, unboundErr(n)
			}
			it := &sc.insts[id]
			if it.null {
				return value.Null, nil
			}
			return value.NewSurrogate(it.surr), nil
		}, nil
	case *query.ValueRef:
		n := x.Node
		id := n.ID
		return func(sc *scratch) (value.Value, error) {
			if !sc.set[id] {
				return value.Null, unboundErr(n)
			}
			it := &sc.insts[id]
			if it.null {
				return value.Null, nil
			}
			return it.val, nil
		}, nil
	case *query.Unary:
		if x.Op == ast.OpNot {
			return e.triAsValue(t, x)
		}
		xf, err := e.compileExpr(t, x.X)
		if err != nil {
			return nil, err
		}
		zero := value.NewInt(0)
		return func(sc *scratch) (value.Value, error) {
			v, err := xf(sc)
			if err != nil {
				return value.Null, err
			}
			return value.OpSub.Apply(zero, v)
		}, nil
	case *query.Binary:
		switch x.Op {
		case ast.OpAnd, ast.OpOr, ast.OpEQ, ast.OpNEQ, ast.OpLT, ast.OpLE,
			ast.OpGT, ast.OpGE, ast.OpLike:
			return e.triAsValue(t, x)
		}
		lf, err := e.compileExpr(t, x.L)
		if err != nil {
			return nil, err
		}
		rf, err := e.compileExpr(t, x.R)
		if err != nil {
			return nil, err
		}
		op := arith(x.Op)
		return func(sc *scratch) (value.Value, error) {
			l, err := lf(sc)
			if err != nil {
				return value.Null, err
			}
			r, err := rf(sc)
			if err != nil {
				return value.Null, err
			}
			return op.Apply(l, r)
		}, nil
	case *query.Agg:
		return e.compileAgg(t, x)
	case *query.Isa:
		return e.triAsValue(t, x)
	case *query.Quant:
		return e.triAsValue(t, x)
	}
	return nil, fmt.Errorf("exec: cannot compile %T", x)
}

// triAsValue wraps a boolean subexpression for value position: NULL for
// unknown, a boolean value otherwise (eval's triValue).
func (e *Executor) triAsValue(t *query.Tree, x query.Expr) (evalFn, error) {
	tf, err := e.compileTri(t, x)
	if err != nil {
		return nil, err
	}
	return func(sc *scratch) (value.Value, error) {
		tr, err := tf(sc)
		if err != nil {
			return value.Null, err
		}
		return triValue(tr), nil
	}, nil
}

func (e *Executor) compileAttrRef(x *query.AttrRef) (evalFn, error) {
	n, a := x.Node, x.Attr
	id := n.ID
	// Prefetched records are decoded under the node's hierarchy; only
	// attributes of that hierarchy may read through them.
	fast := a.Owner.Base == n.Class.Base
	if a.Kind == catalog.Subrole {
		return func(sc *scratch) (value.Value, error) {
			if !sc.set[id] {
				return value.Null, unboundErr(n)
			}
			it := &sc.insts[id]
			if it.null {
				return value.Null, nil
			}
			if fast && it.rec.Valid() {
				return it.rec.FirstSubrole(a), nil
			}
			vals, err := sc.m.Subrole(it.surr, a)
			if err != nil {
				return value.Null, err
			}
			if len(vals) == 0 {
				return value.Null, nil
			}
			return vals[0], nil
		}, nil
	}
	return func(sc *scratch) (value.Value, error) {
		if !sc.set[id] {
			return value.Null, unboundErr(n)
		}
		it := &sc.insts[id]
		if it.null {
			return value.Null, nil
		}
		if fast && it.rec.Valid() {
			return it.rec.Single(a), nil
		}
		return sc.m.GetSingle(it.surr, a)
	}, nil
}

// compileTri mirrors evalTri case by case, including its fallthrough into
// general value conversion.
func (e *Executor) compileTri(t *query.Tree, x query.Expr) (triFn, error) {
	switch x := x.(type) {
	case *query.Unary:
		if x.Op != ast.OpNot {
			break
		}
		xf, err := e.compileTri(t, x.X)
		if err != nil {
			return nil, err
		}
		return func(sc *scratch) (value.Tri, error) {
			tr, err := xf(sc)
			if err != nil {
				return value.Unknown, err
			}
			return tr.Not(), nil
		}, nil
	case *query.Binary:
		switch x.Op {
		case ast.OpAnd:
			lf, err := e.compileTri(t, x.L)
			if err != nil {
				return nil, err
			}
			rf, err := e.compileTri(t, x.R)
			if err != nil {
				return nil, err
			}
			return func(sc *scratch) (value.Tri, error) {
				l, err := lf(sc)
				if err != nil {
					return value.Unknown, err
				}
				if l == value.False {
					return value.False, nil // short-circuit
				}
				r, err := rf(sc)
				if err != nil {
					return value.Unknown, err
				}
				return l.And(r), nil
			}, nil
		case ast.OpOr:
			lf, err := e.compileTri(t, x.L)
			if err != nil {
				return nil, err
			}
			rf, err := e.compileTri(t, x.R)
			if err != nil {
				return nil, err
			}
			return func(sc *scratch) (value.Tri, error) {
				l, err := lf(sc)
				if err != nil {
					return value.Unknown, err
				}
				if l == value.True {
					return value.True, nil
				}
				r, err := rf(sc)
				if err != nil {
					return value.Unknown, err
				}
				return l.Or(r), nil
			}, nil
		case ast.OpLike:
			lf, err := e.compileExpr(t, x.L)
			if err != nil {
				return nil, err
			}
			rf, err := e.compileExpr(t, x.R)
			if err != nil {
				return nil, err
			}
			return func(sc *scratch) (value.Tri, error) {
				l, err := lf(sc)
				if err != nil {
					return value.Unknown, err
				}
				r, err := rf(sc)
				if err != nil {
					return value.Unknown, err
				}
				return value.Like(l, r)
			}, nil
		}
		if cmp, ok := cmpOf(x.Op); ok {
			return e.compileCmp(t, cmp, x.L, x.R)
		}
	case *query.Isa:
		n, cl := x.Node, x.Class
		id := n.ID
		// Surrogates (and so prefetched records) are per-hierarchy; a role
		// test against another hierarchy must go through the Mapper.
		sameBase := n.Class.Base == cl.Base
		return func(sc *scratch) (value.Tri, error) {
			if !sc.set[id] {
				return value.Unknown, unboundErr(n)
			}
			it := &sc.insts[id]
			if it.null {
				return value.Unknown, nil
			}
			if sameBase && it.rec.Valid() {
				return value.TriOf(it.rec.HasRole(cl.ID)), nil
			}
			ok, err := sc.m.HasRole(it.surr, cl)
			if err != nil {
				return value.Unknown, err
			}
			return value.TriOf(ok), nil
		}, nil
	case *query.Quant:
		sub, err := e.compileSub(t, x.Sub)
		if err != nil {
			return nil, err
		}
		q := x.Quant
		return func(sc *scratch) (value.Tri, error) {
			vals, mark, err := sub(sc)
			n := len(vals)
			sc.sub = sc.sub[:mark]
			if err != nil {
				return value.Unknown, err
			}
			switch q {
			case ast.QSome:
				return value.TriOf(n > 0), nil
			case ast.QNo:
				return value.TriOf(n == 0), nil
			}
			return value.Unknown, fmt.Errorf("exec: ALL(...) needs a comparison")
		}, nil
	}
	// General case: evaluate as a value; a boolean value converts.
	vf, err := e.compileExpr(t, x)
	if err != nil {
		return nil, err
	}
	return func(sc *scratch) (value.Tri, error) {
		v, err := vf(sc)
		if err != nil {
			return value.Unknown, err
		}
		switch {
		case v.IsNull():
			return value.Unknown, nil
		case v.Kind() == value.KindBool:
			return value.TriOf(v.Bool()), nil
		}
		return value.Unknown, fmt.Errorf("exec: expression is not boolean")
	}, nil
}

// compileCmp mirrors evalCmp: comparisons with quantified operands
// (§4.6/§4.9) fold the quantifier over the subquery's multiset.
func (e *Executor) compileCmp(t *query.Tree, cmp value.Cmp, l, r query.Expr) (triFn, error) {
	lq, lIsQ := l.(*query.Quant)
	rq, rIsQ := r.(*query.Quant)
	switch {
	case lIsQ && rIsQ:
		return func(*scratch) (value.Tri, error) {
			return value.Unknown, fmt.Errorf("exec: both comparison operands are quantified")
		}, nil
	case rIsQ:
		lf, err := e.compileExpr(t, l)
		if err != nil {
			return nil, err
		}
		sub, err := e.compileSub(t, rq.Sub)
		if err != nil {
			return nil, err
		}
		q := rq.Quant
		return func(sc *scratch) (value.Tri, error) {
			lv, err := lf(sc)
			if err != nil {
				return value.Unknown, err
			}
			vals, mark, err := sub(sc)
			if err != nil {
				sc.sub = sc.sub[:mark]
				return value.Unknown, err
			}
			tr, err := applyQuant(q, cmp, lv, vals, false)
			sc.sub = sc.sub[:mark]
			return tr, err
		}, nil
	case lIsQ:
		rf, err := e.compileExpr(t, r)
		if err != nil {
			return nil, err
		}
		sub, err := e.compileSub(t, lq.Sub)
		if err != nil {
			return nil, err
		}
		q := lq.Quant
		return func(sc *scratch) (value.Tri, error) {
			rv, err := rf(sc)
			if err != nil {
				return value.Unknown, err
			}
			vals, mark, err := sub(sc)
			if err != nil {
				sc.sub = sc.sub[:mark]
				return value.Unknown, err
			}
			tr, err := applyQuant(q, cmp, rv, vals, true)
			sc.sub = sc.sub[:mark]
			return tr, err
		}, nil
	}
	lf, err := e.compileExpr(t, l)
	if err != nil {
		return nil, err
	}
	rf, err := e.compileExpr(t, r)
	if err != nil {
		return nil, err
	}
	return func(sc *scratch) (value.Tri, error) {
		lv, err := lf(sc)
		if err != nil {
			return value.Unknown, err
		}
		rv, err := rf(sc)
		if err != nil {
			return value.Unknown, err
		}
		return cmp.Apply(lv, rv)
	}, nil
}

// applyQuant folds quantCompare's semantics over an already-collected
// multiset without allocating a per-row test closure. fixed is the
// non-quantified operand; quantLeft places the multiset's values on the
// comparison's left side.
func applyQuant(q ast.Quant, cmp value.Cmp, fixed value.Value, vals []value.Value, quantLeft bool) (value.Tri, error) {
	apply := func(v value.Value) (value.Tri, error) {
		if quantLeft {
			return cmp.Apply(v, fixed)
		}
		return cmp.Apply(fixed, v)
	}
	switch q {
	case ast.QSome:
		out := value.False
		for _, v := range vals {
			tr, err := apply(v)
			if err != nil {
				return value.Unknown, err
			}
			out = out.Or(tr)
		}
		return out, nil
	case ast.QAll:
		out := value.True
		for _, v := range vals {
			tr, err := apply(v)
			if err != nil {
				return value.Unknown, err
			}
			out = out.And(tr)
		}
		return out, nil
	default: // QNo
		for _, v := range vals {
			tr, err := apply(v)
			if err != nil {
				return value.Unknown, err
			}
			if tr == value.True {
				return value.False, nil
			}
		}
		return value.True, nil
	}
}

// compileSub lowers a subquery chain (subValues): the collector enumerates
// the chain through reused domain buffers and pushes the value
// expression's non-NULL results onto sc.sub.
func (e *Executor) compileSub(t *query.Tree, sq *query.SubQuery) (subFn, error) {
	vf, err := e.compileExpr(t, sq.Value)
	if err != nil {
		return nil, err
	}
	nodes := sq.Chain
	doms := make([]domFn, len(nodes))
	for i, n := range nodes {
		// subValues enumerates with no plan: chain anchors always scan.
		doms[i] = e.compileDomain(nil, t, n)
	}
	var run func(sc *scratch, i int) error
	run = func(sc *scratch, i int) error {
		if i == len(nodes) {
			v, err := vf(sc)
			if err != nil {
				return err
			}
			if !v.IsNull() {
				sc.sub = append(sc.sub, v)
			}
			return nil
		}
		n := nodes[i]
		dom, err := doms[i](sc, sc.getDomBuf())
		if err != nil {
			sc.putDomBuf(dom)
			return err
		}
		for k := range dom {
			sc.bind(n, dom[k])
			if err := run(sc, i+1); err != nil {
				sc.putDomBuf(dom)
				return err
			}
		}
		sc.unbind(n)
		sc.putDomBuf(dom)
		return nil
	}
	return func(sc *scratch) ([]value.Value, int, error) {
		mark := len(sc.sub)
		if err := run(sc, 0); err != nil {
			return nil, mark, err
		}
		return sc.sub[mark:], mark, nil
	}, nil
}

// compileAgg pairs a compiled subquery collector with the shared aggregate
// fold (aggregate in eval.go — one implementation for both paths).
func (e *Executor) compileAgg(t *query.Tree, a *query.Agg) (evalFn, error) {
	sub, err := e.compileSub(t, a.Sub)
	if err != nil {
		return nil, err
	}
	return func(sc *scratch) (value.Value, error) {
		vals, mark, err := sub(sc)
		if err != nil {
			sc.sub = sc.sub[:mark]
			return value.Null, err
		}
		v, err := aggregate(a, vals)
		sc.sub = sc.sub[:mark]
		return v, err
	}, nil
}
