package exec

import (
	"fmt"
	"sort"
	"strings"

	"sim/internal/ast"
	"sim/internal/query"
	"sim/internal/value"
)

// Result holds a query's output: always the tabular rows, and additionally
// the fully structured form (§4.5) when the query ran in STRUCTURE mode.
type Result struct {
	Names []string
	Stats Stats

	rows   [][]value.Value
	order  [][]value.Value
	seen   map[string]bool // TABLE DISTINCT dedup
	keyBuf []byte          // reused dedup key scratch

	Structured *Group // non-nil in STRUCTURE mode

	// structure-building state: the group and instance key last used at
	// each main-variable depth, so consecutive identical prefixes share
	// groups (iteration order guarantees grouping).
	lastGroups []*Group
	lastKeys   []string
	attach     [][]int
}

// Group is one record of fully structured output: the instance of one
// TYPE 1 or TYPE 3 range variable, its target values, and the nested
// records of its child variables. Level carries transitive-closure depth.
type Group struct {
	Label    string
	Level    int
	Values   []value.Value // target values attached to this variable
	Indexes  []int         // target positions of Values
	Children []*Group

	key string
}

// Rows returns the tabular rows. The rows are owned by the Result and
// stay valid for its lifetime: the compiled executor carves them out of a
// result-owned arena (never a recycled scratch buffer), and each row is a
// full slice expression, so appending to a returned row reallocates
// instead of growing into its arena neighbor.
//
// Ownership rule: read freely and append safely, but do not mutate row
// elements in place (that edits the Result every other holder sees), and
// do not retain rows past the Result itself — a single retained row pins
// the whole arena chunk it was carved from. To keep rows longer than the
// Result, or to hand them to code that may write elements, take a
// Clone().
func (r *Result) Rows() [][]value.Value { return r.rows }

// Clone returns a deep copy whose rows (and structured tree, if any) own
// their backing storage: safe to retain indefinitely and to mutate
// without aliasing the original or pinning its arena.
func (r *Result) Clone() *Result {
	c := &Result{
		Names: append([]string(nil), r.Names...),
		Stats: r.Stats,
	}
	if r.rows != nil {
		c.rows = make([][]value.Value, len(r.rows))
		for i, row := range r.rows {
			c.rows[i] = append([]value.Value(nil), row...)
		}
	}
	if r.Structured != nil {
		c.Structured = cloneGroup(r.Structured)
	}
	return c
}

func cloneGroup(g *Group) *Group {
	c := &Group{
		Label:   g.Label,
		Level:   g.Level,
		Values:  append([]value.Value(nil), g.Values...),
		Indexes: append([]int(nil), g.Indexes...),
		key:     g.key,
	}
	if g.Children != nil {
		c.Children = make([]*Group, len(g.Children))
		for i, ch := range g.Children {
			c.Children[i] = cloneGroup(ch)
		}
	}
	return c
}

// RemoteResult reconstructs a Result from data decoded off the wire
// protocol (internal/wire). The result is fully finished — ORDER BY and
// DISTINCT were applied server-side — so it only carries the rows, the
// optional structured tree, and the execution stats.
func RemoteResult(names []string, rows [][]value.Value, structured *Group, stats Stats) *Result {
	return &Result{Names: names, Stats: stats, rows: rows, Structured: structured}
}

// NumRows returns the tabular row count.
func (r *Result) NumRows() int { return len(r.rows) }

func newResult(t *query.Tree) *Result {
	r := &Result{Names: t.Names}
	if t.Mode == ast.OutputTableDistinct {
		r.seen = make(map[string]bool)
	}
	if t.Mode == ast.OutputStructure {
		r.Structured = &Group{Label: "result"}
	}
	return r
}

// isDup dedups one row against the seen set, building the key in a reused
// buffer: the map probe converts without allocating, and only the first
// occurrence pays for a key string.
func (r *Result) isDup(row []value.Value) bool {
	r.keyBuf = r.keyBuf[:0]
	for _, v := range row {
		r.keyBuf = v.AppendKey(r.keyBuf)
		r.keyBuf = append(r.keyBuf, 0)
	}
	if r.seen[string(r.keyBuf)] {
		return true
	}
	r.seen[string(r.keyBuf)] = true
	return false
}

// add records one accepted combination.
func (r *Result) add(e *Executor, t *query.Tree, en *env, main []*query.Node, row, order []value.Value) error {
	if r.seen != nil && r.isDup(row) {
		return nil
	}
	r.rows = append(r.rows, row)
	r.order = append(r.order, order)
	if r.Structured != nil {
		return r.addStructured(e, t, en, main, row)
	}
	return nil
}

// addTabular records one row produced by a parallel worker. Workers hand
// rows back in serial emission order, so applying the TABLE DISTINCT dedup
// here reproduces exactly the rows (and row order) of serial execution.
func (r *Result) addTabular(row, order []value.Value) {
	if r.seen != nil && r.isDup(row) {
		return
	}
	r.rows = append(r.rows, row)
	r.order = append(r.order, order)
}

// addStructured merges the combination into the group tree: one group per
// TYPE 1/TYPE 3 variable instance, consecutive identical prefixes shared
// (the iteration order guarantees grouping).
func (r *Result) addStructured(e *Executor, t *query.Tree, en *env, main []*query.Node, row []value.Value) error {
	if r.lastGroups == nil {
		r.lastGroups = make([]*Group, len(main))
		r.lastKeys = make([]string, len(main))
		// Targets attach to the deepest main variable they reference.
		r.attach = targetAttachment(t, main)
	}
	parent := r.Structured
	same := true
	for d, n := range main {
		it, err := en.get(n)
		if err != nil {
			return err
		}
		key := instKey(it)
		if same && r.lastGroups[d] != nil && r.lastKeys[d] == key {
			parent = r.lastGroups[d]
			continue
		}
		same = false
		g := &Group{Label: n.Label(), Level: it.level, key: key}
		for _, ti := range r.attach[d] {
			g.Values = append(g.Values, row[ti])
			g.Indexes = append(g.Indexes, ti)
		}
		parent.Children = append(parent.Children, g)
		r.lastGroups[d] = g
		r.lastKeys[d] = key
		parent = g
	}
	return nil
}

func instKey(it inst) string {
	if it.null {
		return "~null"
	}
	if it.val.Kind() != value.KindNull || it.surr == 0 {
		return "v" + it.val.Key()
	}
	return fmt.Sprintf("e%d", it.surr)
}

// targetAttachment maps each main-node depth to the target indexes whose
// deepest referenced main variable sits at that depth.
func targetAttachment(t *query.Tree, main []*query.Node) [][]int {
	depth := make(map[*query.Node]int, len(main))
	for i, n := range main {
		depth[n] = i
	}
	out := make([][]int, len(main))
	for ti, tg := range t.Targets {
		d := 0
		query.Walk(tg, func(x query.Expr) {
			var n *query.Node
			switch x := x.(type) {
			case *query.AttrRef:
				n = x.Node
			case *query.EntityRef:
				n = x.Node
			case *query.ValueRef:
				n = x.Node
			case *query.Agg:
				n = x.Sub.Anchor()
			case *query.Quant:
				n = x.Sub.Anchor()
			}
			if n == nil {
				return
			}
			// Subquery nodes attach at their anchor.
			for n.Sub && n.Parent != nil {
				n = n.Parent
			}
			if dd, ok := depth[n]; ok && dd > d {
				d = dd
			}
		})
		out[d] = append(out[d], ti)
	}
	return out
}

// finish applies ORDER BY.
func (r *Result) finish(t *query.Tree) {
	if len(t.OrderBy) == 0 {
		return
	}
	idx := make([]int, len(r.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		oa, ob := r.order[idx[a]], r.order[idx[b]]
		for k := range oa {
			if value.SortLess(oa[k], ob[k]) {
				return true
			}
			if value.SortLess(ob[k], oa[k]) {
				return false
			}
		}
		return false
	})
	rows := make([][]value.Value, len(r.rows))
	for i, j := range idx {
		rows[i] = r.rows[j]
	}
	r.rows = rows
	r.order = nil
}

// Format renders the tabular result as an aligned text table (the flavor
// of an IQF listing).
func (r *Result) Format() string {
	var b strings.Builder
	widths := make([]int, len(r.Names))
	for i, n := range r.Names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.rows))
	for ri, row := range r.rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, n := range r.Names {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], n)
	}
	b.WriteByte('\n')
	for i := range r.Names {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatStructured renders the group tree with indentation and level
// numbers, the paper's fully structured output form.
func (r *Result) FormatStructured() string {
	if r.Structured == nil {
		return r.Format()
	}
	var b strings.Builder
	var walk func(g *Group, indent int)
	walk = func(g *Group, indent int) {
		for _, c := range g.Children {
			b.WriteString(strings.Repeat("  ", indent))
			b.WriteString(c.Label)
			if c.Level > 0 {
				fmt.Fprintf(&b, " [level %d]", c.Level)
			}
			if len(c.Values) > 0 {
				b.WriteString(":")
				for _, v := range c.Values {
					b.WriteString(" ")
					b.WriteString(v.String())
				}
			}
			b.WriteByte('\n')
			walk(c, indent+1)
		}
	}
	walk(r.Structured, 0)
	return b.String()
}
