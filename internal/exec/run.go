package exec

import (
	"context"
	"sync"
	"time"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/luc"
	"sim/internal/obs"
	"sim/internal/plan"
	"sim/internal/query"
	"sim/internal/value"
)

// scratch is the reusable per-execution state of a compiled program: the
// binding environment, a free list of domain buffers, the subquery value
// stack, and the surrogate/record buffers batched reads go through. A
// scratch is checked out of the executor's pool per execution (per worker
// on the parallel path) and holds no output: result rows live in a
// value.Arena owned by the Result, so recycling a scratch can never
// corrupt rows a caller still holds.
type scratch struct {
	env
	// m is the mapper this execution reads data through. Compiled closures
	// capture the executor that compiled them, but programs are cached and
	// later run by snapshot-view executors with a different mapper; every
	// data access inside a closure therefore goes through sc.m, which
	// getScratch binds to the running executor's mapper. Compile-time
	// mapping decisions (hierarchy strategy, FK slots, MV layout) are
	// schema-derived and identical across views, so they may stay on the
	// compiling executor.
	m       *luc.Mapper
	sub     []value.Value     // subquery value stack (mark/truncate discipline)
	domFree [][]inst          // free domain buffers, stack-ordered
	surrs   []value.Surrogate // batched-read key buffer
	recs    []luc.Rec         // batched-read output buffer
}

// getScratch checks a scratch out of the pool, sized for n nodes, with
// every binding cleared and no record references retained.
func (e *Executor) getScratch(n int) *scratch {
	sc, _ := e.scratchPool.Get().(*scratch)
	if sc == nil {
		sc = &scratch{}
	}
	if cap(sc.insts) < n {
		sc.insts = make([]inst, n)
		sc.set = make([]bool, n)
	} else {
		sc.insts = sc.insts[:n]
		sc.set = sc.set[:n]
		for i := range sc.insts {
			sc.insts[i] = inst{}
		}
		for i := range sc.set {
			sc.set[i] = false
		}
	}
	sc.sub = sc.sub[:0]
	sc.m = e.m
	return sc
}

func (e *Executor) putScratch(sc *scratch) {
	sc.m = nil
	e.scratchPool.Put(sc)
}

// getDomBuf hands out a reused []inst for one domain enumeration. Buffers
// follow stack discipline down the loop nest, so a handful cover any
// query depth after warm-up.
func (sc *scratch) getDomBuf() []inst {
	if n := len(sc.domFree); n > 0 {
		b := sc.domFree[n-1]
		sc.domFree = sc.domFree[:n-1]
		return b[:0]
	}
	return make([]inst, 0, 64)
}

// putDomBuf returns a domain buffer, zeroing it so pooled buffers don't
// pin decoded records between queries.
func (sc *scratch) putDomBuf(b []inst) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = inst{}
	}
	sc.domFree = append(sc.domFree, b[:0])
}

// fillRecs prefetches the decoded records of a run of entity instances in
// fixed-size batches — one record-cache pass per batch instead of one
// probe per attribute reference. Split-strategy hierarchies are skipped;
// their bindings fall back to the Mapper's per-entity reads.
func (e *Executor) fillRecs(sc *scratch, cl *catalog.Class, insts []inst) error {
	if len(insts) == 0 || !sc.m.Batchable(cl) {
		return nil
	}
	bs := luc.RecBatch()
	for lo := 0; lo < len(insts); lo += bs {
		hi := min(lo+bs, len(insts))
		chunk := insts[lo:hi]
		sc.surrs = sc.surrs[:0]
		for i := range chunk {
			sc.surrs = append(sc.surrs, chunk[i].surr)
		}
		if cap(sc.recs) < len(chunk) {
			sc.recs = make([]luc.Rec, len(chunk))
		}
		recs := sc.recs[:len(chunk)]
		for i := range recs {
			recs[i] = luc.Rec{}
		}
		if err := sc.m.ReadBatch(cl, sc.surrs, recs); err != nil {
			return err
		}
		for i := range chunk {
			chunk[i].rec = recs[i]
		}
	}
	return nil
}

// RetrieveProgram executes a previously compiled program. A nil program
// (or an executor forced onto the reference walker) routes through the
// ordinary Retrieve path. tr, when non-nil, collects the EXPLAIN ANALYZE
// profile exactly as RetrieveTraced does.
func (e *Executor) RetrieveProgram(ctx context.Context, p *plan.Plan, prog *Program, tr *obs.QueryTrace) (*Result, error) {
	if prog == nil || e.treeWalk {
		return e.retrieve(ctx, p, tr)
	}
	return e.runProgram(ctx, p, prog, tr)
}

// runProgram is the compiled counterpart of retrieveTree: same loop
// structure, same trace accounting, same result assembly — but bindings
// come from reused domain buffers, rows from a result-owned arena, and
// every expression evaluates through pre-lowered closures.
func (e *Executor) runProgram(ctx context.Context, p *plan.Plan, prog *Program, tr *obs.QueryTrace) (*Result, error) {
	t := prog.tree
	if t.Mode == ast.OutputStructure && len(t.OrderBy) > 0 {
		return nil, errOrderByStructure()
	}
	res := newResult(t)
	main := prog.main
	var stats Stats

	if len(main) == 0 {
		res.finish(t)
		res.Stats = stats
		e.countRetrieve(stats, false)
		return res, nil
	}

	var tm *nestTrace
	var execStart time.Time
	if tr != nil {
		tm = newNestTrace(len(main))
		execStart = time.Now()
	}

	sc := e.getScratch(prog.nNodes)
	dom0, err := prog.doms[main[0].ID](sc, sc.getDomBuf())
	if err != nil {
		e.putScratch(sc)
		return nil, err
	}
	if len(dom0) == 0 && main[0].Type == query.Type3 {
		dom0 = append(dom0, inst{null: true})
	}

	parallel := e.parallelOK(t, dom0)
	if parallel {
		// Workers iterate chunks of a stable copy; the enumerating scratch
		// goes back to the pool before they start.
		shared := append([]inst(nil), dom0...)
		sc.putDomBuf(dom0)
		e.putScratch(sc)
		parts, err := e.runParallelProgram(ctx, prog, shared, tm != nil)
		if err != nil {
			return nil, err
		}
		for _, part := range parts {
			stats.Instances += part.stats.Instances
			stats.Rows += part.stats.Rows
			for ri := range part.rows {
				res.addTabular(part.rows[ri], part.order[ri])
			}
			if tm != nil {
				for i := range tm.nanos {
					if part.tm.nanos[i] > tm.nanos[i] {
						tm.nanos[i] = part.tm.nanos[i]
					}
					tm.insts[i] += part.tm.insts[i]
					tm.ents[i] += part.tm.ents[i]
				}
				tr.WorkerSpans = append(tr.WorkerSpans, obs.WorkerTrace{
					Chunk:     int(part.tm.insts[0]),
					Instances: int64(part.stats.Instances),
					Rows:      part.stats.Rows,
					Wall:      part.wall,
				})
			}
		}
	} else {
		arena := &value.Arena{}
		emit := e.programEmitter(prog, sc, arena, res, &stats)
		done := ctx.Done()
		for k := range dom0 {
			if done != nil {
				select {
				case <-done:
					sc.putDomBuf(dom0)
					e.putScratch(sc)
					return nil, ctx.Err()
				default:
				}
			}
			stats.Instances++
			if tm != nil {
				tm.observe(0, dom0[k])
			}
			sc.bind(main[0], dom0[k])
			if err := e.runNestProgram(prog, sc, 1, &stats, emit, tm); err != nil {
				sc.putDomBuf(dom0)
				e.putScratch(sc)
				return nil, err
			}
		}
		sc.putDomBuf(dom0)
		e.putScratch(sc)
	}
	if tm != nil {
		tm.nanos[0] = time.Since(execStart).Nanoseconds()
	}
	res.finish(t)
	res.Stats = stats
	e.countRetrieve(stats, parallel)
	if tr != nil {
		e.fillTrace(tr, p, t, main, tm, stats, parallel)
	}
	return res, nil
}

// programEmitter materializes one accepted combination: targets and ORDER
// BY keys evaluate through the compiled closures into arena-backed rows.
func (e *Executor) programEmitter(prog *Program, sc *scratch, arena *value.Arena, res *Result, stats *Stats) func() error {
	t := prog.tree
	return func() error {
		row := arena.Alloc(len(prog.target))
		for i, fn := range prog.target {
			v, err := fn(sc)
			if err != nil {
				return err
			}
			row[i] = v
		}
		var order []value.Value
		if len(prog.orderBy) > 0 {
			order = arena.Alloc(len(prog.orderBy))
			for i, fn := range prog.orderBy {
				v, err := fn(sc)
				if err != nil {
					return err
				}
				order[i] = v
			}
		}
		stats.Rows++
		return res.add(e, t, &sc.env, prog.main, row, order)
	}
}

// runNestProgram is runNest over compiled domains and reused buffers.
func (e *Executor) runNestProgram(prog *Program, sc *scratch, i int, stats *Stats, emit func() error, tm *nestTrace) error {
	if i == len(prog.main) {
		ok, err := e.programHolds(prog, sc)
		if err != nil {
			return err
		}
		if ok {
			return emit()
		}
		return nil
	}
	n := prog.main[i]
	var start time.Time
	if tm != nil {
		start = time.Now()
	}
	dom, err := prog.doms[n.ID](sc, sc.getDomBuf())
	if err != nil {
		sc.putDomBuf(dom)
		return err
	}
	if len(dom) == 0 && n.Type == query.Type3 {
		dom = append(dom, inst{null: true})
	}
	for k := range dom {
		stats.Instances++
		if tm != nil {
			tm.observe(i, dom[k])
		}
		sc.bind(n, dom[k])
		if err := e.runNestProgram(prog, sc, i+1, stats, emit, tm); err != nil {
			sc.putDomBuf(dom)
			return err
		}
	}
	sc.unbind(n)
	sc.putDomBuf(dom)
	if tm != nil {
		tm.nanos[i] += time.Since(start).Nanoseconds()
	}
	return nil
}

// programHolds is selectionHolds over the compiled WHERE program.
func (e *Executor) programHolds(prog *Program, sc *scratch) (bool, error) {
	if prog.where == nil {
		return true, nil
	}
	return e.programSome(prog, sc, 0)
}

func (e *Executor) programSome(prog *Program, sc *scratch, j int) (bool, error) {
	if j == len(prog.exist) {
		t, err := prog.where(sc)
		if err != nil {
			return false, err
		}
		return t.IsTrue(), nil
	}
	n := prog.exist[j]
	dom, err := prog.doms[n.ID](sc, sc.getDomBuf())
	if err != nil {
		sc.putDomBuf(dom)
		return false, err
	}
	for k := range dom {
		sc.bind(n, dom[k])
		ok, err := e.programSome(prog, sc, j+1)
		if err != nil {
			sc.unbind(n)
			sc.putDomBuf(dom)
			return false, err
		}
		if ok {
			sc.unbind(n)
			sc.putDomBuf(dom)
			return true, nil
		}
	}
	sc.unbind(n)
	sc.putDomBuf(dom)
	return false, nil
}

// runParallelProgram partitions the outermost domain exactly like
// retrieveParallel, with each worker running the compiled nest against a
// pooled scratch and its own arena.
func (e *Executor) runParallelProgram(ctx context.Context, prog *Program, dom0 []inst, traced bool) ([]*partial, error) {
	nw := e.workers
	if nw > len(dom0) {
		nw = len(dom0)
	}
	chunks := make([][]inst, 0, nw)
	per := (len(dom0) + nw - 1) / nw
	for lo := 0; lo < len(dom0); lo += per {
		hi := min(lo+per, len(dom0))
		chunks = append(chunks, dom0[lo:hi])
	}
	parts := make([]*partial, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for ci := range chunks {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			parts[ci], errs[ci] = e.runChunkProgram(ctx, prog, chunks[ci], traced)
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// runChunkProgram executes the compiled nest for one slice of the
// outermost domain.
func (e *Executor) runChunkProgram(ctx context.Context, prog *Program, chunk []inst, traced bool) (*partial, error) {
	sc := e.getScratch(prog.nNodes)
	defer e.putScratch(sc)
	part := &partial{}
	arena := &value.Arena{}
	var chunkStart time.Time
	if traced {
		part.tm = newNestTrace(len(prog.main))
		chunkStart = time.Now()
	}
	emit := func() error {
		row := arena.Alloc(len(prog.target))
		for i, fn := range prog.target {
			v, err := fn(sc)
			if err != nil {
				return err
			}
			row[i] = v
		}
		var order []value.Value
		if len(prog.orderBy) > 0 {
			order = arena.Alloc(len(prog.orderBy))
			for i, fn := range prog.orderBy {
				v, err := fn(sc)
				if err != nil {
					return err
				}
				order[i] = v
			}
		}
		part.stats.Rows++
		part.rows = append(part.rows, row)
		part.order = append(part.order, order)
		return nil
	}
	done := ctx.Done()
	for k := range chunk {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		part.stats.Instances++
		if part.tm != nil {
			part.tm.observe(0, chunk[k])
		}
		sc.bind(prog.main[0], chunk[k])
		if err := e.runNestProgram(prog, sc, 1, &part.stats, emit, part.tm); err != nil {
			return nil, err
		}
	}
	if traced {
		part.wall = time.Since(chunkStart)
		part.tm.nanos[0] = part.wall.Nanoseconds()
	}
	return part, nil
}
