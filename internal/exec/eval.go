package exec

import (
	"fmt"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/query"
	"sim/internal/value"
)

// eval computes a bound expression's value under the current environment.
// NULL propagates per §4.9's three-valued logic; boolean-valued
// subexpressions surface as boolean values with NULL for unknown.
func (e *Executor) eval(x query.Expr, en *env) (value.Value, error) {
	switch x := x.(type) {
	case *query.Lit:
		return x.Val, nil
	case *query.AttrRef:
		return e.evalAttrRef(x, en)
	case *query.EntityRef:
		it, err := en.get(x.Node)
		if err != nil {
			return value.Null, err
		}
		if it.null {
			return value.Null, nil
		}
		return value.NewSurrogate(it.surr), nil
	case *query.ValueRef:
		it, err := en.get(x.Node)
		if err != nil {
			return value.Null, err
		}
		if it.null {
			return value.Null, nil
		}
		return it.val, nil
	case *query.Unary:
		if x.Op == ast.OpNot {
			tri, err := e.evalTri(x, en)
			if err != nil {
				return value.Null, err
			}
			return triValue(tri), nil
		}
		v, err := e.eval(x.X, en)
		if err != nil {
			return value.Null, err
		}
		return value.OpSub.Apply(value.NewInt(0), v)
	case *query.Binary:
		switch x.Op {
		case ast.OpAnd, ast.OpOr, ast.OpEQ, ast.OpNEQ, ast.OpLT, ast.OpLE,
			ast.OpGT, ast.OpGE, ast.OpLike:
			tri, err := e.evalTri(x, en)
			if err != nil {
				return value.Null, err
			}
			return triValue(tri), nil
		}
		l, err := e.eval(x.L, en)
		if err != nil {
			return value.Null, err
		}
		r, err := e.eval(x.R, en)
		if err != nil {
			return value.Null, err
		}
		return arith(x.Op).Apply(l, r)
	case *query.Agg:
		return e.evalAgg(x, en)
	case *query.Isa:
		tri, err := e.evalTri(x, en)
		if err != nil {
			return value.Null, err
		}
		return triValue(tri), nil
	case *query.Quant:
		tri, err := e.evalTri(x, en)
		if err != nil {
			return value.Null, err
		}
		return triValue(tri), nil
	}
	return value.Null, fmt.Errorf("exec: cannot evaluate %T", x)
}

func triValue(t value.Tri) value.Value {
	switch t {
	case value.True:
		return value.NewBool(true)
	case value.False:
		return value.NewBool(false)
	}
	return value.Null
}

func arith(op ast.BinaryOp) value.Arith {
	switch op {
	case ast.OpAdd:
		return value.OpAdd
	case ast.OpSub:
		return value.OpSub
	case ast.OpMul:
		return value.OpMul
	}
	return value.OpDiv
}

func cmpOf(op ast.BinaryOp) (value.Cmp, bool) {
	switch op {
	case ast.OpEQ:
		return value.CmpEQ, true
	case ast.OpNEQ:
		return value.CmpNEQ, true
	case ast.OpLT:
		return value.CmpLT, true
	case ast.OpLE:
		return value.CmpLE, true
	case ast.OpGT:
		return value.CmpGT, true
	case ast.OpGE:
		return value.CmpGE, true
	}
	return 0, false
}

// evalTri evaluates a boolean expression to a Kleene truth value.
func (e *Executor) evalTri(x query.Expr, en *env) (value.Tri, error) {
	switch x := x.(type) {
	case *query.Unary:
		if x.Op != ast.OpNot {
			break
		}
		t, err := e.evalTri(x.X, en)
		if err != nil {
			return value.Unknown, err
		}
		return t.Not(), nil
	case *query.Binary:
		switch x.Op {
		case ast.OpAnd:
			l, err := e.evalTri(x.L, en)
			if err != nil {
				return value.Unknown, err
			}
			if l == value.False {
				return value.False, nil // short-circuit
			}
			r, err := e.evalTri(x.R, en)
			if err != nil {
				return value.Unknown, err
			}
			return l.And(r), nil
		case ast.OpOr:
			l, err := e.evalTri(x.L, en)
			if err != nil {
				return value.Unknown, err
			}
			if l == value.True {
				return value.True, nil
			}
			r, err := e.evalTri(x.R, en)
			if err != nil {
				return value.Unknown, err
			}
			return l.Or(r), nil
		case ast.OpLike:
			l, err := e.eval(x.L, en)
			if err != nil {
				return value.Unknown, err
			}
			r, err := e.eval(x.R, en)
			if err != nil {
				return value.Unknown, err
			}
			return value.Like(l, r)
		}
		if cmp, ok := cmpOf(x.Op); ok {
			return e.evalCmp(cmp, x.L, x.R, en)
		}
	case *query.Isa:
		it, err := en.get(x.Node)
		if err != nil {
			return value.Unknown, err
		}
		if it.null {
			return value.Unknown, nil
		}
		ok, err := e.m.HasRole(it.surr, x.Class)
		if err != nil {
			return value.Unknown, err
		}
		return value.TriOf(ok), nil
	case *query.Quant:
		// Bare quantifier in boolean position: existence test.
		vals, err := e.subValues(x.Sub, en)
		if err != nil {
			return value.Unknown, err
		}
		switch x.Quant {
		case ast.QSome:
			return value.TriOf(len(vals) > 0), nil
		case ast.QNo:
			return value.TriOf(len(vals) == 0), nil
		}
		return value.Unknown, fmt.Errorf("exec: ALL(...) needs a comparison")
	}
	// General case: evaluate as a value; a boolean value converts.
	v, err := e.eval(x, en)
	if err != nil {
		return value.Unknown, err
	}
	switch {
	case v.IsNull():
		return value.Unknown, nil
	case v.Kind() == value.KindBool:
		return value.TriOf(v.Bool()), nil
	}
	return value.Unknown, fmt.Errorf("exec: expression is not boolean")
}

// evalCmp handles comparisons, including quantified operands (§4.6/§4.9):
// x neq some(ys) holds when some y satisfies x neq y; all(...) when every
// one does (vacuously true); no(...) when none does.
func (e *Executor) evalCmp(cmp value.Cmp, l, r query.Expr, en *env) (value.Tri, error) {
	lq, lIsQ := l.(*query.Quant)
	rq, rIsQ := r.(*query.Quant)
	switch {
	case lIsQ && rIsQ:
		return value.Unknown, fmt.Errorf("exec: both comparison operands are quantified")
	case rIsQ:
		lv, err := e.eval(l, en)
		if err != nil {
			return value.Unknown, err
		}
		return e.quantCompare(rq, en, func(v value.Value) (value.Tri, error) {
			return cmp.Apply(lv, v)
		})
	case lIsQ:
		rv, err := e.eval(r, en)
		if err != nil {
			return value.Unknown, err
		}
		return e.quantCompare(lq, en, func(v value.Value) (value.Tri, error) {
			return cmp.Apply(v, rv)
		})
	}
	lv, err := e.eval(l, en)
	if err != nil {
		return value.Unknown, err
	}
	rv, err := e.eval(r, en)
	if err != nil {
		return value.Unknown, err
	}
	return cmp.Apply(lv, rv)
}

func (e *Executor) quantCompare(q *query.Quant, en *env, test func(value.Value) (value.Tri, error)) (value.Tri, error) {
	vals, err := e.subValues(q.Sub, en)
	if err != nil {
		return value.Unknown, err
	}
	switch q.Quant {
	case ast.QSome:
		out := value.False
		for _, v := range vals {
			t, err := test(v)
			if err != nil {
				return value.Unknown, err
			}
			out = out.Or(t)
		}
		return out, nil
	case ast.QAll:
		out := value.True
		for _, v := range vals {
			t, err := test(v)
			if err != nil {
				return value.Unknown, err
			}
			out = out.And(t)
		}
		return out, nil
	default: // QNo
		for _, v := range vals {
			t, err := test(v)
			if err != nil {
				return value.Unknown, err
			}
			if t == value.True {
				return value.False, nil
			}
		}
		return value.True, nil
	}
}

func (e *Executor) evalAttrRef(x *query.AttrRef, en *env) (value.Value, error) {
	it, err := en.get(x.Node)
	if err != nil {
		return value.Null, err
	}
	if it.null {
		return value.Null, nil
	}
	switch x.Attr.Kind {
	case catalog.Subrole:
		vals, err := e.m.Subrole(it.surr, x.Attr)
		if err != nil {
			return value.Null, err
		}
		if len(vals) == 0 {
			return value.Null, nil
		}
		return vals[0], nil
	default:
		return e.m.GetSingle(it.surr, x.Attr)
	}
}

// ---------------------------------------------------------------------------
// Aggregates and subqueries
// ---------------------------------------------------------------------------

// subValues iterates a subquery chain under the current environment and
// collects the value expression's results (NULLs excluded, matching the
// usual aggregate semantics).
func (e *Executor) subValues(sq *query.SubQuery, en *env) ([]value.Value, error) {
	var out []value.Value
	var loop func(i int) error
	loop = func(i int) error {
		if i == len(sq.Chain) {
			v, err := e.eval(sq.Value, en)
			if err != nil {
				return err
			}
			if !v.IsNull() {
				out = append(out, v)
			}
			return nil
		}
		n := sq.Chain[i]
		dom, err := e.domain(nil, nil, n, en)
		if err != nil {
			return err
		}
		for _, it := range dom {
			en.bind(n, it)
			if err := loop(i + 1); err != nil {
				return err
			}
		}
		en.unbind(n)
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Executor) evalAgg(a *query.Agg, en *env) (value.Value, error) {
	vals, err := e.subValues(a.Sub, en)
	if err != nil {
		return value.Null, err
	}
	return aggregate(a, vals)
}

// aggregate folds one aggregate function over a collected multiset. It is
// the single implementation behind both the reference walker and the
// compiled path, so the two cannot drift. DISTINCT compacts vals in place.
func aggregate(a *query.Agg, vals []value.Value) (value.Value, error) {
	if a.Distinct {
		seen := make(map[string]bool, len(vals))
		kept := vals[:0]
		for _, v := range vals {
			k := v.Key()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, v)
			}
		}
		vals = kept
	}
	switch a.Func {
	case ast.AggCount:
		return value.NewInt(int64(len(vals))), nil
	case ast.AggSum, ast.AggAvg:
		if len(vals) == 0 {
			return value.Null, nil
		}
		sum := 0.0
		isInt := true
		for _, v := range vals {
			switch v.Kind() {
			case value.KindInt:
				sum += float64(v.Int())
			case value.KindNumber:
				sum += v.Number()
				isInt = false
			default:
				return value.Null, fmt.Errorf("exec: %s over non-numeric %s", a.Func, v.Kind())
			}
		}
		if a.Func == ast.AggAvg {
			return value.NewNumber(sum / float64(len(vals))), nil
		}
		if isInt {
			return value.NewInt(int64(sum)), nil
		}
		return value.NewNumber(sum), nil
	case ast.AggMin, ast.AggMax:
		if len(vals) == 0 {
			return value.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := value.Compare(v, best)
			if err != nil {
				return value.Null, err
			}
			if (a.Func == ast.AggMin && c < 0) || (a.Func == ast.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return value.Null, fmt.Errorf("exec: unknown aggregate %v", a.Func)
}
