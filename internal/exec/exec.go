// Package exec implements SIM's query and update execution engine: the
// DAPLEX-style nested-loop program of §4.5 over the query tree, expression
// evaluation under three-valued logic, aggregate functions, quantifiers,
// transitive closure, tabular and structured output, and the update
// statements of §4.8.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/luc"
	"sim/internal/obs"
	"sim/internal/plan"
	"sim/internal/query"
	"sim/internal/value"
)

// Executor runs plans against a LUC mapper.
type Executor struct {
	m           *luc.Mapper
	cat         *catalog.Catalog
	constraints []*Constraint
	workers     int      // per-query parallelism cap (<=1 disables)
	met         *Metrics // nil until SetMetrics
	treeWalk    bool     // force the reference tree-walking evaluator

	// claim, when set, is invoked by the update statements after their
	// target entities are materialized and before anything is mutated, so
	// a transaction can take per-entity write latches while a conflict is
	// still side-effect-free (see WithClaim).
	claim func(cl *catalog.Class, surrs []value.Surrogate) error

	// scratchPool is shared by pointer across View clones so snapshot
	// executors reuse the same warmed scratches as the live one.
	scratchPool *sync.Pool // *scratch, reused across compiled executions
}

// Metrics are the executor's registry-owned counters. The registry hands
// back the same counters across schema rebuilds, so totals accumulate for
// the life of the database.
type Metrics struct {
	Queries   *obs.Counter // Retrieve executions
	Parallel  *obs.Counter // Retrieves that used the partitioned path
	Instances *obs.Counter // range-variable bindings tried
	Rows      *obs.Counter // rows emitted
	Updates   *obs.Counter // update statements executed
	Entities  *obs.Counter // entities inserted/modified/deleted
}

// New returns an executor. Constraints (bound VERIFY assertions) may be
// attached later with SetConstraints.
func New(m *luc.Mapper) *Executor {
	return &Executor{m: m, cat: m.Catalog(), scratchPool: new(sync.Pool)}
}

// View returns a shallow clone of the executor bound to m — typically a
// snapshot view of the live mapper (luc.Mapper.View). The clone shares
// the scratch pool, constraints, metrics and worker settings; only the
// mapper differs, so queries run against the view's stamp. Compiled
// Programs cached from the live executor remain valid: their closures
// read data through the per-execution scratch's mapper, which getScratch
// binds to the executor that runs the program, not the one that compiled
// it.
func (e *Executor) View(m *luc.Mapper) *Executor {
	v := *e
	v.m = m
	return &v
}

// Mapper returns the mapper this executor reads and writes through.
func (e *Executor) Mapper() *luc.Mapper { return e.m }

// WithClaim returns a shallow clone whose update statements call fn with
// their materialized target entities before mutating any of them. An
// error from fn (typically a write-latch conflict) fails the statement
// before it has side effects.
func (e *Executor) WithClaim(fn func(cl *catalog.Class, surrs []value.Surrogate) error) *Executor {
	v := *e
	v.claim = fn
	return &v
}

// SetConstraints installs the bound integrity assertions enforced on
// updates.
func (e *Executor) SetConstraints(cs []*Constraint) { e.constraints = cs }

// SetMetrics registers (or re-binds, after a schema rebuild) the
// executor's counters on r. Counting is a handful of atomic adds per
// statement, not per binding, so the untraced hot path is unaffected.
func (e *Executor) SetMetrics(r *obs.Registry) {
	e.met = &Metrics{
		Queries:   r.Counter("sim_exec_queries_total", "Retrieve statements executed."),
		Parallel:  r.Counter("sim_exec_parallel_queries_total", "Retrieves that ran the partitioned parallel path."),
		Instances: r.Counter("sim_exec_instances_total", "Range-variable bindings tried (query-tree loop iterations)."),
		Rows:      r.Counter("sim_exec_rows_total", "Rows emitted by Retrieve statements."),
		Updates:   r.Counter("sim_exec_updates_total", "Update statements (Insert/Modify/Delete) executed."),
		Entities:  r.Counter("sim_exec_entities_updated_total", "Entities inserted, modified or deleted."),
	}
}

// SetWorkers caps the number of goroutines one Retrieve may use to
// partition its outermost root domain. Values <= 1 force serial execution.
// Must be set before queries run; it is not safe to change concurrently
// with them.
func (e *Executor) SetWorkers(n int) { e.workers = n }

// SetTreeWalk forces the reference tree-walking evaluator (eval.go)
// instead of compiled programs. The compiled path must produce
// byte-identical results; this switch exists for that comparison (the
// equality suite, the T13 baseline) and as an escape hatch. Must be set
// before queries run.
func (e *Executor) SetTreeWalk(b bool) { e.treeWalk = b }

// ctxErr reports the context's error without blocking; nil contexts and
// context.Background() cost one nil-channel check per call.
func ctxErr(ctx context.Context) error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// inst is one binding of a range variable.
type inst struct {
	surr  value.Surrogate
	val   value.Value
	rec   luc.Rec // batched-read decoded record (compiled path; may be zero)
	null  bool    // outer-join dummy
	level int     // transitive-closure depth (1-based; 0 otherwise)
}

// env holds the current instance of every node, indexed by node id.
type env struct {
	insts []inst
	set   []bool
}

func newEnv(n int) *env {
	return &env{insts: make([]inst, n), set: make([]bool, n)}
}

func (v *env) bind(n *query.Node, i inst) {
	v.insts[n.ID] = i
	v.set[n.ID] = true
}

func (v *env) unbind(n *query.Node) { v.set[n.ID] = false }

func (v *env) get(n *query.Node) (inst, error) {
	if !v.set[n.ID] {
		return inst{}, fmt.Errorf("exec: range variable %q unbound", n.Label())
	}
	return v.insts[n.ID], nil
}

// Stats reports work done by one execution.
type Stats struct {
	Instances int // range-variable bindings tried
	Rows      int // rows emitted
}

// nestTrace accumulates one goroutine's per-main-node profile for EXPLAIN
// ANALYZE, indexed by position in the main-node list. Walls are inclusive:
// a node's bucket covers its own domain enumeration plus everything nested
// below it, so bucket 0 approximates the whole execution. A nil *nestTrace
// disables collection; the untraced hot path pays one nil check per
// binding.
type nestTrace struct {
	nanos []int64 // inclusive wall per node
	insts []int64 // bindings tried per node
	ents  []int64 // entity-valued (non-dummy) bindings per node
}

func newNestTrace(n int) *nestTrace {
	return &nestTrace{nanos: make([]int64, n), insts: make([]int64, n), ents: make([]int64, n)}
}

func (tm *nestTrace) observe(i int, it inst) {
	tm.insts[i]++
	if it.surr != 0 && !it.null {
		tm.ents[i]++
	}
}

// parallelRootThreshold is the minimum outermost-root domain size worth
// partitioning across workers; smaller domains run serially.
const parallelRootThreshold = 32

// Retrieve executes a planned query. When the executor has workers
// configured, the outermost root domain is large enough, and the output
// mode permits it, the domain is partitioned across a worker pool; results
// are merged back in domain order so parallel output is byte-identical to
// serial execution.
func (e *Executor) Retrieve(p *plan.Plan) (*Result, error) {
	return e.retrieve(context.Background(), p, nil)
}

// RetrieveCtx is Retrieve under a context: cancellation is checked
// between bindings of the outermost range, so a query over a large
// perspective stops within one outer row of the deadline.
func (e *Executor) RetrieveCtx(ctx context.Context, p *plan.Plan) (*Result, error) {
	return e.retrieve(ctx, p, nil)
}

// RetrieveTraced is RetrieveCtx with profiling: tr (non-nil) is filled
// with the per-node breakdown — bindings tried, entities bound, inclusive
// wall per node, per-worker spans on the parallel path. Tracing adds one
// time.Now pair per node visit; the untraced paths are unaffected.
func (e *Executor) RetrieveTraced(ctx context.Context, p *plan.Plan, tr *obs.QueryTrace) (*Result, error) {
	return e.retrieve(ctx, p, tr)
}

func (e *Executor) retrieve(ctx context.Context, p *plan.Plan, tr *obs.QueryTrace) (*Result, error) {
	if !e.treeWalk {
		if prog, err := e.Compile(p); err == nil {
			return e.runProgram(ctx, p, prog, tr)
		}
		// A construct the compiler doesn't understand falls back to the
		// reference walker, which reproduces the behavior at run time.
	}
	return e.retrieveTree(ctx, p, tr)
}

func errOrderByStructure() error {
	return fmt.Errorf("ORDER BY applies to tabular output only")
}

// retrieveTree is the reference §4.5 implementation: a recursive
// tree-walk evaluating the query tree per binding. It is retained as the
// semantic oracle for the compiled path (run.go/compile.go) and as the
// fallback for anything the compiler rejects.
func (e *Executor) retrieveTree(ctx context.Context, p *plan.Plan, tr *obs.QueryTrace) (*Result, error) {
	t := p.Tree
	if t.Mode == ast.OutputStructure && len(t.OrderBy) > 0 {
		return nil, errOrderByStructure()
	}
	res := newResult(t)
	main := t.MainNodes()
	exist := t.ExistNodes()
	var stats Stats

	if len(main) == 0 {
		res.finish(t)
		res.Stats = stats
		e.countRetrieve(stats, false)
		return res, nil
	}

	var tm *nestTrace
	var execStart time.Time
	if tr != nil {
		tm = newNestTrace(len(main))
		execStart = time.Now()
	}

	// The outermost main node is a perspective root (MainNodes is
	// depth-first from the roots); compute its domain once, then decide
	// between the serial nest and the partitioned one.
	en := newEnv(len(t.Nodes))
	dom0, err := e.domain(p, t, main[0], en)
	if err != nil {
		return nil, err
	}
	if len(dom0) == 0 && main[0].Type == query.Type3 {
		// §4.5: "when empty, adding a dummy instance all of whose
		// attributes are null" — the directed outer join.
		dom0 = []inst{{null: true}}
	}

	parallel := e.parallelOK(t, dom0)
	if parallel {
		parts, err := e.retrieveParallel(ctx, p, t, main, exist, dom0, tm != nil)
		if err != nil {
			return nil, err
		}
		for _, part := range parts {
			stats.Instances += part.stats.Instances
			stats.Rows += part.stats.Rows
			for ri := range part.rows {
				res.addTabular(part.rows[ri], part.order[ri])
			}
			if tm != nil {
				// Chunks run concurrently, so per-node walls merge as the
				// maximum across workers while bindings sum.
				for i := range tm.nanos {
					if part.tm.nanos[i] > tm.nanos[i] {
						tm.nanos[i] = part.tm.nanos[i]
					}
					tm.insts[i] += part.tm.insts[i]
					tm.ents[i] += part.tm.ents[i]
				}
				tr.WorkerSpans = append(tr.WorkerSpans, obs.WorkerTrace{
					Chunk:     int(part.tm.insts[0]),
					Instances: int64(part.stats.Instances),
					Rows:      part.stats.Rows,
					Wall:      part.wall,
				})
			}
		}
	} else {
		emit := e.emitter(t, en, main, res, &stats)
		done := ctx.Done()
		for _, it := range dom0 {
			if done != nil {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
			stats.Instances++
			if tm != nil {
				tm.observe(0, it)
			}
			en.bind(main[0], it)
			if err := e.runNest(p, t, main, exist, en, 1, &stats, emit, tm); err != nil {
				return nil, err
			}
		}
	}
	if tm != nil {
		// The outermost node's inclusive wall covers its domain computation
		// and the whole nest under it (the slowest worker, on the parallel
		// path), so it approximates the execution span.
		tm.nanos[0] = time.Since(execStart).Nanoseconds()
	}
	res.finish(t)
	res.Stats = stats
	e.countRetrieve(stats, parallel)
	if tr != nil {
		e.fillTrace(tr, p, t, main, tm, stats, parallel)
	}
	return res, nil
}

// countRetrieve feeds the registry counters after one Retrieve; a few
// atomic adds per statement.
func (e *Executor) countRetrieve(stats Stats, parallel bool) {
	if e.met == nil {
		return
	}
	e.met.Queries.Inc()
	e.met.Instances.Add(uint64(stats.Instances))
	e.met.Rows.Add(uint64(stats.Rows))
	if parallel {
		e.met.Parallel.Inc()
	}
}

// countUpdate feeds the update counters after one successful statement
// touching n entities.
func (e *Executor) countUpdate(n int) {
	if e.met == nil {
		return
	}
	e.met.Updates.Inc()
	e.met.Entities.Add(uint64(n))
}

// fillTrace converts the collected nest profile into the trace's node
// list. Only main nodes appear: TYPE 2 (selection-only) subtrees are
// enumerated inside the existential check per candidate row and are
// accounted to the enclosing node's wall.
func (e *Executor) fillTrace(tr *obs.QueryTrace, p *plan.Plan, t *query.Tree, main []*query.Node, tm *nestTrace, stats Stats, parallel bool) {
	tr.Rows = stats.Rows
	tr.Instances = int64(stats.Instances)
	tr.Workers = 1
	if parallel {
		tr.Workers = len(tr.WorkerSpans)
	}
	tr.Nodes = make([]obs.NodeTrace, len(main))
	for i, n := range main {
		tr.Nodes[i] = obs.NodeTrace{
			Depth:     nodeDepth(n),
			Label:     n.Label(),
			Type:      n.Type.String(),
			Access:    accessDesc(p, t, n),
			Instances: tm.insts[i],
			Entities:  tm.ents[i],
			Wall:      time.Duration(tm.nanos[i]),
		}
	}
}

func nodeDepth(n *query.Node) int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// accessDesc names the access path a node's domain enumeration uses: the
// planned root access for perspective roots, the edge kind otherwise.
func accessDesc(p *plan.Plan, t *query.Tree, n *query.Node) string {
	if n.IsRoot() || (n.Sub && n.Parent == nil) {
		if p != nil {
			for i, r := range t.Roots {
				if r == n && i < len(p.Access) && p.Access[i] != nil {
					return p.Access[i].Describe()
				}
			}
		}
		return "scan " + strings.ToLower(n.Class.Name)
	}
	switch {
	case n.Edge.Kind == catalog.EVA && n.Transitive:
		return "closure over " + strings.ToLower(n.Edge.Name)
	case n.Edge.Kind == catalog.EVA:
		return "eva " + strings.ToLower(n.Edge.Name)
	case n.Edge.Kind == catalog.Subrole:
		return "subrole " + strings.ToLower(n.Edge.Name)
	default:
		return "mv-dva " + strings.ToLower(n.Edge.Name)
	}
}

// emitter builds the row materializer for one environment: it evaluates
// the target and ORDER BY expressions and hands the row to the result.
func (e *Executor) emitter(t *query.Tree, en *env, main []*query.Node, res *Result, stats *Stats) func() error {
	return func() error {
		row := make([]value.Value, len(t.Targets))
		for i, tg := range t.Targets {
			v, err := e.eval(tg, en)
			if err != nil {
				return err
			}
			row[i] = v
		}
		var order []value.Value
		for _, ob := range t.OrderBy {
			v, err := e.eval(ob, en)
			if err != nil {
				return err
			}
			order = append(order, v)
		}
		stats.Rows++
		return res.add(e, t, en, main, row, order)
	}
}

// runNest runs the DAPLEX iteration of §4.5 from main-variable depth i
// down, calling emit for every combination that passes the selection. A
// non-nil tm collects the per-node profile (inclusive walls).
func (e *Executor) runNest(p *plan.Plan, t *query.Tree, main, exist []*query.Node, en *env, i int, stats *Stats, emit func() error, tm *nestTrace) error {
	if i == len(main) {
		ok, err := e.selectionHolds(t, en, exist)
		if err != nil {
			return err
		}
		if ok {
			return emit()
		}
		return nil
	}
	n := main[i]
	var start time.Time
	if tm != nil {
		start = time.Now()
	}
	dom, err := e.domain(p, t, n, en)
	if err != nil {
		return err
	}
	if len(dom) == 0 && n.Type == query.Type3 {
		dom = []inst{{null: true}}
	}
	for _, it := range dom {
		stats.Instances++
		if tm != nil {
			tm.observe(i, it)
		}
		en.bind(n, it)
		if err := e.runNest(p, t, main, exist, en, i+1, stats, emit, tm); err != nil {
			return err
		}
	}
	en.unbind(n)
	if tm != nil {
		tm.nanos[i] += time.Since(start).Nanoseconds()
	}
	return nil
}

// parallelOK reports whether this query may partition its outermost root.
// STRUCTURE mode builds its group tree from consecutive-prefix sharing and
// so is order-sensitive in a way the chunk merge cannot reproduce; tabular
// modes (including DISTINCT and ORDER BY, both applied during the ordered
// merge/finish) are safe.
func (e *Executor) parallelOK(t *query.Tree, dom0 []inst) bool {
	return e.workers > 1 && t.Mode != ast.OutputStructure && len(dom0) >= parallelRootThreshold
}

// partial is one worker's ordered slice of the result.
type partial struct {
	rows  [][]value.Value
	order [][]value.Value
	stats Stats
	tm    *nestTrace    // nil unless traced
	wall  time.Duration // chunk wall time (traced runs only)
}

// retrieveParallel splits the outermost domain into one contiguous chunk
// per worker and runs the remaining loop nest in each worker with a
// private environment. Chunks are returned in domain order.
func (e *Executor) retrieveParallel(ctx context.Context, p *plan.Plan, t *query.Tree, main, exist []*query.Node, dom0 []inst, traced bool) ([]*partial, error) {
	nw := e.workers
	if nw > len(dom0) {
		nw = len(dom0)
	}
	chunks := make([][]inst, 0, nw)
	per := (len(dom0) + nw - 1) / nw
	for lo := 0; lo < len(dom0); lo += per {
		hi := lo + per
		if hi > len(dom0) {
			hi = len(dom0)
		}
		chunks = append(chunks, dom0[lo:hi])
	}
	parts := make([]*partial, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for ci := range chunks {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			parts[ci], errs[ci] = e.runChunk(ctx, p, t, main, exist, chunks[ci], traced)
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// runChunk executes the loop nest for one slice of the outermost domain,
// checking cancellation between outer-range rows.
func (e *Executor) runChunk(ctx context.Context, p *plan.Plan, t *query.Tree, main, exist []*query.Node, chunk []inst, traced bool) (*partial, error) {
	en := newEnv(len(t.Nodes))
	part := &partial{}
	var chunkStart time.Time
	if traced {
		part.tm = newNestTrace(len(main))
		chunkStart = time.Now()
	}
	emit := func() error {
		row := make([]value.Value, len(t.Targets))
		for i, tg := range t.Targets {
			v, err := e.eval(tg, en)
			if err != nil {
				return err
			}
			row[i] = v
		}
		var order []value.Value
		for _, ob := range t.OrderBy {
			v, err := e.eval(ob, en)
			if err != nil {
				return err
			}
			order = append(order, v)
		}
		part.stats.Rows++
		part.rows = append(part.rows, row)
		part.order = append(part.order, order)
		return nil
	}
	done := ctx.Done()
	for _, it := range chunk {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		part.stats.Instances++
		if part.tm != nil {
			part.tm.observe(0, it)
		}
		en.bind(main[0], it)
		if err := e.runNest(p, t, main, exist, en, 1, &part.stats, emit, part.tm); err != nil {
			return nil, err
		}
	}
	if traced {
		part.wall = time.Since(chunkStart)
		part.tm.nanos[0] = part.wall.Nanoseconds()
	}
	return part, nil
}

// selectionHolds evaluates the WHERE clause under the existential
// semantics of §4.5: "for some X(m+1) … for some X(n) if <selection
// expression> is true".
func (e *Executor) selectionHolds(t *query.Tree, en *env, exist []*query.Node) (bool, error) {
	if t.Where == nil {
		return true, nil
	}
	var some func(j int) (bool, error)
	some = func(j int) (bool, error) {
		if j == len(exist) {
			tri, err := e.evalTri(t.Where, en)
			if err != nil {
				return false, err
			}
			return tri.IsTrue(), nil
		}
		n := exist[j]
		dom, err := e.domain(nil, t, n, en)
		if err != nil {
			return false, err
		}
		for _, it := range dom {
			en.bind(n, it)
			ok, err := some(j + 1)
			if err != nil {
				en.unbind(n)
				return false, err
			}
			if ok {
				en.unbind(n)
				return true, nil
			}
		}
		en.unbind(n)
		return false, nil
	}
	return some(0)
}

// domain enumerates the instances of node n given its parent's binding.
// The plan (may be nil for existential/subquery nodes) chooses root access
// paths.
func (e *Executor) domain(p *plan.Plan, t *query.Tree, n *query.Node, en *env) ([]inst, error) {
	if n.IsRoot() || (n.Sub && n.Parent == nil) {
		return e.rootDomain(p, t, n)
	}
	parent, err := en.get(n.Parent)
	if err != nil {
		return nil, err
	}
	if parent.null {
		return nil, nil
	}
	switch {
	case n.Edge.Kind == catalog.EVA && n.Transitive:
		return closureOver(e.m, parent.surr, n.Edge)
	case n.Edge.Kind == catalog.EVA:
		ss, err := e.m.GetEVA(parent.surr, n.Edge)
		if err != nil {
			return nil, err
		}
		out := make([]inst, len(ss))
		for i, s := range ss {
			out[i] = inst{surr: s}
		}
		return out, nil
	case n.Edge.Kind == catalog.Subrole:
		vals, err := e.m.Subrole(parent.surr, n.Edge)
		if err != nil {
			return nil, err
		}
		out := make([]inst, len(vals))
		for i, v := range vals {
			out[i] = inst{val: v}
		}
		return out, nil
	default: // MV DVA
		vals, err := e.m.GetMV(parent.surr, n.Edge)
		if err != nil {
			return nil, err
		}
		out := make([]inst, len(vals))
		for i, v := range vals {
			out[i] = inst{val: v}
		}
		return out, nil
	}
}

// rootDomain enumerates a perspective root using the planned access path.
func (e *Executor) rootDomain(p *plan.Plan, t *query.Tree, n *query.Node) ([]inst, error) {
	var access plan.RootAccess
	if p != nil {
		for i, r := range t.Roots {
			if r == n && i < len(p.Access) {
				access = p.Access[i]
			}
		}
	}
	switch a := access.(type) {
	case *plan.UniqueAccess:
		s, found, err := e.m.LookupUnique(a.Attr, a.Key)
		if err != nil || !found {
			return nil, err
		}
		return e.withRole([]value.Surrogate{s}, n.Class)
	case *plan.RangeAccess:
		ss, err := e.m.IndexScan(a.Attr, lucBound(a.Lo), lucBound(a.Hi))
		if err != nil {
			return nil, err
		}
		ss = sortSurrs(ss)
		return e.withRole(ss, n.Class)
	case *plan.PivotAccess:
		ss, err := pivotRootsOver(e.m, a)
		if err != nil {
			return nil, err
		}
		return e.withRole(ss, n.Class)
	default:
		c, err := e.m.Scan(n.Class)
		if err != nil {
			return nil, err
		}
		var out []inst
		for ; c.Valid(); c.Next() {
			out = append(out, inst{surr: c.Surrogate()})
		}
		return out, c.Err()
	}
}

func lucBound(b plan.Bound) luc.Bound {
	return luc.Bound{Set: b.Set, Inclusive: b.Inclusive, Value: b.Val}
}

// withRole filters candidate surrogates to entities holding cl's role.
func (e *Executor) withRole(ss []value.Surrogate, cl *catalog.Class) ([]inst, error) {
	var out []inst
	for _, s := range ss {
		ok, err := e.m.HasRole(s, cl)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, inst{surr: s})
		}
	}
	return out, nil
}

// pivotRootsOver evaluates a pivot strategy: index scan on the start
// predicate, inverse-EVA walk up to the perspective, then a surrogate sort
// restoring perspective order (the charged reordering cost of §5.1). The
// mapper is a parameter because cached compiled programs pass the
// per-execution view's mapper, not the compiling executor's.
func pivotRootsOver(m *luc.Mapper, a *plan.PivotAccess) ([]value.Surrogate, error) {
	cur, err := m.IndexScan(a.Attr, lucBound(a.Lo), lucBound(a.Hi))
	if err != nil {
		return nil, err
	}
	for _, edge := range a.Up {
		next := make(map[value.Surrogate]bool)
		for _, s := range cur {
			partners, err := m.GetEVA(s, edge.Inverse)
			if err != nil {
				return nil, err
			}
			for _, p := range partners {
				next[p] = true
			}
		}
		cur = cur[:0]
		for s := range next {
			cur = append(cur, s)
		}
	}
	return sortSurrs(dedupeSurrs(cur)), nil
}

func dedupeSurrs(ss []value.Surrogate) []value.Surrogate {
	seen := make(map[value.Surrogate]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func sortSurrs(ss []value.Surrogate) []value.Surrogate {
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
	return ss
}

// closureOver computes the transitive closure of edge from start (§4.7)
// in depth-first preorder with level numbers, cycle-safe. The mapper is a
// parameter for the same reason as pivotRootsOver.
func closureOver(m *luc.Mapper, start value.Surrogate, edge *catalog.Attribute) ([]inst, error) {
	seen := map[value.Surrogate]bool{start: true}
	var out []inst
	var visit func(s value.Surrogate, level int) error
	visit = func(s value.Surrogate, level int) error {
		targets, err := m.GetEVA(s, edge)
		if err != nil {
			return err
		}
		for _, t := range targets {
			if seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, inst{surr: t, level: level})
			if err := visit(t, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(start, 1); err != nil {
		return nil, err
	}
	return out, nil
}
