// Package exec implements SIM's query and update execution engine: the
// DAPLEX-style nested-loop program of §4.5 over the query tree, expression
// evaluation under three-valued logic, aggregate functions, quantifiers,
// transitive closure, tabular and structured output, and the update
// statements of §4.8.
package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/luc"
	"sim/internal/plan"
	"sim/internal/query"
	"sim/internal/value"
)

// Executor runs plans against a LUC mapper.
type Executor struct {
	m           *luc.Mapper
	cat         *catalog.Catalog
	constraints []*Constraint
	workers     int // per-query parallelism cap (<=1 disables)
}

// New returns an executor. Constraints (bound VERIFY assertions) may be
// attached later with SetConstraints.
func New(m *luc.Mapper) *Executor {
	return &Executor{m: m, cat: m.Catalog()}
}

// SetConstraints installs the bound integrity assertions enforced on
// updates.
func (e *Executor) SetConstraints(cs []*Constraint) { e.constraints = cs }

// SetWorkers caps the number of goroutines one Retrieve may use to
// partition its outermost root domain. Values <= 1 force serial execution.
// Must be set before queries run; it is not safe to change concurrently
// with them.
func (e *Executor) SetWorkers(n int) { e.workers = n }

// ctxErr reports the context's error without blocking; nil contexts and
// context.Background() cost one nil-channel check per call.
func ctxErr(ctx context.Context) error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// inst is one binding of a range variable.
type inst struct {
	surr  value.Surrogate
	val   value.Value
	null  bool // outer-join dummy
	level int  // transitive-closure depth (1-based; 0 otherwise)
}

// env holds the current instance of every node, indexed by node id.
type env struct {
	insts []inst
	set   []bool
}

func newEnv(n int) *env {
	return &env{insts: make([]inst, n), set: make([]bool, n)}
}

func (v *env) bind(n *query.Node, i inst) {
	v.insts[n.ID] = i
	v.set[n.ID] = true
}

func (v *env) unbind(n *query.Node) { v.set[n.ID] = false }

func (v *env) get(n *query.Node) (inst, error) {
	if !v.set[n.ID] {
		return inst{}, fmt.Errorf("exec: range variable %q unbound", n.Label())
	}
	return v.insts[n.ID], nil
}

// Stats reports work done by one execution.
type Stats struct {
	Instances int // range-variable bindings tried
	Rows      int // rows emitted
}

// parallelRootThreshold is the minimum outermost-root domain size worth
// partitioning across workers; smaller domains run serially.
const parallelRootThreshold = 32

// Retrieve executes a planned query. When the executor has workers
// configured, the outermost root domain is large enough, and the output
// mode permits it, the domain is partitioned across a worker pool; results
// are merged back in domain order so parallel output is byte-identical to
// serial execution.
func (e *Executor) Retrieve(p *plan.Plan) (*Result, error) {
	return e.RetrieveCtx(context.Background(), p)
}

// RetrieveCtx is Retrieve under a context: cancellation is checked
// between bindings of the outermost range, so a query over a large
// perspective stops within one outer row of the deadline.
func (e *Executor) RetrieveCtx(ctx context.Context, p *plan.Plan) (*Result, error) {
	t := p.Tree
	if t.Mode == ast.OutputStructure && len(t.OrderBy) > 0 {
		return nil, fmt.Errorf("ORDER BY applies to tabular output only")
	}
	res := newResult(t)
	main := t.MainNodes()
	exist := t.ExistNodes()
	var stats Stats

	if len(main) == 0 {
		res.finish(t)
		res.Stats = stats
		return res, nil
	}

	// The outermost main node is a perspective root (MainNodes is
	// depth-first from the roots); compute its domain once, then decide
	// between the serial nest and the partitioned one.
	en := newEnv(len(t.Nodes))
	dom0, err := e.domain(p, t, main[0], en)
	if err != nil {
		return nil, err
	}
	if len(dom0) == 0 && main[0].Type == query.Type3 {
		// §4.5: "when empty, adding a dummy instance all of whose
		// attributes are null" — the directed outer join.
		dom0 = []inst{{null: true}}
	}

	if e.parallelOK(t, dom0) {
		parts, err := e.retrieveParallel(ctx, p, t, main, exist, dom0)
		if err != nil {
			return nil, err
		}
		for _, part := range parts {
			stats.Instances += part.stats.Instances
			stats.Rows += part.stats.Rows
			for ri := range part.rows {
				res.addTabular(part.rows[ri], part.order[ri])
			}
		}
	} else {
		emit := e.emitter(t, en, main, res, &stats)
		done := ctx.Done()
		for _, it := range dom0 {
			if done != nil {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
			stats.Instances++
			en.bind(main[0], it)
			if err := e.runNest(p, t, main, exist, en, 1, &stats, emit); err != nil {
				return nil, err
			}
		}
	}
	res.finish(t)
	res.Stats = stats
	return res, nil
}

// emitter builds the row materializer for one environment: it evaluates
// the target and ORDER BY expressions and hands the row to the result.
func (e *Executor) emitter(t *query.Tree, en *env, main []*query.Node, res *Result, stats *Stats) func() error {
	return func() error {
		row := make([]value.Value, len(t.Targets))
		for i, tg := range t.Targets {
			v, err := e.eval(tg, en)
			if err != nil {
				return err
			}
			row[i] = v
		}
		var order []value.Value
		for _, ob := range t.OrderBy {
			v, err := e.eval(ob, en)
			if err != nil {
				return err
			}
			order = append(order, v)
		}
		stats.Rows++
		return res.add(e, t, en, main, row, order)
	}
}

// runNest runs the DAPLEX iteration of §4.5 from main-variable depth i
// down, calling emit for every combination that passes the selection.
func (e *Executor) runNest(p *plan.Plan, t *query.Tree, main, exist []*query.Node, en *env, i int, stats *Stats, emit func() error) error {
	if i == len(main) {
		ok, err := e.selectionHolds(t, en, exist)
		if err != nil {
			return err
		}
		if ok {
			return emit()
		}
		return nil
	}
	n := main[i]
	dom, err := e.domain(p, t, n, en)
	if err != nil {
		return err
	}
	if len(dom) == 0 && n.Type == query.Type3 {
		dom = []inst{{null: true}}
	}
	for _, it := range dom {
		stats.Instances++
		en.bind(n, it)
		if err := e.runNest(p, t, main, exist, en, i+1, stats, emit); err != nil {
			return err
		}
	}
	en.unbind(n)
	return nil
}

// parallelOK reports whether this query may partition its outermost root.
// STRUCTURE mode builds its group tree from consecutive-prefix sharing and
// so is order-sensitive in a way the chunk merge cannot reproduce; tabular
// modes (including DISTINCT and ORDER BY, both applied during the ordered
// merge/finish) are safe.
func (e *Executor) parallelOK(t *query.Tree, dom0 []inst) bool {
	return e.workers > 1 && t.Mode != ast.OutputStructure && len(dom0) >= parallelRootThreshold
}

// partial is one worker's ordered slice of the result.
type partial struct {
	rows  [][]value.Value
	order [][]value.Value
	stats Stats
}

// retrieveParallel splits the outermost domain into one contiguous chunk
// per worker and runs the remaining loop nest in each worker with a
// private environment. Chunks are returned in domain order.
func (e *Executor) retrieveParallel(ctx context.Context, p *plan.Plan, t *query.Tree, main, exist []*query.Node, dom0 []inst) ([]*partial, error) {
	nw := e.workers
	if nw > len(dom0) {
		nw = len(dom0)
	}
	chunks := make([][]inst, 0, nw)
	per := (len(dom0) + nw - 1) / nw
	for lo := 0; lo < len(dom0); lo += per {
		hi := lo + per
		if hi > len(dom0) {
			hi = len(dom0)
		}
		chunks = append(chunks, dom0[lo:hi])
	}
	parts := make([]*partial, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for ci := range chunks {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			parts[ci], errs[ci] = e.runChunk(ctx, p, t, main, exist, chunks[ci])
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// runChunk executes the loop nest for one slice of the outermost domain,
// checking cancellation between outer-range rows.
func (e *Executor) runChunk(ctx context.Context, p *plan.Plan, t *query.Tree, main, exist []*query.Node, chunk []inst) (*partial, error) {
	en := newEnv(len(t.Nodes))
	part := &partial{}
	emit := func() error {
		row := make([]value.Value, len(t.Targets))
		for i, tg := range t.Targets {
			v, err := e.eval(tg, en)
			if err != nil {
				return err
			}
			row[i] = v
		}
		var order []value.Value
		for _, ob := range t.OrderBy {
			v, err := e.eval(ob, en)
			if err != nil {
				return err
			}
			order = append(order, v)
		}
		part.stats.Rows++
		part.rows = append(part.rows, row)
		part.order = append(part.order, order)
		return nil
	}
	done := ctx.Done()
	for _, it := range chunk {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		part.stats.Instances++
		en.bind(main[0], it)
		if err := e.runNest(p, t, main, exist, en, 1, &part.stats, emit); err != nil {
			return nil, err
		}
	}
	return part, nil
}

// selectionHolds evaluates the WHERE clause under the existential
// semantics of §4.5: "for some X(m+1) … for some X(n) if <selection
// expression> is true".
func (e *Executor) selectionHolds(t *query.Tree, en *env, exist []*query.Node) (bool, error) {
	if t.Where == nil {
		return true, nil
	}
	var some func(j int) (bool, error)
	some = func(j int) (bool, error) {
		if j == len(exist) {
			tri, err := e.evalTri(t.Where, en)
			if err != nil {
				return false, err
			}
			return tri.IsTrue(), nil
		}
		n := exist[j]
		dom, err := e.domain(nil, t, n, en)
		if err != nil {
			return false, err
		}
		for _, it := range dom {
			en.bind(n, it)
			ok, err := some(j + 1)
			if err != nil {
				en.unbind(n)
				return false, err
			}
			if ok {
				en.unbind(n)
				return true, nil
			}
		}
		en.unbind(n)
		return false, nil
	}
	return some(0)
}

// domain enumerates the instances of node n given its parent's binding.
// The plan (may be nil for existential/subquery nodes) chooses root access
// paths.
func (e *Executor) domain(p *plan.Plan, t *query.Tree, n *query.Node, en *env) ([]inst, error) {
	if n.IsRoot() || (n.Sub && n.Parent == nil) {
		return e.rootDomain(p, t, n)
	}
	parent, err := en.get(n.Parent)
	if err != nil {
		return nil, err
	}
	if parent.null {
		return nil, nil
	}
	switch {
	case n.Edge.Kind == catalog.EVA && n.Transitive:
		return e.closure(parent.surr, n.Edge)
	case n.Edge.Kind == catalog.EVA:
		ss, err := e.m.GetEVA(parent.surr, n.Edge)
		if err != nil {
			return nil, err
		}
		out := make([]inst, len(ss))
		for i, s := range ss {
			out[i] = inst{surr: s}
		}
		return out, nil
	case n.Edge.Kind == catalog.Subrole:
		vals, err := e.m.Subrole(parent.surr, n.Edge)
		if err != nil {
			return nil, err
		}
		out := make([]inst, len(vals))
		for i, v := range vals {
			out[i] = inst{val: v}
		}
		return out, nil
	default: // MV DVA
		vals, err := e.m.GetMV(parent.surr, n.Edge)
		if err != nil {
			return nil, err
		}
		out := make([]inst, len(vals))
		for i, v := range vals {
			out[i] = inst{val: v}
		}
		return out, nil
	}
}

// rootDomain enumerates a perspective root using the planned access path.
func (e *Executor) rootDomain(p *plan.Plan, t *query.Tree, n *query.Node) ([]inst, error) {
	var access plan.RootAccess
	if p != nil {
		for i, r := range t.Roots {
			if r == n && i < len(p.Access) {
				access = p.Access[i]
			}
		}
	}
	switch a := access.(type) {
	case *plan.UniqueAccess:
		s, found, err := e.m.LookupUnique(a.Attr, a.Key)
		if err != nil || !found {
			return nil, err
		}
		return e.withRole([]value.Surrogate{s}, n.Class)
	case *plan.RangeAccess:
		ss, err := e.m.IndexScan(a.Attr, lucBound(a.Lo), lucBound(a.Hi))
		if err != nil {
			return nil, err
		}
		ss = sortSurrs(ss)
		return e.withRole(ss, n.Class)
	case *plan.PivotAccess:
		ss, err := e.pivotRoots(a)
		if err != nil {
			return nil, err
		}
		return e.withRole(ss, n.Class)
	default:
		c, err := e.m.Scan(n.Class)
		if err != nil {
			return nil, err
		}
		var out []inst
		for ; c.Valid(); c.Next() {
			out = append(out, inst{surr: c.Surrogate()})
		}
		return out, c.Err()
	}
}

func lucBound(b plan.Bound) luc.Bound {
	return luc.Bound{Set: b.Set, Inclusive: b.Inclusive, Value: b.Val}
}

// withRole filters candidate surrogates to entities holding cl's role.
func (e *Executor) withRole(ss []value.Surrogate, cl *catalog.Class) ([]inst, error) {
	var out []inst
	for _, s := range ss {
		ok, err := e.m.HasRole(s, cl)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, inst{surr: s})
		}
	}
	return out, nil
}

// pivotRoots evaluates a pivot strategy: index scan on the start
// predicate, inverse-EVA walk up to the perspective, then a surrogate sort
// restoring perspective order (the charged reordering cost of §5.1).
func (e *Executor) pivotRoots(a *plan.PivotAccess) ([]value.Surrogate, error) {
	cur, err := e.m.IndexScan(a.Attr, lucBound(a.Lo), lucBound(a.Hi))
	if err != nil {
		return nil, err
	}
	for _, edge := range a.Up {
		next := make(map[value.Surrogate]bool)
		for _, s := range cur {
			partners, err := e.m.GetEVA(s, edge.Inverse)
			if err != nil {
				return nil, err
			}
			for _, p := range partners {
				next[p] = true
			}
		}
		cur = cur[:0]
		for s := range next {
			cur = append(cur, s)
		}
	}
	return sortSurrs(dedupeSurrs(cur)), nil
}

func dedupeSurrs(ss []value.Surrogate) []value.Surrogate {
	seen := make(map[value.Surrogate]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func sortSurrs(ss []value.Surrogate) []value.Surrogate {
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
	return ss
}

// closure computes the transitive closure of edge from start (§4.7) in
// depth-first preorder with level numbers, cycle-safe.
func (e *Executor) closure(start value.Surrogate, edge *catalog.Attribute) ([]inst, error) {
	seen := map[value.Surrogate]bool{start: true}
	var out []inst
	var visit func(s value.Surrogate, level int) error
	visit = func(s value.Surrogate, level int) error {
		targets, err := e.m.GetEVA(s, edge)
		if err != nil {
			return err
		}
		for _, t := range targets {
			if seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, inst{surr: t, level: level})
			if err := visit(t, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(start, 1); err != nil {
		return nil, err
	}
	return out, nil
}
