package exec

import (
	"context"
	"fmt"
	"strings"

	"sim/internal/ast"
	"sim/internal/catalog"
	"sim/internal/plan"
	"sim/internal/query"
	"sim/internal/value"
)

// events collects the mutations of one update statement for integrity
// trigger detection (§3.3).
type events struct {
	dva  []dvaEvent
	eva  []evaEvent
	role []roleEvent
}

type dvaEvent struct {
	attr *catalog.Attribute
	s    value.Surrogate
}

type evaEvent struct {
	attr *catalog.Attribute // as referenced (either direction)
	s, t value.Surrogate
}

type roleEvent struct {
	class *catalog.Class
	s     value.Surrogate
}

// Insert executes §4.8's INSERT: create a new entity, or — with FROM —
// extend the roles of existing entities. It returns the affected entity
// count. Cancellation is checked between entities of the FROM selection.
func (e *Executor) Insert(ctx context.Context, stmt *ast.InsertStmt) (int, error) {
	cl, err := e.cat.MustClass(stmt.Class)
	if err != nil {
		return 0, err
	}
	ev := &events{}
	var affected []value.Surrogate

	if stmt.FromClass == "" {
		s, err := e.m.NewEntity(cl)
		if err != nil {
			return 0, err
		}
		ev.role = append(ev.role, roleEvent{cl, s})
		if err := e.applyAssigns(s, cl, stmt.Assigns, ev); err != nil {
			return 0, err
		}
		newRoles := append([]*catalog.Class{cl}, catalog.Ancestors(cl)...)
		if err := e.checkRequired(s, newRoles); err != nil {
			return 0, err
		}
		affected = []value.Surrogate{s}
	} else {
		from, err := e.cat.MustClass(stmt.FromClass)
		if err != nil {
			return 0, err
		}
		if !catalog.IsAncestor(from, cl) {
			return 0, fmt.Errorf("INSERT %s FROM %s: %s is not an ancestor of %s", cl.Name, from.Name, from.Name, cl.Name)
		}
		matches, err := e.SelectEntitiesCtx(ctx, from, stmt.FromWhere)
		if err != nil {
			return 0, err
		}
		if len(matches) == 0 {
			return 0, fmt.Errorf("INSERT %s FROM %s selected no entities", cl.Name, from.Name)
		}
		if err := e.claimTargets(cl, matches); err != nil {
			return 0, err
		}
		for _, s := range matches {
			if err := ctxErr(ctx); err != nil {
				return 0, err
			}
			added, err := e.m.ExtendRole(s, cl)
			if err != nil {
				return 0, err
			}
			for _, c := range added {
				ev.role = append(ev.role, roleEvent{c, s})
			}
			if err := e.applyAssigns(s, cl, stmt.Assigns, ev); err != nil {
				return 0, err
			}
			if err := e.checkRequired(s, added); err != nil {
				return 0, err
			}
			affected = append(affected, s)
		}
	}
	if err := e.checkConstraints(ev); err != nil {
		return 0, err
	}
	e.countUpdate(len(affected))
	return len(affected), nil
}

// Modify executes §4.8's MODIFY against every entity of the class
// satisfying WHERE. Cancellation is checked between selected entities.
func (e *Executor) Modify(ctx context.Context, stmt *ast.ModifyStmt) (int, error) {
	cl, err := e.cat.MustClass(stmt.Class)
	if err != nil {
		return 0, err
	}
	matches, err := e.SelectEntitiesCtx(ctx, cl, stmt.Where)
	if err != nil {
		return 0, err
	}
	if err := e.claimTargets(cl, matches); err != nil {
		return 0, err
	}
	ev := &events{}
	for _, s := range matches {
		if err := ctxErr(ctx); err != nil {
			return 0, err
		}
		if err := e.applyAssigns(s, cl, stmt.Assigns, ev); err != nil {
			return 0, err
		}
	}
	if err := e.checkConstraints(ev); err != nil {
		return 0, err
	}
	e.countUpdate(len(matches))
	return len(matches), nil
}

// Delete executes §4.8's DELETE: the entities lose their role in the class
// and every subclass role, keeping superclass roles. Cancellation is
// checked between selected entities.
func (e *Executor) Delete(ctx context.Context, stmt *ast.DeleteStmt) (int, error) {
	cl, err := e.cat.MustClass(stmt.Class)
	if err != nil {
		return 0, err
	}
	matches, err := e.SelectEntitiesCtx(ctx, cl, stmt.Where)
	if err != nil {
		return 0, err
	}
	if err := e.claimTargets(cl, matches); err != nil {
		return 0, err
	}
	ev := &events{}
	for _, s := range matches {
		if err := ctxErr(ctx); err != nil {
			return 0, err
		}
		// Snapshot the relationship instances about to be destroyed, for
		// trigger detection on surviving partners.
		doomed := []*catalog.Class{cl}
		for _, d := range catalog.Descendants(cl) {
			if ok, err := e.m.HasRole(s, d); err != nil {
				return 0, err
			} else if ok {
				doomed = append(doomed, d)
			}
		}
		for _, d := range doomed {
			ev.role = append(ev.role, roleEvent{d, s})
			for _, a := range d.Attrs {
				if a.Kind != catalog.EVA {
					continue
				}
				targets, err := e.m.GetEVA(s, a)
				if err != nil {
					return 0, err
				}
				for _, t := range targets {
					ev.eva = append(ev.eva, evaEvent{a, s, t})
				}
			}
		}
		if err := e.m.DeleteRoles(s, cl); err != nil {
			return 0, err
		}
	}
	if err := e.checkConstraints(ev); err != nil {
		return 0, err
	}
	e.countUpdate(len(matches))
	return len(matches), nil
}

// claimTargets hands an update statement's materialized targets to the
// claim hook (WithClaim) before any mutation. A nil hook (autocommit,
// direct executor use) claims nothing.
func (e *Executor) claimTargets(cl *catalog.Class, ss []value.Surrogate) error {
	if e.claim == nil || len(ss) == 0 {
		return nil
	}
	return e.claim(cl, ss)
}

// UpdateTargets resolves the entities an update statement would write —
// its target selection, materialized without mutating anything. Insert
// without FROM creates a fresh entity and so has no pre-existing targets
// (a nil slice). Transactions use this on a read snapshot to claim
// per-entity write latches before blocking on the store write latch; the
// result is advisory, since the statement re-selects when it executes.
func (e *Executor) UpdateTargets(ctx context.Context, stmt ast.Stmt) (*catalog.Class, []value.Surrogate, error) {
	switch s := stmt.(type) {
	case *ast.InsertStmt:
		cl, err := e.cat.MustClass(s.Class)
		if err != nil {
			return nil, nil, err
		}
		if s.FromClass == "" {
			return cl, nil, nil
		}
		from, err := e.cat.MustClass(s.FromClass)
		if err != nil {
			return nil, nil, err
		}
		ss, err := e.SelectEntitiesCtx(ctx, from, s.FromWhere)
		return from, ss, err
	case *ast.ModifyStmt:
		cl, err := e.cat.MustClass(s.Class)
		if err != nil {
			return nil, nil, err
		}
		ss, err := e.SelectEntitiesCtx(ctx, cl, s.Where)
		return cl, ss, err
	case *ast.DeleteStmt:
		cl, err := e.cat.MustClass(s.Class)
		if err != nil {
			return nil, nil, err
		}
		ss, err := e.SelectEntitiesCtx(ctx, cl, s.Where)
		return cl, ss, err
	}
	return nil, nil, fmt.Errorf("exec: not an update statement: %T", stmt)
}

// SelectEntities returns the entities of cl satisfying where (all of them
// when where is nil), in surrogate order. The result is materialized
// before any mutation, as the DML's snapshot semantics require.
func (e *Executor) SelectEntities(cl *catalog.Class, where ast.Expr) ([]value.Surrogate, error) {
	return e.SelectEntitiesCtx(context.Background(), cl, where)
}

// SelectEntitiesCtx is SelectEntities under a context, checking
// cancellation between rows of the enumerated class domain.
func (e *Executor) SelectEntitiesCtx(ctx context.Context, cl *catalog.Class, where ast.Expr) ([]value.Surrogate, error) {
	t, err := query.BindSelection(e.cat, cl, where)
	if err != nil {
		return nil, err
	}
	p, err := plan.Optimize(t, e.m)
	if err != nil {
		return nil, err
	}
	en := newEnv(len(t.Nodes))
	root := t.Roots[0]
	dom, err := e.rootDomain(p, t, root)
	if err != nil {
		return nil, err
	}
	exist := t.ExistNodes()
	var out []value.Surrogate
	for _, it := range dom {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		en.bind(root, it)
		ok, err := e.selectionHolds(t, en, exist)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, it.surr)
		}
	}
	return out, nil
}

// applyAssigns applies an assignment list to one entity.
func (e *Executor) applyAssigns(s value.Surrogate, cl *catalog.Class, assigns []ast.Assign, ev *events) error {
	for _, a := range assigns {
		if err := e.applyAssign(s, cl, a, ev); err != nil {
			return fmt.Errorf("%s := ...: %w", a.Attr, err)
		}
	}
	return nil
}

func (e *Executor) applyAssign(s value.Surrogate, cl *catalog.Class, a ast.Assign, ev *events) error {
	attr := catalog.ResolveAttr(cl, a.Attr)
	if attr == nil {
		return fmt.Errorf("class %s has no attribute %q", cl.Name, a.Attr)
	}
	switch attr.Kind {
	case catalog.Subrole:
		return fmt.Errorf("subrole %s is system-maintained and cannot be assigned", attr)
	case catalog.Derived:
		return fmt.Errorf("derived attribute %s is computed and cannot be assigned", attr)
	case catalog.EVA:
		return e.assignEVA(s, attr, a, ev)
	}
	// DVA.
	if a.Entity != nil {
		return fmt.Errorf("%s is data-valued; entity selection does not apply", attr)
	}
	v, err := e.evalScalarFor(s, cl, a.Value)
	if err != nil {
		return err
	}
	cv, err := attr.Type.Coerce(v)
	if err != nil {
		return err
	}
	if attr.Options.MV {
		switch a.Mode {
		case ast.AssignInclude:
			err = e.m.IncludeMV(s, attr, cv)
		case ast.AssignExclude:
			err = e.m.ExcludeMV(s, attr, cv)
		default:
			if cv.IsNull() {
				err = e.m.SetMV(s, attr, nil)
			} else {
				err = e.m.SetMV(s, attr, []value.Value{cv})
			}
		}
		if err != nil {
			return err
		}
		ev.dva = append(ev.dva, dvaEvent{attr, s})
		return nil
	}
	if a.Mode != ast.AssignSet {
		return fmt.Errorf("INCLUDE/EXCLUDE apply to multi-valued attributes; %s is single-valued", attr)
	}
	if attr.Options.Required && cv.IsNull() {
		return fmt.Errorf("required attribute %s cannot be set to NULL", attr)
	}
	if err := e.m.SetSingle(s, attr, cv); err != nil {
		return err
	}
	ev.dva = append(ev.dva, dvaEvent{attr, s})
	return nil
}

// assignEVA applies §4.8's EVA assignment:
//
//	<eva> := [INCLUDE | EXCLUDE] <object name> WITH ( <boolean expn> )
//
// For single-valued assignment and inclusion, the object name is the range
// class; for exclusion it is the EVA itself, selecting among current
// partners. Assigning NULL clears a single-valued EVA.
func (e *Executor) assignEVA(s value.Surrogate, attr *catalog.Attribute, a ast.Assign, ev *events) error {
	record := func(t value.Surrogate) { ev.eva = append(ev.eva, evaEvent{attr, s, t}) }

	if a.Entity == nil {
		// Scalar RHS: only NULL is meaningful (clear the EVA).
		lit, ok := a.Value.(*ast.Lit)
		if !ok || !lit.Val.IsNull() {
			return fmt.Errorf("%s is entity-valued; assign <class> WITH (...) or NULL", attr)
		}
		if attr.Options.MV {
			cur, err := e.m.GetEVA(s, attr)
			if err != nil {
				return err
			}
			for _, t := range cur {
				if err := e.m.ExcludeEVA(s, attr, t); err != nil {
					return err
				}
				record(t)
			}
			return nil
		}
		cur, err := e.m.GetEVA(s, attr)
		if err != nil {
			return err
		}
		if err := e.m.SetEVA(s, attr, nil); err != nil {
			return err
		}
		for _, t := range cur {
			record(t)
		}
		return nil
	}

	if a.Mode == ast.AssignExclude {
		// Object name is the EVA: select among the current partners.
		if !nameMatchesAttr(a.Entity.Name, attr) {
			return fmt.Errorf("EXCLUDE selects from the EVA itself: expected %q, found %q", attr.Name, a.Entity.Name)
		}
		cur, err := e.m.GetEVA(s, attr)
		if err != nil {
			return err
		}
		keep, err := e.filterEntities(attr.Range, cur, a.Entity.Where)
		if err != nil {
			return err
		}
		for _, t := range keep {
			if err := e.m.ExcludeEVA(s, attr, t); err != nil {
				return err
			}
			record(t)
		}
		return nil
	}

	// Set / include: the object name is the range class (or a subclass).
	selCl := e.cat.Class(a.Entity.Name)
	if selCl == nil {
		return fmt.Errorf("unknown class %q in entity selection", a.Entity.Name)
	}
	if !catalog.IsAncestor(attr.Range, selCl) {
		return fmt.Errorf("class %s is not in the range of %s (%s)", selCl.Name, attr, attr.Range.Name)
	}
	targets, err := e.SelectEntities(selCl, a.Entity.Where)
	if err != nil {
		return err
	}
	switch {
	case a.Mode == ast.AssignInclude:
		for _, t := range targets {
			if err := e.m.IncludeEVA(s, attr, t); err != nil {
				return err
			}
			record(t)
		}
	case attr.Options.MV:
		// Plain assignment to an MV EVA replaces the instance set.
		cur, err := e.m.GetEVA(s, attr)
		if err != nil {
			return err
		}
		for _, t := range cur {
			if err := e.m.ExcludeEVA(s, attr, t); err != nil {
				return err
			}
			record(t)
		}
		for _, t := range targets {
			if err := e.m.IncludeEVA(s, attr, t); err != nil {
				return err
			}
			record(t)
		}
	default:
		if len(targets) != 1 {
			return fmt.Errorf("assignment to single-valued %s selected %d entities, need exactly 1", attr, len(targets))
		}
		old, err := e.m.GetEVA(s, attr)
		if err != nil {
			return err
		}
		if err := e.m.SetEVA(s, attr, &targets[0]); err != nil {
			return err
		}
		for _, t := range old {
			record(t)
		}
		record(targets[0])
	}
	return nil
}

func nameMatchesAttr(name string, attr *catalog.Attribute) bool {
	return strings.EqualFold(name, attr.Name)
}

// filterEntities keeps the candidates satisfying where, evaluated with the
// candidate as the perspective instance.
func (e *Executor) filterEntities(cl *catalog.Class, candidates []value.Surrogate, where ast.Expr) ([]value.Surrogate, error) {
	if where == nil {
		return candidates, nil
	}
	t, err := query.BindSelection(e.cat, cl, where)
	if err != nil {
		return nil, err
	}
	en := newEnv(len(t.Nodes))
	exist := t.ExistNodes()
	var out []value.Surrogate
	for _, s := range candidates {
		en.bind(t.Roots[0], inst{surr: s})
		ok, err := e.selectionHolds(t, en, exist)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, s)
		}
	}
	return out, nil
}

// evalScalarFor evaluates an assignment right-hand side in the context of
// one entity (so "salary := 1.1 * salary" reads the entity's own salary).
func (e *Executor) evalScalarFor(s value.Surrogate, cl *catalog.Class, expr ast.Expr) (value.Value, error) {
	if lit, ok := expr.(*ast.Lit); ok {
		return lit.Val, nil
	}
	t, err := query.BindScalar(e.cat, cl, expr)
	if err != nil {
		return value.Null, err
	}
	for _, n := range t.Nodes {
		if !n.IsRoot() && !n.Sub && !n.IsValue {
			// Entity-valued paths are fine (single-valued EVAs), but a
			// multi-valued main node would make the RHS multi-valued.
			if n.Edge != nil && n.Edge.Options.MV {
				return value.Null, fmt.Errorf("assignment expression traverses multi-valued %s", n.Edge)
			}
		}
		if n.IsValue && !n.Sub {
			return value.Null, fmt.Errorf("assignment expression reads multi-valued %s; aggregate it instead", n.Edge)
		}
	}
	en := newEnv(len(t.Nodes))
	en.bind(t.Roots[0], inst{surr: s})
	// Bind the remaining single-valued main nodes.
	main := t.MainNodes()
	var fill func(i int) error
	fill = func(i int) error {
		if i == len(main) {
			return nil
		}
		n := main[i]
		if !n.IsRoot() {
			dom, err := e.domain(nil, t, n, en)
			if err != nil {
				return err
			}
			if len(dom) == 0 {
				en.bind(n, inst{null: true})
			} else {
				en.bind(n, dom[0])
			}
		}
		return fill(i + 1)
	}
	if err := fill(0); err != nil {
		return value.Null, err
	}
	return e.eval(t.Targets[0], en)
}

// checkRequired verifies the REQUIRED option for the immediate attributes
// of newly acquired roles (§3.2.1).
func (e *Executor) checkRequired(s value.Surrogate, roles []*catalog.Class) error {
	for _, cl := range roles {
		for _, a := range cl.Attrs {
			if !a.Options.Required || a.Implicit {
				continue
			}
			switch {
			case a.Kind == catalog.EVA:
				ts, err := e.m.GetEVA(s, a)
				if err != nil {
					return err
				}
				if len(ts) == 0 {
					return fmt.Errorf("required attribute %s has no value", a)
				}
			case a.Options.MV:
				vs, err := e.m.GetMV(s, a)
				if err != nil {
					return err
				}
				if len(vs) == 0 {
					return fmt.Errorf("required attribute %s has no value", a)
				}
			default:
				v, err := e.m.GetSingle(s, a)
				if err != nil {
					return err
				}
				if v.IsNull() {
					return fmt.Errorf("required attribute %s has no value", a)
				}
			}
		}
	}
	return nil
}
