package exec

import (
	"fmt"

	"sim/internal/catalog"
	"sim/internal/integrity"
	"sim/internal/query"
	"sim/internal/value"
)

// Constraint is a bound VERIFY assertion ready for enforcement: the
// analyzed trigger set (from internal/integrity) plus the bound assertion
// tree.
type Constraint = integrity.Constraint

// ViolationError reports a failed VERIFY assertion; the database layer
// rolls the statement back.
type ViolationError struct {
	Name    string
	Entity  value.Surrogate
	Message string
}

func (v *ViolationError) Error() string {
	msg := v.Message
	if msg == "" {
		msg = "integrity assertion " + v.Name + " violated"
	}
	return fmt.Sprintf("verify %s failed for entity #%d: %s", v.Name, v.Entity, msg)
}

// checkConstraints runs the statement's recorded events through each
// constraint's trigger set and re-verifies exactly the affected entities —
// the paper's "trigger detection / query enhancement mechanism" (§3.3).
func (e *Executor) checkConstraints(ev *events) error {
	for _, c := range e.constraints {
		affected, checkAll, err := e.affectedEntities(c, ev)
		if err != nil {
			return err
		}
		if checkAll {
			all, err := e.m.Surrogates(c.Verify.Class)
			if err != nil {
				return err
			}
			affected = all
		}
		seen := make(map[value.Surrogate]bool, len(affected))
		for _, s := range affected {
			if seen[s] {
				continue
			}
			seen[s] = true
			if err := e.CheckEntity(c, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// affectedEntities maps the events to the entities of the constraint's
// class that must be re-verified.
func (e *Executor) affectedEntities(c *Constraint, ev *events) ([]value.Surrogate, bool, error) {
	var out []value.Surrogate
	walkUp := func(start value.Surrogate, path []*catalog.Attribute) error {
		cur := []value.Surrogate{start}
		for _, edge := range path {
			var next []value.Surrogate
			for _, s := range cur {
				ps, err := e.m.GetEVA(s, edge.Inverse)
				if err != nil {
					return err
				}
				next = append(next, ps...)
			}
			cur = next
		}
		out = append(out, cur...)
		return nil
	}
	for _, d := range ev.dva {
		trs, all := c.DVATriggers(d.attr)
		if all {
			return nil, true, nil
		}
		for _, path := range trs {
			if err := walkUp(d.s, path); err != nil {
				return nil, false, err
			}
		}
	}
	for _, x := range ev.eva {
		trs, all := c.EVATriggers(x.attr)
		if all {
			return nil, true, nil
		}
		for _, tr := range trs {
			// Orient the event to the direction the constraint references:
			// the trigger path starts at the Ref-owner-side endpoint.
			start := x.s
			if tr.Ref != x.attr {
				start = x.t
			}
			if err := walkUp(start, tr.Path); err != nil {
				return nil, false, err
			}
		}
	}
	for _, r := range ev.role {
		for _, path := range c.RoleTriggers(r.class) {
			if err := walkUp(r.s, path); err != nil {
				return nil, false, err
			}
		}
	}
	return out, false, nil
}

// CheckEntity verifies one entity against one constraint. Entities that no
// longer hold the constraint class's role pass vacuously. An assertion
// evaluating to UNKNOWN passes (only a definite False is a violation).
func (e *Executor) CheckEntity(c *Constraint, s value.Surrogate) error {
	ok, err := e.m.HasRole(s, c.Verify.Class)
	if err != nil || !ok {
		return err
	}
	t := c.Tree
	en := newEnv(len(t.Nodes))
	en.bind(t.Roots[0], inst{surr: s})
	holds, err := e.assertionHolds(t, en)
	if err != nil {
		return err
	}
	if !holds {
		return &ViolationError{Name: c.Verify.Name, Entity: s, Message: c.Verify.ElseMsg}
	}
	return nil
}

// assertionHolds evaluates a constraint tree's condition for the pinned
// root. Unlike WHERE filtering, a result of Unknown passes.
func (e *Executor) assertionHolds(t *query.Tree, en *env) (bool, error) {
	exist := t.ExistNodes()
	if len(exist) == 0 {
		tri, err := e.evalTri(t.Where, en)
		if err != nil {
			return false, err
		}
		return tri != value.False, nil
	}
	// Existentially quantified condition: definite falsity means no
	// binding makes it true AND at least one binding makes it false.
	anyTrue := false
	anyUnknown := false
	anyBinding := false
	var walk func(j int) error
	walk = func(j int) error {
		if j == len(exist) {
			anyBinding = true
			tri, err := e.evalTri(t.Where, en)
			if err != nil {
				return err
			}
			switch tri {
			case value.True:
				anyTrue = true
			case value.Unknown:
				anyUnknown = true
			}
			return nil
		}
		n := exist[j]
		dom, err := e.domain(nil, t, n, en)
		if err != nil {
			return err
		}
		for _, it := range dom {
			en.bind(n, it)
			if err := walk(j + 1); err != nil {
				return err
			}
			if anyTrue {
				break
			}
		}
		en.unbind(n)
		return nil
	}
	if err := walk(0); err != nil {
		return false, err
	}
	if anyTrue || anyUnknown || !anyBinding {
		return true, nil
	}
	return false, nil
}

// CheckAll verifies every entity of a constraint's class; the database
// layer offers this as an administrative operation.
func (e *Executor) CheckAll(c *Constraint) error {
	ss, err := e.m.Surrogates(c.Verify.Class)
	if err != nil {
		return err
	}
	for _, s := range ss {
		if err := e.CheckEntity(c, s); err != nil {
			return err
		}
	}
	return nil
}
